package adcc_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"adcc/pkg/adcc"
)

// customScheme is a user-defined consistency scheme: no conventional
// mechanism (the workload protects itself), NVM-only platform.
type customScheme struct{ name string }

func (s customScheme) Name() string                  { return s.name }
func (s customScheme) Kind() adcc.SchemeKind         { return adcc.KindNative }
func (s customScheme) System() adcc.SystemKind       { return adcc.NVMOnly }
func (s customScheme) FlushPolicy() adcc.FlushPolicy { return adcc.FlushNone }
func (s customScheme) NewGuard(*adcc.Machine, int) adcc.Guard {
	return adcc.NewNativeGuard()
}

// toyWorkload is a user-defined workload: a counting loop that touches
// simulated memory, restarts from an iteration boundary, and verifies
// its total.
type toyWorkload struct {
	iters int

	m    *adcc.Machine
	done int
}

func (w *toyWorkload) Name() string { return "toy" }

func (w *toyWorkload) Prepare(m *adcc.Machine, _ *adcc.Emulator) error {
	if w.m != nil {
		return errors.New("toy: Prepare called twice")
	}
	w.m = m
	return nil
}

func (w *toyWorkload) Start() int64 { return 0 }

func (w *toyWorkload) Run(from int64) {
	r := w.m.Heap.AllocF64(fmt.Sprintf("toy-%d", from), 8)
	for i := from; i < int64(w.iters); i++ {
		r.Set(int(i)%8, float64(i))
		w.done++
	}
}

func (w *toyWorkload) Recover() (int64, error) { return 0, nil }

func (w *toyWorkload) Verify() error {
	if w.done != w.iters {
		return fmt.Errorf("toy: did %d of %d iterations", w.done, w.iters)
	}
	return nil
}

func (w *toyWorkload) Metrics() map[string]float64 {
	return map[string]float64{"iters": float64(w.done)}
}

// TestCustomSchemeAndWorkloadThroughRunner is the public-API
// registration contract: a scheme and a workload registered on an
// instance Registry sweep through Runner.Run exactly like the
// built-ins.
func TestCustomSchemeAndWorkloadThroughRunner(t *testing.T) {
	reg := adcc.NewRegistry()
	if err := reg.RegisterScheme(customScheme{name: "custom-x"}); err != nil {
		t.Fatalf("RegisterScheme: %v", err)
	}
	err := reg.RegisterScheme(customScheme{name: "custom-x"})
	if err == nil || !strings.Contains(err.Error(), `"custom-x"`) {
		t.Fatalf("duplicate RegisterScheme error = %v, want the conflicting name", err)
	}
	if err := reg.RegisterWorkload(adcc.WorkloadSpec{
		Name:    "toy",
		Schemes: []string{"custom-x", adcc.SchemeCkptNVM},
		New: func(sc adcc.Scheme, scale float64) (adcc.Workload, error) {
			return &toyWorkload{iters: 100}, nil
		},
	}); err != nil {
		t.Fatalf("RegisterWorkload: %v", err)
	}
	if err := reg.RegisterWorkload(adcc.WorkloadSpec{Name: "toy", New: func(adcc.Scheme, float64) (adcc.Workload, error) { return nil, nil }}); err == nil {
		t.Fatal("duplicate RegisterWorkload returned nil error")
	}

	rep, err := adcc.New(reg).Run(context.Background(), "toy")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Cases) != 2 {
		t.Fatalf("swept %d cases, want the spec's 2 default schemes", len(rep.Cases))
	}
	if rep.Cases[0].Scheme != "custom-x" || rep.Cases[1].Scheme != adcc.SchemeCkptNVM {
		t.Fatalf("sweep order %v, want [custom-x %s]", rep.Cases, adcc.SchemeCkptNVM)
	}
	if failed := rep.Failed(); len(failed) != 0 {
		t.Fatalf("cases failed verification: %+v", failed)
	}
	if got := rep.Cases[0].Metrics["iters"]; got != 100 {
		t.Fatalf("custom workload metrics = %v, want iters=100", rep.Cases[0].Metrics)
	}

	// The custom namespace is instance-scoped: a fresh registry does
	// not see it.
	if _, ok := adcc.NewRegistry().Scheme("custom-x"); ok {
		t.Fatal("custom scheme leaked into a fresh registry")
	}
	if _, err := adcc.New(nil).Run(context.Background(), "toy"); err == nil {
		t.Fatal("Run of an unregistered workload returned nil error")
	}
}

// TestBuiltinWorkloadsRunAndVerify sweeps the four built-in workloads
// at CI scale: every scheme must complete and verify.
func TestBuiltinWorkloadsRunAndVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in -short mode")
	}
	runner := adcc.New(nil, adcc.WithScale(0.05), adcc.WithParallelism(4))
	for _, workload := range []string{adcc.WorkloadCG, adcc.WorkloadMM, adcc.WorkloadMC, adcc.WorkloadStencil} {
		rep, err := runner.Run(context.Background(), workload)
		if err != nil {
			t.Fatalf("Run(%s): %v", workload, err)
		}
		if len(rep.Cases) < 7 {
			t.Fatalf("Run(%s) swept %d cases, want >= 7", workload, len(rep.Cases))
		}
		for _, c := range rep.Cases {
			if c.Err != "" {
				t.Errorf("%s/%s: %s", workload, c.Scheme, c.Err)
			}
			if c.SimNS <= 0 {
				t.Errorf("%s/%s: no simulated time recorded", workload, c.Scheme)
			}
		}
	}
}

// TestCancellationMidSweep is the context contract: cancelling the
// context mid-campaign stops dispatch promptly and surfaces ctx.Err().
func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	injections := 0
	runner := adcc.New(nil,
		adcc.WithScale(0.02),
		adcc.WithParallelism(2),
		adcc.WithWorkloads(adcc.WorkloadMC),
		adcc.WithSchemes(adcc.SchemeAlgoNVM, adcc.SchemeCkptNVM, adcc.SchemeNative),
		adcc.WithInjectionsPerCell(20),
		adcc.WithEventSink(adcc.SinkFunc(func(e adcc.Event) {
			if _, ok := e.(adcc.InjectionDone); ok {
				injections++
				if injections == 2 {
					cancel()
				}
			}
		})),
	)
	start := time.Now()
	rep, err := runner.RunCampaign(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCampaign err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled campaign returned a report")
	}
	// 6 cells x 20 points; cancelling after 2 classified injections
	// must not run the sweep to completion.
	if injections > 30 {
		t.Fatalf("%d injections classified after cancellation", injections)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled campaign took %v to return", elapsed)
	}

	// A pre-cancelled context never dispatches work at all.
	done, doneCancel := context.WithCancel(context.Background())
	doneCancel()
	if _, err := adcc.New(nil, adcc.WithScale(0.05)).Run(done, adcc.WorkloadCG); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestCustomSchemeSweepsThroughCampaign covers the instance-registry
// contract end to end: a custom scheme named in WithSchemes joins the
// campaign grid — for RunCampaign and for the "campaign" experiment
// alike, which must also honor WithWorkloads and
// WithInjectionsPerCell.
func TestCustomSchemeSweepsThroughCampaign(t *testing.T) {
	reg := adcc.NewRegistry()
	if err := reg.RegisterScheme(customScheme{name: "custom-x"}); err != nil {
		t.Fatal(err)
	}
	runner := adcc.New(reg,
		adcc.WithScale(0.02),
		adcc.WithParallelism(2),
		adcc.WithWorkloads(adcc.WorkloadMM),
		adcc.WithSchemes("custom-x"),
		adcc.WithInjectionsPerCell(2),
	)
	rep, err := runner.RunCampaign(context.Background())
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(rep.Cells) != 2 { // custom-x on both platforms
		t.Fatalf("campaign swept %d cells, want 2 (custom scheme on both systems)", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Scheme != "custom-x" || c.Workload != adcc.WorkloadMM {
			t.Fatalf("unexpected cell %s/%s", c.Workload, c.Scheme)
		}
		if c.Injections != 2 {
			t.Fatalf("cell swept %d injections, want the configured 2", c.Injections)
		}
	}

	// The same grid configuration must reach the campaign when it runs
	// as a harness experiment.
	tab, err := runner.RunExperiment(context.Background(), "campaign")
	if err != nil {
		t.Fatalf("RunExperiment(campaign): %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("campaign experiment table has %d rows, want 2:\n%s", len(tab.Rows), tab)
	}
	for _, row := range tab.Rows {
		if row[1] != "custom-x" {
			t.Fatalf("campaign experiment ignored the configured scheme filter:\n%s", tab)
		}
	}
}

// TestRunEventStreamCarriesCaseFailures asserts a failed case streams
// its error instead of "ok".
func TestRunEventStreamCarriesCaseFailures(t *testing.T) {
	reg := adcc.NewRegistry()
	if err := reg.RegisterWorkload(adcc.WorkloadSpec{
		Name:    "half-broken",
		Schemes: []string{adcc.SchemeNative, adcc.SchemeAlgoNVM},
		New: func(sc adcc.Scheme, _ float64) (adcc.Workload, error) {
			w := &toyWorkload{iters: 10}
			if sc.Kind() == adcc.KindAlgo {
				w.iters = -1 // Run does nothing; Verify fails
			}
			return w, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	var lines []string
	runner := adcc.New(reg, adcc.WithEventSink(recordSink(&lines)))
	rep, err := runner.Run(context.Background(), "half-broken")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Failed()) != 1 {
		t.Fatalf("want exactly one failed case, got %+v", rep.Cases)
	}
	stream := strings.Join(lines, "\n")
	if !strings.Contains(stream, "native: ok") {
		t.Fatalf("healthy case missing from stream:\n%s", stream)
	}
	if !strings.Contains(stream, adcc.SchemeAlgoNVM+": error: toy: did 0 of -1 iterations") {
		t.Fatalf("failed case not streamed as an error:\n%s", stream)
	}
}

// recordSink renders every event to a line.
func recordSink(lines *[]string) adcc.EventSink {
	return adcc.SinkFunc(func(e adcc.Event) { *lines = append(*lines, e.String()) })
}

// TestEventStreamByteIdenticalAcrossParallelism is the streaming
// determinism contract: the rendered event stream of a run — workload
// sweep and campaign alike — is byte-identical at -parallel 1 and
// -parallel 8.
func TestEventStreamByteIdenticalAcrossParallelism(t *testing.T) {
	sweep := func(parallel int) (string, string) {
		var runLines, campLines []string
		runner := adcc.New(nil,
			adcc.WithScale(0.02),
			adcc.WithParallelism(parallel),
			adcc.WithWorkloads(adcc.WorkloadMM),
			adcc.WithInjectionsPerCell(3),
			adcc.WithEventSink(recordSink(&runLines)),
		)
		if _, err := runner.Run(context.Background(), adcc.WorkloadMC); err != nil {
			t.Fatalf("Run(parallel=%d): %v", parallel, err)
		}
		campRunner := adcc.New(nil,
			adcc.WithScale(0.02),
			adcc.WithParallelism(parallel),
			adcc.WithWorkloads(adcc.WorkloadMM),
			adcc.WithInjectionsPerCell(3),
			adcc.WithEventSink(recordSink(&campLines)),
		)
		if _, err := campRunner.RunCampaign(context.Background()); err != nil {
			t.Fatalf("RunCampaign(parallel=%d): %v", parallel, err)
		}
		return strings.Join(runLines, "\n"), strings.Join(campLines, "\n")
	}

	serialRun, serialCamp := sweep(1)
	parRun, parCamp := sweep(8)
	if serialRun != parRun {
		t.Fatalf("workload-sweep event stream differs between parallel 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serialRun, parRun)
	}
	if serialCamp != parCamp {
		t.Fatalf("campaign event stream differs between parallel 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serialCamp, parCamp)
	}
	if !strings.Contains(serialRun, "run/mc: case 1/") {
		t.Fatalf("sweep stream missing case events:\n%s", serialRun)
	}
	if !strings.Contains(serialCamp, "campaign/profile") || !strings.Contains(serialCamp, "injection 1/") {
		t.Fatalf("campaign stream missing profile/injection events:\n%s", serialCamp)
	}
}

// TestStencilThroughPublicAPI drives the extension workload family
// end to end on the public surface alone: build the platform, crash the
// extended relaxation mid-run, recover via the algorithm-directed walk,
// and verify against the exported oracle — then sweep the registered
// "stencil" workload through a campaign and require the
// algorithm-directed scheme to survive every injection.
func TestStencilThroughPublicAPI(t *testing.T) {
	opts := adcc.HeatOptions{N: 48, MaxIter: 10, Seed: 5}
	m := adcc.NewMachine(adcc.MachineConfig{System: adcc.NVMOnly})
	em := adcc.NewEmulator(m)
	h := adcc.NewHeat(m, em, opts)
	em.CrashAtTrigger(adcc.TriggerStencilIterEnd, 7)
	if !em.Run(func() { h.Run(1) }) {
		t.Fatal("did not crash")
	}
	rec := h.Recover()
	if rec.CrashIter != 7 {
		t.Fatalf("crash iter = %d, want 7", rec.CrashIter)
	}
	h.Run(rec.RestartIter)
	if err := adcc.HeatVerify(h.Result(), adcc.HeatWant(opts)); err != nil {
		t.Fatalf("recovered relaxation corrupt: %v", err)
	}

	runner := adcc.New(nil,
		adcc.WithScale(0.02),
		adcc.WithParallelism(4),
		adcc.WithWorkloads(adcc.WorkloadStencil),
		adcc.WithSchemes(adcc.SchemeAlgoNVM, adcc.SchemeAlgoNaive),
		adcc.WithInjectionsPerCell(4),
	)
	rep, err := runner.RunCampaign(context.Background())
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(rep.Cells) != 4 { // 2 schemes x 2 systems
		t.Fatalf("campaign swept %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Scheme == adcc.SchemeAlgoNVM && c.Failures() != 0 {
			t.Errorf("%s@%s: %d failures, want 0", c.Scheme, c.System, c.Failures())
		}
	}
}

// TestRunReportCollector asserts WithCollector records one result per
// swept case with the deterministic simulated timing.
func TestRunReportCollector(t *testing.T) {
	col := adcc.NewCollector()
	runner := adcc.New(nil,
		adcc.WithScale(0.02),
		adcc.WithCollector(col),
		adcc.WithSchemes(adcc.SchemeNative, adcc.SchemeAlgoNVM),
	)
	rep, err := runner.Run(context.Background(), adcc.WorkloadCG)
	if err != nil {
		t.Fatal(err)
	}
	results := col.Results()
	if len(results) != len(rep.Cases) {
		t.Fatalf("collector has %d results, want %d", len(results), len(rep.Cases))
	}
	for _, r := range results {
		if !strings.HasPrefix(r.Name, "cg/") || r.SimNS <= 0 {
			t.Fatalf("unexpected collected result %+v", r)
		}
	}
}
