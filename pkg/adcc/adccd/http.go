package adccd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"adcc/pkg/adcc"
)

// httpError is an error with an HTTP status code; handlers render it
// as a JSON error document.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// Handler returns the service's HTTP API. Routes (see docs/HTTP_API.md):
//
//	POST /v1/campaigns              submit a CampaignSpec; returns JobInfo
//	GET  /v1/campaigns              list jobs in submission order
//	GET  /v1/campaigns/{id}         one job's JobInfo
//	GET  /v1/campaigns/{id}/events  SSE stream of the job's event history
//	GET  /v1/campaigns/{id}/report  the finished adcc-report/v1 envelope
//	GET  /v1/campaigns/{id}/store   the columnar result store artifact
//	GET  /v1/campaigns/{id}/query   filtered aggregates over the store
//	GET  /v1/healthz                liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/campaigns/{id}/store", s.handleStore)
	mux.HandleFunc("GET /v1/campaigns/{id}/query", s.handleQuery)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec adcc.CampaignSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, &httpError{code: http.StatusBadRequest, msg: "bad campaign spec: " + err.Error()})
		return
	}
	info, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	// 200 when the submission was answered without queueing new work
	// (cache hit or dedup against a finished job), 202 otherwise.
	code := http.StatusAccepted
	if info.Status == adcc.JobDone {
		code = http.StatusOK
	}
	writeJSON(w, code, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.Job(id)
	if !ok {
		writeError(w, &httpError{code: http.StatusNotFound, msg: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	b, err := s.Report(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// handleStore serves a finished job's columnar result store verbatim —
// the bytes adcc.WithCampaignStore wrote, ready for adccquery or
// adcc.OpenResultStoreBytes on the client side.
func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	b, err := s.StoreArtifact(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(b)
}

// handleQuery runs the result-store query layer server-side over a
// finished job's artifact. Filters (workload, scheme, system, fault,
// outcome; empty means any) select rows; view picks the shape:
//
//	aggregate  (default) outcome counts + metric distributions
//	cells      per-cell CellReport aggregates of the filtered rows
//	report     the adcc-report/v1 envelope rebuilt from the store —
//	           with no filters, byte-identical to /report
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	b, err := s.StoreArtifact(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	st, err := adcc.OpenResultStoreBytes(b)
	if err != nil {
		writeError(w, fmt.Errorf("open store artifact: %w", err))
		return
	}
	q := r.URL.Query()
	f := adcc.StoreFilter{
		Workload:   q.Get("workload"),
		Scheme:     q.Get("scheme"),
		System:     q.Get("system"),
		FaultModel: q.Get("fault"),
		Outcome:    q.Get("outcome"),
	}
	view := q.Get("view")
	if view == "" {
		view = "aggregate"
	}
	switch view {
	case "aggregate":
		agg, err := st.Aggregate(f)
		if err != nil {
			writeError(w, &httpError{code: http.StatusBadRequest, msg: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, agg)
	case "cells":
		cells, err := st.CellReports(f)
		if err != nil {
			writeError(w, &httpError{code: http.StatusBadRequest, msg: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"cells": cells})
	case "report":
		rep, err := queryReport(st, f)
		if err != nil {
			writeError(w, &httpError{code: http.StatusBadRequest, msg: err.Error()})
			return
		}
		env, err := adcc.NewCampaignReport(rep).EncodeJSON()
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(env)
	default:
		writeError(w, &httpError{code: http.StatusBadRequest,
			msg: fmt.Sprintf("unknown view %q (want aggregate, cells, or report)", view)})
	}
}

// queryReport rebuilds a campaign report from the store: the whole-run
// rebuild when unfiltered (proving byte-identity with the cached
// envelope), an assembled subset otherwise.
func queryReport(st *adcc.ResultStore, f adcc.StoreFilter) (*adcc.CampaignReport, error) {
	if f == (adcc.StoreFilter{}) {
		return st.CampaignReport()
	}
	cells, err := st.CellReports(f)
	if err != nil {
		return nil, err
	}
	rep := &adcc.CampaignReport{
		Schema: adcc.CampaignSchemaVersion,
		Scale:  st.Scale(),
		Seed:   st.Seed(),
		Cells:  cells,
	}
	for _, c := range cells {
		rep.Injections += c.Injections
	}
	return rep, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleEvents streams a job's event history as Server-Sent Events:
// every buffered frame from the requested position, then live frames as
// they land, then one synthetic terminal "done" frame (not part of the
// stored history) carrying the final JobInfo, after which the handler
// returns and the connection closes. Resume with ?from=<seq> or the
// standard Last-Event-ID header (both mean "last seq seen"; the stream
// restarts after it).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, &httpError{code: http.StatusNotFound, msg: "unknown job " + id})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &httpError{code: http.StatusInternalServerError, msg: "response writer does not support streaming"})
		return
	}
	next, err := resumeSeq(r)
	if err != nil {
		writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		evs, wake, done := j.eventsFrom(next)
		for _, e := range evs {
			writeSSE(w, e.Seq, e.Type, e.Data)
			next = e.Seq + 1
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		if done {
			final, _ := json.Marshal(j.snapshot())
			writeSSE(w, next, "done", final)
			fl.Flush()
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			// Server shutdown: terminate the stream without a done frame;
			// the job is not finished.
			return
		}
	}
}

// resumeSeq extracts the resume position of an event-stream request:
// the first frame to send is the one after the given sequence number.
func resumeSeq(r *http.Request) (int, error) {
	v := r.URL.Query().Get("from")
	if h := r.Header.Get("Last-Event-ID"); v == "" && h != "" {
		v = h
	}
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || n < 0 {
		return 0, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("bad resume position %q", v)}
	}
	return n + 1, nil
}

// writeSSE emits one Server-Sent Events frame.
func writeSSE(w http.ResponseWriter, seq int, typ string, data []byte) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, typ, data)
}
