package adccd

import (
	"encoding/json"
	"sync"

	"adcc/pkg/adcc"
)

// job is one campaign submission: its status document, the buffered
// event history every subscriber replays, and the finished report.
type job struct {
	mu     sync.Mutex
	info   adcc.JobInfo
	events []adcc.StreamEvent
	// wake is closed and replaced whenever events grow or the job
	// reaches a terminal state, waking every waiting subscriber.
	wake   chan struct{}
	done   bool
	report []byte
}

func newJob(info adcc.JobInfo) *job {
	return &job{info: info, wake: make(chan struct{})}
}

// snapshot returns a copy of the job's status document.
func (j *job) snapshot() adcc.JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

func (j *job) spec() adcc.CampaignSpec { return j.info.Spec }

func (j *job) status() adcc.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info.Status
}

func (j *job) reportBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

func (j *job) setStatus(st adcc.JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.info.Status = st
}

// complete marks the job done with its enveloped report.
func (j *job) complete(report []byte, injections int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.completeLocked(report, injections)
}

// completeLocked is complete for callers already holding j.mu (or
// holding the job exclusively during construction).
func (j *job) completeLocked(report []byte, injections int) {
	j.info.Status = adcc.JobDone
	j.info.Injections = injections
	j.info.ShardsDone = j.info.ShardsTotal
	j.report = report
	j.finishLocked()
}

// fail marks the job failed.
func (j *job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.info.Status = adcc.JobFailed
	j.info.Error = err.Error()
	j.finishLocked()
}

func (j *job) finishLocked() {
	if !j.done {
		j.done = true
		close(j.wake)
		j.wake = make(chan struct{})
	}
}

// appendEvent adds one frame to the event history and wakes
// subscribers.
func (j *job) appendEvent(typ string, data any) {
	b, err := json.Marshal(data)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, adcc.StreamEvent{Seq: len(j.events), Type: typ, Data: b})
	close(j.wake)
	j.wake = make(chan struct{})
}

// appendEngineEvent translates one deterministic engine event into its
// wire frame. The shapes here are the SSE data documents of
// docs/HTTP_API.md.
func (j *job) appendEngineEvent(e adcc.Event) {
	switch e := e.(type) {
	case adcc.CaseStarted:
		j.appendEvent("case_started", caseData{
			Experiment: e.Experiment, Case: e.Case, Index: e.Index, Total: e.Total,
		})
	case adcc.CaseFinished:
		j.appendEvent("case_finished", caseData{
			Experiment: e.Experiment, Case: e.Case, Index: e.Index, Total: e.Total, Error: e.Err,
		})
	case adcc.InjectionDone:
		j.appendEvent("injection_done", injectionData{
			Cell: e.Cell, Index: e.Index, Total: e.Total, Outcome: e.Outcome,
		})
	case adcc.Progress:
		j.appendEvent("progress", progressData{Stage: e.Stage, Done: e.Done, Total: e.Total})
	default:
		j.appendEvent("event", textData{Text: e.String()})
	}
}

// shardDone records one checkpointed shard and announces it on the
// event stream.
func (j *job) shardDone(cellKey string) {
	j.mu.Lock()
	j.info.ShardsDone++
	done, total := j.info.ShardsDone, j.info.ShardsTotal
	j.mu.Unlock()
	j.appendEvent("shard_done", shardData{Cell: cellKey, ShardsDone: done, ShardsTotal: total})
}

// eventsFrom returns the buffered frames at and after seq, a channel
// that is closed on the next append or state change, and whether the
// job is terminal.
func (j *job) eventsFrom(seq int) ([]adcc.StreamEvent, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []adcc.StreamEvent
	if seq < len(j.events) {
		evs = j.events[seq:len(j.events):len(j.events)]
	}
	return evs, j.wake, j.done
}

// SSE data payloads (see docs/HTTP_API.md).
type (
	caseData struct {
		Experiment string `json:"experiment"`
		Case       string `json:"case"`
		Index      int    `json:"index"`
		Total      int    `json:"total"`
		Error      string `json:"error,omitempty"`
	}
	injectionData struct {
		Cell    string `json:"cell"`
		Index   int    `json:"index"`
		Total   int    `json:"total"`
		Outcome string `json:"outcome"`
	}
	progressData struct {
		Stage string `json:"stage"`
		Done  int    `json:"done"`
		Total int    `json:"total"`
	}
	shardData struct {
		Cell        string `json:"cell"`
		ShardsDone  int    `json:"shards_done"`
		ShardsTotal int    `json:"shards_total"`
	}
	textData struct {
		Text string `json:"text"`
	}
)
