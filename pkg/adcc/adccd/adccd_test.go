package adccd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adcc/pkg/adcc"
	"adcc/pkg/adcc/adccclient"
)

// tinySpec is the cheapest interesting campaign: one workload, 2%
// scale, two injections per cell, 12 cells.
func tinySpec(replay bool) adcc.CampaignSpec {
	return adcc.CampaignSpec{Workloads: []string{"mm"}, Scale: 0.02, InjectionsPerCell: 2, Replay: replay}
}

// directReport runs spec straight through the public Runner and
// returns its enveloped bytes — the reference every service path must
// reproduce exactly.
func directReport(t *testing.T, spec adcc.CampaignSpec) []byte {
	t.Helper()
	rep, err := adcc.New(nil, append(spec.Options(), adcc.WithParallelism(2))...).RunCampaign(context.Background())
	if err != nil {
		t.Fatalf("direct RunCampaign: %v", err)
	}
	b, err := adcc.NewCampaignReport(rep).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitDone(t *testing.T, s *Server, id string) adcc.JobInfo {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		info, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if info.Status == adcc.JobDone || info.Status == adcc.JobFailed {
			return info
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return adcc.JobInfo{}
}

// TestServiceByteIdentity is the service's core contract: the report
// served over HTTP is byte-identical to running the same spec directly
// through Runner.RunCampaign, for both engines and at service
// parallelism different from the reference run.
func TestServiceByteIdentity(t *testing.T) {
	for _, replay := range []bool{false, true} {
		srv, err := New(Config{Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		c := adccclient.New(ts.URL, nil)

		spec := tinySpec(replay)
		info, err := c.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("replay=%v: Submit: %v", replay, err)
		}
		if info.Status == adcc.JobFailed {
			t.Fatalf("replay=%v: job failed: %s", replay, info.Error)
		}
		final, err := c.Wait(context.Background(), info.ID, 20*time.Millisecond)
		if err != nil || final.Status != adcc.JobDone {
			t.Fatalf("replay=%v: Wait: %v (status %s, err %q)", replay, err, final.Status, final.Error)
		}
		got, err := c.Report(context.Background(), info.ID)
		if err != nil {
			t.Fatalf("replay=%v: Report: %v", replay, err)
		}
		if want := directReport(t, spec); !bytes.Equal(got, want) {
			t.Errorf("replay=%v: served report differs from direct RunCampaign (%d vs %d bytes)",
				replay, len(got), len(want))
		}
		if final.ShardsDone != final.ShardsTotal || final.ShardsTotal == 0 {
			t.Errorf("replay=%v: shards %d/%d", replay, final.ShardsDone, final.ShardsTotal)
		}
		ts.Close()
		srv.Close()
	}
}

// TestCacheHit asserts that resubmitting a spec with the same cache key
// does zero engine work — both against the live job table (dedupe) and,
// after a restart over the same state directory, against the on-disk
// result cache.
func TestCacheHit(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{StateDir: dir, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	info, err := srv.Submit(tinySpec(true))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv, info.ID)
	want, err := srv.Report(info.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Same key, different spelling (engine choice, list duplicates):
	// answered by the live finished job, no new campaign.
	dup, err := srv.Submit(adcc.CampaignSpec{Workloads: []string{"mm", "mm"}, Scale: 0.02, InjectionsPerCell: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != info.ID {
		t.Errorf("dedup returned new job %s, want %s", dup.ID, info.ID)
	}
	if st := srv.Stats(); st.Deduped != 1 || st.CampaignsRun != 1 {
		t.Errorf("after dedup: %+v", st)
	}
	srv.Close()

	// Fresh process over the same state dir: resubmission dedupes
	// against the restored finished job, and its report is served from
	// the cache (the restarted process holds no report bytes in memory).
	srv2, err := New(Config{StateDir: dir, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := srv2.Submit(tinySpec(false))
	if err != nil {
		t.Fatal(err)
	}
	if hit.Status != adcc.JobDone || hit.ID != info.ID {
		t.Errorf("restart submit: status %s id %s, want done job %s", hit.Status, hit.ID, info.ID)
	}
	if got, err := srv2.Report(info.ID); err != nil || !bytes.Equal(got, want) {
		t.Errorf("job report after restart: %v", err)
	}
	if st := srv2.Stats(); st.Deduped != 1 || st.CampaignsRun != 0 || st.CellsExecuted != 0 {
		t.Errorf("restart stats %+v, want zero engine work", st)
	}
	srv2.Close()

	// With the job table gone (only the content-addressed cache left),
	// the same submission is answered straight from the cache.
	if err := os.RemoveAll(filepath.Join(dir, "jobs")); err != nil {
		t.Fatal(err)
	}
	srv3, err := New(Config{StateDir: dir, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	cached, err := srv3.Submit(tinySpec(false))
	if err != nil {
		t.Fatal(err)
	}
	if cached.Status != adcc.JobDone || !cached.Cached {
		t.Errorf("cache submit: status %s cached %v, want done from cache", cached.Status, cached.Cached)
	}
	got, err := srv3.Report(cached.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("cached report differs from original")
	}
	if st := srv3.Stats(); st.CacheHits != 1 || st.CampaignsRun != 0 || st.CellsExecuted != 0 {
		t.Errorf("cache stats %+v, want pure cache hit", st)
	}
}

// TestKillAndResume kills the daemon after exactly one shard checkpoint
// and restarts it over the same state directory: the job must resume
// from the persisted shard, re-execute only the remaining cells, and
// serve a report byte-identical to an uninterrupted run.
func TestKillAndResume(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(true)
	want := directReport(t, spec)

	// One worker, so no other cell can complete while the checkpoint
	// hook holds the single worker hostage.
	srv, err := New(Config{StateDir: dir, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	first := make(chan struct{})
	// After the first shard persists, block the checkpoint path until
	// shutdown so exactly one shard is on disk when the process "dies".
	srv.testCellHook = func(ctx context.Context, _ string) {
		once.Do(func() { close(first) })
		<-ctx.Done()
	}
	info, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-first
	srv.Close()

	srv2, err := New(Config{StateDir: dir, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resumed, ok := srv2.Job(info.ID)
	if !ok {
		t.Fatalf("job %s not restored", info.ID)
	}
	if !resumed.Resumed {
		t.Error("restored job not marked resumed")
	}
	final := waitDone(t, srv2, info.ID)
	if final.Status != adcc.JobDone {
		t.Fatalf("resumed job: %s (%s)", final.Status, final.Error)
	}
	got, err := srv2.Report(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed report differs from uninterrupted run")
	}
	st := srv2.Stats()
	if st.JobsResumed != 1 {
		t.Errorf("JobsResumed = %d", st.JobsResumed)
	}
	if want := int64(final.ShardsTotal - 1); st.CellsExecuted != want {
		t.Errorf("resume executed %d cells, want %d (one was checkpointed)", st.CellsExecuted, want)
	}
	// A resumed run splices restored aggregates that carry no rows, so
	// it records no columnar store artifact.
	if _, err := srv2.StoreArtifact(info.ID); err == nil {
		t.Error("resumed job served a store artifact; restored cells have no rows to store")
	}
}

// TestEventStreamMatchesDirect asserts the SSE stream carries exactly
// the deterministic engine events a direct run emits, in order, with
// shard_done markers interleaved and a terminal done frame.
func TestEventStreamMatchesDirect(t *testing.T) {
	spec := tinySpec(true)

	// Reference: encode the direct runner's events with the same wire
	// encoding the service uses.
	ref := newJob(adcc.JobInfo{})
	runner := adcc.New(nil, append(spec.Options(),
		adcc.WithParallelism(2), adcc.WithEventSink(adcc.SinkFunc(ref.appendEngineEvent)))...)
	if _, err := runner.RunCampaign(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantEvents, _, _ := ref.eventsFrom(0)

	srv, err := New(Config{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := adccclient.New(ts.URL, nil)
	info, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var got []adcc.StreamEvent
	var doneFrames int
	if err := c.Events(context.Background(), info.ID, -1, func(e adcc.StreamEvent) error {
		switch e.Type {
		case "done":
			doneFrames++
		case "shard_done":
		default:
			got = append(got, e)
		}
		return nil
	}); err != nil {
		t.Fatalf("Events: %v", err)
	}
	if doneFrames != 1 {
		t.Errorf("saw %d done frames, want 1", doneFrames)
	}
	if len(got) != len(wantEvents) {
		t.Fatalf("streamed %d engine events, direct run emitted %d", len(got), len(wantEvents))
	}
	for i := range got {
		if got[i].Type != wantEvents[i].Type || !bytes.Equal(got[i].Data, wantEvents[i].Data) {
			t.Fatalf("event %d differs:\n  got  %s %s\n  want %s %s",
				i, got[i].Type, got[i].Data, wantEvents[i].Type, wantEvents[i].Data)
		}
	}

	// Resuming mid-history replays exactly the tail.
	mid := len(wantEvents) / 2
	var tail []adcc.StreamEvent
	if err := c.Events(context.Background(), info.ID, mid, func(e adcc.StreamEvent) error {
		tail = append(tail, e)
		return nil
	}); err != nil {
		t.Fatalf("resumed Events: %v", err)
	}
	if len(tail) == 0 || tail[0].Seq != mid+1 {
		t.Fatalf("resume from %d started at %d", mid, tail[0].Seq)
	}
}

// TestHTTPErrors covers the documented error responses.
func TestHTTPErrors(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&doc)
		msg, _ := doc["error"].(string)
		return resp.StatusCode, msg
	}
	if code, msg := post(`{"workloads":["bogus"]}`); code != http.StatusBadRequest || msg == "" {
		t.Errorf("unknown workload: %d %q", code, msg)
	}
	if code, msg := post(`{"wrkloads":["mm"]}`); code != http.StatusBadRequest || !strings.Contains(msg, "wrkloads") {
		t.Errorf("unknown field: %d %q", code, msg)
	}
	if code, _ := post(`{`); code != http.StatusBadRequest {
		t.Errorf("truncated body: %d", code)
	}
	for _, path := range []string{"/v1/campaigns/nope", "/v1/campaigns/nope/report", "/v1/campaigns/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestStoreAndQueryEndpoints covers the result-store plane of the
// service: a fresh job's raw artifact is a valid columnar store whose
// row count matches the report, and the query endpoint's unfiltered
// report view is byte-identical to the served envelope.
func TestStoreAndQueryEndpoints(t *testing.T) {
	srv, err := New(Config{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	info, err := srv.Submit(tinySpec(true))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, info.ID)
	if final.Status != adcc.JobDone {
		t.Fatalf("job: %s (%s)", final.Status, final.Error)
	}
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	c := adccclient.New(ts.URL, nil)
	raw, err := c.Store(context.Background(), info.ID)
	if err != nil {
		t.Fatalf("client Store: %v", err)
	}
	st, err := adcc.OpenResultStoreBytes(raw)
	if err != nil {
		t.Fatalf("served artifact does not open: %v", err)
	}
	if st.TotalRows() != int64(final.Injections) {
		t.Errorf("store has %d rows, report counted %d injections", st.TotalRows(), final.Injections)
	}

	code, rebuilt := get("/v1/campaigns/" + info.ID + "/query?view=report")
	if code != http.StatusOK {
		t.Fatalf("GET query?view=report: %d %s", code, rebuilt)
	}
	served, err := srv.Report(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, served) {
		t.Errorf("query-rebuilt envelope differs from served report (%d vs %d bytes)",
			len(rebuilt), len(served))
	}

	agg, err := c.QueryAggregate(context.Background(), info.ID, adcc.StoreFilter{})
	if err != nil {
		t.Fatalf("client QueryAggregate: %v", err)
	}
	if agg.Rows != int64(final.Injections) {
		t.Errorf("aggregate covers %d rows, want %d", agg.Rows, final.Injections)
	}
	// Filtering to one outcome partitions the row count.
	var filtered int64
	for name, n := range agg.Outcomes {
		fa, err := c.QueryAggregate(context.Background(), info.ID, adcc.StoreFilter{Outcome: name})
		if err != nil {
			t.Fatalf("filtered QueryAggregate(%s): %v", name, err)
		}
		if fa.Rows != n {
			t.Errorf("outcome %s: filtered aggregate has %d rows, unfiltered counted %d", name, fa.Rows, n)
		}
		filtered += fa.Rows
	}
	if filtered != agg.Rows {
		t.Errorf("outcome partitions sum to %d of %d rows", filtered, agg.Rows)
	}

	// A filtered cells view returns a strict subset.
	code, cellsRaw := get("/v1/campaigns/" + info.ID + "/query?view=cells&scheme=" + srv.reg.SchemeNames()[0])
	if code != http.StatusOK {
		t.Fatalf("GET query?view=cells: %d %s", code, cellsRaw)
	}
	var cellsDoc struct {
		Cells []adcc.CampaignCell `json:"cells"`
	}
	if err := json.Unmarshal(cellsRaw, &cellsDoc); err != nil {
		t.Fatal(err)
	}
	if n := len(cellsDoc.Cells); n == 0 || n >= final.ShardsTotal {
		t.Errorf("filtered cells view returned %d of %d cells, want a strict non-empty subset",
			n, final.ShardsTotal)
	}

	// Error shapes: bad view and bad outcome filter are 400s.
	if code, body := get("/v1/campaigns/" + info.ID + "/query?view=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus view: %d %s", code, body)
	}
	if code, body := get("/v1/campaigns/" + info.ID + "/query?outcome=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus outcome filter: %d %s", code, body)
	}
	if code, _ := get("/v1/campaigns/nope/store"); code != http.StatusNotFound {
		t.Errorf("unknown job store: %d", code)
	}
}

// TestStoreArtifactPersistsAndEvicts covers the artifact's on-disk
// life cycle: written beside the cached envelope, served across a
// restart by a content-addressed hit, and evicted as a pair with it.
func TestStoreArtifactPersistsAndEvicts(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{StateDir: dir, Parallel: 4, CacheEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	info, err := srv.Submit(tinySpec(true))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv, info.ID)
	artifact := filepath.Join(dir, "cache", info.CacheKey+".adccs")
	if _, err := os.Stat(artifact); err != nil {
		t.Fatalf("artifact not persisted: %v", err)
	}
	want, err := srv.StoreArtifact(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// A restarted process answers the same spec from the cache and still
	// serves the artifact its original computation wrote.
	srv2, err := New(Config{StateDir: dir, Parallel: 4, CacheEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := srv2.Submit(tinySpec(false))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := srv2.StoreArtifact(hit.ID); err != nil || !bytes.Equal(got, want) {
		t.Errorf("artifact after restart: %v (%d vs %d bytes)", err, len(got), len(want))
	}

	// A second distinct spec overflows the one-entry cache: the old
	// envelope and its artifact must go together.
	other, err := srv2.Submit(adcc.CampaignSpec{Workloads: []string{"mc"}, Scale: 0.02, InjectionsPerCell: 2, Replay: true})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv2, other.ID)
	if _, err := os.Stat(artifact); !os.IsNotExist(err) {
		t.Errorf("evicted envelope left its artifact behind: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cache", other.CacheKey+".adccs")); err != nil {
		t.Errorf("new artifact missing: %v", err)
	}
	srv2.Close()
}
