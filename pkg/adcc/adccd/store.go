package adccd

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"adcc/pkg/adcc"
)

// store persists service state under one directory:
//
//	<dir>/jobs/<id>/job.json        adcc.JobInfo status document
//	<dir>/jobs/<id>/shards/*.json   one checkpointed CampaignCell each
//	<dir>/cache/<cache-key>.json    finished adcc-report/v1 envelopes
//	<dir>/cache/<cache-key>.adccs   columnar result store artifacts
//
// The .adccs artifact rides along with its envelope: both are keyed by
// the spec's content address, and eviction removes them as a pair, so a
// servable report always answers the query endpoint too (unless the job
// was resumed — restored shards carry no per-injection rows).
//
// With an empty dir the store is ephemeral: the cache lives in memory
// and jobs/shards are not persisted at all (nothing to resume).
type store struct {
	dir string

	mu        sync.Mutex
	mem       map[string][]byte // ephemeral result cache
	memStores map[string][]byte // ephemeral store artifacts
	entries   int               // cache size bound; <= 0 unbounded
}

func newStore(dir string, cacheEntries int) (*store, error) {
	s := &store{dir: dir, entries: cacheEntries}
	if dir == "" {
		s.mem = map[string][]byte{}
		s.memStores = map[string][]byte{}
		return s, nil
	}
	for _, sub := range []string{"jobs", "cache"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *store) ephemeral() bool { return s.dir == "" }

// cacheGet looks a finished report up by its content address and, on a
// hit, marks the entry recently used.
func (s *store) cacheGet(key string) ([]byte, bool) {
	if s.ephemeral() {
		s.mu.Lock()
		defer s.mu.Unlock()
		b, ok := s.mem[key]
		return b, ok
	}
	path := s.cachePath(key)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // LRU touch; best effort
	return b, true
}

// cachePut stores a finished report under its content address and
// evicts least-recently-used entries past the configured bound.
func (s *store) cachePut(key string, b []byte) error {
	if s.ephemeral() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.mem[key] = b
		// The ephemeral map has no useful recency order; bound it by
		// dropping arbitrary entries, which only tests exercise. A
		// dropped envelope takes its store artifact with it.
		for s.entries > 0 && len(s.mem) > s.entries {
			for k := range s.mem {
				if k != key {
					delete(s.mem, k)
					delete(s.memStores, k)
					break
				}
			}
		}
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeFileAtomic(s.cachePath(key), b); err != nil {
		return err
	}
	return s.evictLocked()
}

func (s *store) cachePath(key string) string {
	return filepath.Join(s.dir, "cache", key+".json")
}

func (s *store) storePath(key string) string {
	return filepath.Join(s.dir, "cache", key+".adccs")
}

// storeTempPath is where a running job writes its columnar store before
// adoption: next to the cache (same filesystem, so the adopting rename
// is atomic) when persistent, under the OS temp directory when
// ephemeral. The job ID keeps concurrent jobs apart.
func (s *store) storeTempPath(jobID string) string {
	if s.ephemeral() {
		return filepath.Join(os.TempDir(), "adccd-"+jobID+".adccs")
	}
	return filepath.Join(s.dir, "cache", ".tmp-"+jobID+".adccs")
}

// storeAdopt moves a finished job's temp store artifact under its
// content address (or into memory when ephemeral), making it servable.
func (s *store) storeAdopt(key, tmp string) error {
	if s.ephemeral() {
		b, err := os.ReadFile(tmp)
		if err != nil {
			return err
		}
		_ = os.Remove(tmp)
		s.mu.Lock()
		defer s.mu.Unlock()
		// Keep the pairing invariant: an artifact without its envelope
		// (dropped by the size bound) is unreachable, so don't keep it.
		if _, ok := s.mem[key]; !ok {
			return nil
		}
		s.memStores[key] = b
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Rename(tmp, s.storePath(key))
}

// storeDiscard removes a temp store artifact of a job that failed or
// was interrupted (a partial store has no valid footer to serve).
func (s *store) storeDiscard(tmp string) {
	_ = os.Remove(tmp)
}

// storeGet returns the columnar store artifact for a content address,
// refreshing the paired envelope's LRU stamp on a hit.
func (s *store) storeGet(key string) ([]byte, bool) {
	if s.ephemeral() {
		s.mu.Lock()
		defer s.mu.Unlock()
		b, ok := s.memStores[key]
		return b, ok
	}
	b, err := os.ReadFile(s.storePath(key))
	if err != nil {
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(s.cachePath(key), now, now) // keep the pair alive; best effort
	return b, true
}

// evictLocked removes the oldest cache entries (by the envelope's
// mtime, the last-used stamp) until the entry bound holds. An entry is
// the envelope plus its store artifact; they are evicted together.
func (s *store) evictLocked() error {
	if s.entries <= 0 {
		return nil
	}
	dents, err := os.ReadDir(filepath.Join(s.dir, "cache"))
	if err != nil {
		return err
	}
	type ent struct {
		name string
		mod  time.Time
	}
	var ents []ent
	for _, d := range dents {
		if !strings.HasSuffix(d.Name(), ".json") {
			continue // artifacts and temp files follow their envelope
		}
		info, err := d.Info()
		if err != nil {
			continue
		}
		ents = append(ents, ent{d.Name(), info.ModTime()})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].mod.Before(ents[j].mod) })
	for i := 0; i < len(ents)-s.entries; i++ {
		_ = os.Remove(filepath.Join(s.dir, "cache", ents[i].name))
		_ = os.Remove(filepath.Join(s.dir, "cache",
			strings.TrimSuffix(ents[i].name, ".json")+".adccs"))
	}
	return nil
}

// putJob persists a job's status document (best effort: a lost write
// costs a resume, not correctness).
func (s *store) putJob(info adcc.JobInfo) {
	if s.ephemeral() {
		return
	}
	dir := filepath.Join(s.dir, "jobs", info.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return
	}
	_ = writeFileAtomic(filepath.Join(dir, "job.json"), append(b, '\n'))
}

// putShard persists one checkpointed cell of a running job.
func (s *store) putShard(jobID string, c adcc.CampaignCell) {
	if s.ephemeral() {
		return
	}
	dir := filepath.Join(s.dir, "jobs", jobID, "shards")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return
	}
	_ = writeFileAtomic(filepath.Join(dir, shardFile(c.Key())), append(b, '\n'))
}

// dropShards deletes a finished job's checkpoints (its report is in the
// cache; the shards have nothing left to resume).
func (s *store) dropShards(jobID string) {
	if s.ephemeral() {
		return
	}
	_ = os.RemoveAll(filepath.Join(s.dir, "jobs", jobID, "shards"))
}

// shardFile maps a cell key to a stable filename: the key sanitized for
// the filesystem plus an FNV tag so sanitization collisions (for
// example "/" and "-" both mapping to "-") cannot alias two cells.
func shardFile(cellKey string) string {
	h := fnv.New32a()
	h.Write([]byte(cellKey))
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, cellKey)
	return fmt.Sprintf("%s-%08x.json", safe, h.Sum32())
}

// loadedJob is one persisted job with its shard checkpoints.
type loadedJob struct {
	info   adcc.JobInfo
	shards map[string]adcc.CampaignCell
}

// loadJobs reads every persisted job. Unreadable jobs or shards are
// skipped (a lost shard is recomputed, not fatal).
func (s *store) loadJobs() ([]loadedJob, error) {
	if s.ephemeral() {
		return nil, nil
	}
	dents, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var out []loadedJob
	for _, d := range dents {
		if !d.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, "jobs", d.Name(), "job.json"))
		if err != nil {
			continue
		}
		var info adcc.JobInfo
		if err := json.Unmarshal(b, &info); err != nil || info.ID == "" {
			continue
		}
		lj := loadedJob{info: info, shards: map[string]adcc.CampaignCell{}}
		shardDir := filepath.Join(s.dir, "jobs", d.Name(), "shards")
		if sdents, err := os.ReadDir(shardDir); err == nil {
			for _, sd := range sdents {
				sb, err := os.ReadFile(filepath.Join(shardDir, sd.Name()))
				if err != nil {
					continue
				}
				var c adcc.CampaignCell
				if err := json.Unmarshal(sb, &c); err != nil {
					continue
				}
				lj.shards[c.Key()] = c
			}
		}
		out = append(out, lj)
	}
	return out, nil
}

// writeFileAtomic writes b to path via a rename so readers (and a
// crash mid-write) never observe a torn file.
func writeFileAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
