// Package adccd implements the campaign service behind the adccd
// daemon: a long-running HTTP/JSON front end over pkg/adcc that accepts
// campaign specs (POST /v1/campaigns), fans their shards across a
// bounded worker pool, streams the deterministic event layer to clients
// over SSE, persists per-shard progress so a killed daemon resumes
// in-flight campaigns instead of restarting them, and serves finished
// adcc-report/v1 envelopes from a content-addressed result cache.
// Fresh runs also record the columnar per-injection result store
// (internal/resultstore via adcc.WithCampaignStore), served raw at
// /store and queried server-side at /query — filters, aggregates with
// percentiles, and an envelope rebuild that is byte-identical to the
// cached report.
//
// The service adds no computation of its own: every report it serves is
// byte-identical to the same spec run directly through
// adcc.Runner.RunCampaign, whatever the parallelism, engine
// (spec.Replay), cache state, or number of resume cycles — the
// determinism contract of the layers below is what makes caching and
// checkpoint splicing sound. See docs/HTTP_API.md for the wire
// reference and docs/OPERATIONS.md for running the daemon.
package adccd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"adcc/pkg/adcc"
)

// Config parameterizes a Server.
type Config struct {
	// StateDir is the persistence root (job specs, shard checkpoints,
	// the result cache). Empty means ephemeral: everything lives in
	// memory and nothing survives a restart — fine for tests, wrong for
	// a daemon. See docs/OPERATIONS.md for the on-disk layout.
	StateDir string
	// Parallel bounds how many shards of one campaign execute
	// concurrently (adcc.WithParallelism); <= 0 means GOMAXPROCS.
	Parallel int
	// Jobs bounds how many campaigns execute concurrently; <= 0 means 1.
	// Queued jobs start in submission order as slots free up.
	Jobs int
	// CacheEntries bounds the result cache (least-recently-used entries
	// are evicted past the limit); <= 0 means unbounded.
	CacheEntries int
	// Registry resolves workload and scheme names; nil means a fresh
	// built-in registry. Custom schemes and workloads registered here
	// become sweepable by naming them in submitted specs.
	Registry *adcc.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Stats counts service activity since process start; read a snapshot
// with Server.Stats. The counters make cache behaviour observable:
// a submission that does zero engine work bumps CacheHits or Deduped
// and leaves CampaignsRun and CellsExecuted unchanged.
type Stats struct {
	// Submitted counts accepted POST /v1/campaigns requests.
	Submitted int64
	// Deduped counts submissions answered by an existing live job with
	// the same cache key.
	Deduped int64
	// CacheHits counts submissions answered from the on-disk result
	// cache without running the campaign.
	CacheHits int64
	// CampaignsRun counts campaign executions started (fresh or
	// resumed).
	CampaignsRun int64
	// CellsExecuted counts sweep cells actually computed (checkpointed
	// cells adopted on resume are not re-counted).
	CellsExecuted int64
	// JobsResumed counts jobs continued from persisted shard progress
	// at daemon startup.
	JobsResumed int64
}

// Server is the campaign service. Build one with New, mount Handler on
// an http.Server, and Close it to shut down gracefully: running
// campaigns stop at the next shard boundary, their completed shards
// stay on disk, and the next New over the same state directory resumes
// them.
type Server struct {
	cfg   Config
	reg   *adcc.Registry
	store *store

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sem    chan struct{}

	mu    sync.Mutex
	jobs  map[string]*job
	byKey map[string]*job
	order []string

	stats struct {
		submitted, deduped, cacheHits atomic.Int64
		campaignsRun, cellsExecuted   atomic.Int64
		jobsResumed                   atomic.Int64
	}

	// testCellHook, when set (tests only), runs after each shard
	// checkpoint is persisted, before the next cell executes.
	testCellHook func(ctx context.Context, cellKey string)
}

// New builds a Server over cfg, loading persisted state and resuming
// any job that was queued or running when the previous process died.
func New(cfg Config) (*Server, error) {
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = adcc.NewRegistry()
	}
	st, err := newStore(cfg.StateDir, cfg.CacheEntries)
	if err != nil {
		return nil, fmt.Errorf("adccd: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		reg:    reg,
		store:  st,
		ctx:    ctx,
		cancel: cancel,
		sem:    make(chan struct{}, cfg.Jobs),
		jobs:   map[string]*job{},
		byKey:  map[string]*job{},
	}
	if err := s.loadState(); err != nil {
		cancel()
		return nil, fmt.Errorf("adccd: %w", err)
	}
	return s, nil
}

// Close shuts the service down: in-flight campaigns are cancelled (their
// persisted shard progress is kept for the next start), event streams
// terminate, and Close returns once every job goroutine has exited.
func (s *Server) Close() error {
	s.cancel()
	s.wg.Wait()
	return nil
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:     s.stats.submitted.Load(),
		Deduped:       s.stats.deduped.Load(),
		CacheHits:     s.stats.cacheHits.Load(),
		CampaignsRun:  s.stats.campaignsRun.Load(),
		CellsExecuted: s.stats.cellsExecuted.Load(),
		JobsResumed:   s.stats.jobsResumed.Load(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit validates spec, canonicalizes it, and returns the job serving
// its result: an existing live job with the same cache key (submissions
// are idempotent per key), a completed job answered straight from the
// result cache, or a freshly queued campaign. It is the programmatic
// form of POST /v1/campaigns.
func (s *Server) Submit(spec adcc.CampaignSpec) (adcc.JobInfo, error) {
	canon := spec.Canonical()
	cells, err := adcc.CampaignCells(s.reg, canon)
	if err != nil {
		return adcc.JobInfo{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	key := canon.CacheKey()
	s.stats.submitted.Add(1)

	s.mu.Lock()
	if prev := s.byKey[key]; prev != nil && prev.status() != adcc.JobFailed {
		s.mu.Unlock()
		s.stats.deduped.Add(1)
		return prev.snapshot(), nil
	}
	j := s.newJobLocked(canon, key, len(cells))
	if b, ok := s.store.cacheGet(key); ok {
		// Content-addressed hit: the result of this exact spec+seed is
		// already on disk; serve it without any engine work.
		j.info.Cached = true
		j.completeLocked(b, 0)
		s.mu.Unlock()
		s.stats.cacheHits.Add(1)
		s.store.putJob(j.snapshot())
		s.logf("job %s: cache hit for %s", j.info.ID, shortKey(key))
		return j.snapshot(), nil
	}
	s.mu.Unlock()
	s.store.putJob(j.snapshot())
	s.logf("job %s: queued (%d shards, key %s)", j.info.ID, len(cells), shortKey(key))
	s.startJob(j, nil)
	return j.snapshot(), nil
}

// Job returns the status of one job by ID.
func (s *Server) Job(id string) (adcc.JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return adcc.JobInfo{}, false
	}
	return j.snapshot(), true
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []adcc.JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]adcc.JobInfo, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshot())
	}
	return out
}

// Report returns the finished adcc-report/v1 envelope of a job.
func (s *Server) Report(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, &httpError{code: http.StatusNotFound, msg: "unknown job " + id}
	}
	switch j.status() {
	case adcc.JobFailed:
		return nil, &httpError{code: http.StatusConflict, msg: "job failed: " + j.snapshot().Error}
	case adcc.JobDone:
	default:
		return nil, &httpError{code: http.StatusConflict, msg: "job not finished (status " + string(j.status()) + ")"}
	}
	if b := j.reportBytes(); b != nil {
		return b, nil
	}
	// Completed in an earlier process: the report lives in the cache.
	if b, ok := s.store.cacheGet(j.snapshot().CacheKey); ok {
		return b, nil
	}
	return nil, &httpError{code: http.StatusGone, msg: "report evicted from cache; resubmit the spec to recompute"}
}

// StoreArtifact returns the columnar result store of a finished job:
// the raw per-injection rows its report was aggregated from, in the
// format adcc.OpenResultStoreBytes (and the adccquery CLI) reads.
// Artifacts are content-addressed like reports, so a cache-hit job
// serves the store its original computation wrote. Jobs resumed from
// shard checkpoints have no artifact (restored cells carry no rows).
func (s *Server) StoreArtifact(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, &httpError{code: http.StatusNotFound, msg: "unknown job " + id}
	}
	switch j.status() {
	case adcc.JobFailed:
		return nil, &httpError{code: http.StatusConflict, msg: "job failed: " + j.snapshot().Error}
	case adcc.JobDone:
	default:
		return nil, &httpError{code: http.StatusConflict, msg: "job not finished (status " + string(j.status()) + ")"}
	}
	if b, ok := s.store.storeGet(j.snapshot().CacheKey); ok {
		return b, nil
	}
	return nil, &httpError{code: http.StatusNotFound,
		msg: "no store artifact for job " + id + " (jobs resumed from checkpoints record none, and evicted artifacts leave with their cached report)"}
}

// newJobLocked registers a job record; the caller holds s.mu.
func (s *Server) newJobLocked(spec adcc.CampaignSpec, key string, shards int) *job {
	j := newJob(adcc.JobInfo{
		ID:          newJobID(),
		Status:      adcc.JobQueued,
		Spec:        spec,
		CacheKey:    key,
		ShardsTotal: shards,
	})
	s.jobs[j.info.ID] = j
	s.byKey[key] = j
	s.order = append(s.order, j.info.ID)
	return j
}

// registerLoadedLocked registers a job restored from disk; the caller
// holds s.mu. Completed jobs win the cache-key slot over older failed
// ones regardless of scan order.
func (s *Server) registerLoadedLocked(j *job) {
	s.jobs[j.info.ID] = j
	if prev := s.byKey[j.info.CacheKey]; prev == nil || prev.status() == adcc.JobFailed {
		s.byKey[j.info.CacheKey] = j
	}
	s.order = append(s.order, j.info.ID)
}

// loadState restores jobs from the state directory: finished jobs are
// registered as-is, interrupted ones resume from their persisted shard
// checkpoints.
func (s *Server) loadState() error {
	loaded, err := s.store.loadJobs()
	if err != nil {
		return err
	}
	sort.Slice(loaded, func(i, j int) bool { return loaded[i].info.ID < loaded[j].info.ID })
	for _, lj := range loaded {
		j := newJob(lj.info)
		switch j.info.Status {
		case adcc.JobDone, adcc.JobFailed:
			s.mu.Lock()
			s.registerLoadedLocked(j)
			s.mu.Unlock()
			continue
		}
		// Interrupted mid-campaign. If some other job already cached the
		// same result, adopt it; otherwise resume from the shards.
		if b, ok := s.store.cacheGet(j.info.CacheKey); ok {
			j.info.Cached = true
			j.completeLocked(b, 0)
			s.mu.Lock()
			s.registerLoadedLocked(j)
			s.mu.Unlock()
			s.store.putJob(j.snapshot())
			continue
		}
		j.info.Status = adcc.JobQueued
		j.info.Resumed = true
		j.info.ShardsDone = len(lj.shards)
		s.mu.Lock()
		s.registerLoadedLocked(j)
		s.mu.Unlock()
		s.stats.jobsResumed.Add(1)
		s.logf("job %s: resuming with %d/%d shards checkpointed",
			j.info.ID, len(lj.shards), j.info.ShardsTotal)
		s.startJob(j, lj.shards)
	}
	return nil
}

// startJob runs j's campaign on a worker slot. completed carries the
// shard checkpoints a resumed job adopts (nil for fresh jobs).
func (s *Server) startJob(j *job, completed map[string]adcc.CampaignCell) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case s.sem <- struct{}{}:
		case <-s.ctx.Done():
			// Shutdown while queued: the persisted job stays queued and
			// the next start requeues it.
			return
		}
		defer func() { <-s.sem }()
		s.runJob(j, completed)
	}()
}

// runJob executes one campaign, checkpointing every completed shard and
// finishing with the enveloped report in the result cache.
func (s *Server) runJob(j *job, completed map[string]adcc.CampaignCell) {
	j.setStatus(adcc.JobRunning)
	s.store.putJob(j.snapshot())
	s.stats.campaignsRun.Add(1)

	opts := append(j.spec().Options(),
		adcc.WithParallelism(s.cfg.Parallel),
		adcc.WithEventSink(adcc.SinkFunc(j.appendEngineEvent)),
		adcc.WithCampaignResume(completed),
		adcc.WithCampaignCheckpoint(func(c adcc.CampaignCell) {
			s.store.putShard(j.info.ID, c)
			j.shardDone(c.Key())
			s.stats.cellsExecuted.Add(1)
			if s.testCellHook != nil {
				s.testCellHook(s.ctx, c.Key())
			}
		}),
	)
	// Fresh jobs also record the per-injection columnar store the query
	// endpoints serve. Resumed jobs cannot: restored shard aggregates
	// carry no rows (the engine rejects a row sink combined with them),
	// so their key serves the envelope only.
	storeTmp := ""
	if len(completed) == 0 {
		storeTmp = s.store.storeTempPath(j.info.ID)
		opts = append(opts, adcc.WithCampaignStore(storeTmp))
	}
	rep, err := adcc.New(s.reg, opts...).RunCampaign(s.ctx)
	if err != nil {
		if storeTmp != "" {
			s.store.storeDiscard(storeTmp)
		}
		if s.ctx.Err() != nil {
			// Graceful shutdown: leave the job persisted as running so the
			// next start resumes from the checkpoints written so far.
			s.logf("job %s: interrupted by shutdown (%d/%d shards checkpointed)",
				j.info.ID, j.snapshot().ShardsDone, j.info.ShardsTotal)
			return
		}
		j.fail(err)
		s.store.putJob(j.snapshot())
		s.logf("job %s: failed: %v", j.info.ID, err)
		return
	}
	env := adcc.NewCampaignReport(rep)
	b, err := env.EncodeJSON()
	if err != nil {
		if storeTmp != "" {
			s.store.storeDiscard(storeTmp)
		}
		j.fail(err)
		s.store.putJob(j.snapshot())
		return
	}
	if err := s.store.cachePut(j.snapshot().CacheKey, b); err != nil {
		s.logf("job %s: cache write: %v", j.info.ID, err)
	}
	if storeTmp != "" {
		if err := s.store.storeAdopt(j.snapshot().CacheKey, storeTmp); err != nil {
			s.store.storeDiscard(storeTmp)
			s.logf("job %s: store artifact write: %v", j.info.ID, err)
		}
	}
	j.complete(b, rep.Injections)
	s.store.putJob(j.snapshot())
	s.store.dropShards(j.info.ID)
	s.logf("job %s: done (%d injections)", j.info.ID, rep.Injections)
}

// newJobID returns a fresh random job identifier.
func newJobID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("adccd: rand: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}

// shortKey abbreviates a cache key for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
