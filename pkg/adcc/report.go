package adcc

import (
	"adcc/internal/bench"
	"adcc/internal/campaign"
	"adcc/internal/report"
)

// Report is the adcc-report/v1 envelope: one versioned JSON shape
// wrapping every machine-readable artifact the system emits — bench
// suites and campaign reports — so a single decoder (ReadReport /
// DecodeReport) handles any file, including bare legacy payloads.
type Report = report.Envelope

// ReportSchemaVersion identifies the envelope layout.
const ReportSchemaVersion = report.SchemaVersion

// Report payload kinds.
const (
	// ReportKindBench marks a benchmark-suite report.
	ReportKindBench = report.KindBench
	// ReportKindCampaign marks a campaign report.
	ReportKindCampaign = report.KindCampaign
)

// NewBenchReport envelopes a benchmark suite.
func NewBenchReport(s Suite) Report { return report.WrapBench(s) }

// NewCampaignReport envelopes a campaign report.
func NewCampaignReport(r *CampaignReport) Report { return report.WrapCampaign(r) }

// ReadReport reads and decodes a report file: an adcc-report/v1
// envelope, a bare adcc-bench/v1 suite, or a bare adcc-campaign/v1
// report (legacy payloads are wrapped on the way in).
func ReadReport(path string) (Report, error) { return report.ReadFile(path) }

// DecodeReport decodes report bytes (enveloped or legacy).
func DecodeReport(b []byte) (Report, error) { return report.Decode(b) }

// CampaignReport is a full crash-injection campaign run: the sweep
// coordinates and one aggregated CampaignCell per workload x scheme x
// platform combination. All fields are deterministic functions of the
// code, scale, and seed.
type CampaignReport = campaign.Report

// CampaignCell aggregates every injection of one campaign cell.
type CampaignCell = campaign.CellReport

// CampaignSchemaVersion identifies the campaign payload layout.
const CampaignSchemaVersion = campaign.SchemaVersion

// Benchmark data model (the perf pipeline behind `adccbench -bench`
// and benchdiff).
type (
	// Result is one named measurement: host wall-clock metrics and/or
	// deterministic simulated metrics.
	Result = bench.Result
	// Suite is a full benchmark run with a canonical JSON encoding.
	Suite = bench.Suite
	// Collector accumulates Results from concurrently executing cases;
	// pass one to a Runner with WithCollector.
	Collector = bench.Collector
	// DiffOptions configures a suite comparison.
	DiffOptions = bench.DiffOptions
	// DiffReport is the outcome of a suite comparison.
	DiffReport = bench.Report
)

// BenchSchemaVersion identifies the bench payload layout.
const BenchSchemaVersion = bench.SchemaVersion

// NewCollector returns an empty benchmark collector.
func NewCollector() *Collector { return bench.NewCollector() }

// NewSuite assembles a schema-tagged suite with the results sorted by
// name.
func NewSuite(scale float64, results []Result) Suite {
	return bench.NewSuite(scale, results)
}

// RunKernels runs the kernel micro-benchmark suite (wall-clock and
// simulated metrics per kernel).
func RunKernels() []Result { return bench.RunKernels() }

// DiffSuites compares a candidate suite against a baseline (see the
// perf-regression policy in README.md).
func DiffSuites(base, candidate Suite, o DiffOptions) DiffReport {
	return bench.Diff(base, candidate, o)
}
