package adcc_test

import (
	"context"
	"fmt"

	"adcc/pkg/adcc"
)

// Solve a small CG system, crash it mid-solve, and recover from the
// NVM image — the paper's quickstart, through the public API. Every
// number is read off the deterministic simulated clock, so the output
// is stable across hosts.
func Example() {
	machine := adcc.NewMachine(adcc.MachineConfig{System: adcc.NVMOnly})
	emulator := adcc.NewEmulator(machine)

	a := adcc.GenSPD(2000, 9, 42)
	solver := adcc.NewCG(machine, emulator, a, adcc.CGOptions{MaxIter: 12})

	emulator.CrashAtTrigger(adcc.TriggerCGIterEnd, 8)
	crashed := emulator.Run(func() { solver.Run(1) })

	rec := solver.Recover()
	solver.Run(rec.RestartIter)

	fmt.Printf("crashed: %v\n", crashed)
	fmt.Printf("recovered and finished: residual < 1: %v\n", solver.Residual() < 1)
	// Output:
	// crashed: true
	// recovered and finished: residual < 1: true
}

// Sweep a built-in workload across two schemes with a Runner and read
// the verified results.
func ExampleRunner_Run() {
	runner := adcc.New(nil,
		adcc.WithScale(0.02),
		adcc.WithSchemes(adcc.SchemeNative, adcc.SchemeAlgoNVM),
	)
	rep, err := runner.Run(context.Background(), adcc.WorkloadCG)
	if err != nil {
		panic(err)
	}
	for _, c := range rep.Cases {
		fmt.Printf("%s@%s verified: %v\n", c.Scheme, c.System, c.Err == "")
	}
	// Output:
	// native@NVM-only verified: true
	// algo-NVM-only@NVM-only verified: true
}

// Register a custom consistency scheme on an instance registry and
// sweep the Monte-Carlo workload under it; the registry is an
// independent namespace, so nothing global is touched.
func ExampleRegistry_RegisterScheme() {
	reg := adcc.NewRegistry()
	if err := reg.RegisterScheme(customScheme{name: "my-scheme"}); err != nil {
		panic(err)
	}
	runner := adcc.New(reg,
		adcc.WithScale(0.02),
		adcc.WithSchemes("my-scheme"),
	)
	rep, err := runner.Run(context.Background(), adcc.WorkloadMC)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s under %s: verified %v\n", rep.Workload, rep.Cases[0].Scheme, rep.Cases[0].Err == "")
	// Output:
	// mc under my-scheme: verified true
}

// Run a tiny crash-injection campaign and stream its outcomes; the
// event stream and the report are byte-identical at any parallelism.
func ExampleRunner_RunCampaign() {
	events := 0
	runner := adcc.New(nil,
		adcc.WithScale(0.02),
		adcc.WithParallelism(4),
		adcc.WithWorkloads(adcc.WorkloadMM),
		adcc.WithSchemes(adcc.SchemeAlgoNVM),
		adcc.WithInjectionsPerCell(5),
		adcc.WithEventSink(adcc.SinkFunc(func(e adcc.Event) {
			if _, ok := e.(adcc.InjectionDone); ok {
				events++
			}
		})),
	)
	rep, err := runner.RunCampaign(context.Background())
	if err != nil {
		panic(err)
	}
	recovered := 0
	for _, c := range rep.Cells {
		recovered += c.Clean + c.Recomputed
	}
	fmt.Printf("%d injections streamed, %d recovered\n", events, recovered)
	// Output:
	// 10 injections streamed, 10 recovered
}
