package adcc

import (
	"bytes"

	"adcc/internal/campaign"
	"adcc/internal/resultstore"
)

// ResultStore is an open columnar injection-outcome store: the raw
// per-injection rows a campaign run wrote through WithCampaignStore,
// behind a filter/stream/aggregate query layer. The adcc-campaign/v1
// envelope is an export of this store — CampaignReport() rebuilds it
// byte-identically.
type ResultStore = resultstore.Store

// ResultStoreFile is a ResultStore opened from a file; Close releases
// the file handle.
type ResultStoreFile = resultstore.File

// StoreRow is one stored injection joined with its cell coordinates.
type StoreRow = resultstore.Row

// StoreFilter selects store rows by cell coordinates and outcome;
// zero-valued fields match everything.
type StoreFilter = resultstore.Filter

// StoreDist is a count/sum/max/percentile summary of one metric over a
// filtered row set.
type StoreDist = resultstore.Dist

// StoreAggregate is the standard roll-up of a filtered row set:
// outcome counts plus distributions of rework ops, recover+resume
// simulated time, and flush lines.
type StoreAggregate = resultstore.Aggregate

// StoreMetric names a per-row integer a Distribution query summarizes.
type StoreMetric = resultstore.Metric

// The store metrics, in declaration order; ParseStoreMetric resolves
// their names.
const (
	MetricReworkOps          = resultstore.MetricReworkOps
	MetricRecoverResumeSimNS = resultstore.MetricRecoverResumeSimNS
	MetricFlushLines         = resultstore.MetricFlushLines
	MetricCrashOps           = resultstore.MetricCrashOps
	MetricRecoverSimNS       = resultstore.MetricRecoverSimNS
	MetricResumeSimNS        = resultstore.MetricResumeSimNS
)

// FaultFailStop is the StoreFilter.FaultModel spelling that matches
// only clean fail-stop cells (stored as the empty model name, which in
// a filter means "any model").
const FaultFailStop = resultstore.FailStop

// OpenResultStore opens a store file ("*.adccs") for querying.
func OpenResultStore(path string) (*ResultStoreFile, error) {
	return resultstore.OpenFile(path)
}

// OpenResultStoreBytes opens a store held entirely in memory — how
// services holding a fetched or cached store artifact (for example the
// adccd query endpoint) run queries without a file on disk.
func OpenResultStoreBytes(b []byte) (*ResultStore, error) {
	return resultstore.Open(bytes.NewReader(b), int64(len(b)))
}

// IsResultStore sniffs whether the file at path is a result store
// (begins with the store header magic), so tools accepting both store
// and JSON report inputs can route a path without trusting its
// extension.
func IsResultStore(path string) bool { return resultstore.IsStoreFile(path) }

// StoreMetricNames lists every store metric name in value order.
func StoreMetricNames() []string { return resultstore.MetricNames() }

// ParseStoreMetric resolves a metric name ("rework-ops",
// "recover-resume-sim-ns", "flush-lines", ...).
func ParseStoreMetric(name string) (StoreMetric, error) {
	return resultstore.ParseMetric(name)
}

// CampaignOutcome classifies one injection's end state; it marshals as
// its name ("clean", "recomputed", "corrupt", "unrecoverable",
// "no-crash").
type CampaignOutcome = campaign.Outcome

// The campaign outcomes, in declaration order.
const (
	OutcomeClean         = campaign.OutcomeClean
	OutcomeRecomputed    = campaign.OutcomeRecomputed
	OutcomeCorrupt       = campaign.OutcomeCorrupt
	OutcomeUnrecoverable = campaign.OutcomeUnrecoverable
	OutcomeNoCrash       = campaign.OutcomeNoCrash
)

// CampaignOutcomeNames lists every outcome name in value order.
func CampaignOutcomeNames() []string { return campaign.OutcomeNames() }

// ParseCampaignOutcome resolves an outcome name.
func ParseCampaignOutcome(name string) (CampaignOutcome, error) {
	return campaign.ParseOutcome(name)
}
