package adcc

import (
	"adcc/internal/cache"
	"adcc/internal/core"
	"adcc/internal/crash"
	"adcc/internal/kvlog"
	"adcc/internal/mem"
	"adcc/internal/stencil"
)

// This file re-exports the simulated platform: the machine (clock + CPU
// + heap + LLC + memory system), the crash emulator, and their
// configuration. The aliases are real type identities, so values move
// freely between the public API and the engine underneath it.

// SystemKind selects one of the paper's two memory systems.
type SystemKind = crash.SystemKind

// The paper's two platforms.
const (
	// NVMOnly is the NVM-only system: NVM main memory under volatile
	// CPU caches.
	NVMOnly = crash.NVMOnly
	// Hetero is the heterogeneous NVM/DRAM system: a DRAM cache tier in
	// front of NVM main memory.
	Hetero = crash.Hetero
)

// FlushInstr selects the simulated cache-flush instruction.
type FlushInstr = crash.FlushInstr

// Flush instruction variants (paper §II).
const (
	// CLFLUSH writes the line back and invalidates it.
	CLFLUSH = crash.CLFLUSH
	// CLWB writes the line back and keeps it resident.
	CLWB = crash.CLWB
)

// MachineConfig configures a simulated platform.
type MachineConfig = crash.MachineConfig

// CacheConfig configures the simulated last-level cache.
type CacheConfig = cache.Config

// Machine is a simulated platform: clock, CPU cost model, heap with
// live + persistent images, and the LLC.
type Machine = crash.Machine

// NewMachine builds a simulated platform. Zero-valued fields take the
// paper-shape defaults (NVM-only system, 2 MB LLC).
func NewMachine(cfg MachineConfig) *Machine { return crash.NewMachine(cfg) }

// FaultKind names a crash-time fault/persistency model.
type FaultKind = crash.FaultKind

// Crash-time fault/persistency models (see FaultModel).
const (
	// FailStop is the clean fail-stop baseline: the persistent image is
	// exactly what was explicitly persisted before the crash.
	FailStop = crash.FailStop
	// TornLine persists a partial prefix of one in-flight dirty cache
	// line, modeling a flush torn mid-writeback by the power failure.
	TornLine = crash.TornLine
	// EADR models an eADR platform whose LLC sits inside the persistence
	// domain: every dirty line drains to the image at crash time.
	EADR = crash.EADR
	// ReorderWB persists a seeded prefix of the dirty lines in a seeded
	// order, modeling writebacks racing the failure between fences.
	ReorderWB = crash.ReorderWB
	// BitFlip folds silent media bit flips into the persisted image.
	BitFlip = crash.BitFlip
)

// FaultModel configures one crash-time fault/persistency model: a kind
// plus its seed and optional shape parameters.
type FaultModel = crash.FaultModel

// FaultWrite is one deterministic word-level mutation a fault model
// applies to the persistent image at crash time.
type FaultWrite = crash.FaultWrite

// ParseFaultModel resolves a fault-model name ("failstop", "torn",
// "eadr", "reorder", "bitflip"; "" means failstop) to its FaultModel.
func ParseFaultModel(name string) (FaultModel, error) { return crash.ParseFaultModel(name) }

// FaultModelNames lists the recognized fault-model names in canonical
// order.
func FaultModelNames() []string { return crash.FaultModelNames() }

// Emulator injects crashes into a run at chosen execution points and
// enumerates a run's crash-point space (Profile).
type Emulator = crash.Emulator

// NewEmulator attaches a crash emulator to a machine.
func NewEmulator(m *Machine) *Emulator { return crash.NewEmulator(m) }

// CrashPoint names an injection site: an absolute memory-operation
// count or the n-th occurrence of a named program point.
type CrashPoint = crash.CrashPoint

// RunProfile is the crash-point space of one uninterrupted run.
type RunProfile = crash.RunProfile

// Addr is a simulated heap address.
type Addr = mem.Addr

// LineBytes is the cache-line granularity of the simulated machine.
const LineBytes = mem.LineSize

// Region is a named simulated heap region holding live data and its
// persistent NVM image.
type Region = mem.Region

// Workload program points that can be crashed at with
// Emulator.CrashAtTrigger.
const (
	// TriggerCGIterEnd fires at the end of each CG iteration.
	TriggerCGIterEnd = core.TriggerCGIterEnd
	// TriggerMMLoop1IterEnd fires after each submatrix multiplication.
	TriggerMMLoop1IterEnd = core.TriggerMMLoop1IterEnd
	// TriggerMMLoop2IterEnd fires after each submatrix addition block.
	TriggerMMLoop2IterEnd = core.TriggerMMLoop2IterEnd
	// TriggerMCLookup fires after each Monte-Carlo lookup.
	TriggerMCLookup = core.TriggerMCLookup
	// TriggerStencilIterEnd fires at the end of each stencil sweep.
	TriggerStencilIterEnd = stencil.TriggerIterEnd
	// TriggerKVLogReqEnd fires at the end of each KV-store request.
	TriggerKVLogReqEnd = kvlog.TriggerReqEnd
)
