package adcc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"adcc/internal/campaign"
)

// CampaignSpec is the serializable description of one crash-injection
// campaign — the document adccd accepts over HTTP and the unit the
// result cache is keyed by. The zero value is the full default
// campaign (scale 1.0, seed 0, every workload, every scheme). A spec
// describes the deterministic result, not the execution: parallelism,
// event sinks, and output paths are Runner options, and Replay selects
// an engine whose report is byte-identical to the default one.
type CampaignSpec struct {
	// Scale multiplies problem sizes and sweep density; 0 means 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Seed drives crash-point selection (0 is a valid seed).
	Seed int64 `json:"seed,omitempty"`
	// Workloads restricts the sweep grid; nil means every built-in
	// workload.
	Workloads []string `json:"workloads,omitempty"`
	// Schemes restricts the sweep grid; nil means every scheme each
	// workload supports. Names outside the built-in grids are resolved
	// in the registry and added to every selected workload.
	Schemes []string `json:"schemes,omitempty"`
	// InjectionsPerCell overrides the number of crash points per cell
	// (0 = scaled default).
	InjectionsPerCell int `json:"injections_per_cell,omitempty"`
	// FaultModels selects the crash-time fault/persistency models swept
	// through the grid ("failstop", "torn", "eadr", "reorder",
	// "bitflip"); nil means clean fail-stop only. Canonical normalizes a
	// list equivalent to the default back to nil, so fail-stop-only
	// specs keep their pre-fault-axis cache keys.
	FaultModels []string `json:"fault_models,omitempty"`
	// Replay runs the snapshot/fork replay engine instead of the legacy
	// per-injection engine. The report is byte-identical either way, so
	// Replay is excluded from CacheKey.
	Replay bool `json:"replay,omitempty"`
}

// Canonical normalizes the spec without changing the result it
// describes: Scale 0 becomes 1.0 and the workload/scheme lists are
// sorted and deduplicated (report cells are emitted in sorted order,
// so grid selection is order- and duplicate-insensitive). Two specs
// with equal Canonical forms produce byte-identical reports.
func (s CampaignSpec) Canonical() CampaignSpec {
	if s.Scale <= 0 {
		s.Scale = 1.0
	}
	s.Workloads = sortDedup(s.Workloads)
	s.Schemes = sortDedup(s.Schemes)
	if len(s.FaultModels) > 0 {
		// "" is ParseFaultModel's alias for "failstop"; fold it before
		// deduplicating so the two spellings share one canonical form.
		fm := make([]string, len(s.FaultModels))
		for i, m := range s.FaultModels {
			if m == "" {
				m = "failstop"
			}
			fm[i] = m
		}
		s.FaultModels = sortDedup(fm)
		if len(s.FaultModels) == 1 && s.FaultModels[0] == "failstop" {
			// ["failstop"] selects exactly the default sweep; normalize
			// it away so the spec's cache key matches the nil form.
			s.FaultModels = nil
		}
	}
	return s
}

func sortDedup(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// CacheKey is the content address of the spec's deterministic result:
// the hex SHA-256 of the canonical spec JSON with Replay cleared
// (engine choice never changes report bytes). Equal keys mean
// byte-identical adcc-report/v1 envelopes, which is what lets adccd
// serve repeat submissions from its result cache without recompute.
func (s CampaignSpec) CacheKey() string {
	c := s.Canonical()
	c.Replay = false
	b, err := json.Marshal(c)
	if err != nil {
		// Marshal of a plain struct of scalars and string slices cannot
		// fail; keep the signature ergonomic for callers.
		panic("adcc: CampaignSpec marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Options renders the spec as Runner options. Combine with execution
// options (WithParallelism, WithEventSink, WithCampaignResume, ...)
// that affect how — not what — the campaign computes.
func (s CampaignSpec) Options() []Option {
	opts := []Option{
		WithScale(s.Canonical().Scale),
		WithSeed(s.Seed),
		WithInjectionsPerCell(s.InjectionsPerCell),
		WithCampaignReplay(s.Replay),
	}
	if len(s.Workloads) > 0 {
		opts = append(opts, WithWorkloads(s.Workloads...))
	}
	if len(s.Schemes) > 0 {
		opts = append(opts, WithSchemes(s.Schemes...))
	}
	if fm := s.Canonical().FaultModels; len(fm) > 0 {
		opts = append(opts, WithFaultModels(fm...))
	}
	return opts
}

// CampaignCells enumerates the sweep grid the spec covers as cell keys
// ("workload/scheme@system", see CampaignCell.Key) in deterministic
// grid order, resolving names in reg (nil means the built-in registry).
// It validates the spec exactly like RunCampaign, so services can
// reject an unknown workload or scheme at submission time.
func CampaignCells(reg *Registry, s CampaignSpec) ([]string, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	c := s.Canonical()
	keys, err := campaign.Config{
		Scale:       c.Scale,
		Seed:        c.Seed,
		PerCell:     c.InjectionsPerCell,
		Workloads:   c.Workloads,
		Schemes:     c.Schemes,
		FaultModels: c.FaultModels,
		Registry:    reg.engineRegistry(),
	}.CellKeys()
	if err != nil {
		return nil, fmt.Errorf("adcc: %w", err)
	}
	return keys, nil
}

// JobStatus is the lifecycle state of an adccd campaign job.
type JobStatus string

// Job lifecycle states.
const (
	// JobQueued: accepted, waiting for a worker slot.
	JobQueued JobStatus = "queued"
	// JobRunning: the campaign is executing.
	JobRunning JobStatus = "running"
	// JobDone: the report is available (freshly computed or cached).
	JobDone JobStatus = "done"
	// JobFailed: the campaign returned an error; see JobInfo.Error.
	JobFailed JobStatus = "failed"
)

// JobInfo is the status document adccd serves for one campaign job
// (POST /v1/campaigns and GET /v1/campaigns/{id}).
type JobInfo struct {
	// ID addresses the job in the /v1/campaigns/{id} endpoints.
	ID string `json:"id"`
	// Status is the job's lifecycle state.
	Status JobStatus `json:"status"`
	// Spec is the submitted campaign, as canonicalized by the server.
	Spec CampaignSpec `json:"spec"`
	// CacheKey is Spec.CacheKey — the content address the finished
	// report is cached under. Submissions are idempotent per key.
	CacheKey string `json:"cache_key"`
	// Cached reports that the result was served from the cache without
	// running the campaign.
	Cached bool `json:"cached,omitempty"`
	// Resumed reports that the job continued from shard checkpoints
	// persisted by a previous daemon process.
	Resumed bool `json:"resumed,omitempty"`
	// ShardsDone and ShardsTotal count completed cells of the sweep
	// grid, including checkpointed cells adopted on resume.
	ShardsDone  int `json:"shards_done"`
	ShardsTotal int `json:"shards_total"`
	// Injections is the report's total injection count (set when done).
	Injections int `json:"injections,omitempty"`
	// Error is the failure cause when Status is JobFailed.
	Error string `json:"error,omitempty"`
}

// StreamEvent is one frame of an adccd event stream
// (GET /v1/campaigns/{id}/events): the SSE "id" field carries Seq, the
// "event" field carries Type, and the "data" field carries Data. Types
// mirror the deterministic Event layer (case_started, case_finished,
// injection_done, progress) plus the service-level shard_done and the
// terminal done frame; see docs/HTTP_API.md for the data shapes.
type StreamEvent struct {
	// Seq is the frame's position in the job's event history, from 0.
	Seq int `json:"seq"`
	// Type names the payload shape.
	Type string `json:"type"`
	// Data is the JSON payload.
	Data json.RawMessage `json:"data"`
}
