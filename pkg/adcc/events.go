package adcc

import "adcc/internal/engine"

// Event is a streaming progress notification emitted while a sweep
// runs. Events arrive in deterministic case-index order — the recorded
// stream of a run is byte-identical at any parallelism — so embedders
// can both display live progress and assert on streams in tests. The
// concrete types are CaseStarted, CaseFinished, InjectionDone, and
// Progress.
type Event = engine.Event

// EventSink receives events; pass one to a Runner with WithEventSink.
// Emit is called sequentially by a single run, in deterministic order;
// a sink shared by several concurrent runs must synchronize itself.
type EventSink = engine.EventSink

// SinkFunc adapts a function to the EventSink interface.
type SinkFunc = engine.SinkFunc

// CaseStarted reports that an experiment case has entered the ordered
// event stream.
type CaseStarted = engine.CaseStarted

// CaseFinished reports a completed experiment case.
type CaseFinished = engine.CaseFinished

// InjectionDone reports one classified crash injection of a campaign.
type InjectionDone = engine.InjectionDone

// Progress reports completion counts for a named stage.
type Progress = engine.Progress
