package adcc

import (
	"fmt"
	"sort"
	"sync"

	"adcc/internal/core"
	"adcc/internal/engine"
	"adcc/internal/kvlog"
	"adcc/internal/mc"
	"adcc/internal/sparse"
	"adcc/internal/stencil"
)

// Scheme is one named consistency scheme: it knows its mechanism
// family, the simulated platform it runs on, and how to build its
// per-run Guard. Custom schemes implement the interface and are added
// to a Registry with RegisterScheme.
type Scheme = engine.Scheme

// SchemeKind classifies a scheme's mechanism family.
type SchemeKind = engine.Kind

// Mechanism families.
const (
	// KindNative runs with no fault-tolerance mechanism.
	KindNative = engine.KindNative
	// KindCheckpoint saves the protected regions at iteration
	// boundaries.
	KindCheckpoint = engine.KindCheckpoint
	// KindPMEM wraps iteration updates in undo-log transactions.
	KindPMEM = engine.KindPMEM
	// KindAlgo is the paper's algorithm-directed approach.
	KindAlgo = engine.KindAlgo
)

// FlushPolicy selects an algorithm-directed scheme's flush variant.
type FlushPolicy = engine.FlushPolicy

// Flush variants (paper §III-D).
const (
	// FlushNone flushes nothing (non-algo schemes).
	FlushNone = engine.FlushNone
	// FlushIndexOnly is the paper's rejected index-only design.
	FlushIndexOnly = engine.FlushIndexOnly
	// FlushSelective is the paper's selective-flushing extension.
	FlushSelective = engine.FlushSelective
	// FlushEveryIter flushes on every iteration (~16% overhead).
	FlushEveryIter = engine.FlushEveryIter
)

// Built-in scheme names; NewRegistry seeds all nine. The first seven
// are the paper's presentation order (§III-A), the last two the
// Monte-Carlo-specific variants (§III-D).
const (
	SchemeNative     = engine.SchemeNative
	SchemeCkptHDD    = engine.SchemeCkptHDD
	SchemeCkptNVM    = engine.SchemeCkptNVM
	SchemeCkptHetero = engine.SchemeCkptHetero
	SchemePMEM       = engine.SchemePMEM
	SchemeAlgoNVM    = engine.SchemeAlgoNVM
	SchemeAlgoHetero = engine.SchemeAlgoHetero
	SchemeAlgoNaive  = engine.SchemeAlgoNaive
	SchemeAlgoEvery  = engine.SchemeAlgoEvery
)

// Built-in workload names; NewRegistry seeds all four (the paper's
// three studies plus the stencil extension family).
const (
	WorkloadCG      = "cg"
	WorkloadMM      = "mm"
	WorkloadMC      = "mc"
	WorkloadStencil = stencil.WorkloadName
	WorkloadKVLog   = kvlog.WorkloadName
)

// WorkloadSpec describes a runnable workload: a name and a factory
// building a fresh Workload instance for one run under a scheme at a
// problem scale (1.0 = paper shape). Specs are registered on a
// Registry and swept by Runner.Run.
type WorkloadSpec struct {
	// Name identifies the workload in the registry and in reports.
	Name string
	// Schemes optionally names the schemes Runner.Run sweeps by
	// default for this workload; nil means the paper's seven-case
	// comparison.
	Schemes []string
	// New builds a fresh instance for one run under sc. It must return
	// an unprepared workload: the runner binds it to a machine through
	// Workload.Prepare.
	New func(sc Scheme, scale float64) (Workload, error)
}

// Registry is an instance-scoped namespace of consistency schemes and
// workloads. Registries are independent: registering on one never
// affects another, so embedders compose custom schemes and workloads
// without init-order coupling or process-global state. All methods are
// safe for concurrent use.
type Registry struct {
	schemes *engine.Registry

	mu        sync.RWMutex
	workloads map[string]WorkloadSpec
}

// NewRegistry returns a registry seeded with the paper's nine built-in
// schemes and three study workloads.
func NewRegistry() *Registry {
	r := &Registry{
		schemes:   engine.NewBuiltinRegistry(),
		workloads: map[string]WorkloadSpec{},
	}
	for _, spec := range builtinWorkloads() {
		if err := r.RegisterWorkload(spec); err != nil {
			panic("adcc: " + err.Error())
		}
	}
	return r
}

// RegisterScheme adds a custom scheme. Registering a nil or unnamed
// scheme, or a name already present, returns an error.
func (r *Registry) RegisterScheme(s Scheme) error {
	if err := r.schemes.Register(s); err != nil {
		return fmt.Errorf("adcc: %w", err)
	}
	return nil
}

// Scheme finds a scheme by name.
func (r *Registry) Scheme(name string) (Scheme, bool) {
	return r.schemes.Lookup(name)
}

// MustScheme finds a scheme by name, panicking on unknown names. Use
// for the built-in names, which NewRegistry seeds unconditionally.
func (r *Registry) MustScheme(name string) Scheme {
	return r.schemes.MustLookup(name)
}

// SchemeNames returns every registered scheme name, sorted.
func (r *Registry) SchemeNames() []string { return r.schemes.Names() }

// SevenCases returns the paper's seven-case comparison in presentation
// order (§III-A).
func (r *Registry) SevenCases() []Scheme { return r.schemes.SevenCases() }

// RegisterWorkload adds a workload spec. An empty name, a nil factory,
// or a name already present returns an error.
func (r *Registry) RegisterWorkload(spec WorkloadSpec) error {
	if spec.Name == "" || spec.New == nil {
		return fmt.Errorf("adcc: RegisterWorkload of incomplete spec (need Name and New)")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.workloads[spec.Name]; dup {
		return fmt.Errorf("adcc: duplicate workload %q", spec.Name)
	}
	r.workloads[spec.Name] = spec
	return nil
}

// Workload finds a workload spec by name.
func (r *Registry) Workload(name string) (WorkloadSpec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	spec, ok := r.workloads[name]
	return spec, ok
}

// WorkloadNames returns every registered workload name, sorted.
func (r *Registry) WorkloadNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.workloads))
	for n := range r.workloads {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// engineRegistry exposes the scheme namespace to the campaign engine.
func (r *Registry) engineRegistry() *engine.Registry { return r.schemes }

// scaleInt scales v down with a floor, the shared sizing rule of the
// built-in workload factories (matching the campaign's shapes).
func scaleInt(v int, scale float64, floor int) int {
	s := int(float64(v) * scale)
	if s < floor {
		return floor
	}
	return s
}

// builtinWorkloads builds the specs of the paper's three studies. Sizes
// scale with the runner's problem scale and seeds are fixed, mirroring
// the campaign's per-cell workload shapes: algorithm-directed schemes
// run the extended implementations, conventional schemes the baselines
// driven through the scheme's Guard.
func builtinWorkloads() []WorkloadSpec {
	return []WorkloadSpec{
		{
			Name: WorkloadCG,
			New: func(sc Scheme, scale float64) (Workload, error) {
				a := sparse.GenSPD(scaleInt(1200, scale, 300), 9, 11)
				opts := core.CGOptions{MaxIter: 15, Seed: 11}
				if sc.Kind() == engine.KindAlgo {
					return &core.CGWorkload{A: a, Opts: opts}, nil
				}
				return &core.BaselineCGWorkload{A: a, Opts: opts, Scheme: sc}, nil
			},
		},
		{
			Name: WorkloadMM,
			New: func(sc Scheme, scale float64) (Workload, error) {
				const k = 16
				opts := core.MMOptions{N: k * scaleInt(8, scale, 3), K: k, Seed: 12}
				if sc.Kind() == engine.KindAlgo {
					return &core.MMWorkload{Opts: opts}, nil
				}
				return &core.BaselineMMWorkload{Opts: opts, Scheme: sc}, nil
			},
		},
		{
			Name: WorkloadMC,
			// MC selects its mechanism entirely through the scheme, so
			// it additionally sweeps the rejected §III-D variants.
			Schemes: []string{
				SchemeNative, SchemeCkptHDD, SchemeCkptNVM, SchemeCkptHetero,
				SchemePMEM, SchemeAlgoNVM, SchemeAlgoHetero,
				SchemeAlgoNaive, SchemeAlgoEvery,
			},
			New: func(sc Scheme, scale float64) (Workload, error) {
				return &core.MCWorkload{
					Cfg: mc.Config{
						Nuclides:         16,
						PointsPerNuclide: 128,
						Lookups:          scaleInt(20_000, scale, 2500),
						Seed:             42,
					},
					Scheme: sc,
				}, nil
			},
		},
		{
			Name: WorkloadStencil,
			// The stencil's flush policy also comes from the scheme, so
			// it sweeps the rejected algorithm-directed variants too.
			Schemes: []string{
				SchemeNative, SchemeCkptHDD, SchemeCkptNVM, SchemeCkptHetero,
				SchemePMEM, SchemeAlgoNVM, SchemeAlgoHetero,
				SchemeAlgoNaive, SchemeAlgoEvery,
			},
			New: func(sc Scheme, scale float64) (Workload, error) {
				opts := stencil.Options{N: scaleInt(96, scale, 32), MaxIter: 12, Seed: 21}
				if sc.Kind() == engine.KindAlgo {
					return &stencil.HeatWorkload{Opts: opts, Scheme: sc}, nil
				}
				return &stencil.BaselineWorkload{Opts: opts, Scheme: sc}, nil
			},
		},
		{
			Name: WorkloadKVLog,
			// The KV store's flush policy also comes from the scheme, so
			// it sweeps the rejected algorithm-directed variants too.
			Schemes: []string{
				SchemeNative, SchemeCkptHDD, SchemeCkptNVM, SchemeCkptHetero,
				SchemePMEM, SchemeAlgoNVM, SchemeAlgoHetero,
				SchemeAlgoNaive, SchemeAlgoEvery,
			},
			New: func(sc Scheme, scale float64) (Workload, error) {
				opts := kvlog.Options{Requests: scaleInt(600, scale, 120), KeySpace: 128, ScanLen: 8, CkptEvery: 16, Seed: 33}
				if sc.Kind() == engine.KindAlgo {
					return &kvlog.StoreWorkload{Opts: opts, Scheme: sc}, nil
				}
				return &kvlog.BaselineWorkload{Opts: opts, Scheme: sc}, nil
			},
		},
	}
}
