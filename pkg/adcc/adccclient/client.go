// Package adccclient is the Go client for the adccd campaign service:
// typed wrappers over its HTTP/JSON endpoints plus an SSE consumer for
// the deterministic event stream. The wire protocol is documented in
// docs/HTTP_API.md; the shared request/response types (CampaignSpec,
// JobInfo, StreamEvent) live in pkg/adcc.
package adccclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"adcc/pkg/adcc"
)

// Client talks to one adccd instance. The zero value is not usable;
// construct with New.
type Client struct {
	base string
	http *http.Client
}

// New returns a Client for the adccd instance at baseURL (for example
// "http://127.0.0.1:8080"). A nil httpClient means http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// APIError is a non-2xx response from the service, carrying the HTTP
// status code and the server's error message.
type APIError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's error string.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("adccd: %s (HTTP %d)", e.Message, e.Code)
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp.StatusCode, b)
	}
	if out != nil {
		return json.Unmarshal(b, out)
	}
	return nil
}

func apiError(code int, body []byte) error {
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return &APIError{Code: code, Message: doc.Error}
	}
	return &APIError{Code: code, Message: strings.TrimSpace(string(body))}
}

// Submit posts a campaign spec and returns the job serving its result —
// freshly queued, deduplicated against a live job with the same cache
// key, or answered from the result cache (JobInfo.Cached).
func (c *Client) Submit(ctx context.Context, spec adcc.CampaignSpec) (adcc.JobInfo, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return adcc.JobInfo{}, err
	}
	var info adcc.JobInfo
	err = c.do(ctx, http.MethodPost, "/v1/campaigns", bytes.NewReader(b), &info)
	return info, err
}

// jobPath builds a job-scoped endpoint path with the id escaped, so
// ids holding path metacharacters ("..", "/", "%") address the intended
// job instead of rewriting the route.
func jobPath(id string, suffix string) string {
	return "/v1/campaigns/" + url.PathEscape(id) + suffix
}

// Job fetches one job's status document.
func (c *Client) Job(ctx context.Context, id string) (adcc.JobInfo, error) {
	var info adcc.JobInfo
	err := c.do(ctx, http.MethodGet, jobPath(id, ""), nil, &info)
	return info, err
}

// Jobs lists every job in submission order.
func (c *Client) Jobs(ctx context.Context) ([]adcc.JobInfo, error) {
	var doc struct {
		Jobs []adcc.JobInfo `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, &doc)
	return doc.Jobs, err
}

// Report fetches a finished job's adcc-report/v1 envelope, byte-
// identical to running the job's spec through adcc.Runner.RunCampaign.
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, jobPath(id, "/report"))
}

// Store fetches a finished job's columnar result store artifact: the
// per-injection rows its report was aggregated from, ready for
// adcc.OpenResultStoreBytes or an adccquery -store file.
func (c *Client) Store(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, jobPath(id, "/store"))
}

// QueryAggregate runs the service-side store query for one filtered
// aggregate: outcome counts plus metric distributions with
// percentiles. Zero-valued filter fields match everything.
func (c *Client) QueryAggregate(ctx context.Context, id string, f adcc.StoreFilter) (adcc.StoreAggregate, error) {
	q := url.Values{}
	for _, kv := range []struct{ k, v string }{
		{"workload", f.Workload}, {"scheme", f.Scheme}, {"system", f.System},
		{"fault", f.FaultModel}, {"outcome", f.Outcome},
	} {
		if kv.v != "" {
			q.Set(kv.k, kv.v)
		}
	}
	path := jobPath(id, "/query")
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var agg adcc.StoreAggregate
	err := c.do(ctx, http.MethodGet, path, nil, &agg)
	return agg, err
}

// raw fetches one endpoint's response body verbatim.
func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp.StatusCode, b)
	}
	return b, nil
}

// Events consumes a job's SSE stream from the frame after lastSeq
// (-1 for the beginning), calling fn for every frame including the
// terminal "done" frame, after which it returns nil. It returns fn's
// error if fn fails, and the transport or API error otherwise. Frames
// arrive in sequence order; the terminal frame's Data is the final
// JobInfo document.
func (c *Client) Events(ctx context.Context, id string, lastSeq int, fn func(adcc.StreamEvent) error) error {
	path := jobPath(id, "/events")
	if lastSeq >= 0 {
		path += fmt.Sprintf("?from=%d", lastSeq)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(resp.Body)
		return apiError(resp.StatusCode, b)
	}
	return consumeSSE(resp.Body, fn)
}

// consumeSSE parses Server-Sent Events frames (id/event/data fields,
// blank-line delimited) and dispatches each to fn until the stream ends
// or a "done" frame arrives. Per the SSE grammar, the space after the
// field colon is optional, and an end-of-stream flushes a pending frame
// the same way a blank line does.
func consumeSSE(r io.Reader, fn func(adcc.StreamEvent) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ev adcc.StreamEvent
	flush := func() error {
		if ev.Type == "" {
			return nil
		}
		e := ev
		ev = adcc.StreamEvent{}
		if err := fn(e); err != nil {
			return err
		}
		if e.Type == "done" {
			return errStreamDone
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			if err := flush(); err != nil {
				if err == errStreamDone {
					return nil
				}
				return err
			}
			continue
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			seq, err := strconv.Atoi(value)
			if err != nil {
				return fmt.Errorf("adccclient: malformed SSE id %q", line)
			}
			ev.Seq = seq
		case "event":
			ev.Type = value
		case "data":
			ev.Data = json.RawMessage(value)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// EOF delimits a final frame just like a blank line would; a server
	// that closes the stream right after the terminal frame's data line
	// has still delivered it.
	if err := flush(); err != nil {
		if err == errStreamDone {
			return nil
		}
		return err
	}
	// Stream ended without a done frame (daemon shutdown mid-job).
	return io.ErrUnexpectedEOF
}

var errStreamDone = errors.New("adccclient: stream done")

// Wait blocks until the job reaches a terminal state (done or failed)
// and returns its final status document, polling the job endpoint.
// A zero poll interval means 200ms. Transport errors are treated as
// transient and retried at the poll interval until the context ends; an
// APIError is authoritative (the service answered) and returned at
// once.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (adcc.JobInfo, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		info, err := c.Job(ctx, id)
		var apiErr *APIError
		switch {
		case err == nil:
			if info.Status == adcc.JobDone || info.Status == adcc.JobFailed {
				return info, nil
			}
		case errors.As(err, &apiErr):
			return adcc.JobInfo{}, err
		case ctx.Err() != nil:
			return adcc.JobInfo{}, ctx.Err()
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return adcc.JobInfo{}, ctx.Err()
		}
	}
}
