package adccclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adcc/pkg/adcc"
)

// recordingServer returns a test server that records each request path
// and serves the given handler, plus a client pointed at it.
func recordingServer(t *testing.T, h http.HandlerFunc) (*Client, *[]string) {
	t.Helper()
	var paths []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		paths = append(paths, r.URL.RequestURI())
		h(w, r)
	}))
	t.Cleanup(srv.Close)
	return New(srv.URL, srv.Client()), &paths
}

func serveJSON(v any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			panic(err)
		}
	}
}

// TestAPIErrorDecoding checks both error shapes: the canonical JSON
// error document and a bare-text body from a proxy or panic path.
func TestAPIErrorDecoding(t *testing.T) {
	c, _ := recordingServer(t, func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/report") {
			http.Error(w, `{"error":"job j1 is not done"}`, http.StatusConflict)
			return
		}
		http.Error(w, "plain text failure", http.StatusInternalServerError)
	})

	_, err := c.Report(context.Background(), "j1")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("Report error = %v, want *APIError", err)
	}
	if apiErr.Code != http.StatusConflict || apiErr.Message != "job j1 is not done" {
		t.Errorf("decoded %+v, want code 409 message from the JSON document", apiErr)
	}

	_, err = c.Job(context.Background(), "j1")
	if !errors.As(err, &apiErr) {
		t.Fatalf("Job error = %v, want *APIError", err)
	}
	if apiErr.Code != http.StatusInternalServerError || apiErr.Message != "plain text failure" {
		t.Errorf("decoded %+v, want the trimmed plain-text body", apiErr)
	}
}

// TestPathEscaping checks that every job-scoped endpoint escapes the id
// instead of splicing it into the route: an id holding "/" or ".."
// must stay one path segment.
func TestPathEscaping(t *testing.T) {
	const id = "../jobs/x?y=1"
	escaped := "/v1/campaigns/" + "..%2Fjobs%2Fx%3Fy=1"

	c, paths := recordingServer(t, serveJSON(adcc.JobInfo{ID: id, Status: adcc.JobDone}))
	ctx := context.Background()

	if _, err := c.Job(ctx, id); err != nil {
		t.Fatalf("Job: %v", err)
	}
	if _, err := c.Report(ctx, id); err != nil {
		t.Fatalf("Report: %v", err)
	}
	if _, err := c.Store(ctx, id); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if _, err := c.QueryAggregate(ctx, id, adcc.StoreFilter{Workload: "kvlog"}); err != nil {
		t.Fatalf("QueryAggregate: %v", err)
	}

	want := []string{
		escaped,
		escaped + "/report",
		escaped + "/store",
		escaped + "/query?workload=kvlog",
	}
	for i, p := range *paths {
		if p != want[i] {
			t.Errorf("request %d hit %q, want %q", i, p, want[i])
		}
		if strings.Contains(p, "..") && !strings.Contains(p, "..%2F") {
			t.Errorf("request %d leaked an unescaped dot-dot segment: %q", i, p)
		}
	}
	if len(*paths) != len(want) {
		t.Fatalf("%d requests recorded, want %d", len(*paths), len(want))
	}
}

// sseHandler streams raw SSE bytes for an Events call.
func sseHandler(body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, body)
	}
}

// collectEvents runs Events from the beginning and returns the frames
// fn observed plus the terminal error.
func collectEvents(t *testing.T, body string) ([]adcc.StreamEvent, error) {
	t.Helper()
	c, _ := recordingServer(t, sseHandler(body))
	var got []adcc.StreamEvent
	err := c.Events(context.Background(), "j1", -1, func(ev adcc.StreamEvent) error {
		got = append(got, ev)
		return nil
	})
	return got, err
}

// TestSSETerminalFrameWithoutTrailingBlank checks that a stream whose
// server closes right after the final data line still delivers the
// terminal frame: EOF delimits a frame exactly like a blank line.
func TestSSETerminalFrameWithoutTrailingBlank(t *testing.T) {
	body := "id: 0\nevent: snapshot\ndata: {}\n\n" +
		"id: 1\nevent: done\ndata: {\"status\":\"done\"}\n"
	got, err := collectEvents(t, body)
	if err != nil {
		t.Fatalf("Events = %v, want nil (terminal frame delivered at EOF)", err)
	}
	if len(got) != 2 || got[1].Type != "done" || got[1].Seq != 1 {
		t.Fatalf("frames = %+v, want snapshot then done", got)
	}
}

// TestSSENoSpaceAfterColon checks the SSE grammar's optional space:
// "id:5" and "event:done" are as legal as their spaced spellings.
func TestSSENoSpaceAfterColon(t *testing.T) {
	body := "id:5\nevent:progress\ndata:{\"n\":1}\n\nid:6\nevent:done\ndata:{}\n\n"
	got, err := collectEvents(t, body)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("%d frames, want 2: %+v", len(got), got)
	}
	if got[0].Seq != 5 || got[0].Type != "progress" || string(got[0].Data) != `{"n":1}` {
		t.Errorf("frame 0 = %+v, want seq 5 progress", got[0])
	}
	if got[1].Seq != 6 || got[1].Type != "done" {
		t.Errorf("frame 1 = %+v, want seq 6 done", got[1])
	}
}

// TestSSEMalformedSeq checks that a garbage id line is an error, not a
// silently reused previous sequence number.
func TestSSEMalformedSeq(t *testing.T) {
	_, err := collectEvents(t, "id: bogus\nevent: progress\ndata: {}\n\n")
	if err == nil || !strings.Contains(err.Error(), "malformed SSE id") {
		t.Fatalf("Events = %v, want malformed-id error", err)
	}
}

// TestSSETruncatedStream checks that a stream ending mid-job (no done
// frame at all) still reports io.ErrUnexpectedEOF after delivering the
// complete frames.
func TestSSETruncatedStream(t *testing.T) {
	got, err := collectEvents(t, "id: 0\nevent: snapshot\ndata: {}\n\n")
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Events = %v, want io.ErrUnexpectedEOF", err)
	}
	if len(got) != 1 || got[0].Type != "snapshot" {
		t.Fatalf("frames = %+v, want the one snapshot frame", got)
	}
}

// TestSSEOversizedFrame checks that a data line beyond the scanner's
// 1 MiB cap surfaces as a scan error instead of hanging or panicking.
func TestSSEOversizedFrame(t *testing.T) {
	body := "id: 0\nevent: snapshot\ndata: " + strings.Repeat("x", 2<<20) + "\n\n"
	_, err := collectEvents(t, body)
	if err == nil || !strings.Contains(err.Error(), "token too long") {
		t.Fatalf("Events = %v, want bufio token-too-long error", err)
	}
}

// TestSSEFnError checks that fn's error aborts the stream and is
// returned as-is.
func TestSSEFnError(t *testing.T) {
	c, _ := recordingServer(t, sseHandler("id: 0\nevent: snapshot\ndata: {}\n\n"))
	sentinel := errors.New("stop here")
	err := c.Events(context.Background(), "j1", 0, func(adcc.StreamEvent) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Events = %v, want the fn sentinel", err)
	}
}

// TestWaitRetriesTransientErrors checks that Wait polls through
// transport failures: a connection that dies twice before the job
// endpoint answers must still resolve to the final status.
func TestWaitRetriesTransientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1, 2:
			// Kill the connection without a response: a transport
			// error, not an API error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close()
		default:
			serveJSON(adcc.JobInfo{ID: "j1", Status: adcc.JobDone})(w, r)
		}
	}))
	defer srv.Close()

	c := New(srv.URL, srv.Client())
	info, err := c.Wait(context.Background(), "j1", time.Millisecond)
	if err != nil {
		t.Fatalf("Wait = %v, want success after transient errors", err)
	}
	if info.Status != adcc.JobDone {
		t.Errorf("status %q, want done", info.Status)
	}
	if n := calls.Load(); n < 3 {
		t.Errorf("%d polls recorded, want at least 3", n)
	}
}

// TestWaitReturnsAPIErrors checks that an authoritative service answer
// (here 404: no such job) fails Wait immediately instead of retrying
// forever.
func TestWaitReturnsAPIErrors(t *testing.T) {
	c, paths := recordingServer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	})
	_, err := c.Wait(context.Background(), "missing", time.Millisecond)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusNotFound {
		t.Fatalf("Wait = %v, want the 404 APIError", err)
	}
	if len(*paths) != 1 {
		t.Errorf("%d polls recorded, want exactly 1 for an authoritative error", len(*paths))
	}
}

// TestWaitCancellation checks that a canceled context ends Wait with
// ctx.Err() even while the service keeps reporting a running job.
func TestWaitCancellation(t *testing.T) {
	c, _ := recordingServer(t, serveJSON(adcc.JobInfo{ID: "j1", Status: adcc.JobRunning}))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Wait(ctx, "j1", time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want context.DeadlineExceeded", err)
	}
}

// TestWaitCancellationDuringOutage checks the interaction of the two
// Wait fixes: transport errors keep being retried, but only until the
// context ends — a dead service never traps the caller.
func TestWaitCancellationDuringOutage(t *testing.T) {
	// A base URL nothing listens on: every poll is a transport error.
	c := New("http://127.0.0.1:1", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Wait(ctx, "j1", time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want context.DeadlineExceeded", err)
	}
}

// TestEventsFromOffset checks the resume query-string contract: -1
// streams from the beginning (no query), a non-negative lastSeq asks
// for the frame after it.
func TestEventsFromOffset(t *testing.T) {
	c, paths := recordingServer(t, sseHandler("id: 7\nevent: done\ndata: {}\n\n"))
	ctx := context.Background()
	if err := c.Events(ctx, "j1", -1, func(adcc.StreamEvent) error { return nil }); err != nil {
		t.Fatalf("Events(-1): %v", err)
	}
	if err := c.Events(ctx, "j1", 6, func(adcc.StreamEvent) error { return nil }); err != nil {
		t.Fatalf("Events(6): %v", err)
	}
	want := []string{"/v1/campaigns/j1/events", "/v1/campaigns/j1/events?from=6"}
	if fmt.Sprint(*paths) != fmt.Sprint(want) {
		t.Errorf("paths = %v, want %v", *paths, want)
	}
}
