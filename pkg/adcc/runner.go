package adcc

import (
	"context"
	"fmt"
	"io"

	"adcc/internal/campaign"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/harness"
	"adcc/internal/report"
	"adcc/internal/resultstore"
)

// Table is a rendered experiment result (aligned text via Fprint /
// String, CSV via FprintCSV).
type Table = harness.Table

// ExperimentInfo names one runnable reproduction unit of the harness.
type ExperimentInfo struct {
	// Name is the key RunExperiment accepts ("fig3", "campaign", ...).
	Name string
	// Title is the human-readable description.
	Title string
}

// Experiments lists every harness experiment in presentation order:
// the paper's figures, the headline-claim summary, the campaign, and
// the ablations.
func Experiments() []ExperimentInfo {
	all := harness.All()
	out := make([]ExperimentInfo, len(all))
	for i, e := range all {
		out[i] = ExperimentInfo{Name: e.Name, Title: e.Title}
	}
	return out
}

// Option configures a Runner.
type Option func(*Runner)

// WithScale sets the problem-size scale factor: 1.0 (the default)
// reproduces the paper-shape sizes, smaller values give CI-sized runs
// with the same qualitative behaviour.
func WithScale(scale float64) Option {
	return func(r *Runner) { r.scale = scale }
}

// WithParallelism bounds how many independent cases (experiment cases,
// workload runs, campaign injections) execute concurrently; values <= 1
// run serially. Every result — tables, reports, event streams — is
// byte-identical at any setting.
func WithParallelism(n int) Option {
	return func(r *Runner) { r.parallel = n }
}

// WithSeed sets the campaign's crash-point seed (the default 0 is a
// valid seed). The figure experiments use fixed paper-shape seeds.
func WithSeed(seed int64) Option {
	return func(r *Runner) { r.seed = seed }
}

// WithSchemes restricts sweeps to the named schemes: Run sweeps exactly
// these (instead of the workload's defaults), and campaign runs —
// RunCampaign and the "campaign" experiment — filter their grid to
// them (explicitly named custom schemes join the grid). Names resolve
// in the runner's registry at run time. The figure experiments
// reproduce the paper's fixed seven-case comparison and ignore it.
func WithSchemes(names ...string) Option {
	return func(r *Runner) { r.schemes = names }
}

// WithWorkloads restricts campaign runs (RunCampaign and the
// "campaign" experiment) to the named built-in workloads ("cg", "mm",
// "mc"); nil means all three. The figure experiments each study one
// fixed workload and ignore it.
func WithWorkloads(names ...string) Option {
	return func(r *Runner) { r.workloads = names }
}

// WithInjectionsPerCell overrides the campaign's number of injections
// per cell (0 = scaled default). Only campaign runs use it.
func WithInjectionsPerCell(n int) Option {
	return func(r *Runner) { r.perCell = n }
}

// WithFaultModels selects the crash-time fault/persistency models
// campaign runs sweep (see ParseFaultModel for the names: "failstop",
// "torn", "eadr", "reorder", "bitflip"). Each named model adds one
// grid axis value: every workload/scheme/system cell is swept once per
// model, over the same crash points, so outcome differences between
// models measure the model rather than a different sample. Nil (the
// default) sweeps clean fail-stop only, producing reports
// byte-identical to runners without the option.
func WithFaultModels(models ...string) Option {
	return func(r *Runner) { r.faultModels = models }
}

// WithCampaignReplay switches campaign runs (RunCampaign and the
// "campaign" experiment) to the snapshot/fork replay engine: one
// recording run per cell captures a machine snapshot at every
// scheduled crash point, and each injection forks from its snapshot
// instead of re-simulating the prefix. The report is byte-identical to
// the default per-injection path; only the wall-clock cost (and the
// recording-run Progress events in the stream) differ.
func WithCampaignReplay(on bool) Option {
	return func(r *Runner) { r.replay = on }
}

// WithCampaignResume seeds RunCampaign with cells already aggregated by
// a previous run, keyed by CampaignCell.Key ("workload/scheme@system",
// see CampaignCells). Seeded cells are skipped entirely — no profiling,
// no injections, no events — and their stored reports are spliced into
// the final report, which stays byte-identical to an uninterrupted
// run's. This is the resume half of the checkpointing pair adccd uses;
// WithCampaignCheckpoint is the persistence half.
func WithCampaignResume(completed map[string]CampaignCell) Option {
	return func(r *Runner) { r.completed = completed }
}

// WithCampaignCheckpoint attaches a shard checkpoint hook to
// RunCampaign: fn is called once per freshly executed cell with the
// cell's aggregated CampaignCell, in deterministic grid order, as soon
// as the cell's last injection has been observed. Persisting each cell
// and feeding them back through WithCampaignResume lets an interrupted
// campaign continue instead of restarting. fn runs on the sweep's
// ordered observation path; keep it fast.
func WithCampaignCheckpoint(fn func(CampaignCell)) Option {
	return func(r *Runner) { r.onCell = fn }
}

// WithCollector attaches a benchmark collector: every measured case
// records one Result (named "<experiment>/<case>" or
// "<workload>/<scheme>") carrying the deterministic simulated timings.
func WithCollector(c *Collector) Option {
	return func(r *Runner) { r.collector = c }
}

// WithEventSink attaches a streaming event sink. Events are emitted in
// deterministic case-index order; see Event.
func WithEventSink(sink EventSink) Option {
	return func(r *Runner) { r.sink = sink }
}

// WithVerbose enables progress notes on w while runs execute.
func WithVerbose(w io.Writer) Option {
	return func(r *Runner) { r.verbose, r.out = true, w }
}

// WithCampaignJSON makes campaign runs (RunCampaign and the "campaign"
// experiment) write the full machine-readable report, wrapped in the
// adcc-report/v1 envelope, to path.
func WithCampaignJSON(path string) Option {
	return func(r *Runner) { r.campaignJSON = path }
}

// WithCampaignStore makes campaign runs (RunCampaign and the
// "campaign" experiment) write every injection's raw outcome row to a
// columnar result store at path (conventionally "*.adccs"). The file
// bytes are a pure function of the campaign spec — identical at any
// parallelism and on either engine — and OpenResultStore queries them:
// filters, streamed rows, percentile distributions, and the rebuilt
// campaign report the v1 envelope is exported from. Incompatible with
// WithCampaignResume: restored cells carry no per-injection rows.
func WithCampaignStore(path string) Option {
	return func(r *Runner) { r.campaignStore = path }
}

// Runner executes workload sweeps, harness experiments, and
// crash-injection campaigns against one Registry. Build it with New,
// configure it with functional options, and drive it with Run,
// RunExperiment, or RunCampaign — each takes a context.Context whose
// cancellation stops the dispatch of queued cases promptly and
// surfaces ctx.Err().
//
// A Runner is immutable after New and safe for concurrent use, except
// that an attached EventSink sees one sequential stream per call — run
// concurrent sweeps with separate sinks.
type Runner struct {
	reg           *Registry
	scale         float64
	parallel      int
	seed          int64
	schemes       []string
	workloads     []string
	perCell       int
	faultModels   []string
	replay        bool
	completed     map[string]CampaignCell
	onCell        func(CampaignCell)
	collector     *Collector
	sink          EventSink
	verbose       bool
	out           io.Writer
	campaignJSON  string
	campaignStore string
}

// New builds a Runner over reg (nil means a fresh NewRegistry with the
// built-in schemes and workloads).
func New(reg *Registry, opts ...Option) *Runner {
	if reg == nil {
		reg = NewRegistry()
	}
	r := &Runner{reg: reg, scale: 1.0}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Registry returns the registry the runner resolves names in.
func (r *Runner) Registry() *Registry { return r.reg }

// CaseResult is the outcome of one workload x scheme run of a sweep.
type CaseResult struct {
	// Scheme and System identify the case.
	Scheme string `json:"scheme"`
	System string `json:"system"`
	// SimNS is the deterministic simulated duration of the run.
	SimNS int64 `json:"sim_ns"`
	// Err is the build/verification failure, empty when the run
	// completed and verified.
	Err string `json:"err,omitempty"`
	// Metrics are the workload's native measurements of the run.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// RunReport is the outcome of a Runner.Run sweep: one CaseResult per
// scheme, in sweep order.
type RunReport struct {
	Workload string       `json:"workload"`
	Scale    float64      `json:"scale"`
	Cases    []CaseResult `json:"cases"`
}

// Failed returns the cases that did not complete and verify.
func (r *RunReport) Failed() []CaseResult {
	var out []CaseResult
	for _, c := range r.Cases {
		if c.Err != "" {
			out = append(out, c)
		}
	}
	return out
}

// runSchemes resolves the scheme list a sweep of spec covers.
func (r *Runner) runSchemes(spec WorkloadSpec) ([]Scheme, error) {
	names := r.schemes
	if len(names) == 0 {
		names = spec.Schemes
	}
	if len(names) == 0 {
		return r.reg.SevenCases(), nil
	}
	out := make([]Scheme, len(names))
	for i, n := range names {
		sc, ok := r.reg.Scheme(n)
		if !ok {
			return nil, fmt.Errorf("adcc: unknown scheme %q", n)
		}
		out[i] = sc
	}
	return out, nil
}

// Run sweeps one registered workload across the configured schemes:
// for each scheme it builds a fresh machine on the scheme's platform,
// runs the workload to completion, verifies the result, and reports
// the deterministic simulated runtime and the workload's metrics.
// Custom workloads and custom schemes registered on the runner's
// Registry sweep exactly like the built-ins.
func (r *Runner) Run(ctx context.Context, workload string) (*RunReport, error) {
	spec, ok := r.reg.Workload(workload)
	if !ok {
		return nil, fmt.Errorf("adcc: unknown workload %q", workload)
	}
	schemes, err := r.runSchemes(spec)
	if err != nil {
		return nil, err
	}
	rep := &RunReport{Workload: workload, Scale: r.scale}
	// Case failures land in CaseResult.Err (the sweep itself keeps
	// going), so the event stream is built here rather than through
	// engine.EmitCases: a failed case must stream its error, not "ok".
	var observe func(i int, v CaseResult, err error)
	if r.sink != nil {
		exp := "run/" + workload
		observe = func(i int, v CaseResult, _ error) {
			r.sink.Emit(engine.CaseStarted{
				Experiment: exp, Case: schemes[i].Name(), Index: i, Total: len(schemes),
			})
			r.sink.Emit(engine.CaseFinished{
				Experiment: exp, Case: schemes[i].Name(), Index: i, Total: len(schemes),
				Err: v.Err,
			})
		}
	}
	cases, err := engine.RunCasesObserved(ctx, r.parallel, len(schemes),
		func(i int) (CaseResult, error) {
			sc := schemes[i]
			r.logf("run/%s: case %s", workload, sc.Name())
			res := CaseResult{Scheme: sc.Name(), System: sc.System().String()}
			w, err := spec.New(sc, r.scale)
			if err != nil {
				res.Err = err.Error()
				return res, nil
			}
			m := crash.NewMachine(crash.MachineConfig{System: sc.System()})
			if err := w.Prepare(m, nil); err != nil {
				res.Err = err.Error()
				return res, nil
			}
			start := m.Clock.Now()
			w.Run(w.Start())
			res.SimNS = m.Clock.Since(start)
			if err := w.Verify(); err != nil {
				res.Err = err.Error()
				return res, nil
			}
			res.Metrics = w.Metrics()
			r.collector.Record(Result{
				Name:  fmt.Sprintf("%s/%s", workload, sc.Name()),
				SimNS: res.SimNS,
			})
			return res, nil
		}, observe)
	if err != nil {
		return nil, err
	}
	rep.Cases = cases
	return rep, nil
}

// RunExperiment runs one harness experiment by name (see Experiments)
// and returns its rendered table.
func (r *Runner) RunExperiment(ctx context.Context, name string) (*Table, error) {
	e, ok := harness.ByName(name)
	if !ok {
		return nil, fmt.Errorf("adcc: unknown experiment %q (see Experiments)", name)
	}
	return e.Run(ctx, harness.Options{
		Scale:         r.scale,
		Parallel:      r.parallel,
		Seed:          r.seed,
		Workloads:     r.workloads,
		Schemes:       r.schemes,
		PerCell:       r.perCell,
		FaultModels:   r.faultModels,
		Replay:        r.replay,
		Registry:      r.reg.engineRegistry(),
		Verbose:       r.verbose,
		Out:           r.out,
		Collector:     r.collector,
		Events:        r.sink,
		CampaignJSON:  r.campaignJSON,
		CampaignStore: r.campaignStore,
	})
}

// RunCampaign executes the statistical crash-injection campaign over
// the configured workload/scheme grid and returns its deterministic
// report. With WithCollector, every cell also records a bench Result;
// with WithCampaignJSON, the enveloped report is written to disk; with
// WithEventSink, every injection streams an InjectionDone event.
func (r *Runner) RunCampaign(ctx context.Context) (*CampaignReport, error) {
	cfg := campaign.Config{
		Scale:       r.scale,
		Seed:        r.seed,
		Parallel:    r.parallel,
		PerCell:     r.perCell,
		Workloads:   r.workloads,
		Schemes:     r.schemes,
		FaultModels: r.faultModels,
		Registry:    r.reg.engineRegistry(),
		Replay:      r.replay,
		Events:      r.sink,
		Completed:   r.completed,
		OnCell:      r.onCell,
		Verbose:     r.verbose,
		Out:         r.out,
	}
	var fw *resultstore.FileWriter
	if r.campaignStore != "" {
		// The store footer carries the same normalized scale the report
		// records, so the rebuilt envelope is byte-identical.
		scale := cfg.Scale
		if scale <= 0 {
			scale = 1.0
		}
		var err error
		if fw, err = resultstore.CreateFile(r.campaignStore, scale, cfg.Seed); err != nil {
			return nil, err
		}
		cfg.Sink = fw
	}
	rep, err := campaign.Run(ctx, cfg)
	if fw != nil {
		if cerr := fw.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("adcc: write campaign store: %w", cerr)
		}
	}
	if err != nil {
		return nil, err
	}
	for _, res := range rep.BenchResults() {
		r.collector.Record(res)
	}
	if r.campaignJSON != "" {
		if err := report.WrapCampaign(rep).WriteFile(r.campaignJSON); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// CampaignTable renders a campaign report as the per-scheme survival
// table shown by adccbench and crashsim.
func CampaignTable(rep *CampaignReport) *Table {
	return harness.CampaignTable(rep)
}

func (r *Runner) logf(format string, args ...any) {
	if r.verbose && r.out != nil {
		fmt.Fprintf(r.out, format+"\n", args...)
	}
}
