// Package adcc is the public library API of the adcc reproduction of
// Yang et al., "Algorithm-Directed Crash Consistence in Non-Volatile
// Memory for HPC" (IEEE CLUSTER 2017): a deterministic simulated NVM
// platform, the paper's three study workloads with their recovery
// protocols, the consistency-scheme engine, the experiment harness that
// regenerates every figure, and the statistical crash-injection
// campaign.
//
// It is the one supported way to drive the system from outside this
// module — the repo's own commands (adccbench, crashsim, benchdiff) and
// examples are built exclusively on it. The entry points:
//
//   - Registry: an instance-scoped namespace of consistency Schemes and
//     Workloads. NewRegistry seeds the paper's schemes and the three
//     study workloads; RegisterScheme / RegisterWorkload add custom
//     ones without init-order coupling.
//
//   - Runner: configured with functional options (WithScale,
//     WithParallelism, WithSeed, WithSchemes, WithCollector,
//     WithEventSink, ...), it runs workload sweeps (Run), the paper's
//     experiments (RunExperiment), and the crash-injection campaign
//     (RunCampaign). Every method takes a context.Context: cancelling
//     it stops the dispatch of queued cases promptly and surfaces
//     ctx.Err() with the partial results.
//
//   - Event / EventSink: a deterministic streaming view of a run —
//     case started/finished, injection outcomes, progress counts —
//     emitted in case-index order, so a recorded stream is
//     byte-identical at any parallelism.
//
//   - Report: the adcc-report/v1 envelope wrapping every
//     machine-readable artifact (benchmark suites, campaign reports);
//     ReadReport decodes enveloped and legacy files alike.
//
// For single-crash-point studies the package also re-exports the
// simulated platform (NewMachine, NewEmulator), the workload
// constructors (NewCG, NewMM, NewMCRunner, ...), and the input
// generators the examples use.
//
// Determinism contract: every metric in the package derives from the
// simulated clock, every case runs on its own seeded machine, and every
// fan-out collects by case index — the same code, inputs, and scale
// produce byte-identical tables, reports, and event streams on any
// host at any parallelism.
package adcc
