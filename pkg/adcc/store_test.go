package adcc_test

import (
	"bytes"
	"context"
	"testing"

	"adcc/pkg/adcc"
)

// TestCampaignStoreEndToEnd drives the public store surface: a
// campaign run with WithCampaignStore, the opened store's totals and
// filters, percentile distributions, and the envelope rebuilt
// byte-identically from the store.
func TestCampaignStoreEndToEnd(t *testing.T) {
	path := t.TempDir() + "/campaign.adccs"
	runner := adcc.New(nil,
		adcc.WithScale(0.02),
		adcc.WithParallelism(4),
		adcc.WithWorkloads("mm"),
		adcc.WithInjectionsPerCell(3),
		adcc.WithCampaignStore(path),
	)
	rep, err := runner.RunCampaign(context.Background())
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}

	s, err := adcc.OpenResultStore(path)
	if err != nil {
		t.Fatalf("OpenResultStore: %v", err)
	}
	defer s.Close()

	if s.TotalRows() != int64(rep.Injections) {
		t.Errorf("TotalRows = %d, want %d", s.TotalRows(), rep.Injections)
	}

	// The rebuilt report is the exported envelope's payload.
	rebuilt, err := s.CampaignReport()
	if err != nil {
		t.Fatalf("CampaignReport: %v", err)
	}
	want, err := rep.EncodeJSON()
	if err != nil {
		t.Fatalf("encode live: %v", err)
	}
	got, err := rebuilt.EncodeJSON()
	if err != nil {
		t.Fatalf("encode rebuilt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("rebuilt report differs from live report")
	}

	// Filtered scan and distribution answer without error and agree on
	// row counts.
	var rows int64
	err = s.Scan(adcc.StoreFilter{Workload: "mm"}, func(adcc.StoreRow) error {
		rows++
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if rows != s.TotalRows() {
		t.Errorf("mm scan saw %d rows, want %d", rows, s.TotalRows())
	}
	d, err := s.Distribution(adcc.StoreFilter{}, adcc.MetricReworkOps)
	if err != nil {
		t.Fatalf("Distribution: %v", err)
	}
	if d.Count != s.TotalRows() {
		t.Errorf("Distribution.Count = %d, want %d", d.Count, s.TotalRows())
	}
	agg, err := s.Aggregate(adcc.StoreFilter{Outcome: "clean"})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	var clean int64
	for _, c := range rep.Cells {
		clean += int64(c.Clean)
	}
	if agg.Rows != clean {
		t.Errorf("clean-filtered Aggregate.Rows = %d, want %d", agg.Rows, clean)
	}
}

// TestStoreVocabulary: the re-exported outcome and metric vocabularies
// parse their own names.
func TestStoreVocabulary(t *testing.T) {
	for _, name := range adcc.CampaignOutcomeNames() {
		if _, err := adcc.ParseCampaignOutcome(name); err != nil {
			t.Errorf("ParseCampaignOutcome(%q): %v", name, err)
		}
	}
	for _, name := range adcc.StoreMetricNames() {
		if _, err := adcc.ParseStoreMetric(name); err != nil {
			t.Errorf("ParseStoreMetric(%q): %v", name, err)
		}
	}
	if adcc.OutcomeCorrupt.String() != "corrupt" {
		t.Errorf("OutcomeCorrupt.String() = %q", adcc.OutcomeCorrupt.String())
	}
}
