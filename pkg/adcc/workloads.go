package adcc

import (
	"adcc/internal/core"
	"adcc/internal/dense"
	"adcc/internal/engine"
	"adcc/internal/kvlog"
	"adcc/internal/mc"
	"adcc/internal/sparse"
	"adcc/internal/stencil"
)

// This file re-exports the paper's three study workloads — the extended
// (algorithm-directed) implementations, their conventional-mechanism
// baselines, the engine.Workload adapters — and the pure input
// generators the examples build their problems with.

// Workload is a crash-consistence study: a computation that can run
// from an iteration boundary, recover after a crash, and verify its
// result. Custom workloads implement it and register a WorkloadSpec on
// a Registry; the built-in implementations are CGWorkload, MMWorkload,
// MCWorkload and their baseline counterparts.
type Workload = engine.Workload

// Guard is the per-run binding of a scheme to a machine: the uniform
// iteration-protection hooks a workload loop drives.
type Guard = engine.Guard

// NewNativeGuard returns the no-op guard used by native and
// algorithm-directed schemes (custom Schemes without a conventional
// mechanism return it from NewGuard).
func NewNativeGuard() Guard { return engine.NewNativeGuard() }

// Conjugate gradient (paper §III-B).
type (
	// CG is the extended crash-consistent CG solver.
	CG = core.CG
	// CGOptions configures a CG solve.
	CGOptions = core.CGOptions
	// CGRecovery reports what CG recovery concluded.
	CGRecovery = core.CGRecovery
	// BaselineCG is the Figure 1 baseline solver driven through a
	// conventional scheme's Guard.
	BaselineCG = core.BaselineCG
	// CGWorkload adapts the extended solver to the Workload lifecycle.
	CGWorkload = core.CGWorkload
	// BaselineCGWorkload adapts the baseline solver to the Workload
	// lifecycle under a conventional scheme.
	BaselineCGWorkload = core.BaselineCGWorkload
)

// NewCG builds the extended crash-consistent CG solver on a machine
// (em may be nil when no crash will be injected).
func NewCG(m *Machine, em *Emulator, a *SparseMatrix, opts CGOptions) *CG {
	return core.NewCG(m, em, a, opts)
}

// NewBaselineCG builds the Figure 1 baseline solver under a
// conventional scheme (nil means native, no protection).
func NewBaselineCG(m *Machine, a *SparseMatrix, opts CGOptions, sc Scheme) *BaselineCG {
	return core.NewBaselineCG(m, a, opts, sc)
}

// ABFT matrix multiplication (paper §III-C).
type (
	// MM is the extended ABFT multiplication with checksummed temporal
	// matrices.
	MM = core.MM
	// MMOptions configures a multiplication.
	MMOptions = core.MMOptions
	// MMRecovery reports per-block checksum verification results.
	MMRecovery = core.MMRecovery
	// BaselineMM is the Figure 5 baseline multiplication.
	BaselineMM = core.BaselineMM
	// MMWorkload adapts the extended multiplication to the Workload
	// lifecycle.
	MMWorkload = core.MMWorkload
	// BaselineMMWorkload adapts the baseline multiplication to the
	// Workload lifecycle under a conventional scheme.
	BaselineMMWorkload = core.BaselineMMWorkload
)

// NewMM builds the extended ABFT multiplication on a machine (em may be
// nil).
func NewMM(m *Machine, em *Emulator, opts MMOptions) *MM {
	return core.NewMM(m, em, opts)
}

// NewBaselineMM builds the Figure 5 baseline multiplication under a
// conventional scheme (nil means native).
func NewBaselineMM(m *Machine, opts MMOptions, sc Scheme) *BaselineMM {
	return core.NewBaselineMM(m, opts, sc)
}

// Monte-Carlo neutron-transport lookups (paper §III-D).
type (
	// MCSim is the XSBench-style cross-section lookup simulation.
	MCSim = mc.Sim
	// MCConfig sizes the lookup simulation.
	MCConfig = mc.Config
	// MCRunner drives the lookup loop under a consistency scheme.
	MCRunner = core.MCRunner
	// MCWorkload adapts the lookup loop to the Workload lifecycle.
	MCWorkload = core.MCWorkload
)

// MCNumTypes is the number of interaction types the simulation counts.
const MCNumTypes = mc.NumTypes

// NewMCSim allocates the cross-section grids on a machine's heap.
func NewMCSim(m *Machine, cfg MCConfig) *MCSim {
	return mc.New(m.Heap, m.CPU, cfg)
}

// NewMCRunner builds the lookup-loop runner under a scheme (em may be
// nil; a nil scheme means native).
func NewMCRunner(m *Machine, em *Emulator, s *MCSim, sc Scheme) *MCRunner {
	return core.NewMCRunner(m, em, s, sc)
}

// MCDefaultConfig returns the paper-shape lookup configuration.
func MCDefaultConfig() MCConfig { return mc.DefaultConfig() }

// MCTinyConfig returns a CI-sized lookup configuration.
func MCTinyConfig() MCConfig { return mc.TinyConfig() }

// MCPercentages converts interaction counts to percentages of the
// lookup total.
func MCPercentages(c [MCNumTypes]int64, lookups int) [MCNumTypes]float64 {
	return mc.Percentages(c, lookups)
}

// Jacobi heat stencil (extension workload family).
type (
	// Heat is the extended algorithm-directed Jacobi relaxation with
	// plane history and invariant-based recovery.
	Heat = stencil.Heat
	// HeatOptions configures a relaxation.
	HeatOptions = stencil.Options
	// HeatRecovery reports what stencil recovery concluded.
	HeatRecovery = stencil.Recovery
	// BaselineHeat is the conventional ping-pong relaxation driven
	// through a conventional scheme's Guard.
	BaselineHeat = stencil.Baseline
	// HeatWorkload adapts the extended relaxation to the Workload
	// lifecycle.
	HeatWorkload = stencil.HeatWorkload
	// BaselineHeatWorkload adapts the ping-pong relaxation to the
	// Workload lifecycle under a conventional scheme.
	BaselineHeatWorkload = stencil.BaselineWorkload
)

// NewHeat builds the extended algorithm-directed relaxation on a
// machine (em may be nil when no crash will be injected).
func NewHeat(m *Machine, em *Emulator, opts HeatOptions) *Heat {
	return stencil.NewHeat(m, em, opts)
}

// NewBaselineHeat builds the ping-pong relaxation under a conventional
// scheme (nil means native, no protection).
func NewBaselineHeat(m *Machine, opts HeatOptions, sc Scheme) *BaselineHeat {
	return stencil.NewBaseline(m, opts, sc)
}

// HeatWant computes the native reference plane for the given options —
// the stencil family's verification oracle.
func HeatWant(opts HeatOptions) []float64 { return stencil.Want(opts) }

// HeatVerify compares a computed plane against the oracle.
func HeatVerify(got, want []float64) error { return stencil.VerifyGrid(got, want) }

// Persistent KV/log store (served-traffic extension family).
type (
	// KVLogStore is the extended algorithm-directed store: append-log
	// tail flushing, high-water mark, index rebuilt by idempotent log
	// replay on recovery.
	KVLogStore = kvlog.Store
	// KVLogOptions configures a request-stream run.
	KVLogOptions = kvlog.Options
	// KVLogRequest is one operation of the seeded Zipfian stream.
	KVLogRequest = kvlog.Request
	// KVLogOp is a request kind (put, get, delete, scan).
	KVLogOp = kvlog.Op
	// KVLogRecovery reports what a log replay concluded.
	KVLogRecovery = kvlog.Recovery
	// BaselineKVLogStore is the same store driven through a
	// conventional scheme's Guard.
	BaselineKVLogStore = kvlog.Baseline
	// KVLogWorkload adapts the algorithm-directed store to the Workload
	// lifecycle.
	KVLogWorkload = kvlog.StoreWorkload
	// BaselineKVLogWorkload adapts the store to the Workload lifecycle
	// under a conventional scheme.
	BaselineKVLogWorkload = kvlog.BaselineWorkload
)

// KV request kinds of the seeded stream.
const (
	KVLogOpPut  = kvlog.OpPut
	KVLogOpGet  = kvlog.OpGet
	KVLogOpDel  = kvlog.OpDel
	KVLogOpScan = kvlog.OpScan
)

// NewKVLogStore builds the algorithm-directed store on a machine (em
// may be nil when no crash will be injected).
func NewKVLogStore(m *Machine, em *Emulator, opts KVLogOptions) *KVLogStore {
	return kvlog.NewStore(m, em, opts)
}

// NewBaselineKVLogStore builds the store under a conventional scheme
// (nil means native, no protection).
func NewBaselineKVLogStore(m *Machine, opts KVLogOptions, sc Scheme) *BaselineKVLogStore {
	return kvlog.NewBaseline(m, opts, sc)
}

// KVLogStream generates the deterministic Zipfian request stream for
// the given options.
func KVLogStream(opts KVLogOptions) []KVLogRequest { return kvlog.Stream(opts) }

// KVLogWant computes the final key-value state of the request stream —
// the family's verification oracle.
func KVLogWant(opts KVLogOptions) map[int64]int64 { return kvlog.Oracle(opts) }

// KVLogVerify compares a served state against the oracle map.
func KVLogVerify(got, want map[int64]int64) error { return kvlog.VerifyState(got, want) }

// KVLogThroughput returns the simulated request rate (ops/sec) over
// recorded per-request latencies.
func KVLogThroughput(reqNS []int64) float64 { return kvlog.Throughput(reqNS) }

// KVLogPercentile returns the nearest-rank p-th percentile of a latency
// slice — the same semantics as the result store's distributions.
func KVLogPercentile(v []int64, p float64) int64 { return kvlog.Percentile(v, p) }

// Pure input generators (no simulation cost).
type (
	// SparseMatrix is a CSR sparse matrix.
	SparseMatrix = sparse.CSR
	// Matrix is a dense row-major matrix.
	Matrix = dense.Matrix
)

// GenSPD generates a random sparse symmetric positive-definite matrix
// of order n with about nnzRow nonzeros per row.
func GenSPD(n, nnzRow int, seed int64) *SparseMatrix {
	return sparse.GenSPD(n, nnzRow, seed)
}

// NewMatrix allocates a zero dense matrix.
func NewMatrix(rows, cols int) *Matrix { return dense.New(rows, cols) }

// RandomMatrix generates a seeded random dense matrix.
func RandomMatrix(rows, cols int, seed int64) *Matrix {
	return dense.Random(rows, cols, seed)
}

// MatMul computes c = a x b natively (the verification oracle of the
// MM study).
func MatMul(c, a, b *Matrix) { dense.Mul(c, a, b) }
