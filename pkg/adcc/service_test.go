package adcc_test

import (
	"context"
	"testing"

	"adcc/pkg/adcc"
)

// TestCampaignSpecCacheKey asserts the content-address contract: the
// key is invariant under list order, duplicates, default-scale
// spelling, and engine choice — exactly the transformations that
// provably do not change report bytes — and sensitive to everything
// else.
func TestCampaignSpecCacheKey(t *testing.T) {
	base := adcc.CampaignSpec{
		Scale:     1.0,
		Workloads: []string{"mc", "mm"},
		Schemes:   []string{"native", "algo-NVM-only"},
	}
	same := []adcc.CampaignSpec{
		{Scale: 0, Workloads: []string{"mm", "mc"}, Schemes: []string{"algo-NVM-only", "native"}},
		{Scale: 1.0, Workloads: []string{"mc", "mm", "mc"}, Schemes: []string{"native", "algo-NVM-only"}, Replay: true},
	}
	for i, s := range same {
		if s.CacheKey() != base.CacheKey() {
			t.Errorf("spec #%d: key %s differs from base %s", i, s.CacheKey(), base.CacheKey())
		}
	}
	diff := []adcc.CampaignSpec{
		{Scale: 0.5, Workloads: base.Workloads, Schemes: base.Schemes},
		{Scale: 1.0, Seed: 7, Workloads: base.Workloads, Schemes: base.Schemes},
		{Scale: 1.0, Workloads: []string{"mc"}, Schemes: base.Schemes},
		{Scale: 1.0, Workloads: base.Workloads, Schemes: base.Schemes, InjectionsPerCell: 9},
	}
	for i, s := range diff {
		if s.CacheKey() == base.CacheKey() {
			t.Errorf("spec #%d: key did not change", i)
		}
	}
}

// TestCampaignCells checks grid enumeration and submission-time
// validation through the public API.
func TestCampaignCells(t *testing.T) {
	keys, err := adcc.CampaignCells(nil, adcc.CampaignSpec{Workloads: []string{"mm"}})
	if err != nil {
		t.Fatalf("CampaignCells: %v", err)
	}
	if len(keys) != 12 { // 6 schemes x 2 systems
		t.Fatalf("mm grid has %d cells, want 12: %v", len(keys), keys)
	}
	if keys[0] != "mm/native@NVM-only" {
		t.Errorf("first cell = %q", keys[0])
	}
	if _, err := adcc.CampaignCells(nil, adcc.CampaignSpec{Schemes: []string{"bogus"}}); err == nil {
		t.Error("CampaignCells accepted an unknown scheme")
	}
	if _, err := adcc.CampaignCells(nil, adcc.CampaignSpec{Workloads: []string{"bogus"}}); err == nil {
		t.Error("CampaignCells accepted an unknown workload")
	}
}

// TestCampaignResumeOptions drives the checkpoint/resume pair through
// the public Runner: checkpoints from one run, fed back through
// WithCampaignResume, must skip exactly the seeded cells and leave the
// report bytes unchanged.
func TestCampaignResumeOptions(t *testing.T) {
	spec := adcc.CampaignSpec{Scale: 0.02, Workloads: []string{"mm"}, InjectionsPerCell: 2}
	var cells []adcc.CampaignCell
	runner := adcc.New(nil, append(spec.Options(),
		adcc.WithCampaignCheckpoint(func(c adcc.CampaignCell) { cells = append(cells, c) }))...)
	rep, err := runner.RunCampaign(context.Background())
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	want, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(rep.Cells) {
		t.Fatalf("%d checkpoints for %d cells", len(cells), len(rep.Cells))
	}

	completed := map[string]adcc.CampaignCell{}
	for _, c := range cells[:len(cells)/2] {
		completed[c.Key()] = c
	}
	var reran int
	resumed := adcc.New(nil, append(spec.Options(),
		adcc.WithCampaignResume(completed),
		adcc.WithCampaignCheckpoint(func(adcc.CampaignCell) { reran++ }))...)
	rep2, err := resumed.RunCampaign(context.Background())
	if err != nil {
		t.Fatalf("resumed RunCampaign: %v", err)
	}
	got, err := rep2.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("resumed report differs:\n%s\nwant:\n%s", got, want)
	}
	if reran != len(cells)-len(completed) {
		t.Errorf("resume re-executed %d cells, want %d", reran, len(cells)-len(completed))
	}
}
