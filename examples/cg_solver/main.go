// Command cg_solver compares the cost of making a CG solve crash-consistent
// with the three families of mechanisms the paper evaluates: per-
// iteration checkpointing, PMEM-style undo-log transactions, and the
// algorithm-directed history extension — all configured for the same
// one-iteration recomputation bound, so runtime is the only difference.
// Schemes resolve on an instance adcc.Registry; no global state.
package main

import (
	"fmt"

	"adcc/pkg/adcc"
)

func main() {
	const (
		n     = 40000
		iters = 12
	)
	a := adcc.GenSPD(n, 13, 7)
	opts := adcc.CGOptions{MaxIter: iters}
	reg := adcc.NewRegistry()

	type result struct {
		name string
		ns   int64
	}
	var results []result

	run := func(name string, f func(m *adcc.Machine) func()) {
		m := adcc.NewMachine(adcc.MachineConfig{System: adcc.NVMOnly})
		work := f(m)
		start := m.Clock.Now()
		work()
		results = append(results, result{name, m.Clock.Since(start)})
	}

	run("native (not restartable)", func(m *adcc.Machine) func() {
		s := adcc.NewBaselineCG(m, a, opts, nil)
		return s.Run
	})
	run("checkpoint per iteration", func(m *adcc.Machine) func() {
		s := adcc.NewBaselineCG(m, a, opts, reg.MustScheme(adcc.SchemeCkptNVM))
		return s.Run
	})
	run("PMEM undo-log transactions", func(m *adcc.Machine) func() {
		s := adcc.NewBaselineCG(m, a, opts, reg.MustScheme(adcc.SchemePMEM))
		return s.Run
	})
	run("algorithm-directed (paper)", func(m *adcc.Machine) func() {
		s := adcc.NewCG(m, nil, a, opts)
		return func() { s.Run(1) }
	})

	base := results[0].ns
	fmt.Printf("CG n=%d, %d iterations, one-iteration recomputation bound:\n\n", n, iters)
	for _, r := range results {
		fmt.Printf("  %-28s %8.2f ms   %.3fx native\n",
			r.name, float64(r.ns)/1e6, float64(r.ns)/float64(base))
	}
	fmt.Println("\nThe algorithm-directed extension flushes one cache line per" +
		"\niteration and relies on cache eviction plus CG's invariants for" +
		"\neverything else — which is why it is nearly free.")
}
