// Command cg_solver compares the cost of making a CG solve crash-consistent
// with the three families of mechanisms the paper evaluates: per-
// iteration checkpointing, PMEM-style undo-log transactions, and the
// algorithm-directed history extension — all configured for the same
// one-iteration recomputation bound, so runtime is the only difference.
package main

import (
	"fmt"

	"adcc/internal/core"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/sparse"
)

func main() {
	const (
		n     = 40000
		iters = 12
	)
	a := sparse.GenSPD(n, 13, 7)
	opts := core.CGOptions{MaxIter: iters}

	type result struct {
		name string
		ns   int64
	}
	var results []result

	run := func(name string, f func(m *crash.Machine) func()) {
		m := crash.NewMachine(crash.MachineConfig{System: crash.NVMOnly})
		work := f(m)
		start := m.Clock.Now()
		work()
		results = append(results, result{name, m.Clock.Since(start)})
	}

	run("native (not restartable)", func(m *crash.Machine) func() {
		s := core.NewBaselineCG(m, a, opts, nil)
		return s.Run
	})
	run("checkpoint per iteration", func(m *crash.Machine) func() {
		s := core.NewBaselineCG(m, a, opts, engine.MustLookup(engine.SchemeCkptNVM))
		return s.Run
	})
	run("PMEM undo-log transactions", func(m *crash.Machine) func() {
		s := core.NewBaselineCG(m, a, opts, engine.MustLookup(engine.SchemePMEM))
		return s.Run
	})
	run("algorithm-directed (paper)", func(m *crash.Machine) func() {
		s := core.NewCG(m, nil, a, opts)
		return func() { s.Run(1) }
	})

	base := results[0].ns
	fmt.Printf("CG n=%d, %d iterations, one-iteration recomputation bound:\n\n", n, iters)
	for _, r := range results {
		fmt.Printf("  %-28s %8.2f ms   %.3fx native\n",
			r.name, float64(r.ns)/1e6, float64(r.ns)/float64(base))
	}
	fmt.Println("\nThe algorithm-directed extension flushes one cache line per" +
		"\niteration and relies on cache eviction plus CG's invariants for" +
		"\neverything else — which is why it is nearly free.")
}
