// Command stencil_heat walks through the stencil extension family: a
// 2D Jacobi heat relaxation made crash-consistent the algorithm-directed
// way. It compares the runtime cost of the mechanisms (per-iteration
// checkpoints, PMEM-style transactions, the plane-history extension),
// then crashes the extended relaxation mid-run and shows the
// invariant-directed recovery re-relaxing to a verified result while
// the rejected index-only design silently corrupts.
package main

import (
	"fmt"

	"adcc/pkg/adcc"
)

func main() {
	opts := adcc.HeatOptions{N: 160, MaxIter: 12, Seed: 21}
	reg := adcc.NewRegistry()

	type result struct {
		name string
		ns   int64
	}
	var results []result
	run := func(name string, f func(m *adcc.Machine) func()) {
		m := adcc.NewMachine(adcc.MachineConfig{System: adcc.NVMOnly})
		work := f(m)
		start := m.Clock.Now()
		work()
		results = append(results, result{name, m.Clock.Since(start)})
	}

	run("native (not restartable)", func(m *adcc.Machine) func() {
		s := adcc.NewBaselineHeat(m, opts, nil)
		return s.Run
	})
	run("checkpoint per sweep", func(m *adcc.Machine) func() {
		s := adcc.NewBaselineHeat(m, opts, reg.MustScheme(adcc.SchemeCkptNVM))
		return s.Run
	})
	run("PMEM undo-log transactions", func(m *adcc.Machine) func() {
		s := adcc.NewBaselineHeat(m, opts, reg.MustScheme(adcc.SchemePMEM))
		return s.Run
	})
	run("algorithm-directed (planes)", func(m *adcc.Machine) func() {
		s := adcc.NewHeat(m, nil, opts)
		return func() { s.Run(1) }
	})

	base := results[0].ns
	fmt.Printf("Jacobi heat %dx%d, %d sweeps, one-sweep recomputation bound:\n\n",
		opts.N, opts.N, opts.MaxIter)
	for _, r := range results {
		fmt.Printf("  %-28s %8.2f ms   %.3fx native\n",
			r.name, float64(r.ns)/1e6, float64(r.ns)/float64(base))
	}

	// Crash the extended relaxation at the end of sweep 9 and recover —
	// once under the full selective-flush protocol, once under the
	// rejected index-only design that trusts the persistent image
	// blindly (the stencil analogue of the paper's Figure 10 bias).
	want := adcc.HeatWant(opts)
	crashAndRecover := func(policy adcc.FlushPolicy) (adcc.HeatRecovery, string) {
		m := adcc.NewMachine(adcc.MachineConfig{System: adcc.NVMOnly})
		em := adcc.NewEmulator(m)
		h := adcc.NewHeat(m, em, opts)
		h.Policy = policy
		em.CrashAtTrigger(adcc.TriggerStencilIterEnd, 9)
		if !em.Run(func() { h.Run(1) }) {
			panic("stencil_heat: crash point not reached")
		}
		rec := h.Recover()
		h.Run(rec.RestartIter)
		if err := adcc.HeatVerify(h.Result(), want); err != nil {
			return rec, "SILENTLY CORRUPT"
		}
		return rec, "verified"
	}

	rec, status := crashAndRecover(adcc.FlushSelective)
	fmt.Printf("\nCrash at end of sweep %d, algorithm-directed recovery: walked %d\n"+
		"plane pairs, restarted at sweep %d (%d sweeps lost), result %s.\n",
		rec.CrashIter, rec.Checked, rec.RestartIter, rec.IterationsLost, status)
	recN, statusN := crashAndRecover(adcc.FlushIndexOnly)
	fmt.Printf("Same crash, rejected index-only design: restarted blindly at sweep %d,\n"+
		"result %s.\n", recN.RestartIter, statusN)

	fmt.Println("\nThe extension flushes two cache lines per sweep (iteration index" +
		"\n+ residual) and recovers by re-relaxing from the newest plane pair" +
		"\nthat satisfies u(j) = Jacobi(u(j-1)) on the persistent image —" +
		"\nthe same invariant-directed recipe as CG's conjugacy walk.")
}
