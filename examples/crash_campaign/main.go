// Command crash_campaign is a runnable walkthrough of the statistical
// fault-injection engine through the public pkg/adcc API: it enumerates
// the crash-point space of one Monte-Carlo run, sweeps a small seeded
// campaign of injections across three representative schemes on both
// simulated platforms with live streaming events, and prints what each
// scheme survived — the selective-flush algorithm-directed scheme
// recovers every point, the rejected index-only variant silently
// corrupts (the paper's Figure 10 bias), and checkpointing recovers at
// a higher rework cost.
//
// Run it from the repo root:
//
//	go run ./examples/crash_campaign
//
// The full grid (all workloads x schemes x platforms, with a JSON
// report) is:
//
//	go run ./cmd/adccbench -experiment campaign -scale 0.1 -parallel 4 -json campaign.json
package main

import (
	"context"
	"fmt"
	"os"

	"adcc/pkg/adcc"
)

func main() {
	// 1. The crash-point space: profile one uninterrupted run.
	reg := adcc.NewRegistry()
	m := adcc.NewMachine(adcc.MachineConfig{})
	em := adcc.NewEmulator(m)
	w := &adcc.MCWorkload{
		Cfg:    adcc.MCTinyConfig(),
		Scheme: reg.MustScheme(adcc.SchemeAlgoNVM),
	}
	if err := w.Prepare(m, em); err != nil {
		panic(err)
	}
	prof := em.Profile(func() { w.Run(w.Start()) })
	fmt.Printf("one MC run: %d memory operations, triggers: %v\n", prof.Ops, prof.Triggers)

	// 2. Deterministic seeded crash points: half random op counts, half
	// random occurrences of the instrumented program points.
	pts := prof.Points(6, 1)
	fmt.Printf("6 seeded crash points: %v\n\n", pts)

	// 3. A small campaign over three representative schemes, with the
	// injection outcomes streamed as they classify. Every injection
	// runs on a fresh simulated machine; the report — and the event
	// stream — is byte-identical at any parallelism.
	corrupt := 0
	runner := adcc.New(reg,
		adcc.WithScale(0.05),
		adcc.WithParallelism(4),
		adcc.WithInjectionsPerCell(10),
		adcc.WithWorkloads(adcc.WorkloadMC),
		adcc.WithSchemes(
			adcc.SchemeAlgoNVM,   // paper's selective flushing
			adcc.SchemeAlgoNaive, // rejected index-only flushing
			adcc.SchemeCkptNVM,   // conventional checkpointing
		),
		adcc.WithEventSink(adcc.SinkFunc(func(e adcc.Event) {
			if inj, ok := e.(adcc.InjectionDone); ok && inj.Outcome == "corrupt" {
				corrupt++
				fmt.Printf("  [event] %s\n", inj)
			}
		})),
	)
	rep, err := runner.RunCampaign(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%d injections streamed, %d silently corrupted (all under algo-naive):\n\n",
		rep.Injections, corrupt)
	adcc.CampaignTable(rep).Fprint(os.Stdout)
}
