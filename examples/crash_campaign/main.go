// Command crash_campaign is a runnable walkthrough of the statistical
// fault-injection engine (internal/campaign): it enumerates the
// crash-point space of one Monte-Carlo run, sweeps a small seeded
// campaign of injections across three representative schemes on both
// simulated platforms, and prints what each scheme survived — the
// selective-flush algorithm-directed scheme recovers every point, the
// rejected index-only variant silently corrupts (the paper's Figure 10
// bias), and checkpointing recovers at a higher rework cost.
//
// Run it from the repo root:
//
//	go run ./examples/crash_campaign
//
// The full grid (all workloads x schemes x platforms, with a JSON
// report) is:
//
//	go run ./cmd/adccbench -experiment campaign -scale 0.1 -parallel 4 -json campaign.json
package main

import (
	"fmt"
	"os"

	"adcc/internal/campaign"
	"adcc/internal/core"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/harness"
	"adcc/internal/mc"
)

func main() {
	// 1. The crash-point space: profile one uninterrupted run.
	m := crash.NewMachine(crash.MachineConfig{})
	em := crash.NewEmulator(m)
	w := &core.MCWorkload{
		Cfg:    mc.TinyConfig(),
		Scheme: engine.MustLookup(engine.SchemeAlgoNVM),
	}
	if err := w.Prepare(m, em); err != nil {
		panic(err)
	}
	prof := em.Profile(func() { w.Run(w.Start()) })
	fmt.Printf("one MC run: %d memory operations, triggers: %v\n", prof.Ops, prof.Triggers)

	// 2. Deterministic seeded crash points: half random op counts, half
	// random occurrences of the instrumented program points.
	pts := prof.Points(6, 1)
	fmt.Printf("6 seeded crash points: %v\n\n", pts)

	// 3. A small campaign over three representative schemes. Every
	// injection runs on a fresh simulated machine; the report is
	// byte-identical at any Parallel setting.
	rep, err := campaign.Run(campaign.Config{
		Scale:     0.05,
		Parallel:  4,
		PerCell:   10,
		Workloads: []string{"mc"},
		Schemes: []string{
			engine.SchemeAlgoNVM,   // paper's selective flushing
			engine.SchemeAlgoNaive, // rejected index-only flushing
			engine.SchemeCkptNVM,   // conventional checkpointing
		},
	})
	if err != nil {
		panic(err)
	}
	harness.CampaignTable(rep).Fprint(os.Stdout)
}
