// Command abft_mm demonstrates crash consistence for ABFT matrix multiplication
// (paper §III-C): the two-loop extension stores submatrix products in
// checksummed temporal matrices whose checksums are flushed; after a
// crash, checksum verification over the NVM image classifies every block
// as complete, torn, or never-computed — and single stale elements are
// repaired outright instead of recomputed. Built on the public pkg/adcc
// API.
package main

import (
	"fmt"
	"math"

	"adcc/pkg/adcc"
)

func main() {
	const (
		n = 320
		k = 64
	)
	machine := adcc.NewMachine(adcc.MachineConfig{
		System: adcc.NVMOnly,
		Cache: adcc.CacheConfig{
			SizeBytes: 256 << 10, LineBytes: 64, Assoc: 16, HitNS: 4,
			FlushChargesClean: true, PrefetchStreams: 16,
		},
	})
	emulator := adcc.NewEmulator(machine)
	mm := adcc.NewMM(machine, emulator, adcc.MMOptions{N: n, K: k, Seed: 3})

	// Crash at the end of the 3rd submatrix multiplication.
	emulator.CrashAtTrigger(adcc.TriggerMMLoop1IterEnd, 3)
	emulator.Run(mm.Run)
	fmt.Printf("crashed during loop 1 (%d x %d, rank %d, %d panels)\n\n",
		n, n, k, mm.NumPanels())

	rec := mm.RecoverLoop1()
	fmt.Println("checksum verification of the temporal matrices in NVM:")
	for s, st := range rec.Status {
		fmt.Printf("  Ctemp[%d]: %s\n", s, st)
	}

	// Recompute only what the checksums condemned, then finish.
	mm.ResumeLoop1(rec)
	mm.Em = nil // no more crashes
	mm.RunLoop2(0)

	// Verify against a native reference product.
	an := adcc.RandomMatrix(n, n, 3)
	bn := adcc.RandomMatrix(n, n, 4)
	ref := adcc.NewMatrix(n, n)
	adcc.MatMul(ref, an, bn)
	got := mm.Result()
	worst := 0.0
	for i := range ref.Data {
		if d := math.Abs(got.Data[i] - ref.Data[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nmax |error| vs native product: %.2e\n", worst)
	fmt.Printf("simulated runtime: %.2f ms\n", float64(machine.Clock.Now())/1e6)
}
