// Command adccd_quickstart drives the campaign service end to end
// without a network: it hosts an in-process adccd server on an httptest
// listener, submits a small campaign through the adccclient library,
// tails the SSE event stream, fetches the finished adcc-report/v1
// envelope, and then submits the same spec again to show the
// content-addressed cache answering with zero engine work. The same
// calls work unchanged against a real daemon — point adccclient.New at
// its address instead.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"

	"adcc/pkg/adcc"
	"adcc/pkg/adcc/adccclient"
	"adcc/pkg/adcc/adccd"
)

func main() {
	srv, err := adccd.New(adccd.Config{Parallel: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := adccclient.New(ts.URL, nil)
	ctx := context.Background()

	// Submit a small campaign: the mc workload at 2% scale on the
	// snapshot/fork replay engine. The spec describes the deterministic
	// result; parallelism and engine choice never change report bytes.
	spec := adcc.CampaignSpec{Workloads: []string{"mc"}, Scale: 0.02, Replay: true}
	info, err := client.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted job %s: %s, %d shards\n", info.ID, info.Status, info.ShardsTotal)

	// Tail the event stream until the terminal done frame. Frame
	// sequence and contents are deterministic for a given spec.
	var frames, shards int
	err = client.Events(ctx, info.ID, -1, func(e adcc.StreamEvent) error {
		frames++
		if e.Type == "shard_done" {
			shards++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event stream: %d frames, %d shard_done\n", frames, shards)

	// The finished report is byte-identical to RunCampaign on the same
	// spec; show one cell of it.
	raw, err := client.Report(ctx, info.ID)
	if err != nil {
		log.Fatal(err)
	}
	var env struct {
		Campaign adcc.CampaignReport `json:"campaign"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		log.Fatal(err)
	}
	cell := env.Campaign.Cells[0]
	fmt.Printf("report: %d injections, first cell %s recovery %.2f\n",
		env.Campaign.Injections, cell.Key(), cell.RecoveryRate)

	// Resubmit the same result — different engine spelling, same cache
	// key — and get the cached report without recomputation.
	again, err := client.Submit(ctx, adcc.CampaignSpec{Workloads: []string{"mc"}, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("resubmitted: job %s answered with status %s (campaigns run: %d)\n",
		again.ID, again.Status, st.CampaignsRun)
}
