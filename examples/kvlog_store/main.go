// Command kvlog_store walks through the persistent KV/log extension
// family: a hash-indexed store with an append log, serving a seeded
// Zipfian request stream (puts, gets, deletes, range scans). It
// compares the request-latency cost of the mechanisms (per-batch
// checkpoints, PMEM-style per-request transactions, the
// algorithm-directed log-tail flush), then crashes the store mid-stream
// and shows log-replay recovery rebuilding the index to a verified
// state while the rejected index-only design silently corrupts.
package main

import (
	"fmt"

	"adcc/pkg/adcc"
)

func main() {
	opts := adcc.KVLogOptions{Requests: 2000, KeySpace: 256, ScanLen: 8, CkptEvery: 16, Seed: 33}
	reg := adcc.NewRegistry()

	type result struct {
		name  string
		ns    int64
		reqNS []int64
	}
	var results []result
	run := func(name string, f func(m *adcc.Machine) (func(), []int64)) {
		m := adcc.NewMachine(adcc.MachineConfig{System: adcc.NVMOnly})
		work, reqNS := f(m)
		start := m.Clock.Now()
		work()
		results = append(results, result{name, m.Clock.Since(start), reqNS})
	}

	run("native (not restartable)", func(m *adcc.Machine) (func(), []int64) {
		s := adcc.NewBaselineKVLogStore(m, opts, nil)
		return s.Run, s.ReqNS
	})
	run("checkpoint per batch", func(m *adcc.Machine) (func(), []int64) {
		s := adcc.NewBaselineKVLogStore(m, opts, reg.MustScheme(adcc.SchemeCkptNVM))
		return s.Run, s.ReqNS
	})
	run("PMEM undo-log transactions", func(m *adcc.Machine) (func(), []int64) {
		s := adcc.NewBaselineKVLogStore(m, opts, reg.MustScheme(adcc.SchemePMEM))
		return s.Run, s.ReqNS
	})
	run("algorithm-directed (log tail)", func(m *adcc.Machine) (func(), []int64) {
		s := adcc.NewKVLogStore(m, nil, opts)
		return func() { s.Run(1) }, s.ReqNS
	})

	base := results[0].ns
	fmt.Printf("KV store, %d Zipfian requests over %d keys:\n\n", opts.Requests, opts.KeySpace)
	fmt.Printf("  %-30s %9s %11s %9s %9s\n", "case", "kOps/s", "normalized", "p50(ns)", "p99(ns)")
	for _, r := range results {
		lat := r.reqNS[1:]
		fmt.Printf("  %-30s %9.1f %10.3fx %9d %9d\n",
			r.name, adcc.KVLogThroughput(lat)/1e3, float64(r.ns)/float64(base),
			adcc.KVLogPercentile(lat, 50), adcc.KVLogPercentile(lat, 99))
	}

	// Crash the algorithm-directed store mid-stream and recover — once
	// under the full record-before-mark protocol, once under the
	// rejected index-only design that flushes just the high-water mark
	// (the KV analogue of the paper's Figure 10 bias).
	want := adcc.KVLogWant(opts)
	crashAndRecover := func(policy adcc.FlushPolicy) (adcc.KVLogRecovery, int, string) {
		m := adcc.NewMachine(adcc.MachineConfig{System: adcc.NVMOnly})
		em := adcc.NewEmulator(m)
		s := adcc.NewKVLogStore(m, em, opts)
		s.Policy = policy
		em.CrashAtTrigger(adcc.TriggerKVLogReqEnd, opts.Requests/2)
		if !em.Run(func() { s.Run(1) }) {
			panic("kvlog_store: crash point not reached")
		}
		rec, from, err := s.Recover()
		if err != nil {
			return rec, from, "DETECTED CORRUPTION"
		}
		s.Run(from)
		if err := s.Verify(want); err != nil {
			return rec, from, "SILENTLY CORRUPT"
		}
		return rec, from, "verified"
	}

	rec, from, status := crashAndRecover(adcc.FlushSelective)
	fmt.Printf("\nCrash after request %d, log-replay recovery: high-water mark %d log\n"+
		"words, %d records replayed into a cleared index, resumed at request %d,\n"+
		"result %s.\n", opts.Requests/2, rec.LogWords, rec.Replayed, from, status)
	recN, fromN, statusN := crashAndRecover(adcc.FlushIndexOnly)
	fmt.Printf("Same crash, rejected index-only design: replayed %d records, skipped %d\n"+
		"unflushed ones, resumed at request %d, result %s.\n",
		recN.Replayed, recN.Skipped, fromN, statusN)

	fmt.Println("\nThe extension flushes only the appended log records and one meta" +
		"\nline per request (record before mark); the hash index needs no" +
		"\nflushes at all, because replaying the logged prefix into a cleared" +
		"\nindex is idempotent — the same algorithm-directed recipe as CG's" +
		"\nconjugacy walk, applied to served traffic.")
}
