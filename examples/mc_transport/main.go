// Command mc_transport demonstrates the Monte-Carlo study (paper §III-D): MC is
// statistically error tolerant, so it seems crash consistence should be
// free — but the interaction-type counters and macro_xs accumulator stay
// hot in the volatile cache, and a naive restart (flush only the loop
// index) silently biases the physics result. Selectively flushing a few
// cache lines every 0.01% of lookups fixes it at negligible cost. Built
// on the public pkg/adcc API.
package main

import (
	"fmt"

	"adcc/pkg/adcc"
)

func run(sc adcc.Scheme, cfg adcc.MCConfig, withCrash bool) [adcc.MCNumTypes]int64 {
	m := adcc.NewMachine(adcc.MachineConfig{
		System: adcc.NVMOnly,
		Cache: adcc.CacheConfig{
			SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, HitNS: 4,
			FlushChargesClean: true, PrefetchStreams: 8,
		},
	})
	em := adcc.NewEmulator(m)
	s := adcc.NewMCSim(m, cfg)
	r := adcc.NewMCRunner(m, em, s, sc)
	if withCrash {
		em.CrashAtTrigger(adcc.TriggerMCLookup, cfg.Lookups/10)
		em.Run(func() { r.Run(0) })
		from := r.RestartIter()
		r.Em = nil
		r.Run(from)
	} else {
		r.Run(0)
	}
	return s.Counts()
}

func show(label string, c [adcc.MCNumTypes]int64, lookups int) {
	p := adcc.MCPercentages(c, lookups)
	fmt.Printf("  %-34s", label)
	for _, v := range p {
		fmt.Printf(" %6.2f%%", v)
	}
	fmt.Println()
}

func main() {
	reg := adcc.NewRegistry()
	cfg := adcc.MCConfig{Nuclides: 16, PointsPerNuclide: 256, Lookups: 40_000, Seed: 11}
	fmt.Printf("cross-section lookups: %d; crash injected at 10%%\n", cfg.Lookups)
	fmt.Println("share of each interaction type (types 1-5):")

	noCrash := run(reg.MustScheme(adcc.SchemeAlgoNaive), cfg, false)
	show("no crash", noCrash, cfg.Lookups)

	naive := run(reg.MustScheme(adcc.SchemeAlgoNaive), cfg, true)
	show("crash + naive restart", naive, cfg.Lookups)

	selective := run(reg.MustScheme(adcc.SchemeAlgoNVM), cfg, true)
	show("crash + selective-flush restart", selective, cfg.Lookups)

	lost := func(c [adcc.MCNumTypes]int64) int64 {
		var t int64
		for _, v := range c {
			t += v
		}
		return int64(cfg.Lookups) - t
	}
	fmt.Printf("\nsamples lost by naive restart:     %d\n", lost(naive))
	fmt.Printf("samples lost by selective restart: %d (bounded by the flush period)\n", lost(selective))
}
