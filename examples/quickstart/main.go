// Command quickstart solves a sparse SPD system with the crash-consistent CG
// solver, inject a crash two thirds of the way through, and let the
// algorithm-directed recovery find the restart point from the NVM image
// — no checkpoint, no log, one flushed cache line per iteration. Built
// on the public pkg/adcc API.
package main

import (
	"fmt"

	"adcc/pkg/adcc"
)

func main() {
	// A simulated NVM machine: NVM main memory with volatile CPU
	// caches, exactly the platform the paper targets.
	machine := adcc.NewMachine(adcc.MachineConfig{System: adcc.NVMOnly})
	emulator := adcc.NewEmulator(machine)

	// A random sparse symmetric positive-definite system A x = b with
	// known solution x = ones.
	const n = 20000
	a := adcc.GenSPD(n, 11, 42)
	solver := adcc.NewCG(machine, emulator, a, adcc.CGOptions{MaxIter: 15})

	// Crash at the end of iteration 10.
	emulator.CrashAtTrigger(adcc.TriggerCGIterEnd, 10)
	crashed := emulator.Run(func() { solver.Run(1) })
	fmt.Printf("crashed mid-solve: %v (at %d memory operations)\n", crashed, emulator.CrashOps())

	// Recovery: walk back from the flushed iteration counter, testing
	// the CG invariants (p'q = 0 and r = b - Az) against the NVM image.
	rec := solver.Recover()
	fmt.Printf("crash at iteration %d; restarting from iteration %d (%d iteration(s) lost)\n",
		rec.CrashIter, rec.RestartIter, rec.IterationsLost)

	// Resume and finish the solve.
	solver.Run(rec.RestartIter)
	fmt.Printf("final relative residual: %.2e\n", solver.Residual())
	fmt.Printf("simulated runtime: %.2f ms\n", float64(machine.Clock.Now())/1e6)
}
