// Package abft implements algorithm-based fault tolerance for dense
// matrix multiplication (paper §III-C, after Huang & Abraham and the
// online-ABFT line of work the paper builds on): checksum encoding of
// the input matrices, verification of the checksum relationships in
// result matrices, and single-error correction.
//
// All functions operate on flat row-major slices with explicit
// dimensions so they apply equally to live data and to the persistent
// NVM images examined by crash recovery.
package abft

import "math"

// EncodeColumnChecksum builds Ac from an m x k matrix a: an (m+1) x k
// matrix whose last row holds column sums (paper Equation 3, with the
// checksum vector v = all ones).
func EncodeColumnChecksum(a []float64, m, k int) []float64 {
	ac := make([]float64, (m+1)*k)
	copy(ac, a[:m*k])
	sums := ac[m*k:]
	for i := 0; i < m; i++ {
		row := a[i*k : (i+1)*k]
		for j, v := range row {
			sums[j] += v
		}
	}
	return ac
}

// EncodeRowChecksum builds Br from a k x n matrix b: a k x (n+1) matrix
// whose last column holds row sums (paper Equation 4, with w = ones).
func EncodeRowChecksum(b []float64, k, n int) []float64 {
	br := make([]float64, k*(n+1))
	for i := 0; i < k; i++ {
		row := b[i*n : (i+1)*n]
		copy(br[i*(n+1):], row)
		s := 0.0
		for _, v := range row {
			s += v
		}
		br[i*(n+1)+n] = s
	}
	return br
}

// Report is the outcome of verifying the checksum relationships of a
// full-checksum matrix (data plus checksum row and/or column).
type Report struct {
	// BadRows and BadCols list the indices whose checksum relation
	// fails (data rows/cols only; indices are into the full matrix).
	BadRows, BadCols []int
	// RowDelta[i] = stored row checksum - computed row sum, for bad
	// rows (parallel to BadRows); likewise ColDelta for BadCols.
	RowDelta, ColDelta []float64
	// AllZero reports whether every element (including checksums) is
	// exactly zero — the signature of a block that was never computed.
	AllZero bool
}

// Consistent reports whether every checksum relation held.
func (r Report) Consistent() bool { return len(r.BadRows) == 0 && len(r.BadCols) == 0 }

// scale returns the magnitude reference for tolerance comparison.
func scale(sum, checksum float64) float64 {
	return math.Max(1, math.Max(math.Abs(sum), math.Abs(checksum)))
}

// VerifyFull checks a full-checksum matrix c of rows x cols (data is
// (rows-1) x (cols-1); last row and column are checksums, Equation 6).
// tol is the relative tolerance of the floating-point comparison.
func VerifyFull(c []float64, rows, cols int, tol float64) Report {
	var rep Report
	rep.AllZero = true
	for _, v := range c[:rows*cols] {
		if v != 0 {
			rep.AllZero = false
			break
		}
	}
	// Row relations: c[i, cols-1] == sum_{j<cols-1} c[i,j], for every
	// row including the checksum row (where it holds transitively).
	for i := 0; i < rows; i++ {
		row := c[i*cols : (i+1)*cols]
		s := 0.0
		for _, v := range row[:cols-1] {
			s += v
		}
		if math.Abs(s-row[cols-1]) > tol*scale(s, row[cols-1]) {
			rep.BadRows = append(rep.BadRows, i)
			rep.RowDelta = append(rep.RowDelta, row[cols-1]-s)
		}
	}
	// Column relations: c[rows-1, j] == sum_{i<rows-1} c[i,j].
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows-1; i++ {
			s += c[i*cols+j]
		}
		chk := c[(rows-1)*cols+j]
		if math.Abs(s-chk) > tol*scale(s, chk) {
			rep.BadCols = append(rep.BadCols, j)
			rep.ColDelta = append(rep.ColDelta, chk-s)
		}
	}
	return rep
}

// VerifyRows checks only the row-checksum relations of a matrix whose
// last column holds row checksums (the Ctemp matrix of the paper's
// second loop, where only row checksums are maintained and flushed).
// It returns the indices of rows whose relation fails.
func VerifyRows(c []float64, rows, cols int, tol float64) []int {
	var bad []int
	for i := 0; i < rows; i++ {
		row := c[i*cols : (i+1)*cols]
		s := 0.0
		for _, v := range row[:cols-1] {
			s += v
		}
		if math.Abs(s-row[cols-1]) > tol*scale(s, row[cols-1]) {
			bad = append(bad, i)
		}
	}
	return bad
}

// CorrectSingle attempts single-error correction on a full-checksum
// matrix: every bad row whose delta matches exactly one bad column's
// delta (and vice versa) has the intersecting element corrected, per the
// checksum relationship of Equation 6. It returns the number of
// corrected elements and whether the matrix verifies cleanly afterwards.
//
// Inconsistent blocks after a crash typically have too many stale
// elements per row/column to be correctable (as the paper observes), in
// which case ok is false and the caller must recompute the block.
func CorrectSingle(c []float64, rows, cols int, tol float64) (corrected int, ok bool) {
	rep := VerifyFull(c, rows, cols, tol)
	if rep.Consistent() {
		return 0, true
	}
	for bi, r := range rep.BadRows {
		matches := 0
		matchCol := -1
		var delta float64
		for bj, cj := range rep.BadCols {
			if math.Abs(rep.RowDelta[bi]-rep.ColDelta[bj]) <= tol*scale(rep.RowDelta[bi], rep.ColDelta[bj]) {
				matches++
				matchCol = cj
				delta = rep.RowDelta[bi]
			}
		}
		if matches == 1 && r < rows-1 && matchCol < cols-1 {
			c[r*cols+matchCol] += delta
			corrected++
		}
	}
	if corrected == 0 {
		return 0, false
	}
	return corrected, VerifyFull(c, rows, cols, tol).Consistent()
}

// ChecksumIndices returns the flat indices of the checksum row and
// checksum column of a rows x cols full-checksum matrix. These are the
// elements the paper's extended algorithm flushes after each submatrix
// multiplication (Figure 6 line 5).
func ChecksumIndices(rows, cols int) (lastRow []int, lastCol []int) {
	lastRow = make([]int, cols)
	for j := 0; j < cols; j++ {
		lastRow[j] = (rows-1)*cols + j
	}
	lastCol = make([]int, rows)
	for i := 0; i < rows; i++ {
		lastCol[i] = i*cols + (cols - 1)
	}
	return lastRow, lastCol
}
