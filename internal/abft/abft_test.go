package abft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

// buildFullChecksum builds the (m+1) x (n+1) full-checksum product of
// random m x k and k x n matrices, the Cf of paper Equation 5.
func buildFullChecksum(m, k, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	ac := EncodeColumnChecksum(a, m, k) // (m+1) x k
	br := EncodeRowChecksum(b, k, n)    // k x (n+1)
	cf := make([]float64, (m+1)*(n+1))
	for i := 0; i < m+1; i++ {
		for l := 0; l < k; l++ {
			av := ac[i*k+l]
			for j := 0; j < n+1; j++ {
				cf[i*(n+1)+j] += av * br[l*(n+1)+j]
			}
		}
	}
	return cf
}

func TestEncodeColumnChecksum(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2x3
	ac := EncodeColumnChecksum(a, 2, 3)
	if len(ac) != 9 {
		t.Fatalf("len = %d", len(ac))
	}
	want := []float64{5, 7, 9}
	for j, w := range want {
		if ac[6+j] != w {
			t.Fatalf("column sums = %v, want %v", ac[6:], want)
		}
	}
}

func TestEncodeRowChecksum(t *testing.T) {
	b := []float64{1, 2, 3, 4, 5, 6} // 2x3
	br := EncodeRowChecksum(b, 2, 3)
	if len(br) != 8 {
		t.Fatalf("len = %d", len(br))
	}
	if br[3] != 6 || br[7] != 15 {
		t.Fatalf("row sums = %v, %v; want 6, 15", br[3], br[7])
	}
	// Data preserved in shifted layout.
	if br[4] != 4 || br[6] != 6 {
		t.Fatal("data misplaced in Br")
	}
}

func TestProductHasFullChecksumProperty(t *testing.T) {
	cf := buildFullChecksum(6, 4, 5, 1)
	rep := VerifyFull(cf, 7, 6, tol)
	if !rep.Consistent() {
		t.Fatalf("clean product flagged: %+v", rep)
	}
	if rep.AllZero {
		t.Fatal("nonzero product flagged as all-zero")
	}
}

func TestVerifyDetectsSingleCorruption(t *testing.T) {
	cf := buildFullChecksum(6, 4, 5, 2)
	cf[2*6+3] += 0.5
	rep := VerifyFull(cf, 7, 6, tol)
	if len(rep.BadRows) != 1 || rep.BadRows[0] != 2 {
		t.Fatalf("bad rows = %v, want [2]", rep.BadRows)
	}
	if len(rep.BadCols) != 1 || rep.BadCols[0] != 3 {
		t.Fatalf("bad cols = %v, want [3]", rep.BadCols)
	}
	if math.Abs(rep.RowDelta[0]-(-0.5)) > 1e-9 {
		t.Fatalf("row delta = %v, want -0.5", rep.RowDelta[0])
	}
}

func TestVerifyAllZero(t *testing.T) {
	c := make([]float64, 7*6)
	rep := VerifyFull(c, 7, 6, tol)
	if !rep.AllZero {
		t.Fatal("zero matrix not flagged AllZero")
	}
	if !rep.Consistent() {
		t.Fatal("zero matrix should be checksum-consistent (trivially)")
	}
}

func TestCorrectSingleError(t *testing.T) {
	cf := buildFullChecksum(6, 4, 5, 3)
	orig := cf[4*6+1]
	cf[4*6+1] = -7 // stale value
	corrected, ok := CorrectSingle(cf, 7, 6, tol)
	if corrected != 1 || !ok {
		t.Fatalf("corrected=%d ok=%v", corrected, ok)
	}
	if math.Abs(cf[4*6+1]-orig) > 1e-8 {
		t.Fatalf("restored %v, want %v", cf[4*6+1], orig)
	}
}

func TestCorrectTwoIndependentErrors(t *testing.T) {
	cf := buildFullChecksum(8, 4, 8, 4)
	o1, o2 := cf[1*9+2], cf[5*9+7]
	cf[1*9+2] += 3.0
	cf[5*9+7] -= 2.0
	corrected, ok := CorrectSingle(cf, 9, 9, tol)
	if !ok || corrected != 2 {
		t.Fatalf("corrected=%d ok=%v", corrected, ok)
	}
	if math.Abs(cf[1*9+2]-o1) > 1e-8 || math.Abs(cf[5*9+7]-o2) > 1e-8 {
		t.Fatal("two-error correction wrong values")
	}
}

func TestUncorrectableMassCorruption(t *testing.T) {
	cf := buildFullChecksum(6, 4, 5, 5)
	// Whole row stale: several bad columns share the row, deltas don't
	// pair up one-to-one.
	for j := 0; j < 5; j++ {
		cf[3*6+j] = 0
	}
	_, ok := CorrectSingle(cf, 7, 6, tol)
	if ok {
		t.Fatal("mass corruption reported correctable")
	}
}

func TestVerifyRows(t *testing.T) {
	// Row-checksum-only matrix: 4 rows x (3 data + 1 checksum).
	c := []float64{
		1, 2, 3, 6,
		4, 5, 6, 15,
		7, 8, 9, 24,
		1, 1, 1, 3,
	}
	if bad := VerifyRows(c, 4, 4, tol); len(bad) != 0 {
		t.Fatalf("clean rows flagged: %v", bad)
	}
	c[1*4+2] = 0 // corrupt row 1
	bad := VerifyRows(c, 4, 4, tol)
	if len(bad) != 1 || bad[0] != 1 {
		t.Fatalf("bad = %v, want [1]", bad)
	}
}

func TestChecksumIndices(t *testing.T) {
	lastRow, lastCol := ChecksumIndices(3, 4)
	if len(lastRow) != 4 || len(lastCol) != 3 {
		t.Fatalf("lengths %d %d", len(lastRow), len(lastCol))
	}
	if lastRow[0] != 8 || lastRow[3] != 11 {
		t.Fatalf("lastRow = %v", lastRow)
	}
	if lastCol[0] != 3 || lastCol[2] != 11 {
		t.Fatalf("lastCol = %v", lastCol)
	}
}

// Property: any single data-element corruption of magnitude > tolerance
// is detected and corrected exactly.
func TestSingleErrorCorrectionProperty(t *testing.T) {
	f := func(seed int64, riU, cjU uint8, magU uint8) bool {
		const m, k, n = 7, 3, 6
		cf := buildFullChecksum(m, k, n, seed)
		ri := int(riU) % m
		cj := int(cjU) % n
		mag := 0.1 + float64(magU)/16.0
		orig := cf[ri*(n+1)+cj]
		cf[ri*(n+1)+cj] += mag
		corrected, ok := CorrectSingle(cf, m+1, n+1, tol)
		return ok && corrected == 1 && math.Abs(cf[ri*(n+1)+cj]-orig) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: verification of an uncorrupted random product is always
// consistent (no false positives at the chosen tolerance).
func TestNoFalsePositivesProperty(t *testing.T) {
	f := func(seed int64) bool {
		cf := buildFullChecksum(10, 6, 9, seed)
		return VerifyFull(cf, 11, 10, tol).Consistent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
