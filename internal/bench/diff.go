package bench

import (
	"fmt"
	"io"
	"math"
)

// DiffOptions tunes the regression comparison. Thresholds are used
// exactly as given: zero demands exact equality (any growth flags).
// cmd/benchdiff supplies its own defaults (0.25 wall, 0.02 sim).
type DiffOptions struct {
	// WallThreshold is the allowed fractional growth of host
	// wall-clock metrics (ns/op, allocs/op, B/op) before a delta
	// counts as a regression. Wall numbers vary across machines, so
	// this should be generous.
	WallThreshold float64
	// SimThreshold is the allowed fractional growth of simulated
	// metrics (sim_ns, sim_flushes, recovery_sim_ns). These are
	// deterministic, so drift means the simulated behaviour changed.
	SimThreshold float64
}

// Delta is one metric comparison between two suites.
type Delta struct {
	Name   string  // benchmark name
	Metric string  // metric label, e.g. "ns/op" or "sim_ns"
	Old    float64 // baseline value
	New    float64 // candidate value
	// Sim marks deterministic simulated metrics (gated tightly and
	// still enforced when wall metrics are advisory).
	Sim bool
	// Ratio is New/Old (+Inf when the metric appeared from zero).
	Ratio float64
	// Regression is set when the growth exceeds the metric's threshold.
	Regression bool
	// Improved is set when the metric shrank beyond the same threshold.
	Improved bool
}

// Report is the outcome of comparing a candidate suite to a baseline.
type Report struct {
	Deltas []Delta
	// Missing lists benchmarks present in the baseline but absent from
	// the candidate — treated as regressions (a benchmark that
	// disappears is a lost perf guarantee).
	Missing []string
	// Added lists benchmarks only present in the candidate.
	Added []string
}

// metric describes one comparable Result field. measured distinguishes
// a true zero (comparable: allocs/op of an allocation-free kernel,
// sim_flushes of a flush-free probe) from "this result never measured
// that metric" (harness cases carry no wall numbers, wall-only kernels
// no sim probe).
type metric struct {
	label    string
	get      func(Result) float64
	measured func(Result) bool
	sim      bool // deterministic simulated metric: tight threshold
}

// wallMeasured: the wall-clock runner executed (testing.Benchmark
// always reports at least one iteration).
func wallMeasured(r Result) bool { return r.Iterations > 0 }

// simMeasured: the deterministic probe ran (every probe advances the
// simulated clock, so SimNS is positive whenever sim metrics exist).
func simMeasured(r Result) bool { return r.SimNS > 0 }

var metrics = []metric{
	{"ns/op", func(r Result) float64 { return r.NsPerOp }, wallMeasured, false},
	{"allocs/op", func(r Result) float64 { return r.AllocsPerOp }, wallMeasured, false},
	{"B/op", func(r Result) float64 { return r.BytesPerOp }, wallMeasured, false},
	{"sim_ns", func(r Result) float64 { return float64(r.SimNS) }, simMeasured, true},
	{"sim_flushes", func(r Result) float64 { return float64(r.SimFlushes) }, simMeasured, true},
	{"recovery_sim_ns", func(r Result) float64 { return float64(r.RecoveryNS) },
		func(r Result) bool { return r.RecoveryNS > 0 }, true},
	// Campaign failure counts are deterministic, and a measured zero is
	// the expected healthy value for the algorithm-directed schemes, so
	// any failure appearing from zero flags as a regression.
	{"failures", func(r Result) float64 { return float64(r.Failures) },
		func(r Result) bool { return r.Injections > 0 }, true},
	// Campaign per-injection wall cost is a host measurement like ns/op:
	// generous threshold, advisory on PRs.
	{"wall_ns_per_injection", func(r Result) float64 { return r.WallNSPerInjection },
		func(r Result) bool { return r.WallNSPerInjection > 0 }, false},
}

// Diff compares candidate against base metric by metric. A metric is
// compared when both suites measured it; a measured zero is a real
// value, so 0 -> N flags as a regression and N -> 0 as an improvement.
func Diff(base, candidate Suite, o DiffOptions) Report {
	var rep Report
	newByName := candidate.byName()
	for _, b := range base.Results {
		n, ok := newByName[b.Name]
		if !ok {
			rep.Missing = append(rep.Missing, b.Name)
			continue
		}
		for _, m := range metrics {
			if m.measured(b) && !m.measured(n) {
				// A metric family the baseline guaranteed is no longer
				// measured: a lost perf guarantee, same as a missing
				// benchmark.
				rep.Missing = append(rep.Missing, b.Name+" ["+m.label+"]")
				continue
			}
			if !m.measured(b) || !m.measured(n) {
				continue
			}
			ov, nv := m.get(b), m.get(n)
			if ov == 0 && nv == 0 {
				continue
			}
			thr := o.WallThreshold
			if m.sim {
				thr = o.SimThreshold
			}
			d := Delta{Name: b.Name, Metric: m.label, Old: ov, New: nv, Sim: m.sim}
			switch {
			case ov == 0: // metric appeared from a measured zero
				d.Ratio = math.Inf(1)
				d.Regression = true
			default:
				d.Ratio = nv / ov
				d.Regression = d.Ratio > 1+thr
				d.Improved = d.Ratio < 1-thr
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	baseNames := base.byName()
	for _, n := range candidate.Results {
		if _, ok := baseNames[n.Name]; !ok {
			rep.Added = append(rep.Added, n.Name)
		}
	}
	return rep
}

// HasRegression reports whether any metric regressed or any baseline
// benchmark went missing.
func (r Report) HasRegression() bool {
	if len(r.Missing) > 0 {
		return true
	}
	for _, d := range r.Deltas {
		if d.Regression {
			return true
		}
	}
	return false
}

// HasBlockingRegression is HasRegression with wall-clock metrics
// optionally advisory: with wallAdvisory set, only simulated-metric
// regressions and missing benchmarks block. Used by CI on main, where
// the runner hardware differs from the machine that recorded the
// baseline and wall numbers are not comparable across hosts.
func (r Report) HasBlockingRegression(wallAdvisory bool) bool {
	if len(r.Missing) > 0 {
		return true
	}
	for _, d := range r.Deltas {
		if d.Regression && (d.Sim || !wallAdvisory) {
			return true
		}
	}
	return false
}

// Format writes a human-readable summary. With verbose set every
// comparison is printed; otherwise only regressions, improvements, and
// the roll-up counts.
func (r Report) Format(w io.Writer, verbose bool) {
	regressions, improvements, ok := 0, 0, 0
	for _, d := range r.Deltas {
		switch {
		case d.Regression:
			regressions++
		case d.Improved:
			improvements++
		default:
			ok++
		}
	}
	for _, d := range r.Deltas {
		tag := ""
		switch {
		case d.Regression:
			tag = "REGRESSION "
		case d.Improved:
			tag = "improved   "
		case verbose:
			tag = "ok         "
		default:
			continue
		}
		change := fmt.Sprintf("%+.1f%%", 100*(d.Ratio-1))
		if math.IsInf(d.Ratio, 1) {
			change = "appeared from 0"
		}
		fmt.Fprintf(w, "%s %-34s %-15s %12.1f -> %12.1f  (%s)\n",
			tag, d.Name, d.Metric, d.Old, d.New, change)
	}
	for _, name := range r.Missing {
		fmt.Fprintf(w, "MISSING     %s (in baseline, absent from candidate)\n", name)
	}
	for _, name := range r.Added {
		fmt.Fprintf(w, "added       %s (not in baseline)\n", name)
	}
	names := map[string]bool{}
	for _, d := range r.Deltas {
		names[d.Name] = true
	}
	fmt.Fprintf(w, "benchdiff: compared %d metrics across %d benchmarks: %d regressed, %d improved, %d unchanged, %d missing, %d added\n",
		len(r.Deltas), len(names), regressions, improvements, ok, len(r.Missing), len(r.Added))
}
