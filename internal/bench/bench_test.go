package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func sampleSuite() Suite {
	return NewSuite(0.05, []Result{
		{Name: "fig4/native", SimNS: 12155604},
		{Name: "cache/flush", Iterations: 1000, NsPerOp: 48.5, AllocsPerOp: 0,
			SimNS: 371200, SimFlushes: 4096},
		{Name: "fig3/class-S", SimNS: 349947, RecoveryNS: 72300},
		{Name: "sparse/spmv", Iterations: 144, NsPerOp: 8414754.0625, SimNS: 1585656},
	})
}

// TestSuiteGolden pins the canonical JSON encoding byte for byte: the
// schema surface cmd/benchdiff and CI artifacts depend on.
func TestSuiteGolden(t *testing.T) {
	got, err := sampleSuite().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "suite_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate by writing the EncodeJSON output to %s)", err, golden)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("encoding drifted from golden file\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSuiteRoundTrip checks decode(encode(s)) == s and that a second
// encode is byte-stable.
func TestSuiteRoundTrip(t *testing.T) {
	s := sampleSuite()
	b1, err := s.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Suite
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := back.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("round trip not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
	if len(back.Results) != len(s.Results) {
		t.Fatalf("round trip lost results: %d != %d", len(back.Results), len(s.Results))
	}
	for i := range back.Results {
		if back.Results[i] != s.Results[i] {
			t.Errorf("result %d changed: %+v != %+v", i, back.Results[i], s.Results[i])
		}
	}
}

// TestReadFileRejectsSchema ensures mismatched schema tags are refused.
func TestReadFileRejectsSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9","results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("expected schema error, got nil")
	}
}

// TestNewSuiteSortsAndCopies verifies order independence of the
// canonical form.
func TestNewSuiteSortsAndCopies(t *testing.T) {
	in := []Result{{Name: "b"}, {Name: "a"}, {Name: "c"}}
	s := NewSuite(1, in)
	if s.Results[0].Name != "a" || s.Results[2].Name != "c" {
		t.Errorf("not sorted: %+v", s.Results)
	}
	in[0].Name = "zzz" // mutating the input must not affect the suite
	if s.Results[1].Name != "b" {
		t.Errorf("suite shares backing array with input")
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Record(Result{Name: "x"}) // must not panic
	if c.Len() != 0 || c.Results() != nil {
		t.Errorf("nil collector not empty")
	}
}

// TestCollectorDeterministicUnderParallel records the same results from
// 4 goroutines in scrambled orders and asserts the snapshot equals the
// serial one — the property that keeps `adccbench -bench -parallel N`
// output byte-identical to a serial run.
func TestCollectorDeterministicUnderParallel(t *testing.T) {
	results := make([]Result, 64)
	for i := range results {
		results[i] = Result{Name: fmt.Sprintf("case-%02d", i), SimNS: int64(1000 + i)}
	}

	serial := NewCollector()
	for _, r := range results {
		serial.Record(r)
	}

	parallel := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker records a strided, rotated subset so arrival
			// order differs from the serial loop.
			for i := 0; i < len(results); i++ {
				idx := (i*7 + w*13) % len(results)
				if idx%4 == w {
					parallel.Record(results[idx])
				}
			}
		}(w)
	}
	wg.Wait()

	a, err := NewSuite(0.05, serial.Results()).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(0.05, parallel.Results()).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("parallel collection not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func diffOf(base, cand Suite) Report {
	return Diff(base, cand, DiffOptions{WallThreshold: 0.25, SimThreshold: 0.02})
}

func TestDiffNoRegression(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 100, SimNS: 1000}})
	cand := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 110, SimNS: 1000}})
	rep := diffOf(base, cand)
	if rep.HasRegression() {
		t.Errorf("10%% wall growth under a 25%% threshold flagged: %+v", rep)
	}
}

func TestDiffWallRegression(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 100}})
	cand := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 130}})
	rep := diffOf(base, cand)
	if !rep.HasRegression() {
		t.Error("30% wall growth under a 25% threshold not flagged")
	}
	if rep.HasBlockingRegression(true) {
		t.Error("wall-advisory mode still blocked on a wall-only regression")
	}
	if !rep.HasBlockingRegression(false) {
		t.Error("strict mode did not block on a wall regression")
	}
}

// TestDiffMeasuredZeroAllocs: a kernel whose allocs/op goes from a
// measured 0 to N is a regression (zero is a real value when the
// wall-clock runner executed), and N to 0 is an improvement.
func TestDiffMeasuredZeroAllocs(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 100, AllocsPerOp: 0}})
	cand := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 100, AllocsPerOp: 500}})
	rep := diffOf(base, cand)
	if !rep.HasRegression() {
		t.Error("allocs/op 0 -> 500 not flagged as a regression")
	}
	back := diffOf(cand, base)
	if back.HasRegression() {
		t.Errorf("allocs/op 500 -> 0 flagged as a regression: %+v", back)
	}
}

// TestDiffSimRegressionBlocksEvenWallAdvisory: sim drift must block
// regardless of the wall-advisory setting.
func TestDiffSimRegressionBlocksEvenWallAdvisory(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "k", SimNS: 1000, SimFlushes: 0}})
	cand := NewSuite(1, []Result{{Name: "k", SimNS: 1000, SimFlushes: 64}})
	rep := diffOf(base, cand)
	if !rep.HasBlockingRegression(true) {
		t.Error("sim_flushes appearing from a measured 0 did not block in wall-advisory mode")
	}
}

// TestDiffLostMetricIsRegression: a metric family the baseline
// guaranteed (here the sim probe) disappearing from a surviving
// benchmark name is flagged like a missing benchmark, and blocks even
// in wall-advisory mode.
func TestDiffLostMetricIsRegression(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 100, SimNS: 1000}})
	cand := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 100}})
	rep := diffOf(base, cand)
	if !rep.HasRegression() || !rep.HasBlockingRegression(true) {
		t.Errorf("dropped sim probe not flagged: %+v", rep)
	}
	if len(rep.Missing) == 0 {
		t.Error("lost sim metrics not reported in Missing")
	}
}

// TestDiffZeroThresholdIsExact: an explicit zero threshold demands
// exact equality rather than silently falling back to a default.
func TestDiffZeroThresholdIsExact(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "k", SimNS: 1000}})
	cand := NewSuite(1, []Result{{Name: "k", SimNS: 1001}})
	rep := Diff(base, cand, DiffOptions{WallThreshold: 0.25, SimThreshold: 0})
	if !rep.HasRegression() {
		t.Error("0.1% sim drift under an explicit zero threshold not flagged")
	}
}

func TestDiffSimRegressionIsTight(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "k", SimNS: 1000}})
	cand := NewSuite(1, []Result{{Name: "k", SimNS: 1050}})
	rep := diffOf(base, cand)
	if !rep.HasRegression() {
		t.Error("5% simulated-time growth under a 2% threshold not flagged")
	}
}

func TestDiffImprovementIsNotRegression(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 100, SimNS: 1000}})
	cand := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 40, SimNS: 1000}})
	rep := diffOf(base, cand)
	if rep.HasRegression() {
		t.Errorf("improvement flagged as regression: %+v", rep)
	}
	improved := false
	for _, d := range rep.Deltas {
		if d.Metric == "ns/op" && d.Improved {
			improved = true
		}
	}
	if !improved {
		t.Error("2.5x improvement not marked Improved")
	}
}

func TestDiffMissingBenchmarkIsRegression(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "gone", Iterations: 1, NsPerOp: 100}, {Name: "kept", Iterations: 1, NsPerOp: 100}})
	cand := NewSuite(1, []Result{{Name: "kept", Iterations: 1, NsPerOp: 100}, {Name: "new", Iterations: 1, NsPerOp: 5}})
	rep := diffOf(base, cand)
	if !rep.HasRegression() {
		t.Error("missing benchmark not treated as a regression")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "gone" {
		t.Errorf("Missing = %v, want [gone]", rep.Missing)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "new" {
		t.Errorf("Added = %v, want [new]", rep.Added)
	}
}

// TestDiffSkipsUnmeasuredMetrics: a metric absent (zero) on either side
// is not compared, so sim-only harness results diff cleanly against
// each other.
func TestDiffSkipsUnmeasuredMetrics(t *testing.T) {
	base := NewSuite(1, []Result{{Name: "k", SimNS: 1000}})
	cand := NewSuite(1, []Result{{Name: "k", NsPerOp: 50, SimNS: 1000}})
	rep := diffOf(base, cand)
	for _, d := range rep.Deltas {
		if d.Metric == "ns/op" {
			t.Errorf("compared ns/op with no baseline measurement: %+v", d)
		}
	}
	if rep.HasRegression() {
		t.Errorf("unexpected regression: %+v", rep)
	}
}

// TestSuiteValidateDuplicates: a suite with colliding benchmark names
// must be rejected — in the diff's name index the last result would
// silently shadow its twin.
func TestSuiteValidateDuplicates(t *testing.T) {
	ok := NewSuite(1, []Result{{Name: "a"}, {Name: "b"}})
	if err := ok.Validate(); err != nil {
		t.Errorf("distinct names rejected: %v", err)
	}
	dup := NewSuite(1, []Result{{Name: "a"}, {Name: "b"}, {Name: "a"}})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate names accepted")
	} else if !strings.Contains(err.Error(), `"a"`) {
		t.Errorf("error %v does not name the duplicate", err)
	}
}

// TestFormatSummaryLine: the roll-up line reports how much was
// actually compared, not just the deltas' dispositions.
func TestFormatSummaryLine(t *testing.T) {
	base := NewSuite(1, []Result{
		{Name: "k", Iterations: 1, NsPerOp: 100, SimNS: 1000},
		{Name: "gone", Iterations: 1, NsPerOp: 5},
	})
	cand := NewSuite(1, []Result{{Name: "k", Iterations: 1, NsPerOp: 200, SimNS: 1000}})
	var buf strings.Builder
	diffOf(base, cand).Format(&buf, false)
	out := buf.String()
	if !strings.Contains(out, "compared 2 metrics across 1 benchmarks: 1 regressed, 0 improved, 1 unchanged, 1 missing, 0 added") {
		t.Errorf("summary line missing or wrong:\n%s", out)
	}
}
