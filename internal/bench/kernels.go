package bench

import (
	"testing"

	"adcc/internal/cache"
	"adcc/internal/ckpt"
	"adcc/internal/crash"
	"adcc/internal/mc"
	"adcc/internal/pmem"
	"adcc/internal/sparse"
)

// simProbeOps is the fixed operation count of the deterministic
// simulated-metric probes. Sim metrics are totals over this many
// operations of the kernel, so they stay exact integers.
const simProbeOps = 4096

// Kernel is one named micro-benchmark of a substrate hot path: a
// wall-clock body driven by testing.Benchmark, plus an optional
// deterministic probe that reports the simulated clock and flush
// activity of a fixed-size run.
type Kernel struct {
	Name  string
	Bench func(b *testing.B)
	// Sim runs the fixed-size deterministic probe and returns the
	// simulated duration and cache-line flush count. Nil for kernels
	// with no simulated component.
	Sim func() (simNS, flushes int64)
}

func kernelMachine() *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: crash.NVMOnly,
		Cache:  cache.DefaultConfig(),
	})
}

// mcKernelConfig sizes the MC lookup kernel: the full nuclide count
// with a reduced grid, matching the root bench_test micro-benchmark.
func mcKernelConfig() mc.Config {
	return mc.Config{Nuclides: 34, PointsPerNuclide: 1000, Lookups: 1 << 30, Seed: 42}
}

// Kernels returns the kernel micro-benchmark suite in stable name
// order. The names are part of the bench JSON schema surface: renaming
// one makes benchdiff report it missing against older baselines.
func Kernels() []Kernel {
	return []Kernel{
		{
			// Hit path of the LLC model: one simulated element load.
			Name: "cache/load",
			Bench: func(b *testing.B) {
				m := kernelMachine()
				r := m.Heap.AllocF64("v", 1024)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = r.At(i & 1023)
				}
			},
			Sim: func() (int64, int64) {
				m := kernelMachine()
				r := m.Heap.AllocF64("v", 1024)
				start := m.Clock.Now()
				for i := 0; i < simProbeOps; i++ {
					_ = r.At(i & 1023)
				}
				return m.Clock.Since(start), m.LLC.Stats().Flushes
			},
		},
		{
			// Streaming stores with eviction and writeback pressure.
			Name: "cache/stream",
			Bench: func(b *testing.B) {
				m := kernelMachine()
				r := m.Heap.AllocF64("v", 1<<20)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.Set(i&(1<<20-1), float64(i))
				}
			},
			Sim: func() (int64, int64) {
				m := kernelMachine()
				r := m.Heap.AllocF64("v", 1<<20)
				start := m.Clock.Now()
				for i := 0; i < simProbeOps; i++ {
					r.Set(i&(1<<20-1), float64(i))
				}
				return m.Clock.Since(start), m.LLC.Stats().Flushes
			},
		},
		{
			// The cache-line flush model: store an element, persist its
			// line — the store/CLFLUSH pairing behind every selective
			// flush in the algorithm-directed schemes.
			Name: "cache/flush",
			Bench: func(b *testing.B) {
				m := kernelMachine()
				r := m.Heap.AllocF64("v", 1024)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					idx := i & 1023
					r.Set(idx, float64(i))
					m.Persist(r.Addr(idx), 8)
				}
			},
			Sim: func() (int64, int64) {
				m := kernelMachine()
				r := m.Heap.AllocF64("v", 1024)
				start := m.Clock.Now()
				for i := 0; i < simProbeOps; i++ {
					idx := i & 1023
					r.Set(idx, float64(i))
					m.Persist(r.Addr(idx), 8)
				}
				return m.Clock.Since(start), m.LLC.Stats().Flushes
			},
		},
		{
			// Simulated CSR SpMV, the CG hot kernel.
			Name: "sparse/spmv",
			Bench: func(b *testing.B) {
				m := kernelMachine()
				a := sparse.GenSPD(20000, 11, 1)
				sa := sparse.NewSimCSR(m.Heap, a, "A")
				x := m.Heap.AllocF64("x", a.N)
				y := m.Heap.AllocF64("y", a.N)
				for i := 0; i < a.N; i++ {
					x.Set(i, 1)
				}
				b.SetBytes(int64(sa.Bytes()))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sa.SpMV(m.CPU, y, 0, x, 0)
				}
			},
			Sim: func() (int64, int64) {
				m := kernelMachine()
				a := sparse.GenSPD(20000, 11, 1)
				sa := sparse.NewSimCSR(m.Heap, a, "A")
				x := m.Heap.AllocF64("x", a.N)
				y := m.Heap.AllocF64("y", a.N)
				for i := 0; i < a.N; i++ {
					x.Set(i, 1)
				}
				start := m.Clock.Now()
				sa.SpMV(m.CPU, y, 0, x, 0)
				return m.Clock.Since(start), m.LLC.Stats().Flushes
			},
		},
		{
			// Un-instrumented reference SpMV (no simulated component).
			Name: "sparse/spmv-native",
			Bench: func(b *testing.B) {
				a := sparse.GenSPD(20000, 11, 1)
				x := make([]float64, a.N)
				y := make([]float64, a.N)
				for i := range x {
					x[i] = 1
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sparse.SpMV(y, a, x)
				}
			},
		},
		{
			// The pure sampling path of one MC lookup (no simulated
			// memory traffic, so no Sim probe).
			Name: "mc/sample",
			Bench: func(b *testing.B) {
				m := kernelMachine()
				s := mc.New(m.Heap, m.CPU, mcKernelConfig())
				b.ReportAllocs()
				b.ResetTimer()
				var sink float64
				for i := 0; i < b.N; i++ {
					e, _, c := s.SampleLookup(int64(i))
					sink += e + c
				}
				_ = sink
			},
		},
		{
			// One full macroscopic cross-section lookup.
			Name: "mc/lookup",
			Bench: func(b *testing.B) {
				m := kernelMachine()
				s := mc.New(m.Heap, m.CPU, mcKernelConfig())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Lookup(int64(i))
				}
			},
			Sim: func() (int64, int64) {
				m := kernelMachine()
				s := mc.New(m.Heap, m.CPU, mcKernelConfig())
				start := m.Clock.Now()
				for i := 0; i < simProbeOps; i++ {
					s.Lookup(int64(i))
				}
				return m.Clock.Since(start), m.LLC.Stats().Flushes
			},
		},
		{
			// One single-line undo-log transaction, the PMEM-baseline
			// hot path.
			Name: "pmem/tx",
			Bench: func(b *testing.B) {
				m := kernelMachine()
				p := pmem.NewPool(m, 1<<20)
				r := m.Heap.AllocF64("v", 1024)
				p.RegisterF64(r)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tx := p.Begin()
					tx.SetF64(r, i&1023, float64(i))
					tx.Commit()
				}
			},
			Sim: func() (int64, int64) {
				m := kernelMachine()
				p := pmem.NewPool(m, 1<<20)
				r := m.Heap.AllocF64("v", 1024)
				p.RegisterF64(r)
				start := m.Clock.Now()
				for i := 0; i < simProbeOps; i++ {
					tx := p.Begin()
					tx.SetF64(r, i&1023, float64(i))
					tx.Commit()
				}
				return m.Clock.Since(start), m.LLC.Stats().Flushes
			},
		},
		{
			// Memory-based checkpoint of a 1 MB region.
			Name: "ckpt/nvm",
			Bench: func(b *testing.B) {
				m := kernelMachine()
				c := ckpt.NewNVM(m)
				r := m.Heap.AllocF64("v", 128<<10)
				b.SetBytes(int64(r.Bytes()))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Checkpoint(int64(i), r)
				}
			},
			Sim: func() (int64, int64) {
				m := kernelMachine()
				c := ckpt.NewNVM(m)
				r := m.Heap.AllocF64("v", 128<<10)
				start := m.Clock.Now()
				for i := 0; i < 64; i++ {
					c.Checkpoint(int64(i), r)
				}
				return m.Clock.Since(start), m.LLC.Stats().Flushes
			},
		},
	}
}

// RunKernels executes every kernel micro-benchmark — wall-clock
// measurement via testing.Benchmark plus the deterministic sim probe —
// and returns one Result per kernel.
func RunKernels() []Result {
	kernels := Kernels()
	out := make([]Result, 0, len(kernels))
	for _, k := range kernels {
		br := testing.Benchmark(k.Bench)
		r := Result{
			Name:        k.Name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: float64(br.AllocsPerOp()),
			BytesPerOp:  float64(br.AllocedBytesPerOp()),
		}
		if k.Sim != nil {
			r.SimNS, r.SimFlushes = k.Sim()
		}
		out = append(out, r)
	}
	return out
}
