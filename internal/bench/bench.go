// Package bench is the machine-readable benchmark model behind the
// repo's perf pipeline: a Result/Suite data model with a stable JSON
// encoding, a concurrency-safe Collector that the harness experiment
// drivers feed per-case simulated timings into, the kernel
// micro-benchmark suite run by `adccbench -bench`, and the comparison
// logic behind cmd/benchdiff.
//
// Two kinds of metrics coexist in one Result:
//
//   - host wall-clock metrics (ns/op, allocs/op) measured with
//     testing.Benchmark — they vary across machines and are compared
//     with a generous threshold;
//   - simulated metrics (sim_ns, sim_flushes, recovery_sim_ns) read off
//     the deterministic simulation clock — identical across hosts for
//     the same code and scale, so even small drift is a meaningful
//     semantic change and is gated tightly.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// SchemaVersion identifies the JSON layout of a Suite. cmd/benchdiff
// refuses to compare files with mismatched schemas; bump only with a
// migration note in README.md.
const SchemaVersion = "adcc-bench/v1"

// Result is one named measurement. Zero-valued fields are omitted from
// the JSON encoding, so kernel results (wall + sim) and harness case
// results (sim only) share one shape.
type Result struct {
	// Name identifies the measured unit, e.g. "cache/flush" for a
	// kernel micro-benchmark or "fig4/algo-nvm" for a harness case.
	Name string `json:"name"`
	// Iterations is the iteration count the wall-clock runner settled on.
	Iterations int `json:"iterations,omitempty"`
	// NsPerOp is host wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// AllocsPerOp and BytesPerOp are the heap-allocation costs per
	// operation from the benchmark runner's -benchmem accounting.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	// SimNS is the deterministic simulated-clock duration of the
	// measured unit (one harness case, or a kernel's fixed probe loop).
	SimNS int64 `json:"sim_ns,omitempty"`
	// SimFlushes counts simulated cache-line flushes issued by the
	// measured unit.
	SimFlushes int64 `json:"sim_flushes,omitempty"`
	// RecoveryNS is the simulated post-crash detection time, for cases
	// that exercise a recovery protocol.
	RecoveryNS int64 `json:"recovery_sim_ns,omitempty"`
	// Injections and Failures summarize a fault-injection campaign
	// cell (internal/campaign): how many crash points were swept and
	// how many ended without a verified result (silent corruption or
	// unrecoverable state). Failures is gated as a deterministic
	// metric, so a recovery-rate regression fails benchdiff.
	Injections int64 `json:"injections,omitempty"`
	Failures   int64 `json:"failures,omitempty"`
	// WallNSPerInjection is the host wall-clock cost of one injection of
	// a campaign cell. Like ns/op it is a wall metric — machine-varying,
	// compared generously and advisable on PRs — and it is what records
	// the snapshot-replay engine's speedup in the trajectory.
	WallNSPerInjection float64 `json:"wall_ns_per_injection,omitempty"`
}

// Suite is a full benchmark run: schema tag, the harness scale it ran
// at, and the results sorted by name (the sort is what makes the
// encoding stable across collection order).
type Suite struct {
	Schema  string   `json:"schema"`
	Scale   float64  `json:"scale,omitempty"`
	Results []Result `json:"results"`
}

// NewSuite assembles a schema-tagged suite with the results sorted by
// name.
func NewSuite(scale float64, results []Result) Suite {
	out := make([]Result, len(results))
	copy(out, results)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return Suite{Schema: SchemaVersion, Scale: scale, Results: out}
}

// EncodeJSON renders the suite in its canonical form: two-space
// indentation, struct field order, trailing newline. Byte-stable for
// equal contents.
func (s Suite) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the canonical encoding to path.
func (s Suite) WriteFile(path string) error {
	b, err := s.EncodeJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile parses a suite and validates its schema tag.
func ReadFile(path string) (Suite, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Suite{}, err
	}
	var s Suite
	if err := json.Unmarshal(b, &s); err != nil {
		return Suite{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return Suite{}, fmt.Errorf("bench: %s: schema %q, want %q", path, s.Schema, SchemaVersion)
	}
	return s, nil
}

// byName indexes results for diffing. Duplicate names must be rejected
// with Validate before indexing — in a plain map the last one would
// silently win.
func (s Suite) byName() map[string]Result {
	m := make(map[string]Result, len(s.Results))
	for _, r := range s.Results {
		m[r.Name] = r
	}
	return m
}

// Validate rejects suites whose benchmark names collide: a duplicate
// would silently shadow its twin in every comparison, so a diff over
// such a suite proves nothing about the hidden result.
func (s Suite) Validate() error {
	seen := make(map[string]bool, len(s.Results))
	for _, r := range s.Results {
		if seen[r.Name] {
			return fmt.Errorf("bench: duplicate benchmark name %q in suite", r.Name)
		}
		seen[r.Name] = true
	}
	return nil
}

// Collector accumulates Results from concurrently executing experiment
// cases. A nil *Collector is a valid no-op receiver, so harness drivers
// record unconditionally. Snapshots are sorted, making the collected
// suite independent of case execution order (and therefore identical
// between serial and -parallel runs).
type Collector struct {
	mu      sync.Mutex
	results map[string]Result
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{results: map[string]Result{}}
}

// Record stores r, replacing any previous result with the same name.
// Safe for concurrent use; no-op on a nil collector.
func (c *Collector) Record(r Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results[r.Name] = r
}

// Len returns the number of distinct results recorded.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results)
}

// Results returns a name-sorted snapshot.
func (c *Collector) Results() []Result {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Result, 0, len(c.results))
	for _, r := range c.results {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
