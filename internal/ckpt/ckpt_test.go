package ckpt

import (
	"testing"

	"adcc/internal/cache"
	"adcc/internal/crash"
)

func newMachine(kind crash.SystemKind) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: kind,
		Cache: cache.Config{
			SizeBytes: 16 * 64 * 2,
			LineBytes: 64,
			Assoc:     2,
			HitNS:     1,
		},
	})
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	m := newMachine(crash.NVMOnly)
	c := NewNVM(m)
	v := m.Heap.AllocF64("v", 100)
	n := m.Heap.AllocI64("n", 4)
	for i := 0; i < 100; i++ {
		v.Set(i, float64(i)*1.5)
	}
	n.Set(0, 42)
	c.Checkpoint(7, v, n)

	// Clobber everything.
	for i := 0; i < 100; i++ {
		v.Set(i, -1)
	}
	n.Set(0, -1)

	tag := c.Restore(v, n)
	if tag != 7 {
		t.Fatalf("tag = %d, want 7", tag)
	}
	for i := 0; i < 100; i++ {
		if v.Live()[i] != float64(i)*1.5 {
			t.Fatalf("v[%d] = %v after restore", i, v.Live()[i])
		}
		if v.Image()[i] != float64(i)*1.5 {
			t.Fatalf("v image[%d] = %v after restore", i, v.Image()[i])
		}
	}
	if n.Live()[0] != 42 {
		t.Fatalf("n = %d after restore", n.Live()[0])
	}
}

func TestCheckpointSurvivesCrash(t *testing.T) {
	m := newMachine(crash.NVMOnly)
	e := crash.NewEmulator(m)
	c := NewNVM(m)
	v := m.Heap.AllocF64("v", 64)

	crashed := e.Run(func() {
		for i := 0; i < 64; i++ {
			v.Set(i, 1.0)
		}
		c.Checkpoint(1, v)
		for i := 0; i < 64; i++ {
			v.Set(i, 2.0) // partially unpersisted at crash
		}
		crash.InjectCrashNow()
	})
	if !crashed {
		t.Fatal("expected crash")
	}
	c.Restore(v)
	for i := 0; i < 64; i++ {
		if v.Live()[i] != 1.0 {
			t.Fatalf("v[%d] = %v, want checkpointed 1.0", i, v.Live()[i])
		}
	}
}

func TestHDDMoreExpensiveThanNVM(t *testing.T) {
	costOf := func(mk func(*crash.Machine) *Checkpointer) int64 {
		m := newMachine(crash.NVMOnly)
		c := mk(m)
		v := m.Heap.AllocF64("v", 1<<16)
		start := m.Clock.Now()
		c.Checkpoint(1, v)
		return m.Clock.Now() - start
	}
	hdd := costOf(NewHDD)
	nvmc := costOf(NewNVM)
	if hdd < 4*nvmc {
		t.Fatalf("HDD checkpoint (%d ns) should dwarf NVM checkpoint (%d ns)", hdd, nvmc)
	}
}

func TestHeteroCheckpointMoreExpensiveThanNVMOnly(t *testing.T) {
	// The paper's Figure 4: NVM-only checkpoint has ~4% overhead while
	// NVM/DRAM checkpoint has ~44%, because the persistence domain on
	// the heterogeneous system is PCM-like (1/8 bandwidth).
	costOf := func(kind crash.SystemKind) int64 {
		m := newMachine(kind)
		c := NewNVM(m)
		v := m.Heap.AllocF64("v", 1<<16)
		start := m.Clock.Now()
		c.Checkpoint(1, v)
		return m.Clock.Now() - start
	}
	nvmOnly := costOf(crash.NVMOnly)
	hetero := costOf(crash.Hetero)
	if hetero <= 2*nvmOnly {
		t.Fatalf("hetero checkpoint (%d ns) should cost much more than NVM-only (%d ns)", hetero, nvmOnly)
	}
}

func TestRestoreWithoutCheckpointPanics(t *testing.T) {
	m := newMachine(crash.NVMOnly)
	c := NewNVM(m)
	v := m.Heap.AllocF64("v", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("restore without checkpoint did not panic")
		}
	}()
	c.Restore(v)
}

func TestRestoreUnknownRegionPanics(t *testing.T) {
	m := newMachine(crash.NVMOnly)
	c := NewNVM(m)
	v := m.Heap.AllocF64("v", 8)
	w := m.Heap.AllocF64("w", 8)
	c.Checkpoint(1, v)
	defer func() {
		if recover() == nil {
			t.Fatal("restore of unknown region did not panic")
		}
	}()
	c.Restore(w)
}

func TestRepeatedCheckpointsOverwrite(t *testing.T) {
	m := newMachine(crash.NVMOnly)
	c := NewNVM(m)
	v := m.Heap.AllocF64("v", 16)
	for round := 1; round <= 3; round++ {
		for i := 0; i < 16; i++ {
			v.Set(i, float64(round))
		}
		c.Checkpoint(int64(round), v)
	}
	for i := 0; i < 16; i++ {
		v.Set(i, 0)
	}
	if tag := c.Restore(v); tag != 3 {
		t.Fatalf("tag = %d, want 3", tag)
	}
	if v.Live()[0] != 3.0 {
		t.Fatalf("restored %v, want 3.0", v.Live()[0])
	}
}

func TestValidAndTag(t *testing.T) {
	m := newMachine(crash.NVMOnly)
	c := NewNVM(m)
	if c.Valid() {
		t.Fatal("fresh checkpointer claims validity")
	}
	v := m.Heap.AllocF64("v", 8)
	c.Checkpoint(9, v)
	if !c.Valid() || c.Tag() != 9 {
		t.Fatalf("Valid=%v Tag=%d", c.Valid(), c.Tag())
	}
	if c.Name() == "" {
		t.Fatal("empty name")
	}
}

// TestCheckpointCrashMidSaveKeepsPreviousCheckpoint asserts the
// crash-atomicity of multi-region checkpoints: an injected crash firing
// inside a Checkpoint call (chargeSave streams the sources through the
// counting accessor, so op-point crashes can land there) must leave the
// previous checkpoint fully intact — same tag, all regions from the
// same iteration — never a mix of old and new snapshots.
func TestCheckpointCrashMidSaveKeepsPreviousCheckpoint(t *testing.T) {
	run := func(crashOp int64) (crashed bool, tag int64, a0, b0 float64) {
		m := newMachine(crash.NVMOnly)
		em := crash.NewEmulator(m)
		c := NewNVM(m)
		a := m.Heap.AllocF64("a", 64)
		b := m.Heap.AllocF64("b", 64)
		if crashOp > 0 {
			em.Arm(crash.CrashPoint{Op: crashOp})
		}
		crashed = em.Run(func() {
			for iter := int64(1); iter <= 3; iter++ {
				for i := 0; i < 64; i++ {
					a.Set(i, float64(100*iter))
					b.Set(i, float64(100*iter))
				}
				c.Checkpoint(iter, a, b)
			}
		})
		if !c.Valid() {
			t.Fatalf("crashOp=%d: no valid checkpoint", crashOp)
		}
		tag = c.Restore(a, b)
		return crashed, tag, a.Live()[0], b.Live()[0]
	}

	_, _, a0, _ := run(0)
	if a0 != 300 {
		t.Fatalf("crash-free restore a=%v, want 300", a0)
	}
	// Profile the crash-free op count, then sweep crash points across
	// the whole run (every 37th op covers points inside every
	// checkpoint's chargeSave streams).
	m := newMachine(crash.NVMOnly)
	em := crash.NewEmulator(m)
	c := NewNVM(m)
	a := m.Heap.AllocF64("a", 64)
	b := m.Heap.AllocF64("b", 64)
	prof := em.Profile(func() {
		for iter := int64(1); iter <= 3; iter++ {
			for i := 0; i < 64; i++ {
				a.Set(i, float64(100*iter))
				b.Set(i, float64(100*iter))
			}
			c.Checkpoint(iter, a, b)
		}
	})
	for op := int64(200); op <= prof.Ops; op += 37 {
		crashed, tag, av, bv := run(op)
		if !crashed {
			continue
		}
		want := float64(100 * tag)
		if av != want || bv != want {
			t.Fatalf("crash at op %d: restored tag %d but a=%v b=%v (mixed checkpoint)", op, tag, av, bv)
		}
	}
}
