// Package ckpt implements the checkpoint/restart baselines of the
// paper's seven-case evaluation (§III-A):
//
//   - checkpoint to a local hard drive (case 2),
//   - memory-based checkpoint on the NVM-only system (case 3),
//   - memory-based checkpoint on the heterogeneous NVM/DRAM system
//     (case 4).
//
// A memory-based checkpoint is "data copying plus cache flushing" (the
// paper's words): the source is read through the cache, the copy is
// written to the checkpoint area in NVM, and the destination is flushed
// from the CPU cache so the checkpoint itself is persistent. The paper
// measures the two halves at 51.9% (copy) / 48.1% (flush) of checkpoint
// overhead, which this model reproduces by charging one device-write
// pass for the copy and one for the flush.
//
// Restart is fully functional: the checkpointed bytes are retained and
// can be restored into the live+image state of the regions after a
// crash, with restore costs charged to the simulated clock.
package ckpt

import (
	"fmt"
	"math"

	"adcc/internal/crash"
	"adcc/internal/mem"
	"adcc/internal/nvm"
)

// Checkpointer saves and restores sets of regions against one target
// device.
type Checkpointer struct {
	m      *crash.Machine
	target nvm.DeviceModel
	name   string
	// memoryBased selects the copy+flush cost model; HDD checkpoints
	// pay seek+bandwidth instead.
	memoryBased bool

	saved map[string]*snapshot
	// spare holds per-region staging buffers: Checkpoint stages into
	// them and swaps them with saved at its commit point, so the hot
	// checkpoint loop allocates nothing in steady state while a crash
	// mid-save still leaves the previous checkpoint intact.
	spare map[string]*snapshot
	tag   int64
	valid bool
	// ver counts commits and restores for crash.AuxState.AuxVersion.
	ver uint64
	// tierFlushNS is the fixed per-checkpoint cost of flushing the
	// heterogeneous system's DRAM cache (paper §III-A: checkpointing
	// on NVM/DRAM "includes flushing both CPU caches (using CLFLUSH)
	// and the DRAM cache (using memory copy)"). Zero on NVM-only.
	tierFlushNS int64
}

type snapshot struct {
	f64 []float64
	i64 []int64
}

// NewHDD returns a checkpointer writing to a local hard drive.
func NewHDD(m *crash.Machine) *Checkpointer {
	c := &Checkpointer{
		m: m, target: nvm.HDD(), name: "ckpt-HDD", memoryBased: false,
		saved: map[string]*snapshot{}, spare: map[string]*snapshot{},
	}
	m.RegisterAux(c)
	return c
}

// NewNVM returns a memory-based checkpointer writing to the machine's
// persistence domain (NVM). On the NVM-only system this is cheap; on the
// heterogeneous system the low NVM bandwidth makes it expensive, exactly
// as in the paper's Figure 4.
func NewNVM(m *crash.Machine) *Checkpointer {
	c := &Checkpointer{
		m:           m,
		target:      m.Mem.PersistModel(),
		name:        "ckpt-" + m.System().String(),
		memoryBased: true,
		saved:       map[string]*snapshot{},
		spare:       map[string]*snapshot{},
	}
	if tier := m.DRAMCacheBytes(); tier > 0 {
		// Flushing the DRAM cache is a scan over its capacity at DRAM
		// speed (the paper implements it as a memory copy).
		c.tierFlushNS = nvm.DRAM().ReadCost(tier)
	}
	m.RegisterAux(c)
	return c
}

// Name identifies the checkpointer in reports.
func (c *Checkpointer) Name() string { return c.name }

// Valid reports whether a complete checkpoint is available.
func (c *Checkpointer) Valid() bool { return c.valid }

// Tag returns the tag of the last complete checkpoint.
func (c *Checkpointer) Tag() int64 { return c.tag }

// Checkpoint saves the given regions atomically under a tag (typically
// the iteration number). Supported region types: *mem.F64 and *mem.I64.
//
// Crash-atomicity: chargeSave streams each source region through the
// cache, so an injected crash can fire in the middle of a multi-region
// checkpoint. All snapshots are therefore staged first and committed
// into c.saved together with the tag only after the last save completes
// — a crash mid-checkpoint leaves the previous checkpoint fully intact,
// as a double-buffered on-device checkpoint would.
func (c *Checkpointer) Checkpoint(tag int64, regions ...mem.Region) {
	for _, r := range regions {
		c.chargeSave(r)
		s := c.spare[r.Name()]
		switch t := r.(type) {
		case *mem.F64:
			if s == nil || len(s.f64) != t.Len() {
				s = &snapshot{f64: make([]float64, t.Len())}
			}
			copy(s.f64, t.Live())
		case *mem.I64:
			if s == nil || len(s.i64) != t.Len() {
				s = &snapshot{i64: make([]int64, t.Len())}
			}
			copy(s.i64, t.Live())
		default:
			panic(fmt.Sprintf("ckpt: unsupported region type %T", r))
		}
		c.spare[r.Name()] = s
	}
	c.m.Clock.Advance(c.tierFlushNS)
	// Commit point: no simulated operation (and hence no crash point)
	// occurs past here. The staged snapshots swap in; the displaced
	// ones become the next call's staging buffers.
	for _, r := range regions {
		name := r.Name()
		c.saved[name], c.spare[name] = c.spare[name], c.saved[name]
	}
	c.tag = tag
	c.valid = true
	c.ver++
}

// chargeSave prices one region save: a cached read of the source plus the
// target write, plus (for memory-based checkpoints) the destination
// flush pass.
func (c *Checkpointer) chargeSave(r mem.Region) {
	size := r.Bytes()
	// Source read through the cache: charges hits/misses/evictions as
	// the copy loop streams the region.
	switch t := r.(type) {
	case *mem.F64:
		const chunk = 4096 / 8
		for i := 0; i < t.Len(); i += chunk {
			n := min(chunk, t.Len()-i)
			t.LoadRange(i, n)
		}
	case *mem.I64:
		const chunk = 4096 / 8
		for i := 0; i < t.Len(); i += chunk {
			n := min(chunk, t.Len()-i)
			t.LoadRange(i, n)
		}
	}
	// Copy write to the target device.
	c.m.Clock.Advance(c.target.WriteCost(size))
	if c.memoryBased {
		// Flushing the checkpoint destination out of the CPU cache:
		// a second write pass over the data at NVM speed.
		c.m.Clock.Advance(c.target.WriteCost(size))
	}
}

// Restore copies the last checkpoint back into the given regions (both
// live and image state), charging target-read and memory-write costs.
// It returns the checkpoint tag. Regions must match a prior Checkpoint
// call by name and length.
func (c *Checkpointer) Restore(regions ...mem.Region) int64 {
	if !c.valid {
		panic("ckpt: restore without a valid checkpoint")
	}
	for _, r := range regions {
		s, ok := c.saved[r.Name()]
		if !ok {
			panic(fmt.Sprintf("ckpt: region %q not in checkpoint", r.Name()))
		}
		c.m.Clock.Advance(c.target.ReadCost(r.Bytes()))
		c.m.ChargeNVMWrite(r.Bytes())
		switch t := r.(type) {
		case *mem.F64:
			if len(s.f64) != t.Len() {
				panic(fmt.Sprintf("ckpt: region %q length changed", r.Name()))
			}
			copy(t.Live(), s.f64)
			copy(t.Image(), s.f64)
		case *mem.I64:
			if len(s.i64) != t.Len() {
				panic(fmt.Sprintf("ckpt: region %q length changed", r.Name()))
			}
			copy(t.Live(), s.i64)
			copy(t.Image(), s.i64)
		default:
			panic(fmt.Sprintf("ckpt: unsupported region type %T", r))
		}
	}
	return c.tag
}

// auxState is the checkpointer's contribution to a machine snapshot:
// the committed checkpoint contents, tag, and validity. The staging
// buffers are excluded — they are dead until the next Checkpoint call
// overwrites them, so they are not observable state.
type auxState struct {
	saved map[string]*snapshot
	tag   int64
	valid bool
}

// SnapshotAux implements crash.AuxState.
func (c *Checkpointer) SnapshotAux(prev crash.AuxSnapshot) crash.AuxSnapshot {
	st, ok := prev.(*auxState)
	if !ok || st == nil {
		st = &auxState{saved: map[string]*snapshot{}}
	}
	for name := range st.saved {
		if _, live := c.saved[name]; !live {
			delete(st.saved, name)
		}
	}
	for name, s := range c.saved {
		d := st.saved[name]
		if d == nil {
			d = &snapshot{}
			st.saved[name] = d
		}
		if len(d.f64) != len(s.f64) {
			d.f64 = make([]float64, len(s.f64))
		}
		copy(d.f64, s.f64)
		if len(d.i64) != len(s.i64) {
			d.i64 = make([]int64, len(s.i64))
		}
		copy(d.i64, s.i64)
	}
	st.tag = c.tag
	st.valid = c.valid
	return st
}

// RestoreAux implements crash.AuxState.
func (c *Checkpointer) RestoreAux(snap crash.AuxSnapshot) {
	st, ok := snap.(*auxState)
	if !ok {
		panic(fmt.Sprintf("ckpt: restore of foreign aux snapshot %T", snap))
	}
	for name := range c.saved {
		if _, want := st.saved[name]; !want {
			delete(c.saved, name)
		}
	}
	for name, s := range st.saved {
		d := c.saved[name]
		if d == nil {
			d = &snapshot{}
			c.saved[name] = d
		}
		if len(d.f64) != len(s.f64) {
			d.f64 = make([]float64, len(s.f64))
		}
		copy(d.f64, s.f64)
		if len(d.i64) != len(s.i64) {
			d.i64 = make([]int64, len(s.i64))
		}
		copy(d.i64, s.i64)
	}
	c.tag = st.tag
	c.valid = st.valid
	c.ver++
}

// AuxVersion implements crash.AuxState.
func (c *Checkpointer) AuxVersion() uint64 { return c.ver }

// EqualAux implements crash.AuxSnapshot.
func (a *auxState) EqualAux(other crash.AuxSnapshot) bool {
	b, ok := other.(*auxState)
	if !ok || a.tag != b.tag || a.valid != b.valid || len(a.saved) != len(b.saved) {
		return false
	}
	for name, sa := range a.saved {
		sb, ok := b.saved[name]
		if !ok || len(sa.f64) != len(sb.f64) || len(sa.i64) != len(sb.i64) {
			return false
		}
		for i, v := range sa.f64 {
			if math.Float64bits(v) != math.Float64bits(sb.f64[i]) {
				return false
			}
		}
		for i, v := range sa.i64 {
			if v != sb.i64[i] {
				return false
			}
		}
	}
	return true
}
