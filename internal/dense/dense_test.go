package dense

import (
	"math"
	"testing"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

func TestMulSmall(t *testing.T) {
	a := New(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := New(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := New(2, 2)
	Mul(c, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c = %v, want %v", c.Data, want)
		}
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Mul(New(2, 2), New(2, 3), New(2, 2))
}

func TestMulOverwritesC(t *testing.T) {
	a := Random(4, 4, 1)
	b := Random(4, 4, 2)
	c := New(4, 4)
	for i := range c.Data {
		c.Data[i] = 99
	}
	Mul(c, a, b)
	c2 := New(4, 4)
	Mul(c2, a, b)
	for i := range c.Data {
		if c.Data[i] != c2.Data[i] {
			t.Fatal("Mul did not overwrite stale C contents")
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(5, 5, 7)
	b := Random(5, 5, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Random not deterministic for equal seeds")
		}
	}
}

func TestRowAndAt(t *testing.T) {
	m := New(3, 4)
	m.Set(1, 2, 5.0)
	if m.At(1, 2) != 5.0 {
		t.Fatal("At/Set mismatch")
	}
	if m.Row(1)[2] != 5.0 {
		t.Fatal("Row view mismatch")
	}
}

func simEnv() (*mem.Heap, *sim.CPU) {
	clock := &sim.Clock{}
	return mem.NewHeap(nil), sim.DefaultCPU(clock)
}

func TestGemmAccMatchesNative(t *testing.T) {
	h, cpu := simEnv()
	n, k := 24, 8
	an := Random(n, n, 3)
	bn := Random(n, n, 4)
	a := UploadSim(h, "A", an)
	b := UploadSim(h, "B", bn)
	c := NewSim(h, "C", n, n)
	// Accumulate all panels: result equals the full product.
	for l0 := 0; l0 < n; l0 += k {
		GemmAcc(cpu, c, a, b, l0, k)
	}
	want := New(n, n)
	Mul(want, an, bn)
	for i := range want.Data {
		if math.Abs(c.Live()[i]-want.Data[i]) > 1e-10 {
			t.Fatalf("GemmAcc differs at %d: %v vs %v", i, c.Live()[i], want.Data[i])
		}
	}
	if cpu.Clock.Now() == 0 {
		t.Fatal("GemmAcc charged no time")
	}
}

func TestGemmAccPanelOnly(t *testing.T) {
	h, cpu := simEnv()
	n, k := 16, 4
	an := Random(n, n, 5)
	bn := Random(n, n, 6)
	a := UploadSim(h, "A", an)
	b := UploadSim(h, "B", bn)
	c := NewSim(h, "C", n, n)
	GemmAcc(cpu, c, a, b, 4, k) // only panel l=4..8
	// Reference: restrict A columns/B rows to the panel.
	want := New(n, n)
	for i := 0; i < n; i++ {
		for l := 4; l < 8; l++ {
			for j := 0; j < n; j++ {
				want.Data[i*n+j] += an.At(i, l) * bn.At(l, j)
			}
		}
	}
	for i := range want.Data {
		if math.Abs(c.Live()[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("panel GemmAcc differs at %d", i)
		}
	}
}

func TestAddRowsAcc(t *testing.T) {
	h, cpu := simEnv()
	c := NewSim(h, "C", 8, 8)
	s := NewSim(h, "S", 8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			s.Set(i, j, float64(i+j))
			c.Set(i, j, 1)
		}
	}
	AddRowsAcc(cpu, c, s, 2, 3) // rows 2,3,4
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 1.0
			if i >= 2 && i < 5 {
				want = 1 + float64(i+j)
			}
			if c.At(i, j) != want {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.Live()[i*8+j], want)
			}
		}
	}
}

func TestSimMatrixShapePanics(t *testing.T) {
	h, cpu := simEnv()
	c := NewSim(h, "C", 4, 4)
	s := NewSim(h, "S", 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddRowsAcc did not panic")
		}
	}()
	AddRowsAcc(cpu, c, s, 2, 3)
}

func TestUploadSimPersistsInitialState(t *testing.T) {
	h, _ := simEnv()
	m := Random(4, 4, 9)
	s := UploadSim(h, "M", m)
	for i := range m.Data {
		if s.Image()[i] != m.Data[i] {
			t.Fatal("UploadSim image not initialized")
		}
	}
}
