// Package dense provides dense-matrix storage and multiplication kernels
// for the ABFT matrix-multiplication study (paper §III-C), in native form
// (flat row-major slices) and simulated form (heap regions observed by
// the cache simulator).
package dense

import (
	"fmt"
	"math/rand"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

// Matrix is a native dense matrix in row-major layout.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero native matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Random fills a new matrix with deterministic uniform(0,1) values.
func Random(rows, cols int, seed int64) *Matrix {
	m := New(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice view.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Mul computes c = a*b natively (ikj order). Panics on shape mismatch.
func Mul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("dense: shape mismatch (%dx%d)*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	for i := range c.Data {
		c.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		crow := c.Row(i)
		for l := 0; l < a.Cols; l++ {
			av := a.At(i, l)
			brow := b.Row(l)
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// SimMatrix is a dense matrix stored in a simulated heap region.
type SimMatrix struct {
	Rows, Cols int
	R          *mem.F64
}

// NewSim allocates a zero simulated matrix.
func NewSim(h *mem.Heap, name string, rows, cols int) *SimMatrix {
	return &SimMatrix{Rows: rows, Cols: cols, R: h.AllocF64(name, rows*cols)}
}

// UploadSim copies a native matrix into a new simulated matrix and marks
// it persistent (initial input state, as the paper assumes).
func UploadSim(h *mem.Heap, name string, m *Matrix) *SimMatrix {
	s := NewSim(h, name, m.Rows, m.Cols)
	copy(s.R.Live(), m.Data)
	copy(s.R.Image(), m.Data)
	return s
}

// Idx returns the flat element index of (i, j).
func (m *SimMatrix) Idx(i, j int) int { return i*m.Cols + j }

// At performs a simulated load of element (i, j).
func (m *SimMatrix) At(i, j int) float64 { return m.R.At(m.Idx(i, j)) }

// Set performs a simulated store of element (i, j).
func (m *SimMatrix) Set(i, j int, v float64) { m.R.Set(m.Idx(i, j), v) }

// RowLoad performs a simulated load of elements (i, j0..j0+n) and
// returns the live values (read-only).
func (m *SimMatrix) RowLoad(i, j0, n int) []float64 {
	return m.R.LoadRange(m.Idx(i, j0), n)
}

// RowStore performs a simulated store over elements (i, j0..j0+n) and
// returns the live slice to fill.
func (m *SimMatrix) RowStore(i, j0, n int) []float64 {
	return m.R.StoreRange(m.Idx(i, j0), n)
}

// Live returns the live flat data without charging accesses.
func (m *SimMatrix) Live() []float64 { return m.R.Live() }

// Image returns the persistent NVM image of the flat data.
func (m *SimMatrix) Image() []float64 { return m.R.Image() }

// GemmAcc accumulates C += A[:, l0:l0+k] * B[l0:l0+k, :] through the
// simulated memory system (paper Figure 5/6 rank-k update). Memory
// traffic per output row: one load and one store of the C row, plus k
// loads of an A element and k streamed loads of a B row — the same
// traffic pattern as the paper's blocked implementation.
func GemmAcc(cpu *sim.CPU, c, a, b *SimMatrix, l0, k int) {
	if a.Rows != c.Rows || b.Cols != c.Cols || l0+k > a.Cols || l0+k > b.Rows {
		panic("dense: GemmAcc shape mismatch")
	}
	n := c.Cols
	for i := 0; i < c.Rows; i++ {
		// The C row is accumulated register/L1-blocked and published
		// to the cache simulator once, after the arithmetic: issuing
		// the store notification first would let a mid-accumulation
		// eviction freeze partial sums into the NVM image while the
		// final values never get written back.
		crow := c.RowLoad(i, 0, n)
		for l := 0; l < k; l++ {
			av := a.At(i, l0+l)
			brow := b.RowLoad(l0+l, 0, n)
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
		c.RowStore(i, 0, n)
		cpu.Compute(int64(2 * k * n))
	}
}

// AddRowsAcc accumulates rows [i0, i0+rows) of C += S through the
// simulated memory system (the submatrix-addition loop of Figure 6).
func AddRowsAcc(cpu *sim.CPU, c, s *SimMatrix, i0, rows int) {
	if c.Cols != s.Cols || i0+rows > c.Rows || i0+rows > s.Rows {
		panic("dense: AddRowsAcc shape mismatch")
	}
	n := c.Cols
	for i := i0; i < i0+rows; i++ {
		srow := s.RowLoad(i, 0, n)
		crow := c.RowLoad(i, 0, n)
		for j := 0; j < n; j++ {
			crow[j] += srow[j]
		}
		c.RowStore(i, 0, n) // publish after mutation (see GemmAcc)
		cpu.Compute(int64(n))
	}
}
