package campaign

import (
	"context"
	"strings"
	"testing"
)

// faultConfig is a CI-sized campaign sweeping every fault model over a
// restricted grid.
func faultConfig(parallel int, replay bool) Config {
	return Config{
		Scale:       0.02,
		Parallel:    parallel,
		PerCell:     3,
		Workloads:   []string{"mm", "mc"},
		FaultModels: []string{"failstop", "torn", "eadr", "reorder", "bitflip"},
		Replay:      replay,
	}
}

// TestFailStopDifferential: the fault-model plumbing must not move a
// single byte of a clean fail-stop campaign. An explicit ["failstop"]
// config and a nil one encode identically, on both engines, at any
// worker-pool width.
func TestFailStopDifferential(t *testing.T) {
	base := tinyConfig(1)
	want, err := Run(context.Background(), base)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	wantB, err := want.EncodeJSON()
	if err != nil {
		t.Fatalf("encode baseline: %v", err)
	}
	for _, replay := range []bool{false, true} {
		for _, parallel := range []int{1, 8} {
			cfg := tinyConfig(parallel)
			cfg.FaultModels = []string{"failstop"}
			cfg.Replay = replay
			rep, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("explicit failstop (replay=%v, parallel=%d): %v", replay, parallel, err)
			}
			got, err := rep.EncodeJSON()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if string(got) != string(wantB) {
				t.Errorf("explicit failstop report (replay=%v, parallel=%d) differs from legacy baseline:\nbase:\n%s\ngot:\n%s",
					replay, parallel, wantB, got)
			}
		}
	}
}

// TestFaultModelsValidated: an unknown fault-model name is rejected up
// front, before any cell runs.
func TestFaultModelsValidated(t *testing.T) {
	cfg := tinyConfig(1)
	cfg.FaultModels = []string{"torn", "half-line"}
	if _, err := Run(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "unknown fault model") {
		t.Fatalf("Run = %v, want unknown-fault-model error", err)
	}
	if _, err := cfg.CellKeys(); err == nil {
		t.Fatal("CellKeys accepted an unknown fault model")
	}
}

// TestFaultGridShape: each named model multiplies the grid, fail-stop
// cells keep their legacy keys, and duplicate names collapse.
func TestFaultGridShape(t *testing.T) {
	plain := tinyConfig(1)
	base, err := plain.CellKeys()
	if err != nil {
		t.Fatalf("CellKeys: %v", err)
	}
	cfg := tinyConfig(1)
	cfg.FaultModels = []string{"failstop", "torn", "torn", ""}
	keys, err := cfg.CellKeys()
	if err != nil {
		t.Fatalf("CellKeys: %v", err)
	}
	if len(keys) != 2*len(base) {
		t.Fatalf("grid has %d cells, want %d (x2 models over %d)", len(keys), 2*len(base), len(base))
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		seen[k] = true
	}
	for _, k := range base {
		if !seen[k] {
			t.Errorf("legacy cell key %q missing from fault grid", k)
		}
		if !seen[k+"+torn"] {
			t.Errorf("torn cell key %q+torn missing from fault grid", k)
		}
	}
}

// TestFaultReplayDifferential is the fault-axis analogue of
// TestReplayDifferential: over every fault model, the snapshot/fork
// engine must reproduce the legacy per-injection engine byte for byte,
// at any worker-pool width on either side.
func TestFaultReplayDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model differential campaign in -short mode")
	}
	legacy, err := Run(context.Background(), faultConfig(4, false))
	if err != nil {
		t.Fatalf("legacy campaign: %v", err)
	}
	want, err := legacy.EncodeJSON()
	if err != nil {
		t.Fatalf("encode legacy: %v", err)
	}
	for _, parallel := range []int{1, 8} {
		replay, err := Run(context.Background(), faultConfig(parallel, true))
		if err != nil {
			t.Fatalf("replay campaign (parallel=%d): %v", parallel, err)
		}
		got, err := replay.EncodeJSON()
		if err != nil {
			t.Fatalf("encode replay: %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("replay fault report (parallel=%d) differs from legacy:\nlegacy:\n%s\nreplay:\n%s",
				parallel, want, got)
		}
	}

	// The models must actually bite: fail-stop mc/native recovers every
	// injection (the paper's restart baseline), and the torn-writeback
	// model must break that — silent corruption from a half-persisted
	// line the restart trusts.
	cells := make(map[string]CellReport, len(legacy.Cells))
	for _, c := range legacy.Cells {
		cells[c.Key()] = c
	}
	clean, ok := cells["mc/native@NVM-only"]
	if !ok {
		t.Fatal("mc/native@NVM-only cell missing")
	}
	if clean.RecoveryRate != 1 {
		t.Fatalf("fail-stop mc/native recovery = %v, want 1 (baseline drifted; pick another canary)", clean.RecoveryRate)
	}
	torn, ok := cells["mc/native@NVM-only+torn"]
	if !ok {
		t.Fatal("mc/native@NVM-only+torn cell missing")
	}
	if torn.Corrupt == 0 || torn.RecoveryRate >= 1 {
		t.Errorf("torn mc/native: corrupt=%d recovery=%v, want corruption below 100%%",
			torn.Corrupt, torn.RecoveryRate)
	}
	// Outcome accounting holds on fault cells exactly as on legacy ones.
	for _, c := range legacy.Cells {
		if got := c.Clean + c.Recomputed + c.Corrupt + c.Unrecoverable + c.NoCrash; got != c.Injections {
			t.Errorf("%s: outcomes sum to %d, want %d", c.Key(), got, c.Injections)
		}
	}
}
