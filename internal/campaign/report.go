package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"adcc/internal/bench"
)

// SchemaVersion identifies the JSON layout of a campaign Report.
// Consumers refuse to compare files with mismatched schemas; bump only
// with a migration note in README.md.
const SchemaVersion = "adcc-campaign/v1"

// Outcome classifies one injection's end state.
type Outcome int

const (
	// OutcomeClean: the run recovered and completed with a verified
	// result, redoing no more than ~one main-loop iteration of work.
	OutcomeClean Outcome = iota
	// OutcomeRecomputed: the run recovered and verified, but detection
	// concluded more than one iteration of work had to be redone
	// (including full restarts of native runs).
	OutcomeRecomputed
	// OutcomeCorrupt: the run completed but verification failed — the
	// scheme silently produced a wrong result (the paper's Figure 10
	// failure mode).
	OutcomeCorrupt
	// OutcomeUnrecoverable: recovery or resumption itself failed (error
	// or panic); the persistent image was unusable under the scheme.
	OutcomeUnrecoverable
	// OutcomeNoCrash: the armed point never fired (the injection
	// coordinates fell outside the execution; counted separately so
	// sweep coverage is visible).
	OutcomeNoCrash
)

// String names the outcome as used in reports.
func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeRecomputed:
		return "recomputed"
	case OutcomeCorrupt:
		return "corrupt"
	case OutcomeUnrecoverable:
		return "unrecoverable"
	case OutcomeNoCrash:
		return "no-crash"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// outcomeNames is the canonical name set in Outcome value order; it is
// what MarshalText emits, what ParseOutcome accepts, and the dictionary
// order result stores encode outcomes under.
var outcomeNames = []string{"clean", "recomputed", "corrupt", "unrecoverable", "no-crash"}

// OutcomeNames lists every outcome name in Outcome value order.
func OutcomeNames() []string {
	return append([]string(nil), outcomeNames...)
}

// ParseOutcome resolves an outcome name ("clean", "recomputed",
// "corrupt", "unrecoverable", "no-crash") to its Outcome value.
func ParseOutcome(name string) (Outcome, error) {
	for i, n := range outcomeNames {
		if n == name {
			return Outcome(i), nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown outcome %q (want one of %s)",
		name, strings.Join(outcomeNames, ", "))
}

// MarshalText serializes the outcome as its name, so outcomes travel
// through JSON, result-store dictionaries, and query parameters as
// "clean"/"corrupt"/... instead of bare ints.
func (o Outcome) MarshalText() ([]byte, error) {
	if int(o) < 0 || int(o) >= len(outcomeNames) {
		return nil, fmt.Errorf("campaign: cannot marshal invalid outcome %d", int(o))
	}
	return []byte(outcomeNames[o]), nil
}

// UnmarshalText parses an outcome name.
func (o *Outcome) UnmarshalText(b []byte) error {
	v, err := ParseOutcome(string(b))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// CellReport aggregates every injection of one workload x scheme x
// system cell. All fields are deterministic functions of the code, the
// campaign scale, and the seed — byte-identical across hosts and
// worker counts.
type CellReport struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	System   string `json:"system"`
	// FaultModel is the crash-time fault/persistency model swept in
	// this cell ("torn", "eadr", "reorder", "bitflip"); empty means
	// clean fail-stop, omitted from the JSON so fail-stop reports are
	// byte-identical to pre-fault-axis ones.
	FaultModel string `json:"fault_model,omitempty"`

	// Injections is the number of crash points swept in this cell.
	Injections int `json:"injections"`

	// Outcome counts; they sum to Injections.
	Clean         int `json:"clean"`
	Recomputed    int `json:"recomputed"`
	Corrupt       int `json:"corrupt"`
	Unrecoverable int `json:"unrecoverable"`
	NoCrash       int `json:"no_crash"`

	// RecoveryRate is (Clean + Recomputed) / crashed injections: the
	// fraction of crashes that ended in a verified result.
	RecoveryRate float64 `json:"recovery_rate"`

	// ProfileOps is the op count of one uninterrupted run of the cell's
	// workload (the crash-point coordinate space).
	ProfileOps int64 `json:"profile_ops"`
	// GrainOps is the op cost of one main-loop iteration, the unit
	// rework is judged against.
	GrainOps int64 `json:"grain_ops"`

	// Recovery-cost statistics, summed over crashed injections.
	// ReworkOps counts ops re-executed beyond the work the crash had
	// not yet reached (the recomputation the scheme forced).
	ReworkOps    int64 `json:"rework_ops"`
	MaxReworkOps int64 `json:"max_rework_ops"`
	// FlushLines counts cache-line flushes issued during recovery and
	// resumption.
	FlushLines int64 `json:"flush_lines"`
	// RecoverSimNS and ResumeSimNS are the simulated time spent in
	// post-crash detection/restore and in re-execution, respectively.
	RecoverSimNS int64 `json:"recover_sim_ns"`
	ResumeSimNS  int64 `json:"resume_sim_ns"`

	// WallNSPerInjection is the host wall-clock cost of one injection of
	// this cell (averaged over the cell). It is measurement, not
	// simulation — nondeterministic across hosts and runs — so it is
	// excluded from the canonical JSON encoding and surfaces only
	// through BenchResults, where benchdiff treats it as a wall metric.
	WallNSPerInjection float64 `json:"-"`
}

// Failures counts injections that ended without a verified result.
func (c CellReport) Failures() int { return c.Corrupt + c.Unrecoverable }

// Add folds one injection row into the aggregate. It is the single
// accumulation step shared by the campaign engines and the result-store
// query layer (resultstore.Store.CampaignReport), so cell aggregates
// rebuilt from stored rows are field-identical to the ones a live run
// assembles.
func (c *CellReport) Add(r InjectionRow) {
	c.Injections++
	switch r.Outcome {
	case OutcomeClean:
		c.Clean++
	case OutcomeRecomputed:
		c.Recomputed++
	case OutcomeCorrupt:
		c.Corrupt++
	case OutcomeUnrecoverable:
		c.Unrecoverable++
	case OutcomeNoCrash:
		c.NoCrash++
	}
	c.ReworkOps += r.ReworkOps
	if r.ReworkOps > c.MaxReworkOps {
		c.MaxReworkOps = r.ReworkOps
	}
	c.FlushLines += r.FlushLines
	c.RecoverSimNS += r.RecoverSimNS
	c.ResumeSimNS += r.ResumeSimNS
}

// Finalize computes the derived fields once every row has been added:
// the recovery rate over crashed injections and (when wallNS is
// nonzero) the host wall cost per injection.
func (c *CellReport) Finalize(wallNS int64) {
	if crashed := c.Injections - c.NoCrash; crashed > 0 {
		c.RecoveryRate = float64(c.Clean+c.Recomputed) / float64(crashed)
	}
	if c.Injections > 0 {
		c.WallNSPerInjection = float64(wallNS) / float64(c.Injections)
	}
}

// Key is the cell's sweep coordinate, "workload/scheme@system" with a
// "+fault" suffix for non-fail-stop fault models — the name
// Config.Completed checkpoints and CellKeys enumerations use.
func (c CellReport) Key() string {
	k := fmt.Sprintf("%s/%s@%s", c.Workload, c.Scheme, c.System)
	if c.FaultModel != "" {
		k += "+" + c.FaultModel
	}
	return k
}

// Report is a full campaign run.
type Report struct {
	Schema string  `json:"schema"`
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`
	// Injections is the total number swept across all cells.
	Injections int          `json:"injections"`
	Cells      []CellReport `json:"cells"`
}

// SortCells orders cells by (workload, scheme, system, fault model),
// the canonical report order. Fail-stop ("") sorts before every named
// model, keeping legacy rows in their legacy positions. Exported so the
// result-store query layer assembles reports in exactly this order.
func SortCells(cells []CellReport) {
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		if a.System != b.System {
			return a.System < b.System
		}
		return a.FaultModel < b.FaultModel
	})
}

// EncodeJSON renders the report in its canonical form: two-space
// indentation, struct field order, trailing newline. Byte-stable for
// equal contents.
func (r *Report) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the canonical encoding to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.EncodeJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile parses a report and validates its schema tag.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("campaign: %s: schema %q, want %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// BenchResults renders the campaign as bench.Result rows (one per cell
// plus a roll-up), so the perf pipeline's benchdiff gate catches
// recovery-rate regressions: a cell whose Failures grow — or whose
// deterministic recovery cost drifts — fails the suite comparison.
func (r *Report) BenchResults() []bench.Result {
	out := make([]bench.Result, 0, len(r.Cells)+1)
	var total bench.Result
	total.Name = "campaign/total"
	var totalWallNS float64
	for _, c := range r.Cells {
		res := bench.Result{
			Name:               "campaign/" + c.Key(),
			SimNS:              c.RecoverSimNS + c.ResumeSimNS,
			SimFlushes:         c.FlushLines,
			RecoveryNS:         c.RecoverSimNS,
			Injections:         int64(c.Injections),
			Failures:           int64(c.Failures()),
			WallNSPerInjection: c.WallNSPerInjection,
		}
		out = append(out, res)
		total.SimNS += res.SimNS
		total.SimFlushes += res.SimFlushes
		total.RecoveryNS += res.RecoveryNS
		total.Injections += res.Injections
		total.Failures += res.Failures
		totalWallNS += c.WallNSPerInjection * float64(c.Injections)
	}
	if total.Injections > 0 {
		total.WallNSPerInjection = totalWallNS / float64(total.Injections)
	}
	return append(out, total)
}
