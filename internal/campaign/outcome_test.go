package campaign

import (
	"encoding/json"
	"testing"
)

// TestOutcomeTextRoundTrip marshals every outcome to its name and back,
// and checks the name set matches String().
func TestOutcomeTextRoundTrip(t *testing.T) {
	names := OutcomeNames()
	if len(names) != 5 {
		t.Fatalf("OutcomeNames() = %v, want 5 names", names)
	}
	for i, name := range names {
		o := Outcome(i)
		if o.String() != name {
			t.Errorf("Outcome(%d).String() = %q, want %q", i, o.String(), name)
		}
		b, err := o.MarshalText()
		if err != nil {
			t.Fatalf("Outcome(%d).MarshalText(): %v", i, err)
		}
		if string(b) != name {
			t.Errorf("Outcome(%d).MarshalText() = %q, want %q", i, b, name)
		}
		var back Outcome
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", b, err)
		}
		if back != o {
			t.Errorf("round-trip %q: got %v, want %v", name, back, o)
		}
		p, err := ParseOutcome(name)
		if err != nil || p != o {
			t.Errorf("ParseOutcome(%q) = %v, %v; want %v, nil", name, p, err, o)
		}
	}
}

// TestOutcomeTextInvalid covers the failure edges: out-of-range values
// refuse to marshal, unknown names refuse to parse.
func TestOutcomeTextInvalid(t *testing.T) {
	if _, err := Outcome(99).MarshalText(); err == nil {
		t.Error("MarshalText on Outcome(99): want error, got nil")
	}
	if _, err := Outcome(-1).MarshalText(); err == nil {
		t.Error("MarshalText on Outcome(-1): want error, got nil")
	}
	var o Outcome
	if err := o.UnmarshalText([]byte("exploded")); err == nil {
		t.Error(`UnmarshalText("exploded"): want error, got nil`)
	}
	if _, err := ParseOutcome(""); err == nil {
		t.Error(`ParseOutcome(""): want error, got nil`)
	}
}

// TestOutcomeJSON confirms outcomes travel through encoding/json as
// quoted names, the representation query responses rely on.
func TestOutcomeJSON(t *testing.T) {
	b, err := json.Marshal(OutcomeCorrupt)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	if string(b) != `"corrupt"` {
		t.Errorf("json.Marshal(OutcomeCorrupt) = %s, want %q", b, `"corrupt"`)
	}
	var o Outcome
	if err := json.Unmarshal([]byte(`"no-crash"`), &o); err != nil {
		t.Fatalf("json.Unmarshal: %v", err)
	}
	if o != OutcomeNoCrash {
		t.Errorf("json.Unmarshal(\"no-crash\") = %v, want OutcomeNoCrash", o)
	}
}
