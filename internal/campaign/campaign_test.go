package campaign

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyConfig is a CI-sized campaign: one workload, a few schemes, a
// handful of points per cell.
func tinyConfig(parallel int) Config {
	return Config{
		Scale:     0.02,
		Parallel:  parallel,
		PerCell:   3,
		Workloads: []string{"mm"},
	}
}

// TestShardCountInvariance asserts the tentpole determinism contract:
// the encoded report is byte-identical for any worker-pool width.
func TestShardCountInvariance(t *testing.T) {
	var encodings [][]byte
	for _, parallel := range []int{1, 4, 13} {
		rep, err := Run(context.Background(), tinyConfig(parallel))
		if err != nil {
			t.Fatalf("Run(parallel=%d): %v", parallel, err)
		}
		b, err := rep.EncodeJSON()
		if err != nil {
			t.Fatalf("EncodeJSON: %v", err)
		}
		encodings = append(encodings, b)
	}
	for i := 1; i < len(encodings); i++ {
		if string(encodings[i]) != string(encodings[0]) {
			t.Fatalf("report for worker count #%d differs from serial run:\nserial:\n%s\nparallel:\n%s",
				i, encodings[0], encodings[i])
		}
	}
}

// TestGoldenReport pins the full report encoding of a tiny campaign.
// Any drift — classification changes, cost-model changes, JSON layout
// changes — must be reviewed and the golden regenerated with -update.
func TestGoldenReport(t *testing.T) {
	rep, err := Run(context.Background(), tinyConfig(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, err := rep.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("campaign report drifted from golden file.\nIf intentional, regenerate with: go test ./internal/campaign -run TestGoldenReport -update\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReportRoundTrip checks WriteFile/ReadFile preserve the report and
// reject mismatched schemas.
func TestReportRoundTrip(t *testing.T) {
	rep, err := Run(context.Background(), tinyConfig(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if back.Injections != rep.Injections || len(back.Cells) != len(rep.Cells) {
		t.Fatalf("round trip lost data: %d/%d injections, %d/%d cells",
			back.Injections, rep.Injections, len(back.Cells), len(rep.Cells))
	}
	if err := os.WriteFile(path, []byte(`{"schema":"bogus/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("ReadFile accepted a mismatched schema")
	}
}

// TestOutcomeAccounting asserts per-cell bookkeeping invariants: the
// outcome counts sum to the injections, rates stay in [0, 1], and every
// swept cell carries a usable crash-point space.
func TestOutcomeAccounting(t *testing.T) {
	cfg := Config{Scale: 0.02, Parallel: 4, PerCell: 3, Workloads: []string{"mc"}}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Schema != SchemaVersion {
		t.Errorf("schema = %q, want %q", rep.Schema, SchemaVersion)
	}
	total := 0
	for _, c := range rep.Cells {
		if got := c.Clean + c.Recomputed + c.Corrupt + c.Unrecoverable + c.NoCrash; got != c.Injections {
			t.Errorf("%s/%s@%s: outcomes sum to %d, want %d", c.Workload, c.Scheme, c.System, got, c.Injections)
		}
		if c.RecoveryRate < 0 || c.RecoveryRate > 1 {
			t.Errorf("%s/%s@%s: recovery rate %v out of range", c.Workload, c.Scheme, c.System, c.RecoveryRate)
		}
		if c.ProfileOps <= 0 || c.GrainOps <= 0 {
			t.Errorf("%s/%s@%s: profile ops %d, grain %d", c.Workload, c.Scheme, c.System, c.ProfileOps, c.GrainOps)
		}
		total += c.Injections
	}
	if total != rep.Injections {
		t.Errorf("total injections %d, want %d", rep.Injections, total)
	}
	// The paper's selective-flush MC scheme must survive every point;
	// the rejected index-only variant must corrupt at least once (the
	// Figure 10 bias is the campaign's canary).
	for _, c := range rep.Cells {
		switch c.Scheme {
		case "algo-NVM-only", "algo-NVM/DRAM", "algo-every-iter":
			if c.Failures() != 0 {
				t.Errorf("%s/%s@%s: %d failures, want 0", c.Workload, c.Scheme, c.System, c.Failures())
			}
		}
	}
}

// TestBenchResults checks the benchdiff bridge: one row per cell plus a
// roll-up, failures folded into the gated metric.
func TestBenchResults(t *testing.T) {
	rep := &Report{
		Schema: SchemaVersion,
		Cells: []CellReport{
			{Workload: "mc", Scheme: "native", System: "NVM-only",
				Injections: 5, Corrupt: 2, RecoverSimNS: 10, ResumeSimNS: 20, FlushLines: 3},
			{Workload: "mc", Scheme: "algo-NVM-only", System: "NVM-only",
				Injections: 5, Clean: 5, RecoverSimNS: 1, ResumeSimNS: 2},
		},
	}
	rs := rep.BenchResults()
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	if rs[0].Name != "campaign/mc/native@NVM-only" || rs[0].Failures != 2 || rs[0].SimNS != 30 {
		t.Errorf("cell row = %+v", rs[0])
	}
	total := rs[2]
	if total.Name != "campaign/total" || total.Injections != 10 || total.Failures != 2 || total.SimNS != 33 {
		t.Errorf("total row = %+v", total)
	}
}
