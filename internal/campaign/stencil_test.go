package campaign

import (
	"context"
	"testing"
)

// stencilConfig is a CI-sized stencil-only campaign.
func stencilConfig(parallel int, seed int64) Config {
	return Config{
		Scale:     0.02,
		Seed:      seed,
		Parallel:  parallel,
		PerCell:   6,
		Workloads: []string{"stencil"},
	}
}

// TestStencilGridOutcomes asserts the acceptance contract of the
// stencil family: the algorithm-directed scheme recovers from every
// injected crash point, while the rejected index-only design shows the
// Figure 10-style silent corruptions.
func TestStencilGridOutcomes(t *testing.T) {
	rep, err := Run(context.Background(), stencilConfig(4, 0))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 8 schemes x 2 systems.
	if len(rep.Cells) != 16 {
		t.Fatalf("stencil grid has %d cells, want 16", len(rep.Cells))
	}
	naiveCorrupt := 0
	for _, c := range rep.Cells {
		if c.Workload != "stencil" {
			t.Fatalf("unexpected workload %q in stencil-only sweep", c.Workload)
		}
		if got := c.Clean + c.Recomputed + c.Corrupt + c.Unrecoverable + c.NoCrash; got != c.Injections {
			t.Errorf("%s/%s@%s: outcomes sum to %d, want %d", c.Workload, c.Scheme, c.System, got, c.Injections)
		}
		switch c.Scheme {
		case "algo-NVM-only", "algo-every-iter":
			if c.Failures() != 0 {
				t.Errorf("%s@%s: %d failures, want 0 (algorithm-directed must recover everywhere)",
					c.Scheme, c.System, c.Failures())
			}
		case "algo-naive":
			naiveCorrupt += c.Corrupt
		default:
			// Conventional mechanisms must also recover: checkpoints
			// restore, PMEM rolls back, native restarts from scratch.
			if c.Unrecoverable != 0 || c.Corrupt != 0 {
				t.Errorf("%s@%s: %d corrupt, %d unrecoverable, want 0",
					c.Scheme, c.System, c.Corrupt, c.Unrecoverable)
			}
		}
	}
	if naiveCorrupt == 0 {
		t.Error("algo-naive produced no silent corruption; the bias canary is gone")
	}
}

// TestStencilSeedSensitivity asserts the two seed contracts of the
// report schema: different seeds sweep the same grid shape (identical
// cells and injection counts — only the crash points move), and the
// same seed is byte-identical at any worker-pool width.
func TestStencilSeedSensitivity(t *testing.T) {
	repA, err := Run(context.Background(), stencilConfig(2, 3))
	if err != nil {
		t.Fatalf("Run(seed=3): %v", err)
	}
	repB, err := Run(context.Background(), stencilConfig(2, 4))
	if err != nil {
		t.Fatalf("Run(seed=4): %v", err)
	}
	if repA.Schema != SchemaVersion || repB.Schema != SchemaVersion {
		t.Fatalf("schema = %q / %q, want %q", repA.Schema, repB.Schema, SchemaVersion)
	}
	if len(repA.Cells) != len(repB.Cells) {
		t.Fatalf("seed changed the grid: %d vs %d cells", len(repA.Cells), len(repB.Cells))
	}
	for i := range repA.Cells {
		a, b := repA.Cells[i], repB.Cells[i]
		if a.Workload != b.Workload || a.Scheme != b.Scheme || a.System != b.System {
			t.Errorf("cell %d coordinates differ across seeds: %s/%s@%s vs %s/%s@%s",
				i, a.Workload, a.Scheme, a.System, b.Workload, b.Scheme, b.System)
		}
		if a.Injections != b.Injections {
			t.Errorf("cell %d injection count differs across seeds: %d vs %d", i, a.Injections, b.Injections)
		}
		if a.ProfileOps != b.ProfileOps {
			t.Errorf("cell %d profile ops differ across seeds: %d vs %d (the crash-free run must not depend on the seed)",
				i, a.ProfileOps, b.ProfileOps)
		}
	}

	// Same seed, serial vs 8 workers: byte-identical reports.
	serial, err := Run(context.Background(), stencilConfig(1, 3))
	if err != nil {
		t.Fatalf("Run(parallel=1): %v", err)
	}
	wide, err := Run(context.Background(), stencilConfig(8, 3))
	if err != nil {
		t.Fatalf("Run(parallel=8): %v", err)
	}
	sb, err := serial.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	wb, err := wide.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	if string(sb) != string(wb) {
		t.Fatalf("same-seed report differs between -parallel 1 and 8:\nserial:\n%s\nparallel:\n%s", sb, wb)
	}
	ab, err := repA.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	if string(ab) != string(sb) {
		t.Fatal("parallel=2 and parallel=1 runs of the same seed differ")
	}
}
