// Package campaign is the statistical fault-injection engine built on
// the crash emulator: where cmd/crashsim inspects one hand-picked crash
// point, a campaign sweeps thousands of deterministic points — seeded
// random memory-operation counts plus random occurrences of every
// instrumented program point — across every supported workload x scheme
// x platform cell, recovers each injection under the cell's scheme, and
// classifies the end state (clean recovery, detected-and-recomputed,
// silent corruption, unrecoverable) together with recovery-cost
// statistics (rework ops, flush traffic, simulated time).
//
// Every injection runs on its own freshly built simulated machine and
// every crash point derives from a per-cell seed, so the campaign is
// fully deterministic: the aggregated Report is byte-identical for any
// worker-pool width (shards fan through engine.RunCases and are
// collected by index). The JSON report feeds cmd/benchdiff via
// Report.BenchResults, letting CI gate on recovery-rate regressions.
package campaign

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sync/atomic"
	"time"

	"adcc/internal/cache"
	"adcc/internal/core"
	"adcc/internal/crash"
	"adcc/internal/dense"
	"adcc/internal/engine"
	"adcc/internal/kvlog"
	"adcc/internal/mc"
	"adcc/internal/mem"
	"adcc/internal/sparse"
	"adcc/internal/stencil"
)

// Config parameterizes a campaign run.
type Config struct {
	// Scale multiplies problem sizes and sweep density; 1.0 is the full
	// campaign (thousands of injections), small values give CI-sized
	// smokes. Zero means 1.0.
	Scale float64
	// Seed drives crash-point selection (per-cell seeds derive from it).
	// The default 0 is a valid seed.
	Seed int64
	// Parallel bounds how many injections run concurrently through the
	// engine's worker pool; <= 1 is serial. The report is byte-identical
	// at any setting.
	Parallel int
	// PerCell overrides the number of injections per cell (0 = scaled
	// default: 120 at scale 1.0, floor 8).
	PerCell int
	// Workloads restricts the sweep to the named workloads ("cg", "mm",
	// "mc"); nil means all three.
	Workloads []string
	// Schemes restricts the sweep to the named schemes; nil means every
	// built-in scheme supported by each workload. Names outside the
	// built-in set are resolved in Registry and added to every selected
	// workload's grid, so explicitly named custom schemes are swept
	// (under the extended implementation for KindAlgo schemes, under
	// the Guard-driven baselines otherwise).
	Schemes []string
	// FaultModels selects the crash-time fault/persistency models swept
	// as a fourth grid axis ("failstop", "torn", "eadr", "reorder",
	// "bitflip"); nil or empty sweeps clean fail-stop only, exactly the
	// legacy grid. Each named model multiplies the grid. Fail-stop cells
	// keep their legacy keys; every other model suffixes its cells'
	// keys with "+<model>", so fail-stop reports (and checkpoints and
	// cache keys derived from them) are byte-identical with or without
	// an explicit "failstop" entry.
	FaultModels []string
	// Registry resolves scheme names; nil means the process-global
	// registry (so pre-instance-registry callers keep working). Custom
	// schemes registered on an instance registry become sweepable by
	// passing that registry here and naming them in Schemes.
	Registry *engine.Registry
	// Replay switches the inner loop to the snapshot/fork engine: each
	// cell executes once, capturing a machine snapshot at every
	// scheduled crash point, and recovery forks run from restored
	// snapshots instead of re-executing the workload from op 0. The
	// report is byte-identical to the legacy per-injection path; only
	// wall-clock cost (and the shape of the event stream) differs.
	Replay bool
	// Events, when non-nil, receives Progress events for the profiling
	// stage and one InjectionDone per classified injection, in
	// deterministic index order (byte-identical at any Parallel). Replay
	// campaigns additionally emit a "campaign/record" Progress event per
	// recorded cell.
	Events engine.EventSink
	// Completed maps cell keys (CellReport.Key, "workload/scheme@system")
	// to cell reports aggregated by a previous run. Cells found here are
	// skipped entirely — no profiling, no injections, no events — and the
	// stored report is spliced into the final Report in canonical order.
	// Every canonical-JSON field of a CellReport is a deterministic
	// function of (code, scale, seed), so a report assembled from
	// checkpoints is byte-identical to an uninterrupted run's; only the
	// host-measured WallNSPerInjection is whatever the checkpoint carries
	// (zero when restored from JSON, which excludes it).
	Completed map[string]CellReport
	// OnCell, when non-nil, is called once per freshly executed cell with
	// the cell's aggregated CellReport, in deterministic grid order, as
	// soon as the cell's last injection has been observed — the shard
	// checkpointing hook resumable services persist progress with. Cells
	// skipped via Completed are not re-announced. OnCell runs on the
	// sweep's ordered observation path; keep it fast.
	OnCell func(CellReport)
	// Sink, when non-nil, receives one row per injection: BeginCell once
	// per cell in deterministic grid order, then one Row per crash point
	// in point order. Both engines feed it the identical sequence at any
	// Parallel setting, so a sink that serializes what it is handed (the
	// result-store writer) produces byte-identical output for any
	// execution strategy. Sink runs on the sweep's ordered observation
	// path; keep it fast. Run rejects a Sink combined with Completed
	// cells: restored aggregates carry no per-injection rows, so the
	// sink's output would silently omit them.
	Sink RowSink
	// Verbose enables progress notes on Out.
	Verbose bool
	Out     io.Writer
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

func (c Config) scaleInt(v, floor int) int {
	s := int(float64(v) * c.scale())
	if s < floor {
		return floor
	}
	return s
}

func (c Config) perCell() int {
	if c.PerCell > 0 {
		return c.PerCell
	}
	return c.scaleInt(120, 8)
}

// registry returns the scheme registry the campaign resolves names in.
func (c Config) registry() *engine.Registry {
	if c.Registry != nil {
		return c.Registry
	}
	return engine.Default()
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose && c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// campaignLLCBytes sizes the injection machines' LLC. 1 MB sits between
// the campaign's scaled working sets, so both cache-resident (lose-many
// -iterations) and streaming (lose-one-iteration) crash behaviours
// appear in the sweep.
const campaignLLCBytes = 1 << 20

// cell is one workload x scheme x platform x fault-model combination of
// the sweep grid. FaultName is the canonical model name, or "" for
// clean fail-stop so fail-stop cells keep their legacy keys.
type cell struct {
	Workload  string
	Scheme    engine.Scheme
	System    crash.SystemKind
	Fault     crash.FaultModel
	FaultName string
}

func (c cell) String() string {
	s := fmt.Sprintf("%s/%s@%s", c.Workload, c.Scheme.Name(), c.System)
	if c.FaultName != "" {
		s += "+" + c.FaultName
	}
	return s
}

// seed derives the cell's crash-point seed from the campaign seed via
// FNV-1a over the workload/scheme/system coordinates, so cells are
// decorrelated but stable across runs and subset selections. The fault
// model is deliberately NOT mixed in: every fault model of one
// workload/scheme/system cell sweeps the same crash points, so outcome
// differences across models measure the model, not a different sample.
func (c cell) seed(base int64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", c.Workload, c.Scheme.Name(), c.System, base)
	return int64(h.Sum64() >> 1)
}

// fault returns the cell's seeded fault model: the parsed model with
// its fault-lottery seed derived from the full cell key (fault name
// included) and the campaign seed. Fail-stop needs no seed.
func (c cell) fault(base int64) crash.FaultModel {
	f := c.Fault
	if f.Kind == crash.FailStop {
		return f
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|fault|%d", c.String(), base)
	f.Seed = int64(h.Sum64() >> 1)
	return f
}

// workloadNames is the sweep order of the paper's three studies plus
// the stencil and served-traffic KV extension families.
var workloadNames = []string{"cg", "mm", "mc", "stencil", "kvlog"}

// schemesFor returns the schemes a workload can run AND recover under.
// CG and MM pair the extended (algorithm-directed) implementation with
// a single algo scheme: their algorithm-directed design has no
// flush-policy variants (FlushPolicy only differentiates MC and the
// stencil), and the campaign's System axis already covers both
// platforms, so listing algo-NVM/DRAM too would re-run an identical
// configuration under a different label. MC selects its mechanism
// entirely through the scheme, so it sweeps all algo variants including
// the rejected index-only and every-iteration designs; the stencil does
// the same minus the redundant algo-NVM/DRAM label.
func schemesFor(workload string) []string {
	conventional := []string{
		engine.SchemeNative, engine.SchemeCkptHDD, engine.SchemeCkptNVM,
		engine.SchemeCkptHetero, engine.SchemePMEM,
	}
	switch workload {
	case "mc":
		return append(conventional,
			engine.SchemeAlgoNVM, engine.SchemeAlgoHetero,
			engine.SchemeAlgoNaive, engine.SchemeAlgoEvery)
	case "stencil", "kvlog":
		return append(conventional,
			engine.SchemeAlgoNVM, engine.SchemeAlgoNaive, engine.SchemeAlgoEvery)
	default:
		return append(conventional, engine.SchemeAlgoNVM)
	}
}

// systems is the sweep order of the paper's two platforms. Every cell
// runs on both, regardless of the scheme's paper pairing — the campaign
// is a grid, not the seven-case comparison.
var systems = []crash.SystemKind{crash.NVMOnly, crash.Hetero}

// faultAxis is one resolved entry of the fault-model sweep axis.
type faultAxis struct {
	name  string // canonical name; "" for fail-stop (legacy cell keys)
	model crash.FaultModel
}

// faultModels resolves Config.FaultModels into the swept axis,
// deduplicating by canonical name and preserving first-mention order.
// An empty config sweeps fail-stop only.
func (c Config) faultModels() ([]faultAxis, error) {
	if len(c.FaultModels) == 0 {
		return []faultAxis{{}}, nil
	}
	var out []faultAxis
	seen := map[crash.FaultKind]bool{}
	for _, name := range c.FaultModels {
		fm, err := crash.ParseFaultModel(name)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		if seen[fm.Kind] {
			continue
		}
		seen[fm.Kind] = true
		ax := faultAxis{model: fm}
		if fm.Kind != crash.FailStop {
			ax.name = fm.Kind.String()
		}
		out = append(out, ax)
	}
	return out, nil
}

// CellKeys enumerates the config's sweep grid in deterministic order,
// returning each cell's CellReport.Key ("workload/scheme@system"). It
// validates workload and scheme names exactly like Run, so a service
// can size and reject a campaign before starting it.
func (c Config) CellKeys() ([]string, error) {
	cells, err := c.cells()
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(cells))
	for i, cl := range cells {
		keys[i] = cl.String()
	}
	return keys, nil
}

// cells enumerates the sweep grid in deterministic order, honoring the
// config's workload/scheme filters.
func (c Config) cells() ([]cell, error) {
	inWorkloads := func(w string) bool {
		if len(c.Workloads) == 0 {
			return true
		}
		for _, x := range c.Workloads {
			if x == w {
				return true
			}
		}
		return false
	}
	inSchemes := func(s string) bool {
		if len(c.Schemes) == 0 {
			return true
		}
		for _, x := range c.Schemes {
			if x == s {
				return true
			}
		}
		return false
	}
	faults, err := c.faultModels()
	if err != nil {
		return nil, err
	}
	var out []cell
	for _, w := range workloadNames {
		if !inWorkloads(w) {
			continue
		}
		// The workload's built-in grid, plus any explicitly named
		// scheme outside it (custom schemes from the config's
		// registry), in the order they were named.
		candidates := schemesFor(w)
		builtin := map[string]bool{}
		for _, name := range candidates {
			builtin[name] = true
		}
		for _, name := range c.Schemes {
			if !builtin[name] {
				candidates = append(candidates, name)
				builtin[name] = true
			}
		}
		for _, name := range candidates {
			if !inSchemes(name) {
				continue
			}
			sc, ok := c.registry().Lookup(name)
			if !ok {
				return nil, fmt.Errorf("campaign: unknown scheme %q", name)
			}
			for _, sys := range systems {
				for _, fa := range faults {
					out = append(out, cell{
						Workload: w, Scheme: sc, System: sys,
						Fault: fa.model, FaultName: fa.name,
					})
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: no cells match workloads=%v schemes=%v", c.Workloads, c.Schemes)
	}
	return out, nil
}

// newMachine builds one injection platform: per-cell system kind, the
// campaign LLC, defaults elsewhere. eADR cells run with flush-free
// pricing — the cost half of the platform; the crash-time drain is the
// fault model's overlay. FlushFree changes only the simulated clock,
// never the access stream, so crash-point spaces stay comparable
// across fault models.
func (c cell) newMachine() *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: c.System,
		Cache: cache.Config{
			SizeBytes:         campaignLLCBytes,
			LineBytes:         64,
			Assoc:             16,
			HitNS:             4,
			FlushChargesClean: true,
			PrefetchStreams:   16,
			FlushFree:         c.Fault.Kind == crash.EADR,
		},
	})
}

// cellAssets holds the expensive pure inputs of a workload — the
// generated CG matrix and the MM verification oracle. They depend only
// on the workload name and the campaign scale, so one instance per
// workload is computed up front and shared read-only by every cell and
// injection.
type cellAssets struct {
	cgA      *sparse.CSR
	mmWant   *dense.Matrix
	heatWant []float64
	kvWant   map[int64]int64
}

// newAssets precomputes a workload's shared inputs.
func newAssets(workload string, cfg Config) *cellAssets {
	as := &cellAssets{}
	switch workload {
	case "cg":
		as.cgA = sparse.GenSPD(cfg.scaleInt(1200, 300), 9, 11)
	case "mm":
		as.mmWant = core.MMWant(mmOpts(cfg))
	case "stencil":
		as.heatWant = stencil.Want(heatOpts(cfg))
	case "kvlog":
		as.kvWant = kvlog.Oracle(kvlogOpts(cfg))
	}
	return as
}

// mmOpts is the MM configuration at the campaign scale.
func mmOpts(cfg Config) core.MMOptions {
	const k = 16
	return core.MMOptions{N: k * cfg.scaleInt(8, 3), K: k, Seed: 12}
}

// heatOpts is the stencil configuration at the campaign scale. At scale
// 1.0 the plane history (~1 MB) straddles the campaign LLC, so both
// evicted-and-persistent and cache-resident-and-lost planes appear in
// the sweep.
func heatOpts(cfg Config) stencil.Options {
	return stencil.Options{N: cfg.scaleInt(96, 32), MaxIter: 12, Seed: 21}
}

// kvlogOpts is the KV-store configuration at the campaign scale. The
// store (index + log, ~25 KB at scale 1.0) stays LLC-resident, which is
// exactly the regime where the naive index-only design loses its
// unflushed log records.
func kvlogOpts(cfg Config) kvlog.Options {
	return kvlog.Options{Requests: cfg.scaleInt(600, 120), KeySpace: 128, ScanLen: 8, CkptEvery: 16, Seed: 33}
}

// newWorkload builds a fresh workload instance for one injection of the
// cell. Sizes scale with the campaign scale; seeds are fixed, so the
// only varying coordinate of an injection is its crash point.
func (c cell) newWorkload(cfg Config, as *cellAssets) engine.Workload {
	algo := c.Scheme.Kind() == engine.KindAlgo
	switch c.Workload {
	case "cg":
		opts := core.CGOptions{MaxIter: 15, Seed: 11}
		if algo {
			return &core.CGWorkload{A: as.cgA, Opts: opts}
		}
		return &core.BaselineCGWorkload{A: as.cgA, Opts: opts, Scheme: c.Scheme}
	case "mm":
		opts := mmOpts(cfg)
		if algo {
			return &core.MMWorkload{Opts: opts, Want: as.mmWant}
		}
		return &core.BaselineMMWorkload{Opts: opts, Want: as.mmWant, Scheme: c.Scheme}
	case "mc":
		return &core.MCWorkload{
			Cfg: mc.Config{
				Nuclides:         16,
				PointsPerNuclide: 128,
				Lookups:          cfg.scaleInt(20_000, 2500),
				Seed:             42,
			},
			Scheme: c.Scheme,
		}
	case "stencil":
		opts := heatOpts(cfg)
		if algo {
			return &stencil.HeatWorkload{Opts: opts, Want: as.heatWant, Scheme: c.Scheme}
		}
		return &stencil.BaselineWorkload{Opts: opts, Want: as.heatWant, Scheme: c.Scheme}
	case "kvlog":
		opts := kvlogOpts(cfg)
		if algo {
			return &kvlog.StoreWorkload{Opts: opts, Want: as.kvWant, Scheme: c.Scheme}
		}
		return &kvlog.BaselineWorkload{Opts: opts, Want: as.kvWant, Scheme: c.Scheme}
	default:
		panic(fmt.Sprintf("campaign: unknown workload %q", c.Workload))
	}
}

// InjectionRow is the outcome of one crash point — the unit record the
// campaign aggregates into CellReports and streams to Config.Sink.
type InjectionRow struct {
	// Outcome classifies the injection's end state.
	Outcome Outcome
	// CrashOps is the memory-operation count the crash fired at.
	CrashOps int64
	// ReworkOps counts ops redone beyond the not-yet-executed remainder
	// (the recomputation the scheme forced).
	ReworkOps int64
	// FlushLines counts cache-line flushes issued during recovery and
	// resumption.
	FlushLines int64
	// RecoverSimNS and ResumeSimNS are the simulated time spent in
	// post-crash detection/restore and in re-execution.
	RecoverSimNS int64
	ResumeSimNS  int64
}

// CellInfo identifies one sweep cell for RowSink consumers: the grid
// coordinates plus the per-cell profile constants CellReport carries.
type CellInfo struct {
	Workload   string
	Scheme     string
	System     string
	FaultModel string // "" for clean fail-stop, like CellReport
	ProfileOps int64
	GrainOps   int64
	// Injections is the number of rows that will follow before the next
	// BeginCell (the cell's scheduled crash-point count).
	Injections int
}

// RowSink receives the campaign's per-injection rows in deterministic
// order; see Config.Sink.
type RowSink interface {
	BeginCell(CellInfo)
	Row(InjectionRow)
}

// plan is one cell with its shared assets and enumerated crash points.
type plan struct {
	Cell    cell
	Assets  *cellAssets
	Profile crash.RunProfile
	Points  []crash.CrashPoint
}

// info renders the plan's coordinates and constants for RowSinks.
func (p plan) info() CellInfo {
	return CellInfo{
		Workload:   p.Cell.Workload,
		Scheme:     p.Cell.Scheme.Name(),
		System:     p.Cell.System.String(),
		FaultModel: p.Cell.FaultName,
		ProfileOps: p.Profile.Ops,
		GrainOps:   p.Profile.MainTriggerOps(),
		Injections: len(p.Points),
	}
}

// job is one injection task of the flattened sweep.
type job struct {
	PlanIdx int
	Point   crash.CrashPoint
}

// Run executes the campaign and returns its aggregated report.
// Cancelling ctx stops the dispatch of queued injections and surfaces
// ctx.Err(); a cancelled campaign returns no report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	grid, err := cfg.cells()
	if err != nil {
		return nil, err
	}
	// Cells checkpointed by a previous run are spliced into the final
	// report as-is; only the remainder executes.
	var cells []cell
	var restored []CellReport
	for _, cl := range grid {
		if cr, ok := cfg.Completed[cl.String()]; ok {
			restored = append(restored, cr)
			continue
		}
		cells = append(cells, cl)
	}
	if cfg.Sink != nil && len(restored) > 0 {
		return nil, fmt.Errorf("campaign: Sink cannot be combined with %d Completed cells: restored aggregates carry no per-injection rows", len(restored))
	}
	perCell := cfg.perCell()
	cfg.logf("campaign: %d cells x %d injections at scale %g",
		len(cells), perCell, cfg.scale())
	if len(restored) > 0 {
		cfg.logf("campaign: %d of %d cells restored from checkpoints", len(restored), len(grid))
	}

	// Shared per-workload inputs (CG matrix, MM oracle), computed once.
	assets := map[string]*cellAssets{}
	for _, cl := range cells {
		if assets[cl.Workload] == nil {
			assets[cl.Workload] = newAssets(cl.Workload, cfg)
		}
	}

	// Stage 1: profile each cell once to learn its crash-point space,
	// then enumerate the cell's seeded points.
	var observeProfile func(i int, p plan, err error)
	if cfg.Events != nil {
		observeProfile = func(i int, _ plan, _ error) {
			cfg.Events.Emit(engine.Progress{Stage: "campaign/profile", Done: i + 1, Total: len(cells)})
		}
	}
	plans, err := engine.RunCasesObserved(ctx, cfg.Parallel, len(cells), func(i int) (plan, error) {
		cl := cells[i]
		as := assets[cl.Workload]
		m := cl.newMachine()
		em := crash.NewEmulator(m)
		w := cl.newWorkload(cfg, as)
		if err := w.Prepare(m, em); err != nil {
			return plan{}, fmt.Errorf("campaign: %s: %w", cl, err)
		}
		prof := em.Profile(func() { w.Run(w.Start()) })
		if prof.Ops == 0 {
			return plan{}, fmt.Errorf("campaign: %s: profile saw no memory operations", cl)
		}
		if err := w.Verify(); err != nil {
			return plan{}, fmt.Errorf("campaign: %s: crash-free run failed verification: %w", cl, err)
		}
		cfg.logf("campaign: %s profile: %d ops, %d trigger names", cl, prof.Ops, len(prof.Triggers))
		return plan{Cell: cl, Assets: as, Profile: prof, Points: prof.Points(perCell, cl.seed(cfg.Seed))}, nil
	}, observeProfile)
	if err != nil {
		return nil, err
	}

	// Stage 2: execute the injections. Both engines produce one
	// injection per (cell, point) in plan-major point order and account
	// wall-clock cost per cell; the aggregation below cannot tell them
	// apart — the report is byte-identical across engines and pool
	// widths.
	var jobs []job
	for pi, p := range plans {
		for _, pt := range p.Points {
			jobs = append(jobs, job{PlanIdx: pi, Point: pt})
		}
	}
	cellWallNS := make([]int64, len(plans))
	var results []InjectionRow
	if cfg.Replay {
		results, err = runReplay(ctx, cfg, plans, jobs, cellWallNS)
	} else {
		results, err = runLegacy(ctx, cfg, plans, jobs, cellWallNS)
	}
	if err != nil {
		return nil, err
	}

	// Stage 3: aggregate per cell and splice in checkpointed cells.
	rep := &Report{Schema: SchemaVersion, Scale: cfg.scale(), Seed: cfg.Seed}
	byPlan := make([]CellReport, 0, len(plans)+len(restored))
	off := 0
	for pi, p := range plans {
		byPlan = append(byPlan, aggregateCell(p, results[off:off+len(p.Points)], cellWallNS[pi]))
		off += len(p.Points)
	}
	byPlan = append(byPlan, restored...)
	for i := range byPlan {
		rep.Injections += byPlan[i].Injections
	}
	rep.Cells = byPlan
	SortCells(rep.Cells)
	return rep, nil
}

// aggregateCell folds one cell's injections into its CellReport via
// the shared CellReport.Add/Finalize path. It is the single aggregation
// route — stage 3, the OnCell checkpoint hook, and (through the same
// Add/Finalize methods) the result-store query layer all use it — so a
// checkpointed or store-rebuilt cell report is identical to the one an
// uninterrupted run assembles.
func aggregateCell(p plan, inj []InjectionRow, wallNS int64) CellReport {
	cr := CellReport{
		Workload:   p.Cell.Workload,
		Scheme:     p.Cell.Scheme.Name(),
		System:     p.Cell.System.String(),
		FaultModel: p.Cell.FaultName,
		ProfileOps: p.Profile.Ops,
		GrainOps:   p.Profile.MainTriggerOps(),
	}
	for _, r := range inj {
		cr.Add(r)
	}
	cr.Finalize(wallNS)
	return cr
}

// runLegacy is the per-injection engine: every (cell, point) job runs
// the workload from op 0 on a fresh machine. Jobs fan through the
// bounded pool independently; collection by index keeps the aggregation
// byte-identical for any pool width.
func runLegacy(ctx context.Context, cfg Config, plans []plan, jobs []job, cellWallNS []int64) ([]InjectionRow, error) {
	var observe func(i int, inj InjectionRow, err error)
	if cfg.Events != nil || cfg.OnCell != nil || cfg.Sink != nil {
		var cellBuf []InjectionRow
		observe = func(i int, inj InjectionRow, _ error) {
			pi := jobs[i].PlanIdx
			if cfg.Sink != nil {
				// Jobs are plan-major, so a plan-index change (or i == 0)
				// opens the cell; the sink sees exactly the grid-order
				// BeginCell/Row sequence the replay engine emits.
				if i == 0 || jobs[i-1].PlanIdx != pi {
					cfg.Sink.BeginCell(plans[pi].info())
				}
				cfg.Sink.Row(inj)
			}
			if cfg.Events != nil {
				cfg.Events.Emit(engine.InjectionDone{
					Cell:    plans[pi].Cell.String(),
					Index:   i,
					Total:   len(jobs),
					Outcome: inj.Outcome.String(),
				})
			}
			if cfg.OnCell == nil {
				return
			}
			// Jobs are plan-major and observed in strict index order, so
			// the last job of a plan closes the cell: every injection of
			// the cell has been collected and its wall accounting is
			// final.
			cellBuf = append(cellBuf, inj)
			if i+1 == len(jobs) || jobs[i+1].PlanIdx != pi {
				cfg.OnCell(aggregateCell(plans[pi], cellBuf, atomic.LoadInt64(&cellWallNS[pi])))
				cellBuf = cellBuf[:0]
			}
		}
	}
	return engine.RunCasesObserved(ctx, cfg.Parallel, len(jobs), func(i int) (InjectionRow, error) {
		p := plans[jobs[i].PlanIdx]
		start := time.Now()
		inj := runInjection(cfg, p, jobs[i].Point)
		atomic.AddInt64(&cellWallNS[jobs[i].PlanIdx], time.Since(start).Nanoseconds())
		return inj, nil
	}, observe)
}

// runReplay is the snapshot/fork engine: each cell executes once — a
// recording run capturing a machine snapshot at every scheduled crash
// point — and recovery runs on forks restored from those snapshots.
// Snapshots deduplicate into post-crash equivalence classes (Crash
// erases all volatile state, so two points whose persistent images and
// auxiliary state match crash into identical machines), and one fork
// per class serves every member point. Cells fan through the bounded
// pool; within a cell the work is sequential, bounding resident
// snapshot memory to roughly the pool width times the per-cell class
// count.
func runReplay(ctx context.Context, cfg Config, plans []plan, jobs []job, cellWallNS []int64) ([]InjectionRow, error) {
	// Global injection indices of each plan's first point, so replay
	// events carry the same Index/Total coordinates as legacy ones.
	offset := make([]int, len(plans)+1)
	for pi, p := range plans {
		offset[pi+1] = offset[pi] + len(p.Points)
	}
	var observe func(i int, inj []InjectionRow, err error)
	if cfg.Events != nil || cfg.OnCell != nil || cfg.Sink != nil {
		observe = func(i int, inj []InjectionRow, _ error) {
			if cfg.Sink != nil {
				cfg.Sink.BeginCell(plans[i].info())
				for _, r := range inj {
					cfg.Sink.Row(r)
				}
			}
			if cfg.Events != nil {
				cfg.Events.Emit(engine.Progress{Stage: "campaign/record", Done: i + 1, Total: len(plans)})
				for j, r := range inj {
					cfg.Events.Emit(engine.InjectionDone{
						Cell:    plans[i].Cell.String(),
						Index:   offset[i] + j,
						Total:   len(jobs),
						Outcome: r.Outcome.String(),
					})
				}
			}
			if cfg.OnCell != nil {
				cfg.OnCell(aggregateCell(plans[i], inj, atomic.LoadInt64(&cellWallNS[i])))
			}
		}
	}
	perCell, err := engine.RunCasesObserved(ctx, cfg.Parallel, len(plans), func(i int) ([]InjectionRow, error) {
		start := time.Now()
		inj := runCellReplay(cfg, plans[i])
		atomic.AddInt64(&cellWallNS[i], time.Since(start).Nanoseconds())
		return inj, nil
	}, observe)
	if err != nil {
		return nil, err
	}
	results := make([]InjectionRow, 0, len(jobs))
	for _, inj := range perCell {
		results = append(results, inj...)
	}
	return results, nil
}

// snapClass is one post-crash equivalence class of a cell's crash
// points: the representative crash snapshot and the indices (into the
// cell's point list) it stands for.
type snapClass struct {
	state  *crash.CrashState
	points []int
}

// classResult is the point-independent part of a fork's outcome. All
// cost fields are simulated-clock deltas, so they are identical for
// every point of the class even though the members' absolute crash
// times differ.
type classResult struct {
	prepErr    bool
	recoverErr bool
	resumeErr  bool
	verifyFail bool
	flushes    int64
	recoverNS  int64
	resumeNS   int64
	resumeOps  int64
}

// runCellReplay executes one cell under the snapshot/fork engine and
// returns its injections in point order.
func runCellReplay(cfg Config, p plan) []InjectionRow {
	injections := make([]InjectionRow, len(p.Points))
	m := p.Cell.newMachine()
	em := crash.NewEmulator(m)
	w := p.Cell.newWorkload(cfg, p.Assets)
	if err := w.Prepare(m, em); err != nil {
		for i := range injections {
			injections[i] = InjectionRow{Outcome: OutcomeUnrecoverable}
		}
		return injections
	}

	// Recording run: pause at every scheduled point, capture the
	// post-crash state, and deduplicate into equivalence classes keyed
	// on (persistent images, auxiliary state, fault overlay) — the only
	// state a faulted crash preserves. Three tiers of sharing: a version
	// compare (StateVersion) proves in O(1) that nothing persistent
	// changed since the previous point, so runs of points between
	// writebacks share one class without even snapshotting — but ONLY
	// under fail-stop, because a fault overlay also depends on volatile
	// cache state and the point seed, which no version counter tracks;
	// when the version did move (or a fault model is active),
	// CrashSnapshotFault copies only the regions and aux components
	// whose own counters moved (copy-on-write against the previous
	// capture) and attaches the point's overlay; and an FNV prefilter —
	// overlay mixed in — avoids most content comparisons when merging
	// against older classes.
	fm := p.Cell.fault(cfg.Seed)
	var classes []*snapClass
	byHash := map[uint64][]int{}
	captured := make([]bool, len(p.Points))
	crashOps := make([]int64, len(p.Points))
	lastClass, lastVer := -1, uint64(0)
	var prev *crash.CrashState
	em.Record(func() { w.Run(w.Start()) }, p.Points, func(pi int) {
		captured[pi] = true
		crashOps[pi] = em.OpCount()
		if fm.Kind == crash.FailStop {
			if ver := m.StateVersion(); lastClass >= 0 && ver == lastVer {
				classes[lastClass].points = append(classes[lastClass].points, pi)
				return
			} else {
				lastVer = ver
			}
		}
		// The overlay error is impossible for the built-in models the
		// campaign sweeps (no explicit permutation); an inapplicable
		// model would degrade to its fail-stop capture, exactly like the
		// legacy engine's fallback.
		st, _ := m.CrashSnapshotFault(prev, fm, em.OpCount())
		prev = st
		for _, ci := range byHash[st.Hash()] {
			c := classes[ci]
			if c.state.Equal(st) {
				c.points = append(c.points, pi)
				lastClass = ci
				return
			}
		}
		classes = append(classes, &snapClass{state: st, points: []int{pi}})
		byHash[st.Hash()] = append(byHash[st.Hash()], len(classes)-1)
		lastClass = len(classes) - 1
	})

	// One fork per class on a single reused fork machine; expand each
	// result to every member point.
	f := newForker(cfg, p)
	for _, c := range classes {
		res := f.run(c.state)
		for _, pi := range c.points {
			injections[pi] = expandInjection(res, crashOps[pi], p)
		}
	}
	// Points the recording run never reached mirror the legacy engine's
	// unfired-crash outcome.
	for pi, ok := range captured {
		if !ok {
			injections[pi] = InjectionRow{Outcome: OutcomeNoCrash}
		}
	}
	return injections
}

// forker replays all of one cell's crash classes on a single reused
// machine. The cell's machine, emulator, and workload are constructed
// once — Prepare runs under a null accessor, since every fork's restore
// overwrites everything Prepare computes — and each class run then
// costs only a (memoized, copy-on-write) post-crash restore plus the
// recovery/resume/verify the legacy engine would also pay.
type forker struct {
	p       plan
	m       *crash.Machine
	em      *crash.Emulator
	w       engine.Workload
	prepErr bool
}

func newForker(cfg Config, p plan) *forker {
	f := &forker{p: p}
	f.m = p.Cell.newMachine()
	f.em = crash.NewEmulator(f.m)
	f.w = p.Cell.newWorkload(cfg, p.Assets)
	acc := f.m.Heap.Accessor()
	f.m.Heap.SetAccessor(mem.NullAccessor{})
	err := f.w.Prepare(f.m, f.em)
	f.m.Heap.SetAccessor(acc)
	f.prepErr = err != nil
	return f
}

// run replays one equivalence class: restore the captured post-crash
// state and run recovery/resume/verify exactly as the legacy engine
// does after its crash returns. All cost fields are simulated-clock
// deltas, so the fork machine's absolute clock position is irrelevant.
func (f *forker) run(st *crash.CrashState) classResult {
	var res classResult
	if f.prepErr {
		res.prepErr = true
		return res
	}
	m, em, w := f.m, f.em, f.w
	m.RestoreCrash(st)
	flushes0 := m.LLC.Stats().Flushes

	recStart := m.Clock.Now()
	from, err := safeRecover(w)
	res.recoverNS = m.Clock.Since(recStart)
	if err != nil {
		res.recoverErr = true
		return res
	}

	resStart := m.Clock.Now()
	crashedAgain, err := safeResume(em, w, from)
	res.resumeNS = m.Clock.Since(resStart)
	res.flushes = m.LLC.Stats().Flushes - flushes0
	res.resumeOps = em.OpCount()
	if err != nil || crashedAgain {
		res.resumeErr = true
		return res
	}
	if err := safeVerify(w); err != nil {
		res.verifyFail = true
	}
	return res
}

// expandInjection specializes a class result to one member point,
// mirroring runInjection's classification field for field: the only
// point-dependent inputs are the crash op count and the rework derived
// from it.
func expandInjection(res classResult, crashOps int64, p plan) InjectionRow {
	var inj InjectionRow
	if res.prepErr {
		inj.Outcome = OutcomeUnrecoverable
		return inj
	}
	inj.CrashOps = crashOps
	inj.RecoverSimNS = res.recoverNS
	if res.recoverErr {
		inj.Outcome = OutcomeUnrecoverable
		return inj
	}
	inj.ResumeSimNS = res.resumeNS
	inj.FlushLines = res.flushes
	remaining := p.Profile.Ops - inj.CrashOps
	if rework := res.resumeOps - remaining; rework > 0 {
		inj.ReworkOps = rework
	}
	if res.resumeErr {
		inj.Outcome = OutcomeUnrecoverable
		return inj
	}
	if res.verifyFail {
		inj.Outcome = OutcomeCorrupt
		return inj
	}
	if inj.ReworkOps <= 2*p.Profile.MainTriggerOps() {
		inj.Outcome = OutcomeClean
	} else {
		inj.Outcome = OutcomeRecomputed
	}
	return inj
}

// runInjection executes one crash point on a fresh machine: run to the
// crash, recover under the cell's scheme, resume with op counting, and
// verify. Panics in recovery or resumption are contained and classified
// as unrecoverable — a campaign survives pathological injections.
func runInjection(cfg Config, p plan, pt crash.CrashPoint) InjectionRow {
	var inj InjectionRow
	m := p.Cell.newMachine()
	em := crash.NewEmulator(m)
	w := p.Cell.newWorkload(cfg, p.Assets)
	if err := w.Prepare(m, em); err != nil {
		inj.Outcome = OutcomeUnrecoverable
		return inj
	}
	if err := em.SetFault(p.Cell.fault(cfg.Seed)); err != nil {
		// Unreachable for the parsed built-in models, but a malformed
		// model must classify, not panic.
		inj.Outcome = OutcomeUnrecoverable
		return inj
	}
	em.Arm(pt)
	if !em.Run(func() { w.Run(w.Start()) }) {
		inj.Outcome = OutcomeNoCrash
		return inj
	}
	inj.CrashOps = em.CrashOps()
	flushes0 := m.LLC.Stats().Flushes

	// Post-crash detection/restore under the scheme.
	recStart := m.Clock.Now()
	from, err := safeRecover(w)
	inj.RecoverSimNS = m.Clock.Since(recStart)
	if err != nil {
		inj.Outcome = OutcomeUnrecoverable
		return inj
	}

	// Resume with the emulator disarmed but still counting ops: the
	// count is the rework the scheme forced.
	em.Disarm()
	resStart := m.Clock.Now()
	crashedAgain, err := safeResume(em, w, from)
	inj.ResumeSimNS = m.Clock.Since(resStart)
	inj.FlushLines = m.LLC.Stats().Flushes - flushes0
	remaining := p.Profile.Ops - inj.CrashOps
	if rework := em.OpCount() - remaining; rework > 0 {
		inj.ReworkOps = rework
	}
	if err != nil || crashedAgain {
		inj.Outcome = OutcomeUnrecoverable
		return inj
	}

	if err := safeVerify(w); err != nil {
		inj.Outcome = OutcomeCorrupt
		return inj
	}
	// Clean if the forced rework stayed within ~one main-loop iteration
	// (plus one iteration of slack for partially re-executed work).
	if inj.ReworkOps <= 2*p.Profile.MainTriggerOps() {
		inj.Outcome = OutcomeClean
	} else {
		inj.Outcome = OutcomeRecomputed
	}
	return inj
}

// safeRecover calls w.Recover, converting panics into errors.
func safeRecover(w engine.Workload) (from int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovery panic: %v", r)
		}
	}()
	return w.Recover()
}

// safeResume completes the computation from the recovery token inside
// the emulator (for op counting), converting panics into errors.
func safeResume(em *crash.Emulator, w engine.Workload, from int64) (crashed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("resume panic: %v", r)
		}
	}()
	return em.Run(func() { w.Run(from) }), nil
}

// safeVerify calls w.Verify, converting panics into errors.
func safeVerify(w engine.Workload) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("verify panic: %v", r)
		}
	}()
	return w.Verify()
}
