package campaign

import (
	"context"
	"testing"
)

// kvlogConfig is a CI-sized kvlog-only campaign.
func kvlogConfig(parallel int, seed int64) Config {
	return Config{
		Scale:     0.02,
		Seed:      seed,
		Parallel:  parallel,
		PerCell:   6,
		Workloads: []string{"kvlog"},
	}
}

// TestKVLogGridOutcomes asserts the acceptance contract of the
// served-traffic KV family: the algorithm-directed log-replay scheme
// recovers from every injected fail-stop crash point, while the naive
// index-only design (mark flushed, records not) silently corrupts the
// served state — the Figure 10 bias on the new workload class.
func TestKVLogGridOutcomes(t *testing.T) {
	rep, err := Run(context.Background(), kvlogConfig(4, 0))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 8 schemes x 2 systems.
	if len(rep.Cells) != 16 {
		t.Fatalf("kvlog grid has %d cells, want 16", len(rep.Cells))
	}
	naiveCorrupt := 0
	for _, c := range rep.Cells {
		if c.Workload != "kvlog" {
			t.Fatalf("unexpected workload %q in kvlog-only sweep", c.Workload)
		}
		if got := c.Clean + c.Recomputed + c.Corrupt + c.Unrecoverable + c.NoCrash; got != c.Injections {
			t.Errorf("%s/%s@%s: outcomes sum to %d, want %d", c.Workload, c.Scheme, c.System, got, c.Injections)
		}
		switch c.Scheme {
		case "algo-NVM-only", "algo-every-iter":
			if c.Failures() != 0 {
				t.Errorf("%s@%s: %d failures, want 0 (log replay must rebuild the index everywhere)",
					c.Scheme, c.System, c.Failures())
			}
		case "algo-naive":
			naiveCorrupt += c.Corrupt
		default:
			// Conventional mechanisms must also recover: checkpoints
			// restore index+log+mark together, PMEM rolls the torn
			// request back, native replays the stream from scratch.
			if c.Unrecoverable != 0 || c.Corrupt != 0 {
				t.Errorf("%s@%s: %d corrupt, %d unrecoverable, want 0",
					c.Scheme, c.System, c.Corrupt, c.Unrecoverable)
			}
		}
	}
	if naiveCorrupt == 0 {
		t.Error("algo-naive produced no silent corruption; the bias canary is gone")
	}
}

// TestKVLogReplayDifferential asserts the kvlog family satisfies the
// replay engine's contract: the snapshot/fork engine produces the exact
// bytes of the legacy engine, serial and wide.
func TestKVLogReplayDifferential(t *testing.T) {
	legacy, err := Run(context.Background(), kvlogConfig(1, 9))
	if err != nil {
		t.Fatalf("legacy Run: %v", err)
	}
	lb, err := legacy.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	for _, parallel := range []int{1, 8} {
		cfg := kvlogConfig(parallel, 9)
		cfg.Replay = true
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("replay Run(parallel=%d): %v", parallel, err)
		}
		rb, err := rep.EncodeJSON()
		if err != nil {
			t.Fatalf("EncodeJSON: %v", err)
		}
		if string(rb) != string(lb) {
			t.Fatalf("replay(parallel=%d) differs from legacy:\nlegacy:\n%s\nreplay:\n%s", parallel, lb, rb)
		}
	}
}

// TestKVLogFaultModels sweeps the kvlog grid under a non-fail-stop
// fault model through both engines: reports must stay byte-identical,
// and the full log-replay protocol must never serve corruption silently
// (torn or dropped log bytes surface as detected Unrecoverable, not
// Corrupt).
func TestKVLogFaultModels(t *testing.T) {
	cfg := kvlogConfig(4, 5)
	cfg.FaultModels = []string{"failstop", "torn"}
	legacy, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("legacy Run: %v", err)
	}
	rcfg := cfg
	rcfg.Replay = true
	replay, err := Run(context.Background(), rcfg)
	if err != nil {
		t.Fatalf("replay Run: %v", err)
	}
	lb, _ := legacy.EncodeJSON()
	rb, _ := replay.EncodeJSON()
	if string(lb) != string(rb) {
		t.Fatalf("fault-model replay differs from legacy:\nlegacy:\n%s\nreplay:\n%s", lb, rb)
	}
	for _, c := range legacy.Cells {
		if c.Scheme == "algo-NVM-only" && c.Corrupt != 0 {
			t.Errorf("%s@%s fault=%q: %d silent corruptions; the full protocol must detect, not serve",
				c.Scheme, c.System, c.FaultModel, c.Corrupt)
		}
	}
}
