package campaign

import (
	"context"
	"encoding/json"
	"testing"
)

// runWithHooks executes cfg collecting every OnCell checkpoint.
func runWithHooks(t *testing.T, cfg Config) (*Report, []CellReport) {
	t.Helper()
	var cells []CellReport
	cfg.OnCell = func(c CellReport) { cells = append(cells, c) }
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep, cells
}

// TestOnCellMatchesReport asserts the checkpoint hook contract on both
// engines: one callback per cell, in deterministic grid order, carrying
// exactly the CellReport the final report aggregates.
func TestOnCellMatchesReport(t *testing.T) {
	for _, replay := range []bool{false, true} {
		for _, parallel := range []int{1, 4} {
			cfg := tinyConfig(parallel)
			cfg.Replay = replay
			rep, cells := runWithHooks(t, cfg)
			if len(cells) != len(rep.Cells) {
				t.Fatalf("replay=%v parallel=%d: %d OnCell calls, want %d",
					replay, parallel, len(cells), len(rep.Cells))
			}
			keys, err := cfg.CellKeys()
			if err != nil {
				t.Fatalf("CellKeys: %v", err)
			}
			byKey := map[string]CellReport{}
			for _, c := range rep.Cells {
				byKey[c.Key()] = c
			}
			for i, c := range cells {
				if c.Key() != keys[i] {
					t.Errorf("replay=%v: OnCell #%d = %q, want grid order %q", replay, i, c.Key(), keys[i])
				}
				want := byKey[c.Key()]
				// The wall measurement is host noise; canonical fields
				// must match exactly.
				c.WallNSPerInjection, want.WallNSPerInjection = 0, 0
				if c != want {
					t.Errorf("replay=%v: OnCell %s = %+v, want %+v", replay, c.Key(), c, want)
				}
			}
		}
	}
}

// TestResumeFromCheckpoints asserts that a campaign resumed from any
// subset of checkpointed cells — round-tripped through JSON, as a
// service persisting shards would — produces a byte-identical report,
// and that a fully checkpointed campaign does no sweep work at all.
func TestResumeFromCheckpoints(t *testing.T) {
	base := tinyConfig(2)
	full, cells := runWithHooks(t, base)
	want, err := full.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}

	for _, keep := range []int{1, len(cells) / 2, len(cells)} {
		cfg := tinyConfig(2)
		cfg.Completed = map[string]CellReport{}
		for _, c := range cells[:keep] {
			// Round-trip through JSON: WallNSPerInjection is dropped,
			// like a shard file written by adccd.
			b, err := json.Marshal(c)
			if err != nil {
				t.Fatal(err)
			}
			var back CellReport
			if err := json.Unmarshal(b, &back); err != nil {
				t.Fatal(err)
			}
			cfg.Completed[back.Key()] = back
		}
		var fresh []CellReport
		cfg.OnCell = func(c CellReport) { fresh = append(fresh, c) }
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("resume with %d checkpoints: %v", keep, err)
		}
		got, err := rep.EncodeJSON()
		if err != nil {
			t.Fatalf("EncodeJSON: %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("resume with %d checkpoints: report differs from uninterrupted run\ngot:\n%s\nwant:\n%s", keep, got, want)
		}
		if len(fresh) != len(cells)-keep {
			t.Errorf("resume with %d checkpoints: %d cells re-executed, want %d", keep, len(fresh), len(cells)-keep)
		}
	}
}

// TestCellKeys checks grid enumeration order and name validation.
func TestCellKeys(t *testing.T) {
	keys, err := tinyConfig(1).CellKeys()
	if err != nil {
		t.Fatalf("CellKeys: %v", err)
	}
	if len(keys) == 0 {
		t.Fatal("CellKeys returned an empty grid")
	}
	if keys[0] != "mm/native@NVM-only" {
		t.Errorf("first key = %q, want mm/native@NVM-only", keys[0])
	}
	bad := tinyConfig(1)
	bad.Schemes = []string{"no-such-scheme"}
	if _, err := bad.CellKeys(); err == nil {
		t.Error("CellKeys accepted an unknown scheme")
	}
}
