package campaign

import (
	"context"
	"testing"

	"adcc/internal/crash"
)

// fullGridConfig covers every workload, scheme, and system at CI scale.
func fullGridConfig(parallel int, replay bool) Config {
	return Config{Scale: 0.02, Parallel: parallel, PerCell: 3, Replay: replay}
}

// TestReplayDifferential is the replay engine's contract: the
// snapshot/fork path must reproduce the legacy per-injection path
// byte-for-byte over the full workload x scheme x system grid, at any
// worker-pool width on either side.
func TestReplayDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid differential campaign in -short mode")
	}
	legacy, err := Run(context.Background(), fullGridConfig(4, false))
	if err != nil {
		t.Fatalf("legacy campaign: %v", err)
	}
	want, err := legacy.EncodeJSON()
	if err != nil {
		t.Fatalf("encode legacy: %v", err)
	}
	for _, parallel := range []int{1, 8} {
		replay, err := Run(context.Background(), fullGridConfig(parallel, true))
		if err != nil {
			t.Fatalf("replay campaign (parallel=%d): %v", parallel, err)
		}
		got, err := replay.EncodeJSON()
		if err != nil {
			t.Fatalf("encode replay: %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("replay report (parallel=%d) differs from legacy:\nlegacy:\n%s\nreplay:\n%s",
				parallel, want, got)
		}
	}
}

// TestReplayWallMetrics asserts both engines account per-cell wall
// cost: every cell of a completed campaign must report a positive
// per-injection wall time, and the bench roll-up must carry it.
func TestReplayWallMetrics(t *testing.T) {
	for _, replay := range []bool{false, true} {
		cfg := tinyConfig(2)
		cfg.Replay = replay
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("campaign (replay=%v): %v", replay, err)
		}
		for _, c := range rep.Cells {
			if c.WallNSPerInjection <= 0 {
				t.Errorf("replay=%v: cell %s/%s@%s has wall_ns_per_injection %v, want > 0",
					replay, c.Workload, c.Scheme, c.System, c.WallNSPerInjection)
			}
		}
		for _, r := range rep.BenchResults() {
			if r.WallNSPerInjection <= 0 {
				t.Errorf("replay=%v: bench row %s has wall_ns_per_injection %v, want > 0",
					replay, r.Name, r.WallNSPerInjection)
			}
		}
	}
}

// BenchmarkSnapshotFork measures the fork primitive the replay engine
// is built on: capture a copy-on-write post-crash snapshot of a mid-run
// machine, then restore it onto a reused fork machine and run full
// recovery/resume/verify.
func BenchmarkSnapshotFork(b *testing.B) {
	cfg := Config{Scale: 0.02, Workloads: []string{"mm"}}
	cells, err := cfg.cells()
	if err != nil {
		b.Fatalf("cells: %v", err)
	}
	cl := cells[0]
	as := newAssets(cl.Workload, cfg)

	// Profile on one machine, then record a mid-run snapshot on a fresh
	// one, exactly as the replay engine does.
	{
		m := cl.newMachine()
		em := crash.NewEmulator(m)
		w := cl.newWorkload(cfg, as)
		if err := w.Prepare(m, em); err != nil {
			b.Fatalf("prepare: %v", err)
		}
		prof := em.Profile(func() { w.Run(w.Start()) })
		benchPlan = plan{Cell: cl, Assets: as, Profile: prof}
	}
	m := cl.newMachine()
	em := crash.NewEmulator(m)
	w := cl.newWorkload(cfg, as)
	if err := w.Prepare(m, em); err != nil {
		b.Fatalf("prepare: %v", err)
	}
	var st *crash.CrashState
	em.Record(func() { w.Run(w.Start()) },
		[]crash.CrashPoint{{Op: benchPlan.Profile.Ops / 2}},
		func(int) { st = m.CrashSnapshot(st) })
	if st == nil {
		b.Fatal("recording run captured no snapshot")
	}

	f := newForker(cfg, benchPlan)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := f.run(st)
		if res.prepErr || res.recoverErr || res.resumeErr || res.verifyFail {
			b.Fatalf("fork failed: %+v", res)
		}
	}
}

var benchPlan plan
