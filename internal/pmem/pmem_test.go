package pmem

import (
	"testing"

	"adcc/internal/cache"
	"adcc/internal/crash"
)

func newTestMachine() *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: crash.NVMOnly,
		Cache: cache.Config{
			SizeBytes: 16 * 64 * 2,
			LineBytes: 64,
			Assoc:     2,
			HitNS:     1,
		},
	})
}

func TestCommitMakesDurable(t *testing.T) {
	m := newTestMachine()
	p := NewPool(m, 1024)
	r := m.Heap.AllocF64("data", 32)
	p.RegisterF64(r)
	for i := 0; i < 32; i++ {
		r.Set(i, 1.0)
	}
	m.LLC.WritebackAll()

	tx := p.Begin()
	for i := 0; i < 32; i++ {
		tx.SetF64(r, i, 2.0)
	}
	tx.Commit()

	// Everything must be durable: image equals live.
	for i := 0; i < 32; i++ {
		if r.Image()[i] != 2.0 {
			t.Fatalf("element %d not durable after commit: %v", i, r.Image()[i])
		}
	}
	if p.LogEntries() != 0 {
		t.Fatalf("log not truncated: %d entries", p.LogEntries())
	}
}

func TestCrashMidTxRollsBack(t *testing.T) {
	m := newTestMachine()
	e := crash.NewEmulator(m)
	p := NewPool(m, 1024)
	r := m.Heap.AllocF64("data", 32)
	p.RegisterF64(r)
	for i := 0; i < 32; i++ {
		r.Set(i, float64(i))
	}
	m.LLC.WritebackAll()

	crashed := e.Run(func() {
		tx := p.Begin()
		for i := 0; i < 32; i++ {
			tx.SetF64(r, i, -1.0)
		}
		crash.InjectCrashNow()
	})
	if !crashed {
		t.Fatal("expected crash")
	}
	rolledBack, applied := p.Recover()
	if !rolledBack || applied == 0 {
		t.Fatalf("Recover: rolledBack=%v applied=%d", rolledBack, applied)
	}
	for i := 0; i < 32; i++ {
		if got := r.Live()[i]; got != float64(i) {
			t.Fatalf("element %d = %v after rollback, want %v", i, got, float64(i))
		}
	}
}

func TestCrashAfterCommitNeedsNoRollback(t *testing.T) {
	m := newTestMachine()
	e := crash.NewEmulator(m)
	p := NewPool(m, 1024)
	r := m.Heap.AllocF64("data", 16)
	p.RegisterF64(r)
	m.LLC.WritebackAll()

	e.Run(func() {
		tx := p.Begin()
		for i := 0; i < 16; i++ {
			tx.SetF64(r, i, 3.0)
		}
		tx.Commit()
		crash.InjectCrashNow()
	})
	rolledBack, _ := p.Recover()
	if rolledBack {
		t.Fatal("rollback after a committed transaction")
	}
	for i := 0; i < 16; i++ {
		if got := r.Live()[i]; got != 3.0 {
			t.Fatalf("committed value lost: element %d = %v", i, got)
		}
	}
}

func TestTornTransactionSequence(t *testing.T) {
	// Several committed transactions, then a crash mid-transaction:
	// recovery must land on the last committed state.
	m := newTestMachine()
	e := crash.NewEmulator(m)
	p := NewPool(m, 4096)
	r := m.Heap.AllocF64("data", 64)
	p.RegisterF64(r)
	m.LLC.WritebackAll()

	e.Run(func() {
		for round := 1; round <= 3; round++ {
			tx := p.Begin()
			for i := 0; i < 64; i++ {
				tx.SetF64(r, i, float64(round))
			}
			tx.Commit()
		}
		tx := p.Begin()
		for i := 0; i < 40; i++ {
			tx.SetF64(r, i, 99.0)
		}
		crash.InjectCrashNow()
	})
	p.Recover()
	for i := 0; i < 64; i++ {
		if got := r.Live()[i]; got != 3.0 {
			t.Fatalf("element %d = %v, want 3.0 (last committed)", i, got)
		}
	}
}

func TestI64Transactions(t *testing.T) {
	m := newTestMachine()
	e := crash.NewEmulator(m)
	p := NewPool(m, 1024)
	r := m.Heap.AllocI64("counters", 8)
	p.RegisterI64(r)
	for i := 0; i < 8; i++ {
		r.Set(i, int64(-10*i))
	}
	m.LLC.WritebackAll()

	e.Run(func() {
		tx := p.Begin()
		for i := 0; i < 8; i++ {
			tx.SetI64(r, i, 7)
		}
		crash.InjectCrashNow()
	})
	p.Recover()
	for i := 0; i < 8; i++ {
		if got := r.Live()[i]; got != int64(-10*i) {
			t.Fatalf("counter %d = %d after rollback, want %d", i, got, -10*i)
		}
	}
}

func TestSnapshotDeduplication(t *testing.T) {
	m := newTestMachine()
	p := NewPool(m, 1024)
	r := m.Heap.AllocF64("data", 8) // one line
	p.RegisterF64(r)
	tx := p.Begin()
	tx.SetF64(r, 0, 1)
	tx.SetF64(r, 1, 2)
	tx.SetF64(r, 7, 3)
	if p.LogEntries() != 1 {
		t.Fatalf("log entries = %d, want 1 (same line deduplicated)", p.LogEntries())
	}
	tx.Commit()
}

func TestSnapshotPreservesFirstValue(t *testing.T) {
	// Rollback must restore the value at transaction start, not an
	// intermediate value.
	m := newTestMachine()
	e := crash.NewEmulator(m)
	p := NewPool(m, 1024)
	r := m.Heap.AllocF64("data", 8)
	p.RegisterF64(r)
	r.Set(0, 100.0)
	m.LLC.WritebackAll()

	e.Run(func() {
		tx := p.Begin()
		tx.SetF64(r, 0, 1.0)
		tx.SetF64(r, 0, 2.0)
		tx.SetF64(r, 0, 3.0)
		crash.InjectCrashNow()
	})
	p.Recover()
	if got := r.Live()[0]; got != 100.0 {
		t.Fatalf("rollback landed on %v, want 100.0", got)
	}
}

func TestStoreRangeF64(t *testing.T) {
	m := newTestMachine()
	p := NewPool(m, 1024)
	r := m.Heap.AllocF64("data", 32)
	p.RegisterF64(r)
	tx := p.Begin()
	dst := tx.StoreRangeF64(r, 8, 16)
	for i := range dst {
		dst[i] = 5.0
	}
	tx.Commit()
	for i := 8; i < 24; i++ {
		if r.Image()[i] != 5.0 {
			t.Fatalf("range store not durable at %d", i)
		}
	}
}

func TestTransactionCostsAreCharged(t *testing.T) {
	m := newTestMachine()
	p := NewPool(m, 8192)
	r := m.Heap.AllocF64("data", 512)
	p.RegisterF64(r)
	m.LLC.WritebackAll()

	// Plain write pass.
	start := m.Clock.Now()
	for i := 0; i < 512; i++ {
		r.Set(i, 1.0)
	}
	plain := m.Clock.Now() - start

	// Transactional write pass.
	start = m.Clock.Now()
	tx := p.Begin()
	for i := 0; i < 512; i++ {
		tx.SetF64(r, i, 2.0)
	}
	tx.Commit()
	transactional := m.Clock.Now() - start

	if transactional < 3*plain {
		t.Fatalf("transactional pass (%d ns) should cost several times the plain pass (%d ns)",
			transactional, plain)
	}
}

func TestNestedTxPanics(t *testing.T) {
	m := newTestMachine()
	p := NewPool(m, 64)
	p.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Begin did not panic")
		}
	}()
	p.Begin()
}

func TestUnregisteredRegionPanics(t *testing.T) {
	m := newTestMachine()
	p := NewPool(m, 64)
	r := m.Heap.AllocF64("rogue", 8)
	tx := p.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered region did not panic")
		}
	}()
	tx.SetF64(r, 0, 1)
}

func TestLogOverflowPanics(t *testing.T) {
	m := newTestMachine()
	p := NewPool(m, 8) // tiny log: one line worth
	r := m.Heap.AllocF64("data", 64)
	p.RegisterF64(r)
	tx := p.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("log overflow did not panic")
		}
	}()
	for i := 0; i < 64; i++ {
		tx.SetF64(r, i, 1)
	}
}
