// Package pmem reimplements the baseline the paper compares against in
// every runtime figure: an Intel-PMEM-library-style (libpmemobj) undo-log
// transaction system for persistent memory.
//
// Semantics follow libpmemobj: before a range is modified inside a
// transaction it is snapshotted — its old contents are appended to an
// undo log in NVM and the log entry is flushed — so that a crash in the
// middle of the transaction can roll the data back to the pre-transaction
// state. At commit every modified range is flushed to NVM and the log is
// truncated. The log append and truncate paths flush on every step,
// which is exactly why the paper measures 329% overhead for CG and
// comparable losses for MM: frequently updated data objects pay a log
// write plus ordering flushes per cache line touched.
//
// The log itself lives in simulated NVM regions, so recovery after an
// injected crash operates purely on the persistent image, like the real
// library.
package pmem

import (
	"fmt"
	"math"

	"adcc/internal/crash"
	"adcc/internal/mem"
)

// regionKind discriminates logged region types.
type regionKind int64

const (
	kindF64 regionKind = 0
	kindI64 regionKind = 1
)

// Pool is a persistent object pool: a set of registered regions plus an
// undo log, all in simulated NVM.
type Pool struct {
	m *crash.Machine

	f64s []*mem.F64
	i64s []*mem.I64

	// snapF64/snapI64 hold one epoch stamp per cache line of each
	// registered region, keyed by line index — the flat-slice
	// replacement for the per-transaction map that used to dedup
	// snapshots. A line is snapshotted in the current transaction iff
	// its stamp equals epoch; Begin bumps epoch, invalidating every
	// stamp in O(1).
	snapF64 [][]uint64
	snapI64 [][]uint64
	epoch   uint64

	// Undo log: meta holds (kind, regionID, start, n) quadruples,
	// vals holds the old element values (int64 payloads bit-cast).
	// head[0] is the number of valid entries; it is flushed on every
	// append and on truncation, making it the log's validity marker.
	meta *mem.I64
	vals *mem.F64
	head *mem.I64

	metaLen int // meta slots used
	valsLen int // vals slots used
	entries int

	inTx bool
	// tx is the pool's reusable transaction object; Begin hands it out
	// after resetting it, so steady-state transactions allocate nothing.
	tx Tx
}

// lineStamps allocates one epoch stamp per cache line covering n
// elements (8 bytes each).
func lineStamps(n int) []uint64 {
	const perLine = mem.LineSize / 8
	return make([]uint64, (n+perLine-1)/perLine)
}

// metaSlots is the number of I64 slots per log entry header.
const metaSlots = 4

// drainNS is the ordering cost charged per log append on top of the
// flush traffic itself: the store fences and persist drains
// (pmem_drain) that the real library issues to order the log entry
// before the data update. Calibrated against the paper's measured
// 329% CG overhead for per-iteration transactions.
const drainNS = 600

// NewPool creates a pool whose undo log can hold up to logElems logged
// element values (and up to logElems entries).
func NewPool(m *crash.Machine, logElems int) *Pool {
	if logElems <= 0 {
		panic("pmem: log capacity must be positive")
	}
	p := &Pool{
		m:    m,
		meta: m.Heap.AllocI64("pmem.log.meta", metaSlots*logElems),
		vals: m.Heap.AllocF64("pmem.log.vals", logElems),
		head: m.Heap.AllocI64("pmem.log.head", 8), // one line
	}
	return p
}

// RegisterF64 adds a float64 region to the pool's transactional domain.
func (p *Pool) RegisterF64(r *mem.F64) {
	p.f64s = append(p.f64s, r)
	p.snapF64 = append(p.snapF64, lineStamps(r.Len()))
}

// RegisterI64 adds an int64 region to the pool's transactional domain.
func (p *Pool) RegisterI64(r *mem.I64) {
	p.i64s = append(p.i64s, r)
	p.snapI64 = append(p.snapI64, lineStamps(r.Len()))
}

func (p *Pool) f64ID(r *mem.F64) int64 {
	for i, x := range p.f64s {
		if x == r {
			return int64(i)
		}
	}
	panic(fmt.Sprintf("pmem: region %q not registered", r.Name()))
}

func (p *Pool) i64ID(r *mem.I64) int64 {
	for i, x := range p.i64s {
		if x == r {
			return int64(i)
		}
	}
	panic(fmt.Sprintf("pmem: region %q not registered", r.Name()))
}

// Tx is an open transaction. It is not safe for concurrent use, and is
// only valid between the Begin that returned it and the matching
// Commit (the pool reuses one Tx object across transactions).
type Tx struct {
	p *Pool
	// written records modified element ranges for the commit flush.
	written []writtenRange
}

type writtenRange struct {
	kind regionKind
	id   int64
	lo   int
	hi   int // exclusive
}

// Begin opens a transaction. Nested transactions are not supported.
func (p *Pool) Begin() *Tx {
	if p.inTx {
		panic("pmem: nested transaction")
	}
	p.inTx = true
	p.epoch++ // invalidates all snapshot-dedup stamps at once
	p.tx.p = p
	p.tx.written = p.tx.written[:0]
	return &p.tx
}

// InTx reports whether a transaction is open.
func (p *Pool) InTx() bool { return p.inTx }

// LogEntries returns the number of undo entries currently in the log.
func (p *Pool) LogEntries() int { return p.entries }

// beginEntry reserves one undo entry, writes its header, and returns
// the payload destination in the log's value area. The caller fills the
// payload and then calls finishEntry — split this way so the snapshot
// paths need no per-line closures.
func (p *Pool) beginEntry(kind regionKind, id int64, start, n int) []float64 {
	if p.valsLen+n > p.vals.Len() || p.metaLen+metaSlots > p.meta.Len() {
		panic("pmem: undo log overflow; increase pool log capacity")
	}
	hdr := p.meta.StoreRange(p.metaLen, metaSlots)
	hdr[0] = int64(kind)
	hdr[1] = id
	hdr[2] = int64(start)
	hdr[3] = int64(n)
	return p.vals.StoreRange(p.valsLen, n)
}

// finishEntry flushes the entry written by the matching beginEntry and
// bumps and flushes the head counter. This is the ordering-critical
// persistence path.
func (p *Pool) finishEntry(n int) {
	// Flush the entry before the head so a torn append is invisible.
	p.m.LLC.Flush(p.meta.Addr(p.metaLen), 8*metaSlots)
	p.m.LLC.Flush(p.vals.Addr(p.valsLen), 8*n)
	p.metaLen += metaSlots
	p.valsLen += n
	p.entries++
	p.head.Set(0, int64(p.entries))
	p.head.Set(1, int64(p.metaLen))
	p.head.Set(2, int64(p.valsLen))
	p.m.LLC.Flush(p.head.Addr(0), 24)
	p.m.Clock.Advance(drainNS)
}

// SnapshotF64 logs the old contents of elements [i, i+n) of r, as
// pmemobj_tx_add_range does. Redundant snapshots within one transaction
// are deduplicated at line granularity via the pool's epoch stamps.
func (tx *Tx) SnapshotF64(r *mem.F64, i, n int) {
	const perLine = mem.LineSize / 8
	p := tx.p
	id := p.f64ID(r)
	stamps := p.snapF64[id]
	limit := r.Len()
	first := i / perLine
	last := (i + n - 1) / perLine
	for line := first; line <= last; line++ {
		if stamps[line] == p.epoch {
			continue
		}
		stamps[line] = p.epoch
		lo := line * perLine
		ln := perLine
		if lo+ln > limit {
			ln = limit - lo
		}
		old := r.LoadRange(lo, ln)
		dst := p.beginEntry(kindF64, id, lo, ln)
		copy(dst, old)
		p.finishEntry(ln)
	}
}

// SnapshotI64 logs the old contents of elements [i, i+n) of r.
func (tx *Tx) SnapshotI64(r *mem.I64, i, n int) {
	const perLine = mem.LineSize / 8
	p := tx.p
	id := p.i64ID(r)
	stamps := p.snapI64[id]
	limit := r.Len()
	first := i / perLine
	last := (i + n - 1) / perLine
	for line := first; line <= last; line++ {
		if stamps[line] == p.epoch {
			continue
		}
		stamps[line] = p.epoch
		lo := line * perLine
		ln := perLine
		if lo+ln > limit {
			ln = limit - lo
		}
		old := r.LoadRange(lo, ln)
		dst := p.beginEntry(kindI64, id, lo, ln)
		for k, v := range old {
			dst[k] = math.Float64frombits(uint64(v))
		}
		p.finishEntry(ln)
	}
}

// SetF64 performs a transactional store: the containing line is
// snapshotted on first touch, then the store proceeds.
func (tx *Tx) SetF64(r *mem.F64, i int, v float64) {
	tx.SnapshotF64(r, i, 1)
	r.Set(i, v)
	tx.written = append(tx.written, writtenRange{kindF64, tx.p.f64ID(r), i, i + 1})
}

// SetI64 performs a transactional store on an int64 region.
func (tx *Tx) SetI64(r *mem.I64, i int, v int64) {
	tx.SnapshotI64(r, i, 1)
	r.Set(i, v)
	tx.written = append(tx.written, writtenRange{kindI64, tx.p.i64ID(r), i, i + 1})
}

// StoreRangeF64 is the bulk transactional store: snapshot + return the
// live destination slice for the caller to fill. The range is flushed at
// commit.
func (tx *Tx) StoreRangeF64(r *mem.F64, i, n int) []float64 {
	tx.SnapshotF64(r, i, n)
	tx.written = append(tx.written, writtenRange{kindF64, tx.p.f64ID(r), i, i + n})
	return r.StoreRange(i, n)
}

// MarkWrittenF64 registers a range modified outside the Tx API (e.g. by
// an instrumented kernel) so Commit flushes it. The caller must have
// snapshotted the range beforehand for rollback to be correct.
func (tx *Tx) MarkWrittenF64(r *mem.F64, i, n int) {
	tx.written = append(tx.written, writtenRange{kindF64, tx.p.f64ID(r), i, i + n})
}

// MarkWrittenI64 is the int64 variant of MarkWrittenF64.
func (tx *Tx) MarkWrittenI64(r *mem.I64, i, n int) {
	tx.written = append(tx.written, writtenRange{kindI64, tx.p.i64ID(r), i, i + n})
}

// Commit flushes every range modified in the transaction and truncates
// the log, making the transaction durable.
func (tx *Tx) Commit() {
	p := tx.p
	for _, w := range tx.written {
		switch w.kind {
		case kindF64:
			r := p.f64s[w.id]
			p.m.LLC.Flush(r.Addr(w.lo), 8*(w.hi-w.lo))
		case kindI64:
			r := p.i64s[w.id]
			p.m.LLC.Flush(r.Addr(w.lo), 8*(w.hi-w.lo))
		}
	}
	// Truncate the log: head to zero, flushed.
	p.entries = 0
	p.metaLen = 0
	p.valsLen = 0
	p.head.Set(0, 0)
	p.head.Set(1, 0)
	p.head.Set(2, 0)
	p.m.LLC.Flush(p.head.Addr(0), 24)
	p.inTx = false
}

// Recover must be called after a crash+restart (the machine's live state
// already equals the NVM image). If the log is non-empty — i.e. a
// transaction was open at the crash — the logged old values are applied
// in reverse order, restoring the pre-transaction state, and the log is
// truncated. It reports whether a rollback happened and how many entries
// were applied.
func (p *Pool) Recover() (rolledBack bool, applied int) {
	// Restart: volatile bookkeeping is rebuilt from the persistent
	// head, exactly like the real library's pool open path.
	p.inTx = false
	n := int(p.head.At(0))
	p.metaLen = int(p.head.At(1))
	p.valsLen = int(p.head.At(2))
	p.entries = n
	if n == 0 {
		return false, 0
	}
	// Walk entries forward to locate offsets, then apply in reverse.
	type entry struct {
		kind           regionKind
		id             int64
		start, n, vOff int
	}
	entries := make([]entry, 0, n)
	mOff, vOff := 0, 0
	for k := 0; k < n; k++ {
		hdr := p.meta.LoadRange(mOff, metaSlots)
		e := entry{
			kind:  regionKind(hdr[0]),
			id:    hdr[1],
			start: int(hdr[2]),
			n:     int(hdr[3]),
			vOff:  vOff,
		}
		entries = append(entries, e)
		mOff += metaSlots
		vOff += e.n
	}
	for k := n - 1; k >= 0; k-- {
		e := entries[k]
		old := p.vals.LoadRange(e.vOff, e.n)
		switch e.kind {
		case kindF64:
			r := p.f64s[e.id]
			dst := r.StoreRange(e.start, e.n)
			copy(dst, old)
			p.m.LLC.Flush(r.Addr(e.start), 8*e.n)
		case kindI64:
			r := p.i64s[e.id]
			dst := r.StoreRange(e.start, e.n)
			for j, v := range old {
				dst[j] = int64(math.Float64bits(v))
			}
			p.m.LLC.Flush(r.Addr(e.start), 8*e.n)
		default:
			panic(fmt.Sprintf("pmem: corrupt log entry kind %d", e.kind))
		}
	}
	// Truncate.
	p.entries = 0
	p.metaLen = 0
	p.valsLen = 0
	p.head.Set(0, 0)
	p.head.Set(1, 0)
	p.head.Set(2, 0)
	p.m.LLC.Flush(p.head.Addr(0), 24)
	return true, n
}
