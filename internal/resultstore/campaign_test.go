package resultstore

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"adcc/internal/campaign"
)

// storeConfig is a CI-sized campaign for store integration tests.
func storeConfig(parallel int, replay bool) campaign.Config {
	return campaign.Config{
		Scale:     0.02,
		Parallel:  parallel,
		PerCell:   3,
		Workloads: []string{"mm"},
		Replay:    replay,
	}
}

// runWithStore executes the campaign with a store sink and returns the
// live report and the store bytes.
func runWithStore(t *testing.T, cfg campaign.Config) (*campaign.Report, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, cfg.Scale, cfg.Seed)
	cfg.Sink = w
	rep, err := campaign.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return rep, buf.Bytes()
}

// TestStoreDeterminism is the tentpole determinism contract: store
// bytes are identical at -parallel 1 vs 8 and on the legacy vs replay
// engine.
func TestStoreDeterminism(t *testing.T) {
	var base []byte
	for _, replay := range []bool{false, true} {
		for _, parallel := range []int{1, 8} {
			_, b := runWithStore(t, storeConfig(parallel, replay))
			if base == nil {
				base = b
				continue
			}
			if !bytes.Equal(b, base) {
				t.Errorf("store bytes differ (replay=%v, parallel=%d): %d vs %d bytes",
					replay, parallel, len(b), len(base))
			}
		}
	}
}

// TestEnvelopeFromStore is the provenance contract: the campaign
// report rebuilt from the store encodes byte-identically to the live
// run's report — the v1 envelope is an export of the store.
func TestEnvelopeFromStore(t *testing.T) {
	rep, b := runWithStore(t, storeConfig(4, false))
	want, err := rep.EncodeJSON()
	if err != nil {
		t.Fatalf("encode live report: %v", err)
	}
	s, err := Open(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rebuilt, err := s.CampaignReport()
	if err != nil {
		t.Fatalf("CampaignReport: %v", err)
	}
	got, err := rebuilt.EncodeJSON()
	if err != nil {
		t.Fatalf("encode rebuilt report: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("store-rebuilt report differs from live report:\nlive:\n%s\nrebuilt:\n%s", want, got)
	}
}

// TestStoreSinkRejectsCheckpoints: a Sink combined with Completed
// cells must error up front — restored aggregates carry no rows, so
// the store would be silently incomplete.
func TestStoreSinkRejectsCheckpoints(t *testing.T) {
	cfg := storeConfig(1, false)
	rep, err := campaign.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("baseline Run: %v", err)
	}
	cfg.Completed = map[string]campaign.CellReport{rep.Cells[0].Key(): rep.Cells[0]}
	var buf bytes.Buffer
	cfg.Sink = NewWriter(&buf, cfg.Scale, cfg.Seed)
	if _, err := campaign.Run(context.Background(), cfg); err == nil {
		t.Fatal("Run accepted Sink together with Completed cells")
	}
}

// TestStoreSmallerThanJSON is the compactness acceptance bound: the
// columnar store must be at least 5x smaller than the equivalent
// per-injection JSON row dump.
func TestStoreSmallerThanJSON(t *testing.T) {
	_, b := runWithStore(t, storeConfig(4, false))
	s, err := Open(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var jsonBytes int
	err = s.Scan(Filter{}, func(r Row) error {
		j, err := json.Marshal(r)
		if err != nil {
			return err
		}
		jsonBytes += len(j) + 1 // newline-delimited rows
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if jsonBytes < 5*len(b) {
		t.Errorf("store %d bytes vs per-injection JSON %d bytes: ratio %.1fx, want >= 5x",
			len(b), jsonBytes, float64(jsonBytes)/float64(len(b)))
	}
}

// TestFileRoundTrip covers the file-path wiring: CreateFile, sink
// writes, OpenFile, and the rebuilt report.
func TestFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/campaign.adccs"
	fw, err := CreateFile(path, 0.02, 0)
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	cfg := storeConfig(2, true)
	cfg.Sink = fw
	rep, err := campaign.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if f.TotalRows() != int64(rep.Injections) {
		t.Errorf("TotalRows = %d, want %d", f.TotalRows(), rep.Injections)
	}
	cells := f.Cells()
	if len(cells) != len(rep.Cells) {
		t.Fatalf("store has %d cells, report %d", len(cells), len(rep.Cells))
	}
	for _, c := range cells {
		if c.Injections == 0 {
			t.Errorf("cell %s/%s@%s has no rows", c.Workload, c.Scheme, c.System)
		}
	}
}

// TestOpenRejectsCorruption: flipped magics, truncations, and a
// corrupt footer all error cleanly.
func TestOpenRejectsCorruption(t *testing.T) {
	b, _, _, _ := genStore(t, 5, 3)
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"tiny", func(b []byte) []byte { return b[:10] }},
		{"bad header", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad end magic", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }},
		{"truncated footer", func(b []byte) []byte {
			return append(b[:len(b)/2], b[len(b)-trailerLen:]...)
		}},
		{"footer length overflow", func(b []byte) []byte {
			for i := 0; i < 8; i++ {
				b[len(b)-trailerLen+i] = 0xff
			}
			return b
		}},
	}
	for _, tc := range cases {
		mut := tc.mut(append([]byte(nil), b...))
		if _, err := Open(bytes.NewReader(mut), int64(len(mut))); err == nil {
			t.Errorf("%s: Open accepted corrupt store", tc.name)
		} else if testing.Verbose() {
			fmt.Printf("%s: %v\n", tc.name, err)
		}
	}
}
