package resultstore

import (
	"bytes"
	"sort"
	"testing"

	"adcc/internal/campaign"
	"adcc/internal/engine"
)

// kvlogStoreConfig is a CI-sized kvlog campaign for latency-query
// tests: served-traffic rows whose recovery-cost distributions the
// store's percentile queries summarize.
func kvlogStoreConfig() campaign.Config {
	return campaign.Config{
		Scale:     0.02,
		Parallel:  4,
		PerCell:   6,
		Workloads: []string{"kvlog"},
	}
}

// naiveDist recomputes a Dist the slow, obvious way: collect, sort,
// index by nearest rank. The store's Distribution must match it
// exactly — this is the sort oracle the percentile queries are
// validated against.
func naiveDist(vals []int64) Dist {
	var d Dist
	d.Count = int64(len(vals))
	for _, v := range vals {
		d.Sum += v
		if v > d.Max {
			d.Max = v
		}
	}
	if len(vals) == 0 {
		return d
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p float64) int64 {
		r := int(p*float64(len(sorted)) + 0.9999999999)
		if r < 1 {
			r = 1
		}
		if r > len(sorted) {
			r = len(sorted)
		}
		return sorted[r-1]
	}
	d.P50 = rank(0.50)
	d.P95 = rank(0.95)
	d.P99 = rank(0.99)
	return d
}

// TestKVLogLatencyPercentiles runs a kvlog campaign into a store and
// checks every metric's p50/p95/p99 against the naive sort oracle,
// both over the whole kvlog row set and per scheme.
func TestKVLogLatencyPercentiles(t *testing.T) {
	_, b := runWithStore(t, kvlogStoreConfig())
	s, err := Open(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	filters := []Filter{
		{Workload: "kvlog"},
		{Workload: "kvlog", Scheme: engine.SchemeAlgoNVM},
		{Workload: "kvlog", Scheme: engine.SchemePMEM, System: "nvm"},
		{Workload: "kvlog", Scheme: engine.SchemeCkptNVM, Outcome: "recomputed"},
	}
	for _, f := range filters {
		for mi, name := range MetricNames() {
			m := Metric(mi)
			var vals []int64
			if err := s.Scan(f, func(r Row) error {
				vals = append(vals, m.value(r.InjectionRow))
				return nil
			}); err != nil {
				t.Fatalf("Scan(%+v): %v", f, err)
			}
			got, err := s.Distribution(f, m)
			if err != nil {
				t.Fatalf("Distribution(%+v, %s): %v", f, name, err)
			}
			if want := naiveDist(vals); got != want {
				t.Errorf("Distribution(%+v, %s) = %+v, sort oracle %+v", f, name, got, want)
			}
		}
	}

	// The headline latency query must be non-degenerate: kvlog rows
	// exist and their recovery cost is a real, ordered distribution.
	d, err := s.Distribution(Filter{Workload: "kvlog"}, MetricRecoverResumeSimNS)
	if err != nil {
		t.Fatalf("Distribution: %v", err)
	}
	if d.Count == 0 {
		t.Fatal("no kvlog rows in store")
	}
	if d.P50 <= 0 || d.P50 > d.P95 || d.P95 > d.P99 || d.P99 > d.Max {
		t.Errorf("degenerate latency distribution: %+v", d)
	}

	// The algorithm-directed scheme's replay recovery must undercut the
	// conventional checkpoint scheme's restore+rerun at the median.
	algo, err := s.Distribution(Filter{Workload: "kvlog", Scheme: engine.SchemeAlgoNVM}, MetricRecoverResumeSimNS)
	if err != nil {
		t.Fatalf("Distribution: %v", err)
	}
	ckpt, err := s.Distribution(Filter{Workload: "kvlog", Scheme: engine.SchemeCkptHDD}, MetricRecoverResumeSimNS)
	if err != nil {
		t.Fatalf("Distribution: %v", err)
	}
	if algo.Count == 0 || ckpt.Count == 0 {
		t.Fatalf("missing scheme rows: algo %d, ckpt %d", algo.Count, ckpt.Count)
	}
	if algo.P50 >= ckpt.P50 {
		t.Errorf("algo median recovery %d ns not below ckpt-hdd median %d ns", algo.P50, ckpt.P50)
	}
}
