package resultstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"adcc/internal/campaign"
)

// Writer encodes injection rows into the columnar store format. It
// implements campaign.RowSink, so a campaign writes a store by setting
// Config.Sink to a Writer and calling Close after the run; rows arrive
// in deterministic grid order from either engine, making the file bytes
// a pure function of the campaign spec.
//
// The sink interface carries no error returns, so I/O and sequencing
// errors latch internally; Close reports the first one.
type Writer struct {
	w     *bufio.Writer
	scale float64
	seed  int64

	err       error
	off       int64 // bytes flushed to w so far
	dict      map[string]uint64
	strs      []string
	cells     []cellEntry
	open      bool      // a cell is accumulating rows
	cur       cellEntry // index entry of the open cell
	declared  int       // rows BeginCell promised for the open cell
	cols      [numCols][]byte
	prev      [numCols]int64 // delta bases for the integer columns
	totalRows int64
	closed    bool
}

// NewWriter starts a store stream on w. Scale and seed are the
// campaign's — they round-trip through the footer so a reader can
// rebuild the report envelope without the original Config.
func NewWriter(w io.Writer, scale float64, seed int64) *Writer {
	sw := &Writer{
		w:     bufio.NewWriterSize(w, 1<<16),
		scale: scale,
		seed:  seed,
		dict:  map[string]uint64{},
	}
	if _, err := sw.w.WriteString(headerMagic); err != nil {
		sw.err = err
	}
	sw.off = int64(len(headerMagic))
	return sw
}

// intern returns the dictionary id of s, assigning first-seen order.
func (sw *Writer) intern(s string) uint64 {
	if id, ok := sw.dict[s]; ok {
		return id
	}
	id := uint64(len(sw.strs))
	sw.dict[s] = id
	sw.strs = append(sw.strs, s)
	return id
}

// BeginCell closes the previous cell's column blocks and opens a new
// index entry. Part of campaign.RowSink.
func (sw *Writer) BeginCell(info campaign.CellInfo) {
	if sw.err != nil {
		return
	}
	if sw.closed {
		sw.err = fmt.Errorf("resultstore: BeginCell after Close")
		return
	}
	sw.flushCell()
	sw.open = true
	sw.declared = info.Injections
	sw.cur = cellEntry{
		workload:   sw.intern(info.Workload),
		scheme:     sw.intern(info.Scheme),
		system:     sw.intern(info.System),
		faultModel: sw.intern(info.FaultModel),
		profileOps: info.ProfileOps,
		grainOps:   info.GrainOps,
		offset:     sw.off,
	}
	for i := range sw.cols {
		sw.cols[i] = sw.cols[i][:0]
		sw.prev[i] = 0
	}
}

// Row appends one injection to the open cell's column buffers. Part of
// campaign.RowSink.
func (sw *Writer) Row(r campaign.InjectionRow) {
	if sw.err != nil {
		return
	}
	if !sw.open {
		sw.err = fmt.Errorf("resultstore: Row before BeginCell")
		return
	}
	name, err := r.Outcome.MarshalText()
	if err != nil {
		sw.err = err
		return
	}
	sw.cols[colOutcome] = binary.AppendUvarint(sw.cols[colOutcome], sw.intern(string(name)))
	sw.delta(colCrashOps, r.CrashOps)
	sw.delta(colReworkOps, r.ReworkOps)
	sw.delta(colFlushLines, r.FlushLines)
	sw.delta(colRecoverSimNS, r.RecoverSimNS)
	sw.delta(colResumeSimNS, r.ResumeSimNS)
	sw.cur.rowCount++
	sw.totalRows++
}

// delta appends v to integer column c as a zigzag varint of the
// difference from the column's previous value.
func (sw *Writer) delta(c int, v int64) {
	sw.cols[c] = binary.AppendUvarint(sw.cols[c], zigzag(v-sw.prev[c]))
	sw.prev[c] = v
}

// flushCell writes the open cell's column blocks and files its index
// entry.
func (sw *Writer) flushCell() {
	if !sw.open || sw.err != nil {
		return
	}
	sw.open = false
	if sw.cur.rowCount != sw.declared {
		sw.err = fmt.Errorf("resultstore: cell %q got %d rows, BeginCell declared %d",
			sw.strs[sw.cur.workload], sw.cur.rowCount, sw.declared)
		return
	}
	for i := range sw.cols {
		sw.cur.colLen[i] = int64(len(sw.cols[i]))
		if _, err := sw.w.Write(sw.cols[i]); err != nil {
			sw.err = err
			return
		}
		sw.off += int64(len(sw.cols[i]))
	}
	sw.cells = append(sw.cells, sw.cur)
}

// Close flushes the last cell, writes the footer and trailer, and
// reports the first error of the whole stream. It does not close the
// underlying writer.
func (sw *Writer) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	sw.flushCell()
	if sw.err != nil {
		return sw.err
	}

	var ftr []byte
	ftr = binary.AppendUvarint(ftr, uint64(len(sw.strs)))
	for _, s := range sw.strs {
		ftr = binary.AppendUvarint(ftr, uint64(len(s)))
		ftr = append(ftr, s...)
	}
	ftr = binary.AppendUvarint(ftr, uint64(len(sw.cells)))
	for _, c := range sw.cells {
		if c.profileOps < 0 || c.grainOps < 0 {
			return fmt.Errorf("resultstore: negative cell constants (profile %d, grain %d)", c.profileOps, c.grainOps)
		}
		ftr = binary.AppendUvarint(ftr, c.workload)
		ftr = binary.AppendUvarint(ftr, c.scheme)
		ftr = binary.AppendUvarint(ftr, c.system)
		ftr = binary.AppendUvarint(ftr, c.faultModel)
		ftr = binary.AppendUvarint(ftr, uint64(c.profileOps))
		ftr = binary.AppendUvarint(ftr, uint64(c.grainOps))
		ftr = binary.AppendUvarint(ftr, uint64(c.rowCount))
		ftr = binary.AppendUvarint(ftr, uint64(c.offset))
		for _, n := range c.colLen {
			ftr = binary.AppendUvarint(ftr, uint64(n))
		}
	}
	ftr = binary.LittleEndian.AppendUint64(ftr, math.Float64bits(sw.scale))
	ftr = binary.AppendUvarint(ftr, zigzag(sw.seed))
	ftr = binary.AppendUvarint(ftr, uint64(sw.totalRows))

	if _, err := sw.w.Write(ftr); err != nil {
		return err
	}
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(len(ftr)))
	copy(trailer[8:], endMagic)
	if _, err := sw.w.Write(trailer[:]); err != nil {
		return err
	}
	return sw.w.Flush()
}

// FileWriter couples a Writer to the file it streams into, so command
// wiring is one call each way: CreateFile to open, Close to finish the
// store and the file.
type FileWriter struct {
	*Writer
	f *os.File
}

// CreateFile creates (truncating) a store file at path.
func CreateFile(path string, scale float64, seed int64) (*FileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileWriter{Writer: NewWriter(f, scale, seed), f: f}, nil
}

// Close finishes the store stream and closes the file, reporting the
// first error.
func (fw *FileWriter) Close() error {
	err := fw.Writer.Close()
	if cerr := fw.f.Close(); err == nil {
		err = cerr
	}
	return err
}
