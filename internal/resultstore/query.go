package resultstore

import (
	"fmt"
	"sort"
	"strings"

	"adcc/internal/campaign"
)

// FailStop is the filter spelling for the clean fail-stop fault model,
// which cells store as the empty string. A Filter with FaultModel ""
// matches any model; FaultModel "failstop" matches only fail-stop
// cells, mirroring the campaign's -fault flag vocabulary.
const FailStop = "failstop"

// Filter selects rows by cell coordinates and outcome. Zero-valued
// fields match everything, so the zero Filter selects the whole store.
type Filter struct {
	Workload string
	Scheme   string
	System   string
	// FaultModel: "" matches any model; FailStop matches fail-stop
	// cells; any other value matches that named model.
	FaultModel string
	// Outcome is an outcome name ("clean", "corrupt", ...); "" matches
	// all outcomes.
	Outcome string
}

// matchCell reports whether the filter's cell coordinates admit c.
func (f Filter) matchCell(info campaign.CellInfo) bool {
	if f.Workload != "" && f.Workload != info.Workload {
		return false
	}
	if f.Scheme != "" && f.Scheme != info.Scheme {
		return false
	}
	if f.System != "" && f.System != info.System {
		return false
	}
	switch f.FaultModel {
	case "":
	case FailStop:
		if info.FaultModel != "" {
			return false
		}
	default:
		if info.FaultModel != f.FaultModel {
			return false
		}
	}
	return true
}

// outcome parses the filter's outcome name; ok=false means no outcome
// constraint.
func (f Filter) outcome() (campaign.Outcome, bool, error) {
	if f.Outcome == "" {
		return 0, false, nil
	}
	o, err := campaign.ParseOutcome(f.Outcome)
	return o, true, err
}

// Row is one stored injection joined with its cell coordinates.
type Row struct {
	Workload   string
	Scheme     string
	System     string
	FaultModel string
	campaign.InjectionRow
}

// Scan streams every row the filter admits, in store (grid × point)
// order, stopping at the first error fn returns.
func (s *Store) Scan(f Filter, fn func(Row) error) error {
	want, haveOutcome, err := f.outcome()
	if err != nil {
		return err
	}
	for _, c := range s.cells {
		info := s.cellInfo(c)
		if !f.matchCell(info) {
			continue
		}
		rows, err := s.cellRows(c)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if haveOutcome && r.Outcome != want {
				continue
			}
			if err := fn(Row{
				Workload:     info.Workload,
				Scheme:       info.Scheme,
				System:       info.System,
				FaultModel:   info.FaultModel,
				InjectionRow: r,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Metric names a per-row integer a distribution query summarizes.
type Metric int

const (
	// MetricReworkOps is the re-executed op count the scheme forced.
	MetricReworkOps Metric = iota
	// MetricRecoverResumeSimNS is the total simulated recovery cost:
	// recover plus resume time.
	MetricRecoverResumeSimNS
	// MetricFlushLines is the cache-line flush count during recovery
	// and resumption.
	MetricFlushLines
	// MetricCrashOps is the op count the crash fired at.
	MetricCrashOps
	// MetricRecoverSimNS is the simulated post-crash detection/restore
	// time alone.
	MetricRecoverSimNS
	// MetricResumeSimNS is the simulated re-execution time alone.
	MetricResumeSimNS
)

// metricNames is the canonical Metric vocabulary, in value order.
var metricNames = []string{
	"rework-ops", "recover-resume-sim-ns", "flush-lines",
	"crash-ops", "recover-sim-ns", "resume-sim-ns",
}

// String names the metric as ParseMetric accepts it.
func (m Metric) String() string {
	if int(m) < 0 || int(m) >= len(metricNames) {
		return fmt.Sprintf("Metric(%d)", int(m))
	}
	return metricNames[m]
}

// MetricNames lists every metric name in Metric value order.
func MetricNames() []string {
	return append([]string(nil), metricNames...)
}

// ParseMetric resolves a metric name.
func ParseMetric(name string) (Metric, error) {
	for i, n := range metricNames {
		if n == name {
			return Metric(i), nil
		}
	}
	return 0, fmt.Errorf("resultstore: unknown metric %q (want one of %s)",
		name, strings.Join(metricNames, ", "))
}

// value extracts the metric from one row.
func (m Metric) value(r campaign.InjectionRow) int64 {
	switch m {
	case MetricReworkOps:
		return r.ReworkOps
	case MetricRecoverResumeSimNS:
		return r.RecoverSimNS + r.ResumeSimNS
	case MetricFlushLines:
		return r.FlushLines
	case MetricCrashOps:
		return r.CrashOps
	case MetricRecoverSimNS:
		return r.RecoverSimNS
	case MetricResumeSimNS:
		return r.ResumeSimNS
	default:
		return 0
	}
}

// Dist summarizes one metric over the rows a filter admits: count,
// sum, max, and nearest-rank percentiles. Percentile p over n sorted
// values is element ceil(p·n)-1 — the smallest value with at least p·n
// values at or below it — so it is always an observed value, exact for
// any n, and needs no interpolation policy.
type Dist struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// percentile returns the nearest-rank percentile of sorted values.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.9999999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// distOf summarizes one value set.
func distOf(vals []int64) Dist {
	var d Dist
	d.Count = int64(len(vals))
	for _, v := range vals {
		d.Sum += v
		if v > d.Max {
			d.Max = v
		}
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	d.P50 = percentile(sorted, 0.50)
	d.P95 = percentile(sorted, 0.95)
	d.P99 = percentile(sorted, 0.99)
	return d
}

// Distribution computes one metric's Dist over the filtered rows.
func (s *Store) Distribution(f Filter, m Metric) (Dist, error) {
	var vals []int64
	err := s.Scan(f, func(r Row) error {
		vals = append(vals, m.value(r.InjectionRow))
		return nil
	})
	if err != nil {
		return Dist{}, err
	}
	return distOf(vals), nil
}

// Aggregate is the standard roll-up of a filtered row set: outcome
// counts plus distributions of the paper's three recovery-cost axes.
type Aggregate struct {
	Rows               int64            `json:"rows"`
	Outcomes           map[string]int64 `json:"outcomes"`
	ReworkOps          Dist             `json:"rework_ops"`
	RecoverResumeSimNS Dist             `json:"recover_resume_sim_ns"`
	FlushLines         Dist             `json:"flush_lines"`
}

// Aggregate computes the roll-up in one pass over the filtered rows.
func (s *Store) Aggregate(f Filter) (Aggregate, error) {
	agg := Aggregate{Outcomes: map[string]int64{}}
	var rework, cost, flush []int64
	err := s.Scan(f, func(r Row) error {
		agg.Rows++
		agg.Outcomes[r.Outcome.String()]++
		rework = append(rework, r.ReworkOps)
		cost = append(cost, r.RecoverSimNS+r.ResumeSimNS)
		flush = append(flush, r.FlushLines)
		return nil
	})
	if err != nil {
		return Aggregate{}, err
	}
	agg.ReworkOps = distOf(rework)
	agg.RecoverResumeSimNS = distOf(cost)
	agg.FlushLines = distOf(flush)
	return agg, nil
}

// CellReports rebuilds the campaign's per-cell aggregates for every
// cell the filter admits, via the same CellReport.Add/Finalize path
// the live engines use, sorted in canonical report order. Outcome
// filters apply per row, so a filtered cell report covers only the
// admitted rows.
func (s *Store) CellReports(f Filter) ([]campaign.CellReport, error) {
	want, haveOutcome, err := f.outcome()
	if err != nil {
		return nil, err
	}
	var out []campaign.CellReport
	for _, c := range s.cells {
		info := s.cellInfo(c)
		if !f.matchCell(info) {
			continue
		}
		rows, err := s.cellRows(c)
		if err != nil {
			return nil, err
		}
		cr := campaign.CellReport{
			Workload:   info.Workload,
			Scheme:     info.Scheme,
			System:     info.System,
			FaultModel: info.FaultModel,
			ProfileOps: info.ProfileOps,
			GrainOps:   info.GrainOps,
		}
		for _, r := range rows {
			if haveOutcome && r.Outcome != want {
				continue
			}
			cr.Add(r)
		}
		cr.Finalize(0)
		out = append(out, cr)
	}
	campaign.SortCells(out)
	return out, nil
}

// CampaignReport rebuilds the full adcc-campaign/v1 report from the
// store — the proof that the JSON envelope is an export of the store:
// for a campaign run with a Sink, EncodeJSON of this report is
// byte-identical to the envelope the live run wrote (wall-clock cost
// is measurement, excluded from the canonical encoding).
func (s *Store) CampaignReport() (*campaign.Report, error) {
	cells, err := s.CellReports(Filter{})
	if err != nil {
		return nil, err
	}
	rep := &campaign.Report{
		Schema: campaign.SchemaVersion,
		Scale:  s.scale,
		Seed:   s.seed,
		Cells:  cells,
	}
	for _, c := range cells {
		rep.Injections += c.Injections
	}
	return rep, nil
}
