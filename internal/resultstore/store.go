package resultstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"adcc/internal/campaign"
)

// Store is an open result store: the parsed footer index over a
// seekable byte source. Column blocks are read lazily, per query, so
// opening a store costs one footer read regardless of row count.
type Store struct {
	r         io.ReaderAt
	size      int64
	strs      []string
	cells     []cellEntry
	scale     float64
	seed      int64
	totalRows int64
}

// Open parses the footer of a store held in r. Every length and offset
// is validated against size before use, so corrupt or truncated files
// (and adversarial ones — see FuzzResultStoreDecode) error instead of
// panicking or over-reading.
func Open(r io.ReaderAt, size int64) (*Store, error) {
	if size < int64(minFileLen) {
		return nil, fmt.Errorf("resultstore: %d bytes is smaller than the smallest store (%d)", size, minFileLen)
	}
	var head [len(headerMagic)]byte
	if _, err := r.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("resultstore: read header: %w", err)
	}
	if string(head[:]) != headerMagic {
		return nil, fmt.Errorf("resultstore: bad header magic %q", head[:])
	}
	var trailer [trailerLen]byte
	if _, err := r.ReadAt(trailer[:], size-int64(trailerLen)); err != nil {
		return nil, fmt.Errorf("resultstore: read trailer: %w", err)
	}
	if string(trailer[8:]) != endMagic {
		return nil, fmt.Errorf("resultstore: bad end magic %q", trailer[8:])
	}
	ftrLen := binary.LittleEndian.Uint64(trailer[:8])
	maxFtr := uint64(size) - uint64(len(headerMagic)) - uint64(trailerLen)
	if ftrLen > maxFtr {
		return nil, fmt.Errorf("resultstore: footer length %d exceeds file capacity %d", ftrLen, maxFtr)
	}
	ftrStart := size - int64(trailerLen) - int64(ftrLen)
	ftr := make([]byte, ftrLen)
	if _, err := r.ReadAt(ftr, ftrStart); err != nil {
		return nil, fmt.Errorf("resultstore: read footer: %w", err)
	}

	s := &Store{r: r, size: size}
	br := &byteReader{b: ftr}

	dictCount, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if dictCount > uint64(br.remaining()) {
		return nil, fmt.Errorf("resultstore: dictionary count %d exceeds footer size", dictCount)
	}
	s.strs = make([]string, dictCount)
	for i := range s.strs {
		n, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(br.remaining()) {
			return nil, fmt.Errorf("resultstore: dictionary string %d length %d exceeds footer size", i, n)
		}
		b, err := br.bytes(int(n))
		if err != nil {
			return nil, err
		}
		s.strs[i] = string(b)
	}

	cellCount, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if cellCount > uint64(br.remaining()) {
		return nil, fmt.Errorf("resultstore: cell count %d exceeds footer size", cellCount)
	}
	s.cells = make([]cellEntry, cellCount)
	var rowSum, next int64
	next = int64(len(headerMagic))
	for i := range s.cells {
		c := &s.cells[i]
		if err := s.readCellEntry(br, c); err != nil {
			return nil, fmt.Errorf("resultstore: cell %d: %w", i, err)
		}
		// Blocks are written back to back from the header on; enforcing
		// exactly that layout bounds every later column read.
		if c.offset != next {
			return nil, fmt.Errorf("resultstore: cell %d blocks at offset %d, want %d", i, c.offset, next)
		}
		for col, n := range c.colLen {
			// Each row costs at least one byte per column, so a row count
			// exceeding a column's byte length is corruption.
			if int64(c.rowCount) > n {
				return nil, fmt.Errorf("resultstore: cell %d column %d: %d rows in %d bytes", i, col, c.rowCount, n)
			}
			next += n
		}
		if next > ftrStart {
			return nil, fmt.Errorf("resultstore: cell %d blocks end at %d, past footer start %d", i, next, ftrStart)
		}
		rowSum += int64(c.rowCount)
	}

	scaleBits, err := br.bytes(8)
	if err != nil {
		return nil, err
	}
	s.scale = math.Float64frombits(binary.LittleEndian.Uint64(scaleBits))
	if s.seed, err = br.varint(); err != nil {
		return nil, err
	}
	total, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if int64(total) != rowSum || total > uint64(size) {
		return nil, fmt.Errorf("resultstore: footer total %d rows, cells sum to %d", total, rowSum)
	}
	s.totalRows = rowSum
	if br.remaining() != 0 {
		return nil, fmt.Errorf("resultstore: %d trailing footer bytes", br.remaining())
	}
	return s, nil
}

// readCellEntry decodes one footer index record, validating dictionary
// ids and value ranges.
func (s *Store) readCellEntry(br *byteReader, c *cellEntry) error {
	for _, id := range []*uint64{&c.workload, &c.scheme, &c.system, &c.faultModel} {
		v, err := br.uvarint()
		if err != nil {
			return err
		}
		if v >= uint64(len(s.strs)) {
			return fmt.Errorf("dictionary id %d out of range (%d strings)", v, len(s.strs))
		}
		*id = v
	}
	for _, dst := range []*int64{&c.profileOps, &c.grainOps} {
		v, err := br.uvarint()
		if err != nil {
			return err
		}
		if v > math.MaxInt64 {
			return fmt.Errorf("cell constant %d overflows int64", v)
		}
		*dst = int64(v)
	}
	rows, err := br.uvarint()
	if err != nil {
		return err
	}
	if rows > uint64(s.size) {
		return fmt.Errorf("row count %d exceeds file size", rows)
	}
	c.rowCount = int(rows)
	off, err := br.uvarint()
	if err != nil {
		return err
	}
	if off > uint64(s.size) {
		return fmt.Errorf("block offset %d exceeds file size", off)
	}
	c.offset = int64(off)
	for i := range c.colLen {
		n, err := br.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(s.size) {
			return fmt.Errorf("column %d length %d exceeds file size", i, n)
		}
		c.colLen[i] = int64(n)
	}
	return nil
}

// Scale returns the campaign scale recorded in the footer.
func (s *Store) Scale() float64 { return s.scale }

// Seed returns the campaign seed recorded in the footer.
func (s *Store) Seed() int64 { return s.seed }

// TotalRows returns the injection count across all cells.
func (s *Store) TotalRows() int64 { return s.totalRows }

// Cells lists the stored cells in file (campaign grid) order.
func (s *Store) Cells() []campaign.CellInfo {
	out := make([]campaign.CellInfo, len(s.cells))
	for i, c := range s.cells {
		out[i] = s.cellInfo(c)
	}
	return out
}

func (s *Store) cellInfo(c cellEntry) campaign.CellInfo {
	return campaign.CellInfo{
		Workload:   s.strs[c.workload],
		Scheme:     s.strs[c.scheme],
		System:     s.strs[c.system],
		FaultModel: s.strs[c.faultModel],
		ProfileOps: c.profileOps,
		GrainOps:   c.grainOps,
		Injections: c.rowCount,
	}
}

// colOffset returns the absolute file offset of column col in cell c.
func (c cellEntry) colOffset(col int) int64 {
	off := c.offset
	for i := 0; i < col; i++ {
		off += c.colLen[i]
	}
	return off
}

// readColumn loads and bounds-checks one column's raw bytes.
func (s *Store) readColumn(c cellEntry, col int) (*byteReader, error) {
	b := make([]byte, c.colLen[col])
	if _, err := s.r.ReadAt(b, c.colOffset(col)); err != nil {
		return nil, fmt.Errorf("resultstore: read column %d: %w", col, err)
	}
	return &byteReader{b: b}, nil
}

// cellRows decodes every row of one cell, in point order.
func (s *Store) cellRows(c cellEntry) ([]campaign.InjectionRow, error) {
	rows := make([]campaign.InjectionRow, c.rowCount)

	oc, err := s.readColumn(c, colOutcome)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		id, err := oc.uvarint()
		if err != nil {
			return nil, err
		}
		if id >= uint64(len(s.strs)) {
			return nil, fmt.Errorf("resultstore: outcome dictionary id %d out of range", id)
		}
		if err := rows[i].Outcome.UnmarshalText([]byte(s.strs[id])); err != nil {
			return nil, err
		}
	}
	if oc.remaining() != 0 {
		return nil, fmt.Errorf("resultstore: %d trailing bytes in outcome column", oc.remaining())
	}

	intCols := [...]struct {
		col int
		set func(*campaign.InjectionRow, int64)
	}{
		{colCrashOps, func(r *campaign.InjectionRow, v int64) { r.CrashOps = v }},
		{colReworkOps, func(r *campaign.InjectionRow, v int64) { r.ReworkOps = v }},
		{colFlushLines, func(r *campaign.InjectionRow, v int64) { r.FlushLines = v }},
		{colRecoverSimNS, func(r *campaign.InjectionRow, v int64) { r.RecoverSimNS = v }},
		{colResumeSimNS, func(r *campaign.InjectionRow, v int64) { r.ResumeSimNS = v }},
	}
	for _, ic := range intCols {
		col, set := ic.col, ic.set
		br, err := s.readColumn(c, col)
		if err != nil {
			return nil, err
		}
		var prev int64
		for i := range rows {
			d, err := br.varint()
			if err != nil {
				return nil, err
			}
			prev += d
			set(&rows[i], prev)
		}
		if br.remaining() != 0 {
			return nil, fmt.Errorf("resultstore: %d trailing bytes in column %d", br.remaining(), col)
		}
	}
	return rows, nil
}

// IsStoreFile sniffs whether the file at path begins with the store
// header magic — how tools accepting both store and JSON inputs (e.g.
// benchdiff) route a path without trusting its extension.
func IsStoreFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var head [len(headerMagic)]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	return string(head[:]) == headerMagic
}

// File is a Store opened from a file path; Close releases the file.
type File struct {
	*Store
	f *os.File
}

// OpenFile opens a store file for querying.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := Open(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &File{Store: s, f: f}, nil
}

// Close releases the underlying file.
func (f *File) Close() error { return f.f.Close() }
