package resultstore

import (
	"bytes"
	"math/rand"
	"testing"

	"adcc/internal/campaign"
)

// refRow is the in-memory reference model: a row joined with its cell.
type refRow struct {
	cell campaign.CellInfo
	row  campaign.InjectionRow
}

// genStore writes a pseudo-random store and returns its bytes plus the
// reference row list, the property-test substrate.
func genStore(t *testing.T, seed int64, cells int) ([]byte, []refRow, float64, int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	workloads := []string{"cg", "mm", "mc", "stencil"}
	schemes := []string{"native", "pmem", "algo-nvm", "algo-every"}
	systems := []string{"nvm", "dram"}
	faults := []string{"", "torn", "eadr", "reorder", "bitflip"}
	scale := rng.Float64() * 2
	campSeed := rng.Int63() - rng.Int63()

	var buf bytes.Buffer
	w := NewWriter(&buf, scale, campSeed)
	var ref []refRow
	// Coordinate tuples are unique, as in a real sweep grid — duplicate
	// cells would make the canonical sort order ambiguous.
	used := map[[4]string]bool{}
	for c := 0; c < cells; c++ {
		var coord [4]string
		for {
			coord = [4]string{
				workloads[rng.Intn(len(workloads))],
				schemes[rng.Intn(len(schemes))],
				systems[rng.Intn(len(systems))],
				faults[rng.Intn(len(faults))],
			}
			if !used[coord] {
				used[coord] = true
				break
			}
		}
		info := campaign.CellInfo{
			Workload:   coord[0],
			Scheme:     coord[1],
			System:     coord[2],
			FaultModel: coord[3],
			ProfileOps: rng.Int63n(1 << 40),
			GrainOps:   rng.Int63n(1 << 20),
			Injections: rng.Intn(40),
		}
		w.BeginCell(info)
		for i := 0; i < info.Injections; i++ {
			r := campaign.InjectionRow{
				Outcome:      campaign.Outcome(rng.Intn(5)),
				CrashOps:     rng.Int63n(1 << 40),
				ReworkOps:    rng.Int63n(1 << 30),
				FlushLines:   rng.Int63n(1 << 20),
				RecoverSimNS: rng.Int63n(1 << 45),
				ResumeSimNS:  rng.Int63n(1 << 45),
			}
			w.Row(r)
			ref = append(ref, refRow{cell: info, row: r})
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), ref, scale, campSeed
}

// TestRoundTripProperty: for many random stores, every row decoded
// from the file equals the in-memory reference, in order, along with
// the cell index and footer meta.
func TestRoundTripProperty(t *testing.T) {
	for trial := int64(0); trial < 25; trial++ {
		b, ref, scale, seed := genStore(t, 1000+trial, int(trial%7)+1)
		s, err := Open(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			t.Fatalf("trial %d: Open: %v", trial, err)
		}
		if s.Scale() != scale || s.Seed() != seed {
			t.Fatalf("trial %d: meta (%g, %d), want (%g, %d)", trial, s.Scale(), s.Seed(), scale, seed)
		}
		if s.TotalRows() != int64(len(ref)) {
			t.Fatalf("trial %d: TotalRows %d, want %d", trial, s.TotalRows(), len(ref))
		}
		var got []Row
		if err := s.Scan(Filter{}, func(r Row) error { got = append(got, r); return nil }); err != nil {
			t.Fatalf("trial %d: Scan: %v", trial, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("trial %d: scanned %d rows, want %d", trial, len(got), len(ref))
		}
		for i, r := range got {
			want := ref[i]
			if r.InjectionRow != want.row {
				t.Fatalf("trial %d row %d: %+v, want %+v", trial, i, r.InjectionRow, want.row)
			}
			if r.Workload != want.cell.Workload || r.Scheme != want.cell.Scheme ||
				r.System != want.cell.System || r.FaultModel != want.cell.FaultModel {
				t.Fatalf("trial %d row %d: cell (%s,%s,%s,%q), want (%s,%s,%s,%q)", trial, i,
					r.Workload, r.Scheme, r.System, r.FaultModel,
					want.cell.Workload, want.cell.Scheme, want.cell.System, want.cell.FaultModel)
			}
		}
	}
}

// TestWriterDeterministic: the same row sequence encodes to identical
// bytes on repeated writes.
func TestWriterDeterministic(t *testing.T) {
	a, _, _, _ := genStore(t, 7, 5)
	b, _, _, _ := genStore(t, 7, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("two writes of the same row sequence produced different bytes")
	}
}

// TestScanFilter: every filter axis restricts the scan to exactly the
// reference rows it should admit.
func TestScanFilter(t *testing.T) {
	b, ref, _, _ := genStore(t, 42, 8)
	s, err := Open(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	filters := []struct {
		name  string
		f     Filter
		admit func(refRow) bool
	}{
		{"workload", Filter{Workload: "mm"}, func(r refRow) bool { return r.cell.Workload == "mm" }},
		{"scheme", Filter{Scheme: "pmem"}, func(r refRow) bool { return r.cell.Scheme == "pmem" }},
		{"system", Filter{System: "dram"}, func(r refRow) bool { return r.cell.System == "dram" }},
		{"fault", Filter{FaultModel: "torn"}, func(r refRow) bool { return r.cell.FaultModel == "torn" }},
		{"failstop", Filter{FaultModel: FailStop}, func(r refRow) bool { return r.cell.FaultModel == "" }},
		{"outcome", Filter{Outcome: "corrupt"}, func(r refRow) bool { return r.row.Outcome == campaign.OutcomeCorrupt }},
		{"combined", Filter{Workload: "mc", Outcome: "clean"},
			func(r refRow) bool { return r.cell.Workload == "mc" && r.row.Outcome == campaign.OutcomeClean }},
	}
	for _, tc := range filters {
		var want []campaign.InjectionRow
		for _, r := range ref {
			if tc.admit(r) {
				want = append(want, r.row)
			}
		}
		var got []campaign.InjectionRow
		if err := s.Scan(tc.f, func(r Row) error { got = append(got, r.InjectionRow); return nil }); err != nil {
			t.Fatalf("%s: Scan: %v", tc.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", tc.name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s row %d: %+v, want %+v", tc.name, i, got[i], want[i])
			}
		}
	}
	if err := s.Scan(Filter{Outcome: "exploded"}, func(Row) error { return nil }); err == nil {
		t.Fatal("Scan accepted an unknown outcome name")
	}
}

// TestWriterSequenceErrors: misuse of the sink protocol latches an
// error that Close reports.
func TestWriterSequenceErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1, 0)
	w.Row(campaign.InjectionRow{})
	if err := w.Close(); err == nil {
		t.Fatal("Row before BeginCell did not error")
	}

	buf.Reset()
	w = NewWriter(&buf, 1, 0)
	w.BeginCell(campaign.CellInfo{Workload: "mm", Injections: 2})
	w.Row(campaign.InjectionRow{})
	if err := w.Close(); err == nil {
		t.Fatal("row-count mismatch with BeginCell declaration did not error")
	}
}
