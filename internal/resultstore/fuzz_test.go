package resultstore

import (
	"bytes"
	"testing"

	"adcc/internal/campaign"
)

// FuzzResultStoreDecode throws arbitrary bytes at the store reader:
// truncated, bit-flipped, or adversarial files must return an error —
// never panic, over-read, or allocate unboundedly. When a mutated file
// still parses, every query path must hold the same no-panic contract.
func FuzzResultStoreDecode(f *testing.F) {
	// Seed with valid stores of several shapes so mutations explore the
	// format from the inside, plus the committed corpus in testdata.
	for seed := int64(0); seed < 3; seed++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, 0.5, seed)
		for c := int64(0); c <= seed; c++ {
			w.BeginCell(campaign.CellInfo{
				Workload: "mm", Scheme: "pmem", System: "nvm",
				ProfileOps: 1000 * (c + 1), GrainOps: 10, Injections: int(2 * c),
			})
			for i := int64(0); i < 2*c; i++ {
				w.Row(campaign.InjectionRow{
					Outcome:  campaign.Outcome(i % 5),
					CrashOps: 100 * i, ReworkOps: i, FlushLines: i * 3,
					RecoverSimNS: 7 * i, ResumeSimNS: 11 * i,
				})
			}
		}
		if err := w.Close(); err != nil {
			f.Fatalf("seed store: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(headerMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// A parsed store must answer every query without panicking;
		// decode errors are acceptable, silence is not required.
		_ = s.Cells()
		_ = s.Scan(Filter{}, func(Row) error { return nil })
		if _, err := s.Aggregate(Filter{}); err != nil {
			return
		}
		if _, err := s.Distribution(Filter{Workload: "mm"}, MetricReworkOps); err != nil {
			return
		}
		_, _ = s.CampaignReport()
	})
}
