// Package resultstore is the campaign's columnar on-disk result plane:
// a deterministic, seekable file format holding one row per injection
// (outcome class, crash/rework op counts, flush traffic, recover and
// resume simulated time) plus the query layer that filters, streams,
// and aggregates those rows — including the rebuild of the
// adcc-campaign/v1 cell aggregates, demoting the JSON envelope to an
// export derived from the store.
//
// # File layout
//
// A store file ("*.adccs") is written strictly front to back:
//
//	[8]  header magic "ADCCSTO1"
//	per cell, in campaign grid order:
//	  column blocks, back to back:
//	    outcome       — one uvarint dictionary id per row
//	    crash ops     — zigzag varint deltas
//	    rework ops    — zigzag varint deltas
//	    flush lines   — zigzag varint deltas
//	    recover sim ns— zigzag varint deltas
//	    resume sim ns — zigzag varint deltas
//	footer:
//	  string dictionary (uvarint count; uvarint length + bytes each)
//	  cell index (uvarint count; per cell the workload/scheme/system/
//	    fault-model dictionary ids, profile and grain op constants, row
//	    count, absolute block offset, and the six column byte lengths)
//	  campaign meta (scale as 8-byte LE float bits, zigzag varint seed,
//	    uvarint total row count)
//	[8]  uint64 LE footer length
//	[8]  end magic "ADCCEND1"
//
// The trailer makes the format seekable: a reader finds the footer from
// the file end, then reads only the column blocks a query touches.
//
// # Determinism
//
// The campaign feeds the writer through Config.Sink, which both engines
// drive in plan-major point order on the strictly index-ordered
// observation path — so store bytes are identical at any -parallel
// width and across the legacy and replay engines. Strings intern into
// the dictionary in first-reference order and every integer encoding is
// positional, so equal row sequences produce equal files.
package resultstore

import (
	"encoding/binary"
	"fmt"
)

// Magic numbers framing a store file.
const (
	headerMagic = "ADCCSTO1"
	endMagic    = "ADCCEND1"
)

// Column indices of one cell's blocks, in on-disk order.
const (
	colOutcome = iota
	colCrashOps
	colReworkOps
	colFlushLines
	colRecoverSimNS
	colResumeSimNS
	numCols
)

// trailerLen is the fixed byte count after the footer: the uint64 LE
// footer length plus the end magic.
const trailerLen = 8 + len(endMagic)

// minFileLen is the smallest well-formed store: header magic, an empty
// footer's meta (8-byte scale + ≥1-byte seed + ≥1-byte total + two
// ≥1-byte counts), and the trailer.
const minFileLen = len(headerMagic) + 12 + trailerLen

// zigzag maps signed to unsigned so small magnitudes of either sign
// varint-encode short.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// byteReader decodes footer and column bytes with hard bounds: every
// read checks the remaining length, so truncated or bit-flipped files
// error instead of panicking or over-reading.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

// uvarint reads one bounded varint.
func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("resultstore: truncated or oversized varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// varint reads one bounded zigzag varint.
func (r *byteReader) varint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

// bytes reads exactly n bytes.
func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("resultstore: need %d bytes at offset %d, have %d", n, r.off, r.remaining())
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// cellEntry is one footer index record: a cell's coordinates (as
// dictionary ids), its per-cell constants, and where its column blocks
// live in the file.
type cellEntry struct {
	workload   uint64
	scheme     uint64
	system     uint64
	faultModel uint64
	profileOps int64
	grainOps   int64
	rowCount   int
	offset     int64
	colLen     [numCols]int64
}
