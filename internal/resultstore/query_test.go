package resultstore

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"adcc/internal/campaign"
)

// oraclePercentile is the naive nearest-rank definition, computed
// independently of the query layer: the smallest value v such that at
// least p·n of the values are ≤ v.
func oraclePercentile(vals []int64, p float64) int64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	need := int(math.Ceil(p * float64(len(sorted))))
	if need < 1 {
		need = 1
	}
	for _, v := range sorted {
		n := 0
		for _, u := range sorted {
			if u <= v {
				n++
			}
		}
		if n >= need {
			return v
		}
	}
	return sorted[len(sorted)-1]
}

// TestPercentileOracle: the store's percentile aggregation matches the
// naive sort-based oracle on random value sets of every small size and
// several larger ones.
func TestPercentileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sizes := []int{1, 2, 3, 4, 5, 7, 10, 19, 20, 21, 99, 100, 101, 1000}
	for _, n := range sizes {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
		}
		d := distOf(vals)
		for _, tc := range []struct {
			p    float64
			got  int64
			name string
		}{
			{0.50, d.P50, "p50"},
			{0.95, d.P95, "p95"},
			{0.99, d.P99, "p99"},
		} {
			if want := oraclePercentile(vals, tc.p); tc.got != want {
				t.Errorf("n=%d %s: got %d, oracle %d", n, tc.name, tc.got, want)
			}
		}
		var sum, max int64
		for _, v := range vals {
			sum += v
			if v > max {
				max = v
			}
		}
		if d.Sum != sum || d.Max != max || d.Count != int64(n) {
			t.Errorf("n=%d: Dist{Count:%d Sum:%d Max:%d}, want {%d %d %d}", n, d.Count, d.Sum, d.Max, n, sum, max)
		}
	}
}

// TestPercentileTies: duplicated values keep nearest-rank exact — the
// classic off-by-one trap.
func TestPercentileTies(t *testing.T) {
	d := distOf([]int64{5, 5, 5, 5, 5})
	if d.P50 != 5 || d.P95 != 5 || d.P99 != 5 {
		t.Fatalf("all-equal dist: %+v", d)
	}
	// 100 values 1..100: p50 = 50, p95 = 95, p99 = 99 exactly.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	d = distOf(vals)
	if d.P50 != 50 || d.P95 != 95 || d.P99 != 99 {
		t.Fatalf("1..100 dist: p50=%d p95=%d p99=%d, want 50/95/99", d.P50, d.P95, d.P99)
	}
}

// TestDistributionAndAggregate: Distribution and Aggregate agree with
// values extracted by a plain reference Scan.
func TestDistributionAndAggregate(t *testing.T) {
	b, ref, _, _ := genStore(t, 4242, 6)
	s, err := Open(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	f := Filter{Workload: "mm"}
	var rework, cost, flush []int64
	outcomes := map[string]int64{}
	var rows int64
	for _, r := range ref {
		if r.cell.Workload != "mm" {
			continue
		}
		rows++
		outcomes[r.row.Outcome.String()]++
		rework = append(rework, r.row.ReworkOps)
		cost = append(cost, r.row.RecoverSimNS+r.row.ResumeSimNS)
		flush = append(flush, r.row.FlushLines)
	}

	for _, tc := range []struct {
		m    Metric
		vals []int64
	}{
		{MetricReworkOps, rework},
		{MetricRecoverResumeSimNS, cost},
		{MetricFlushLines, flush},
	} {
		d, err := s.Distribution(f, tc.m)
		if err != nil {
			t.Fatalf("Distribution(%s): %v", tc.m, err)
		}
		if want := distOf(tc.vals); d != want {
			t.Errorf("Distribution(%s) = %+v, want %+v", tc.m, d, want)
		}
	}

	agg, err := s.Aggregate(f)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if agg.Rows != rows {
		t.Errorf("Aggregate.Rows = %d, want %d", agg.Rows, rows)
	}
	if len(agg.Outcomes) != len(outcomes) {
		t.Errorf("Aggregate.Outcomes = %v, want %v", agg.Outcomes, outcomes)
	}
	for k, v := range outcomes {
		if agg.Outcomes[k] != v {
			t.Errorf("Aggregate.Outcomes[%q] = %d, want %d", k, agg.Outcomes[k], v)
		}
	}
	if want := distOf(rework); agg.ReworkOps != want {
		t.Errorf("Aggregate.ReworkOps = %+v, want %+v", agg.ReworkOps, want)
	}
}

// TestMetricRoundTrip: every metric name parses back to its value.
func TestMetricRoundTrip(t *testing.T) {
	for i, name := range MetricNames() {
		m, err := ParseMetric(name)
		if err != nil || m != Metric(i) {
			t.Errorf("ParseMetric(%q) = %v, %v; want Metric(%d)", name, m, err, i)
		}
		if Metric(i).String() != name {
			t.Errorf("Metric(%d).String() = %q, want %q", i, Metric(i).String(), name)
		}
	}
	if _, err := ParseMetric("warp-cores"); err == nil {
		t.Error("ParseMetric accepted an unknown name")
	}
}

// TestCellReportsRebuild: cell aggregates rebuilt from stored rows
// match aggregates accumulated directly from the reference rows via
// the same Add/Finalize path, in canonical sort order.
func TestCellReportsRebuild(t *testing.T) {
	b, ref, _, _ := genStore(t, 77, 7)
	s, err := Open(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// The reference aggregation, cell-by-cell in insertion order.
	var want []campaign.CellReport
	var cur *campaign.CellReport
	var lastCell campaign.CellInfo
	flush := func() {
		if cur != nil {
			cur.Finalize(0)
			want = append(want, *cur)
			cur = nil
		}
	}
	for i, r := range ref {
		if i == 0 || r.cell != lastCell {
			flush()
			cur = &campaign.CellReport{
				Workload: r.cell.Workload, Scheme: r.cell.Scheme,
				System: r.cell.System, FaultModel: r.cell.FaultModel,
				ProfileOps: r.cell.ProfileOps, GrainOps: r.cell.GrainOps,
			}
			lastCell = r.cell
		}
		cur.Add(r.row)
	}
	flush()
	campaign.SortCells(want)

	got, err := s.CellReports(Filter{})
	if err != nil {
		t.Fatalf("CellReports: %v", err)
	}
	// genStore can emit zero-injection cells, which produce empty
	// reports the reference loop above never starts; drop them.
	var gotNonEmpty []campaign.CellReport
	for _, c := range got {
		if c.Injections > 0 {
			gotNonEmpty = append(gotNonEmpty, c)
		}
	}
	if len(gotNonEmpty) != len(want) {
		t.Fatalf("CellReports: %d non-empty cells, want %d", len(gotNonEmpty), len(want))
	}
	for i := range want {
		if gotNonEmpty[i] != want[i] {
			t.Errorf("cell %d:\n got %+v\nwant %+v", i, gotNonEmpty[i], want[i])
		}
	}
}
