package mc

import (
	"math"
	"testing"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

func newSim(t *testing.T, cfg Config) *Sim {
	t.Helper()
	clock := &sim.Clock{}
	h := mem.NewHeap(nil)
	return New(h, sim.DefaultCPU(clock), cfg)
}

func TestGridConstruction(t *testing.T) {
	s := newSim(t, TinyConfig())
	g := s.EnergyGrid.Live()
	for i := 1; i < len(g); i++ {
		if g[i] < g[i-1] {
			t.Fatalf("energy grid not sorted at %d", i)
		}
	}
	if g[0] != 0 {
		t.Fatalf("grid must start at 0, got %v", g[0])
	}
	// Index table: every entry within [0, P-2].
	p := int64(s.Cfg.PointsPerNuclide)
	for _, j := range s.XSIndices.Live() {
		if j < 0 || j > p-2 {
			t.Fatalf("xs index %d out of range", j)
		}
	}
}

func TestIndexTableBrackets(t *testing.T) {
	s := newSim(t, TinyConfig())
	nuc := s.Cfg.Nuclides
	p := s.Cfg.PointsPerNuclide
	union := s.EnergyGrid.Live()
	for gi := 0; gi < len(union); gi += 37 {
		e := union[gi]
		for n := 0; n < nuc; n++ {
			j := int(s.XSIndices.Live()[gi*nuc+n])
			eLo := s.NuclideGrids.Live()[(n*p+j)*6]
			eHi := s.NuclideGrids.Live()[(n*p+j+1)*6]
			// es[j] <= e <= es[j+1] except at the clamped top.
			if eLo > e && j > 0 {
				t.Fatalf("bracket low violated: nuclide %d point %d: %v > %v", n, gi, eLo, e)
			}
			if eHi < e && j < p-2 {
				t.Fatalf("bracket high violated: nuclide %d point %d: %v < %v", n, gi, eHi, e)
			}
		}
	}
}

func TestSamplingDeterministicAndUniform(t *testing.T) {
	s := newSim(t, TinyConfig())
	if s.Sample(5, 0) != s.Sample(5, 0) {
		t.Fatal("sampling not deterministic")
	}
	if s.Sample(5, 0) == s.Sample(6, 0) {
		t.Fatal("different lookups produced identical samples")
	}
	if s.Sample(5, 0) == s.Sample(5, 1) {
		t.Fatal("different streams produced identical samples")
	}
	// Crude uniformity check.
	sum := 0.0
	n := 10000
	for i := 0; i < n; i++ {
		u := s.Sample(int64(i), 0)
		if u < 0 || u >= 1 {
			t.Fatalf("sample out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("sample mean = %v, want ~0.5", mean)
	}
}

func TestMaterialDistribution(t *testing.T) {
	s := newSim(t, TinyConfig())
	counts := make([]int, len(materialProb))
	n := 20000
	for i := 0; i < n; i++ {
		counts[s.MaterialOf(int64(i))]++
	}
	for m, pr := range materialProb {
		got := float64(counts[m]) / float64(n)
		if math.Abs(got-pr) > 0.02 {
			t.Fatalf("material %d frequency %v, want ~%v", m, got, pr)
		}
	}
}

func TestLookupCountsSumToLookups(t *testing.T) {
	s := newSim(t, TinyConfig())
	n := 500
	for i := 0; i < n; i++ {
		typ := s.Lookup(int64(i))
		if typ < 0 || typ >= NumTypes {
			t.Fatalf("lookup returned type %d", typ)
		}
	}
	c := s.Counts()
	total := int64(0)
	for _, v := range c {
		total += v
	}
	if total != int64(n) {
		t.Fatalf("counter total = %d, want %d", total, n)
	}
}

func TestLookupDeterministicReplay(t *testing.T) {
	// Two independent sims with the same seed must make identical
	// choices — the foundation of the paper's crash/no-crash
	// comparison methodology.
	s1 := newSim(t, TinyConfig())
	s2 := newSim(t, TinyConfig())
	for i := 0; i < 300; i++ {
		if s1.Lookup(int64(i)) != s2.Lookup(int64(i)) {
			t.Fatalf("lookup %d diverged between identical sims", i)
		}
	}
}

func TestTypeDistributionRoughlyUniform(t *testing.T) {
	// Paper: "the number of times an interaction type is chosen is
	// roughly the same for all interaction types".
	cfg := TinyConfig()
	cfg.Lookups = 5000
	s := newSim(t, cfg)
	for i := 0; i < cfg.Lookups; i++ {
		s.Lookup(int64(i))
	}
	p := Percentages(s.Counts(), cfg.Lookups)
	for k, v := range p {
		if v < 14 || v > 26 {
			t.Fatalf("type %d share %v%%, want ~20%%", k, v)
		}
	}
}

func TestMacroXSAccumulates(t *testing.T) {
	s := newSim(t, TinyConfig())
	s.Lookup(0)
	v1 := s.MacroXS.Live()[MacroOff]
	s.Lookup(1)
	v2 := s.MacroXS.Live()[MacroOff]
	if v2 <= v1 {
		t.Fatal("macro_xs does not accumulate across lookups")
	}
}

func TestMacroXSStraddlesLines(t *testing.T) {
	s := newSim(t, TinyConfig())
	first := s.MacroXS.Addr(MacroOff).LineAddr()
	last := s.MacroXS.Addr(MacroOff + NumTypes - 1).LineAddr()
	if first == last {
		t.Fatal("macro_xs must straddle two cache lines (unaligned layout)")
	}
}

func TestCountersOnSeparateLines(t *testing.T) {
	s := newSim(t, TinyConfig())
	seen := map[mem.Addr]bool{}
	for k := 0; k < NumTypes; k++ {
		la := s.CounterAddr(k).LineAddr()
		if seen[la] {
			t.Fatal("two counters share a cache line")
		}
		seen[la] = true
	}
}

func TestPercentages(t *testing.T) {
	p := Percentages([NumTypes]int64{10, 20, 30, 25, 15}, 100)
	if p[0] != 10 || p[2] != 30 {
		t.Fatalf("percentages = %v", p)
	}
}

func TestCountsImageInitiallyZero(t *testing.T) {
	s := newSim(t, TinyConfig())
	s.Lookup(0)
	for _, v := range s.CountsImage() {
		if v != 0 {
			t.Fatal("image counters nonzero before any writeback")
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	clock := &sim.Clock{}
	New(mem.NewHeap(nil), sim.DefaultCPU(clock), Config{Nuclides: 1, PointsPerNuclide: 2, Lookups: 0})
}
