// Package mc implements the Monte-Carlo macroscopic cross-section lookup
// substrate of paper §III-D — an XSBench-equivalent kernel: a unionized
// energy grid over a set of nuclide grids, randomized (energy, material)
// lookups, binary search, interpolation, and accumulation into the
// five-element macro_xs vector, plus the paper's deterministic extension
// (CDF choice over the five interaction types, counted by five counters)
// that gives the benchmark a physically meaningful, checkable result.
//
// Sampling is stateless: the inputs of lookup i are a pure function of
// (seed, i), so a crashed-and-restarted run replays exactly the same
// samples as an uninterrupted run — the property the paper relies on for
// its "same randomly sampled inputs" comparisons (Figures 10 and 12).
//
// Layout notes that matter for crash consistency:
//
//   - macro_xs is deliberately not cache-line aligned (as in the real
//     benchmark, where it lives unaligned inside the lookup routine's
//     data): its five elements straddle two cache lines, so after a
//     crash the two halves can be stale by different amounts;
//   - each of the five counters is padded to its own cache line, so
//     their persistence ages diverge under random eviction pressure.
//
// These two properties produce the result bias of Figure 10 when the
// naive restart scheme is used.
package mc

import (
	"fmt"
	"math/rand"
	"sort"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

// NumTypes is the number of particle interaction types tracked.
const NumTypes = 5

// MacroOff is the element offset of macro_xs inside its region, chosen
// so the five elements straddle a cache-line boundary (elements 6,7 in
// one line; 8,9,10 in the next).
const MacroOff = 6

// counterStride pads each interaction counter to its own cache line.
const counterStride = mem.LineSize / 8

// Config sizes the simulation. The defaults are the paper's XSBench
// configuration scaled down 100x in lookups and ~6x in grid points
// (ARCHITECTURE.md, "Scaling"); all crash/flush parameters elsewhere are expressed as
// fractions of Lookups, so the scaling preserves the paper's shape.
type Config struct {
	// Nuclides is the number of fuel nuclides (paper: 34).
	Nuclides int
	// PointsPerNuclide is the number of grid points per nuclide grid.
	PointsPerNuclide int
	// Lookups is the total number of macroscopic lookups.
	Lookups int
	// Seed drives grid construction and lookup sampling.
	Seed int64
}

// DefaultConfig returns the scaled Hoogenboom-Martin-style configuration.
func DefaultConfig() Config {
	return Config{Nuclides: 34, PointsPerNuclide: 2000, Lookups: 150_000, Seed: 42}
}

// TinyConfig returns a test-sized configuration.
func TinyConfig() Config {
	return Config{Nuclides: 8, PointsPerNuclide: 128, Lookups: 2000, Seed: 7}
}

// Sim is one cross-section lookup simulation instance over simulated
// memory.
type Sim struct {
	Cfg Config

	cpu *sim.CPU

	// EnergyGrid is the unionized energy grid (sorted).
	EnergyGrid *mem.F64
	// XSIndices maps each unionized grid point to an index in every
	// nuclide grid (G x Nuclides, row-major).
	XSIndices *mem.I64
	// NuclideGrids holds, per nuclide, PointsPerNuclide rows of
	// (energy, xs0..xs4), flattened.
	NuclideGrids *mem.F64
	// MacroXS is the five-element accumulator (at MacroOff).
	MacroXS *mem.F64
	// Counters holds the five interaction-type counters, one per line.
	Counters *mem.I64
	// Iter is the loop index variable's memory home (its cache line is
	// what the paper's extensions flush).
	Iter *mem.I64

	gridPoints int
	materials  [][]int
	matCDF     []float64
}

// XSBench's material sampling distribution (12 materials; index 0 is
// fuel, which contains every nuclide).
var materialProb = []float64{
	0.140, 0.052, 0.275, 0.134, 0.154, 0.064,
	0.066, 0.055, 0.008, 0.015, 0.025, 0.013,
}

// New builds the simulation: generates the grids natively, uploads them
// into heap regions, and marks the initial state persistent.
func New(h *mem.Heap, cpu *sim.CPU, cfg Config) *Sim {
	if cfg.Nuclides < 2 || cfg.PointsPerNuclide < 4 || cfg.Lookups < 1 {
		panic(fmt.Sprintf("mc: invalid config %+v", cfg))
	}
	s := &Sim{Cfg: cfg, cpu: cpu}
	rng := rand.New(rand.NewSource(cfg.Seed))

	nuc, p := cfg.Nuclides, cfg.PointsPerNuclide
	// Per-nuclide grids: sorted random energies with uniform(0,1)
	// cross sections for the five reaction channels.
	nucEnergies := make([][]float64, nuc)
	grids := make([]float64, nuc*p*6)
	for n := 0; n < nuc; n++ {
		es := make([]float64, p)
		for i := range es {
			es[i] = rng.Float64()
		}
		sort.Float64s(es)
		es[0], es[p-1] = 0, 1 // cover the sampling domain
		nucEnergies[n] = es
		for i := 0; i < p; i++ {
			row := grids[(n*p+i)*6:]
			row[0] = es[i]
			for k := 1; k < 6; k++ {
				row[k] = rng.Float64()
			}
		}
	}
	// Unionized grid: the sorted union of all nuclide energies, with a
	// per-nuclide index table (classic XSBench structure).
	g := nuc * p
	s.gridPoints = g
	union := make([]float64, 0, g)
	for _, es := range nucEnergies {
		union = append(union, es...)
	}
	sort.Float64s(union)
	indices := make([]int64, g*nuc)
	for n := 0; n < nuc; n++ {
		es := nucEnergies[n]
		for i, e := range union {
			j := sort.SearchFloat64s(es, e)
			// Want es[j] <= e < es[j+1] with j in [0, p-2].
			if j >= p-1 {
				j = p - 2
			} else if j > 0 && es[j] > e {
				j--
			}
			indices[i*nuc+n] = int64(j)
		}
	}

	s.EnergyGrid = h.AllocF64("mc.energygrid", g)
	copy(s.EnergyGrid.Live(), union)
	s.XSIndices = h.AllocI64("mc.xsindices", g*nuc)
	copy(s.XSIndices.Live(), indices)
	s.NuclideGrids = h.AllocF64("mc.nuclidegrids", nuc*p*6)
	copy(s.NuclideGrids.Live(), grids)
	s.MacroXS = h.AllocF64("mc.macroxs", 16)
	s.Counters = h.AllocI64("mc.counters", NumTypes*counterStride)
	s.Iter = h.AllocI64("mc.iter", 1)

	// Materials: fuel (all nuclides) plus 11 small deterministic
	// subsets, scaled from the Hoogenboom-Martin composition.
	sizes := []int{nuc, 5, 4, 4, 3, 2, 3, 2, 2, 2, 3, 2}
	s.materials = make([][]int, len(sizes))
	for m, sz := range sizes {
		if sz > nuc {
			sz = nuc
		}
		list := make([]int, sz)
		for i := range list {
			list[i] = (m*7 + i*3) % nuc
		}
		if m == 0 {
			for i := 0; i < nuc; i++ {
				list[i] = i
			}
		}
		s.materials[m] = list
	}
	s.matCDF = make([]float64, len(materialProb))
	sum := 0.0
	for i, pr := range materialProb {
		sum += pr
		s.matCDF[i] = sum
	}

	// The benchmark's input state is persistent before the run starts.
	copy(s.EnergyGrid.Image(), s.EnergyGrid.Live())
	copy(s.XSIndices.Image(), s.XSIndices.Live())
	copy(s.NuclideGrids.Image(), s.NuclideGrids.Live())
	return s
}

// GridBytes returns the simulated footprint of the two read-only grids.
func (s *Sim) GridBytes() int {
	return s.EnergyGrid.Bytes() + s.XSIndices.Bytes() + s.NuclideGrids.Bytes()
}

// splitmix64 is the stateless sample generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamC separates the per-lookup sample streams; twoStreamC is
// 2*streamC mod 2^64, computed through a function call because the
// doubled value overflows a uint64 constant expression.
const streamC uint64 = 0xda942042e4dd58b5

var twoStreamC = func(c uint64) uint64 { return c + c }(streamC)

// toUnit maps a 64-bit hash onto [0,1). Multiplying by the exact
// reciprocal of 2^53 is bit-identical to dividing by 2^53.
func toUnit(x uint64) float64 {
	return float64(x>>11) * (1.0 / (1 << 53))
}

// sampleBase returns the per-lookup hash all sample streams derive
// from. Sampling is stateless and per-Sim: there is no shared RNG, so
// concurrent simulations (one Sim per worker goroutine) never contend.
func (s *Sim) sampleBase(i int64) uint64 {
	return uint64(s.Cfg.Seed)<<32 ^ uint64(i)*0x9e3779b97f4a7c15
}

// Sample returns the stream-th uniform(0,1) sample of lookup i.
func (s *Sim) Sample(i int64, stream uint64) float64 {
	return toUnit(splitmix64(s.sampleBase(i) ^ stream*streamC))
}

// MaterialOf returns the material sampled for lookup i.
func (s *Sim) MaterialOf(i int64) int {
	return s.materialFromU(s.Sample(i, 1))
}

// materialFromU maps a uniform sample onto the material CDF.
func (s *Sim) materialFromU(u float64) int {
	for m, c := range s.matCDF {
		if u < c {
			return m
		}
	}
	return len(s.matCDF) - 1
}

// SampleLookup returns the sampled inputs of lookup i — the energy, the
// material, and the interaction-choice uniform — in one call. It is the
// sampling path of Lookup, exposed so the benchmark suite can measure
// it in isolation. Batching the three streams computes the per-lookup
// base hash once; the values are bit-identical to Sample(i, 0..2).
func (s *Sim) SampleLookup(i int64) (energy float64, mat int, choice float64) {
	base := s.sampleBase(i)
	energy = toUnit(splitmix64(base))
	mat = s.materialFromU(toUnit(splitmix64(base ^ streamC)))
	choice = toUnit(splitmix64(base ^ twoStreamC))
	return energy, mat, choice
}

// Lookup executes lookup i (paper Figure 9 plus the CDF extension):
// sample (energy, material), binary-search the unionized grid, gather
// and interpolate each constituent nuclide's cross sections into
// macro_xs, then choose an interaction type from the normalized CDF of
// the accumulated macro_xs and bump its counter. The chosen type is
// returned.
func (s *Sim) Lookup(i int64) int {
	energy, mat, choice := s.SampleLookup(i)

	// Binary search on the unionized energy grid (each probe is a
	// simulated memory access, as in the real benchmark).
	lo, hi := 0, s.gridPoints-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if s.EnergyGrid.At(mid) <= energy {
			lo = mid
		} else {
			hi = mid
		}
		s.cpu.Compute(4)
	}
	idx := lo

	nuc := s.Cfg.Nuclides
	indices := s.XSIndices.LoadRange(idx*nuc, nuc)
	for _, n := range s.materials[mat] {
		j := int(indices[n])
		base := (n*s.Cfg.PointsPerNuclide + j) * 6
		ptLo := s.NuclideGrids.LoadRange(base, 6)
		ptHi := s.NuclideGrids.LoadRange(base+6, 6)
		span := ptHi[0] - ptLo[0]
		f := 0.0
		if span > 0 {
			f = (energy - ptLo[0]) / span
		}
		if f < 0 {
			f = 0
		} else if f > 1 {
			f = 1
		}
		// Accumulate the five interpolated cross sections into
		// macro_xs — the frequently updated state the paper studies.
		for k := 0; k < NumTypes; k++ {
			xs := ptLo[k+1]*(1-f) + ptHi[k+1]*f
			s.MacroXS.Set(MacroOff+k, s.MacroXS.At(MacroOff+k)+xs)
		}
		s.cpu.Compute(30)
	}

	// The paper's extension: normalized CDF over the accumulated
	// macro_xs selects the interaction type for this lookup.
	vals := s.MacroXS.LoadRange(MacroOff, NumTypes)
	var cdf [NumTypes]float64
	sum := 0.0
	for k, v := range vals {
		sum += v
		cdf[k] = sum
	}
	t := NumTypes - 1
	if sum > 0 {
		u := choice * sum
		for k := 0; k < NumTypes; k++ {
			if u < cdf[k] {
				t = k
				break
			}
		}
	}
	s.Counters.Set(t*counterStride, s.Counters.At(t*counterStride)+1)
	s.cpu.Compute(12)
	return t
}

// Counts returns the live values of the five interaction counters.
func (s *Sim) Counts() [NumTypes]int64 {
	var c [NumTypes]int64
	for k := 0; k < NumTypes; k++ {
		c[k] = s.Counters.Live()[k*counterStride]
	}
	return c
}

// CountsImage returns the persistent (NVM image) counter values.
func (s *Sim) CountsImage() [NumTypes]int64 {
	var c [NumTypes]int64
	for k := 0; k < NumTypes; k++ {
		c[k] = s.Counters.Image()[k*counterStride]
	}
	return c
}

// Percentages normalizes counts by the total number of lookups,
// as plotted in the paper's Figures 10 and 12.
func Percentages(c [NumTypes]int64, lookups int) [NumTypes]float64 {
	var p [NumTypes]float64
	for k := range c {
		p[k] = 100 * float64(c[k]) / float64(lookups)
	}
	return p
}

// CounterAddr returns the address of counter k (for targeted flushes).
func (s *Sim) CounterAddr(k int) mem.Addr {
	return s.Counters.Addr(k * counterStride)
}
