package mc

import (
	"testing"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

// TestSampleLookupMatchesSampleStreams pins the batched sampling path
// to the stream-indexed Sample definition: the batch must be
// bit-identical, or crashed-and-restarted runs would replay different
// inputs than the figures assume.
func TestSampleLookupMatchesSampleStreams(t *testing.T) {
	h := mem.NewHeap(nil)
	clock := &sim.Clock{}
	s := New(h, sim.DefaultCPU(clock), TinyConfig())
	for i := int64(0); i < 10_000; i++ {
		energy, mat, choice := s.SampleLookup(i)
		if want := s.Sample(i, 0); energy != want {
			t.Fatalf("lookup %d: energy %v != Sample(i,0) %v", i, energy, want)
		}
		if want := s.MaterialOf(i); mat != want {
			t.Fatalf("lookup %d: material %d != MaterialOf %d", i, mat, want)
		}
		if want := s.Sample(i, 2); choice != want {
			t.Fatalf("lookup %d: choice %v != Sample(i,2) %v", i, choice, want)
		}
	}
}

// TestTwoStreamC pins the wrapped doubled stream constant.
func TestTwoStreamC(t *testing.T) {
	var want uint64
	for k := 0; k < 2; k++ {
		want += streamC
	}
	if twoStreamC != want {
		t.Fatalf("twoStreamC = %#x, want %#x", twoStreamC, want)
	}
}
