package engine

import (
	"testing"

	"adcc/internal/cache"
	"adcc/internal/crash"
)

func testMachine() *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: crash.NVMOnly,
		Cache:  cache.DefaultConfig(),
	})
}

func TestRegistryHasBuiltinSchemes(t *testing.T) {
	want := map[string]struct {
		kind   Kind
		system crash.SystemKind
		flush  FlushPolicy
	}{
		SchemeNative:     {KindNative, crash.NVMOnly, FlushNone},
		SchemeCkptHDD:    {KindCheckpoint, crash.NVMOnly, FlushNone},
		SchemeCkptNVM:    {KindCheckpoint, crash.NVMOnly, FlushNone},
		SchemeCkptHetero: {KindCheckpoint, crash.Hetero, FlushNone},
		SchemePMEM:       {KindPMEM, crash.NVMOnly, FlushNone},
		SchemeAlgoNVM:    {KindAlgo, crash.NVMOnly, FlushSelective},
		SchemeAlgoHetero: {KindAlgo, crash.Hetero, FlushSelective},
		SchemeAlgoNaive:  {KindAlgo, crash.NVMOnly, FlushIndexOnly},
		SchemeAlgoEvery:  {KindAlgo, crash.NVMOnly, FlushEveryIter},
	}
	if got := len(Names()); got < len(want) {
		t.Fatalf("registry holds %d schemes, want >= %d", got, len(want))
	}
	for name, w := range want {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("scheme %q not registered", name)
		}
		if sc.Name() != name {
			t.Fatalf("scheme %q reports name %q", name, sc.Name())
		}
		if sc.Kind() != w.kind || sc.System() != w.system || sc.FlushPolicy() != w.flush {
			t.Fatalf("scheme %q = (%v, %v, %v), want (%v, %v, %v)",
				name, sc.Kind(), sc.System(), sc.FlushPolicy(), w.kind, w.system, w.flush)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("no-such-scheme"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of unknown name did not panic")
		}
	}()
	MustLookup("no-such-scheme")
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(&scheme{name: SchemeNative})
}

func TestSevenCasesOrder(t *testing.T) {
	cases := SevenCases()
	wantOrder := []string{
		SchemeNative, SchemeCkptHDD, SchemeCkptNVM, SchemeCkptHetero,
		SchemePMEM, SchemeAlgoNVM, SchemeAlgoHetero,
	}
	if len(cases) != len(wantOrder) {
		t.Fatalf("SevenCases returned %d schemes", len(cases))
	}
	for i, sc := range cases {
		if sc.Name() != wantOrder[i] {
			t.Fatalf("case %d = %q, want %q (presentation order)", i, sc.Name(), wantOrder[i])
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindNative, KindCheckpoint, KindPMEM, KindAlgo} {
		if k.String() == "" {
			t.Fatalf("Kind(%d) has empty name", int(k))
		}
	}
}

func TestNativeGuardIsInert(t *testing.T) {
	m := testMachine()
	r := m.Heap.AllocF64("v", 64)
	g := MustLookup(SchemeNative).NewGuard(m, 0)
	g.Register(r)
	g.EndIteration(1, r)
	if g.Pool() != nil || g.Checkpointer() != nil {
		t.Fatal("native guard exposes a mechanism")
	}
}

func TestCheckpointGuardSavesAndRestores(t *testing.T) {
	m := testMachine()
	r := m.Heap.AllocF64("v", 64)
	g := MustLookup(SchemeCkptNVM).NewGuard(m, 0)
	if g.Pool() != nil {
		t.Fatal("checkpoint guard exposes a PMEM pool")
	}
	cp := g.Checkpointer()
	if cp == nil {
		t.Fatal("checkpoint guard has no checkpointer")
	}
	for i := 0; i < 64; i++ {
		r.Set(i, float64(i))
	}
	g.EndIteration(7, r)
	if !cp.Valid() || cp.Tag() != 7 {
		t.Fatalf("checkpoint not recorded: valid=%v tag=%d", cp.Valid(), cp.Tag())
	}
	for i := 0; i < 64; i++ {
		r.Set(i, -1)
	}
	if tag := cp.Restore(r); tag != 7 {
		t.Fatalf("restore tag = %d, want 7", tag)
	}
	for i := 0; i < 64; i++ {
		if r.Live()[i] != float64(i) {
			t.Fatalf("restored v[%d] = %v, want %d", i, r.Live()[i], i)
		}
	}
}

func TestPMEMGuardTransactionalDomain(t *testing.T) {
	m := testMachine()
	r := m.Heap.AllocF64("v", 64)
	g := MustLookup(SchemePMEM).NewGuard(m, 4096)
	pool := g.Pool()
	if pool == nil {
		t.Fatal("PMEM guard has no pool")
	}
	if g.Checkpointer() != nil {
		t.Fatal("PMEM guard exposes a checkpointer")
	}
	g.Register(r)
	tx := pool.Begin()
	tx.SetF64(r, 3, 42)
	tx.Commit()
	if r.Live()[3] != 42 {
		t.Fatalf("transactional store lost: %v", r.Live()[3])
	}
}

func TestCkptHDDGuardUsesHDDTarget(t *testing.T) {
	mNVM := testMachine()
	rNVM := mNVM.Heap.AllocF64("v", 1<<14)
	gNVM := MustLookup(SchemeCkptNVM).NewGuard(mNVM, 0)

	mHDD := testMachine()
	rHDD := mHDD.Heap.AllocF64("v", 1<<14)
	gHDD := MustLookup(SchemeCkptHDD).NewGuard(mHDD, 0)

	start := mNVM.Clock.Now()
	gNVM.EndIteration(1, rNVM)
	nvmNS := mNVM.Clock.Since(start)

	start = mHDD.Clock.Now()
	gHDD.EndIteration(1, rHDD)
	hddNS := mHDD.Clock.Since(start)

	if hddNS <= nvmNS {
		t.Fatalf("HDD checkpoint (%d ns) should cost more than NVM (%d ns)", hddNS, nvmNS)
	}
}
