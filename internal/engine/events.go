package engine

import "fmt"

// Event is a streaming progress notification emitted while a sweep
// runs: experiment cases starting and finishing, campaign injection
// outcomes, and stage progress counts. Events are emitted in
// deterministic case-index order (see RunCasesObserved), so a recorded
// event stream is byte-identical at any worker-pool width — embedders
// can assert on it the same way the harness asserts on tables.
//
// The concrete types are CaseStarted, CaseFinished, InjectionDone, and
// Progress; consumers type-switch on them or use the String rendering.
type Event interface {
	fmt.Stringer
	// event marks the closed set of implementations.
	event()
}

// EventSink receives events. Emit is called sequentially (never
// concurrently) by a single sweep, in deterministic order; a sink used
// by several concurrent sweeps must synchronize itself.
type EventSink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the EventSink interface.
type SinkFunc func(Event)

// Emit implements EventSink.
func (f SinkFunc) Emit(e Event) { f(e) }

// CaseStarted marks a case's entry into the ordered event stream: it
// is always followed by the case's CaseFinished, and the pair is
// emitted once every lower-indexed case has finished. The stream is
// therefore live — the completed prefix streams while later cases are
// still running — but CaseStarted is not a wall-clock start marker: at
// any pool width (including serial) the case has already executed by
// the time its pair is emitted. Consumers key case boundaries,
// labels, and progress counts on it, not timing.
type CaseStarted struct {
	// Experiment is the sweep the case belongs to (a figure name, a
	// campaign stage, or "run/<workload>" for Runner sweeps).
	Experiment string
	// Case labels the case within the sweep (a scheme or class name).
	Case string
	// Index and Total locate the case in the sweep.
	Index, Total int
}

func (e CaseStarted) event() {}

// String renders the event as a stable single line.
func (e CaseStarted) String() string {
	return fmt.Sprintf("%s: case %d/%d %s: started", e.Experiment, e.Index+1, e.Total, e.Case)
}

// CaseFinished reports a completed experiment case.
type CaseFinished struct {
	Experiment   string
	Case         string
	Index, Total int
	// Err is the case's error text, empty on success.
	Err string
}

func (e CaseFinished) event() {}

// String renders the event as a stable single line.
func (e CaseFinished) String() string {
	status := "ok"
	if e.Err != "" {
		status = "error: " + e.Err
	}
	return fmt.Sprintf("%s: case %d/%d %s: %s", e.Experiment, e.Index+1, e.Total, e.Case, status)
}

// InjectionDone reports one classified crash injection of a campaign
// sweep.
type InjectionDone struct {
	// Cell is the workload/scheme@system coordinate of the injection.
	Cell string
	// Index and Total locate the injection in the flattened sweep.
	Index, Total int
	// Outcome is the classification (clean, recomputed, corrupt,
	// unrecoverable, no-crash).
	Outcome string
}

func (e InjectionDone) event() {}

// String renders the event as a stable single line.
func (e InjectionDone) String() string {
	return fmt.Sprintf("campaign: injection %d/%d %s: %s", e.Index+1, e.Total, e.Cell, e.Outcome)
}

// Progress reports completion counts for a named stage (for example the
// campaign's per-cell profiling pass).
type Progress struct {
	Stage       string
	Done, Total int
}

func (e Progress) event() {}

// String renders the event as a stable single line.
func (e Progress) String() string {
	return fmt.Sprintf("%s: %d/%d", e.Stage, e.Done, e.Total)
}

// EmitCases builds a RunCasesObserved callback that streams a
// CaseStarted/CaseFinished pair per case to sink, in case-index order.
// label names case i (nil labels cases "case-<i>"); a nil sink returns
// a nil callback, so callers can wire events unconditionally.
func EmitCases[T any](sink EventSink, experiment string, total int, label func(i int) string) func(i int, v T, err error) {
	if sink == nil {
		return nil
	}
	name := func(i int) string {
		if label == nil {
			return fmt.Sprintf("case-%d", i)
		}
		return label(i)
	}
	return func(i int, _ T, err error) {
		sink.Emit(CaseStarted{Experiment: experiment, Case: name(i), Index: i, Total: total})
		fin := CaseFinished{Experiment: experiment, Case: name(i), Index: i, Total: total}
		if err != nil {
			fin.Err = err.Error()
		}
		sink.Emit(fin)
	}
}
