package engine

import (
	"fmt"

	"adcc/internal/ckpt"
	"adcc/internal/crash"
	"adcc/internal/mem"
	"adcc/internal/pmem"
)

// Guard is the per-run binding of a scheme to a machine: the uniform
// iteration-protection hooks a workload loop drives instead of switching
// on a mechanism enum. A native guard does nothing; a checkpoint guard
// saves the protected regions at iteration boundaries; a PMEM guard
// exposes a transaction pool the iteration body must write through.
//
// Guards carry per-run state (checkpointer, undo log) and are not safe
// for concurrent use; build one per workload run.
type Guard interface {
	// Register places regions under the guard's protection domain.
	// PMEM guards add them to the transactional pool; the others no-op.
	Register(regions ...mem.Region)
	// Pool returns the transaction pool of a PMEM guard, nil otherwise.
	// A non-nil pool means the iteration body must perform its
	// persistent updates transactionally.
	Pool() *pmem.Pool
	// EndIteration runs the guard's end-of-iteration action for the
	// given regions under a tag (typically the iteration number):
	// checkpoint guards save them, the others no-op.
	EndIteration(tag int64, regions ...mem.Region)
	// Checkpointer returns the underlying checkpointer of a checkpoint
	// guard, nil otherwise. Restart paths use it to restore state.
	Checkpointer() *ckpt.Checkpointer
}

// nativeGuard is the no-op guard of native and algorithm-directed runs
// (the latter protect themselves via selective flushes in the workload).
type nativeGuard struct{}

// NewNativeGuard returns the no-op guard.
func NewNativeGuard() Guard { return nativeGuard{} }

func (nativeGuard) Register(...mem.Region)            {}
func (nativeGuard) Pool() *pmem.Pool                  { return nil }
func (nativeGuard) EndIteration(int64, ...mem.Region) {}
func (nativeGuard) Checkpointer() *ckpt.Checkpointer  { return nil }

// checkpointGuard saves the protected regions on every EndIteration.
type checkpointGuard struct {
	cp *ckpt.Checkpointer
}

// NewCheckpointGuard wraps a checkpointer as a Guard. The caller chooses
// the target device (ckpt.NewHDD / ckpt.NewNVM).
func NewCheckpointGuard(cp *ckpt.Checkpointer) Guard {
	if cp == nil {
		panic("engine: checkpoint guard requires a checkpointer")
	}
	return &checkpointGuard{cp: cp}
}

func (g *checkpointGuard) Register(...mem.Region) {}
func (g *checkpointGuard) Pool() *pmem.Pool       { return nil }
func (g *checkpointGuard) EndIteration(tag int64, regions ...mem.Region) {
	g.cp.Checkpoint(tag, regions...)
}
func (g *checkpointGuard) Checkpointer() *ckpt.Checkpointer { return g.cp }

// pmemGuard owns an undo-log pool; registered regions join its
// transactional domain and the workload writes through Pool().
type pmemGuard struct {
	pool *pmem.Pool
}

// NewPMEMGuard builds a guard around a fresh undo-log pool able to hold
// logElems logged element values.
func NewPMEMGuard(m *crash.Machine, logElems int) Guard {
	return &pmemGuard{pool: pmem.NewPool(m, logElems)}
}

func (g *pmemGuard) Register(regions ...mem.Region) {
	for _, r := range regions {
		switch t := r.(type) {
		case *mem.F64:
			g.pool.RegisterF64(t)
		case *mem.I64:
			g.pool.RegisterI64(t)
		default:
			panic(fmt.Sprintf("engine: unsupported region type %T", r))
		}
	}
}
func (g *pmemGuard) Pool() *pmem.Pool                  { return g.pool }
func (g *pmemGuard) EndIteration(int64, ...mem.Region) {}
func (g *pmemGuard) Checkpointer() *ckpt.Checkpointer  { return nil }
