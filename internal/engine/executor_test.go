package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestInstanceRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&scheme{name: "x"}); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	err := r.Register(&scheme{name: "x"})
	if err == nil {
		t.Fatal("duplicate Register on an instance registry returned nil")
	}
	if !strings.Contains(err.Error(), `"x"`) {
		t.Fatalf("duplicate error %q does not name the conflicting scheme", err)
	}
	if err := r.Register(nil); err == nil {
		t.Fatal("Register(nil) returned nil error")
	}
}

func TestInstanceRegistriesAreIndependent(t *testing.T) {
	a, b := NewBuiltinRegistry(), NewBuiltinRegistry()
	if err := a.Register(&scheme{name: "only-in-a"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup("only-in-a"); !ok {
		t.Fatal("scheme missing from its own registry")
	}
	if _, ok := b.Lookup("only-in-a"); ok {
		t.Fatal("scheme leaked into an unrelated registry")
	}
	if _, ok := Lookup("only-in-a"); ok {
		t.Fatal("scheme leaked into the process-global registry")
	}
	if got, want := len(b.SevenCases()), 7; got != want {
		t.Fatalf("builtin registry SevenCases = %d, want %d", got, want)
	}
}

func TestRunCasesStopsDispatchOnCancel(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			var ran atomic.Int32
			// Dispatch order is index order at any pool width, so
			// cancelling from case cancelAt stops everything queued
			// after the in-flight window.
			const n, cancelAt = 64, 3
			out, err := RunCases(ctx, parallel, n, func(i int) (int, error) {
				if i == cancelAt {
					cancel()
				}
				// Give the dispatcher a chance to observe the
				// cancellation before the pool drains.
				time.Sleep(time.Millisecond)
				ran.Add(1)
				return i + 1, nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if len(out) != n {
				t.Fatalf("partial results have length %d, want %d", len(out), n)
			}
			if int(ran.Load()) == n {
				t.Fatal("every case ran despite cancellation")
			}
			// The prefix completed before the cancellation is intact.
			for i := 0; i < cancelAt; i++ {
				if out[i] != i+1 {
					t.Fatalf("completed case %d = %d, want %d", i, out[i], i+1)
				}
			}
			// The tail was never dispatched and stays zero-valued.
			if out[n-1] != 0 {
				t.Fatalf("last case ran (= %d) despite cancellation", out[n-1])
			}
		})
	}
}

func TestRunCasesCaseErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("case failed")
	_, err := RunCases(ctx, 1, 4, func(i int) (int, error) {
		if i == 1 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the case error to take precedence", err)
	}
}

func TestRunCasesObservedOrderIsPoolWidthInvariant(t *testing.T) {
	streams := make([][]string, 0, 3)
	for _, parallel := range []int{1, 4, 9} {
		var got []string
		_, err := RunCasesObserved(context.Background(), parallel, 20,
			func(i int) (int, error) {
				if i%7 == 3 {
					return 0, fmt.Errorf("case %d failed", i)
				}
				return i * i, nil
			},
			func(i int, v int, err error) {
				got = append(got, fmt.Sprintf("%d:%d:%v", i, v, err))
			})
		if err == nil {
			t.Fatal("expected the lowest-index case error")
		}
		streams = append(streams, got)
	}
	for i := 1; i < len(streams); i++ {
		if strings.Join(streams[i], "\n") != strings.Join(streams[0], "\n") {
			t.Fatalf("observation stream differs between pool widths:\nserial:\n%v\nparallel:\n%v",
				streams[0], streams[i])
		}
	}
	if len(streams[0]) != 20 {
		t.Fatalf("observed %d cases, want 20", len(streams[0]))
	}
}

func TestEmitCasesStreamsPairsInOrder(t *testing.T) {
	var events []string
	sink := SinkFunc(func(e Event) { events = append(events, e.String()) })
	observe := EmitCases[int](sink, "exp", 3, func(i int) string { return fmt.Sprintf("c%d", i) })
	_, err := RunCasesObserved(context.Background(), 2, 3,
		func(i int) (int, error) { return i, nil }, observe)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"exp: case 1/3 c0: started",
		"exp: case 1/3 c0: ok",
		"exp: case 2/3 c1: started",
		"exp: case 2/3 c1: ok",
		"exp: case 3/3 c2: started",
		"exp: case 3/3 c2: ok",
	}
	if strings.Join(events, "\n") != strings.Join(want, "\n") {
		t.Fatalf("event stream:\n%s\nwant:\n%s",
			strings.Join(events, "\n"), strings.Join(want, "\n"))
	}
	if cb := EmitCases[int](nil, "exp", 3, nil); cb != nil {
		t.Fatal("EmitCases with nil sink should return nil")
	}
}
