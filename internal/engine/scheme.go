// Package engine is the shared layer between the workloads (CG, ABFT-MM,
// Monte-Carlo) and the crash-consistence mechanisms they are evaluated
// under. It contributes three pieces:
//
//   - Scheme: a named consistency scheme (native, checkpoint variants,
//     PMEM-style transactions, the paper's algorithm-directed approach)
//     held in a process-wide registry. A scheme knows which simulated
//     platform it runs on and how to build its per-run Guard.
//
//   - Workload: a crash-consistence study — a computation that runs from
//     an iteration boundary, recovers after a crash, and verifies its
//     result — implemented by all three of the paper's algorithms (and
//     their conventional-mechanism baselines) in internal/core.
//
//   - RunCases: the bounded worker pool every fan-out in the repo goes
//     through (harness experiment cases, campaign injection shards),
//     with index-ordered collection so aggregates are byte-identical
//     between serial and parallel runs.
//
// The experiment drivers in internal/harness iterate the registry instead
// of switching on case labels, and the workload loops in internal/core
// drive a Guard instead of switching on a mechanism enum, so adding a new
// scheme or workload is a one-file change.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"adcc/internal/ckpt"
	"adcc/internal/crash"
)

// Kind classifies a scheme's mechanism family.
type Kind int

const (
	// KindNative runs with no fault-tolerance mechanism.
	KindNative Kind = iota
	// KindCheckpoint saves the protected regions at iteration
	// boundaries (to HDD or to NVM, per the scheme).
	KindCheckpoint
	// KindPMEM wraps iteration updates in undo-log transactions.
	KindPMEM
	// KindAlgo is the paper's algorithm-directed approach: the workload
	// itself maintains a restartable persistent image via selective
	// cache-line flushes.
	KindAlgo
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNative:
		return "native"
	case KindCheckpoint:
		return "checkpoint"
	case KindPMEM:
		return "pmem"
	case KindAlgo:
		return "algo"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FlushPolicy selects which critical state an algorithm-directed scheme
// flushes per iteration. Only Monte-Carlo distinguishes the variants
// (paper §III-D); CG and MM have a single algorithm-directed design.
type FlushPolicy int

const (
	// FlushNone flushes nothing (non-algo schemes).
	FlushNone FlushPolicy = iota
	// FlushIndexOnly is the paper's rejected "basic idea": flush only
	// the loop-index line each iteration (Figure 9/10 bias).
	FlushIndexOnly
	// FlushSelective flushes the full critical state every flush
	// period (Figure 11, the paper's extension).
	FlushSelective
	// FlushEveryIter flushes the critical state on every iteration —
	// the rejected design the paper measures at ~16% overhead.
	FlushEveryIter
)

// Scheme is one consistency scheme of the paper's comparison. Scheme
// values are immutable and safe for concurrent use; per-run state lives
// in the Guard a scheme builds.
type Scheme interface {
	// Name is the registry key and the row label used in result tables.
	Name() string
	// Kind reports the mechanism family.
	Kind() Kind
	// System is the simulated platform the scheme runs on in the
	// paper's seven-case comparison.
	System() crash.SystemKind
	// FlushPolicy reports the algorithm-directed flush variant
	// (FlushNone for non-algo schemes).
	FlushPolicy() FlushPolicy
	// NewGuard binds the scheme to a machine. logElems sizes the undo
	// log of transactional schemes (ignored by the others).
	NewGuard(m *crash.Machine, logElems int) Guard
}

// Registry scheme names. The first seven are the paper's presentation
// order (§III-A); the last two are the Monte-Carlo-specific
// algorithm-directed variants of §III-D.
const (
	SchemeNative     = "native"
	SchemeCkptHDD    = "ckpt-HDD"
	SchemeCkptNVM    = "ckpt-NVM-only"
	SchemeCkptHetero = "ckpt-NVM/DRAM"
	SchemePMEM       = "PMEM-lib"
	SchemeAlgoNVM    = "algo-NVM-only"
	SchemeAlgoHetero = "algo-NVM/DRAM"
	SchemeAlgoNaive  = "algo-naive"
	SchemeAlgoEvery  = "algo-every-iter"
)

// scheme is the standard Scheme implementation.
type scheme struct {
	name   string
	kind   Kind
	system crash.SystemKind
	flush  FlushPolicy
	// ckptHDD selects the HDD checkpoint target for KindCheckpoint.
	ckptHDD bool
}

func (s *scheme) Name() string             { return s.name }
func (s *scheme) Kind() Kind               { return s.kind }
func (s *scheme) System() crash.SystemKind { return s.system }
func (s *scheme) FlushPolicy() FlushPolicy { return s.flush }

func (s *scheme) NewGuard(m *crash.Machine, logElems int) Guard {
	switch s.kind {
	case KindCheckpoint:
		if s.ckptHDD {
			return NewCheckpointGuard(ckpt.NewHDD(m))
		}
		return NewCheckpointGuard(ckpt.NewNVM(m))
	case KindPMEM:
		return NewPMEMGuard(m, logElems)
	default:
		return NewNativeGuard()
	}
}

// registry holds the registered schemes. The experiment drivers read it
// concurrently from worker goroutines, so all access is guarded — a
// scheme may be Registered at any time, not only during package init.
var (
	registryMu sync.RWMutex
	registry   = map[string]Scheme{}
)

// Register adds a scheme to the registry. Registering a name twice
// panics: schemes are identities, not configuration.
func Register(s Scheme) {
	if s == nil || s.Name() == "" {
		panic("engine: Register of unnamed scheme")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("engine: duplicate scheme %q", s.Name()))
	}
	registry[s.Name()] = s
}

// Lookup finds a scheme by name.
func Lookup(name string) (Scheme, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// MustLookup finds a scheme by name, panicking on unknown names. Use for
// the built-in names, which are registered unconditionally.
func MustLookup(name string) Scheme {
	s, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("engine: unknown scheme %q", name))
	}
	return s
}

// Names returns every registered scheme name, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SevenCases returns the paper's seven-case comparison in presentation
// order (§III-A).
func SevenCases() []Scheme {
	names := []string{
		SchemeNative, SchemeCkptHDD, SchemeCkptNVM, SchemeCkptHetero,
		SchemePMEM, SchemeAlgoNVM, SchemeAlgoHetero,
	}
	out := make([]Scheme, len(names))
	for i, n := range names {
		out[i] = MustLookup(n)
	}
	return out
}

func init() {
	for _, s := range []*scheme{
		{name: SchemeNative, kind: KindNative, system: crash.NVMOnly},
		{name: SchemeCkptHDD, kind: KindCheckpoint, system: crash.NVMOnly, ckptHDD: true},
		{name: SchemeCkptNVM, kind: KindCheckpoint, system: crash.NVMOnly},
		{name: SchemeCkptHetero, kind: KindCheckpoint, system: crash.Hetero},
		{name: SchemePMEM, kind: KindPMEM, system: crash.NVMOnly},
		{name: SchemeAlgoNVM, kind: KindAlgo, system: crash.NVMOnly, flush: FlushSelective},
		{name: SchemeAlgoHetero, kind: KindAlgo, system: crash.Hetero, flush: FlushSelective},
		{name: SchemeAlgoNaive, kind: KindAlgo, system: crash.NVMOnly, flush: FlushIndexOnly},
		{name: SchemeAlgoEvery, kind: KindAlgo, system: crash.NVMOnly, flush: FlushEveryIter},
	} {
		Register(s)
	}
}
