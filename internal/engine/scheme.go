// Package engine is the shared layer between the workloads (CG, ABFT-MM,
// Monte-Carlo) and the crash-consistence mechanisms they are evaluated
// under. It contributes four pieces:
//
//   - Scheme: a named consistency scheme (native, checkpoint variants,
//     PMEM-style transactions, the paper's algorithm-directed approach)
//     held in an instance-scoped Registry. A scheme knows which simulated
//     platform it runs on and how to build its per-run Guard.
//
//   - Workload: a crash-consistence study — a computation that runs from
//     an iteration boundary, recovers after a crash, and verifies its
//     result — implemented by all three of the paper's algorithms (and
//     their conventional-mechanism baselines) in internal/core.
//
//   - RunCases: the context-aware bounded worker pool every fan-out in
//     the repo goes through (harness experiment cases, campaign
//     injection shards), with index-ordered collection so aggregates are
//     byte-identical between serial and parallel runs.
//
//   - Event/EventSink: the streaming progress notifications emitted by
//     the executors in deterministic case-index order, consumed by the
//     harness drivers and re-exported to embedders through pkg/adcc.
//
// The experiment drivers in internal/harness iterate a registry instead
// of switching on case labels, and the workload loops in internal/core
// drive a Guard instead of switching on a mechanism enum, so adding a new
// scheme or workload is a one-file change.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"adcc/internal/ckpt"
	"adcc/internal/crash"
)

// Kind classifies a scheme's mechanism family.
type Kind int

const (
	// KindNative runs with no fault-tolerance mechanism.
	KindNative Kind = iota
	// KindCheckpoint saves the protected regions at iteration
	// boundaries (to HDD or to NVM, per the scheme).
	KindCheckpoint
	// KindPMEM wraps iteration updates in undo-log transactions.
	KindPMEM
	// KindAlgo is the paper's algorithm-directed approach: the workload
	// itself maintains a restartable persistent image via selective
	// cache-line flushes.
	KindAlgo
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNative:
		return "native"
	case KindCheckpoint:
		return "checkpoint"
	case KindPMEM:
		return "pmem"
	case KindAlgo:
		return "algo"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FlushPolicy selects which critical state an algorithm-directed scheme
// flushes per iteration. Only Monte-Carlo distinguishes the variants
// (paper §III-D); CG and MM have a single algorithm-directed design.
type FlushPolicy int

const (
	// FlushNone flushes nothing (non-algo schemes).
	FlushNone FlushPolicy = iota
	// FlushIndexOnly is the paper's rejected "basic idea": flush only
	// the loop-index line each iteration (Figure 9/10 bias).
	FlushIndexOnly
	// FlushSelective flushes the full critical state every flush
	// period (Figure 11, the paper's extension).
	FlushSelective
	// FlushEveryIter flushes the critical state on every iteration —
	// the rejected design the paper measures at ~16% overhead.
	FlushEveryIter
)

// Scheme is one consistency scheme of the paper's comparison. Scheme
// values are immutable and safe for concurrent use; per-run state lives
// in the Guard a scheme builds.
type Scheme interface {
	// Name is the registry key and the row label used in result tables.
	Name() string
	// Kind reports the mechanism family.
	Kind() Kind
	// System is the simulated platform the scheme runs on in the
	// paper's seven-case comparison.
	System() crash.SystemKind
	// FlushPolicy reports the algorithm-directed flush variant
	// (FlushNone for non-algo schemes).
	FlushPolicy() FlushPolicy
	// NewGuard binds the scheme to a machine. logElems sizes the undo
	// log of transactional schemes (ignored by the others).
	NewGuard(m *crash.Machine, logElems int) Guard
}

// Registry scheme names. The first seven are the paper's presentation
// order (§III-A); the last two are the Monte-Carlo-specific
// algorithm-directed variants of §III-D.
const (
	SchemeNative     = "native"
	SchemeCkptHDD    = "ckpt-HDD"
	SchemeCkptNVM    = "ckpt-NVM-only"
	SchemeCkptHetero = "ckpt-NVM/DRAM"
	SchemePMEM       = "PMEM-lib"
	SchemeAlgoNVM    = "algo-NVM-only"
	SchemeAlgoHetero = "algo-NVM/DRAM"
	SchemeAlgoNaive  = "algo-naive"
	SchemeAlgoEvery  = "algo-every-iter"
)

// scheme is the standard Scheme implementation.
type scheme struct {
	name   string
	kind   Kind
	system crash.SystemKind
	flush  FlushPolicy
	// ckptHDD selects the HDD checkpoint target for KindCheckpoint.
	ckptHDD bool
}

func (s *scheme) Name() string             { return s.name }
func (s *scheme) Kind() Kind               { return s.kind }
func (s *scheme) System() crash.SystemKind { return s.system }
func (s *scheme) FlushPolicy() FlushPolicy { return s.flush }

func (s *scheme) NewGuard(m *crash.Machine, logElems int) Guard {
	switch s.kind {
	case KindCheckpoint:
		if s.ckptHDD {
			return NewCheckpointGuard(ckpt.NewHDD(m))
		}
		return NewCheckpointGuard(ckpt.NewNVM(m))
	case KindPMEM:
		return NewPMEMGuard(m, logElems)
	default:
		return NewNativeGuard()
	}
}

// Registry is an instance-scoped scheme registry. Each Registry is an
// independent namespace: embedders build their own (usually via
// pkg/adcc, which seeds the built-in schemes), register custom schemes
// without init-order coupling, and hand the registry to the runner or
// campaign that should see it. All methods are safe for concurrent use —
// the experiment drivers read registries from worker goroutines.
//
// The zero value is not usable; call NewRegistry or NewBuiltinRegistry.
type Registry struct {
	mu      sync.RWMutex
	schemes map[string]Scheme
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{schemes: map[string]Scheme{}}
}

// NewBuiltinRegistry returns a registry seeded with the paper's nine
// schemes: the seven-case comparison (§III-A) plus the two
// Monte-Carlo-specific algorithm-directed variants (§III-D).
func NewBuiltinRegistry() *Registry {
	r := NewRegistry()
	for _, s := range []*scheme{
		{name: SchemeNative, kind: KindNative, system: crash.NVMOnly},
		{name: SchemeCkptHDD, kind: KindCheckpoint, system: crash.NVMOnly, ckptHDD: true},
		{name: SchemeCkptNVM, kind: KindCheckpoint, system: crash.NVMOnly},
		{name: SchemeCkptHetero, kind: KindCheckpoint, system: crash.Hetero},
		{name: SchemePMEM, kind: KindPMEM, system: crash.NVMOnly},
		{name: SchemeAlgoNVM, kind: KindAlgo, system: crash.NVMOnly, flush: FlushSelective},
		{name: SchemeAlgoHetero, kind: KindAlgo, system: crash.Hetero, flush: FlushSelective},
		{name: SchemeAlgoNaive, kind: KindAlgo, system: crash.NVMOnly, flush: FlushIndexOnly},
		{name: SchemeAlgoEvery, kind: KindAlgo, system: crash.NVMOnly, flush: FlushEveryIter},
	} {
		if err := r.Register(s); err != nil {
			panic("engine: " + err.Error())
		}
	}
	return r
}

// Register adds a scheme to the registry. Registering a nil or unnamed
// scheme, or a name already present, returns an error: schemes are
// identities, not configuration, so a conflict is always a caller bug
// the caller must decide about.
func (r *Registry) Register(s Scheme) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("Register of unnamed scheme")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.schemes[s.Name()]; dup {
		return fmt.Errorf("duplicate scheme %q", s.Name())
	}
	r.schemes[s.Name()] = s
	return nil
}

// Lookup finds a scheme by name.
func (r *Registry) Lookup(name string) (Scheme, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.schemes[name]
	return s, ok
}

// MustLookup finds a scheme by name, panicking on unknown names. Use for
// the built-in names, which NewBuiltinRegistry seeds unconditionally.
func (r *Registry) MustLookup(name string) Scheme {
	s, ok := r.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("engine: unknown scheme %q", name))
	}
	return s
}

// Names returns every registered scheme name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.schemes))
	for n := range r.schemes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SevenCases returns the paper's seven-case comparison in presentation
// order (§III-A). It panics if any of the seven built-in names is
// missing from the registry (custom registries keep the built-ins; see
// NewBuiltinRegistry).
func (r *Registry) SevenCases() []Scheme {
	names := []string{
		SchemeNative, SchemeCkptHDD, SchemeCkptNVM, SchemeCkptHetero,
		SchemePMEM, SchemeAlgoNVM, SchemeAlgoHetero,
	}
	out := make([]Scheme, len(names))
	for i, n := range names {
		out[i] = r.MustLookup(n)
	}
	return out
}

// defaultRegistry is the process-global registry behind the deprecated
// package-level functions. Internal callers that predate instance
// registries still resolve built-in scheme names through it.
var defaultRegistry = NewBuiltinRegistry()

// Default returns the process-global registry. It exists only as a
// shim for internal callers that predate instance registries; new code
// should build an instance registry (NewRegistry / NewBuiltinRegistry,
// or pkg/adcc's Registry) and pass it explicitly.
func Default() *Registry { return defaultRegistry }

// Register adds a scheme to the process-global registry. Registering a
// name twice panics with the conflicting name.
//
// Deprecated: use an instance Registry, whose Register reports
// conflicts as errors instead of panicking.
func Register(s Scheme) {
	if err := defaultRegistry.Register(s); err != nil {
		panic("engine: " + err.Error())
	}
}

// Lookup finds a scheme by name in the process-global registry. It is
// a compatibility shim for internal callers; new code should resolve
// names on an instance Registry.
func Lookup(name string) (Scheme, bool) { return defaultRegistry.Lookup(name) }

// MustLookup finds a scheme by name in the process-global registry,
// panicking on unknown names. It is a compatibility shim for internal
// callers; new code should resolve names on an instance Registry.
func MustLookup(name string) Scheme { return defaultRegistry.MustLookup(name) }

// Names returns every scheme name in the process-global registry,
// sorted. It is a compatibility shim for internal callers; new code
// should use an instance Registry.
func Names() []string { return defaultRegistry.Names() }

// SevenCases returns the paper's seven-case comparison from the
// process-global registry. It is a compatibility shim for internal
// callers; new code should use an instance Registry.
func SevenCases() []Scheme { return defaultRegistry.SevenCases() }
