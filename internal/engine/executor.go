package engine

import "sync"

// RunCases executes n independent cases, fanning them across a bounded
// worker pool when parallel > 1. It is the shared deterministic
// executor behind the harness experiment drivers and the campaign
// engine's injection shards: each case must build its own simulated
// machine and seed its own inputs, so execution order cannot affect
// results, and collecting them by case index keeps every aggregate
// byte-identical to a serial run. Errors are reported in case order
// (the lowest-index failure wins, matching what a serial run would hit
// first).
func RunCases[T any](parallel, n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers := parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = run(i)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				out[i], errs[i] = run(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
