package engine

import (
	"context"
	"sync"
)

// RunCases executes n independent cases, fanning them across a bounded
// worker pool when parallel > 1. It is the shared deterministic
// executor behind the harness experiment drivers and the campaign
// engine's injection shards: each case must build its own simulated
// machine and seed its own inputs, so execution order cannot affect
// results, and collecting them by case index keeps every aggregate
// byte-identical to a serial run.
//
// Cancelling ctx stops the dispatch of queued cases: already running
// cases finish, everything not yet dispatched is skipped, and the call
// returns the partial results together with ctx.Err(). Case errors take
// precedence and are reported in case order (the lowest-index failure
// wins, matching what a serial run would hit first).
func RunCases[T any](ctx context.Context, parallel, n int, run func(i int) (T, error)) ([]T, error) {
	return RunCasesObserved(ctx, parallel, n, run, nil)
}

// RunCasesObserved is RunCases with a streaming observation hook:
// observe (when non-nil) is called once per completed case, in strict
// case-index order, as the contiguous prefix of completed cases grows.
// The callback therefore sees an identical sequence at any pool width —
// the property the event streams built on top of it inherit — while
// still being invoked during the run (case i is observed as soon as
// cases 0..i have all finished, not after the whole fan-out). observe
// runs with an internal lock held; keep it fast and do not call back
// into the executor. Cases skipped by cancellation are never observed.
func RunCasesObserved[T any](ctx context.Context, parallel, n int, run func(i int) (T, error), observe func(i int, v T, err error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	errs := make([]error, n)
	// dispatched counts the cases actually started; cancellation leaves
	// the remainder untouched (zero values, no observation).
	dispatched := 0
	workers := parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			dispatched = i + 1
			out[i], errs[i] = run(i)
			if observe != nil {
				observe(i, out[i], errs[i])
			}
		}
	} else {
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			done = make([]bool, n)
			next = 0
		)
		finish := func(i int) {
			if observe == nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			done[i] = true
			for next < n && done[next] {
				observe(next, out[next], errs[next])
				next++
			}
		}
		sem := make(chan struct{}, workers)
		for i := 0; i < n; i++ {
			// Block for a worker slot, but give up as soon as the
			// context is cancelled — queued cases must not start.
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
			dispatched = i + 1
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				out[i], errs[i] = run(i)
				finish(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs[:dispatched] {
		if err != nil {
			return out, err
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
