package engine

import (
	"adcc/internal/crash"
)

// Workload is one crash-consistence study: a computation that can run
// from an iteration boundary, recover after an injected crash, and
// verify its final result. CG, ABFT-MM, and Monte-Carlo implement it in
// internal/core; conformance is asserted for all three by the engine
// test suite.
//
// The lifecycle is:
//
//	w.Prepare(m, em)        // allocate state on the machine
//	em.Run(func(){ w.Run(w.Start()) })  // fresh run, possibly crashing
//	from, err := w.Recover()            // after a crash+restart
//	w.Run(from)                         // complete the computation
//	err = w.Verify()                    // check the result
//	stats := w.Metrics()                // workload-specific measurements
type Workload interface {
	// Name identifies the workload ("cg", "mm", "mc").
	Name() string
	// Prepare allocates the workload's state on the machine. em may be
	// nil when no crash will be injected. Prepare must be called
	// exactly once, before Run.
	Prepare(m *crash.Machine, em *crash.Emulator) error
	// Start returns the token a fresh (non-recovery) Run starts from.
	Start() int64
	// Run executes the computation from a resume token: Start() for a
	// fresh run, or the value returned by Recover after a crash.
	Run(from int64)
	// Recover inspects the post-crash persistent image (the machine
	// must have restarted, live = image) and returns the token to
	// resume Run from.
	Recover() (int64, error)
	// Verify checks the final result against the workload's native
	// reference, returning an error on corruption.
	Verify() error
	// Metrics reports workload-specific measurements of the last run
	// (residuals, per-iteration times, recovery statistics).
	Metrics() map[string]float64
}
