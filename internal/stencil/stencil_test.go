package stencil

import (
	"fmt"
	"testing"

	"adcc/internal/cache"
	"adcc/internal/crash"
	"adcc/internal/engine"
)

// testOpts is a CI-sized relaxation.
func testOpts() Options {
	return Options{N: 48, MaxIter: 10, Seed: 5}
}

// newTestMachine builds an NVM-only platform with the given LLC size.
func newTestMachine(llcBytes int) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: crash.NVMOnly,
		Cache: cache.Config{
			SizeBytes:         llcBytes,
			LineBytes:         64,
			Assoc:             16,
			HitNS:             4,
			FlushChargesClean: true,
			PrefetchStreams:   16,
		},
	})
}

func TestWantIsDeterministicAndNontrivial(t *testing.T) {
	opts := testOpts()
	a := Want(opts)
	b := Want(opts)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Want not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Heat propagates one cell per sweep, so a cell a few rows in from
	// the boundary must be warm after MaxIter sweeps.
	n := opts.N
	if a[3*n+3] == 0 {
		t.Fatal("no heat reached the near-boundary interior")
	}
}

// TestCrashFreeRunsMatchOracle asserts every implementation and scheme
// reproduces the native reference bit-for-bit when nothing crashes.
func TestCrashFreeRunsMatchOracle(t *testing.T) {
	opts := testOpts()
	want := Want(opts)

	policies := map[string]engine.FlushPolicy{
		"selective":  engine.FlushSelective,
		"index-only": engine.FlushIndexOnly,
		"every-iter": engine.FlushEveryIter,
	}
	for name, p := range policies {
		m := newTestMachine(1 << 20)
		h := NewHeat(m, nil, opts)
		h.Policy = p
		h.Run(1)
		if err := VerifyGrid(h.Result(), want); err != nil {
			t.Errorf("extended %s: %v", name, err)
		}
	}

	for _, scheme := range []string{
		engine.SchemeNative, engine.SchemeCkptHDD, engine.SchemeCkptNVM, engine.SchemePMEM,
	} {
		m := newTestMachine(1 << 20)
		bg := NewBaseline(m, opts, engine.MustLookup(scheme))
		bg.Run()
		if err := VerifyGrid(bg.Result(), want); err != nil {
			t.Errorf("baseline %s: %v", scheme, err)
		}
	}
}

// TestAlgoRecoveryAcrossCrashPoints crashes the extended relaxation at
// trigger occurrences and at op counts, on a small LLC (old planes
// evicted, recent planes lost) — the algorithm-directed recovery must
// verify from every point.
func TestAlgoRecoveryAcrossCrashPoints(t *testing.T) {
	opts := testOpts()
	want := Want(opts)

	// Profile once to learn the op-count space.
	pm := newTestMachine(64 << 10)
	pem := crash.NewEmulator(pm)
	prof := pem.Profile(func() { NewHeat(pm, pem, opts).Run(1) })
	if prof.Ops == 0 {
		t.Fatal("profile saw no memory operations")
	}

	points := []crash.CrashPoint{
		{Trigger: TriggerIterEnd, Occurrence: 3},
		{Trigger: TriggerIterEnd, Occurrence: 8},
		{Trigger: TriggerIterEnd, Occurrence: opts.MaxIter},
		{Op: prof.Ops / 5},
		{Op: prof.Ops / 2},
		{Op: prof.Ops - prof.Ops/7},
	}
	for _, pt := range points {
		t.Run(pt.String(), func(t *testing.T) {
			m := newTestMachine(64 << 10)
			em := crash.NewEmulator(m)
			h := NewHeat(m, em, opts)
			em.Arm(pt)
			if !em.Run(func() { h.Run(1) }) {
				t.Fatalf("point %v did not crash", pt)
			}
			rec := h.Recover()
			if rec.RestartIter < 1 || rec.RestartIter > rec.CrashIter+1 {
				t.Fatalf("restart iter %d out of range (crash iter %d)", rec.RestartIter, rec.CrashIter)
			}
			h.Run(rec.RestartIter)
			if err := VerifyGrid(h.Result(), want); err != nil {
				t.Fatalf("recovered run corrupt: %v", err)
			}
		})
	}
}

// TestNaiveRecoveryCorrupts reproduces the stencil analogue of the
// paper's Figure 10 bias: the index-only design trusts the persistent
// image blindly, so on a cache-resident grid (dirty planes lost at the
// crash) the recovered result is silently wrong.
func TestNaiveRecoveryCorrupts(t *testing.T) {
	opts := testOpts()
	want := Want(opts)
	m := newTestMachine(8 << 20) // planes stay cache-resident: maximal loss
	em := crash.NewEmulator(m)
	h := NewHeat(m, em, opts)
	h.Policy = engine.FlushIndexOnly
	em.CrashAtTrigger(TriggerIterEnd, 8)
	if !em.Run(func() { h.Run(1) }) {
		t.Fatal("did not crash")
	}
	rec := h.Recover()
	if rec.RestartIter != rec.CrashIter {
		t.Fatalf("naive restart iter = %d, want the crashed sweep %d", rec.RestartIter, rec.CrashIter)
	}
	h.Run(rec.RestartIter)
	if err := VerifyGrid(h.Result(), want); err == nil {
		t.Fatal("naive recovery verified on a cache-resident grid; expected silent corruption")
	}
}

// TestSelectiveRecoversWhereNaiveCorrupts runs the full protocol at the
// exact crash point of TestNaiveRecoveryCorrupts: the invariant walk
// must reject the stale planes and fall back to a verified restart.
func TestSelectiveRecoversWhereNaiveCorrupts(t *testing.T) {
	opts := testOpts()
	want := Want(opts)
	m := newTestMachine(8 << 20)
	em := crash.NewEmulator(m)
	h := NewHeat(m, em, opts)
	em.CrashAtTrigger(TriggerIterEnd, 8)
	if !em.Run(func() { h.Run(1) }) {
		t.Fatal("did not crash")
	}
	rec := h.Recover()
	if rec.Checked == 0 {
		t.Fatal("recovery checked no candidates")
	}
	h.Run(rec.RestartIter)
	if err := VerifyGrid(h.Result(), want); err != nil {
		t.Fatalf("selective recovery corrupt: %v", err)
	}
}

// TestEveryIterLosesAtMostOne asserts the every-iteration variant's
// bound: with the whole fresh plane flushed per sweep, recovery resumes
// at the crashed sweep or the one after.
func TestEveryIterLosesAtMostOne(t *testing.T) {
	opts := testOpts()
	want := Want(opts)
	m := newTestMachine(8 << 20)
	em := crash.NewEmulator(m)
	h := NewHeat(m, em, opts)
	h.Policy = engine.FlushEveryIter
	em.CrashAtTrigger(TriggerIterEnd, 7)
	if !em.Run(func() { h.Run(1) }) {
		t.Fatal("did not crash")
	}
	rec := h.Recover()
	if rec.IterationsLost > 1 {
		t.Fatalf("every-iter lost %d iterations, want <= 1", rec.IterationsLost)
	}
	h.Run(rec.RestartIter)
	if err := VerifyGrid(h.Result(), want); err != nil {
		t.Fatalf("every-iter recovery corrupt: %v", err)
	}
}

// TestBaselineRecovery crashes the ping-pong relaxation under each
// conventional scheme and checks the scheme's restart semantics plus a
// verified result.
func TestBaselineRecovery(t *testing.T) {
	opts := testOpts()
	want := Want(opts)
	const crashAt = 6
	cases := []struct {
		scheme      string
		wantRestart int
	}{
		{engine.SchemeNative, 1},
		{engine.SchemeCkptNVM, crashAt + 1},
		{engine.SchemeCkptHDD, crashAt + 1},
		{engine.SchemePMEM, crashAt + 1},
	}
	for _, tc := range cases {
		t.Run(tc.scheme, func(t *testing.T) {
			m := newTestMachine(1 << 20)
			em := crash.NewEmulator(m)
			bg := NewBaseline(m, opts, engine.MustLookup(tc.scheme))
			bg.Em = em
			// The trigger fires after EndIteration, so sweep crashAt is
			// fully protected when the crash hits.
			em.CrashAtTrigger(TriggerIterEnd, crashAt)
			if !em.Run(bg.Run) {
				t.Fatal("did not crash")
			}
			from, err := bg.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if from != tc.wantRestart {
				t.Fatalf("restart sweep = %d, want %d", from, tc.wantRestart)
			}
			bg.RunFrom(from)
			if err := VerifyGrid(bg.Result(), want); err != nil {
				t.Fatalf("recovered run corrupt: %v", err)
			}
		})
	}
}

// TestPMEMMidSweepRollback crashes inside a transaction (an op-count
// point mid-sweep) and checks the undo log rolls the plane and the
// committed-sweep index back together.
func TestPMEMMidSweepRollback(t *testing.T) {
	opts := testOpts()
	want := Want(opts)
	m := newTestMachine(1 << 20)
	em := crash.NewEmulator(m)

	// Profile to find a mid-run op count.
	pm := newTestMachine(1 << 20)
	pem := crash.NewEmulator(pm)
	pbg := NewBaseline(pm, opts, engine.MustLookup(engine.SchemePMEM))
	prof := pem.Profile(pbg.Run)

	bg := NewBaseline(m, opts, engine.MustLookup(engine.SchemePMEM))
	bg.Em = em
	em.CrashAtOp(prof.Ops / 2)
	if !em.Run(bg.Run) {
		t.Fatal("did not crash")
	}
	from, err := bg.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if from < 1 || from > opts.MaxIter {
		t.Fatalf("restart sweep %d out of range", from)
	}
	bg.RunFrom(from)
	if err := VerifyGrid(bg.Result(), want); err != nil {
		t.Fatalf("rolled-back run corrupt: %v", err)
	}
}

// TestWorkloadLifecycle drives both adapters through the full
// engine.Workload lifecycle the campaign uses: prepare, crash, recover,
// resume, verify, metrics.
func TestWorkloadLifecycle(t *testing.T) {
	opts := testOpts()
	want := Want(opts)
	workloads := map[string]func() engine.Workload{
		"extended": func() engine.Workload {
			return &HeatWorkload{Opts: opts, Want: want}
		},
		"baseline-ckpt": func() engine.Workload {
			return &BaselineWorkload{Opts: opts, Want: want,
				Scheme: engine.MustLookup(engine.SchemeCkptNVM)}
		},
	}
	for name, build := range workloads {
		t.Run(name, func(t *testing.T) {
			w := build()
			if w.Name() != WorkloadName {
				t.Fatalf("Name() = %q, want %q", w.Name(), WorkloadName)
			}
			m := newTestMachine(64 << 10)
			em := crash.NewEmulator(m)
			if err := w.Prepare(m, em); err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			if err := w.Prepare(m, em); err == nil {
				t.Fatal("second Prepare did not error")
			}
			em.CrashAtTrigger(TriggerIterEnd, 5)
			if !em.Run(func() { w.Run(w.Start()) }) {
				t.Fatal("did not crash")
			}
			from, err := w.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			em.Disarm()
			w.Run(from)
			if err := w.Verify(); err != nil {
				t.Fatalf("Verify after recovery: %v", err)
			}
			met := w.Metrics()
			if _, ok := met["avg_iter_ns"]; !ok {
				t.Fatalf("metrics missing avg_iter_ns: %v", met)
			}
		})
	}
}

// TestRunIsDeterministic asserts two identical simulated runs agree on
// result, residual, and simulated time — the property every
// byte-identical report in the repo rests on.
func TestRunIsDeterministic(t *testing.T) {
	opts := testOpts()
	run := func() ([]float64, float64, int64) {
		m := newTestMachine(1 << 20)
		h := NewHeat(m, nil, opts)
		h.Run(1)
		out := make([]float64, len(h.Result()))
		copy(out, h.Result())
		return out, h.Residual(), m.Clock.Now()
	}
	a, ra, ta := run()
	b, rb, tb := run()
	if ra != rb || ta != tb {
		t.Fatalf("runs differ: residual %v vs %v, sim %d vs %d", ra, rb, ta, tb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plane differs at %d", i)
		}
	}
}

func ExampleWant() {
	opts := Options{N: 16, MaxIter: 4, Seed: 1}
	want := Want(opts)
	fmt.Println(len(want) == 16*16)
	// Output: true
}
