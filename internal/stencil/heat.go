package stencil

import (
	"math"

	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/mem"
)

// Heat is the extended, algorithm-directed Jacobi relaxation: the
// solution planes carry an iteration dimension (plane i holds the
// iteration-i values, plane 0 the initial condition), so hardware cache
// eviction opportunistically persists old planes, and each sweep
// explicitly flushes only the cache line holding the iteration index
// plus the line holding that sweep's max-change residual. Recovery
// reasons about the persistent image with two algorithm invariants:
//
//	u(j)        = Jacobi(u(j-1))         (relaxation step)
//	max|u(j) - u(j-1)|  =  Res[j]        (recorded residual)
//
// The first detects stale lines in either plane of a candidate pair;
// the second closes its blind spot (an all-stale pair of zero planes is
// self-consistent under the first invariant but can never reproduce the
// flushed, strictly positive residual).
type Heat struct {
	M    *crash.Machine
	Em   *crash.Emulator
	Opts Options

	N int
	// U is the plane history: planes 0..MaxIter of N*N elements each.
	// Plane i is written exactly once, during iteration i.
	U *mem.F64
	// Res records each sweep's max-change residual (1-based; entry 0
	// unused). Flushed per iteration under FlushSelective/FlushEveryIter.
	Res *mem.F64
	// IterNum is the flushed iteration counter (one line).
	IterNum *mem.I64

	// Policy selects the algorithm-directed flush variant:
	// FlushSelective (the full protocol, default), FlushIndexOnly (the
	// rejected naive design: only the index line is flushed and
	// recovery trusts the image blindly — the stencil analogue of the
	// paper's Figure 10 bias), or FlushEveryIter (flush the whole fresh
	// plane each sweep: expensive but never loses more than one
	// iteration).
	Policy engine.FlushPolicy

	// IterNS records the simulated duration of each completed sweep
	// (1-based; entry 0 unused).
	IterNS []int64
}

// NewHeat builds the extended relaxation on a machine (em may be nil
// when no crash will be injected). The initial condition — plane 0 with
// its boundary heat sources — is made persistent, as the paper assumes
// for the input of a computation.
func NewHeat(m *crash.Machine, em *crash.Emulator, opts Options) *Heat {
	opts.setDefaults()
	n := opts.N
	nn := n * n
	h := &Heat{
		M: m, Em: em, Opts: opts, N: n,
		U:       m.Heap.AllocF64("heat.u", (opts.MaxIter+1)*nn),
		Res:     m.Heap.AllocF64("heat.res", opts.MaxIter+1),
		IterNum: m.Heap.AllocI64("heat.iter", 1),
		Policy:  engine.FlushSelective,
		IterNS:  make([]int64, opts.MaxIter+1),
	}
	g := InitialGrid(n, opts.Seed)
	copy(h.U.Live()[:nn], g)
	copy(h.U.Image()[:nn], g)
	return h
}

// plane returns the element offset of plane i.
func (h *Heat) plane(i int) int { return i * h.N * h.N }

// Run executes sweeps from..MaxIter (1-based, inclusive). A fresh run
// starts at from = 1; recovery resumes at the restart iteration. Each
// sweep flushes the iteration-counter line, relaxes plane from-1 into
// plane from (boundary carried over), records the residual, and flushes
// per the policy.
func (h *Heat) Run(from int) {
	m := h.M
	if from < 1 {
		from = 1
	}
	for i := from; i <= h.Opts.MaxIter; i++ {
		start := m.Clock.Now()
		h.IterNum.Set(0, int64(i))
		m.Persist(h.IterNum.Addr(0), 8)

		res := sweepSim(m.CPU, h.U, h.plane(i-1), h.U, h.plane(i), h.N)
		h.Res.Set(i, res)
		switch h.Policy {
		case engine.FlushSelective:
			m.Persist(h.Res.Addr(i), 8)
		case engine.FlushEveryIter:
			m.Persist(h.Res.Addr(i), 8)
			m.Persist(h.U.Addr(h.plane(i)), 8*h.N*h.N)
		}

		h.IterNS[i] = m.Clock.Since(start)
		if h.Em != nil {
			h.Em.Trigger(TriggerIterEnd)
		}
	}
}

// Result returns the live final plane.
func (h *Heat) Result() []float64 {
	return h.U.Live()[h.plane(h.Opts.MaxIter):h.plane(h.Opts.MaxIter+1)]
}

// Residual returns the last recorded max-change residual.
func (h *Heat) Residual() float64 { return h.Res.Live()[h.Opts.MaxIter] }

// Recovery reports the outcome of post-crash detection.
type Recovery struct {
	// CrashIter is the iteration number found in the flushed counter.
	CrashIter int
	// RestartIter is the sweep to resume from (RestartIter-1 = j, the
	// newest iteration whose plane pair verified). 1 means restart from
	// the initial condition.
	RestartIter int
	// IterationsLost is CrashIter - j: the work to redo.
	IterationsLost int
	// Checked counts candidate iterations examined during detection.
	Checked int
	// DetectNS is the simulated time spent detecting where to restart.
	DetectNS int64
}

// Recover implements the detection walk on the persistent image:
// starting from the crashed iteration (read from the flushed counter),
// examine candidate iterations j downwards until the plane pair
// (j-1, j) satisfies the relaxation invariant and the recorded residual
// matches, then resume from j+1. If nothing verifies, plane 0 — the
// persistent initial condition — is the restart state.
//
// Under FlushIndexOnly the walk is skipped: the naive design trusts the
// image at the crashed iteration blindly, which is exactly what makes
// it corrupt (the campaign reproduces the bias statistically).
func (h *Heat) Recover() Recovery {
	m := h.M
	nn := h.N * h.N
	start := m.Clock.Now()
	rec := Recovery{CrashIter: int(h.IterNum.Image()[0])}
	if rec.CrashIter < 0 {
		rec.CrashIter = 0
	}
	if rec.CrashIter > h.Opts.MaxIter {
		rec.CrashIter = h.Opts.MaxIter
	}

	if h.Policy == engine.FlushIndexOnly {
		// Naive restart: redo only the crashed sweep from whatever the
		// image holds for plane CrashIter-1.
		rec.RestartIter = rec.CrashIter
		if rec.RestartIter < 1 {
			rec.RestartIter = 1
		}
		rec.IterationsLost = rec.CrashIter - (rec.RestartIter - 1)
		m.ChargeNVMRead(8 * nn)
		rec.DetectNS = m.Clock.Since(start)
		return rec
	}

	j := rec.CrashIter
	for ; j >= 1; j-- {
		rec.Checked++
		// Two planes plus the residual entry, read from NVM; the
		// invariant evaluation costs ~8 flops per cell.
		m.ChargeNVMRead(2*8*nn + 16)
		m.CPU.Compute(int64(8 * nn))
		if h.planeConsistent(j) {
			break
		}
	}
	rec.RestartIter = j + 1
	rec.IterationsLost = rec.CrashIter - j
	rec.DetectNS = m.Clock.Since(start)
	// The machine already restarted live = image, and plane j of the
	// image is the consistent state itself — nothing to copy.
	return rec
}

// planeConsistent checks the persistent image of the pair (j-1, j)
// against the two recovery invariants.
func (h *Heat) planeConsistent(j int) bool {
	n, nn := h.N, h.N*h.N
	tol := h.Opts.InvTol
	img := h.U.Image()
	prev := img[(j-1)*nn : j*nn]
	cur := img[j*nn : (j+1)*nn]

	// Boundary ring must carry over exactly: both values are either the
	// true persisted ones (equal) or a stale zero against a strictly
	// positive heat source.
	for c := 0; c < n; c++ {
		if cur[c] != prev[c] || cur[(n-1)*n+c] != prev[(n-1)*n+c] {
			return false
		}
	}
	maxd := 0.0
	for r := 1; r < n-1; r++ {
		ro := r * n
		if cur[ro] != prev[ro] || cur[ro+n-1] != prev[ro+n-1] {
			return false
		}
		for c := 1; c < n-1; c++ {
			want := 0.25 * (prev[ro-n+c] + prev[ro+n+c] + prev[ro+c-1] + prev[ro+c+1])
			got := cur[ro+c]
			if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
				return false
			}
			if d := math.Abs(got - prev[ro+c]); d > maxd {
				maxd = d
			}
		}
	}
	// Residual invariant: the recorded (flushed) residual of sweep j
	// must match the observed max change. Requiring both strictly
	// positive rejects the all-stale zero pair, which the relaxation
	// invariant alone cannot see.
	recorded := h.Res.Image()[j]
	if recorded <= 0 || maxd <= 0 {
		return false
	}
	return math.Abs(maxd-recorded) <= tol*recorded
}
