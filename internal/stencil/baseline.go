package stencil

import (
	"fmt"

	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/mem"
)

// Baseline is the conventional ping-pong Jacobi relaxation: two planes
// overwritten alternately (iteration i reads plane (i-1)%2 and writes
// plane i%2), paired with a conventional mechanism supplied as an
// engine.Scheme — per-iteration checkpoints, PMEM-style undo-log
// transactions, or nothing (native).
type Baseline struct {
	M    *crash.Machine
	Opts Options

	N      int
	U0, U1 *mem.F64
	// IterDone persistently records the last committed iteration for
	// transactional schemes (updated inside each iteration's
	// transaction, so a rollback rewinds it with the data).
	IterDone *mem.I64

	Scheme engine.Scheme
	Guard  engine.Guard
	IterNS []int64
	// Em, when set, fires TriggerIterEnd at the end of every sweep,
	// making the baseline injectable at the same named program points
	// as the extended relaxation.
	Em *crash.Emulator
}

// NewBaseline builds the ping-pong relaxation under the given scheme's
// mechanism (nil means native). Checkpoint schemes save both planes at
// the end of every sweep; PMEM schemes wrap each sweep's plane write in
// an undo-log transaction.
func NewBaseline(m *crash.Machine, opts Options, sc engine.Scheme) *Baseline {
	opts.setDefaults()
	if sc == nil {
		sc = engine.MustLookup(engine.SchemeNative)
	}
	n := opts.N
	nn := n * n
	bg := &Baseline{
		M: m, Opts: opts, N: n, Scheme: sc,
		U0:       m.Heap.AllocF64("heat.u0", nn),
		U1:       m.Heap.AllocF64("heat.u1", nn),
		IterDone: m.Heap.AllocI64("heat.iterdone", 1),
		IterNS:   make([]int64, opts.MaxIter+1),
	}
	// Log capacity for transactional schemes: one sweep rewrites one
	// plane (snapshots are line-deduplicated), so nn elements plus
	// slack suffice.
	bg.Guard = sc.NewGuard(m, nn+1024)
	bg.Guard.Register(bg.U0, bg.U1, bg.IterDone)
	g := InitialGrid(n, opts.Seed)
	copy(bg.U0.Live(), g)
	copy(bg.U0.Image(), g)
	return bg
}

// planeReg returns the region holding plane i of the ping-pong pair.
func (bg *Baseline) planeReg(i int) *mem.F64 {
	if i%2 == 0 {
		return bg.U0
	}
	return bg.U1
}

// Run executes the baseline loop for MaxIter sweeps.
func (bg *Baseline) Run() { bg.RunFrom(1) }

// RunFrom executes sweeps from..MaxIter (1-based, inclusive). A fresh
// run starts at 1; after a crash, resume from the sweep Recover
// returns.
func (bg *Baseline) RunFrom(from int) {
	m := bg.M
	if from < 1 {
		from = 1
	}
	for i := from; i <= bg.Opts.MaxIter; i++ {
		start := m.Clock.Now()
		if bg.Guard.Pool() != nil {
			bg.iterPMEM(i)
		} else {
			sweepSim(m.CPU, bg.planeReg(i-1), 0, bg.planeReg(i), 0, bg.N)
		}
		// End-of-iteration protection of both planes — for checkpoint
		// schemes this is the frequency that matches the
		// algorithm-directed approach's one-iteration recomputation
		// bound.
		bg.Guard.EndIteration(int64(i), bg.U0, bg.U1)
		bg.IterNS[i] = m.Clock.Since(start)
		if bg.Em != nil {
			bg.Em.Trigger(TriggerIterEnd)
		}
	}
}

// iterPMEM performs sweep i with the destination plane rewritten inside
// an undo-log transaction. The persistent iteration index commits with
// the data, so a crash rolls both back together.
func (bg *Baseline) iterPMEM(i int) {
	n := bg.N
	src, dst := bg.planeReg(i-1), bg.planeReg(i)
	tx := bg.Guard.Pool().Begin()
	tx.SetI64(bg.IterDone, 0, int64(i))
	top := src.LoadRange(0, n)
	copy(tx.StoreRangeF64(dst, 0, n), top)
	bot := src.LoadRange((n-1)*n, n)
	copy(tx.StoreRangeF64(dst, (n-1)*n, n), bot)
	for r := 1; r < n-1; r++ {
		up := src.LoadRange((r-1)*n, n)
		mid := src.LoadRange(r*n, n)
		down := src.LoadRange((r+1)*n, n)
		out := tx.StoreRangeF64(dst, r*n, n)
		out[0] = mid[0]
		out[n-1] = mid[n-1]
		for c := 1; c < n-1; c++ {
			out[c] = 0.25 * (up[c] + down[c] + mid[c-1] + mid[c+1])
		}
		bg.M.CPU.Compute(int64(6 * (n - 2)))
	}
	tx.Commit()
}

// Recover restarts the baseline after a crash, per scheme: checkpoint
// schemes restore the last checkpoint and resume after it;
// transactional schemes roll back the torn transaction and resume after
// the last committed sweep; native runs reinitialize and start over. It
// returns the sweep RunFrom should resume at.
func (bg *Baseline) Recover() (from int, err error) {
	switch {
	case bg.Guard.Checkpointer() != nil:
		cp := bg.Guard.Checkpointer()
		if !cp.Valid() {
			bg.reset()
			return 1, nil
		}
		tag := cp.Restore(bg.U0, bg.U1)
		if tag < 1 || tag > int64(bg.Opts.MaxIter) {
			return 0, fmt.Errorf("stencil: checkpoint tag %d out of range", tag)
		}
		return int(tag) + 1, nil
	case bg.Guard.Pool() != nil:
		bg.Guard.Pool().Recover()
		done := bg.IterDone.Image()[0]
		if done < 0 || done > int64(bg.Opts.MaxIter) {
			return 0, fmt.Errorf("stencil: committed sweep %d out of range", done)
		}
		return int(done) + 1, nil
	default:
		bg.reset()
		return 1, nil
	}
}

// reset reinitializes the planes to the starting state (U0 = initial
// grid, U1 = 0) in both live and image, charging the NVM writes — the
// "restart the application from the beginning" path of a native run.
func (bg *Baseline) reset() {
	g := InitialGrid(bg.N, bg.Opts.Seed)
	copy(bg.U0.Live(), g)
	copy(bg.U0.Image(), g)
	for i := range bg.U1.Live() {
		bg.U1.Live()[i] = 0
	}
	for i := range bg.U1.Image() {
		bg.U1.Image()[i] = 0
	}
	bg.M.ChargeNVMWrite(bg.U0.Bytes() + bg.U1.Bytes())
}

// Result returns the live final plane.
func (bg *Baseline) Result() []float64 {
	return bg.planeReg(bg.Opts.MaxIter).Live()
}

func (bg *Baseline) String() string {
	return fmt.Sprintf("stencil.Baseline{n=%d scheme=%s}", bg.N, bg.Scheme.Name())
}
