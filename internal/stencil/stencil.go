// Package stencil implements the fourth workload family of the
// reproduction: a 2D Jacobi heat-diffusion relaxation, the canonical
// iterative HPC stencil the paper's algorithm-directed approach is
// argued to generalize to (§IV, "any iterative computation with cheap
// algorithmic invariants").
//
// Like the paper's three studies, the family comes in two shapes:
//
//   - Heat is the extended, algorithm-directed implementation: the
//     solution planes carry an iteration dimension (one plane per
//     sweep, as the CG history rows do), hardware cache eviction
//     opportunistically persists old planes, and the only explicit
//     per-iteration persistence is the cache line holding the
//     iteration index plus the line holding that sweep's max-change
//     residual. Recovery walks candidate iterations downward until a
//     plane pair satisfies the relaxation invariant
//     u(j) = Jacobi(u(j-1)) on the persistent image and the recorded
//     residual matches, then re-relaxes from the last consistent plane.
//
//   - Baseline is the conventional ping-pong implementation (two
//     planes overwritten alternately) driven through an engine.Guard:
//     per-iteration checkpoints, PMEM-style undo-log transactions, or
//     nothing (native, restart from the initial condition).
//
// Both are exposed as engine.Workload adapters (HeatWorkload,
// BaselineWorkload), so the harness, the crash-injection campaign, and
// the public pkg/adcc Runner sweep the stencil grid exactly like the
// paper's CG/MM/MC cells.
package stencil

import (
	"fmt"
	"math"
	"math/rand"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

// TriggerIterEnd is the named crash point at the end of each relaxation
// sweep.
const TriggerIterEnd = "stencil.iter-end"

// Options configures a heat-diffusion relaxation.
type Options struct {
	// N is the grid dimension (N x N cells including the boundary
	// ring). Zero means 96.
	N int
	// MaxIter is the number of Jacobi sweeps. Zero means 12.
	MaxIter int
	// InvTol is the relative tolerance of the recovery invariants.
	// Zero means 1e-8.
	InvTol float64
	// Seed drives boundary heat-source construction.
	Seed int64
}

func (o *Options) setDefaults() {
	if o.N == 0 {
		o.N = 96
	}
	if o.MaxIter == 0 {
		o.MaxIter = 12
	}
	if o.InvTol == 0 {
		o.InvTol = 1e-8
	}
}

// InitialGrid builds the persistent initial condition: seeded heat
// sources (values in [1, 2), strictly positive so a lost boundary line
// is distinguishable from a persisted one) on the boundary ring, zero
// interior.
func InitialGrid(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([]float64, n*n)
	set := func(i int) { g[i] = 1 + rng.Float64() }
	for c := 0; c < n; c++ {
		set(c) // top row
	}
	for r := 1; r < n-1; r++ {
		set(r * n)         // left column
		set(r*n + (n - 1)) // right column
	}
	for c := 0; c < n; c++ {
		set((n-1)*n + c) // bottom row
	}
	return g
}

// jacobiNative performs one native (un-simulated) Jacobi sweep:
// dst = Jacobi(src), boundary carried over unchanged. It returns the
// max-change residual over the interior. The arithmetic — expression
// shape and evaluation order — is identical to the simulated sweep, so
// a recovered simulated run reproduces the oracle bit-for-bit.
func jacobiNative(dst, src []float64, n int) float64 {
	copy(dst[:n], src[:n])
	copy(dst[(n-1)*n:], src[(n-1)*n:])
	res := 0.0
	for r := 1; r < n-1; r++ {
		ro := r * n
		dst[ro] = src[ro]
		dst[ro+n-1] = src[ro+n-1]
		for c := 1; c < n-1; c++ {
			v := 0.25 * (src[ro-n+c] + src[ro+n+c] + src[ro+c-1] + src[ro+c+1])
			dst[ro+c] = v
			if d := math.Abs(v - src[ro+c]); d > res {
				res = d
			}
		}
	}
	return res
}

// Want runs the native reference relaxation and returns the plane after
// MaxIter sweeps — the verification oracle of the family (a pure
// function of Options, so campaigns compute it once per cell and share
// it read-only, like core.MMWant).
func Want(opts Options) []float64 {
	opts.setDefaults()
	cur := InitialGrid(opts.N, opts.Seed)
	next := make([]float64, len(cur))
	for i := 1; i <= opts.MaxIter; i++ {
		jacobiNative(next, cur, opts.N)
		cur, next = next, cur
	}
	return cur
}

// VerifyGrid compares a computed plane against the oracle. Recovery
// under every non-naive scheme resumes from bit-exact persistent state
// and replays the deterministic sweeps, so the comparison is tight: any
// mismatch means stale data leaked into the result.
func VerifyGrid(got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("stencil: plane length %d, want %d", len(got), len(want))
	}
	for i := range want {
		d := math.Abs(got[i] - want[i])
		if d > 1e-9*math.Max(1, math.Abs(want[i])) {
			return fmt.Errorf("stencil: plane differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	return nil
}

// sweepSim performs one Jacobi sweep through simulated memory: the
// plane at dstOff in dstR becomes the relaxation of the plane at srcOff
// in srcR, with the boundary ring carried over unchanged (so every
// plane is self-contained for recovery). Returns the max-change
// residual over the interior. Work is charged to the CPU model; loads
// and stores stream through the cache simulator row by row.
func sweepSim(cpu *sim.CPU, srcR *mem.F64, srcOff int, dstR *mem.F64, dstOff int, n int) float64 {
	top := srcR.LoadRange(srcOff, n)
	copy(dstR.StoreRange(dstOff, n), top)
	bot := srcR.LoadRange(srcOff+(n-1)*n, n)
	copy(dstR.StoreRange(dstOff+(n-1)*n, n), bot)
	res := 0.0
	for r := 1; r < n-1; r++ {
		up := srcR.LoadRange(srcOff+(r-1)*n, n)
		mid := srcR.LoadRange(srcOff+r*n, n)
		down := srcR.LoadRange(srcOff+(r+1)*n, n)
		out := dstR.StoreRange(dstOff+r*n, n)
		out[0] = mid[0]
		out[n-1] = mid[n-1]
		for c := 1; c < n-1; c++ {
			v := 0.25 * (up[c] + down[c] + mid[c-1] + mid[c+1])
			out[c] = v
			if d := math.Abs(v - mid[c]); d > res {
				res = d
			}
		}
		cpu.Compute(int64(6 * (n - 2)))
	}
	return res
}
