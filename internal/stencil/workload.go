package stencil

import (
	"fmt"

	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/sim"
)

// WorkloadName is the registry and report name of the stencil family.
const WorkloadName = "stencil"

// HeatWorkload adapts the extended (algorithm-directed) relaxation to
// the engine.Workload lifecycle, so the harness, the crash-injection
// campaign, and the public Runner drive it like the paper's three
// studies.
type HeatWorkload struct {
	Opts Options
	// Want, when non-nil, is the precomputed oracle plane (a pure
	// function of Opts, so campaigns compute it once per cell and share
	// it read-only).
	Want []float64
	// Scheme selects the algorithm-directed flush variant via its
	// FlushPolicy; nil means the selective-flush design.
	Scheme engine.Scheme

	h   *Heat
	rec Recovery
}

// Name implements engine.Workload.
func (w *HeatWorkload) Name() string { return WorkloadName }

// Prepare implements engine.Workload.
func (w *HeatWorkload) Prepare(m *crash.Machine, em *crash.Emulator) error {
	if w.h != nil {
		return fmt.Errorf("stencil: Prepare called twice")
	}
	w.h = NewHeat(m, em, w.Opts)
	if w.Scheme != nil {
		w.h.Policy = w.Scheme.FlushPolicy()
	}
	return nil
}

// Start implements engine.Workload: sweeps are 1-based.
func (w *HeatWorkload) Start() int64 { return 1 }

// Run implements engine.Workload.
func (w *HeatWorkload) Run(from int64) { w.h.Run(int(from)) }

// Recover implements engine.Workload.
func (w *HeatWorkload) Recover() (int64, error) {
	w.rec = w.h.Recover()
	if w.rec.RestartIter < 1 || w.rec.RestartIter > w.h.Opts.MaxIter+1 {
		return 0, fmt.Errorf("stencil: restart sweep %d out of range", w.rec.RestartIter)
	}
	return int64(w.rec.RestartIter), nil
}

// Verify implements engine.Workload: the live final plane must equal
// the native oracle.
func (w *HeatWorkload) Verify() error {
	want := w.Want
	if want == nil {
		want = Want(w.h.Opts)
	}
	return VerifyGrid(w.h.Result(), want)
}

// Metrics implements engine.Workload.
func (w *HeatWorkload) Metrics() map[string]float64 {
	return map[string]float64{
		"residual":        w.h.Residual(),
		"avg_iter_ns":     float64(sim.AvgPositive(w.h.IterNS[1:])),
		"iterations_lost": float64(w.rec.IterationsLost),
		"detect_ns":       float64(w.rec.DetectNS),
	}
}

// BaselineWorkload adapts the ping-pong relaxation under a conventional
// scheme to the engine.Workload lifecycle.
type BaselineWorkload struct {
	Opts Options
	// Want, when non-nil, is the precomputed oracle plane (see
	// HeatWorkload.Want).
	Want []float64
	// Scheme selects the conventional mechanism; nil means native.
	Scheme engine.Scheme

	bg *Baseline
}

// Name implements engine.Workload.
func (w *BaselineWorkload) Name() string { return WorkloadName }

// Prepare implements engine.Workload.
func (w *BaselineWorkload) Prepare(m *crash.Machine, em *crash.Emulator) error {
	if w.bg != nil {
		return fmt.Errorf("stencil: Prepare called twice")
	}
	w.bg = NewBaseline(m, w.Opts, w.Scheme)
	w.bg.Em = em
	return nil
}

// Start implements engine.Workload: sweeps are 1-based.
func (w *BaselineWorkload) Start() int64 { return 1 }

// Run implements engine.Workload.
func (w *BaselineWorkload) Run(from int64) { w.bg.RunFrom(int(from)) }

// Recover implements engine.Workload.
func (w *BaselineWorkload) Recover() (int64, error) {
	from, err := w.bg.Recover()
	return int64(from), err
}

// Verify implements engine.Workload: same oracle comparison as the
// extended relaxation.
func (w *BaselineWorkload) Verify() error {
	want := w.Want
	if want == nil {
		want = Want(w.bg.Opts)
	}
	return VerifyGrid(w.bg.Result(), want)
}

// Metrics implements engine.Workload.
func (w *BaselineWorkload) Metrics() map[string]float64 {
	return map[string]float64{
		"avg_iter_ns": float64(sim.AvgPositive(w.bg.IterNS[1:])),
	}
}

// Interface conformance.
var (
	_ engine.Workload = (*HeatWorkload)(nil)
	_ engine.Workload = (*BaselineWorkload)(nil)
)
