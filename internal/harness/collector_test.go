package harness

import (
	"bytes"
	"context"
	"testing"

	"adcc/internal/bench"
)

// TestCollectorDeterministicUnderParallel4 runs a collector-fed
// experiment serially and with four workers and asserts the collected
// bench suites are byte-identical: case fan-out must not leak into the
// perf pipeline's output.
func TestCollectorDeterministicUnderParallel4(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel collector determinism is not short")
	}
	run := func(parallel int) []byte {
		col := bench.NewCollector()
		opts := Options{Scale: 0.02, Parallel: parallel, Collector: col}
		e, ok := ByName("fig4")
		if !ok {
			t.Fatal("fig4 experiment missing")
		}
		if _, err := e.Run(context.Background(), opts); err != nil {
			t.Fatalf("fig4 (parallel=%d): %v", parallel, err)
		}
		if col.Len() == 0 {
			t.Fatalf("fig4 (parallel=%d): collector stayed empty", parallel)
		}
		b, err := bench.NewSuite(0.02, col.Results()).EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("collector output differs between serial and -parallel 4:\n%s\nvs\n%s",
			serial, parallel)
	}
}

// TestCollectorRecordsRecoveryMetrics checks the fig3 driver feeds
// recovery timings into the collector.
func TestCollectorRecordsRecoveryMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 at test scale is not short")
	}
	col := bench.NewCollector()
	e, _ := ByName("fig3")
	if _, err := e.Run(context.Background(), Options{Scale: 0.02, Collector: col}); err != nil {
		t.Fatalf("fig3: %v", err)
	}
	found := false
	for _, r := range col.Results() {
		if r.Name == "fig3/class-S" {
			found = true
			if r.RecoveryNS <= 0 || r.SimNS <= 0 {
				t.Errorf("fig3/class-S missing sim metrics: %+v", r)
			}
		}
	}
	if !found {
		t.Errorf("fig3/class-S not recorded; got %d results", col.Len())
	}
}
