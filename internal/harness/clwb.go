package harness

import (
	"context"
	"fmt"

	"adcc/internal/cache"
	"adcc/internal/core"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/mc"
	"adcc/internal/sparse"
)

// RunCLWBAblation quantifies the paper's §II prediction that the
// then-unavailable CLWB / CLFLUSH_OPT instructions "should further
// improve performance of our proposed approach": the same three
// algorithm-directed workloads are run with CLFLUSH (write back +
// invalidate, so the flushed line refills on the next access) and with
// CLWB (write back, line stays resident).
func RunCLWBAblation(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:    "clwb",
		Title:   "Algorithm-directed flush cost: CLFLUSH vs CLWB (paper §II prediction)",
		Headers: []string{"Workload", "Instr", "Time(ms)", "Normalized"},
	}
	newM := func(instr crash.FlushInstr, llc, assoc int) *crash.Machine {
		return crash.NewMachine(crash.MachineConfig{
			System: crash.NVMOnly,
			Cache: cache.Config{
				SizeBytes: llc, LineBytes: 64, Assoc: assoc, HitNS: 4,
				FlushChargesClean: true, PrefetchStreams: 16,
			},
			Flush: instr,
		})
	}

	// CG: one iteration-counter flush per iteration.
	cgN := o.scaleInt(40000, 2000)
	a := sparse.GenSPD(cgN, 11, 21)
	cgRun := func(instr crash.FlushInstr) int64 {
		m := newM(instr, cgLLCBytes, 16)
		cg := core.NewCG(m, nil, a, core.CGOptions{MaxIter: 12})
		start := m.Clock.Now()
		cg.Run(1)
		return m.Clock.Since(start)
	}

	// MM: checksum row/column flushes per panel — the workload with
	// the most flush traffic, where CLWB should matter most.
	mmN := o.scaleInt(400, 160)
	mmRun := func(instr crash.FlushInstr) int64 {
		m := newM(instr, mmLLCBytes, 16)
		mm := core.NewMM(m, nil, core.MMOptions{N: mmN, K: mmN / 20, Seed: 5})
		start := m.Clock.Now()
		mm.Run()
		return m.Clock.Since(start)
	}

	// MC: critical-state flushes every period; the flushed lines are
	// re-written immediately, so CLFLUSH pays a refill per flush.
	cfg := mcConfig(o)
	mcRun := func(instr crash.FlushInstr) int64 {
		m := newM(instr, mcLLCBytes, mcAssoc)
		s := mc.New(m.Heap, m.CPU, cfg)
		r := core.NewMCRunner(m, nil, s, engine.MustLookup(engine.SchemeAlgoEvery))
		start := m.Clock.Now()
		r.Run(0)
		return m.Clock.Since(start)
	}

	workloads := []struct {
		name string
		run  func(crash.FlushInstr) int64
	}{
		{"CG (algo)", cgRun},
		{"ABFT-MM (algo)", mmRun},
		{"MC (flush-every-iter)", mcRun},
	}
	instrs := []crash.FlushInstr{crash.CLFLUSH, crash.CLWB}
	label := func(i int) string {
		return fmt.Sprintf("%s/%s", workloads[i/len(instrs)].name, instrs[i%len(instrs)])
	}
	times, err := runCases(ctx, o, "clwb", label, len(workloads)*len(instrs), func(i int) (int64, error) {
		w := workloads[i/len(instrs)]
		instr := instrs[i%len(instrs)]
		o.logf("clwb: %s instr=%d", w.name, instr)
		return w.run(instr), nil
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range workloads {
		base := times[wi*len(instrs)]
		opt := times[wi*len(instrs)+1]
		t.AddRow(w.name, "CLFLUSH", fmt.Sprintf("%.2f", float64(base)/1e6), 1.0)
		t.AddRow(w.name, "CLWB", fmt.Sprintf("%.2f", float64(opt)/1e6), normalize(opt, base))
	}
	t.AddNote("CLWB keeps flushed lines resident; the gain grows with flush frequency, as §II anticipates")
	return t, nil
}
