package harness

import (
	"context"
	"fmt"

	"adcc/internal/bench"
	"adcc/internal/core"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/sparse"
)

// cgLLCBytes is the LLC used for the CG experiments: half the paper's
// 8 MB. The classes are used at their NPB sizes; 4 MB keeps the paper's
// Figure 3 relationship (S and W's history working sets fit and lose all
// iterations, B and C stream and lose one).
const cgLLCBytes = 4 << 20

// RunFig3 reproduces Figure 3: recomputation cost of crash-consistent CG
// across input classes, broken into "detecting where to restart" and
// "resuming computation", normalized by the average iteration time. The
// crash fires at the end of iteration 15 on the heterogeneous NVM/DRAM
// system, as in the paper.
func RunFig3(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:  "fig3",
		Title: "CG recomputation cost (normalized to one iteration)",
		Headers: []string{
			"Class", "n", "ItersLost", "Detect/iter", "Resume/iter", "Total/iter",
		},
	}
	crashIter := 15
	classes := sparse.Classes()
	label := func(i int) string { return "class-" + classes[i].Name }
	rows, err := runCases(ctx, o, "fig3", label, len(classes), func(ci int) ([]any, error) {
		cl := classes[ci]
		n := o.scaleInt(cl.N, 200)
		o.logf("fig3: class %s n=%d", cl.Name, n)
		a := sparse.GenSPD(n, cl.NnzRow, 1000+int64(len(cl.Name)))

		m := newMachine(crash.Hetero, cgLLCBytes, 16)
		em := crash.NewEmulator(m)
		cg := core.NewCG(m, em, a, core.CGOptions{MaxIter: crashIter})
		em.CrashAtTrigger(core.TriggerCGIterEnd, crashIter)
		if !em.Run(func() { cg.Run(1) }) {
			return nil, fmt.Errorf("fig3: class %s did not crash", cl.Name)
		}
		avg := core.AvgIterNS(cg.IterNS)
		rec := cg.Recover()
		resumeStart := m.Clock.Now()
		cg.Run(rec.RestartIter)
		resume := m.Clock.Since(resumeStart)

		o.Collector.Record(bench.Result{
			Name:       "fig3/class-" + cl.Name,
			SimNS:      rec.DetectNS + resume,
			RecoveryNS: rec.DetectNS,
		})
		return []any{cl.Name, n, rec.IterationsLost,
			normalize(rec.DetectNS, avg), normalize(resume, avg),
			normalize(rec.DetectNS+resume, avg)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.AddNote("crash at end of iteration %d on the NVM/DRAM system (paper setup)", crashIter)
	t.AddNote("paper: classes S,W lose all 15 iterations; classes B,C lose 1")
	return t, nil
}

// cgCase runs one scheme of the seven-case comparison for CG and returns
// total simulated runtime. Algorithm-directed schemes run the extended
// solver; the others run the Figure 1 baseline under the scheme's guard.
func cgCase(sc engine.Scheme, a *sparse.CSR, opts core.CGOptions) int64 {
	m := newMachine(sc.System(), cgLLCBytes, 16)
	var start int64
	if sc.Kind() == engine.KindAlgo {
		cg := core.NewCG(m, nil, a, opts)
		start = m.Clock.Now()
		cg.Run(1)
	} else {
		bg := core.NewBaselineCG(m, a, opts, sc)
		start = m.Clock.Now()
		bg.Run()
	}
	return m.Clock.Since(start)
}

// cgNativeBase measures native execution on both memory systems, the
// normalization denominators of Figure 4.
func cgNativeBase(ctx context.Context, o Options, a *sparse.CSR, opts core.CGOptions) (map[crash.SystemKind]int64, error) {
	kinds := []crash.SystemKind{crash.NVMOnly, crash.Hetero}
	label := func(i int) string { return "native@" + kinds[i].String() }
	times, err := runCases(ctx, o, "fig4/base", label, len(kinds), func(i int) (int64, error) {
		m := newMachine(kinds[i], cgLLCBytes, 16)
		bg := core.NewBaselineCG(m, a, opts, nil)
		start := m.Clock.Now()
		bg.Run()
		return m.Clock.Since(start), nil
	})
	if err != nil {
		return nil, err
	}
	base := map[crash.SystemKind]int64{}
	for i, kind := range kinds {
		base[kind] = times[i]
	}
	return base, nil
}

// RunFig4 reproduces Figure 4: CG runtime under the seven mechanisms,
// normalized by native execution on the same memory system. Class C is
// the input; checkpoint and PMEM act once per iteration so every
// mechanism has the same one-iteration recomputation bound.
func RunFig4(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:  "fig4",
		Title: "CG runtime, seven mechanisms (normalized to native)",
		Headers: []string{
			"Case", "System", "Time(ms)", "Normalized", "Paper",
		},
	}
	cl, _ := sparse.ClassByName("C")
	n := o.scaleInt(cl.N, 2000)
	o.logf("fig4: class C n=%d", n)
	a := sparse.GenSPD(n, cl.NnzRow, 77)
	opts := core.CGOptions{MaxIter: 15}

	paperRef := map[string]string{
		caseNative:     "1.000",
		caseCkptHDD:    "1.604",
		caseCkptNVM:    "1.042",
		caseCkptHetero: "1.436",
		casePMEM:       "4.290",
		caseAlgoNVM:    "<1.03",
		caseAlgoHetero: "<1.03",
	}

	base, err := cgNativeBase(ctx, o, a, opts)
	if err != nil {
		return nil, err
	}

	cases := sevenCases()
	times, err := runCases(ctx, o, "fig4", schemeLabel(cases), len(cases), func(i int) (int64, error) {
		sc := cases[i]
		o.logf("fig4: case %s", sc.Name())
		if sc.Name() == caseNative {
			return base[crash.NVMOnly], nil
		}
		return cgCase(sc, a, opts), nil
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range cases {
		ns := times[i]
		sys := sc.System()
		o.Collector.Record(bench.Result{Name: "fig4/" + sc.Name(), SimNS: ns})
		t.AddRow(sc.Name(), sys.String(),
			fmt.Sprintf("%.2f", float64(ns)/1e6),
			normalize(ns, base[sys]), paperRef[sc.Name()])
	}
	t.AddNote("checkpoint/PMEM act once per CG iteration (same recomputation bound as algo)")
	return t, nil
}

// RunCGCacheAblation sweeps the LLC size for a fixed class and reports
// how the recomputation cost of the algorithm-directed approach depends
// on cache capacity — the caching-effect observation of the paper's
// second contribution bullet.
func RunCGCacheAblation(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:    "cg-cache",
		Title:   "CG iterations lost after a crash vs LLC size (class A)",
		Headers: []string{"LLC", "ItersLost", "Detect/iter", "Total/iter"},
	}
	cl, _ := sparse.ClassByName("A")
	n := o.scaleInt(cl.N, 1000)
	a := sparse.GenSPD(n, cl.NnzRow, 88)
	crashIter := 15
	llcs := []int{256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	label := func(i int) string { return fmt.Sprintf("llc-%dKB", llcs[i]>>10) }
	rows, err := runCases(ctx, o, "cg-cache", label, len(llcs), func(i int) ([]any, error) {
		llc := llcs[i]
		m := newMachine(crash.NVMOnly, llc, 16)
		em := crash.NewEmulator(m)
		cg := core.NewCG(m, em, a, core.CGOptions{MaxIter: crashIter})
		em.CrashAtTrigger(core.TriggerCGIterEnd, crashIter)
		if !em.Run(func() { cg.Run(1) }) {
			return nil, fmt.Errorf("cg-cache: no crash at llc=%d", llc)
		}
		avg := core.AvgIterNS(cg.IterNS)
		rec := cg.Recover()
		resumeStart := m.Clock.Now()
		cg.Run(rec.RestartIter)
		resume := m.Clock.Since(resumeStart)
		return []any{fmt.Sprintf("%dKB", llc>>10), rec.IterationsLost,
			normalize(rec.DetectNS, avg), normalize(rec.DetectNS+resume, avg)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.AddNote("larger caches retain more dirty history rows, increasing loss — the inverse of Figure 3's input-size effect")
	return t, nil
}
