package harness

import (
	"context"

	"adcc/internal/engine"
)

// runCases executes n independent experiment cases through the engine's
// bounded worker pool (engine.RunCases), honoring o.Parallel and the
// run's context. Each case builds its own simulated machine and seeds
// its own inputs, so execution order cannot affect results; collecting
// them by case index keeps the emitted tables byte-identical to a
// serial run.
//
// exp and label feed the event stream: with Options.Events set, every
// case emits a CaseStarted/CaseFinished pair in case-index order (label
// may be nil for anonymous cases). Cancelling ctx stops the dispatch of
// queued cases and surfaces ctx.Err().
func runCases[T any](ctx context.Context, o Options, exp string, label func(i int) string, n int, run func(i int) (T, error)) ([]T, error) {
	return engine.RunCasesObserved(ctx, o.Parallel, n, run,
		engine.EmitCases[T](o.Events, exp, n, label))
}
