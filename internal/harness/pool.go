package harness

import "adcc/internal/engine"

// runCases executes n independent experiment cases through the engine's
// bounded worker pool (engine.RunCases), honoring o.Parallel. Each case
// builds its own simulated machine and seeds its own inputs, so
// execution order cannot affect results; collecting them by case index
// keeps the emitted tables byte-identical to a serial run.
func runCases[T any](o Options, n int, run func(i int) (T, error)) ([]T, error) {
	return engine.RunCases(o.Parallel, n, run)
}
