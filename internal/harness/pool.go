package harness

import "sync"

// runCases executes n independent experiment cases, fanning out across a
// bounded worker pool when o.Parallel > 1. Each case builds its own
// simulated machine and seeds its own inputs, so execution order cannot
// affect results; collecting them by case index keeps the emitted tables
// byte-identical to a serial run. Errors are reported in case order (the
// lowest-index failure wins, matching what a serial run would hit
// first).
func runCases[T any](o Options, n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers := o.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = run(i)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				out[i], errs[i] = run(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
