package harness

import (
	"context"
	"fmt"

	"adcc/internal/bench"
	"adcc/internal/core"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/mc"
)

// MC experiments use a smaller, lower-associativity LLC: at the scaled
// grid sizes this preserves the eviction pressure on the hot counter and
// macro_xs lines that produces the paper's Figure 10 bias.
const (
	mcLLCBytes = 512 << 10
	mcAssoc    = 4
	// mcDRAMCache is the DRAM tier for the MC experiments: scaled down
	// from the paper's 32 MB along with the grids (246 MB -> ~25 MB),
	// but only halved so the per-checkpoint tier-flush cost stays in
	// the regime that yields the paper's ~13% NVM/DRAM checkpoint
	// overhead in Figure 13.
	mcDRAMCache = 16 << 20
)

// mcConfig returns the scaled XSBench configuration.
func mcConfig(o Options) mc.Config {
	cfg := mc.DefaultConfig()
	cfg.Lookups = o.scaleInt(cfg.Lookups, 5000)
	cfg.PointsPerNuclide = o.scaleInt(cfg.PointsPerNuclide, 128)
	return cfg
}

// runMCResult runs the lookup loop under a scheme, optionally crashing
// at 10% of the lookups and restarting. It returns the final counts and
// the simulated runtime of the main loop (excluding setup). The accuracy
// comparisons of Figures 10/12 all run on the NVM-only platform.
func runMCResult(sc engine.Scheme, cfg mc.Config, withCrash bool) ([mc.NumTypes]int64, int64) {
	m := newMachineTier(crash.NVMOnly, mcLLCBytes, mcAssoc, mcDRAMCache)
	em := crash.NewEmulator(m)
	s := mc.New(m.Heap, m.CPU, cfg)
	r := core.NewMCRunner(m, em, s, sc)
	r.FlushPeriod = harnessFlushPeriod(cfg.Lookups)
	start := m.Clock.Now()
	if withCrash {
		em.CrashAtTrigger(core.TriggerMCLookup, cfg.Lookups/10)
		if !em.Run(func() { r.Run(0) }) {
			panic("harness: MC run did not crash")
		}
		from := r.RestartIter()
		r.Em = nil
		r.Run(from)
	} else {
		r.Run(0)
	}
	return s.Counts(), m.Clock.Since(start)
}

// harnessFlushPeriod is the paper's 0.01%-of-lookups period with a floor
// of 10 so that scaled-down (CI-size) runs do not degenerate into
// flushing on every iteration. It is used by the accuracy experiments
// (Figures 10/12), where the period bounds the result loss.
func harnessFlushPeriod(lookups int) int {
	p := core.DefaultFlushPeriod(lookups)
	if p < 10 {
		p = 10
	}
	return p
}

// runtimeFlushPeriod is the period used by the runtime experiment
// (Figure 13). The lookup count is scaled down ~100x from the paper's
// 1.5e7, so keeping the paper's absolute 0.01% fraction would make the
// fixed per-event flush/checkpoint work 100x more frequent relative to
// total computation and distort every overhead ratio. This period keeps
// the event-work-to-computation ratio of the paper's setup instead
// (2% of the scaled lookups ~ 0.01% of the paper's).
func runtimeFlushPeriod(lookups int) int {
	p := lookups / 50
	if p < 10 {
		p = 10
	}
	return p
}

// mcComparisonTable builds the Figure 10/12 style table comparing
// no-crash and crash-and-restart counts for a flush policy.
func mcComparisonTable(ctx context.Context, name, title string, o Options, sc engine.Scheme) (*Table, error) {
	cfg := mcConfig(o)
	o.logf("%s: lookups=%d grid-points=%d", name, cfg.Lookups, cfg.PointsPerNuclide*cfg.Nuclides)
	label := func(i int) string {
		if i == 0 {
			return "no-crash"
		}
		return "crash-restart"
	}
	counts, err := runCases(ctx, o, name, label, 2, func(i int) ([mc.NumTypes]int64, error) {
		c, _ := runMCResult(sc, cfg, i == 1)
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	base, crashed := counts[0], counts[1]
	t := &Table{
		Name:    name,
		Title:   title,
		Headers: []string{"Type", "NoCrash(%)", "CrashRestart(%)", "Delta(pp)"},
	}
	bp := mc.Percentages(base, cfg.Lookups)
	cp := mc.Percentages(crashed, cfg.Lookups)
	maxDelta := 0.0
	for k := 0; k < mc.NumTypes; k++ {
		d := cp[k] - bp[k]
		if d < 0 {
			d = -d
		}
		if d > maxDelta {
			maxDelta = d
		}
		t.AddRow(k+1, fmt.Sprintf("%.2f", bp[k]), fmt.Sprintf("%.2f", cp[k]),
			fmt.Sprintf("%+.2f", cp[k]-bp[k]))
	}
	t.AddNote("crash at 10%% of lookups, identical sampled inputs in both runs (paper methodology)")
	t.AddNote("max per-type deviation: %.2f percentage points", maxDelta)
	return t, nil
}

// RunFig10 reproduces Figure 10: with the naive restart scheme (flush
// only the loop index), the interaction-type counts after crash+restart
// differ visibly from the no-crash run.
func RunFig10(ctx context.Context, o Options) (*Table, error) {
	return mcComparisonTable(ctx, "fig10",
		"XSBench interaction counts: no-crash vs naive crash-restart",
		o, engine.MustLookup(engine.SchemeAlgoNaive))
}

// RunFig12 reproduces Figure 12: with selective flushing of macro_xs,
// the counters, and the index every 0.01% of lookups, the restarted run
// matches the no-crash run.
func RunFig12(ctx context.Context, o Options) (*Table, error) {
	return mcComparisonTable(ctx, "fig12",
		"XSBench interaction counts: no-crash vs selective-flush crash-restart",
		o, engine.MustLookup(engine.SchemeAlgoNVM))
}

// fig13Run measures the lookup loop's runtime under one scheme.
func fig13Run(sc engine.Scheme, cfg mc.Config) int64 {
	m := newMachineTier(sc.System(), mcLLCBytes, mcAssoc, mcDRAMCache)
	s := mc.New(m.Heap, m.CPU, cfg)
	r := core.NewMCRunner(m, nil, s, sc)
	r.FlushPeriod = runtimeFlushPeriod(cfg.Lookups)
	start := m.Clock.Now()
	r.Run(0)
	return m.Clock.Since(start)
}

// RunFig13 reproduces Figure 13: runtime of the lookup loop under the
// seven cases, with checkpoint/flush periods of 0.01% of lookups.
func RunFig13(ctx context.Context, o Options) (*Table, error) {
	cfg := mcConfig(o)
	t := &Table{
		Name:    "fig13",
		Title:   "XSBench runtime, seven mechanisms (normalized to native)",
		Headers: []string{"Case", "System", "Time(ms)", "Normalized", "Paper"},
	}
	paperRef := map[string]string{
		caseNative:     "1.000",
		caseCkptHDD:    "large",
		caseCkptNVM:    "~1.00",
		caseCkptHetero: "~1.13",
		casePMEM:       "n/a",
		caseAlgoNVM:    "<=1.0005",
		caseAlgoHetero: "<=1.0005",
	}
	kinds := []crash.SystemKind{crash.NVMOnly, crash.Hetero}
	baseLabel := func(i int) string { return "native@" + kinds[i].String() }
	baseTimes, err := runCases(ctx, o, "fig13/base", baseLabel, len(kinds), func(i int) (int64, error) {
		m := newMachineTier(kinds[i], mcLLCBytes, mcAssoc, mcDRAMCache)
		s := mc.New(m.Heap, m.CPU, cfg)
		r := core.NewMCRunner(m, nil, s, nil)
		start := m.Clock.Now()
		r.Run(0)
		return m.Clock.Since(start), nil
	})
	if err != nil {
		return nil, err
	}
	base := map[crash.SystemKind]int64{}
	for i, kind := range kinds {
		base[kind] = baseTimes[i]
	}
	cases := sevenCases()
	times, err := runCases(ctx, o, "fig13", schemeLabel(cases), len(cases), func(i int) (int64, error) {
		sc := cases[i]
		o.logf("fig13: case %s", sc.Name())
		if sc.Name() == caseNative {
			return base[crash.NVMOnly], nil
		}
		return fig13Run(sc, cfg), nil
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range cases {
		ns := times[i]
		sys := sc.System()
		o.Collector.Record(bench.Result{Name: "fig13/" + sc.Name(), SimNS: ns})
		t.AddRow(sc.Name(), sys.String(),
			fmt.Sprintf("%.2f", float64(ns)/1e6),
			normalize(ns, base[sys]), paperRef[sc.Name()])
	}
	t.AddNote("checkpoint/flush period = %d lookups (event-work-to-computation ratio of the paper's 0.01%% of 1.5e7 setup)", runtimeFlushPeriod(cfg.Lookups))
	return t, nil
}

// RunMCFlushAblation sweeps the flush period, reporting runtime overhead
// and post-crash result deviation. The period-1 row reproduces the
// paper's observation that flushing on every iteration costs ~16%.
func RunMCFlushAblation(ctx context.Context, o Options) (*Table, error) {
	cfg := mcConfig(o)
	t := &Table{
		Name:    "mc-flush",
		Title:   "Flush period vs runtime overhead and restart accuracy",
		Headers: []string{"Period", "Overhead(%)", "MaxDelta(pp)"},
	}
	selective := engine.MustLookup(engine.SchemeAlgoNVM)
	// Native baseline.
	baseCounts, baseNS := runMCResult(nil, cfg, false)
	basePct := mc.Percentages(baseCounts, cfg.Lookups)
	periods := []int{1, 10, 100, core.DefaultFlushPeriod(cfg.Lookups) * 10}
	label := func(i int) string { return fmt.Sprintf("period-%d", periods[i]) }
	rows, err := runCases(ctx, o, "mc-flush", label, len(periods), func(i int) ([]any, error) {
		period := periods[i]
		o.logf("mc-flush: period=%d", period)
		// Runtime without crash.
		m := newMachine(crash.NVMOnly, mcLLCBytes, mcAssoc)
		s := mc.New(m.Heap, m.CPU, cfg)
		r := core.NewMCRunner(m, nil, s, selective)
		r.FlushPeriod = period
		start := m.Clock.Now()
		r.Run(0)
		ns := m.Clock.Since(start)

		// Accuracy with crash.
		m2 := newMachine(crash.NVMOnly, mcLLCBytes, mcAssoc)
		em2 := crash.NewEmulator(m2)
		s2 := mc.New(m2.Heap, m2.CPU, cfg)
		r2 := core.NewMCRunner(m2, em2, s2, selective)
		r2.FlushPeriod = period
		em2.CrashAtTrigger(core.TriggerMCLookup, cfg.Lookups/10)
		if !em2.Run(func() { r2.Run(0) }) {
			return nil, fmt.Errorf("mc-flush: no crash at period %d", period)
		}
		from := r2.RestartIter()
		r2.Em = nil
		r2.Run(from)
		pct := mc.Percentages(s2.Counts(), cfg.Lookups)
		maxDelta := 0.0
		for k := range pct {
			d := pct[k] - basePct[k]
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
		}
		return []any{period,
			fmt.Sprintf("%.2f", 100*normalize(ns-baseNS, baseNS)),
			fmt.Sprintf("%.2f", maxDelta)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.AddNote("paper: flushing every iteration costs ~16%%; every 0.01%% of lookups is ~free and bounds loss to 0.01%%")
	return t, nil
}
