package harness

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// RunSummary re-runs the core experiments and checks the paper's
// headline claims programmatically, reporting PASS/FAIL per claim:
//
//  1. runtime overhead of the algorithm-directed approach is at most
//     8.2% and below 3% in most cases (abstract);
//  2. recomputation cost falls with input size, reaching one iteration
//     for large CG inputs (Figure 3);
//  3. the approach beats checkpointing and PMEM wherever they are
//     compared (Figures 4, 8, 13);
//  4. MC results are wrong under naive restart and exact under
//     selective flushing (Figures 10, 12).
func RunSummary(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:    "summary",
		Title:   "Headline-claim validation",
		Headers: []string{"Claim", "Evidence", "Status"},
	}
	if o.scale() < 0.9 {
		t.AddNote("WARNING: run at -scale 1.0 — the claims are defined for paper-shape sizes; scaled-down runs inflate fixed costs and fit working sets into caches")
	}

	fail := func(msg string, args ...any) {
		t.AddRow(fmt.Sprintf(msg, args...), "", "FAIL")
	}

	// Gather every figure the claims draw on. The six experiments are
	// themselves independent cases, so they go through the same bounded
	// executor — with their own inner fan-out disabled, so the total
	// concurrency stays within o.Parallel rather than multiplying.
	subRuns := []func(context.Context, Options) (*Table, error){
		RunFig4, RunFig8, RunFig13, RunFig3, RunFig10, RunFig12,
	}
	subNames := []string{"fig4", "fig8", "fig13", "fig3", "fig10", "fig12"}
	inner := o
	inner.Parallel = 1
	// The sub-experiments run concurrently, so they must not write to
	// the (sequential) event stream; the summary emits one case pair
	// per sub-experiment from its own ordered fan-out instead.
	inner.Events = nil
	label := func(i int) string { return subNames[i] }
	subTabs, err := runCases(ctx, o, "summary", label, len(subRuns), func(i int) (*Table, error) {
		return subRuns[i](ctx, inner)
	})
	if err != nil {
		return nil, err
	}
	fig4, fig8, fig13 := subTabs[0], subTabs[1], subTabs[2]
	fig3, fig10, fig12 := subTabs[3], subTabs[4], subTabs[5]

	// Claim 1: algo overhead bounded.
	var algoOverheads []float64
	collect := func(tab *Table, caseCol, valCol int) {
		for _, r := range tab.Rows {
			if strings.HasPrefix(r[caseCol], "algo") {
				if v, err := strconv.ParseFloat(r[valCol], 64); err == nil {
					algoOverheads = append(algoOverheads, v-1)
				}
			}
		}
	}
	collect(fig4, 0, 3)
	collect(fig8, 1, 4)
	collect(fig13, 0, 3)
	worst, under3 := 0.0, 0
	for _, v := range algoOverheads {
		if v > worst {
			worst = v
		}
		if v < 0.03 {
			under3++
		}
	}
	// The paper's 8.2% bound applies at paper scale; scaled-down runs
	// inflate fixed costs slightly, so the acceptance bound is 10%.
	status := "PASS"
	if worst > 0.10 || under3*2 < len(algoOverheads) {
		status = "FAIL"
	}
	t.AddRow("algo overhead <=8.2%, <3% in most cases",
		fmt.Sprintf("worst %.1f%%, %d/%d rows <3%%", 100*worst, under3, len(algoOverheads)),
		status)

	// Claim 2: Figure 3 monotonicity.
	lostFirst, _ := strconv.ParseFloat(fig3.Rows[0][2], 64)
	lostLast, _ := strconv.ParseFloat(fig3.Rows[len(fig3.Rows)-1][2], 64)
	status = "PASS"
	if lostLast > 2 || lostFirst < lostLast {
		status = "FAIL"
	}
	t.AddRow("CG recomputation falls to ~1 iteration for large inputs",
		fmt.Sprintf("lost: %s -> %s iterations", fig3.Rows[0][2], fig3.Rows[len(fig3.Rows)-1][2]),
		status)

	// Claim 3: algo beats checkpoint and PMEM on every runtime figure.
	beaten := true
	evidence := []string{}
	check := func(tab *Table, caseCol, valCol int, label string) {
		algoBest := 1e18
		otherBest := 1e18
		for _, r := range tab.Rows {
			v, err := strconv.ParseFloat(r[valCol], 64)
			if err != nil {
				continue
			}
			name := r[caseCol]
			switch {
			case strings.HasPrefix(name, "algo"):
				if v < algoBest {
					algoBest = v
				}
			case strings.HasPrefix(name, "ckpt") || strings.HasPrefix(name, "PMEM"):
				if v < otherBest {
					otherBest = v
				}
			}
		}
		if algoBest > otherBest {
			beaten = false
		}
		evidence = append(evidence, fmt.Sprintf("%s: %.3f vs %.3f", label, algoBest, otherBest))
	}
	check(fig4, 0, 3, "fig4")
	check(fig8, 1, 4, "fig8")
	check(fig13, 0, 3, "fig13")
	status = "PASS"
	if !beaten {
		status = "FAIL"
	}
	t.AddRow("algo beats the best conventional mechanism everywhere",
		strings.Join(evidence, "; "), status)

	// Claim 4: naive MC restart is wrong, selective is exact.
	maxDelta := func(tab *Table) float64 {
		worst := 0.0
		for _, r := range tab.Rows {
			v, err := strconv.ParseFloat(strings.TrimPrefix(r[3], "+"), 64)
			if err != nil {
				continue
			}
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
		}
		return worst
	}
	d10, d12 := maxDelta(fig10), maxDelta(fig12)
	status = "PASS"
	if d10 < 0.5 || d12 > 0.2 || d12 >= d10 {
		status = "FAIL"
	}
	t.AddRow("MC: naive restart biased, selective flushing exact",
		fmt.Sprintf("naive max delta %.2fpp, selective %.2fpp", d10, d12), status)

	if status == "" {
		fail("unreachable")
	}
	return t, nil
}
