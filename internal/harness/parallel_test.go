package harness

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCasesPreservesOrder(t *testing.T) {
	o := Options{Parallel: 8}
	got, err := runCases(context.Background(), o, "t", nil, 100, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunCasesBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	o := Options{Parallel: workers}
	_, err := runCases(context.Background(), o, "t", nil, 64, func(i int) (int, error) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // widen the overlap window
			_ = j
		}
		active.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, workers)
	}
}

func TestRunCasesReportsLowestIndexError(t *testing.T) {
	o := Options{Parallel: 4}
	errA := errors.New("case 2 failed")
	_, err := runCases(context.Background(), o, "t", nil, 8, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("case 5 failed")
		}
		if i == 2 {
			return 0, errA
		}
		return i, nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
}

func TestRunCasesSerialFallback(t *testing.T) {
	for _, par := range []int{0, 1, -3} {
		got, err := runCases(context.Background(), Options{Parallel: par}, "t", nil, 5, func(i int) (string, error) {
			return fmt.Sprint(i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 || got[4] != "4" {
			t.Fatalf("parallel=%d: got %v", par, got)
		}
	}
}

// TestParallelRunsAreByteIdentical is the harness's determinism
// contract: every experiment's table must be byte-identical whether its
// cases run serially or through the worker pool. Each case builds its
// own seeded machine, so scheduling cannot leak into results.
func TestParallelRunsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			serialTab, err := e.Run(context.Background(), Options{Scale: 0.05})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			parTab, err := e.Run(context.Background(), Options{Scale: 0.05, Parallel: 4})
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			serial, par := serialTab.String(), parTab.String()
			if serial != par {
				t.Fatalf("parallel table differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
			}
		})
	}
}
