// Package harness contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§III), plus ablation
// studies for the reproduction's design choices and the statistical
// crash-injection campaign's survival table. Each driver builds the
// simulated platform(s), runs the workload under the relevant
// mechanisms, and emits a text table whose rows correspond to the
// figure's bars or series. Drivers fan independent cases through the
// engine's bounded worker pool and collect results by case index, so
// tables are byte-identical at any Options.Parallel setting.
package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"adcc/internal/bench"
	"adcc/internal/engine"
)

// Table is a rendered experiment result.
type Table struct {
	Name    string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are free-form lines printed under the table (scaling
	// caveats, paper reference values, annotations).
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// FprintCSV renders the table as CSV (header row first, notes as
// trailing comment lines).
func (t *Table) FprintCSV(w io.Writer) {
	quote := func(cells []string) string {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		return strings.Join(out, ",")
	}
	fmt.Fprintln(w, quote(t.Headers))
	for _, row := range t.Rows {
		fmt.Fprintln(w, quote(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// Options configures an experiment run.
type Options struct {
	// Scale multiplies the problem sizes; 1.0 reproduces the
	// paper-shape defaults, smaller values give CI-sized runs.
	Scale float64
	// Verbose enables progress notes on Out.
	Verbose bool
	// Out receives progress output when Verbose is set.
	Out io.Writer
	// Parallel bounds how many of an experiment's independent cases run
	// concurrently; values <= 1 run serially. Results are collected in
	// case order, so tables are byte-identical at any setting.
	Parallel int
	// Collector, when non-nil, receives one bench.Result per measured
	// experiment case (named "<experiment>/<case>"), carrying the
	// deterministic simulated timings. Recording is concurrency-safe
	// and sorted on snapshot, so the collected suite is identical
	// between serial and parallel runs.
	Collector *bench.Collector
	// CampaignJSON, when non-empty, makes the campaign experiment write
	// its full machine-readable report (wrapped in the adcc-report/v1
	// envelope) to this path.
	CampaignJSON string
	// CampaignStore, when non-empty, makes the campaign experiment
	// write every injection's raw outcome row to a columnar result
	// store (internal/resultstore) at this path. Store bytes are a pure
	// function of the campaign spec — identical at any Parallel and on
	// either engine.
	CampaignStore string
	// Seed drives the campaign experiment's crash-point selection; the
	// default 0 is a valid seed. The figure experiments use fixed
	// paper-shape seeds and ignore it.
	Seed int64
	// Workloads, Schemes, and PerCell configure the campaign
	// experiment's sweep grid (see campaign.Config); the figure
	// experiments reproduce the paper's fixed case sets and ignore
	// them.
	Workloads []string
	Schemes   []string
	PerCell   int
	// FaultModels selects the campaign experiment's crash-time
	// fault/persistency models (campaign.Config.FaultModels); nil
	// sweeps clean fail-stop only.
	FaultModels []string
	// Replay switches the campaign experiment to the snapshot/fork
	// replay engine (campaign.Config.Replay): one recording run per
	// cell, forked per injection class. The report is byte-identical to
	// the legacy path; only wall-clock cost differs.
	Replay bool
	// Registry resolves scheme names for the campaign experiment; nil
	// means the process-global registry. The figure experiments always
	// run the paper's built-in seven cases.
	Registry *engine.Registry
	// Events, when non-nil, receives the streaming progress events
	// (case started/finished, injection outcomes) in deterministic
	// case-index order — the stream is byte-identical at any Parallel
	// setting.
	Events engine.EventSink
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// scaleInt applies the scale factor with a floor.
func (o Options) scaleInt(v, floor int) int {
	s := int(float64(v) * o.scale())
	if s < floor {
		return floor
	}
	return s
}

func (o Options) logf(format string, args ...any) {
	if o.Verbose && o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

// Experiment is a named, runnable reproduction unit. Run honors ctx:
// cancellation stops the dispatch of queued cases and surfaces
// ctx.Err().
type Experiment struct {
	Name  string
	Title string
	Run   func(ctx context.Context, o Options) (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "CG recomputation cost vs input class (paper Figure 3)", RunFig3},
		{"fig4", "CG runtime under seven mechanisms (paper Figure 4)", RunFig4},
		{"fig7", "ABFT-MM recomputation cost, two crash tests (paper Figure 7)", RunFig7},
		{"fig8", "ABFT-MM runtime under seven mechanisms x rank (paper Figure 8)", RunFig8},
		{"fig10", "XSBench counts: no-crash vs naive restart (paper Figure 10)", RunFig10},
		{"fig12", "XSBench counts: no-crash vs selective flushing (paper Figure 12)", RunFig12},
		{"fig13", "XSBench runtime under mechanisms (paper Figure 13)", RunFig13},
		{"summary", "Headline-claim validation across all runtime figures", RunSummary},
		{"campaign", "Statistical crash-injection campaign: per-scheme survival and recovery cost", RunCampaign},
		{"stencil", "Extension: Jacobi heat stencil under mechanisms, with algorithm-directed recovery", RunStencil},
		{"kvlog", "Extension: persistent KV store under request traffic, with log-replay recovery", RunKVLog},
		{"cg-cache", "Ablation: CG recomputation vs LLC size", RunCGCacheAblation},
		{"clwb", "Ablation: CLFLUSH vs CLWB for the algorithm-directed flushes (paper §II prediction)", RunCLWBAblation},
		{"mc-flush", "Ablation: MC flush period vs overhead and accuracy (incl. the paper's 16% every-iteration claim)", RunMCFlushAblation},
		{"mm-k", "Ablation: MM rank k vs memory and recomputation (paper §III-C tradeoff)", RunMMKAblation},
	}
}

// ByName finds an experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
