package harness

import (
	"context"
	"fmt"

	"adcc/internal/campaign"
	"adcc/internal/report"
	"adcc/internal/resultstore"
)

// RunCampaign runs the statistical fault-injection campaign
// (internal/campaign) and renders the per-scheme survival table: for
// every workload x scheme x platform cell, how many of the swept crash
// points ended in clean recovery, detected recomputation, silent
// corruption, or an unrecoverable state. With Options.Collector set,
// every cell is also recorded as a bench result so benchdiff gates
// recovery-rate regressions; with Options.CampaignJSON set, the full
// deterministic report is written there inside the adcc-report/v1
// envelope; with Options.Events set, every injection streams an
// InjectionDone event in deterministic order.
func RunCampaign(ctx context.Context, o Options) (*Table, error) {
	cfg := campaign.Config{
		Scale:       o.scale(),
		Seed:        o.Seed,
		Parallel:    o.Parallel,
		PerCell:     o.PerCell,
		Workloads:   o.Workloads,
		Schemes:     o.Schemes,
		FaultModels: o.FaultModels,
		Registry:    o.Registry,
		Replay:      o.Replay,
		Events:      o.Events,
		Verbose:     o.Verbose,
		Out:         o.Out,
	}
	var fw *resultstore.FileWriter
	if o.CampaignStore != "" {
		var err error
		if fw, err = resultstore.CreateFile(o.CampaignStore, cfg.Scale, cfg.Seed); err != nil {
			return nil, err
		}
		cfg.Sink = fw
	}
	rep, err := campaign.Run(ctx, cfg)
	if fw != nil {
		if cerr := fw.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("harness: write campaign store: %w", cerr)
		}
	}
	if err != nil {
		return nil, err
	}
	for _, r := range rep.BenchResults() {
		o.Collector.Record(r)
	}
	if o.CampaignJSON != "" {
		if err := report.WrapCampaign(rep).WriteFile(o.CampaignJSON); err != nil {
			return nil, err
		}
	}
	return CampaignTable(rep), nil
}

// CampaignTable renders a campaign report as the survival table shown
// by both adccbench and crashsim -campaign.
func CampaignTable(rep *campaign.Report) *Table {
	t := &Table{
		Name:  "campaign",
		Title: "Crash-injection survival by scheme",
		Headers: []string{
			"Workload", "Scheme", "System", "Fault", "Inj", "Clean", "Recomp",
			"Corrupt", "Unrec", "Recovery", "Rework/grain",
		},
	}
	for _, c := range rep.Cells {
		rework := 0.0
		if crashed := c.Injections - c.NoCrash; crashed > 0 && c.GrainOps > 0 {
			rework = float64(c.ReworkOps) / float64(crashed) / float64(c.GrainOps)
		}
		fault := c.FaultModel
		if fault == "" {
			fault = "failstop"
		}
		t.AddRow(c.Workload, c.Scheme, c.System, fault, c.Injections,
			c.Clean, c.Recomputed, c.Corrupt, c.Unrecoverable,
			fmt.Sprintf("%.1f%%", 100*c.RecoveryRate),
			fmt.Sprintf("%.2f", rework))
	}
	t.AddNote("%d injections: seeded random op points + trigger occurrences, fresh machine per injection", rep.Injections)
	t.AddNote("Recovery = verified result after crash; Rework/grain = mean ops redone per crash, in main-loop iterations")
	return t
}
