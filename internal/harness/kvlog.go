package harness

import (
	"context"
	"fmt"

	"adcc/internal/bench"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/kvlog"
)

// kvlogLLCBytes is the LLC used by the kvlog experiment: the campaign
// size. The store (index + log) stays cache-resident, the served-
// traffic regime where unflushed state is exactly what a crash loses.
const kvlogLLCBytes = 1 << 20

// kvlogOpts is the KV-store configuration at the experiment scale.
func kvlogOpts(o Options) kvlog.Options {
	return kvlog.Options{Requests: o.scaleInt(2400, 240), KeySpace: 256, ScanLen: 8, CkptEvery: 16, Seed: 33}
}

// kvlogCases returns the family's scheme sweep: the paper's seven cases
// plus the rejected algorithm-directed variants (index-only and
// every-mutation index flushing).
func kvlogCases() []engine.Scheme {
	return append(sevenCases(),
		engine.MustLookup(engine.SchemeAlgoNaive),
		engine.MustLookup(engine.SchemeAlgoEvery))
}

// kvlogCase runs one scheme of the KV comparison and returns the total
// simulated runtime plus the per-request latencies. Algorithm-directed
// schemes run the log-replay store; the others run the baseline under
// the scheme's guard.
func kvlogCase(sc engine.Scheme, opts kvlog.Options) (int64, []int64) {
	m := newMachine(sc.System(), kvlogLLCBytes, 16)
	if sc.Kind() == engine.KindAlgo {
		s := kvlog.NewStore(m, nil, opts)
		s.Policy = sc.FlushPolicy()
		start := m.Clock.Now()
		s.Run(1)
		return m.Clock.Since(start), s.ReqNS[1:]
	}
	b := kvlog.NewBaseline(m, opts, sc)
	start := m.Clock.Now()
	b.Run()
	return m.Clock.Since(start), b.ReqNS[1:]
}

// RunKVLog drives the served-traffic workload family: a persistent KV
// store under every mechanism, presented the way a serving system is
// judged — simulated throughput and request tail latency — plus the
// runtime normalization the paper uses. One end-of-run crash test
// proves the algorithm-directed log replay rebuilds a verified index;
// the statistical validation (every crash point, every scheme, fault
// models) lives in the campaign experiment, whose grid includes the
// kvlog cells.
func RunKVLog(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:    "kvlog",
		Title:   "Persistent KV store under mechanisms (throughput and request tail latency)",
		Headers: []string{"Case", "System", "Time(ms)", "Normalized", "kOps/s", "p50(ns)", "p99(ns)"},
	}
	opts := kvlogOpts(o)
	o.logf("kvlog: requests=%d keyspace=%d", opts.Requests, opts.KeySpace)

	// Native execution on both memory systems: the normalization
	// denominators.
	kinds := []crash.SystemKind{crash.NVMOnly, crash.Hetero}
	baseLabel := func(i int) string { return "native@" + kinds[i].String() }
	baseTimes, err := runCases(ctx, o, "kvlog/base", baseLabel, len(kinds), func(i int) (int64, error) {
		m := newMachine(kinds[i], kvlogLLCBytes, 16)
		b := kvlog.NewBaseline(m, opts, nil)
		start := m.Clock.Now()
		b.Run()
		return m.Clock.Since(start), nil
	})
	if err != nil {
		return nil, err
	}
	base := map[crash.SystemKind]int64{}
	for i, k := range kinds {
		base[k] = baseTimes[i]
	}

	cases := kvlogCases()
	type kvRes struct {
		ns  int64
		lat []int64
	}
	results := make([]kvRes, len(cases))
	times, err := runCases(ctx, o, "kvlog", schemeLabel(cases), len(cases), func(i int) (int64, error) {
		sc := cases[i]
		o.logf("kvlog: case %s", sc.Name())
		ns, lat := kvlogCase(sc, opts)
		results[i] = kvRes{ns: ns, lat: lat}
		return ns, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range cases {
		ns := times[i]
		lat := results[i].lat
		sys := sc.System()
		o.Collector.Record(bench.Result{Name: "kvlog/" + sc.Name(), SimNS: ns})
		t.AddRow(sc.Name(), sys.String(),
			fmt.Sprintf("%.2f", float64(ns)/1e6), normalize(ns, base[sys]),
			fmt.Sprintf("%.1f", kvlog.Throughput(lat)/1e3),
			kvlog.Percentile(lat, 50), kvlog.Percentile(lat, 99))
	}

	// Crash test: inject at the end of the last request and recover by
	// replaying the persistent log prefix into a cleared index.
	m := newMachine(crash.NVMOnly, kvlogLLCBytes, 16)
	em := crash.NewEmulator(m)
	s := kvlog.NewStore(m, em, opts)
	em.CrashAtTrigger(kvlog.TriggerReqEnd, opts.Requests)
	if !em.Run(func() { s.Run(1) }) {
		return nil, fmt.Errorf("kvlog: crash test did not crash")
	}
	rec, from, err := s.Recover()
	if err != nil {
		return nil, fmt.Errorf("kvlog: algorithm-directed recovery failed: %w", err)
	}
	resumeStart := m.Clock.Now()
	s.Run(from)
	resume := m.Clock.Since(resumeStart)
	if err := s.Verify(nil); err != nil {
		return nil, fmt.Errorf("kvlog: algorithm-directed recovery failed verification: %w", err)
	}
	o.Collector.Record(bench.Result{
		Name:       "kvlog/recovery",
		SimNS:      rec.ReplayNS + resume,
		RecoveryNS: rec.ReplayNS,
	})
	t.AddNote("crash after request %d: %d log records replayed into a cleared index in %.3f ms, state verified",
		rec.ReqDone, rec.Replayed, float64(rec.ReplayNS)/1e6)
	t.AddNote("algo flushes only the appended log record + the high-water-mark line; the index is rebuilt by idempotent replay, never flushed")
	return t, nil
}
