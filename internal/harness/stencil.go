package harness

import (
	"context"
	"fmt"

	"adcc/internal/bench"
	"adcc/internal/core"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/stencil"
)

// stencilLLCBytes is the LLC used by the stencil experiment: 1 MB, the
// campaign size, so the plane history straddles the cache at scale 1.0
// (old planes evicted and persistent, recent planes resident and lost).
const stencilLLCBytes = 1 << 20

// stencilOpts is the stencil configuration at the experiment scale.
func stencilOpts(o Options) stencil.Options {
	return stencil.Options{N: o.scaleInt(160, 48), MaxIter: 12, Seed: 21}
}

// stencilCases returns the family's scheme sweep: the paper's seven
// cases plus the rejected algorithm-directed variants the stencil also
// supports (index-only and every-iteration).
func stencilCases() []engine.Scheme {
	return append(sevenCases(),
		engine.MustLookup(engine.SchemeAlgoNaive),
		engine.MustLookup(engine.SchemeAlgoEvery))
}

// stencilCase runs one scheme of the stencil comparison and returns the
// total simulated runtime. Algorithm-directed schemes run the extended
// (plane-history) relaxation; the others run the ping-pong baseline
// under the scheme's guard.
func stencilCase(sc engine.Scheme, opts stencil.Options) int64 {
	m := newMachine(sc.System(), stencilLLCBytes, 16)
	var start int64
	if sc.Kind() == engine.KindAlgo {
		h := stencil.NewHeat(m, nil, opts)
		h.Policy = sc.FlushPolicy()
		start = m.Clock.Now()
		h.Run(1)
	} else {
		bg := stencil.NewBaseline(m, opts, sc)
		start = m.Clock.Now()
		bg.Run()
	}
	return m.Clock.Since(start)
}

// RunStencil drives the extension workload family: Jacobi heat
// relaxation under every mechanism (runtime normalized to native on the
// same memory system, the Figure 4/8/13 presentation), plus one
// end-of-run crash test proving the algorithm-directed recovery
// re-relaxes to a verified result. The statistical validation of the
// family — every crash point, every scheme — lives in the campaign
// experiment, whose grid includes the stencil cells.
func RunStencil(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:    "stencil",
		Title:   "Jacobi heat stencil runtime under mechanisms (normalized to native)",
		Headers: []string{"Case", "System", "Time(ms)", "Normalized"},
	}
	opts := stencilOpts(o)
	o.logf("stencil: n=%d", opts.N)

	// Native execution on both memory systems: the normalization
	// denominators.
	kinds := []crash.SystemKind{crash.NVMOnly, crash.Hetero}
	baseLabel := func(i int) string { return "native@" + kinds[i].String() }
	baseTimes, err := runCases(ctx, o, "stencil/base", baseLabel, len(kinds), func(i int) (int64, error) {
		m := newMachine(kinds[i], stencilLLCBytes, 16)
		bg := stencil.NewBaseline(m, opts, nil)
		start := m.Clock.Now()
		bg.Run()
		return m.Clock.Since(start), nil
	})
	if err != nil {
		return nil, err
	}
	base := map[crash.SystemKind]int64{}
	for i, k := range kinds {
		base[k] = baseTimes[i]
	}

	cases := stencilCases()
	times, err := runCases(ctx, o, "stencil", schemeLabel(cases), len(cases), func(i int) (int64, error) {
		sc := cases[i]
		o.logf("stencil: case %s", sc.Name())
		if sc.Name() == caseNative {
			return base[crash.NVMOnly], nil
		}
		return stencilCase(sc, opts), nil
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range cases {
		ns := times[i]
		sys := sc.System()
		o.Collector.Record(bench.Result{Name: "stencil/" + sc.Name(), SimNS: ns})
		t.AddRow(sc.Name(), sys.String(),
			fmt.Sprintf("%.2f", float64(ns)/1e6), normalize(ns, base[sys]))
	}

	// Crash test: inject at the end of the last sweep and recover under
	// the full algorithm-directed protocol.
	m := newMachine(crash.NVMOnly, stencilLLCBytes, 16)
	em := crash.NewEmulator(m)
	h := stencil.NewHeat(m, em, opts)
	em.CrashAtTrigger(stencil.TriggerIterEnd, opts.MaxIter)
	if !em.Run(func() { h.Run(1) }) {
		return nil, fmt.Errorf("stencil: crash test did not crash")
	}
	avg := core.AvgIterNS(h.IterNS)
	rec := h.Recover()
	resumeStart := m.Clock.Now()
	h.Run(rec.RestartIter)
	resume := m.Clock.Since(resumeStart)
	if err := stencil.VerifyGrid(h.Result(), stencil.Want(opts)); err != nil {
		return nil, fmt.Errorf("stencil: algorithm-directed recovery failed verification: %w", err)
	}
	o.Collector.Record(bench.Result{
		Name:       "stencil/recovery",
		SimNS:      rec.DetectNS + resume,
		RecoveryNS: rec.DetectNS,
	})
	t.AddNote("crash at end of sweep %d: %d sweeps lost, detect %.3f iter, resume %.3f iter, result verified",
		rec.CrashIter, rec.IterationsLost, normalize(rec.DetectNS, avg), normalize(resume, avg))
	t.AddNote("algo flushes 2 lines/sweep (index + residual); recovery re-relaxes from the last plane pair satisfying u(j)=Jacobi(u(j-1))")
	return t, nil
}
