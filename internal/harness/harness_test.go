package harness

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// smallOpts runs every experiment at CI scale.
var smallOpts = Options{Scale: 0.05}

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	if len(exps) < 10 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Name == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"fig3", "fig4", "fig7", "fig8", "fig10", "fig12", "fig13"} {
		if !seen[want] {
			t.Fatalf("missing paper experiment %q", want)
		}
	}
	if _, ok := ByName("fig3"); !ok {
		t.Fatal("ByName(fig3) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted unknown name")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Name: "x", Title: "t", Headers: []string{"A", "Blong"}}
	tab.AddRow("v", 1.5)
	tab.AddRow(12345, "w")
	tab.AddNote("n=%d", 3)
	s := tab.String()
	for _, want := range []string{"== x: t ==", "A", "Blong", "1.500", "12345", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig3SmallScale(t *testing.T) {
	tab, err := RunFig3(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("fig3 rows = %d, want 5 classes", len(tab.Rows))
	}
	// Losses must not increase with class size (paper's headline
	// observation): first class >= last class.
	first := parseCell(t, tab.Rows[0][2])
	last := parseCell(t, tab.Rows[4][2])
	if last > first {
		t.Fatalf("iterations lost grew with size: %v -> %v", first, last)
	}
}

func TestFig4SmallScale(t *testing.T) {
	tab, err := RunFig4(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("fig4 rows = %d, want 7 cases", len(tab.Rows))
	}
	get := func(label string) float64 {
		for _, r := range tab.Rows {
			if r[0] == label {
				return parseCell(t, r[3])
			}
		}
		t.Fatalf("case %s missing", label)
		return 0
	}
	if get(caseNative) != 1.0 {
		t.Fatal("native must normalize to 1.0")
	}
	if get(casePMEM) < get(caseCkptNVM) {
		t.Fatal("PMEM should exceed NVM checkpoint")
	}
	if get(caseCkptHDD) < get(caseCkptNVM) {
		t.Fatal("HDD checkpoint should exceed NVM checkpoint")
	}
	if get(caseAlgoNVM) > 1.15 {
		t.Fatalf("algo overhead %.3f too large at small scale", get(caseAlgoNVM))
	}
}

func TestFig7SmallScale(t *testing.T) {
	tab, err := RunFig7(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("fig7 rows = %d, want 4 sizes x 2 tests", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		lost := parseCell(t, r[2])
		if lost < 0 || lost > 4 {
			t.Fatalf("units lost %v out of [0,4]: %v", lost, r)
		}
	}
}

func TestFig8SmallScale(t *testing.T) {
	tab, err := RunFig8(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 21 {
		t.Fatalf("fig8 rows = %d, want 3 ranks x 7 cases", len(tab.Rows))
	}
}

func TestFig10And12SmallScale(t *testing.T) {
	t10, err := RunFig10(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	t12, err := RunFig12(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	maxDelta := func(tab *Table) float64 {
		worst := 0.0
		for _, r := range tab.Rows {
			d := parseCell(t, r[3])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		return worst
	}
	if maxDelta(t12) > maxDelta(t10) {
		t.Fatalf("selective flushing (%.2fpp) should beat naive (%.2fpp)",
			maxDelta(t12), maxDelta(t10))
	}
}

func TestFig13SmallScale(t *testing.T) {
	tab, err := RunFig13(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("fig13 rows = %d", len(tab.Rows))
	}
	// At CI scale the grids fit in the LLC, so lookups are unrealistically
	// cheap relative to the fixed flush cost; the bound here is loose.
	// The paper-scale bound (<1% overhead) is asserted by the full run
	// recorded in EXPERIMENTS.md.
	for _, r := range tab.Rows {
		if r[0] == caseAlgoNVM {
			if v := parseCell(t, r[3]); v > 1.25 {
				t.Fatalf("algo-selective normalized %v, want ~1.0", v)
			}
		}
	}
}

func TestStencilSmallScale(t *testing.T) {
	tab, err := RunStencil(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("stencil rows = %d, want 7 cases + 2 rejected variants", len(tab.Rows))
	}
	get := func(label string) float64 {
		for _, r := range tab.Rows {
			if r[0] == label {
				return parseCell(t, r[3])
			}
		}
		t.Fatalf("case %s missing", label)
		return 0
	}
	if get(caseNative) != 1.0 {
		t.Fatal("native must normalize to 1.0")
	}
	if get(casePMEM) < get(caseCkptNVM) {
		t.Fatal("PMEM should exceed NVM checkpoint")
	}
	if v := get(caseAlgoNVM); v > 1.15 {
		t.Fatalf("algo-selective overhead %.3f too large", v)
	}
	// Every-iteration flushing must cost more than selective flushing.
	if get("algo-every-iter") <= get(caseAlgoNVM) {
		t.Fatal("every-iteration flushing should exceed selective")
	}
	verified := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "result verified") {
			verified = true
		}
	}
	if !verified {
		t.Fatal("stencil crash test note missing")
	}
}

func TestCLWBAblationSmallScale(t *testing.T) {
	tab, err := RunCLWBAblation(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("clwb rows = %d, want 3 workloads x 2 instructions", len(tab.Rows))
	}
	// Every CLWB row must be no slower than its CLFLUSH baseline.
	for i := 1; i < len(tab.Rows); i += 2 {
		if v := parseCell(t, tab.Rows[i][3]); v > 1.0001 {
			t.Fatalf("CLWB slower than CLFLUSH for %s: %v", tab.Rows[i][0], v)
		}
	}
}

func TestSummaryRunsAtSmallScale(t *testing.T) {
	// The claim checks only hold at paper scale; at CI scale we assert
	// the experiment runs, produces all four claims, and carries the
	// scale warning.
	tab, err := RunSummary(context.Background(), smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("summary rows = %d, want 4 claims", len(tab.Rows))
	}
	warned := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "scale 1.0") {
			warned = true
		}
	}
	if !warned {
		t.Fatal("summary at small scale must warn about scaling")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Name: "x", Title: "t", Headers: []string{"A", "B"}}
	tab.AddRow("a,b", 2)
	tab.AddNote("hello")
	var b strings.Builder
	tab.FprintCSV(&b)
	out := b.String()
	for _, want := range []string{"A,B", "\"a,b\",2", "# hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsSmallScale(t *testing.T) {
	for _, name := range []string{"cg-cache", "mc-flush", "mm-k"} {
		e, ok := ByName(name)
		if !ok {
			t.Fatalf("missing ablation %s", name)
		}
		tab, err := e.Run(context.Background(), smallOpts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", name)
		}
	}
}
