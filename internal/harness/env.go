package harness

import (
	"adcc/internal/cache"
	"adcc/internal/crash"
	"adcc/internal/engine"
)

// llcConfig builds the standard LLC configuration used by the
// experiment drivers. The paper's Xeon E5606 has an 8 MB LLC; the
// reproduction scales problem sizes down 4-12x and the LLC with them so
// that working-set-to-cache ratios are preserved (ARCHITECTURE.md,
// "Scaling").
func llcConfig(sizeBytes, assoc int) cache.Config {
	return cache.Config{
		SizeBytes:         sizeBytes,
		LineBytes:         64,
		Assoc:             assoc,
		HitNS:             4,
		FlushChargesClean: true,
		PrefetchStreams:   16,
	}
}

// newMachine builds a platform of the given kind with the given LLC and
// the paper's 32 MB DRAM cache on heterogeneous systems.
func newMachine(kind crash.SystemKind, llcBytes, assoc int) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: kind,
		Cache:  llcConfig(llcBytes, assoc),
	})
}

// newMachineTier is newMachine with an explicit DRAM-cache size, used by
// the MC experiments whose data set is scaled down ~10x from the paper's
// 246 MB grids (the DRAM cache scales with it).
func newMachineTier(kind crash.SystemKind, llcBytes, assoc, dramCacheBytes int) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System:         kind,
		Cache:          llcConfig(llcBytes, assoc),
		DRAMCacheBytes: dramCacheBytes,
	})
}

// Case labels for the seven-case comparison (paper §III-A), aliased to
// the engine's scheme-registry names so table rows and registry lookups
// cannot drift apart.
const (
	caseNative     = engine.SchemeNative
	caseCkptHDD    = engine.SchemeCkptHDD
	caseCkptNVM    = engine.SchemeCkptNVM
	caseCkptHetero = engine.SchemeCkptHetero
	casePMEM       = engine.SchemePMEM
	caseAlgoNVM    = engine.SchemeAlgoNVM
	caseAlgoHetero = engine.SchemeAlgoHetero
)

// sevenCases returns the schemes in the paper's presentation order.
func sevenCases() []engine.Scheme {
	return engine.SevenCases()
}

// schemeLabel builds an event-label function over a scheme slice.
func schemeLabel(cases []engine.Scheme) func(i int) string {
	return func(i int) string { return cases[i].Name() }
}

// normalize computes t/base as a ratio string-friendly float.
func normalize(t, base int64) float64 {
	if base == 0 {
		return 0
	}
	return float64(t) / float64(base)
}
