package harness

import (
	"adcc/internal/cache"
	"adcc/internal/crash"
)

// llcConfig builds the standard LLC configuration used by the
// experiment drivers. The paper's Xeon E5606 has an 8 MB LLC; the
// reproduction scales problem sizes down 4-12x and the LLC with them so
// that working-set-to-cache ratios are preserved (DESIGN.md §2).
func llcConfig(sizeBytes, assoc int) cache.Config {
	return cache.Config{
		SizeBytes:         sizeBytes,
		LineBytes:         64,
		Assoc:             assoc,
		HitNS:             4,
		FlushChargesClean: true,
		PrefetchStreams:   16,
	}
}

// newMachine builds a platform of the given kind with the given LLC and
// the paper's 32 MB DRAM cache on heterogeneous systems.
func newMachine(kind crash.SystemKind, llcBytes, assoc int) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: kind,
		Cache:  llcConfig(llcBytes, assoc),
	})
}

// newMachineTier is newMachine with an explicit DRAM-cache size, used by
// the MC experiments whose data set is scaled down ~10x from the paper's
// 246 MB grids (the DRAM cache scales with it).
func newMachineTier(kind crash.SystemKind, llcBytes, assoc, dramCacheBytes int) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System:         kind,
		Cache:          llcConfig(llcBytes, assoc),
		DRAMCacheBytes: dramCacheBytes,
	})
}

// Mechanism labels for the seven-case comparison (paper §III-A).
const (
	caseNative     = "native"
	caseCkptHDD    = "ckpt-HDD"
	caseCkptNVM    = "ckpt-NVM-only"
	caseCkptHetero = "ckpt-NVM/DRAM"
	casePMEM       = "PMEM-lib"
	caseAlgoNVM    = "algo-NVM-only"
	caseAlgoHetero = "algo-NVM/DRAM"
)

// sevenCases returns the labels in the paper's presentation order.
func sevenCases() []string {
	return []string{
		caseNative, caseCkptHDD, caseCkptNVM, caseCkptHetero,
		casePMEM, caseAlgoNVM, caseAlgoHetero,
	}
}

// systemOf maps a case label to the platform it runs on.
func systemOf(c string) crash.SystemKind {
	switch c {
	case caseCkptHetero, caseAlgoHetero:
		return crash.Hetero
	default:
		return crash.NVMOnly
	}
}

// normalize computes t/base as a ratio string-friendly float.
func normalize(t, base int64) float64 {
	if base == 0 {
		return 0
	}
	return float64(t) / float64(base)
}
