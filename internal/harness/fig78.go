package harness

import (
	"context"
	"fmt"

	"adcc/internal/bench"
	"adcc/internal/core"
	"adcc/internal/crash"
	"adcc/internal/engine"
)

// MM experiment scaling: the paper uses n = 2000..8000 with an 8 MB LLC
// (blocks of 32..512 MB). The reproduction uses n = 200..800 with a
// 512 KB LLC (blocks 0.32..5.1 MB, 0.6x..10x the LLC), preserving the
// block-to-cache ratio progression that drives Figure 7: at the
// smallest size about two completed panels are still partly cached at
// the crash, at larger sizes only the in-flight panel is lost.
const mmLLCBytes = 512 << 10

// RunFig7 reproduces Figure 7: recomputation cost of the extended ABFT
// multiplication for two crash tests — at the end of the 4th iteration
// of the first loop (submatrix multiplication) and of the second loop
// (submatrix addition) — across four matrix sizes.
func RunFig7(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:  "fig7",
		Title: "ABFT-MM recomputation cost (normalized to one loop iteration)",
		Headers: []string{
			"n", "CrashIn", "UnitsLost", "Detect/unit", "Resume/unit", "Total/unit",
		},
	}
	k := o.scaleInt(40, 8)
	type mmCrashCase struct {
		n, loop int
	}
	var cases []mmCrashCase
	for _, nBase := range []int{200, 400, 600, 800} {
		n := o.scaleInt(nBase, 5*k)
		n = (n / k) * k // keep divisibility
		for _, loop := range []int{1, 2} {
			cases = append(cases, mmCrashCase{n: n, loop: loop})
		}
	}
	label := func(i int) string { return fmt.Sprintf("n=%d/loop%d", cases[i].n, cases[i].loop) }
	rows, err := runCases(ctx, o, "fig7", label, len(cases), func(i int) ([]any, error) {
		c := cases[i]
		o.logf("fig7: n=%d crash in loop %d", c.n, c.loop)
		return fig7One(c.n, k, c.loop)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.AddNote("rank k=%d (paper: 400, same n/k ratio); crash at end of 4th iteration of each loop", k)
	t.AddNote("paper: smallest size loses ~2 submatrix multiplications, larger sizes lose 1; additions always lose 1")
	return t, nil
}

func fig7One(n, k, loop int) ([]any, error) {
	m := newMachine(crash.Hetero, mmLLCBytes, 16)
	em := crash.NewEmulator(m)
	mm := core.NewMM(m, em, core.MMOptions{N: n, K: k, Seed: int64(n + loop)})
	trigger := core.TriggerMMLoop1IterEnd
	if loop == 2 {
		trigger = core.TriggerMMLoop2IterEnd
	}
	em.CrashAtTrigger(trigger, 4)
	if !em.Run(mm.Run) {
		return nil, fmt.Errorf("fig7: n=%d loop=%d did not crash", n, loop)
	}

	var rec core.MMRecovery
	var avg int64
	var unitsLost int
	var resume int64
	if loop == 1 {
		rec = mm.RecoverLoop1()
		avg = avgPositive(mm.PanelNS[:4])
		// Units lost = completed panels (the first 4) that must be
		// recomputed.
		for s := 0; s < 4; s++ {
			if rec.Status[s] == core.BlockZero || rec.Status[s] == core.BlockRecompute {
				unitsLost++
			}
		}
		resumeStart := m.Clock.Now()
		// Resume only the lost completed panels for the recomputation
		// metric; the remaining panels are fresh work, not recovery.
		lost := core.MMRecovery{Status: make([]core.BlockStatus, len(rec.Status))}
		for s := 0; s < 4; s++ {
			lost.Status[s] = rec.Status[s]
		}
		mm.ResumeLoop1(lost)
		resume = m.Clock.Since(resumeStart)
	} else {
		// Loop 1 completed before the loop-2 crash; repair it first
		// (not charged to the loop-2 recomputation metric).
		rec1 := mm.RecoverLoop1()
		mm.ResumeLoop1(rec1)
		rec = mm.RecoverLoop2()
		avg = avgPositive(mm.BlockNS[:4])
		for b := 0; b < 4; b++ {
			if rec.Status[b] == core.BlockZero || rec.Status[b] == core.BlockRecompute {
				unitsLost++
			}
		}
		resumeStart := m.Clock.Now()
		lost := core.MMRecovery{Status: make([]core.BlockStatus, len(rec.Status))}
		for b := 0; b < 4; b++ {
			lost.Status[b] = rec.Status[b]
		}
		mm.ResumeLoop2(lost)
		resume = m.Clock.Since(resumeStart)
	}
	loopName := "loop1 (submat mult)"
	if loop == 2 {
		loopName = "loop2 (submat add)"
	}
	return []any{n, loopName, unitsLost,
		normalize(rec.DetectNS, avg), normalize(resume, avg),
		normalize(rec.DetectNS+resume, avg)}, nil
}

// avgPositive is core.AvgPositiveNS with a floor of 1, so it can serve
// as a normalization denominator even when no unit completed.
func avgPositive(v []int64) int64 {
	if a := core.AvgPositiveNS(v); a > 0 {
		return a
	}
	return 1
}

// mmCase runs one scheme of the seven-case comparison for the
// multiplication and returns total simulated runtime.
func mmCase(sc engine.Scheme, opts core.MMOptions) int64 {
	m := newMachine(sc.System(), mmLLCBytes, 16)
	var start int64
	if sc.Kind() == engine.KindAlgo {
		mm := core.NewMM(m, nil, opts)
		start = m.Clock.Now()
		mm.Run()
	} else {
		bm := core.NewBaselineMM(m, opts, sc)
		start = m.Clock.Now()
		bm.Run()
	}
	return m.Clock.Now() - start
}

// RunFig8 reproduces Figure 8 (a,b,c): runtime of ABFT matrix
// multiplication under the seven mechanisms for three rank sizes,
// normalized to native execution on the same system. Checkpoint and
// PMEM act once per submatrix multiplication.
func RunFig8(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:  "fig8",
		Title: "ABFT-MM runtime, seven mechanisms x rank (normalized to native)",
		Headers: []string{
			"Rank", "Case", "System", "Time(ms)", "Normalized",
		},
	}
	n := o.scaleInt(640, 160)
	// Ranks scaled from the paper's 200/400/1000 by the same factor
	// as n (8000 -> 640).
	ranks := []int{n / 40, n / 20, n / 8}
	o.logf("fig8: n=%d ranks=%v", n, ranks)

	// Native baselines per rank and system, the normalization
	// denominators.
	kinds := []crash.SystemKind{crash.NVMOnly, crash.Hetero}
	baseLabel := func(i int) string {
		return fmt.Sprintf("native/k=%d@%s", ranks[i/len(kinds)], kinds[i%len(kinds)])
	}
	baseTimes, err := runCases(ctx, o, "fig8/base", baseLabel, len(ranks)*len(kinds), func(i int) (int64, error) {
		k := ranks[i/len(kinds)]
		kind := kinds[i%len(kinds)]
		opts := core.MMOptions{N: n, K: k, Seed: int64(k)}
		m := newMachine(kind, mmLLCBytes, 16)
		bm := core.NewBaselineMM(m, opts, nil)
		start := m.Clock.Now()
		bm.Run()
		return m.Clock.Since(start), nil
	})
	if err != nil {
		return nil, err
	}
	base := make([]map[crash.SystemKind]int64, len(ranks))
	for ri := range ranks {
		base[ri] = map[crash.SystemKind]int64{}
		for ki, kind := range kinds {
			base[ri][kind] = baseTimes[ri*len(kinds)+ki]
		}
	}

	cases := sevenCases()
	caseLabel := func(i int) string {
		return fmt.Sprintf("k=%d/%s", ranks[i/len(cases)], cases[i%len(cases)].Name())
	}
	times, err := runCases(ctx, o, "fig8", caseLabel, len(ranks)*len(cases), func(i int) (int64, error) {
		ri, ci := i/len(cases), i%len(cases)
		k, sc := ranks[ri], cases[ci]
		o.logf("fig8: k=%d case %s", k, sc.Name())
		if sc.Name() == caseNative {
			return base[ri][crash.NVMOnly], nil
		}
		return mmCase(sc, core.MMOptions{N: n, K: k, Seed: int64(k)}), nil
	})
	if err != nil {
		return nil, err
	}
	for ri, k := range ranks {
		for ci, sc := range cases {
			ns := times[ri*len(cases)+ci]
			sys := sc.System()
			o.Collector.Record(bench.Result{
				Name:  fmt.Sprintf("fig8/k=%d/%s", k, sc.Name()),
				SimNS: ns,
			})
			t.AddRow(k, sc.Name(), sys.String(),
				fmt.Sprintf("%.2f", float64(ns)/1e6),
				normalize(ns, base[ri][sys]))
		}
	}
	t.AddNote("paper: algo <= 1.082 at rank 200, 1.013 at rank 1000; ckpt-NVM/DRAM >= 1.218 at rank 200")
	t.AddNote("ranks scaled with n from the paper's 200/400/1000 at n=8000")
	return t, nil
}

// RunMMKAblation quantifies the memory-vs-recomputation tradeoff of the
// rank choice discussed in §III-C: smaller k means more temporal
// matrices (more NVM consumption) but a smaller recomputation unit.
func RunMMKAblation(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Name:  "mm-k",
		Title: "Rank k tradeoff: temporal-matrix memory vs recomputation unit",
		Headers: []string{
			"k", "Panels", "TempMem(MB)", "PanelTime(ms)", "TotalFlushLines",
		},
	}
	n := o.scaleInt(400, 80)
	var ks []int
	for _, div := range []int{40, 20, 10, 5, 2} {
		if k := n / div; k >= 1 {
			ks = append(ks, k)
		}
	}
	label := func(i int) string { return fmt.Sprintf("k=%d", ks[i]) }
	rows, err := runCases(ctx, o, "mm-k", label, len(ks), func(i int) ([]any, error) {
		k := ks[i]
		opts := core.MMOptions{N: (n / k) * k, K: k, Seed: 9}
		m := newMachine(crash.NVMOnly, mmLLCBytes, 16)
		mm := core.NewMM(m, nil, opts)
		mm.RunLoop1(0)
		tempMB := float64(opts.N/k) * float64((opts.N+1)*(opts.N+1)*8) / (1 << 20)
		avg := avgPositive(mm.PanelNS)
		// Checksum flushes per panel (one row + one column of lines),
		// paid once per panel — so total flush work grows as 1/k.
		perPanel := (opts.N+1+7)/8 + opts.N + 1
		return []any{k, opts.N / k, fmt.Sprintf("%.1f", tempMB),
			fmt.Sprintf("%.2f", float64(avg)/1e6), perPanel * (opts.N / k)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.AddNote("smaller k: more temporal matrices (memory) and more frequent flushes; larger k: bigger recompute unit")
	return t, nil
}
