package cache

import (
	"math/rand"
	"testing"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

// refLRU is an intentionally naive reference implementation of a
// set-associative LRU write-back cache, used to cross-check the
// production simulator on random access traces.
type refLRU struct {
	lineBytes int
	assoc     int
	nsets     uint64
	sets      [][]refLine // most-recently-used first
}

type refLine struct {
	tag   uint64
	dirty bool
}

func newRefLRU(cfg Config) *refLRU {
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	return &refLRU{
		lineBytes: cfg.LineBytes,
		assoc:     cfg.Assoc,
		nsets:     uint64(nsets),
		sets:      make([][]refLine, nsets),
	}
}

// touch returns (hit, evictedDirtyTag, evicted) for one line access.
func (r *refLRU) touch(ln uint64, store bool) (bool, uint64, bool) {
	s := ln % r.nsets
	set := r.sets[s]
	for i, l := range set {
		if l.tag == ln {
			// Move to front, merge dirty bit.
			l.dirty = l.dirty || store
			copy(set[1:i+1], set[:i])
			set[0] = l
			return true, 0, false
		}
	}
	// Miss: insert at front, evict LRU if full.
	var evTag uint64
	evicted := false
	if len(set) == r.assoc {
		last := set[len(set)-1]
		if last.dirty {
			evTag = last.tag
			evicted = true
		}
		set = set[:len(set)-1]
	}
	set = append([]refLine{{tag: ln, dirty: store}}, set...)
	r.sets[s] = set
	return false, evTag, evicted
}

func (r *refLRU) flush(ln uint64) (wasDirty bool) {
	s := ln % r.nsets
	set := r.sets[s]
	for i, l := range set {
		if l.tag == ln {
			r.sets[s] = append(set[:i:i], set[i+1:]...)
			return l.dirty
		}
	}
	return false
}

func (r *refLRU) state(ln uint64) (resident, dirty bool) {
	set := r.sets[ln%r.nsets]
	for _, l := range set {
		if l.tag == ln {
			return true, l.dirty
		}
	}
	return false, false
}

// TestCacheAgainstReferenceModel replays long random traces on both the
// production simulator and the naive reference, comparing residency and
// dirtiness of every touched line after every 1000 operations, and the
// final hit/miss/writeback counts.
func TestCacheAgainstReferenceModel(t *testing.T) {
	cfgs := []Config{
		{SizeBytes: 4 * 64 * 2, LineBytes: 64, Assoc: 2, HitNS: 1},
		{SizeBytes: 16 * 64 * 4, LineBytes: 64, Assoc: 4, HitNS: 1},
		{SizeBytes: 8 * 64 * 1, LineBytes: 64, Assoc: 1, HitNS: 1},
	}
	for ci, cfg := range cfgs {
		clock := &sim.Clock{}
		c := New(cfg, clock, flatModel{read: 10, write: 5}, nil)
		ref := newRefLRU(cfg)
		rng := rand.New(rand.NewSource(int64(ci + 1)))

		const space = 256 // distinct lines
		var refWritebacks int64
		for op := 0; op < 30000; op++ {
			ln := uint64(rng.Intn(space))
			addr := mem.Addr(ln * 64)
			switch rng.Intn(10) {
			case 0: // flush
				if ref.flush(ln) {
					refWritebacks++
				}
				c.Flush(addr, 8)
			case 1, 2, 3: // store
				_, _, ev := ref.touch(ln, true)
				if ev {
					refWritebacks++
				}
				c.Store(addr, 8)
			default: // load
				_, _, ev := ref.touch(ln, false)
				if ev {
					refWritebacks++
				}
				c.Load(addr, 8)
			}
			if op%1000 == 999 {
				for l := uint64(0); l < space; l++ {
					wantRes, wantDirty := ref.state(l)
					gotRes, gotDirty := c.Contains(mem.Addr(l * 64))
					if wantRes != gotRes || wantDirty != gotDirty {
						t.Fatalf("cfg %d op %d line %d: sim (res=%v dirty=%v) vs ref (res=%v dirty=%v)",
							ci, op, l, gotRes, gotDirty, wantRes, wantDirty)
					}
				}
			}
		}
		st := c.Stats()
		if st.Writebacks+st.FlushDirty != refWritebacks {
			t.Fatalf("cfg %d: writebacks %d (evict) + %d (flush) != ref %d",
				ci, st.Writebacks, st.FlushDirty, refWritebacks)
		}
	}
}

// TestCacheCapacityInvariant checks that the number of resident lines
// never exceeds capacity under random traffic.
func TestCacheCapacityInvariant(t *testing.T) {
	cfg := Config{SizeBytes: 32 * 64, LineBytes: 64, Assoc: 4, HitNS: 1}
	clock := &sim.Clock{}
	c := New(cfg, clock, flatModel{read: 1, write: 1}, nil)
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 20000; op++ {
		c.Store(mem.Addr(rng.Intn(4096)*64), 8)
		if op%500 == 0 {
			resident := 0
			for l := 0; l < 4096; l++ {
				if res, _ := c.Contains(mem.Addr(l * 64)); res {
					resident++
				}
			}
			if resident > 32 {
				t.Fatalf("op %d: %d resident lines exceed capacity 32", op, resident)
			}
		}
	}
	if c.DirtyLines() > 32 {
		t.Fatal("dirty lines exceed capacity")
	}
}
