package cache

import (
	"testing"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

func TestFlushOptWritesBackAndKeepsResident(t *testing.T) {
	clock := &sim.Clock{}
	sink := &recSink{}
	c := tinyCache(t, clock, sink)
	c.Store(64, 8)
	c.FlushOpt(64, 8)
	if len(sink.wbs) != 1 || sink.wbs[0] != 64 {
		t.Fatalf("writebacks = %v, want [64]", sink.wbs)
	}
	res, dirty := c.Contains(64)
	if !res {
		t.Fatal("CLWB must keep the line resident")
	}
	if dirty {
		t.Fatal("CLWB must leave the line clean")
	}
	// The next access is a hit.
	before := c.Stats().LineHits
	c.Load(64, 8)
	if c.Stats().LineHits != before+1 {
		t.Fatal("post-CLWB access should hit")
	}
}

func TestFlushOptCleanLineCheap(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	c.Load(64, 8) // clean resident line
	before := clock.Now()
	c.FlushOpt(64, 8)
	if cost := clock.Now() - before; cost != c.Config().HitNS {
		t.Fatalf("CLWB of clean line cost %d, want hit cost %d", cost, c.Config().HitNS)
	}
	if res, _ := c.Contains(64); !res {
		t.Fatal("clean line must remain resident")
	}
}

func TestFlushOptAbsentLineCheap(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	before := clock.Now()
	c.FlushOpt(4096, 8)
	if cost := clock.Now() - before; cost != c.Config().HitNS {
		t.Fatalf("CLWB of absent line cost %d, want %d", cost, c.Config().HitNS)
	}
}

func TestFlushOptVsFlushCost(t *testing.T) {
	// CLWB of a dirty-then-reused line must be cheaper overall than
	// CLFLUSH (which forces a refill).
	run := func(opt bool) int64 {
		clock := &sim.Clock{}
		c := tinyCache(t, clock, nil)
		for i := 0; i < 100; i++ {
			c.Store(64, 8)
			if opt {
				c.FlushOpt(64, 8)
			} else {
				c.Flush(64, 8)
			}
		}
		return clock.Now()
	}
	clflush := run(false)
	clwb := run(true)
	if clwb >= clflush {
		t.Fatalf("CLWB loop (%d ns) should beat CLFLUSH loop (%d ns)", clwb, clflush)
	}
}

func TestFlushOptZeroSize(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	c.FlushOpt(64, 0)
	if clock.Now() != 0 {
		t.Fatal("zero-size CLWB advanced the clock")
	}
}

func TestFlushOptConsistencyWithHeap(t *testing.T) {
	// After CLWB, image equals live for the flushed range.
	clock := &sim.Clock{}
	h := mem.NewHeap(nil)
	cfg := Config{SizeBytes: 8 * 64 * 2, LineBytes: 64, Assoc: 2, HitNS: 1}
	c := New(cfg, clock, flatModel{read: 10, write: 5}, h)
	h.SetAccessor(c)
	r := h.AllocF64("v", 8)
	r.Set(3, 42)
	c.FlushOpt(r.Addr(3), 8)
	if r.Image()[3] != 42 {
		t.Fatal("CLWB did not persist the value")
	}
}
