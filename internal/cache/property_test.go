package cache

import (
	"math/rand"
	"testing"

	"adcc/internal/mem"
	"adcc/internal/nvm"
	"adcc/internal/sim"
)

// refCache is a naive reference implementation of the simulator's
// visible semantics: plain associative set scans, no line directory, no
// MRU memo, no address-arithmetic fast paths. The property test drives
// it in lockstep with the real Cache on randomized access streams to
// guard the O(1) wayOf/MRU hit paths: any divergence in hit, miss,
// writeback, or flush accounting — or in which lines end up resident
// and dirty — is a bug in one of the fast paths.
type refCache struct {
	lineBytes int
	nsets     int
	assoc     int
	ways      []refWay // nsets * assoc, set-major
	tick      uint64

	loads, stores                   int64
	hits, misses                    int64
	writebacks, flushes, flushDirty int64
}

type refWay struct {
	tag   uint64
	valid bool
	dirty bool
	use   uint64
}

func newRefCache(cfg Config) *refCache {
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	return &refCache{
		lineBytes: cfg.LineBytes,
		nsets:     nsets,
		assoc:     cfg.Assoc,
		ways:      make([]refWay, nsets*cfg.Assoc),
	}
}

func (r *refCache) set(ln uint64) []refWay {
	s := ln % uint64(r.nsets)
	return r.ways[s*uint64(r.assoc) : (s+1)*uint64(r.assoc)]
}

func (r *refCache) find(ln uint64) *refWay {
	set := r.set(ln)
	for i := range set {
		if set[i].valid && set[i].tag == ln {
			return &set[i]
		}
	}
	return nil
}

func (r *refCache) access(a mem.Addr, size int, store bool) {
	if store {
		r.stores++
	} else {
		r.loads++
	}
	if size <= 0 {
		return
	}
	first := uint64(a) / uint64(r.lineBytes)
	last := (uint64(a) + uint64(size) - 1) / uint64(r.lineBytes)
	for ln := first; ln <= last; ln++ {
		r.tick++
		if w := r.find(ln); w != nil {
			w.use = r.tick
			if store {
				w.dirty = true
			}
			r.hits++
			continue
		}
		r.misses++
		set := r.set(ln)
		victim := &set[0]
		for i := range set {
			w := &set[i]
			if !w.valid {
				victim = w
				break
			}
			if w.use < victim.use {
				victim = w
			}
		}
		if victim.valid && victim.dirty {
			r.writebacks++
		}
		victim.tag = ln
		victim.valid = true
		victim.dirty = store
		victim.use = r.tick
	}
}

func (r *refCache) flush(a mem.Addr, size int, opt bool) {
	if size <= 0 {
		return
	}
	first := uint64(a) / uint64(r.lineBytes)
	last := (uint64(a) + uint64(size) - 1) / uint64(r.lineBytes)
	for ln := first; ln <= last; ln++ {
		r.flushes++
		w := r.find(ln)
		if w == nil {
			continue
		}
		if w.dirty {
			r.flushDirty++
		}
		w.dirty = false
		if !opt {
			w.valid = false // CLFLUSH invalidates; CLWB keeps resident
		}
	}
}

func (r *refCache) writebackAll() {
	for i := range r.ways {
		w := &r.ways[i]
		if w.valid && w.dirty {
			r.writebacks++
			w.dirty = false
		}
	}
}

func (r *refCache) discardAll() {
	for i := range r.ways {
		r.ways[i] = refWay{}
	}
}

// TestCacheMatchesReferenceModel is the property test: randomized small
// access streams (loads, stores, CLFLUSH, CLWB, drains, crashes) must
// leave the optimized simulator and the naive reference in identical
// states — event counters and per-line residency/dirtiness alike.
func TestCacheMatchesReferenceModel(t *testing.T) {
	configs := []Config{
		{SizeBytes: 2 << 10, LineBytes: 64, Assoc: 4, HitNS: 4, FlushChargesClean: true, PrefetchStreams: 16},
		{SizeBytes: 4 << 10, LineBytes: 64, Assoc: 16, HitNS: 4, FlushChargesClean: false, PrefetchStreams: 0},
		{SizeBytes: 3 << 10, LineBytes: 64, Assoc: 12, HitNS: 2, FlushChargesClean: true, PrefetchStreams: 4},
	}
	const (
		addrLines = 96 // address space: more lines than the cache holds
		ops       = 4000
	)
	for ci, cfg := range configs {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(1000*int64(ci) + seed))
			clock := &sim.Clock{}
			c := New(cfg, clock, nvm.NewUniform(nvm.DRAMLikeNVM()), nil)
			ref := newRefCache(cfg)

			check := func(step int) {
				t.Helper()
				st := c.Stats()
				if st.Loads != ref.loads || st.Stores != ref.stores ||
					st.LineHits != ref.hits || st.LineMisses != ref.misses ||
					st.Writebacks != ref.writebacks || st.Flushes != ref.flushes ||
					st.FlushDirty != ref.flushDirty {
					t.Fatalf("cfg %d seed %d step %d: stats diverge\ncache: %+v\nref:   loads=%d stores=%d hits=%d misses=%d wb=%d fl=%d fld=%d",
						ci, seed, step, st, ref.loads, ref.stores, ref.hits, ref.misses,
						ref.writebacks, ref.flushes, ref.flushDirty)
				}
				for ln := 0; ln < addrLines; ln++ {
					a := mem.Addr(ln * cfg.LineBytes)
					res, dirty := c.Contains(a)
					w := ref.find(uint64(ln))
					wantRes := w != nil
					wantDirty := wantRes && w.dirty
					if res != wantRes || dirty != wantDirty {
						t.Fatalf("cfg %d seed %d step %d: line %d state (%v,%v), ref (%v,%v)",
							ci, seed, step, ln, res, dirty, wantRes, wantDirty)
					}
				}
				if got, want := c.DirtyLines(), refDirty(ref); got != want {
					t.Fatalf("cfg %d seed %d step %d: DirtyLines %d, ref %d", ci, seed, step, got, want)
				}
			}

			for i := 0; i < ops; i++ {
				a := mem.Addr(rng.Intn(addrLines * cfg.LineBytes))
				size := 1 + rng.Intn(3*cfg.LineBytes) // up to 4 lines per access
				switch p := rng.Intn(100); {
				case p < 40:
					c.Load(a, size)
					ref.access(a, size, false)
				case p < 80:
					c.Store(a, size)
					ref.access(a, size, true)
				case p < 89:
					c.Flush(a, size)
					ref.flush(a, size, false)
				case p < 96:
					c.FlushOpt(a, size)
					ref.flush(a, size, true)
				case p < 98:
					c.WritebackAll()
					ref.writebackAll()
				default:
					c.DiscardAll()
					ref.discardAll()
				}
				if i%251 == 0 {
					check(i)
				}
			}
			check(ops)
		}
	}
}

func refDirty(r *refCache) int {
	n := 0
	for i := range r.ways {
		if r.ways[i].valid && r.ways[i].dirty {
			n++
		}
	}
	return n
}
