package cache

import (
	"math/rand"
	"testing"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

// flatModel charges fixed read/write costs regardless of address.
type flatModel struct {
	read, write int64
}

func (m flatModel) ReadCost(mem.Addr, int) int64     { return m.read }
func (m flatModel) WriteCost(mem.Addr, int) int64    { return m.write }
func (m flatModel) ReadCostSeq(mem.Addr, int) int64  { return m.read / 10 }
func (m flatModel) WriteCostSeq(mem.Addr, int) int64 { return m.write / 10 }

// recSink records writebacks.
type recSink struct {
	wbs []mem.Addr
}

func (s *recSink) Writeback(a mem.Addr, size int) { s.wbs = append(s.wbs, a) }

func tinyCache(t *testing.T, clock *sim.Clock, sink WritebackSink) *Cache {
	t.Helper()
	cfg := Config{
		SizeBytes:         4 * 64 * 2, // 4 sets? no: size/(line*assoc) sets
		LineBytes:         64,
		Assoc:             2,
		HitNS:             1,
		FlushChargesClean: true,
	}
	// 512 bytes / (64*2) = 4 sets, 2 ways.
	return New(cfg, clock, flatModel{read: 100, write: 50}, sink)
}

func TestHitMissAccounting(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	c.Load(64, 8) // miss -> fill
	if got := clock.Now(); got != 100 {
		t.Fatalf("miss cost = %d, want 100", got)
	}
	c.Load(64, 8) // hit
	if got := clock.Now(); got != 101 {
		t.Fatalf("hit cost total = %d, want 101", got)
	}
	st := c.Stats()
	if st.LineHits != 1 || st.LineMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMultiLineAccess(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	// 16 float64s starting at line boundary spans 2 lines.
	c.Load(64, 128)
	st := c.Stats()
	if st.LineMisses != 2 {
		t.Fatalf("misses = %d, want 2", st.LineMisses)
	}
	// Unaligned access spanning a boundary also touches 2 lines.
	c.Load(60, 8)
	st = c.Stats()
	if st.LineMisses+st.LineHits != 4 {
		t.Fatalf("line touches = %d, want 4", st.LineMisses+st.LineHits)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	clock := &sim.Clock{}
	sink := &recSink{}
	c := tinyCache(t, clock, sink) // 4 sets x 2 ways
	// Three lines mapping to the same set (stride = nsets*line = 256).
	c.Store(64, 8)
	c.Store(64+256, 8)
	c.Store(64+512, 8) // evicts LRU (addr 64), which is dirty
	if len(sink.wbs) != 1 || sink.wbs[0] != 64 {
		t.Fatalf("writebacks = %v, want [64]", sink.wbs)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Fatalf("Writebacks stat = %d, want 1", got)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	clock := &sim.Clock{}
	sink := &recSink{}
	c := tinyCache(t, clock, sink)
	c.Load(64, 8)
	c.Load(64+256, 8)
	c.Load(64+512, 8) // evicts clean line: no writeback
	if len(sink.wbs) != 0 {
		t.Fatalf("writebacks = %v, want none", sink.wbs)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	c.Load(64, 8)     // A
	c.Load(64+256, 8) // B; set full
	c.Load(64, 8)     // touch A: B is now LRU
	c.Load(64+512, 8) // C evicts B
	if res, _ := c.Contains(64); !res {
		t.Fatal("A should still be resident")
	}
	if res, _ := c.Contains(64 + 256); res {
		t.Fatal("B should have been evicted")
	}
	if res, _ := c.Contains(64 + 512); !res {
		t.Fatal("C should be resident")
	}
}

func TestFlushDirtyLine(t *testing.T) {
	clock := &sim.Clock{}
	sink := &recSink{}
	c := tinyCache(t, clock, sink)
	c.Store(64, 8)
	before := clock.Now()
	c.Flush(64, 8)
	if len(sink.wbs) != 1 {
		t.Fatalf("flush did not write back dirty line")
	}
	if clock.Now()-before != 50 {
		t.Fatalf("flush cost = %d, want 50", clock.Now()-before)
	}
	if res, _ := c.Contains(64); res {
		t.Fatal("flushed line still resident")
	}
	st := c.Stats()
	if st.Flushes != 1 || st.FlushDirty != 1 {
		t.Fatalf("flush stats = %+v", st)
	}
}

func TestFlushAbsentLineCharged(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	c.Flush(1024, 8) // absent
	if clock.Now() != 50 {
		t.Fatalf("absent flush cost = %d, want 50 (paper: same order as dirty)", clock.Now())
	}
	// With charging disabled the flush is free.
	cfg := c.Config()
	cfg.FlushChargesClean = false
	c2 := New(cfg, clock, flatModel{read: 100, write: 50}, nil)
	before := clock.Now()
	c2.Flush(1024, 8)
	if clock.Now() != before {
		t.Fatal("absent flush charged despite FlushChargesClean=false")
	}
}

func TestFlushRangeMultipleLines(t *testing.T) {
	clock := &sim.Clock{}
	sink := &recSink{}
	c := tinyCache(t, clock, sink)
	c.Store(64, 8)
	c.Store(128, 8)
	c.Flush(64, 128) // two lines
	if len(sink.wbs) != 2 {
		t.Fatalf("flushed writebacks = %d, want 2", len(sink.wbs))
	}
}

func TestDiscardAllLosesDirtyData(t *testing.T) {
	clock := &sim.Clock{}
	sink := &recSink{}
	c := tinyCache(t, clock, sink)
	c.Store(64, 8)
	c.DiscardAll()
	if len(sink.wbs) != 0 {
		t.Fatal("DiscardAll performed a writeback")
	}
	if c.DirtyLines() != 0 {
		t.Fatal("DiscardAll left dirty lines")
	}
	if res, _ := c.Contains(64); res {
		t.Fatal("DiscardAll left a resident line")
	}
}

func TestWritebackAll(t *testing.T) {
	clock := &sim.Clock{}
	sink := &recSink{}
	c := tinyCache(t, clock, sink)
	c.Store(64, 8)
	c.Store(320, 8)
	c.WritebackAll()
	if len(sink.wbs) != 2 {
		t.Fatalf("WritebackAll wrote %d lines, want 2", len(sink.wbs))
	}
	if c.DirtyLines() != 0 {
		t.Fatal("dirty lines remain after WritebackAll")
	}
	// Lines stay resident and clean.
	if res, dirty := c.Contains(64); !res || dirty {
		t.Fatalf("line state after WritebackAll: resident=%v dirty=%v", res, dirty)
	}
}

func TestStoreMakesDirty(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	c.Load(64, 8)
	if _, dirty := c.Contains(64); dirty {
		t.Fatal("load marked line dirty")
	}
	c.Store(64, 8)
	if _, dirty := c.Contains(64); !dirty {
		t.Fatal("store did not mark line dirty")
	}
}

func TestZeroSizeAccess(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	c.Load(64, 0)
	c.Store(64, 0)
	c.Flush(64, 0)
	if clock.Now() != 0 {
		t.Fatal("zero-size operations advanced the clock")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 64, Assoc: 3}, &sim.Clock{}, flatModel{}, nil)
}

// TestCacheMemConsistency is the core integration property of the crash
// emulator: after any access sequence, for every element either the image
// matches the live value (persisted) or the element's line is dirty in
// cache (volatile). This is the invariant the whole paper rests on.
func TestCacheMemConsistency(t *testing.T) {
	clock := &sim.Clock{}
	h := mem.NewHeap(nil)
	cfg := Config{SizeBytes: 8 * 64 * 2, LineBytes: 64, Assoc: 2, HitNS: 1}
	c := New(cfg, clock, flatModel{read: 10, write: 5}, h)
	h.SetAccessor(c)

	r := h.AllocF64("v", 512)
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 20000; op++ {
		i := rng.Intn(r.Len())
		if rng.Intn(2) == 0 {
			r.Set(i, float64(op))
		} else {
			_ = r.At(i)
		}
	}
	live, img := r.Live(), r.Image()
	for i := range live {
		if live[i] == img[i] {
			continue
		}
		_, dirty := c.Contains(r.Addr(i))
		if !dirty {
			t.Fatalf("element %d: live=%v image=%v but line not dirty", i, live[i], img[i])
		}
	}
	// And after a full writeback, image == live everywhere.
	c.WritebackAll()
	for i := range live {
		if live[i] != img[i] {
			t.Fatalf("after WritebackAll element %d: live=%v image=%v", i, live[i], img[i])
		}
	}
}

func TestResetStats(t *testing.T) {
	clock := &sim.Clock{}
	c := tinyCache(t, clock, nil)
	c.Load(64, 8)
	c.ResetStats()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
	// State must be preserved: this is a hit.
	c.Load(64, 8)
	if st := c.Stats(); st.LineHits != 1 || st.LineMisses != 0 {
		t.Fatalf("cache state lost on ResetStats: %+v", st)
	}
}

// TestFlushFreePricing: on an eADR platform (FlushFree) every flush
// variant retires at the flat hit cost, but data movement, dirty-bit
// transitions, and stats stay byte-identical to the ADR twin — only the
// clock deviates.
func TestFlushFreePricing(t *testing.T) {
	run := func(flushFree bool) (int64, Stats, []mem.Addr) {
		clock := &sim.Clock{}
		sink := &recSink{}
		cfg := Config{
			SizeBytes:         4 * 64 * 2,
			LineBytes:         64,
			Assoc:             2,
			HitNS:             1,
			FlushChargesClean: true,
			FlushFree:         flushFree,
		}
		c := New(cfg, clock, flatModel{read: 100, write: 50}, sink)
		c.Store(64, 8)  // dirty
		c.Load(128, 8)  // clean resident
		c.Store(192, 8) // dirty, for the CLWB leg
		before := clock.Now()
		c.Flush(64, 8)     // dirty: writeback
		c.Flush(128, 8)    // clean resident
		c.Flush(1024, 8)   // absent
		c.FlushOpt(192, 8) // CLWB on dirty: writeback, stays resident
		if res, _ := c.Contains(192); !res {
			t.Fatal("CLWB evicted the line")
		}
		if res, _ := c.Contains(64); res {
			t.Fatal("CLFLUSH left the line resident")
		}
		return clock.Now() - before, c.Stats(), sink.wbs
	}

	adrCost, adrStats, adrWbs := run(false)
	freeCost, freeStats, freeWbs := run(true)

	// ADR: two dirty writebacks at 50 plus two clean/absent flushes at
	// 50 under FlushChargesClean. eADR: four flushes at HitNS=1 each.
	if adrCost != 200 {
		t.Fatalf("ADR flush cost = %d, want 200", adrCost)
	}
	if freeCost != 4 {
		t.Fatalf("eADR flush cost = %d, want 4 (flat hit cost per flush)", freeCost)
	}
	if adrStats != freeStats {
		t.Fatalf("stats diverge: ADR %+v, eADR %+v", adrStats, freeStats)
	}
	if len(adrWbs) != 2 || len(freeWbs) != 2 || adrWbs[0] != freeWbs[0] || adrWbs[1] != freeWbs[1] {
		t.Fatalf("writeback streams diverge: ADR %v, eADR %v", adrWbs, freeWbs)
	}
}
