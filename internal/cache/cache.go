// Package cache implements the set-associative write-back LRU cache
// simulator at the core of the crash emulator (paper §III-A).
//
// The simulator is metadata-only: it tracks tags, dirty bits, and LRU
// state, but no data bytes. Data movement is delegated to a
// WritebackSink (the mem.Heap), which copies the live values of an
// evicted or flushed dirty line into the persistent NVM image. With a
// single simulated core and a write-back policy, a resident line always
// holds the most recent value of every byte it covers, so this is exact
// (ARCHITECTURE.md, "Metadata-only cache exactness").
//
// Timing: every access advances a sim.Clock — a flat hit cost on hits,
// and the memory system's read/write costs on fills and writebacks. The
// memory system below the cache is abstracted as a CostModel so the same
// cache drives the NVM-only and the heterogeneous NVM/DRAM platforms of
// the paper.
package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

// CostModel prices accesses of the memory system below the cache.
// Implementations live in internal/nvm.
type CostModel interface {
	// ReadCost returns the simulated cost of reading size bytes at a.
	ReadCost(a mem.Addr, size int) int64
	// WriteCost returns the simulated cost of writing size bytes at a.
	WriteCost(a mem.Addr, size int) int64
	// ReadCostSeq and WriteCostSeq price accesses recognized as part
	// of a sequential stream (hardware prefetch / write combining):
	// bandwidth-bound, latency hidden.
	ReadCostSeq(a mem.Addr, size int) int64
	WriteCostSeq(a mem.Addr, size int) int64
}

// WritebackSink receives the data movement of dirty-line writebacks.
// mem.Heap implements it.
type WritebackSink interface {
	Writeback(a mem.Addr, size int)
}

// ConstantCostModel is an optional CostModel refinement for memory
// systems whose access costs do not depend on the address (the NVM-only
// Uniform system). When the cache's CostModel implements it and reports
// ok, the four line-sized costs are computed once at construction and
// the hot paths skip the per-access interface calls and float
// arithmetic of the general path. The cached values come from the same
// cost methods, so simulated timings are identical either way.
type ConstantCostModel interface {
	// ConstantLineCosts returns the fixed costs of a size-byte access
	// and reports whether costs are in fact address-independent.
	ConstantLineCosts(size int) (read, readSeq, write, writeSeq int64, ok bool)
}

// Config describes cache geometry and timing.
type Config struct {
	// SizeBytes is the total capacity. Must be a multiple of
	// LineBytes*Assoc.
	SizeBytes int
	// LineBytes is the line size; it must equal mem.LineSize when the
	// cache fronts a mem.Heap.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// HitNS is the flat simulated cost of a cache hit.
	HitNS int64
	// FlushChargesClean controls whether flushing a clean or absent
	// line is charged like a dirty writeback. The paper (§II) states
	// the costs are of the same order, and its evaluation assumes so.
	FlushChargesClean bool
	// PrefetchStreams is the number of concurrent sequential streams
	// the modeled hardware prefetcher tracks. A line fill that extends
	// a tracked stream is charged the bandwidth-only sequential cost.
	// Zero disables prefetch modeling.
	PrefetchStreams int
	// FlushFree models an eADR platform, where the LLC sits inside the
	// persistence domain and explicit flushes are semantically
	// unnecessary: CLFLUSH and CLWB retire at the flat hit cost instead
	// of the memory system's write cost (FlushChargesClean included).
	// Only pricing changes — data movement, invalidation, and dirty-bit
	// transitions are identical to the ADR configuration, so the access
	// stream, the crash-point space, and the evolution of cache state
	// are byte-for-byte the same and only the simulated clock differs.
	// The crash-time drain (dirty lines persist instead of vanishing)
	// is modeled one layer up, by crash.FaultModel kind EADR.
	FlushFree bool
}

// DefaultConfig returns the LLC configuration used throughout the
// reproduction: 2 MB, 64 B lines, 16-way, 4 ns hit. The paper's Xeon
// E5606 has an 8 MB LLC; problem sizes in this reproduction are scaled
// down 4-8x from the paper's, and the LLC scales with them so that the
// working-set-to-cache ratios — which drive every consistency result —
// are preserved.
func DefaultConfig() Config {
	return Config{
		SizeBytes:         2 << 20,
		LineBytes:         mem.LineSize,
		Assoc:             16,
		HitNS:             4,
		FlushChargesClean: true,
		PrefetchStreams:   16,
	}
}

// Stats counts simulator events.
type Stats struct {
	Loads      int64 // load requests (element granularity)
	Stores     int64 // store requests
	LineHits   int64 // per-line hits
	LineMisses int64 // per-line misses (fills)
	Writebacks int64 // dirty evictions (capacity)
	Flushes    int64 // lines explicitly flushed
	FlushDirty int64 // flushed lines that were dirty
	Prefetched int64 // fills covered by the stream prefetcher
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	use   uint64
}

// Cache is a set-associative write-back LRU cache simulator. It
// implements mem.Accessor so it can be installed directly as a heap's
// access observer.
type Cache struct {
	cfg   Config
	nsets uint64
	ways  []way // nsets * assoc, set-major
	clock *sim.Clock
	mem   CostModel
	sink  WritebackSink
	tick  uint64
	stats Stats

	// Address-arithmetic fast paths: line size and set count are powers
	// of two for every practical geometry, turning the per-access
	// divisions of the hot path into shifts and masks. The slow
	// (divide/modulo) forms remain as fallback for odd geometries.
	pow2Line  bool
	lineShift uint
	pow2Sets  bool
	setMask   uint64

	// wayOf is the line directory: a flat slice keyed by line number
	// whose entries name the way the line was last filled into (stored
	// as wayIndex+1; 0 = never filled). It replaces the per-access
	// associative set scan of the hit, flush, and CLWB paths with an
	// O(1) lookup. Entries are never cleared: a line is resident iff
	// its last fill target still holds its tag valid, so the lookup's
	// tag check is the single source of truth and eviction, flush, and
	// DiscardAll need no directory bookkeeping. Lines at or past
	// dirMaxLines are never recorded (see lookupWay's scan fallback):
	// growing the dense slice toward a wild line number would allocate
	// memory proportional to the address.
	wayOf []uint32

	// MRU memo: the way that served the most recent hit or fill.
	// Element accesses touch the same 64-byte line several times in a
	// row (and selective flushes target the just-written line), so this
	// skips even the directory load for the common case. Validity is
	// re-checked against the way's tag on every use.
	lastLn  uint64
	lastWay *way

	// Line-sized costs precomputed from a ConstantCostModel; valid only
	// when constCost is set (address-independent memory system).
	constCost               bool
	lineRead, lineReadSeq   int64
	lineWrite, lineWriteSeq int64

	// Prefetcher state: the line numbers that would extend each
	// tracked stream, in round-robin replacement order.
	streams    []uint64
	nextStream int
	lastWbLine uint64
}

// New constructs a cache simulator. clock and memory must be non-nil;
// sink may be nil (cost-only simulation with no data movement).
func New(cfg Config, clock *sim.Clock, memory CostModel, sink WritebackSink) *Cache {
	if cfg.LineBytes <= 0 || cfg.Assoc <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible by line*assoc", cfg.SizeBytes))
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	c := &Cache{
		cfg:     cfg,
		nsets:   uint64(nsets),
		ways:    make([]way, nsets*cfg.Assoc),
		clock:   clock,
		mem:     memory,
		sink:    sink,
		streams: make([]uint64, cfg.PrefetchStreams),
	}
	if cfg.LineBytes&(cfg.LineBytes-1) == 0 {
		c.pow2Line = true
		c.lineShift = uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
	}
	if nsets&(nsets-1) == 0 {
		c.pow2Sets = true
		c.setMask = uint64(nsets) - 1
	}
	if m, ok := memory.(ConstantCostModel); ok {
		if r, rs, w, ws, fixed := m.ConstantLineCosts(cfg.LineBytes); fixed {
			c.constCost = true
			c.lineRead, c.lineReadSeq = r, rs
			c.lineWrite, c.lineWriteSeq = w, ws
		}
	}
	return c
}

// readCost prices a line fill at a (non-sequential).
func (c *Cache) readCost(a mem.Addr) int64 {
	if c.constCost {
		return c.lineRead
	}
	return c.mem.ReadCost(a, c.cfg.LineBytes)
}

// readSeqCost prices a prefetched (stream-covered) line fill at a.
func (c *Cache) readSeqCost(a mem.Addr) int64 {
	if c.constCost {
		return c.lineReadSeq
	}
	return c.mem.ReadCostSeq(a, c.cfg.LineBytes)
}

// writeCost prices a line writeback at a (non-sequential).
func (c *Cache) writeCost(a mem.Addr) int64 {
	if c.constCost {
		return c.lineWrite
	}
	return c.mem.WriteCost(a, c.cfg.LineBytes)
}

// writeSeqCost prices a write-combined streaming writeback at a.
func (c *Cache) writeSeqCost(a mem.Addr) int64 {
	if c.constCost {
		return c.lineWriteSeq
	}
	return c.mem.WriteCostSeq(a, c.cfg.LineBytes)
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache state.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) lineNumber(a mem.Addr) uint64 {
	if c.pow2Line {
		return uint64(a) >> c.lineShift
	}
	return uint64(a) / uint64(c.cfg.LineBytes)
}

func (c *Cache) lineAddr(tag uint64) mem.Addr {
	if c.pow2Line {
		return mem.Addr(tag << c.lineShift)
	}
	return mem.Addr(tag * uint64(c.cfg.LineBytes))
}

// setBase returns the index of the first way of the set holding line
// number ln.
func (c *Cache) setBase(ln uint64) uint64 {
	var s uint64
	if c.pow2Sets {
		s = ln & c.setMask
	} else {
		s = ln % c.nsets
	}
	return s * uint64(c.cfg.Assoc)
}

// set returns the ways of the set holding line number ln.
func (c *Cache) set(ln uint64) []way {
	b := c.setBase(ln)
	return c.ways[b : b+uint64(c.cfg.Assoc)]
}

// dirMaxLines bounds the dense line directory: 1<<26 lines cover 4 GiB
// of simulated address space, far beyond any workload's heap (regions
// are allocated compactly from zero). Accesses past the bound still
// simulate correctly through lookupWay's associative scan — they occur
// only when recovery code chases an address read from a fault-corrupted
// image, and the bound keeps such a wild address from inflating the
// directory allocation to the size of the address.
const dirMaxLines = 1 << 26

// lookupWay returns the way holding line ln, or nil when the line is
// not resident. The MRU memo is consulted first, then the line
// directory; in both cases the way's own valid bit and tag are the
// source of truth, so stale entries can never alias another line (a
// resident line is always in the way it was last filled into). Lines
// past the directory bound fall back to scanning their set.
func (c *Cache) lookupWay(ln uint64) *way {
	if w := c.lastWay; w != nil && c.lastLn == ln && w.valid && w.tag == ln {
		return w
	}
	if ln < uint64(len(c.wayOf)) {
		if e := c.wayOf[ln]; e != 0 {
			w := &c.ways[e-1]
			if w.valid && w.tag == ln {
				c.lastLn, c.lastWay = ln, w
				return w
			}
		}
	} else if ln >= dirMaxLines {
		set := c.set(ln)
		for i := range set {
			if w := &set[i]; w.valid && w.tag == ln {
				c.lastLn, c.lastWay = ln, w
				return w
			}
		}
	}
	return nil
}

// setDir records that line ln was filled into way index wi. Lines past
// the directory bound are not recorded; lookupWay scans for them.
func (c *Cache) setDir(ln uint64, wi uint64) {
	if ln >= dirMaxLines {
		return
	}
	if ln >= uint64(len(c.wayOf)) {
		grown := ln + ln/2 + 64
		if grown > dirMaxLines {
			grown = dirMaxLines
		}
		g := make([]uint32, grown)
		copy(g, c.wayOf)
		c.wayOf = g
	}
	c.wayOf[ln] = uint32(wi) + 1
}

// Load implements mem.Accessor.
func (c *Cache) Load(a mem.Addr, size int) {
	c.stats.Loads++
	c.access(a, size, false)
}

// Store implements mem.Accessor.
func (c *Cache) Store(a mem.Addr, size int) {
	c.stats.Stores++
	c.access(a, size, true)
}

func (c *Cache) access(a mem.Addr, size int, store bool) {
	if size <= 0 {
		return
	}
	first := c.lineNumber(a)
	last := c.lineNumber(a + mem.Addr(size) - 1)
	for ln := first; ln <= last; ln++ {
		c.tick++
		// Hit path, inlined: O(1) via the MRU memo / line directory.
		if w := c.lookupWay(ln); w != nil {
			w.use = c.tick
			if store {
				w.dirty = true
			}
			c.stats.LineHits++
			c.clock.Advance(c.cfg.HitNS)
			continue
		}
		c.missLine(ln, store)
	}
}

// missLine performs the miss/evict/fill protocol for one line (the
// caller has already bumped the tick and ruled out a hit).
func (c *Cache) missLine(ln uint64, store bool) {
	// Choose a victim within the set (invalid way first, else LRU).
	c.stats.LineMisses++
	base := c.setBase(ln)
	set := c.ways[base : base+uint64(c.cfg.Assoc)]
	victim, vi := &set[0], uint64(0)
	for i := range set {
		w := &set[i]
		if !w.valid {
			victim, vi = w, uint64(i)
			break
		}
		if w.use < victim.use {
			victim, vi = w, uint64(i)
		}
	}
	if victim.valid && victim.dirty {
		c.evict(victim)
	}

	// Fill. Write-allocate on stores, as on real x86 write-back caches.
	// A fill extending a tracked sequential stream is prefetched:
	// bandwidth-only cost.
	if c.streamHit(ln) {
		c.stats.Prefetched++
		c.clock.Advance(c.readSeqCost(c.lineAddr(ln)))
	} else {
		c.clock.Advance(c.readCost(c.lineAddr(ln)))
	}
	victim.tag = ln
	victim.valid = true
	victim.dirty = store
	victim.use = c.tick
	c.setDir(ln, base+vi)
	c.lastLn, c.lastWay = ln, victim
}

// streamHit reports whether line ln extends a tracked stream, updating
// prefetcher state either way (a miss trains a new stream slot).
func (c *Cache) streamHit(ln uint64) bool {
	if len(c.streams) == 0 {
		return false
	}
	for i, next := range c.streams {
		if next == ln {
			c.streams[i] = ln + 1
			return true
		}
	}
	// Train: a new stream expecting the successor line.
	c.streams[c.nextStream] = ln + 1
	c.nextStream = (c.nextStream + 1) % len(c.streams)
	return false
}

// evict writes back a dirty line: data movement via the sink and cost via
// the memory model.
func (c *Cache) evict(w *way) {
	c.stats.Writebacks++
	addr := c.lineAddr(w.tag)
	if c.sink != nil {
		c.sink.Writeback(addr, c.cfg.LineBytes)
	}
	// Consecutive writebacks (streaming dirty data) are write-combined.
	if len(c.streams) > 0 && w.tag == c.lastWbLine+1 {
		c.clock.Advance(c.writeSeqCost(addr))
	} else {
		c.clock.Advance(c.writeCost(addr))
	}
	c.lastWbLine = w.tag
	w.dirty = false
}

// Flush emulates CLFLUSH over the byte range [a, a+size): every covered
// line is written back if dirty and invalidated. Per the paper's stated
// cost assumption, clean and absent lines are charged like dirty ones
// when Config.FlushChargesClean is set.
func (c *Cache) Flush(a mem.Addr, size int) {
	if size <= 0 {
		return
	}
	first := c.lineNumber(a)
	last := c.lineNumber(a + mem.Addr(size) - 1)
	for ln := first; ln <= last; ln++ {
		c.flushLine(ln)
	}
}

func (c *Cache) flushLine(ln uint64) {
	c.stats.Flushes++
	if w := c.lookupWay(ln); w != nil {
		c.flushResident(w, ln)
		return
	}
	// Absent line: CLFLUSH still issues and, per the paper, costs the
	// same order as flushing a resident line — unless the platform is
	// eADR, where a flush is a retired no-op.
	if c.cfg.FlushFree {
		c.clock.Advance(c.cfg.HitNS)
	} else if c.cfg.FlushChargesClean {
		c.clock.Advance(c.writeCost(c.lineAddr(ln)))
	}
}

// flushResident performs the CLFLUSH protocol on a resident line:
// write back if dirty, charge per the clean-flush policy, invalidate.
// On a FlushFree (eADR) platform the writeback still moves data — the
// crash-time drain would persist the same bytes anyway — but retires
// at pipeline cost.
func (c *Cache) flushResident(w *way, ln uint64) {
	if w.dirty {
		c.stats.FlushDirty++
		addr := c.lineAddr(ln)
		if c.sink != nil {
			c.sink.Writeback(addr, c.cfg.LineBytes)
		}
		if c.cfg.FlushFree {
			c.clock.Advance(c.cfg.HitNS)
		} else {
			c.clock.Advance(c.writeCost(addr))
		}
	} else if c.cfg.FlushFree {
		c.clock.Advance(c.cfg.HitNS)
	} else if c.cfg.FlushChargesClean {
		c.clock.Advance(c.writeCost(c.lineAddr(ln)))
	}
	w.valid = false
	w.dirty = false
}

// FlushOpt emulates CLWB (cache-line write-back) over [a, a+size):
// dirty lines are written back but stay resident and clean, so
// subsequent accesses hit instead of refilling from memory. Clean and
// absent lines cost only a pipeline slot. The paper (§II) notes CLWB
// was not yet commercially available on its testbed and that using it
// "should further improve performance of our proposed approach"; the
// clwb ablation experiment quantifies exactly that.
func (c *Cache) FlushOpt(a mem.Addr, size int) {
	if size <= 0 {
		return
	}
	first := c.lineNumber(a)
	last := c.lineNumber(a + mem.Addr(size) - 1)
	for ln := first; ln <= last; ln++ {
		c.flushOptLine(ln)
	}
}

func (c *Cache) flushOptLine(ln uint64) {
	c.stats.Flushes++
	if w := c.lookupWay(ln); w != nil {
		c.flushOptResident(w, ln)
		return
	}
	// Absent line: CLWB retires without memory traffic.
	c.clock.Advance(c.cfg.HitNS)
}

// flushOptResident performs the CLWB protocol on a resident line: write
// back if dirty, keep the line valid and clean.
func (c *Cache) flushOptResident(w *way, ln uint64) {
	if w.dirty {
		c.stats.FlushDirty++
		addr := c.lineAddr(ln)
		if c.sink != nil {
			c.sink.Writeback(addr, c.cfg.LineBytes)
		}
		if c.cfg.FlushFree {
			c.clock.Advance(c.cfg.HitNS)
		} else {
			c.clock.Advance(c.writeCost(addr))
		}
		w.dirty = false
	} else {
		c.clock.Advance(c.cfg.HitNS)
	}
}

// WritebackAll writes back every dirty line, leaving lines valid and
// clean. It models a full cache drain (e.g. before a planned shutdown)
// and is used by tests to force a consistent image.
func (c *Cache) WritebackAll() {
	for i := range c.ways {
		w := &c.ways[i]
		if w.valid && w.dirty {
			c.evict(w)
		}
	}
}

// DiscardAll models the crash: every line vanishes without writeback.
// Dirty data that never reached NVM is lost, exactly as on real hardware
// with volatile caches.
func (c *Cache) DiscardAll() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	// Directory entries need no clearing: every lookup re-validates
	// against the (now invalid) ways.
}

// ResetVolatile clears the microarchitectural state that does not
// survive a machine crash and power cycle but is not part of the line
// directory proper: the LRU tick, the prefetcher's trained streams, the
// write-combining memo, and the MRU memo. Event counters are kept —
// they count what the simulation observed, not machine state. It is
// called by the crash protocol alongside DiscardAll, modeling that the
// restarted machine's prefetcher and replacement state are cold.
func (c *Cache) ResetVolatile() {
	c.tick = 0
	for i := range c.streams {
		c.streams[i] = 0
	}
	c.nextStream = 0
	c.lastWbLine = 0
	c.lastLn, c.lastWay = 0, nil
}

// State is a deep-copy snapshot of a Cache's simulation state: the line
// directory with tags, dirty bits, and LRU ordering, the wayOf index,
// the prefetcher and write-combining state, and the event counters. It
// is opaque; capture it with Snapshot and apply it with Restore.
type State struct {
	ways       []way
	wayOf      []uint32
	tick       uint64
	stats      Stats
	streams    []uint64
	nextStream int
	lastWbLine uint64
}

func growWays(s []way, n int) []way {
	if cap(s) < n {
		return make([]way, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// Snapshot deep-copies the cache's simulation state into st and returns
// it. A nil st allocates a fresh State; a non-nil st reuses its buffers
// when large enough.
func (c *Cache) Snapshot(st *State) *State {
	if st == nil {
		st = &State{}
	}
	st.ways = growWays(st.ways, len(c.ways))
	copy(st.ways, c.ways)
	st.wayOf = growU32(st.wayOf, len(c.wayOf))
	copy(st.wayOf, c.wayOf)
	st.streams = growU64(st.streams, len(c.streams))
	copy(st.streams, c.streams)
	st.tick = c.tick
	st.stats = c.stats
	st.nextStream = c.nextStream
	st.lastWbLine = c.lastWbLine
	return st
}

// Restore overwrites the cache's simulation state from st. The cache
// must have the geometry st was captured from (same way count); a
// mismatch panics. The MRU memo is cleared rather than restored — it
// revalidates on first use, so clearing is behavior-neutral.
func (c *Cache) Restore(st *State) {
	if len(st.ways) != len(c.ways) {
		panic(fmt.Sprintf("cache: restore of %d-way state onto %d-way cache",
			len(st.ways), len(c.ways)))
	}
	copy(c.ways, st.ways)
	c.wayOf = growU32(c.wayOf, len(st.wayOf))
	copy(c.wayOf, st.wayOf)
	if len(c.streams) != len(st.streams) {
		panic(fmt.Sprintf("cache: restore of %d-stream state onto %d-stream cache",
			len(st.streams), len(c.streams)))
	}
	copy(c.streams, st.streams)
	c.tick = st.tick
	c.stats = st.stats
	c.nextStream = st.nextStream
	c.lastWbLine = st.lastWbLine
	c.lastLn, c.lastWay = 0, nil
}

// Equal reports whether two snapshots capture identical simulation
// state. The wayOf index compares only on entries that are live (their
// way still holds the tag) in either snapshot — stale entries are
// semantically invisible.
func (a *State) Equal(b *State) bool {
	if len(a.ways) != len(b.ways) ||
		a.tick != b.tick || a.stats != b.stats ||
		a.nextStream != b.nextStream || a.lastWbLine != b.lastWbLine {
		return false
	}
	for i := range a.ways {
		if a.ways[i] != b.ways[i] {
			return false
		}
	}
	if len(a.streams) != len(b.streams) {
		return false
	}
	for i := range a.streams {
		if a.streams[i] != b.streams[i] {
			return false
		}
	}
	live := func(st *State, ln int) (uint32, bool) {
		if ln >= len(st.wayOf) || st.wayOf[ln] == 0 {
			return 0, false
		}
		w := st.ways[st.wayOf[ln]-1]
		return st.wayOf[ln], w.valid && w.tag == uint64(ln)
	}
	n := len(a.wayOf)
	if len(b.wayOf) > n {
		n = len(b.wayOf)
	}
	for ln := 0; ln < n; ln++ {
		ea, la := live(a, ln)
		eb, lb := live(b, ln)
		if la != lb || (la && ea != eb) {
			return false
		}
	}
	return true
}

// Contains reports whether the line holding address a is resident, and
// whether it is dirty. Used by tests and by the consistency reporter.
func (c *Cache) Contains(a mem.Addr) (resident, dirty bool) {
	ln := c.lineNumber(a)
	set := c.set(ln)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == ln {
			return true, w.dirty
		}
	}
	return false, false
}

// DirtyLineAddrs returns the line-base addresses of every dirty
// resident line, sorted ascending. This is the crash-time candidate
// set of the fault models: the lines an eADR drain would persist, a
// relaxed writeback order would permute, or an in-flight flush would
// tear. Sorting makes the result independent of set/way layout, which
// the byte-determinism of fault overlays depends on.
func (c *Cache) DirtyLineAddrs() []mem.Addr {
	var addrs []mem.Addr
	for i := range c.ways {
		w := &c.ways[i]
		if w.valid && w.dirty {
			addrs = append(addrs, c.lineAddr(w.tag))
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// DirtyLines returns the number of dirty lines currently resident.
func (c *Cache) DirtyLines() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid && c.ways[i].dirty {
			n++
		}
	}
	return n
}
