package report

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"adcc/internal/bench"
	"adcc/internal/campaign"
)

func sampleSuite() bench.Suite {
	return bench.NewSuite(0.5, []bench.Result{
		{Name: "k/a", SimNS: 100, NsPerOp: 3.5, Iterations: 10},
		{Name: "k/b", SimNS: 200},
	})
}

func sampleCampaign() *campaign.Report {
	return &campaign.Report{
		Schema: campaign.SchemaVersion, Scale: 0.1, Seed: 7, Injections: 3,
		Cells: []campaign.CellReport{{
			Workload: "mc", Scheme: "algo-NVM-only", System: "NVM-only",
			Injections: 3, Clean: 3, RecoveryRate: 1, ProfileOps: 10, GrainOps: 2,
		}},
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.json")
	if err := WrapBench(sampleSuite()).WriteFile(benchPath); err != nil {
		t.Fatalf("WriteFile(bench): %v", err)
	}
	e, err := ReadFile(benchPath)
	if err != nil {
		t.Fatalf("ReadFile(bench): %v", err)
	}
	s, err := e.BenchSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 2 || s.Scale != 0.5 {
		t.Fatalf("bench payload lost data: %+v", s)
	}
	if _, err := e.CampaignReport(); err == nil {
		t.Fatal("CampaignReport on a bench envelope returned nil error")
	}

	campPath := filepath.Join(dir, "campaign.json")
	if err := WrapCampaign(sampleCampaign()).WriteFile(campPath); err != nil {
		t.Fatalf("WriteFile(campaign): %v", err)
	}
	e, err = ReadFile(campPath)
	if err != nil {
		t.Fatalf("ReadFile(campaign): %v", err)
	}
	rep, err := e.CampaignReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injections != 3 || len(rep.Cells) != 1 {
		t.Fatalf("campaign payload lost data: %+v", rep)
	}
}

// TestDecodeLegacyPayloads asserts the one-decoder contract: bare
// adcc-bench/v1 and adcc-campaign/v1 documents decode as envelopes.
func TestDecodeLegacyPayloads(t *testing.T) {
	rawBench, err := sampleSuite().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	e, err := Decode(rawBench)
	if err != nil {
		t.Fatalf("Decode(legacy bench): %v", err)
	}
	if e.Kind != KindBench || e.Bench == nil {
		t.Fatalf("legacy bench decoded as %+v", e)
	}

	rawCamp, err := sampleCampaign().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	e, err = Decode(rawCamp)
	if err != nil {
		t.Fatalf("Decode(legacy campaign): %v", err)
	}
	if e.Kind != KindCampaign || e.Campaign == nil {
		t.Fatalf("legacy campaign decoded as %+v", e)
	}

	if _, err := Decode([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("Decode accepted an unknown schema")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("Decode accepted malformed JSON")
	}
}

// TestEnvelopePreservesPayloadBytes pins the acceptance contract of the
// API redesign: the campaign payload inside the envelope is
// byte-identical to the bare adcc-campaign/v1 encoding modulo the
// envelope's indentation.
func TestEnvelopePreservesPayloadBytes(t *testing.T) {
	rep := sampleCampaign()
	bare, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := WrapCampaign(rep).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Re-indenting the bare payload one level must reproduce the
	// envelope's campaign field exactly.
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(bare), "  ", "  "); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wrapped), buf.String()) {
		t.Fatalf("envelope does not embed the bare payload byte-for-byte:\nenvelope:\n%s\npayload:\n%s",
			wrapped, buf.String())
	}
}

func TestValidateRejectsMismatches(t *testing.T) {
	bad := []Envelope{
		{Schema: "x", Kind: KindBench},
		{Schema: SchemaVersion, Kind: KindBench},
		{Schema: SchemaVersion, Kind: KindCampaign},
		{Schema: SchemaVersion, Kind: "other"},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, e)
		}
	}
}
