// Package report defines the adcc-report/v1 envelope: one versioned
// JSON shape that wraps every machine-readable artifact the repo emits
// — benchmark suites (adcc-bench/v1) and crash-injection campaign
// reports (adcc-campaign/v1) — so a single decoder handles any file.
//
// The envelope adds exactly two fields (schema and kind) around the
// existing payloads, whose encodings are unchanged: a wrapped campaign
// report is byte-identical to the bare adcc-campaign/v1 document modulo
// the envelope. Decode also accepts the bare legacy payloads by their
// own schema tags, so pre-envelope files (for example a committed bench
// baseline) keep working without migration.
package report

import (
	"encoding/json"
	"fmt"
	"os"

	"adcc/internal/bench"
	"adcc/internal/campaign"
)

// SchemaVersion identifies the envelope layout. Consumers refuse files
// with unknown schemas; bump only with a migration note in README.md.
const SchemaVersion = "adcc-report/v1"

// Payload kinds.
const (
	// KindBench marks an envelope carrying a benchmark suite.
	KindBench = "bench"
	// KindCampaign marks an envelope carrying a campaign report.
	KindCampaign = "campaign"
)

// Envelope is the unified report document: a schema tag, the payload
// kind, and exactly one payload field populated.
type Envelope struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	// Bench is the benchmark suite payload (Kind == KindBench).
	Bench *bench.Suite `json:"bench,omitempty"`
	// Campaign is the campaign report payload (Kind == KindCampaign).
	Campaign *campaign.Report `json:"campaign,omitempty"`
}

// WrapBench envelopes a benchmark suite.
func WrapBench(s bench.Suite) Envelope {
	return Envelope{Schema: SchemaVersion, Kind: KindBench, Bench: &s}
}

// WrapCampaign envelopes a campaign report.
func WrapCampaign(r *campaign.Report) Envelope {
	return Envelope{Schema: SchemaVersion, Kind: KindCampaign, Campaign: r}
}

// Validate checks that the envelope carries exactly the payload its
// kind announces.
func (e Envelope) Validate() error {
	if e.Schema != SchemaVersion {
		return fmt.Errorf("report: schema %q, want %q", e.Schema, SchemaVersion)
	}
	switch e.Kind {
	case KindBench:
		if e.Bench == nil {
			return fmt.Errorf("report: kind %q without a bench payload", e.Kind)
		}
	case KindCampaign:
		if e.Campaign == nil {
			return fmt.Errorf("report: kind %q without a campaign payload", e.Kind)
		}
	default:
		return fmt.Errorf("report: unknown kind %q", e.Kind)
	}
	return nil
}

// EncodeJSON renders the envelope in its canonical form: two-space
// indentation, struct field order, trailing newline. Byte-stable for
// equal contents.
func (e Envelope) EncodeJSON() ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the canonical encoding to path.
func (e Envelope) WriteFile(path string) error {
	b, err := e.EncodeJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Decode parses any machine-readable report the repo has ever emitted:
// an adcc-report/v1 envelope, a bare adcc-bench/v1 suite, or a bare
// adcc-campaign/v1 report (legacy payloads are wrapped on the way in,
// so callers always see an envelope).
func Decode(b []byte) (Envelope, error) {
	var tag struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &tag); err != nil {
		return Envelope{}, fmt.Errorf("report: %w", err)
	}
	switch tag.Schema {
	case SchemaVersion:
		var e Envelope
		if err := json.Unmarshal(b, &e); err != nil {
			return Envelope{}, fmt.Errorf("report: %w", err)
		}
		if err := e.Validate(); err != nil {
			return Envelope{}, err
		}
		return e, nil
	case bench.SchemaVersion:
		var s bench.Suite
		if err := json.Unmarshal(b, &s); err != nil {
			return Envelope{}, fmt.Errorf("report: %w", err)
		}
		return WrapBench(s), nil
	case campaign.SchemaVersion:
		var r campaign.Report
		if err := json.Unmarshal(b, &r); err != nil {
			return Envelope{}, fmt.Errorf("report: %w", err)
		}
		return WrapCampaign(&r), nil
	default:
		return Envelope{}, fmt.Errorf("report: unknown schema %q (want %q, %q, or %q)",
			tag.Schema, SchemaVersion, bench.SchemaVersion, campaign.SchemaVersion)
	}
}

// ReadFile reads and decodes a report file (enveloped or legacy).
func ReadFile(path string) (Envelope, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Envelope{}, err
	}
	e, err := Decode(b)
	if err != nil {
		return Envelope{}, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// BenchSuite returns the benchmark payload, erroring on other kinds.
func (e Envelope) BenchSuite() (bench.Suite, error) {
	if e.Kind != KindBench || e.Bench == nil {
		return bench.Suite{}, fmt.Errorf("report: kind %q is not a bench suite", e.Kind)
	}
	return *e.Bench, nil
}

// CampaignReport returns the campaign payload, erroring on other kinds.
func (e Envelope) CampaignReport() (*campaign.Report, error) {
	if e.Kind != KindCampaign || e.Campaign == nil {
		return nil, fmt.Errorf("report: kind %q is not a campaign report", e.Kind)
	}
	return e.Campaign, nil
}
