package report

import (
	"encoding/json"
	"testing"

	"adcc/internal/bench"
	"adcc/internal/campaign"
)

// FuzzDecodeReport throws malformed report documents at the unified
// decoder: enveloped and bare-legacy payloads, truncated JSON,
// duplicated fields, kind/payload mismatches, deep nesting. The decoder
// must never panic, and anything it accepts must validate and survive a
// canonical re-encode/decode round trip.
func FuzzDecodeReport(f *testing.F) {
	// Well-formed seeds: one envelope and one bare document per kind.
	benchEnv, err := WrapBench(bench.NewSuite(0.5, []bench.Result{
		{Name: "cache/flush", SimNS: 100, SimFlushes: 3},
	})).EncodeJSON()
	if err != nil {
		f.Fatal(err)
	}
	campEnv, err := WrapCampaign(&campaign.Report{
		Schema: campaign.SchemaVersion, Scale: 1, Injections: 2,
		Cells: []campaign.CellReport{{Workload: "cg", Scheme: "native", System: "NVM-only", Injections: 2, Clean: 2}},
	}).EncodeJSON()
	if err != nil {
		f.Fatal(err)
	}
	bareBench, err := json.Marshal(bench.NewSuite(1, nil))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(benchEnv)
	f.Add(campEnv)
	f.Add(bareBench)
	f.Add([]byte(`{"schema":"adcc-campaign/v1","cells":[{"workload":"mm"}]}`))
	// Malformed seeds: truncation, duplicated fields, kind/payload
	// mismatches, wrong types, junk.
	f.Add(benchEnv[:len(benchEnv)/2])
	f.Add([]byte(`{"schema":"adcc-report/v1","schema":"adcc-bench/v1","kind":"bench"}`))
	f.Add([]byte(`{"schema":"adcc-report/v1","kind":"campaign","bench":{"schema":"adcc-bench/v1"}}`))
	f.Add([]byte(`{"schema":"adcc-report/v1","kind":"bench","bench":{"results":"nope"}}`))
	f.Add([]byte(`{"schema":["adcc-report/v1"]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"schema":"adcc-bench/v1","results":[{"name":"x","sim_ns":-9}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("Decode accepted an envelope that fails Validate: %v\ninput: %q", err, data)
		}
		out, err := e.EncodeJSON()
		if err != nil {
			t.Fatalf("accepted envelope does not re-encode: %v\ninput: %q", err, data)
		}
		back, err := Decode(out)
		if err != nil {
			t.Fatalf("canonical encoding does not re-decode: %v\nencoded: %s", err, out)
		}
		if back.Kind != e.Kind {
			t.Fatalf("round trip changed kind: %q -> %q", e.Kind, back.Kind)
		}
		out2, err := back.EncodeJSON()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatalf("canonical encoding not a fixed point:\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
	})
}
