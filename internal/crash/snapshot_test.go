package crash_test

import (
	"fmt"
	"math/rand"
	"testing"

	"adcc/internal/ckpt"
	"adcc/internal/crash"
	"adcc/internal/mem"
)

// snapMachine is one randomized machine under test: the platform, its
// regions, and a checkpointer registered as an aux carrier.
type snapMachine struct {
	m  *crash.Machine
	f  []*mem.F64
	i  []*mem.I64
	cp *ckpt.Checkpointer
}

// buildSnapMachine constructs a machine deterministically from the
// seed; calling it twice with the same seed yields two structurally
// identical machines, which is the contract Restore requires.
func buildSnapMachine(kind crash.SystemKind, seed int64) *snapMachine {
	rng := rand.New(rand.NewSource(seed))
	m := crash.NewMachine(crash.MachineConfig{System: kind})
	s := &snapMachine{m: m}
	for r := 0; r < 2+rng.Intn(3); r++ {
		s.f = append(s.f, m.Heap.AllocF64(fmt.Sprintf("f%d", r), 16+rng.Intn(900)))
	}
	for r := 0; r < 1+rng.Intn(2); r++ {
		s.i = append(s.i, m.Heap.AllocI64(fmt.Sprintf("i%d", r), 8+rng.Intn(200)))
	}
	s.cp = ckpt.NewNVM(m)
	return s
}

// step applies one random simulated operation.
func (s *snapMachine) step(rng *rand.Rand) {
	switch rng.Intn(10) {
	case 0, 1, 2: // element store
		r := s.f[rng.Intn(len(s.f))]
		r.Set(rng.Intn(r.Len()), rng.NormFloat64())
	case 3, 4: // element load
		r := s.f[rng.Intn(len(s.f))]
		r.At(rng.Intn(r.Len()))
	case 5: // range store
		r := s.f[rng.Intn(len(s.f))]
		i := rng.Intn(r.Len())
		n := 1 + rng.Intn(r.Len()-i)
		dst := r.StoreRange(i, n)
		for k := range dst {
			dst[k] = rng.NormFloat64()
		}
	case 6: // int store
		r := s.i[rng.Intn(len(s.i))]
		r.Set(rng.Intn(r.Len()), rng.Int63())
	case 7: // persist a region
		s.m.FlushRegion(s.f[rng.Intn(len(s.f))])
	case 8: // checkpoint a random region pair
		s.cp.Checkpoint(rng.Int63n(100), s.f[rng.Intn(len(s.f))], s.i[rng.Intn(len(s.i))])
	case 9: // CPU compute (exercises the fractional remainder)
		s.m.CPU.Compute(1 + rng.Int63n(1000))
	}
}

// TestSnapshotRestoreRoundTrip is the snapshot layer's property test:
// for randomized machines and operation scripts, re-running a script
// suffix after Restore must reproduce the exact final state — both on
// the machine the snapshot came from and on a freshly built structural
// twin (the fork case).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, kind := range []crash.SystemKind{crash.NVMOnly, crash.Hetero} {
		for seed := int64(0); seed < 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", kind, seed), func(t *testing.T) {
				a := buildSnapMachine(kind, seed)
				rng := rand.New(rand.NewSource(seed + 1000))
				for k := 0; k < 300; k++ {
					a.step(rng)
				}
				mid := a.m.Snapshot()
				// Continue with a recorded suffix so it can be replayed.
				suffix := rand.New(rand.NewSource(seed + 2000))
				for k := 0; k < 300; k++ {
					a.step(suffix)
				}
				final := a.m.Snapshot()

				// Same machine: rewind and re-run the suffix.
				a.m.Restore(mid)
				suffix = rand.New(rand.NewSource(seed + 2000))
				for k := 0; k < 300; k++ {
					a.step(suffix)
				}
				if got := a.m.Snapshot(); !got.Equal(final) {
					t.Error("rewind + replay on the same machine diverged from the original run")
				}

				// Fresh structural twin: the fork case.
				b := buildSnapMachine(kind, seed)
				b.m.Restore(mid)
				suffix = rand.New(rand.NewSource(seed + 2000))
				for k := 0; k < 300; k++ {
					b.step(suffix)
				}
				if got := b.m.Snapshot(); !got.Equal(final) {
					t.Error("restore onto a fresh twin + replay diverged from the original run")
				}

				// A crash after restore must equal a crash at the
				// original instant: post-crash state is a function of
				// images and aux alone.
				a.m.Restore(mid)
				a.m.Crash()
				afterA := a.m.Snapshot()
				b.m.Restore(mid)
				b.m.Crash()
				if !afterA.Equal(b.m.Snapshot()) {
					t.Error("post-crash states diverged between original machine and twin")
				}
			})
		}
	}
}

// TestEmulatorSnapshotRoundTrip pins the emulator counter snapshot.
func TestEmulatorSnapshotRoundTrip(t *testing.T) {
	s := buildSnapMachine(crash.NVMOnly, 7)
	em := crash.NewEmulator(s.m)
	em.CrashAtOp(25)
	if !em.Run(func() {
		rng := rand.New(rand.NewSource(7))
		for k := 0; k < 500; k++ {
			s.step(rng)
		}
	}) {
		t.Fatal("armed crash did not fire")
	}
	st := em.Snapshot()
	if st.Ops != 25 || !st.Crashed || st.CrashOps != 25 {
		t.Fatalf("unexpected emulator state after crash: %+v", st)
	}
	em2 := crash.NewEmulator(s.m)
	em2.Restore(st)
	if em2.OpCount() != 25 || !em2.Crashed() || em2.CrashOps() != 25 || em2.CrashTrigger() != "" {
		t.Error("restored emulator does not report the captured counters")
	}
}
