package crash

import (
	"testing"

	"adcc/internal/cache"
)

func smallMachine(kind SystemKind) *Machine {
	return NewMachine(MachineConfig{
		System: kind,
		Cache: cache.Config{
			SizeBytes: 2 * 64 * 2, // 2 sets, 2 ways: tiny, evicts fast
			LineBytes: 64,
			Assoc:     2,
			HitNS:     1,
		},
	})
}

func TestMachineDefaults(t *testing.T) {
	m := NewMachine(MachineConfig{System: NVMOnly})
	if m.LLC.Config().SizeBytes != cache.DefaultConfig().SizeBytes {
		t.Error("default cache config not applied")
	}
	if m.System() != NVMOnly {
		t.Error("system kind mismatch")
	}
	if NVMOnly.String() != "NVM-only" || Hetero.String() != "NVM/DRAM" {
		t.Error("SystemKind names wrong")
	}
}

func TestRunNoCrash(t *testing.T) {
	m := smallMachine(NVMOnly)
	e := NewEmulator(m)
	r := m.Heap.AllocF64("v", 8)
	crashed := e.Run(func() {
		r.Set(0, 1.0)
	})
	if crashed {
		t.Fatal("unarmed run crashed")
	}
	if e.OpCount() != 1 {
		t.Fatalf("OpCount = %d, want 1", e.OpCount())
	}
	if got := r.Live()[0]; got != 1.0 {
		t.Fatalf("live value = %v", got)
	}
}

func TestCrashAtOpLosesCachedData(t *testing.T) {
	m := smallMachine(NVMOnly)
	e := NewEmulator(m)
	r := m.Heap.AllocF64("v", 8)
	e.CrashAtOp(2)
	crashed := e.Run(func() {
		r.Set(0, 42.0) // op 1: dirty in cache, never evicted
		r.Set(1, 43.0) // op 2: crash fires here
		t.Error("statement after crash executed")
	})
	if !crashed {
		t.Fatal("expected crash")
	}
	if e.CrashOps() != 2 {
		t.Fatalf("CrashOps = %d, want 2", e.CrashOps())
	}
	// The dirty line never reached NVM: after restart the value is gone.
	if got := r.Live()[0]; got != 0 {
		t.Fatalf("unpersisted value survived crash: %v", got)
	}
}

func TestCrashPreservesEvictedData(t *testing.T) {
	m := smallMachine(NVMOnly) // 2 sets x 2 ways, 64B lines
	e := NewEmulator(m)
	// 8 lines worth of data: streaming through forces evictions.
	r := m.Heap.AllocF64("v", 64)
	e.CrashAtTrigger("end", 1)
	crashed := e.Run(func() {
		for i := 0; i < 64; i++ {
			r.Set(i, float64(i+1))
		}
		e.Trigger("end")
	})
	if !crashed {
		t.Fatal("expected crash")
	}
	// With a 4-line cache, most early lines must have been evicted and
	// thus persisted.
	persisted := 0
	for i := 0; i < 64; i++ {
		if r.Live()[i] == float64(i+1) {
			persisted++
		}
	}
	if persisted == 0 {
		t.Fatal("no data persisted despite evictions")
	}
	if persisted == 64 {
		t.Fatal("everything persisted: cache had no effect")
	}
	// Early lines specifically should be persisted (LRU order).
	if r.Live()[0] != 1 {
		t.Error("earliest line expected to be evicted and persistent")
	}
}

func TestFlushSurvivesCrash(t *testing.T) {
	m := smallMachine(NVMOnly)
	e := NewEmulator(m)
	r := m.Heap.AllocF64("v", 8)
	e.CrashAtTrigger("pt", 1)
	e.Run(func() {
		r.Set(0, 7.0)
		m.FlushRegion(r)
		e.Trigger("pt")
	})
	if got := r.Live()[0]; got != 7.0 {
		t.Fatalf("flushed value lost across crash: %v", got)
	}
}

func TestTriggerOccurrenceCounting(t *testing.T) {
	m := smallMachine(NVMOnly)
	e := NewEmulator(m)
	count := 0
	e.CrashAtTrigger("iter", 3)
	crashed := e.Run(func() {
		for i := 0; i < 10; i++ {
			count++
			e.Trigger("iter")
		}
	})
	if !crashed || count != 3 {
		t.Fatalf("crashed=%v count=%d, want true/3", crashed, count)
	}
	if e.CrashTrigger() != "iter" {
		t.Fatalf("CrashTrigger = %q", e.CrashTrigger())
	}
}

func TestUnmatchedTriggerIgnored(t *testing.T) {
	m := smallMachine(NVMOnly)
	e := NewEmulator(m)
	e.CrashAtTrigger("a", 1)
	crashed := e.Run(func() {
		e.Trigger("b")
	})
	if crashed {
		t.Fatal("mismatched trigger fired")
	}
}

func TestProfileThenCrashWorkflow(t *testing.T) {
	// The paper's second crash-point mode: profile total ops, pick a
	// fraction, re-run with CrashAtOp.
	build := func() (*Machine, *Emulator, func()) {
		m := smallMachine(NVMOnly)
		e := NewEmulator(m)
		r := m.Heap.AllocF64("v", 128)
		wl := func() {
			for i := 0; i < 128; i++ {
				r.Set(i, float64(i))
			}
		}
		return m, e, wl
	}
	_, e1, wl1 := build()
	if e1.Run(wl1) {
		t.Fatal("profiling run crashed")
	}
	total := e1.OpCount()
	if total != 128 {
		t.Fatalf("profiled ops = %d, want 128", total)
	}
	_, e2, wl2 := build()
	e2.CrashAtOp(total / 2)
	if !e2.Run(wl2) {
		t.Fatal("second run did not crash at half the ops")
	}
	if e2.CrashOps() != 64 {
		t.Fatalf("crash at op %d, want 64", e2.CrashOps())
	}
}

func TestRunRestoresAccessorAfterCrash(t *testing.T) {
	m := smallMachine(NVMOnly)
	e := NewEmulator(m)
	r := m.Heap.AllocF64("v", 8)
	e.CrashAtOp(1)
	e.Run(func() { r.Set(0, 1) })
	// Post-crash accesses must not count against the old emulator or
	// crash again.
	r.Set(0, 2)
	if r.Live()[0] != 2 {
		t.Fatal("post-crash store failed")
	}
}

func TestNonCrashPanicPropagates(t *testing.T) {
	m := smallMachine(NVMOnly)
	e := NewEmulator(m)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	e.Run(func() { panic("boom") })
}

func TestInjectCrashNow(t *testing.T) {
	m := smallMachine(NVMOnly)
	e := NewEmulator(m)
	r := m.Heap.AllocF64("v", 8)
	crashed := e.Run(func() {
		r.Set(0, 5)
		InjectCrashNow()
	})
	if !crashed {
		t.Fatal("InjectCrashNow did not crash")
	}
}

func TestHeteroMachineCrashResetsTier(t *testing.T) {
	m := smallMachine(Hetero)
	e := NewEmulator(m)
	r := m.Heap.AllocF64("v", 1024)
	m.TierRegion(r)
	e.CrashAtOp(500)
	crashed := e.Run(func() {
		for i := 0; i < 1024; i++ {
			r.Set(i, 1)
		}
	})
	if !crashed {
		t.Fatal("expected crash")
	}
	// No assertion beyond "did not panic": tier reset is exercised.
}

func TestChargeHelpers(t *testing.T) {
	m := smallMachine(Hetero)
	before := m.Clock.Now()
	m.ChargeNVMRead(4096)
	mid := m.Clock.Now()
	m.ChargeNVMWrite(4096)
	if mid <= before || m.Clock.Now() <= mid {
		t.Fatal("charge helpers did not advance the clock")
	}
}

func TestEmulatorRerunResetsCounts(t *testing.T) {
	m := smallMachine(NVMOnly)
	e := NewEmulator(m)
	r := m.Heap.AllocF64("v", 8)
	e.Run(func() { r.Set(0, 1); r.Set(1, 1) })
	first := e.OpCount()
	e.Run(func() { r.Set(0, 1) })
	if e.OpCount() != 1 || first != 2 {
		t.Fatalf("op counts not reset: first=%d second=%d", first, e.OpCount())
	}
}
