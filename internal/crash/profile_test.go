package crash

import (
	"testing"
)

// profileWorkload issues loads and fires triggers against an emulator's
// machine: 10 ops per "iter" trigger, 5 iterations.
func profileWorkload(m *Machine, e *Emulator) func() {
	return func() {
		r := m.Heap.AllocF64("w.data", 64)
		for i := 0; i < 5; i++ {
			for j := 0; j < 10; j++ {
				r.At(j)
			}
			e.Trigger("iter")
		}
		e.Trigger("done")
	}
}

func TestProfileCountsOpsAndTriggers(t *testing.T) {
	m := NewMachine(MachineConfig{})
	e := NewEmulator(m)
	p := e.Profile(profileWorkload(m, e))
	if p.Ops != 50 {
		t.Errorf("Ops = %d, want 50", p.Ops)
	}
	want := []TriggerCount{{Name: "done", Count: 1}, {Name: "iter", Count: 5}}
	if len(p.Triggers) != len(want) {
		t.Fatalf("Triggers = %v, want %v", p.Triggers, want)
	}
	for i, w := range want {
		if p.Triggers[i] != w {
			t.Errorf("Triggers[%d] = %v, want %v", i, p.Triggers[i], w)
		}
	}
	if g := p.MainTriggerOps(); g != 10 {
		t.Errorf("MainTriggerOps = %d, want 10", g)
	}
}

func TestProfilePreservesArmedPoint(t *testing.T) {
	m := NewMachine(MachineConfig{})
	e := NewEmulator(m)
	e.Arm(CrashPoint{Trigger: "iter", Occurrence: 3})
	e.Profile(profileWorkload(m, e))
	// The profiling run must not have crashed, and the armed point must
	// survive for the next Run.
	if e.Crashed() {
		t.Fatal("profiling run crashed")
	}
	if !e.Run(profileWorkload(m, e)) {
		t.Fatal("armed trigger did not fire after Profile")
	}
	if e.CrashTrigger() != "iter" {
		t.Errorf("crash trigger = %q, want %q", e.CrashTrigger(), "iter")
	}
}

func TestPointsDeterministicAndInRange(t *testing.T) {
	p := RunProfile{
		Ops:      1000,
		Triggers: []TriggerCount{{Name: "iter", Count: 20}},
	}
	a := p.Points(40, 7)
	b := p.Points(40, 7)
	if len(a) != 40 {
		t.Fatalf("got %d points, want 40", len(a))
	}
	ops, trigs := 0, 0
	for i, pt := range a {
		if pt != b[i] {
			t.Fatalf("point %d differs between identical calls: %v vs %v", i, pt, b[i])
		}
		switch {
		case pt.Op > 0:
			ops++
			if pt.Op > p.Ops {
				t.Errorf("op point %d beyond profile ops %d", pt.Op, p.Ops)
			}
		case pt.Occurrence > 0:
			trigs++
			if pt.Trigger != "iter" || pt.Occurrence > 20 {
				t.Errorf("bad trigger point %v", pt)
			}
		default:
			t.Errorf("disarmed point %v enumerated", pt)
		}
	}
	if ops == 0 || trigs == 0 {
		t.Errorf("point mix: %d op points, %d trigger points; want both kinds", ops, trigs)
	}
	if c := p.Points(40, 8); a[0] == c[0] && a[2] == c[2] && a[4] == c[4] {
		t.Error("different seeds produced identical op points")
	}
}

func TestPointsWithoutTriggers(t *testing.T) {
	p := RunProfile{Ops: 100}
	for _, pt := range p.Points(10, 1) {
		if pt.Op <= 0 || pt.Op > 100 {
			t.Errorf("op point %v out of range", pt)
		}
	}
	if got := (RunProfile{}).Points(10, 1); got != nil {
		t.Errorf("empty profile enumerated %v", got)
	}
}

func TestArmDisarm(t *testing.T) {
	m := NewMachine(MachineConfig{})
	e := NewEmulator(m)
	e.Arm(CrashPoint{Op: 25})
	if !e.Run(profileWorkload(m, e)) {
		t.Fatal("op point did not fire")
	}
	if e.CrashOps() != 25 {
		t.Errorf("crashed at op %d, want 25", e.CrashOps())
	}
	e.Disarm()
	if e.Run(profileWorkload(m, e)) {
		t.Fatal("disarmed emulator crashed")
	}
	if e.OpCount() != 50 {
		t.Errorf("resumed run counted %d ops, want 50", e.OpCount())
	}
}
