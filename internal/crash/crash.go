// Package crash assembles the simulated platform (clock + CPU + heap +
// LLC + memory system) and provides the crash emulator of paper §III-A:
// run a workload, inject a crash at a chosen execution point, discard all
// volatile state, and hand the persistent NVM image to recovery code.
//
// Crash points are specified the same two ways as the paper's PIN tool:
//
//   - after a specific statement: the workload calls Trigger(name) at
//     the instrumented statement and the emulator crashes on the
//     configured occurrence of that name (the crash_sim_output() API);
//   - after a specific number of memory operations: profile a run to
//     learn the op count, then re-run with CrashAtOp.
//
// Both ways are unified by CrashPoint, the value an injection campaign
// arms with Emulator.Arm. Profile runs a workload with no crash armed
// and records its total op count and per-trigger occurrence counts; the
// resulting RunProfile enumerates deterministic seeded crash points for
// statistical fault-injection sweeps (internal/campaign).
package crash

import (
	"fmt"
	"math/rand"
	"sort"

	"adcc/internal/cache"
	"adcc/internal/mem"
	"adcc/internal/nvm"
	"adcc/internal/sim"
)

// SystemKind selects the paper's two NVM platforms.
type SystemKind int

const (
	// NVMOnly is the NVM-only system: NVM with the same performance as
	// DRAM, no DRAM cache (paper §III-A, optimistic configuration).
	NVMOnly SystemKind = iota
	// Hetero is the heterogeneous NVM/DRAM system: PCM-like NVM
	// (4x latency, 1/8 bandwidth) with a 32 MB DRAM page cache.
	Hetero
)

// String names the system kind as in the paper's figures.
func (k SystemKind) String() string {
	switch k {
	case NVMOnly:
		return "NVM-only"
	case Hetero:
		return "NVM/DRAM"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// MachineConfig describes a simulated platform.
type MachineConfig struct {
	System SystemKind
	// Cache configures the LLC; zero value means cache.DefaultConfig.
	Cache cache.Config
	// DRAMCacheBytes sizes the heterogeneous system's DRAM page cache;
	// zero means nvm.DefaultDRAMCacheBytes (32 MB, as in the paper).
	DRAMCacheBytes int
	// OpNS overrides the CPU per-operation cost; zero means the
	// sim.DefaultCPU value.
	OpNS float64
	// Flush selects the persistence instruction used by Persist.
	// The default is CLFLUSH, the only instruction available on the
	// paper's testbed.
	Flush FlushInstr
}

// FlushInstr selects the cache-line persistence instruction.
type FlushInstr int

const (
	// CLFLUSH writes back and invalidates the line (paper §II).
	CLFLUSH FlushInstr = iota
	// CLWB writes back and keeps the line resident — the instruction
	// the paper anticipates would further improve its approach.
	CLWB
)

// String names the instruction.
func (f FlushInstr) String() string {
	switch f {
	case CLFLUSH:
		return "CLFLUSH"
	case CLWB:
		return "CLWB"
	default:
		return fmt.Sprintf("FlushInstr(%d)", int(f))
	}
}

// Machine is one simulated NVM platform instance. All components share
// one simulated clock.
type Machine struct {
	Clock *sim.Clock
	CPU   *sim.CPU
	Heap  *mem.Heap
	LLC   *cache.Cache
	Mem   nvm.System

	kind MachineConfig
	aux  []AuxState
	// auxMarks memoizes the last RestoreCrash per aux component so
	// repeated restores of one snapshot skip untouched components.
	auxMarks []auxMark
}

// NewMachine builds a platform. The heap's accessor is the LLC, so every
// region access is cache-simulated from the start.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.Cache.SizeBytes == 0 {
		cfg.Cache = cache.DefaultConfig()
	}
	if cfg.DRAMCacheBytes == 0 {
		cfg.DRAMCacheBytes = nvm.DefaultDRAMCacheBytes
	}
	clock := &sim.Clock{}
	cpu := sim.DefaultCPU(clock)
	if cfg.OpNS > 0 {
		cpu.OpNS = cfg.OpNS
	}
	var system nvm.System
	switch cfg.System {
	case NVMOnly:
		system = nvm.NewUniform(nvm.DRAMLikeNVM())
	case Hetero:
		system = nvm.NewHetero(cfg.DRAMCacheBytes)
	default:
		panic(fmt.Sprintf("crash: unknown system kind %d", cfg.System))
	}
	heap := mem.NewHeap(nil)
	llc := cache.New(cfg.Cache, clock, system, heap)
	heap.SetAccessor(llc)
	return &Machine{Clock: clock, CPU: cpu, Heap: heap, LLC: llc, Mem: system, kind: cfg}
}

// System returns the machine's memory-system kind.
func (m *Machine) System() SystemKind { return m.kind.System }

// DRAMCacheBytes returns the size of the heterogeneous system's DRAM
// page cache (0 on NVM-only machines).
func (m *Machine) DRAMCacheBytes() int {
	if m.kind.System != Hetero {
		return 0
	}
	return m.kind.DRAMCacheBytes
}

// TierRegion registers a region as DRAM-tiered on the heterogeneous
// system; on NVM-only it is a no-op. Per the paper's data placement,
// large read-mostly inputs are tiered while persistence-critical objects
// stay NVM-direct.
func (m *Machine) TierRegion(r mem.Region) {
	if h, ok := m.Mem.(*nvm.Hetero); ok {
		h.SetTiered(r.Base(), r.Bytes())
	}
}

// Persist makes the byte range durable using the machine's configured
// persistence instruction (CLFLUSH or CLWB).
func (m *Machine) Persist(a mem.Addr, size int) {
	if m.kind.Flush == CLWB {
		m.LLC.FlushOpt(a, size)
		return
	}
	m.LLC.Flush(a, size)
}

// FlushRegion persists every line of a region.
func (m *Machine) FlushRegion(r mem.Region) {
	m.Persist(r.Base(), r.Bytes())
}

// ChargeNVMRead advances the clock by the cost of reading size bytes
// directly from the persistence domain (used by post-crash recovery,
// which runs with no warm cache).
func (m *Machine) ChargeNVMRead(size int) {
	m.Clock.Advance(m.Mem.PersistModel().ReadCost(size))
}

// ChargeNVMWrite advances the clock by the cost of writing size bytes
// directly to the persistence domain.
func (m *Machine) ChargeNVMWrite(size int) {
	m.Clock.Advance(m.Mem.PersistModel().WriteCost(size))
}

// AuxSnapshot is an opaque deep-copy snapshot of one auxiliary
// simulation component's state, produced by AuxState.SnapshotAux.
type AuxSnapshot interface {
	// EqualAux reports whether other captures identical state. Snapshot
	// deduplication (campaign replay) relies on it.
	EqualAux(other AuxSnapshot) bool
}

// AuxState is implemented by simulation components that carry mutable
// simulated state outside the machine's heap/cache/memory layers — the
// checkpointer's saved region copies, for example. Components register
// themselves with Machine.RegisterAux at construction so machine
// snapshots include them.
type AuxState interface {
	// SnapshotAux deep-copies the component's state. prev, when non-nil
	// and produced by the same component type, may donate its buffers;
	// implementations must tolerate a prev of any AuxSnapshot type.
	SnapshotAux(prev AuxSnapshot) AuxSnapshot
	// RestoreAux overwrites the component's state from a snapshot taken
	// from an identically-constructed component.
	RestoreAux(AuxSnapshot)
	// AuxVersion returns a counter that advances on every state
	// mutation. Like mem.Heap.ImageVersion, an unchanged version proves
	// the state is untouched; a changed version proves nothing about
	// contents.
	AuxVersion() uint64
}

// RegisterAux attaches an auxiliary state carrier to the machine's
// snapshots. Registration order must be deterministic (components
// register during workload construction), because Restore matches
// snapshots to carriers positionally.
func (m *Machine) RegisterAux(a AuxState) { m.aux = append(m.aux, a) }

// MachineState is a deep-copy snapshot of a Machine's entire simulation
// state: simulated time, CPU remainder, all region live and image
// contents, the LLC directory, the memory system's volatile tier, and
// every registered auxiliary component. Capture with Snapshot, apply
// with Restore.
type MachineState struct {
	ClockNS int64
	CPURem  float64
	Heap    *mem.HeapState
	Cache   *cache.State
	Mem     *nvm.SystemState
	Aux     []AuxSnapshot
}

// StateVersion sums the mutation counters of every crash-surviving
// state layer: the heap's image version and each registered auxiliary
// component's version. All addends are monotone, so two observations
// with equal versions bracket an interval in which no persistent state
// changed — the O(1) fast path that lets campaign replay assign
// consecutive crash points to one snapshot class without comparing
// state contents.
func (m *Machine) StateVersion() uint64 {
	v := m.Heap.ImageVersion()
	for _, a := range m.aux {
		v += a.AuxVersion()
	}
	return v
}

// Snapshot captures the machine's full simulation state.
func (m *Machine) Snapshot() *MachineState { return m.SnapshotInto(nil) }

// SnapshotInto captures the machine's full simulation state into st and
// returns it. A nil st allocates a fresh state; a non-nil st reuses its
// buffers, so a pooled state snapshots with few or no allocations.
func (m *Machine) SnapshotInto(st *MachineState) *MachineState {
	if st == nil {
		st = &MachineState{}
	}
	st.ClockNS = m.Clock.Now()
	st.CPURem = m.CPU.Remainder()
	st.Heap = m.Heap.Snapshot(st.Heap)
	st.Cache = m.LLC.Snapshot(st.Cache)
	st.Mem = m.Mem.Snapshot(st.Mem)
	if cap(st.Aux) < len(m.aux) {
		st.Aux = make([]AuxSnapshot, len(m.aux))
	} else {
		st.Aux = st.Aux[:len(m.aux)]
	}
	for i, a := range m.aux {
		st.Aux[i] = a.SnapshotAux(st.Aux[i])
	}
	return st
}

// Restore overwrites the machine's full simulation state from st. The
// machine must be structurally identical to the one st was captured
// from: same platform configuration, same region allocation history,
// and the same auxiliary components registered in the same order — in
// practice, a machine built by re-running the same construction code.
// Restore rewinds a fork to a captured instant; it is not a resumption
// mechanism for arbitrary machines, and a structural mismatch panics.
func (m *Machine) Restore(st *MachineState) {
	if len(st.Aux) != len(m.aux) {
		panic(fmt.Sprintf("crash: restore of %d aux snapshots onto %d registered carriers",
			len(st.Aux), len(m.aux)))
	}
	m.Clock.SetNow(st.ClockNS)
	m.CPU.SetRemainder(st.CPURem)
	m.Heap.Restore(st.Heap)
	m.LLC.Restore(st.Cache)
	m.Mem.Restore(st.Mem)
	for i, a := range m.aux {
		a.RestoreAux(st.Aux[i])
	}
}

// Equal reports whether two snapshots capture identical machine state.
func (a *MachineState) Equal(b *MachineState) bool {
	if a.ClockNS != b.ClockNS || a.CPURem != b.CPURem {
		return false
	}
	if !a.Heap.Equal(b.Heap) || !a.Cache.Equal(b.Cache) || !a.Mem.Equal(b.Mem) {
		return false
	}
	if len(a.Aux) != len(b.Aux) {
		return false
	}
	for i := range a.Aux {
		if !a.Aux[i].EqualAux(b.Aux[i]) {
			return false
		}
	}
	return true
}

// CrashState is the post-crash subset of a machine snapshot: the
// persistent region images (copy-on-write, shared across captures whose
// regions did not change) and the auxiliary component snapshots. It is
// sufficient to reproduce any run that begins with a crash, because
// Crash discards every other state layer — cache directory, volatile
// memory tier, live region values, CPU remainder. Campaign replay
// captures one CrashState per injection point and restores it with
// RestoreCrash, which costs almost nothing when consecutive points
// share persistent state.
type CrashState struct {
	Img *mem.ImageState
	Aux []AuxSnapshot

	// Overlay is the fault-model image mutation of this crash point
	// (nil for clean fail-stop): RestoreCrash applies it on top of the
	// restored images, and it participates in Hash and Equal so
	// equivalence-class deduplication keys on the torn/reordered bytes.
	// Captured by CrashSnapshotFault.
	Overlay []FaultWrite

	// auxVers are the components' AuxVersion values at capture time,
	// used to share unchanged aux snapshots across captures.
	auxVers []uint64
	hash    uint64
}

// CrashSnapshot captures the machine's post-crash state. If prev is a
// snapshot of the same machine, unchanged regions and unchanged aux
// components share prev's entries instead of copying, so a capture
// between two crash points that persisted little is nearly free.
func (m *Machine) CrashSnapshot(prev *CrashState) *CrashState {
	st := &CrashState{
		Aux:     make([]AuxSnapshot, len(m.aux)),
		auxVers: make([]uint64, len(m.aux)),
	}
	var prevImg *mem.ImageState
	if prev != nil {
		prevImg = prev.Img
	}
	st.Img = m.Heap.SnapshotImages(prevImg)
	st.hash = st.Img.Hash()
	for i, a := range m.aux {
		v := a.AuxVersion()
		if prev != nil && i < len(prev.Aux) && prev.auxVers[i] == v {
			st.Aux[i] = prev.Aux[i]
		} else {
			// Shared snapshots are immutable; never donate one as a
			// buffer for the next capture.
			st.Aux[i] = a.SnapshotAux(nil)
		}
		st.auxVers[i] = v
	}
	return st
}

// Hash returns a content hash of the persistent images, a cheap
// prefilter for Equal-based deduplication. Aux state is not mixed in
// (aux contents hash less cheaply); Equal compares it exactly.
func (a *CrashState) Hash() uint64 { return a.hash }

// Equal reports whether two crash states capture identical post-crash
// machine state. Overlays compare structurally: an equal base image
// under an equal overlay yields an equal post-crash image, so equality
// here is sufficient for replay deduplication (two states whose
// different overlays happen to cancel are conservatively kept apart).
func (a *CrashState) Equal(b *CrashState) bool {
	if !a.Img.Equal(b.Img) || len(a.Aux) != len(b.Aux) || len(a.Overlay) != len(b.Overlay) {
		return false
	}
	for i := range a.Overlay {
		if a.Overlay[i] != b.Overlay[i] {
			return false
		}
	}
	for i := range a.Aux {
		if a.Aux[i] != b.Aux[i] && !a.Aux[i].EqualAux(b.Aux[i]) {
			return false
		}
	}
	return true
}

// RestoreCrash puts the machine into the post-crash state captured in
// st: persistent images and live values are overwritten from the
// snapshot (folding the restart-from-image step in), auxiliary
// components are restored, and the volatile layers — cache directory,
// microarchitectural state, volatile memory tier — are reset exactly as
// Crash resets them. The simulated clock is NOT touched: a fork reports
// only clock deltas, so it may resume from any absolute time.
//
// Restores are memoized: restoring the same CrashState onto a machine
// whose persistent state was not touched since skips the data copies
// entirely, which is the common case when a fork ends in
// state-restoring recovery.
func (m *Machine) RestoreCrash(st *CrashState) {
	if len(st.Aux) != len(m.aux) {
		panic(fmt.Sprintf("crash: restore of %d aux snapshots onto %d registered carriers",
			len(st.Aux), len(m.aux)))
	}
	m.Heap.RestoreImages(st.Img)
	// Fault overlay: the torn/reordered/flipped words of this crash
	// point, applied on top of the restored images. The word stores
	// bump region versions past the restore marks, so a later restore
	// of a different snapshot provably re-copies the mutated regions.
	m.applyOverlay(st.Overlay)
	if len(m.auxMarks) != len(m.aux) {
		m.auxMarks = make([]auxMark, len(m.aux))
	}
	for i, a := range m.aux {
		mk := &m.auxMarks[i]
		if mk.snap == st.Aux[i] && a.AuxVersion() == mk.ver {
			continue
		}
		a.RestoreAux(st.Aux[i])
		// Record the version after the restore so an untouched component
		// can prove it still holds this snapshot's state.
		*mk = auxMark{snap: st.Aux[i], ver: a.AuxVersion()}
	}
	m.LLC.DiscardAll()
	m.LLC.ResetVolatile()
	m.Mem.Reset()
	m.CPU.SetRemainder(0)
}

// auxMark memoizes the last RestoreCrash source snapshot per aux
// component; see mem.Heap's restore memoization for the scheme.
type auxMark struct {
	snap AuxSnapshot
	ver  uint64
}

// crashSignal is the sentinel panic value used for crash injection.
type crashSignal struct {
	ops     int64
	trigger string
}

// Emulator injects crashes into workloads running on a Machine.
type Emulator struct {
	M *Machine

	ops        int64
	crashAtOp  int64 // crash when ops reaches this; 0 = disarmed
	trigName   string
	trigTarget int // occurrence number to crash at; 0 = disarmed
	trigSeen   int

	crashed     bool
	crashOps    int64
	crashTrig   string
	prevAcc     mem.Accessor
	installedAt mem.Accessor

	// profile, when non-nil, counts every Trigger call by name
	// (installed by Profile runs).
	profile map[string]int

	// rec, when non-nil, pauses execution at scheduled crash points to
	// let a callback capture machine snapshots (installed by Record).
	rec *recording

	// fault is the crash-time fault model (zero = clean fail-stop);
	// faultErr records a model that could not be applied at the most
	// recent crash. See SetFault / FaultErr in fault.go.
	fault    FaultModel
	faultErr error

	// OnCrash, if set, runs at the crash point before any volatile
	// state is discarded — the hook the crash_sim_output() API of the
	// paper's PIN tool uses to dump cache and memory contents.
	OnCrash func(*Machine)
}

// NewEmulator wraps a machine with crash-injection instrumentation.
func NewEmulator(m *Machine) *Emulator {
	return &Emulator{M: m}
}

// CrashAtOp arms a crash after n memory operations (element-granularity
// loads/stores) have been issued, counted from the next Run.
func (e *Emulator) CrashAtOp(n int64) {
	e.crashAtOp = n
}

// CrashPoint names one injection site in either of the emulator's two
// coordinate systems: an absolute memory-operation count (Op > 0), or
// the Occurrence-th call to Trigger(Trigger). A zero CrashPoint is
// disarmed.
type CrashPoint struct {
	// Op crashes after this many memory operations (0 = use Trigger).
	Op int64 `json:"op,omitempty"`
	// Trigger and Occurrence crash at the Occurrence-th call to
	// Trigger(Trigger); occurrences are 1-based.
	Trigger    string `json:"trigger,omitempty"`
	Occurrence int    `json:"occurrence,omitempty"`
}

// String renders the point for logs and reports.
func (p CrashPoint) String() string {
	if p.Op > 0 {
		return fmt.Sprintf("op=%d", p.Op)
	}
	if p.Occurrence > 0 {
		return fmt.Sprintf("%s#%d", p.Trigger, p.Occurrence)
	}
	return "disarmed"
}

// Arm configures the emulator to crash at p on the next Run, replacing
// any previously armed point.
func (e *Emulator) Arm(p CrashPoint) {
	e.crashAtOp = p.Op
	e.trigName = p.Trigger
	e.trigTarget = p.Occurrence
}

// Disarm clears any armed crash point, so subsequent Runs complete
// (while still counting ops — recovery campaigns use this to measure
// rework after a crash).
func (e *Emulator) Disarm() {
	e.crashAtOp = 0
	e.trigName = ""
	e.trigTarget = 0
}

// TriggerCount is one named program point and how many times a profiled
// run passed it.
type TriggerCount struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// RunProfile is the crash-point coordinate space of one workload
// execution: the total memory-operation count and every named trigger
// with its occurrence count, sorted by name.
type RunProfile struct {
	Ops      int64          `json:"ops"`
	Triggers []TriggerCount `json:"triggers,omitempty"`
}

// Profile executes the workload with op counting installed but no crash
// armed, and returns the observed crash-point space. Any previously
// armed point is preserved and re-armed afterwards, and the machine is
// left in the workload's completed state — callers wanting a fresh
// platform for subsequent injections must rebuild it.
func (e *Emulator) Profile(workload func()) RunProfile {
	saved := CrashPoint{Op: e.crashAtOp, Trigger: e.trigName, Occurrence: e.trigTarget}
	e.Disarm()
	e.profile = map[string]int{}
	defer func() {
		e.profile = nil
		e.Arm(saved)
	}()
	e.Run(workload)
	p := RunProfile{Ops: e.ops}
	for name, c := range e.profile {
		p.Triggers = append(p.Triggers, TriggerCount{Name: name, Count: c})
	}
	sort.Slice(p.Triggers, func(i, j int) bool { return p.Triggers[i].Name < p.Triggers[j].Name })
	return p
}

// MainTriggerOps estimates the op cost of one main-loop iteration: the
// total op count divided by the occurrence count of the most frequent
// trigger. Campaigns use it as the granularity against which rework is
// judged. Returns Ops when the profile saw no triggers.
func (p RunProfile) MainTriggerOps() int64 {
	max := 0
	for _, t := range p.Triggers {
		if t.Count > max {
			max = t.Count
		}
	}
	if max == 0 {
		return p.Ops
	}
	return p.Ops / int64(max)
}

// Points enumerates n deterministic crash points from the profile under
// a seed: even indices are uniform random op counts in [1, Ops], odd
// indices are random occurrences of the profiled triggers (round-robin
// across trigger names). With no triggers profiled, every point is an
// op-count point. The same profile and seed always yield the same
// points, independent of host or execution order.
//
// Triggers with non-positive occurrence counts are skipped: Profile
// never records them, but Points also accepts hand-built profiles
// (asserted by FuzzProfilePoints), and a zero-count trigger names no
// crashable occurrence.
func (p RunProfile) Points(n int, seed int64) []CrashPoint {
	if n <= 0 || p.Ops <= 0 {
		return nil
	}
	var trigs []TriggerCount
	for _, t := range p.Triggers {
		if t.Count > 0 {
			trigs = append(trigs, t)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]CrashPoint, 0, n)
	ti := 0
	for i := 0; i < n; i++ {
		if i%2 == 1 && len(trigs) > 0 {
			t := trigs[ti%len(trigs)]
			ti++
			out = append(out, CrashPoint{
				Trigger:    t.Name,
				Occurrence: 1 + rng.Intn(t.Count),
			})
			continue
		}
		out = append(out, CrashPoint{Op: 1 + rng.Int63n(p.Ops)})
	}
	return out
}

// CrashAtTrigger arms a crash at the occurrence-th call to
// Trigger(name). Occurrences are 1-based.
func (e *Emulator) CrashAtTrigger(name string, occurrence int) {
	e.trigName = name
	e.trigTarget = occurrence
}

// Trigger is called by instrumented workloads at named program points
// (the crash_sim_output() API of the paper's PIN tool). If the armed
// trigger matches, the crash fires here.
func (e *Emulator) Trigger(name string) {
	if e.profile != nil {
		e.profile[name]++
	}
	if e.rec != nil {
		if t := e.rec.trig[name]; t != nil {
			t.seen++
			for _, pi := range t.occ[t.seen] {
				e.rec.capture(pi)
			}
		}
	}
	if e.trigTarget <= 0 || name != e.trigName {
		return
	}
	e.trigSeen++
	if e.trigSeen == e.trigTarget {
		panic(crashSignal{ops: e.ops, trigger: name})
	}
}

// EmulatorState is a snapshot of the emulator's injection counters. It
// is separate from MachineState because forks typically want a fresh
// emulator (Run resets the counters), but tooling that suspends and
// resumes an emulator mid-flight can carry them across.
type EmulatorState struct {
	Ops       int64
	TrigSeen  int
	Crashed   bool
	CrashOps  int64
	CrashTrig string
}

// Snapshot captures the emulator's counters.
func (e *Emulator) Snapshot() EmulatorState {
	return EmulatorState{
		Ops: e.ops, TrigSeen: e.trigSeen,
		Crashed: e.crashed, CrashOps: e.crashOps, CrashTrig: e.crashTrig,
	}
}

// Restore overwrites the emulator's counters from st. The armed crash
// point is left untouched (it is configuration, not run state).
func (e *Emulator) Restore(st EmulatorState) {
	e.ops = st.Ops
	e.trigSeen = st.TrigSeen
	e.crashed = st.Crashed
	e.crashOps = st.CrashOps
	e.crashTrig = st.CrashTrig
}

// OpCount returns the number of memory operations observed so far in the
// current or most recent Run (including profiling runs).
func (e *Emulator) OpCount() int64 { return e.ops }

// Crashed reports whether the most recent Run ended in an injected crash.
func (e *Emulator) Crashed() bool { return e.crashed }

// CrashOps returns the op count at which the most recent crash fired.
func (e *Emulator) CrashOps() int64 { return e.crashOps }

// CrashTrigger returns the trigger name of the most recent crash ("" for
// op-count crashes).
func (e *Emulator) CrashTrigger() string { return e.crashTrig }

// countingAccessor interposes op counting and op-count crash points
// between the heap and the LLC.
type countingAccessor struct {
	e     *Emulator
	inner mem.Accessor
}

func (c *countingAccessor) Load(a mem.Addr, size int) {
	c.e.tick()
	c.inner.Load(a, size)
}

func (c *countingAccessor) Store(a mem.Addr, size int) {
	c.e.tick()
	c.inner.Store(a, size)
}

func (e *Emulator) tick() {
	e.ops++
	if r := e.rec; r != nil && r.opCursor < len(r.ops) && r.ops[r.opCursor] == e.ops {
		for _, pi := range r.opIdx[e.ops] {
			r.capture(pi)
		}
		r.opCursor++
	}
	if e.crashAtOp > 0 && e.ops == e.crashAtOp {
		panic(crashSignal{ops: e.ops})
	}
}

// recording is the state of one Record run: the scheduled op-count
// points (sorted, deduplicated) with a cursor, the trigger-occurrence
// points keyed by name, and the snapshot callback.
type recording struct {
	ops      []int64
	opCursor int
	opIdx    map[int64][]int
	trig     map[string]*trigRecording
	capture  func(pointIdx int)
}

type trigRecording struct {
	occ  map[int][]int
	seen int
}

// Record executes the workload uncrashed, pausing at every point in
// points to invoke capture with the point's index — at exactly the
// instant an armed crash at that point would have fired (after the op
// count increments, before the access reaches the cache; at the
// matching Trigger call). capture typically snapshots the machine; it
// must not issue simulated accesses. Points the execution never
// reaches are not captured. Any armed crash point is suspended for the
// duration and re-armed afterwards.
func (e *Emulator) Record(workload func(), points []CrashPoint, capture func(pointIdx int)) {
	rec := &recording{
		opIdx:   make(map[int64][]int),
		trig:    make(map[string]*trigRecording),
		capture: capture,
	}
	for i, p := range points {
		switch {
		case p.Op > 0:
			if _, seen := rec.opIdx[p.Op]; !seen {
				rec.ops = append(rec.ops, p.Op)
			}
			rec.opIdx[p.Op] = append(rec.opIdx[p.Op], i)
		case p.Occurrence > 0:
			t := rec.trig[p.Trigger]
			if t == nil {
				t = &trigRecording{occ: make(map[int][]int)}
				rec.trig[p.Trigger] = t
			}
			t.occ[p.Occurrence] = append(t.occ[p.Occurrence], i)
		}
	}
	sort.Slice(rec.ops, func(i, j int) bool { return rec.ops[i] < rec.ops[j] })

	saved := CrashPoint{Op: e.crashAtOp, Trigger: e.trigName, Occurrence: e.trigTarget}
	e.Disarm()
	e.rec = rec
	defer func() {
		e.rec = nil
		e.Arm(saved)
	}()
	e.Run(workload)
}

// Run executes the workload with crash instrumentation installed.
// It returns true if an armed crash fired, in which case the machine has
// already gone through the full crash protocol: the LLC is discarded
// (dirty lines lost), the memory system's volatile tier is reset, and
// every region's live data has been replaced by its NVM image — the
// state a restarted process would observe. Panics other than the crash
// sentinel propagate.
func (e *Emulator) Run(workload func()) (crashed bool) {
	e.ops = 0
	e.trigSeen = 0
	e.crashed = false
	e.crashOps = 0
	e.crashTrig = ""
	e.faultErr = nil

	e.prevAcc = e.M.Heap.Accessor()
	counting := &countingAccessor{e: e, inner: e.prevAcc}
	e.M.Heap.SetAccessor(counting)
	defer e.M.Heap.SetAccessor(e.prevAcc)

	defer func() {
		if r := recover(); r != nil {
			sig, ok := r.(crashSignal)
			if !ok {
				panic(r)
			}
			e.crashed = true
			e.crashOps = sig.ops
			e.crashTrig = sig.trigger
			if e.OnCrash != nil {
				e.OnCrash(e.M)
			}
			// The crash op count seeds the fault lottery, so the same
			// point under the same model tears/reorders identically in
			// this engine and in campaign replay. An inapplicable model
			// leaves a fail-stop crash and is reported via FaultErr.
			e.faultErr = e.M.CrashWithFault(e.fault, sig.ops)
			crashed = true
		}
	}()
	workload()
	return e.crashed
}

// Crash executes the machine-level crash-and-restart protocol: the LLC
// is discarded (dirty lines lost) along with its cold-start
// microarchitectural state (LRU clock, prefetcher streams), the memory
// system's volatile tier is reset, every region's live data is replaced
// by its NVM image, and the CPU's sub-nanosecond remainder is dropped.
// After Crash the machine's observable state is a function of the
// persistent images and the registered auxiliary components alone —
// the invariant the campaign's snapshot-replay engine deduplicates on.
func (m *Machine) Crash() {
	m.LLC.DiscardAll()
	m.LLC.ResetVolatile()
	m.Mem.Reset()
	m.Heap.RestartFromImage()
	m.CPU.SetRemainder(0)
}

// InjectCrashNow can be called by tests or workloads to crash
// unconditionally at the current point. It must run inside Emulator.Run.
func InjectCrashNow() {
	panic(crashSignal{})
}
