// Package crash assembles the simulated platform (clock + CPU + heap +
// LLC + memory system) and provides the crash emulator of paper §III-A:
// run a workload, inject a crash at a chosen execution point, discard all
// volatile state, and hand the persistent NVM image to recovery code.
//
// Crash points are specified the same two ways as the paper's PIN tool:
//
//   - after a specific statement: the workload calls Trigger(name) at
//     the instrumented statement and the emulator crashes on the
//     configured occurrence of that name (the crash_sim_output() API);
//   - after a specific number of memory operations: profile a run to
//     learn the op count, then re-run with CrashAtOp.
//
// Both ways are unified by CrashPoint, the value an injection campaign
// arms with Emulator.Arm. Profile runs a workload with no crash armed
// and records its total op count and per-trigger occurrence counts; the
// resulting RunProfile enumerates deterministic seeded crash points for
// statistical fault-injection sweeps (internal/campaign).
package crash

import (
	"fmt"
	"math/rand"
	"sort"

	"adcc/internal/cache"
	"adcc/internal/mem"
	"adcc/internal/nvm"
	"adcc/internal/sim"
)

// SystemKind selects the paper's two NVM platforms.
type SystemKind int

const (
	// NVMOnly is the NVM-only system: NVM with the same performance as
	// DRAM, no DRAM cache (paper §III-A, optimistic configuration).
	NVMOnly SystemKind = iota
	// Hetero is the heterogeneous NVM/DRAM system: PCM-like NVM
	// (4x latency, 1/8 bandwidth) with a 32 MB DRAM page cache.
	Hetero
)

// String names the system kind as in the paper's figures.
func (k SystemKind) String() string {
	switch k {
	case NVMOnly:
		return "NVM-only"
	case Hetero:
		return "NVM/DRAM"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// MachineConfig describes a simulated platform.
type MachineConfig struct {
	System SystemKind
	// Cache configures the LLC; zero value means cache.DefaultConfig.
	Cache cache.Config
	// DRAMCacheBytes sizes the heterogeneous system's DRAM page cache;
	// zero means nvm.DefaultDRAMCacheBytes (32 MB, as in the paper).
	DRAMCacheBytes int
	// OpNS overrides the CPU per-operation cost; zero means the
	// sim.DefaultCPU value.
	OpNS float64
	// Flush selects the persistence instruction used by Persist.
	// The default is CLFLUSH, the only instruction available on the
	// paper's testbed.
	Flush FlushInstr
}

// FlushInstr selects the cache-line persistence instruction.
type FlushInstr int

const (
	// CLFLUSH writes back and invalidates the line (paper §II).
	CLFLUSH FlushInstr = iota
	// CLWB writes back and keeps the line resident — the instruction
	// the paper anticipates would further improve its approach.
	CLWB
)

// String names the instruction.
func (f FlushInstr) String() string {
	switch f {
	case CLFLUSH:
		return "CLFLUSH"
	case CLWB:
		return "CLWB"
	default:
		return fmt.Sprintf("FlushInstr(%d)", int(f))
	}
}

// Machine is one simulated NVM platform instance. All components share
// one simulated clock.
type Machine struct {
	Clock *sim.Clock
	CPU   *sim.CPU
	Heap  *mem.Heap
	LLC   *cache.Cache
	Mem   nvm.System

	kind MachineConfig
}

// NewMachine builds a platform. The heap's accessor is the LLC, so every
// region access is cache-simulated from the start.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.Cache.SizeBytes == 0 {
		cfg.Cache = cache.DefaultConfig()
	}
	if cfg.DRAMCacheBytes == 0 {
		cfg.DRAMCacheBytes = nvm.DefaultDRAMCacheBytes
	}
	clock := &sim.Clock{}
	cpu := sim.DefaultCPU(clock)
	if cfg.OpNS > 0 {
		cpu.OpNS = cfg.OpNS
	}
	var system nvm.System
	switch cfg.System {
	case NVMOnly:
		system = nvm.NewUniform(nvm.DRAMLikeNVM())
	case Hetero:
		system = nvm.NewHetero(cfg.DRAMCacheBytes)
	default:
		panic(fmt.Sprintf("crash: unknown system kind %d", cfg.System))
	}
	heap := mem.NewHeap(nil)
	llc := cache.New(cfg.Cache, clock, system, heap)
	heap.SetAccessor(llc)
	return &Machine{Clock: clock, CPU: cpu, Heap: heap, LLC: llc, Mem: system, kind: cfg}
}

// System returns the machine's memory-system kind.
func (m *Machine) System() SystemKind { return m.kind.System }

// DRAMCacheBytes returns the size of the heterogeneous system's DRAM
// page cache (0 on NVM-only machines).
func (m *Machine) DRAMCacheBytes() int {
	if m.kind.System != Hetero {
		return 0
	}
	return m.kind.DRAMCacheBytes
}

// TierRegion registers a region as DRAM-tiered on the heterogeneous
// system; on NVM-only it is a no-op. Per the paper's data placement,
// large read-mostly inputs are tiered while persistence-critical objects
// stay NVM-direct.
func (m *Machine) TierRegion(r mem.Region) {
	if h, ok := m.Mem.(*nvm.Hetero); ok {
		h.SetTiered(r.Base(), r.Bytes())
	}
}

// Persist makes the byte range durable using the machine's configured
// persistence instruction (CLFLUSH or CLWB).
func (m *Machine) Persist(a mem.Addr, size int) {
	if m.kind.Flush == CLWB {
		m.LLC.FlushOpt(a, size)
		return
	}
	m.LLC.Flush(a, size)
}

// FlushRegion persists every line of a region.
func (m *Machine) FlushRegion(r mem.Region) {
	m.Persist(r.Base(), r.Bytes())
}

// ChargeNVMRead advances the clock by the cost of reading size bytes
// directly from the persistence domain (used by post-crash recovery,
// which runs with no warm cache).
func (m *Machine) ChargeNVMRead(size int) {
	m.Clock.Advance(m.Mem.PersistModel().ReadCost(size))
}

// ChargeNVMWrite advances the clock by the cost of writing size bytes
// directly to the persistence domain.
func (m *Machine) ChargeNVMWrite(size int) {
	m.Clock.Advance(m.Mem.PersistModel().WriteCost(size))
}

// crashSignal is the sentinel panic value used for crash injection.
type crashSignal struct {
	ops     int64
	trigger string
}

// Emulator injects crashes into workloads running on a Machine.
type Emulator struct {
	M *Machine

	ops        int64
	crashAtOp  int64 // crash when ops reaches this; 0 = disarmed
	trigName   string
	trigTarget int // occurrence number to crash at; 0 = disarmed
	trigSeen   int

	crashed     bool
	crashOps    int64
	crashTrig   string
	prevAcc     mem.Accessor
	installedAt mem.Accessor

	// profile, when non-nil, counts every Trigger call by name
	// (installed by Profile runs).
	profile map[string]int

	// OnCrash, if set, runs at the crash point before any volatile
	// state is discarded — the hook the crash_sim_output() API of the
	// paper's PIN tool uses to dump cache and memory contents.
	OnCrash func(*Machine)
}

// NewEmulator wraps a machine with crash-injection instrumentation.
func NewEmulator(m *Machine) *Emulator {
	return &Emulator{M: m}
}

// CrashAtOp arms a crash after n memory operations (element-granularity
// loads/stores) have been issued, counted from the next Run.
func (e *Emulator) CrashAtOp(n int64) {
	e.crashAtOp = n
}

// CrashPoint names one injection site in either of the emulator's two
// coordinate systems: an absolute memory-operation count (Op > 0), or
// the Occurrence-th call to Trigger(Trigger). A zero CrashPoint is
// disarmed.
type CrashPoint struct {
	// Op crashes after this many memory operations (0 = use Trigger).
	Op int64 `json:"op,omitempty"`
	// Trigger and Occurrence crash at the Occurrence-th call to
	// Trigger(Trigger); occurrences are 1-based.
	Trigger    string `json:"trigger,omitempty"`
	Occurrence int    `json:"occurrence,omitempty"`
}

// String renders the point for logs and reports.
func (p CrashPoint) String() string {
	if p.Op > 0 {
		return fmt.Sprintf("op=%d", p.Op)
	}
	if p.Occurrence > 0 {
		return fmt.Sprintf("%s#%d", p.Trigger, p.Occurrence)
	}
	return "disarmed"
}

// Arm configures the emulator to crash at p on the next Run, replacing
// any previously armed point.
func (e *Emulator) Arm(p CrashPoint) {
	e.crashAtOp = p.Op
	e.trigName = p.Trigger
	e.trigTarget = p.Occurrence
}

// Disarm clears any armed crash point, so subsequent Runs complete
// (while still counting ops — recovery campaigns use this to measure
// rework after a crash).
func (e *Emulator) Disarm() {
	e.crashAtOp = 0
	e.trigName = ""
	e.trigTarget = 0
}

// TriggerCount is one named program point and how many times a profiled
// run passed it.
type TriggerCount struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// RunProfile is the crash-point coordinate space of one workload
// execution: the total memory-operation count and every named trigger
// with its occurrence count, sorted by name.
type RunProfile struct {
	Ops      int64          `json:"ops"`
	Triggers []TriggerCount `json:"triggers,omitempty"`
}

// Profile executes the workload with op counting installed but no crash
// armed, and returns the observed crash-point space. Any previously
// armed point is preserved and re-armed afterwards, and the machine is
// left in the workload's completed state — callers wanting a fresh
// platform for subsequent injections must rebuild it.
func (e *Emulator) Profile(workload func()) RunProfile {
	saved := CrashPoint{Op: e.crashAtOp, Trigger: e.trigName, Occurrence: e.trigTarget}
	e.Disarm()
	e.profile = map[string]int{}
	defer func() {
		e.profile = nil
		e.Arm(saved)
	}()
	e.Run(workload)
	p := RunProfile{Ops: e.ops}
	for name, c := range e.profile {
		p.Triggers = append(p.Triggers, TriggerCount{Name: name, Count: c})
	}
	sort.Slice(p.Triggers, func(i, j int) bool { return p.Triggers[i].Name < p.Triggers[j].Name })
	return p
}

// MainTriggerOps estimates the op cost of one main-loop iteration: the
// total op count divided by the occurrence count of the most frequent
// trigger. Campaigns use it as the granularity against which rework is
// judged. Returns Ops when the profile saw no triggers.
func (p RunProfile) MainTriggerOps() int64 {
	max := 0
	for _, t := range p.Triggers {
		if t.Count > max {
			max = t.Count
		}
	}
	if max == 0 {
		return p.Ops
	}
	return p.Ops / int64(max)
}

// Points enumerates n deterministic crash points from the profile under
// a seed: even indices are uniform random op counts in [1, Ops], odd
// indices are random occurrences of the profiled triggers (round-robin
// across trigger names). With no triggers profiled, every point is an
// op-count point. The same profile and seed always yield the same
// points, independent of host or execution order.
//
// Triggers with non-positive occurrence counts are skipped: Profile
// never records them, but Points also accepts hand-built profiles
// (asserted by FuzzProfilePoints), and a zero-count trigger names no
// crashable occurrence.
func (p RunProfile) Points(n int, seed int64) []CrashPoint {
	if n <= 0 || p.Ops <= 0 {
		return nil
	}
	var trigs []TriggerCount
	for _, t := range p.Triggers {
		if t.Count > 0 {
			trigs = append(trigs, t)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]CrashPoint, 0, n)
	ti := 0
	for i := 0; i < n; i++ {
		if i%2 == 1 && len(trigs) > 0 {
			t := trigs[ti%len(trigs)]
			ti++
			out = append(out, CrashPoint{
				Trigger:    t.Name,
				Occurrence: 1 + rng.Intn(t.Count),
			})
			continue
		}
		out = append(out, CrashPoint{Op: 1 + rng.Int63n(p.Ops)})
	}
	return out
}

// CrashAtTrigger arms a crash at the occurrence-th call to
// Trigger(name). Occurrences are 1-based.
func (e *Emulator) CrashAtTrigger(name string, occurrence int) {
	e.trigName = name
	e.trigTarget = occurrence
}

// Trigger is called by instrumented workloads at named program points
// (the crash_sim_output() API of the paper's PIN tool). If the armed
// trigger matches, the crash fires here.
func (e *Emulator) Trigger(name string) {
	if e.profile != nil {
		e.profile[name]++
	}
	if e.trigTarget <= 0 || name != e.trigName {
		return
	}
	e.trigSeen++
	if e.trigSeen == e.trigTarget {
		panic(crashSignal{ops: e.ops, trigger: name})
	}
}

// OpCount returns the number of memory operations observed so far in the
// current or most recent Run (including profiling runs).
func (e *Emulator) OpCount() int64 { return e.ops }

// Crashed reports whether the most recent Run ended in an injected crash.
func (e *Emulator) Crashed() bool { return e.crashed }

// CrashOps returns the op count at which the most recent crash fired.
func (e *Emulator) CrashOps() int64 { return e.crashOps }

// CrashTrigger returns the trigger name of the most recent crash ("" for
// op-count crashes).
func (e *Emulator) CrashTrigger() string { return e.crashTrig }

// countingAccessor interposes op counting and op-count crash points
// between the heap and the LLC.
type countingAccessor struct {
	e     *Emulator
	inner mem.Accessor
}

func (c *countingAccessor) Load(a mem.Addr, size int) {
	c.e.tick()
	c.inner.Load(a, size)
}

func (c *countingAccessor) Store(a mem.Addr, size int) {
	c.e.tick()
	c.inner.Store(a, size)
}

func (e *Emulator) tick() {
	e.ops++
	if e.crashAtOp > 0 && e.ops == e.crashAtOp {
		panic(crashSignal{ops: e.ops})
	}
}

// Run executes the workload with crash instrumentation installed.
// It returns true if an armed crash fired, in which case the machine has
// already gone through the full crash protocol: the LLC is discarded
// (dirty lines lost), the memory system's volatile tier is reset, and
// every region's live data has been replaced by its NVM image — the
// state a restarted process would observe. Panics other than the crash
// sentinel propagate.
func (e *Emulator) Run(workload func()) (crashed bool) {
	e.ops = 0
	e.trigSeen = 0
	e.crashed = false
	e.crashOps = 0
	e.crashTrig = ""

	e.prevAcc = e.M.Heap.Accessor()
	counting := &countingAccessor{e: e, inner: e.prevAcc}
	e.M.Heap.SetAccessor(counting)
	defer e.M.Heap.SetAccessor(e.prevAcc)

	defer func() {
		if r := recover(); r != nil {
			sig, ok := r.(crashSignal)
			if !ok {
				panic(r)
			}
			e.crashed = true
			e.crashOps = sig.ops
			e.crashTrig = sig.trigger
			if e.OnCrash != nil {
				e.OnCrash(e.M)
			}
			e.M.crash()
			crashed = true
		}
	}()
	workload()
	return e.crashed
}

// crash executes the machine-level crash protocol.
func (m *Machine) crash() {
	m.LLC.DiscardAll()
	m.Mem.Reset()
	m.Heap.RestartFromImage()
}

// InjectCrashNow can be called by tests or workloads to crash
// unconditionally at the current point. It must run inside Emulator.Run.
func InjectCrashNow() {
	panic(crashSignal{})
}
