// Fault and persistency models layered over the machine crash protocol.
//
// The baseline Machine.Crash models exactly one failure: every dirty LLC
// line vanishes and the NVM image alone survives (clean fail-stop). Real
// NVM failure semantics are weaker — 8-byte persist atomicity lets an
// in-flight flush tear mid-line, relaxed persist ordering drains dirty
// lines out of program order between fences, eADR platforms drain the
// whole cache on power failure, and media errors flip bits silently. A
// FaultModel selects one of those semantics; its effect is expressed as
// a deterministic word-level *overlay* ([]FaultWrite) computed from the
// pre-crash machine state (the sorted dirty-line set, the live values
// they hold, the persistent image) and a seed, then applied on top of
// the fail-stop image after the crash protocol runs.
//
// The overlay form is what keeps every model byte-deterministic at any
// parallelism and compatible with the snapshot/fork replay engine: the
// overlay is a pure function of (machine instant, model, point seed), it
// is captured inside CrashState (hash-mixed and compared by the
// equivalence-class dedup), and applying it commutes with restoring the
// copy-on-write image snapshot.
package crash

import (
	"fmt"
	"math/rand"
	"sort"

	"adcc/internal/mem"
)

// FaultKind enumerates the crash-time fault/persistency models.
type FaultKind int

const (
	// FailStop is the baseline model: all dirty LLC lines are lost, the
	// NVM image alone survives. The zero value, so a zero FaultModel is
	// exactly the legacy crash protocol.
	FailStop FaultKind = iota
	// TornLine models 8-byte persist atomicity: one seeded dirty line
	// was mid-flush at the crash and only a prefix of its words reached
	// the persistence domain.
	TornLine
	// EADR models a flush-on-fail platform: the LLC is inside the
	// persistence domain, so the crash drains every dirty line instead
	// of discarding it (pair with cache.Config.FlushFree for the cost
	// side of the platform).
	EADR
	// ReorderWB models relaxed persist ordering: between drain fences,
	// dirty lines persist in a seeded order rather than program order,
	// and the crash interrupts that drain after a seeded prefix.
	ReorderWB
	// BitFlip models silent media corruption: a seeded set of single-bit
	// flips lands in the persistent image, so *detection* (not just
	// recovery) is exercised.
	BitFlip
)

// String returns the canonical fault-model name used by flags, specs,
// and reports.
func (k FaultKind) String() string {
	switch k {
	case FailStop:
		return "failstop"
	case TornLine:
		return "torn"
	case EADR:
		return "eadr"
	case ReorderWB:
		return "reorder"
	case BitFlip:
		return "bitflip"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultModelNames returns the canonical names of all fault models in
// sweep order.
func FaultModelNames() []string {
	return []string{"failstop", "torn", "eadr", "reorder", "bitflip"}
}

// ParseFaultModel resolves a canonical fault-model name ("failstop",
// "torn", "eadr", "reorder", "bitflip") to its model. The empty string
// parses as fail-stop.
func ParseFaultModel(name string) (FaultModel, error) {
	switch name {
	case "", "failstop":
		return FaultModel{Kind: FailStop}, nil
	case "torn":
		return FaultModel{Kind: TornLine}, nil
	case "eadr":
		return FaultModel{Kind: EADR}, nil
	case "reorder":
		return FaultModel{Kind: ReorderWB}, nil
	case "bitflip":
		return FaultModel{Kind: BitFlip}, nil
	default:
		return FaultModel{}, fmt.Errorf("crash: unknown fault model %q (valid: %v)",
			name, FaultModelNames())
	}
}

// wordsPerLine is the number of 8-byte persist units in a cache line.
const wordsPerLine = mem.LineSize / 8

// maxFlipBits bounds the bit-flip count so a hostile or fuzzed model
// cannot turn overlay computation into unbounded work.
const maxFlipBits = 4096

// FaultModel describes one crash-time fault/persistency model. The zero
// value is clean fail-stop. Models are pure configuration: the same
// model, machine instant, and point seed always produce the same
// overlay.
type FaultModel struct {
	// Kind selects the model.
	Kind FaultKind
	// Seed decorrelates the fault lottery (which line tears, the drain
	// order, the flipped bits) from everything else; it is mixed with
	// the per-injection point seed, so distinct crash points of one
	// model draw independently.
	Seed int64
	// TearWords (TornLine only) fixes how many leading 8-byte words of
	// the torn line persist. 0 draws 1..wordsPerLine-1 from the seed; a
	// value at or past wordsPerLine would be a complete (untorn)
	// persist and is rejected by Validate.
	TearWords int
	// FlipBits (BitFlip only) is the number of seeded single-bit flips;
	// 0 means 1. Bounded by maxFlipBits.
	FlipBits int
	// ReorderPerm (ReorderWB only) optionally fixes the drain order as
	// indices into the crash-time sorted dirty-line list; nil draws a
	// seeded permutation. Indices must name undrained (dirty) lines: an
	// index at or past the dirty-line count is rejected at crash time.
	ReorderPerm []int
}

// Validate rejects statically malformed models with errors, never
// panics: tear offsets past the line size, negative or unbounded flip
// counts, and malformed reorder permutations (negative or duplicate
// indices). Permutation indices past the crash-time dirty-line count
// can only be checked at crash time; FaultOverlay rejects those.
func (f FaultModel) Validate() error {
	if f.Kind < FailStop || f.Kind > BitFlip {
		return fmt.Errorf("crash: unknown fault kind %d", int(f.Kind))
	}
	if f.TearWords < 0 || f.TearWords >= wordsPerLine {
		return fmt.Errorf("crash: tear offset %d words past line size (%d words per line)",
			f.TearWords, wordsPerLine)
	}
	if f.FlipBits < 0 || f.FlipBits > maxFlipBits {
		return fmt.Errorf("crash: flip count %d out of range [0, %d]", f.FlipBits, maxFlipBits)
	}
	if len(f.ReorderPerm) > 0 {
		seen := make(map[int]bool, len(f.ReorderPerm))
		for _, idx := range f.ReorderPerm {
			if idx < 0 {
				return fmt.Errorf("crash: negative reorder permutation index %d", idx)
			}
			if seen[idx] {
				return fmt.Errorf("crash: duplicate reorder permutation index %d", idx)
			}
			seen[idx] = true
		}
	}
	return nil
}

// FaultWrite is one word of a fault overlay: after the fail-stop crash
// protocol, the 8-byte-aligned persistent word at Addr holds the raw
// bits Word.
type FaultWrite struct {
	Addr mem.Addr
	Word uint64
}

// FNV-1a parameters for overlay seed mixing and hash chaining (same
// construction as internal/mem's content hashes).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix64(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= fnvPrime64
	}
	return h
}

// faultRNG derives the deterministic per-injection random stream from
// the model seed and the point seed (in practice the crash op count).
func faultRNG(seed, pointSeed int64) *rand.Rand {
	h := fnvMix64(fnvMix64(fnvOffset64, uint64(seed)), uint64(pointSeed))
	return rand.New(rand.NewSource(int64(h >> 1)))
}

// FaultOverlay computes the word-level image mutation model f implies at
// the machine's current (pre-crash) instant. A nil overlay with a nil
// error means the model degenerates to clean fail-stop here (always for
// FailStop; for the dirty-line models when no line is dirty). The
// overlay never contains a write whose value already equals the image
// word — models that happen to change nothing are byte-identical to
// fail-stop, which maximizes snapshot-class sharing in campaign replay.
//
// The computation reads the dirty-line directory and region contents
// without simulated accesses or version bumps, so calling it does not
// perturb the machine. Errors (a statically invalid model, a reorder
// permutation naming more lines than are undrained) leave the machine
// untouched and report the model as inapplicable; callers fall back to
// fail-stop.
func (m *Machine) FaultOverlay(f FaultModel, pointSeed int64) ([]FaultWrite, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if f.Kind == FailStop {
		return nil, nil
	}
	words := make(map[mem.Addr]uint64)
	persistLivePrefix := func(line mem.Addr, k int) {
		// Words past the owning region's end (line padding) never
		// existed in the persistence domain; skip them.
		for i := 0; i < k; i++ {
			a := line + mem.Addr(8*i)
			if w, ok := m.Heap.LiveWord(a); ok {
				words[a] = w
			}
		}
	}
	switch f.Kind {
	case TornLine:
		dirty := m.LLC.DirtyLineAddrs()
		if len(dirty) == 0 {
			return nil, nil
		}
		rng := faultRNG(f.Seed, pointSeed)
		line := dirty[rng.Intn(len(dirty))]
		k := f.TearWords
		if k == 0 {
			k = 1 + rng.Intn(wordsPerLine-1)
		}
		persistLivePrefix(line, k)
	case EADR:
		for _, line := range m.LLC.DirtyLineAddrs() {
			persistLivePrefix(line, wordsPerLine)
		}
	case ReorderWB:
		dirty := m.LLC.DirtyLineAddrs()
		if len(dirty) == 0 {
			return nil, nil
		}
		rng := faultRNG(f.Seed, pointSeed)
		order := f.ReorderPerm
		if len(order) == 0 {
			order = rng.Perm(len(dirty))
		} else {
			for _, idx := range order {
				if idx >= len(dirty) {
					return nil, fmt.Errorf(
						"crash: reorder permutation index %d over %d undrained lines",
						idx, len(dirty))
				}
			}
		}
		// The crash interrupts the out-of-order drain after a seeded
		// prefix of the permuted order; those lines persist in full.
		drained := rng.Intn(len(order) + 1)
		for _, idx := range order[:drained] {
			persistLivePrefix(dirty[idx], wordsPerLine)
		}
	case BitFlip:
		flips := f.FlipBits
		if flips == 0 {
			flips = 1
		}
		regions := m.Heap.Regions()
		var totalWords int64
		for _, r := range regions {
			totalWords += int64(r.Bytes() / 8)
		}
		if totalWords == 0 {
			return nil, nil
		}
		rng := faultRNG(f.Seed, pointSeed)
		for i := 0; i < flips; i++ {
			pos := rng.Int63n(totalWords * 64)
			wordIdx, bit := pos/64, uint(pos%64)
			var a mem.Addr
			for _, r := range regions {
				n := int64(r.Bytes() / 8)
				if wordIdx < n {
					a = r.Base() + mem.Addr(8*wordIdx)
					break
				}
				wordIdx -= n
			}
			w, ok := words[a]
			if !ok {
				w, ok = m.Heap.ImageWord(a)
				if !ok {
					continue
				}
			}
			words[a] = w ^ (1 << bit)
		}
	}
	out := make([]FaultWrite, 0, len(words))
	for a, w := range words {
		if img, ok := m.Heap.ImageWord(a); ok && img == w {
			continue
		}
		out = append(out, FaultWrite{Addr: a, Word: w})
	}
	if len(out) == 0 {
		return nil, nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out, nil
}

// applyOverlay rewrites the persistent words of a post-crash machine
// (live == image, so both move together).
func (m *Machine) applyOverlay(ov []FaultWrite) {
	for _, w := range ov {
		m.Heap.StorePersistWord(w.Addr, w.Word)
	}
}

// CrashWithFault executes the crash protocol under fault model f: the
// overlay is computed from the pre-crash state, the machine crashes
// exactly as Crash does, and the overlay is applied to the persistent
// words. A zero (fail-stop) model is byte-identical to Crash. On error
// (an inapplicable model) the machine has still crashed — fail-stop —
// and the error reports why the fault could not be applied.
func (m *Machine) CrashWithFault(f FaultModel, pointSeed int64) error {
	ov, err := m.FaultOverlay(f, pointSeed)
	m.Crash()
	m.applyOverlay(ov)
	return err
}

// CrashSnapshotFault captures the machine's post-crash state under
// fault model f, as CrashSnapshot does for fail-stop: the overlay is
// computed at the same pre-crash instant CrashWithFault would use and
// attached to the snapshot, where it participates in the content hash
// and in Equal, so equivalence-class deduplication keys on the torn or
// reordered image bytes, not just the fail-stop image. On error the
// returned snapshot is the fail-stop capture (nil overlay).
func (m *Machine) CrashSnapshotFault(prev *CrashState, f FaultModel, pointSeed int64) (*CrashState, error) {
	ov, err := m.FaultOverlay(f, pointSeed)
	st := m.CrashSnapshot(prev)
	st.Overlay = ov
	for _, w := range ov {
		st.hash = fnvMix64(fnvMix64(st.hash, uint64(w.Addr)), w.Word)
	}
	return st, err
}

// SetFault installs the fault model applied at this emulator's injected
// crashes, after validating it. A zero model restores the legacy clean
// fail-stop behavior.
func (e *Emulator) SetFault(f FaultModel) error {
	if err := f.Validate(); err != nil {
		return err
	}
	e.fault = f
	return nil
}

// Fault returns the installed fault model.
func (e *Emulator) Fault() FaultModel { return e.fault }

// FaultErr returns the error, if any, from applying the fault model at
// the most recent Run's crash. A non-nil value means the crash fell
// back to clean fail-stop (the model was inapplicable at that instant,
// e.g. an explicit reorder permutation naming more lines than were
// dirty).
func (e *Emulator) FaultErr() error { return e.faultErr }
