package crash

import (
	"testing"
)

// FuzzProfilePoints throws arbitrary profiles at the campaign's
// crash-point enumerator: it must never panic, and every point it
// returns must name a reachable coordinate — an op count in [1, Ops] or
// a positive occurrence of a listed trigger, never both.
func FuzzProfilePoints(f *testing.F) {
	f.Add(int64(1000), "iter-end", 15, "lookup", 500, int64(42), int64(8))
	f.Add(int64(0), "", 0, "", 0, int64(0), int64(3))
	f.Add(int64(5), "t", -2, "u", 0, int64(7), int64(9))
	f.Add(int64(1), "only-op", 1, "x", 1, int64(-1), int64(1))
	f.Fuzz(func(t *testing.T, ops int64, trigA string, countA int, trigB string, countB int, seed, n64 int64) {
		// Bound the output size so the fuzzer explores shapes, not
		// allocator limits.
		n := int(n64 % 257)
		p := RunProfile{Ops: ops}
		counts := map[string]int{}
		for _, tc := range []TriggerCount{{Name: trigA, Count: countA}, {Name: trigB, Count: countB}} {
			if tc.Name == "" {
				continue
			}
			p.Triggers = append(p.Triggers, tc)
			if tc.Count > counts[tc.Name] {
				counts[tc.Name] = tc.Count
			}
		}

		pts := p.Points(n, seed)
		if n <= 0 || ops <= 0 {
			if pts != nil {
				t.Fatalf("Points(%d) on ops=%d returned %d points, want none", n, ops, len(pts))
			}
			return
		}
		if len(pts) != n {
			t.Fatalf("Points returned %d points, want %d", len(pts), n)
		}
		again := p.Points(n, seed)
		for i, pt := range pts {
			if pt != again[i] {
				t.Fatalf("point %d not deterministic: %v vs %v", i, pt, again[i])
			}
			switch {
			case pt.Op > 0:
				if pt.Trigger != "" || pt.Occurrence != 0 {
					t.Fatalf("point %d mixes coordinate systems: %+v", i, pt)
				}
				if pt.Op > ops {
					t.Fatalf("point %d op %d beyond profile ops %d", i, pt.Op, ops)
				}
			case pt.Occurrence > 0:
				max, ok := counts[pt.Trigger]
				if !ok || max <= 0 {
					t.Fatalf("point %d names unknown or uncrashable trigger %q", i, pt.Trigger)
				}
				if pt.Occurrence > max {
					t.Fatalf("point %d occurrence %d beyond count %d", i, pt.Occurrence, max)
				}
			default:
				t.Fatalf("point %d is disarmed: %+v", i, pt)
			}
		}
	})
}
