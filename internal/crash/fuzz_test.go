package crash

import (
	"testing"

	"adcc/internal/mem"
)

// FuzzProfilePoints throws arbitrary profiles at the campaign's
// crash-point enumerator: it must never panic, and every point it
// returns must name a reachable coordinate — an op count in [1, Ops] or
// a positive occurrence of a listed trigger, never both.
func FuzzProfilePoints(f *testing.F) {
	f.Add(int64(1000), "iter-end", 15, "lookup", 500, int64(42), int64(8))
	f.Add(int64(0), "", 0, "", 0, int64(0), int64(3))
	f.Add(int64(5), "t", -2, "u", 0, int64(7), int64(9))
	f.Add(int64(1), "only-op", 1, "x", 1, int64(-1), int64(1))
	f.Fuzz(func(t *testing.T, ops int64, trigA string, countA int, trigB string, countB int, seed, n64 int64) {
		// Bound the output size so the fuzzer explores shapes, not
		// allocator limits.
		n := int(n64 % 257)
		p := RunProfile{Ops: ops}
		counts := map[string]int{}
		for _, tc := range []TriggerCount{{Name: trigA, Count: countA}, {Name: trigB, Count: countB}} {
			if tc.Name == "" {
				continue
			}
			p.Triggers = append(p.Triggers, tc)
			if tc.Count > counts[tc.Name] {
				counts[tc.Name] = tc.Count
			}
		}

		pts := p.Points(n, seed)
		if n <= 0 || ops <= 0 {
			if pts != nil {
				t.Fatalf("Points(%d) on ops=%d returned %d points, want none", n, ops, len(pts))
			}
			return
		}
		if len(pts) != n {
			t.Fatalf("Points returned %d points, want %d", len(pts), n)
		}
		again := p.Points(n, seed)
		for i, pt := range pts {
			if pt != again[i] {
				t.Fatalf("point %d not deterministic: %v vs %v", i, pt, again[i])
			}
			switch {
			case pt.Op > 0:
				if pt.Trigger != "" || pt.Occurrence != 0 {
					t.Fatalf("point %d mixes coordinate systems: %+v", i, pt)
				}
				if pt.Op > ops {
					t.Fatalf("point %d op %d beyond profile ops %d", i, pt.Op, ops)
				}
			case pt.Occurrence > 0:
				max, ok := counts[pt.Trigger]
				if !ok || max <= 0 {
					t.Fatalf("point %d names unknown or uncrashable trigger %q", i, pt.Trigger)
				}
				if pt.Occurrence > max {
					t.Fatalf("point %d occurrence %d beyond count %d", i, pt.Occurrence, max)
				}
			default:
				t.Fatalf("point %d is disarmed: %+v", i, pt)
			}
		}
	})
}

// FuzzCrashFaultModel throws arbitrary fault models — including
// malformed ones — at crashes of a synthetic store/flush workload.
// Contracts under fuzz:
//
//   - malformed models come back as errors from SetFault, never panics;
//   - no accepted model panics the run, the crash, or a post-crash rerun
//     of the machine;
//   - for the dirty-line models (torn, eADR, reorder), every post-crash
//     image word is either the fail-stop image word or the pre-crash
//     live word — faults replay data the program actually wrote, they
//     never invent bytes;
//   - a crash is never silently misreported as clean fail-stop: whenever
//     the image deviates from a fail-stop twin, the emulator's installed
//     model was a non-fail-stop one that reported no fallback error.
func FuzzCrashFaultModel(f *testing.F) {
	f.Add(int8(0), int64(0), int8(0), int16(0), uint16(0), uint8(9), uint8(3))
	f.Add(int8(1), int64(42), int8(3), int16(0), uint16(0), uint8(17), uint8(7))
	f.Add(int8(2), int64(-5), int8(0), int16(0), uint16(0), uint8(30), uint8(1))
	f.Add(int8(3), int64(7), int8(0), int16(0), uint16(0b1011), uint8(40), uint8(5))
	f.Add(int8(4), int64(99), int8(0), int16(12), uint16(0), uint8(50), uint8(2))
	f.Add(int8(-3), int64(1), int8(-8), int16(-1), uint16(0xffff), uint8(60), uint8(0))
	f.Add(int8(1), int64(3), int8(120), int16(9999), uint16(5), uint8(4), uint8(6))
	f.Fuzz(func(t *testing.T, kind int8, seed int64, tear int8, flips int16, permMask uint16, crashOp8, pattern uint8) {
		fm := FaultModel{
			Kind:      FaultKind(kind),
			Seed:      seed,
			TearWords: int(tear),
			FlipBits:  int(flips),
		}
		for b := 0; b < 16; b++ {
			if permMask&(1<<b) != 0 {
				fm.ReorderPerm = append(fm.ReorderPerm, b)
			}
		}

		// Twin deterministic workloads: m1 crashes fail-stop, m2 under
		// the fuzzed model, at the same op.
		build := func() (*Machine, *Emulator, func()) {
			m := NewMachine(MachineConfig{System: NVMOnly})
			e := NewEmulator(m)
			r := m.Heap.AllocF64("data", 32)
			q := m.Heap.AllocI64("tail", 5) // padded last line
			workload := func() {
				for i := 0; i < r.Len(); i++ {
					r.Set(i, float64(int(pattern)+i))
					if i%8 == 7 && pattern%3 == 0 {
						m.FlushRegion(r)
					}
				}
				for i := 0; i < q.Len(); i++ {
					q.Set(i, int64(pattern)<<8|int64(i))
				}
				e.Trigger("end")
			}
			return m, e, workload
		}

		m2, e2, w2 := build()
		if err := e2.SetFault(fm); err != nil {
			if fm.Validate() == nil {
				t.Fatalf("SetFault rejected a valid model: %v", err)
			}
			return // malformed models come back as errors; done
		}
		if fm.Validate() != nil {
			t.Fatal("SetFault accepted a model Validate rejects")
		}

		m1, e1, w1 := build()
		crashOp := int64(crashOp8%120) + 1
		e1.CrashAtOp(crashOp)
		e2.CrashAtOp(crashOp)
		var preLive map[mem.Addr]uint64
		e2.OnCrash = func(m *Machine) {
			preLive = make(map[mem.Addr]uint64)
			for _, r := range m.Heap.Regions() {
				for i := 0; i < r.Bytes()/8; i++ {
					a := r.Base() + mem.Addr(8*i)
					if w, ok := m.Heap.LiveWord(a); ok {
						preLive[a] = w
					}
				}
			}
		}
		c1, c2 := e1.Run(w1), e2.Run(w2)
		if c1 != c2 {
			t.Fatalf("crash divergence: fail-stop twin %v, fault twin %v", c1, c2)
		}
		if !c2 {
			return
		}

		deviates := false
		for _, r := range m2.Heap.Regions() {
			for i := 0; i < r.Bytes()/8; i++ {
				a := r.Base() + mem.Addr(8*i)
				w, ok := m2.Heap.ImageWord(a)
				if !ok {
					t.Fatalf("image word %#x unmapped post-crash", a)
				}
				ref, _ := m1.Heap.ImageWord(a)
				if w == ref {
					continue
				}
				deviates = true
				if fm.Kind != BitFlip && w != preLive[a] {
					t.Fatalf("word %#x = %#x: neither fail-stop image %#x nor pre-crash live %#x",
						a, w, ref, preLive[a])
				}
			}
		}
		if deviates && (fm.Kind == FailStop || e2.FaultErr() != nil) {
			t.Fatalf("image deviates from fail-stop but the crash was reported as fail-stop (model %v, fault err %v)",
				fm.Kind, e2.FaultErr())
		}

		// The machine must stay usable: disarm and rerun the workload to
		// completion on the crashed machine — no panic, no crash.
		e2.OnCrash = nil
		e2.Disarm()
		if e2.Run(w2) {
			t.Fatal("disarmed rerun crashed")
		}
	})
}
