package crash

import (
	"strings"
	"testing"

	"adcc/internal/cache"
	"adcc/internal/mem"
)

// faultMachine builds a machine whose cache comfortably holds the test
// working set, so written lines stay resident and dirty at the crash.
func faultMachine() *Machine {
	return NewMachine(MachineConfig{
		System: NVMOnly,
		Cache: cache.Config{
			SizeBytes: 64 * 64, // 64 lines
			LineBytes: 64,
			Assoc:     4,
			HitNS:     1,
		},
	})
}

// dirtyPattern writes a deterministic mix of persisted and dirty data:
// region f holds 4 lines (the first flushed, the rest dirty), region g
// holds 2 dirty lines plus a 3-word tail that pads its last line.
func dirtyPattern(m *Machine) (f, g *mem.F64) {
	f = m.Heap.AllocF64("f", 32)
	g = m.Heap.AllocF64("g", 19)
	for i := 0; i < f.Len(); i++ {
		f.Set(i, float64(i+1))
	}
	m.FlushRegion(f)
	for i := 8; i < f.Len(); i++ {
		f.Set(i, 100.5+float64(i)) // re-dirty lines 1..3 after the flush
	}
	for i := 0; i < g.Len(); i++ {
		g.Set(i, -float64(i+1))
	}
	return f, g
}

// imageWords reads every mapped 8-aligned image word of the heap.
func imageWords(t *testing.T, m *Machine) map[mem.Addr]uint64 {
	t.Helper()
	out := make(map[mem.Addr]uint64)
	for _, r := range m.Heap.Regions() {
		for i := 0; i < r.Bytes()/8; i++ {
			a := r.Base() + mem.Addr(8*i)
			w, ok := m.Heap.ImageWord(a)
			if !ok {
				t.Fatalf("ImageWord(%#x) unmapped inside region %s", a, r.Name())
			}
			out[a] = w
		}
	}
	return out
}

// liveWords reads every mapped 8-aligned live word of the heap.
func liveWords(t *testing.T, m *Machine) map[mem.Addr]uint64 {
	t.Helper()
	out := make(map[mem.Addr]uint64)
	for _, r := range m.Heap.Regions() {
		for i := 0; i < r.Bytes()/8; i++ {
			a := r.Base() + mem.Addr(8*i)
			w, ok := m.Heap.LiveWord(a)
			if !ok {
				t.Fatalf("LiveWord(%#x) unmapped inside region %s", a, r.Name())
			}
			out[a] = w
		}
	}
	return out
}

func TestFaultModelValidate(t *testing.T) {
	cases := []struct {
		name string
		f    FaultModel
		want string // substring of the error; "" means valid
	}{
		{"zero", FaultModel{}, ""},
		{"torn", FaultModel{Kind: TornLine, TearWords: 3}, ""},
		{"bitflip-max", FaultModel{Kind: BitFlip, FlipBits: maxFlipBits}, ""},
		{"reorder-perm", FaultModel{Kind: ReorderWB, ReorderPerm: []int{2, 0, 1}}, ""},
		{"bad-kind-low", FaultModel{Kind: -1}, "unknown fault kind"},
		{"bad-kind-high", FaultModel{Kind: BitFlip + 1}, "unknown fault kind"},
		{"tear-negative", FaultModel{Kind: TornLine, TearWords: -1}, "tear offset"},
		{"tear-full-line", FaultModel{Kind: TornLine, TearWords: wordsPerLine}, "tear offset"},
		{"tear-past-line", FaultModel{Kind: TornLine, TearWords: 99}, "tear offset"},
		{"flips-negative", FaultModel{Kind: BitFlip, FlipBits: -1}, "flip count"},
		{"flips-unbounded", FaultModel{Kind: BitFlip, FlipBits: maxFlipBits + 1}, "flip count"},
		{"perm-negative", FaultModel{Kind: ReorderWB, ReorderPerm: []int{0, -2}}, "negative reorder"},
		{"perm-duplicate", FaultModel{Kind: ReorderWB, ReorderPerm: []int{1, 1}}, "duplicate reorder"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate: unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
			// The guards are errors, never panics, on every entry point.
			e := NewEmulator(faultMachine())
			if err := e.SetFault(tc.f); err == nil {
				t.Fatal("SetFault accepted an invalid model")
			}
			m := faultMachine()
			dirtyPattern(m)
			if _, err := m.FaultOverlay(tc.f, 1); err == nil {
				t.Fatal("FaultOverlay accepted an invalid model")
			}
		})
	}
}

func TestParseFaultModelRoundTrip(t *testing.T) {
	for _, name := range FaultModelNames() {
		f, err := ParseFaultModel(name)
		if err != nil {
			t.Fatalf("ParseFaultModel(%q): %v", name, err)
		}
		if got := f.Kind.String(); got != name {
			t.Errorf("ParseFaultModel(%q).Kind.String() = %q", name, got)
		}
	}
	if f, err := ParseFaultModel(""); err != nil || f.Kind != FailStop {
		t.Errorf("ParseFaultModel(\"\") = %+v, %v; want fail-stop", f, err)
	}
	if _, err := ParseFaultModel("torn-line"); err == nil {
		t.Error("ParseFaultModel accepted an unknown name")
	}
}

// TestFailStopFaultIdentity: the zero model is byte-identical to the
// legacy crash protocol, with a nil overlay.
func TestFailStopFaultIdentity(t *testing.T) {
	m1, m2 := faultMachine(), faultMachine()
	dirtyPattern(m1)
	dirtyPattern(m2)
	if ov, err := m2.FaultOverlay(FaultModel{}, 7); ov != nil || err != nil {
		t.Fatalf("fail-stop overlay = %v, %v; want nil, nil", ov, err)
	}
	m1.Crash()
	if err := m2.CrashWithFault(FaultModel{}, 7); err != nil {
		t.Fatalf("CrashWithFault: %v", err)
	}
	w1, w2 := imageWords(t, m1), imageWords(t, m2)
	for a, w := range w1 {
		if w2[a] != w {
			t.Fatalf("image word %#x differs under zero fault model: %#x vs %#x", a, w, w2[a])
		}
	}
}

// TestTornLineOverlayProperty checks the torn-line overlay against its
// naive reference semantics: the persisted bytes are exactly a k-word
// (1 <= k < 8) prefix of one dirty line, 8-byte aligned and in line
// order, carrying the line's live (in-cache) values; no other word of
// the image moves.
func TestTornLineOverlayProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, point := range []int64{1, 17, 90001} {
			m := faultMachine()
			dirtyPattern(m)
			dirty := make(map[mem.Addr]bool)
			for _, a := range m.LLC.DirtyLineAddrs() {
				dirty[a] = true
			}
			if len(dirty) == 0 {
				t.Fatal("pattern left no dirty lines")
			}
			live := liveWords(t, m)
			img := imageWords(t, m)

			f := FaultModel{Kind: TornLine, Seed: seed}
			ov, err := m.FaultOverlay(f, point)
			if err != nil {
				t.Fatalf("FaultOverlay(seed=%d, point=%d): %v", seed, point, err)
			}
			if len(ov) == 0 {
				// Legal: the seeded prefix may already match the image.
				continue
			}
			line := ov[0].Addr &^ (mem.LineSize - 1)
			if !dirty[line] {
				t.Fatalf("torn line %#x is not dirty", line)
			}
			maxIdx := 0
			for i, w := range ov {
				if w.Addr%8 != 0 {
					t.Fatalf("overlay write %#x not 8-byte aligned", w.Addr)
				}
				if w.Addr&^(mem.LineSize-1) != line {
					t.Fatalf("overlay touches a second line: %#x and %#x", line, w.Addr)
				}
				if i > 0 && ov[i].Addr <= ov[i-1].Addr {
					t.Fatalf("overlay not in ascending line order at %d", i)
				}
				if w.Word != live[w.Addr] {
					t.Fatalf("overlay word %#x = %#x, want live value %#x", w.Addr, w.Word, live[w.Addr])
				}
				if idx := int(w.Addr-line) / 8; idx > maxIdx {
					maxIdx = idx
				}
			}
			if maxIdx >= wordsPerLine-1 {
				t.Fatalf("prefix reaches word %d: a full-line persist is not a tear", maxIdx)
			}
			// Prefix completeness: every line word up to maxIdx either
			// persisted, was already clean, or pads past the region end.
			for i := 0; i <= maxIdx; i++ {
				a := line + mem.Addr(8*i)
				inOverlay := false
				for _, w := range ov {
					if w.Addr == a {
						inOverlay = true
					}
				}
				lv, mapped := live[a]
				if !inOverlay && mapped && lv != img[a] {
					t.Fatalf("word %d of torn prefix skipped despite live != image", i)
				}
			}

			// A fixed tear offset bounds the prefix exactly.
			fixed := FaultModel{Kind: TornLine, Seed: seed, TearWords: 2}
			ov2, err := m.FaultOverlay(fixed, point)
			if err != nil {
				t.Fatalf("FaultOverlay(TearWords=2): %v", err)
			}
			for _, w := range ov2 {
				if idx := int(w.Addr&(mem.LineSize-1)) / 8; idx >= 2 {
					t.Fatalf("TearWords=2 overlay persisted word %d", idx)
				}
			}
		}
	}
}

// TestTornLineCrashDifferential: crashing under TornLine differs from a
// fail-stop twin exactly by the overlay, nowhere else.
func TestTornLineCrashDifferential(t *testing.T) {
	m1, m2 := faultMachine(), faultMachine()
	dirtyPattern(m1)
	dirtyPattern(m2)
	f := FaultModel{Kind: TornLine, Seed: 3}
	ov, err := m2.FaultOverlay(f, 55)
	if err != nil {
		t.Fatalf("FaultOverlay: %v", err)
	}
	inOverlay := make(map[mem.Addr]uint64, len(ov))
	for _, w := range ov {
		inOverlay[w.Addr] = w.Word
	}
	m1.Crash()
	if err := m2.CrashWithFault(f, 55); err != nil {
		t.Fatalf("CrashWithFault: %v", err)
	}
	w1, w2 := imageWords(t, m1), imageWords(t, m2)
	for a, w := range w2 {
		if ovw, ok := inOverlay[a]; ok {
			if w != ovw {
				t.Fatalf("word %#x = %#x, want overlay value %#x", a, w, ovw)
			}
		} else if w != w1[a] {
			t.Fatalf("word %#x moved outside the overlay: %#x vs fail-stop %#x", a, w, w1[a])
		}
	}
}

// TestEADRDrainsDirtyLines: under eADR every dirty line persists in
// full, so the post-crash image carries the pre-crash live values of
// every dirty word; words outside dirty lines match the fail-stop twin.
func TestEADRDrainsDirtyLines(t *testing.T) {
	m1, m2 := faultMachine(), faultMachine()
	dirtyPattern(m1)
	dirtyPattern(m2)
	live := liveWords(t, m2)
	dirty := make(map[mem.Addr]bool)
	for _, a := range m2.LLC.DirtyLineAddrs() {
		dirty[a] = true
	}
	m1.Crash()
	if err := m2.CrashWithFault(FaultModel{Kind: EADR}, 9); err != nil {
		t.Fatalf("CrashWithFault: %v", err)
	}
	w1, w2 := imageWords(t, m1), imageWords(t, m2)
	for a, w := range w2 {
		if dirty[a&^(mem.LineSize-1)] {
			if w != live[a] {
				t.Fatalf("dirty word %#x = %#x after eADR drain, want live %#x", a, w, live[a])
			}
		} else if w != w1[a] {
			t.Fatalf("clean word %#x moved under eADR: %#x vs %#x", a, w, w1[a])
		}
	}
	// Nothing was dirty after the drain-equivalent crash; a second eADR
	// crash is a no-op overlay.
	if ov, err := m2.FaultOverlay(FaultModel{Kind: EADR}, 10); err != nil || ov != nil {
		t.Fatalf("post-crash eADR overlay = %v, %v; want nil, nil", ov, err)
	}
}

// TestReorderWBPrefixProperty: the reorder overlay persists whole lines
// drawn from the dirty set, each carrying live values.
func TestReorderWBPrefixProperty(t *testing.T) {
	m := faultMachine()
	dirtyPattern(m)
	live := liveWords(t, m)
	dirty := make(map[mem.Addr]bool)
	for _, a := range m.LLC.DirtyLineAddrs() {
		dirty[a] = true
	}
	sawPartial := false
	for point := int64(1); point <= 32; point++ {
		f := FaultModel{Kind: ReorderWB, Seed: 11}
		ov, err := m.FaultOverlay(f, point)
		if err != nil {
			t.Fatalf("FaultOverlay(point=%d): %v", point, err)
		}
		lines := make(map[mem.Addr]bool)
		for _, w := range ov {
			line := w.Addr &^ (mem.LineSize - 1)
			if !dirty[line] {
				t.Fatalf("reorder persisted non-dirty line %#x", line)
			}
			if w.Word != live[w.Addr] {
				t.Fatalf("reorder word %#x = %#x, want live %#x", w.Addr, w.Word, live[w.Addr])
			}
			lines[line] = true
		}
		// Drained lines persist in full: every changed live word of a
		// touched line must be in the overlay.
		for line := range lines {
			for i := 0; i < wordsPerLine; i++ {
				a := line + mem.Addr(8*i)
				lv, mapped := live[a]
				if !mapped {
					continue
				}
				found := false
				for _, w := range ov {
					if w.Addr == a {
						found = true
					}
				}
				img, _ := m.Heap.ImageWord(a)
				if !found && lv != img {
					t.Fatalf("drained line %#x missing changed word %#x", line, a)
				}
			}
		}
		if len(lines) > 0 && len(lines) < len(dirty) {
			sawPartial = true
		}
		// Determinism: the same (seed, point) draws the same overlay.
		again, err := m.FaultOverlay(f, point)
		if err != nil || len(again) != len(ov) {
			t.Fatalf("reorder overlay not deterministic at point %d", point)
		}
		for i := range ov {
			if ov[i] != again[i] {
				t.Fatalf("reorder overlay not deterministic at point %d", point)
			}
		}
	}
	if !sawPartial {
		t.Error("no point drained a strict prefix: the reorder cutoff never varied")
	}
}

// TestReorderPermGuard: an explicit permutation naming more lines than
// are dirty is rejected at crash time with an error — the machine still
// crashes fail-stop and the emulator reports the fallback via FaultErr.
func TestReorderPermGuard(t *testing.T) {
	m1, m2 := faultMachine(), faultMachine()
	dirtyPattern(m1)
	dirtyPattern(m2)
	perm := make([]int, 41)
	for i := range perm {
		perm[i] = i
	}
	f := FaultModel{Kind: ReorderWB, ReorderPerm: perm}
	if err := f.Validate(); err != nil {
		t.Fatalf("static Validate rejected a runtime-checked perm: %v", err)
	}
	m1.Crash()
	err := m2.CrashWithFault(f, 3)
	if err == nil || !strings.Contains(err.Error(), "undrained lines") {
		t.Fatalf("CrashWithFault = %v, want undrained-lines error", err)
	}
	w1, w2 := imageWords(t, m1), imageWords(t, m2)
	for a, w := range w1 {
		if w2[a] != w {
			t.Fatalf("inapplicable perm perturbed word %#x", a)
		}
	}

	// The emulator path: the model passes SetFault (it is statically
	// well-formed), the run crashes fail-stop, FaultErr reports why.
	m3 := faultMachine()
	e := NewEmulator(m3)
	if err := e.SetFault(f); err != nil {
		t.Fatalf("SetFault: %v", err)
	}
	r := m3.Heap.AllocF64("v", 8)
	e.CrashAtOp(4)
	if !e.Run(func() {
		for i := 0; i < 8; i++ {
			r.Set(i, 1.5)
		}
	}) {
		t.Fatal("expected crash")
	}
	if err := e.FaultErr(); err == nil || !strings.Contains(err.Error(), "undrained lines") {
		t.Fatalf("FaultErr = %v, want undrained-lines error", err)
	}
}

// TestBitFlipBudget: FlipBits=0 means one flip; each overlay word
// differs from the image by exactly the flipped bits.
func TestBitFlipBudget(t *testing.T) {
	m := faultMachine()
	dirtyPattern(m)
	img := imageWords(t, m)
	flipped := 0
	for point := int64(1); point <= 16; point++ {
		ov, err := m.FaultOverlay(FaultModel{Kind: BitFlip, Seed: 2}, point)
		if err != nil {
			t.Fatalf("FaultOverlay: %v", err)
		}
		if len(ov) > 1 {
			t.Fatalf("single-flip model produced %d writes", len(ov))
		}
		for _, w := range ov {
			diff := w.Word ^ img[w.Addr]
			if diff == 0 || diff&(diff-1) != 0 {
				t.Fatalf("flip at %#x changed %#x: not a single bit", w.Addr, diff)
			}
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("no point flipped a mapped bit")
	}
}

// TestCrashSnapshotFaultMatchesCrashWithFault: restoring a fault
// snapshot reproduces the direct faulted crash word for word, for every
// model.
func TestCrashSnapshotFaultMatchesCrashWithFault(t *testing.T) {
	for _, kind := range []FaultKind{FailStop, TornLine, EADR, ReorderWB, BitFlip} {
		t.Run(kind.String(), func(t *testing.T) {
			m1, m2 := faultMachine(), faultMachine()
			dirtyPattern(m1)
			dirtyPattern(m2)
			f := FaultModel{Kind: kind, Seed: 6}
			st, err1 := m1.CrashSnapshotFault(nil, f, 123)
			err2 := m2.CrashWithFault(f, 123)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch: snapshot %v, crash %v", err1, err2)
			}
			m1.RestoreCrash(st)
			w1, w2 := imageWords(t, m1), imageWords(t, m2)
			for a, w := range w2 {
				if w1[a] != w {
					t.Fatalf("restored word %#x = %#x, direct crash %#x", a, w1[a], w)
				}
			}
		})
	}
}

// TestCrashSnapshotFaultDedup: snapshots from one machine instant under
// different fault draws are distinct (Equal false), while an identical
// draw hashes and compares equal — the property the replay engine's
// equivalence-class dedup rests on.
func TestCrashSnapshotFaultDedup(t *testing.T) {
	build := func() *Machine {
		m := faultMachine()
		dirtyPattern(m)
		return m
	}
	f := FaultModel{Kind: TornLine, Seed: 1}
	a, err := build().CrashSnapshotFault(nil, f, 10)
	if err != nil {
		t.Fatalf("snapshot a: %v", err)
	}
	b, err := build().CrashSnapshotFault(nil, f, 10)
	if err != nil {
		t.Fatalf("snapshot b: %v", err)
	}
	if a.Hash() != b.Hash() || !a.Equal(b) {
		t.Fatal("identical fault draws produced unequal snapshots")
	}
	// A different point seed draws a different tear; find one.
	for point := int64(11); point < 40; point++ {
		c, err := build().CrashSnapshotFault(nil, f, point)
		if err != nil {
			t.Fatalf("snapshot c: %v", err)
		}
		if len(c.Overlay) > 0 && !c.Equal(a) {
			if c.Hash() == a.Hash() {
				t.Fatal("unequal overlays share a hash (not fatal in theory, wrong for FNV here)")
			}
			return
		}
	}
	t.Fatal("no point seed drew a distinct tear")
}
