package crash

import (
	"testing"

	"adcc/internal/cache"
)

func TestPersistDispatchesByInstr(t *testing.T) {
	for _, instr := range []FlushInstr{CLFLUSH, CLWB} {
		m := NewMachine(MachineConfig{
			System: NVMOnly,
			Cache: cache.Config{
				SizeBytes: 4 * 64 * 2, LineBytes: 64, Assoc: 2, HitNS: 1,
				FlushChargesClean: true,
			},
			Flush: instr,
		})
		r := m.Heap.AllocF64("v", 8)
		r.Set(0, 7)
		m.Persist(r.Addr(0), 8)
		if r.Image()[0] != 7 {
			t.Fatalf("%v: Persist did not write back", instr)
		}
		resident, _ := m.LLC.Contains(r.Addr(0))
		wantResident := instr == CLWB
		if resident != wantResident {
			t.Fatalf("%v: resident=%v, want %v", instr, resident, wantResident)
		}
	}
}

func TestFlushInstrString(t *testing.T) {
	if CLFLUSH.String() != "CLFLUSH" || CLWB.String() != "CLWB" {
		t.Fatal("FlushInstr names wrong")
	}
	if FlushInstr(9).String() == "" {
		t.Fatal("unknown instr must still render")
	}
}

func TestCrashAfterCLWBKeepsData(t *testing.T) {
	// CLWB persistence must survive a crash exactly like CLFLUSH.
	m := NewMachine(MachineConfig{
		System: NVMOnly,
		Cache: cache.Config{
			SizeBytes: 4 * 64 * 2, LineBytes: 64, Assoc: 2, HitNS: 1,
		},
		Flush: CLWB,
	})
	e := NewEmulator(m)
	r := m.Heap.AllocF64("v", 8)
	e.Run(func() {
		r.Set(0, 5)
		m.Persist(r.Addr(0), 8)
		r.Set(1, 6) // not persisted
		InjectCrashNow()
	})
	if r.Live()[0] != 5 {
		t.Fatal("CLWB-persisted value lost in crash")
	}
	if r.Live()[1] != 0 {
		t.Fatal("unpersisted value survived crash")
	}
}

func TestOnCrashHookSeesPreCrashState(t *testing.T) {
	m := NewMachine(MachineConfig{
		System: NVMOnly,
		Cache: cache.Config{
			SizeBytes: 4 * 64 * 2, LineBytes: 64, Assoc: 2, HitNS: 1,
		},
	})
	e := NewEmulator(m)
	r := m.Heap.AllocF64("v", 8)
	sawDirty := false
	e.OnCrash = func(m *Machine) {
		// At the hook, the dirty line is still resident.
		_, dirty := m.LLC.Contains(r.Addr(0))
		sawDirty = dirty
	}
	e.Run(func() {
		r.Set(0, 1)
		InjectCrashNow()
	})
	if !sawDirty {
		t.Fatal("OnCrash hook ran after the cache was discarded")
	}
	if _, dirty := m.LLC.Contains(r.Addr(0)); dirty {
		t.Fatal("cache not discarded after crash protocol")
	}
}
