package kvlog

import (
	"fmt"

	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/pmem"
)

// Baseline is the same KV store served under a conventional mechanism
// supplied as an engine.Scheme: periodic whole-state checkpoints every
// CkptEvery requests, PMEM-style undo-log transactions wrapping each
// request, or nothing (native — a crash loses the store and the whole
// request stream is replayed from an empty index).
type Baseline struct {
	state

	Scheme engine.Scheme
	Guard  engine.Guard

	// ReqNS records the simulated latency of each completed request
	// (1-based; entry 0 unused).
	ReqNS []int64
	// Em, when set, fires TriggerReqEnd at the end of every request,
	// making the baseline injectable at the same named program points
	// as the algorithm-directed store.
	Em *crash.Emulator
}

// NewBaseline builds the store under the given scheme's mechanism (nil
// means native). Checkpoint schemes save index+log+mark every CkptEvery
// requests; PMEM schemes wrap each request's index, log, and mark
// writes in one undo-log transaction.
func NewBaseline(m *crash.Machine, opts Options, sc engine.Scheme) *Baseline {
	if sc == nil {
		sc = engine.MustLookup(engine.SchemeNative)
	}
	b := &Baseline{
		state:  *newState(m, opts),
		Scheme: sc,
		ReqNS:  make([]int64, opts.Requests+1),
	}
	// Log capacity for transactional schemes: one request dirties at
	// most a handful of lines (snapshots are line-deduplicated).
	b.Guard = sc.NewGuard(m, 4096)
	b.Guard.Register(b.index, b.log, b.meta)
	return b
}

// Run serves the whole request stream.
func (b *Baseline) Run() { b.RunFrom(1) }

// RunFrom serves requests from..Requests (1-based, inclusive). A fresh
// run starts at 1; after a crash, resume from the request Recover
// returns.
func (b *Baseline) RunFrom(from int) {
	m := b.m
	if from < 1 {
		from = 1
	}
	for i := from; i <= b.opts.Requests; i++ {
		start := m.Clock.Now()
		if b.Guard.Pool() != nil {
			b.reqPMEM(i)
		} else {
			b.reqPlain(i)
		}
		if i%b.opts.CkptEvery == 0 {
			b.Guard.EndIteration(int64(i), b.index, b.log, b.meta)
		}
		b.ReqNS[i] = m.Clock.Since(start)
		if b.Em != nil {
			b.Em.Trigger(TriggerReqEnd)
		}
	}
}

// reqPlain serves request i with plain stores and no flushes — the
// native path, and the state checkpoint schemes snapshot periodically.
func (b *Baseline) reqPlain(i int) {
	r := b.reqs[i-1]
	switch r.Op {
	case OpGet:
		b.get(r.Key)
	case OpScan:
		b.scan(r.Key)
	case OpPut:
		b.applyPut(r.Key, r.Val)
		off := b.appendRecord(recPut, r.Key, r.Val, int64(i))
		b.meta.Set(metaLogWords, int64(off+recWords))
	case OpDel:
		b.applyDel(r.Key)
		off := b.appendRecord(recDel, r.Key, 0, int64(i))
		b.meta.Set(metaLogWords, int64(off+recWords))
	}
	b.meta.Set(metaReqDone, int64(i))
}

// reqPMEM serves request i with every persistent write routed through
// one undo-log transaction: index slot, log record, high-water mark,
// and completed-request counter commit together or roll back together.
func (b *Baseline) reqPMEM(i int) {
	m := b.m
	tx := b.Guard.Pool().Begin()
	r := b.reqs[i-1]
	switch r.Op {
	case OpGet:
		b.get(r.Key)
	case OpScan:
		b.scan(r.Key)
	case OpPut:
		m.CPU.Compute(4)
		off, _ := b.probeSlot(r.Key)
		tx.SetI64(b.index, off, r.Key+1)
		tx.SetI64(b.index, off+1, r.Val)
		b.txAppend(tx, recPut, r.Key, r.Val, i)
	case OpDel:
		m.CPU.Compute(4)
		off, present := b.probeSlot(r.Key)
		if present {
			tx.SetI64(b.index, off+1, 0)
		}
		b.txAppend(tx, recDel, r.Key, 0, i)
	}
	tx.SetI64(b.meta, metaReqDone, int64(i))
	tx.Commit()
}

// txAppend writes request i's log record and advanced high-water mark
// inside the transaction.
func (b *Baseline) txAppend(tx *pmem.Tx, code, key, val int64, i int) {
	off := int(b.meta.At(metaLogWords))
	tx.SetI64(b.log, off, code)
	tx.SetI64(b.log, off+1, key)
	tx.SetI64(b.log, off+2, val)
	tx.SetI64(b.log, off+3, int64(i))
	tx.SetI64(b.meta, metaLogWords, int64(off+recWords))
}

// Recover restarts the baseline after a crash, per scheme: checkpoint
// schemes restore the last saved state and resume after it;
// transactional schemes roll back the torn transaction and resume after
// the last committed request; native reinitializes the empty store and
// replays the stream from the first request. It returns the request
// RunFrom should resume at.
func (b *Baseline) Recover() (from int, err error) {
	switch {
	case b.Guard.Checkpointer() != nil:
		cp := b.Guard.Checkpointer()
		if !cp.Valid() {
			b.reset()
			return 1, nil
		}
		tag := cp.Restore(b.index, b.log, b.meta)
		if tag < 1 || tag > int64(b.opts.Requests) {
			return 0, fmt.Errorf("kvlog: checkpoint tag %d out of range", tag)
		}
		return int(tag) + 1, nil
	case b.Guard.Pool() != nil:
		b.Guard.Pool().Recover()
		done := b.meta.Image()[metaReqDone]
		if done < 0 || done > int64(b.opts.Requests) {
			return 0, fmt.Errorf("kvlog: committed request %d out of range", done)
		}
		return int(done) + 1, nil
	default:
		b.reset()
		return 1, nil
	}
}

// reset reinitializes the store to empty in both live and image,
// charging the NVM writes — the "restart from scratch" path of a native
// run.
func (b *Baseline) reset() {
	for _, r := range []interface {
		Live() []int64
		Image() []int64
		Bytes() int
	}{b.index, b.log, b.meta} {
		live, img := r.Live(), r.Image()
		for i := range live {
			live[i] = 0
		}
		for i := range img {
			img[i] = 0
		}
		b.m.ChargeNVMWrite(r.Bytes())
	}
}

func (b *Baseline) String() string {
	return fmt.Sprintf("kvlog.Baseline{requests=%d scheme=%s}", b.opts.Requests, b.Scheme.Name())
}
