package kvlog

import (
	"fmt"

	"adcc/internal/crash"
	"adcc/internal/engine"
)

// StoreWorkload adapts the algorithm-directed store to the
// engine.Workload lifecycle, so the harness, the crash-injection
// campaign, and the public Runner drive it with crash points landing
// mid-request-stream.
type StoreWorkload struct {
	Opts Options
	// Want, when non-nil, is the precomputed oracle state (a pure
	// function of Opts, so campaigns compute it once per cell and share
	// it read-only).
	Want map[int64]int64
	// Scheme selects the algorithm-directed flush variant via its
	// FlushPolicy; nil means the selective log-tail protocol.
	Scheme engine.Scheme

	s   *Store
	rec Recovery
}

// Name implements engine.Workload.
func (w *StoreWorkload) Name() string { return WorkloadName }

// Prepare implements engine.Workload.
func (w *StoreWorkload) Prepare(m *crash.Machine, em *crash.Emulator) error {
	if w.s != nil {
		return fmt.Errorf("kvlog: Prepare called twice")
	}
	w.s = NewStore(m, em, w.Opts)
	if w.Scheme != nil {
		w.s.Policy = w.Scheme.FlushPolicy()
	}
	return nil
}

// Start implements engine.Workload: requests are 1-based.
func (w *StoreWorkload) Start() int64 { return 1 }

// Run implements engine.Workload.
func (w *StoreWorkload) Run(from int64) { w.s.Run(int(from)) }

// Recover implements engine.Workload.
func (w *StoreWorkload) Recover() (int64, error) {
	rec, from, err := w.s.Recover()
	w.rec = rec
	if err != nil {
		return 0, err
	}
	if from < 1 || from > w.s.opts.Requests+1 {
		return 0, fmt.Errorf("kvlog: restart request %d out of range", from)
	}
	return int64(from), nil
}

// Verify implements engine.Workload: the live index contents must equal
// the oracle map.
func (w *StoreWorkload) Verify() error { return w.s.Verify(w.Want) }

// Metrics implements engine.Workload: simulated throughput and request
// latency percentiles, plus the last recovery's replay counters.
func (w *StoreWorkload) Metrics() map[string]float64 {
	lat := w.s.ReqNS[1:]
	return map[string]float64{
		"ops_per_sec":      Throughput(lat),
		"p50_req_ns":       float64(Percentile(lat, 50)),
		"p95_req_ns":       float64(Percentile(lat, 95)),
		"p99_req_ns":       float64(Percentile(lat, 99)),
		"replayed_records": float64(w.rec.Replayed),
		"replay_ns":        float64(w.rec.ReplayNS),
	}
}

// BaselineWorkload adapts the store under a conventional scheme to the
// engine.Workload lifecycle.
type BaselineWorkload struct {
	Opts Options
	// Want, when non-nil, is the precomputed oracle state (see
	// StoreWorkload.Want).
	Want map[int64]int64
	// Scheme selects the conventional mechanism; nil means native.
	Scheme engine.Scheme

	b *Baseline
}

// Name implements engine.Workload.
func (w *BaselineWorkload) Name() string { return WorkloadName }

// Prepare implements engine.Workload.
func (w *BaselineWorkload) Prepare(m *crash.Machine, em *crash.Emulator) error {
	if w.b != nil {
		return fmt.Errorf("kvlog: Prepare called twice")
	}
	w.b = NewBaseline(m, w.Opts, w.Scheme)
	w.b.Em = em
	return nil
}

// Start implements engine.Workload: requests are 1-based.
func (w *BaselineWorkload) Start() int64 { return 1 }

// Run implements engine.Workload.
func (w *BaselineWorkload) Run(from int64) { w.b.RunFrom(int(from)) }

// Recover implements engine.Workload.
func (w *BaselineWorkload) Recover() (int64, error) {
	from, err := w.b.Recover()
	return int64(from), err
}

// Verify implements engine.Workload: same oracle comparison as the
// algorithm-directed store.
func (w *BaselineWorkload) Verify() error { return w.b.Verify(w.Want) }

// Metrics implements engine.Workload.
func (w *BaselineWorkload) Metrics() map[string]float64 {
	lat := w.b.ReqNS[1:]
	return map[string]float64{
		"ops_per_sec": Throughput(lat),
		"p50_req_ns":  float64(Percentile(lat, 50)),
		"p95_req_ns":  float64(Percentile(lat, 95)),
		"p99_req_ns":  float64(Percentile(lat, 99)),
	}
}

// Interface conformance.
var (
	_ engine.Workload = (*StoreWorkload)(nil)
	_ engine.Workload = (*BaselineWorkload)(nil)
)
