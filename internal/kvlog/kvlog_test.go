package kvlog

import (
	"fmt"
	"testing"

	"adcc/internal/cache"
	"adcc/internal/crash"
	"adcc/internal/engine"
)

// testOpts is a CI-sized request stream.
func testOpts() Options {
	return Options{Requests: 200, KeySpace: 64, ScanLen: 4, CkptEvery: 16, Seed: 7}
}

// newTestMachine builds an NVM-only platform with the given LLC size.
func newTestMachine(llcBytes int) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: crash.NVMOnly,
		Cache: cache.Config{
			SizeBytes:         llcBytes,
			LineBytes:         64,
			Assoc:             16,
			HitNS:             4,
			FlushChargesClean: true,
			PrefetchStreams:   16,
		},
	})
}

func TestStreamDeterministicAndMixed(t *testing.T) {
	opts := testOpts()
	a, b := Stream(opts), Stream(opts)
	if len(a) != opts.Requests {
		t.Fatalf("stream length %d, want %d", len(a), opts.Requests)
	}
	seen := map[Op]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		seen[a[i].Op]++
		if a[i].Op == OpPut && a[i].Val == 0 {
			t.Fatalf("request %d: put with zero value (zero encodes absence)", i)
		}
		if a[i].Key < 0 || a[i].Key >= int64(opts.KeySpace) {
			t.Fatalf("request %d: key %d outside key space", i, a[i].Key)
		}
	}
	for _, op := range []Op{OpPut, OpGet, OpDel, OpScan} {
		if seen[op] == 0 {
			t.Fatalf("op mix never produced %v (mix: %v)", op, seen)
		}
	}
	if len(Oracle(opts)) == 0 {
		t.Fatal("oracle state is empty")
	}
}

// TestCrashFreeRunsMatchOracle asserts every implementation and scheme
// serves the exact oracle state when nothing crashes.
func TestCrashFreeRunsMatchOracle(t *testing.T) {
	opts := testOpts()
	want := Oracle(opts)

	policies := map[string]engine.FlushPolicy{
		"selective":  engine.FlushSelective,
		"index-only": engine.FlushIndexOnly,
		"every-iter": engine.FlushEveryIter,
	}
	for name, p := range policies {
		m := newTestMachine(1 << 20)
		s := NewStore(m, nil, opts)
		s.Policy = p
		s.Run(1)
		if err := s.Verify(want); err != nil {
			t.Errorf("store %s: %v", name, err)
		}
	}

	for _, scheme := range []string{
		engine.SchemeNative, engine.SchemeCkptHDD, engine.SchemeCkptNVM, engine.SchemePMEM,
	} {
		m := newTestMachine(1 << 20)
		b := NewBaseline(m, opts, engine.MustLookup(scheme))
		b.Run()
		if err := b.Verify(want); err != nil {
			t.Errorf("baseline %s: %v", scheme, err)
		}
	}
}

// TestAlgoRecoveryAcrossCrashPoints crashes the algorithm-directed
// store at trigger occurrences and raw op counts — log replay must
// rebuild the served state from every point, including crashes landing
// mid-request.
func TestAlgoRecoveryAcrossCrashPoints(t *testing.T) {
	opts := testOpts()
	want := Oracle(opts)

	pm := newTestMachine(64 << 10)
	pem := crash.NewEmulator(pm)
	prof := pem.Profile(func() { NewStore(pm, pem, opts).Run(1) })
	if prof.Ops == 0 {
		t.Fatal("profile saw no memory operations")
	}

	points := []crash.CrashPoint{
		{Trigger: TriggerReqEnd, Occurrence: 1},
		{Trigger: TriggerReqEnd, Occurrence: 97},
		{Trigger: TriggerReqEnd, Occurrence: opts.Requests},
		{Op: prof.Ops / 5},
		{Op: prof.Ops / 2},
		{Op: prof.Ops - prof.Ops/7},
	}
	for _, pt := range points {
		t.Run(pt.String(), func(t *testing.T) {
			m := newTestMachine(64 << 10)
			em := crash.NewEmulator(m)
			s := NewStore(m, em, opts)
			em.Arm(pt)
			if !em.Run(func() { s.Run(1) }) {
				t.Fatalf("point %v did not crash", pt)
			}
			rec, from, err := s.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if from < 1 || from > opts.Requests+1 {
				t.Fatalf("restart request %d out of range", from)
			}
			if rec.Skipped != 0 {
				t.Fatalf("full protocol skipped %d records", rec.Skipped)
			}
			s.Run(from)
			if err := s.Verify(want); err != nil {
				t.Fatalf("recovered run corrupt: %v", err)
			}
		})
	}
}

// TestNaiveRecoveryCorrupts reproduces the KV analogue of the paper's
// Figure 10 bias: the index-only design flushes the high-water mark but
// never the records it names, so on a cache-resident store (dirty log
// lines lost at the crash) replay rebuilds from zeros and the served
// state silently loses committed writes.
func TestNaiveRecoveryCorrupts(t *testing.T) {
	opts := testOpts()
	want := Oracle(opts)
	m := newTestMachine(8 << 20) // store stays cache-resident: maximal loss
	em := crash.NewEmulator(m)
	s := NewStore(m, em, opts)
	s.Policy = engine.FlushIndexOnly
	em.CrashAtTrigger(TriggerReqEnd, 150)
	if !em.Run(func() { s.Run(1) }) {
		t.Fatal("did not crash")
	}
	rec, from, err := s.Recover()
	if err != nil {
		t.Fatalf("naive Recover errored (it trusts the mark blindly): %v", err)
	}
	if rec.Skipped == 0 {
		t.Fatal("naive replay skipped nothing; expected unpersisted records below the mark")
	}
	s.Run(from)
	if err := s.Verify(want); err == nil {
		t.Fatal("naive recovery verified on a cache-resident store; expected silent corruption")
	}
}

// TestSelectiveRecoversWhereNaiveCorrupts runs the full protocol at the
// exact crash point of TestNaiveRecoveryCorrupts: with the log tail
// flushed record-before-mark, replay rebuilds the exact index.
func TestSelectiveRecoversWhereNaiveCorrupts(t *testing.T) {
	opts := testOpts()
	want := Oracle(opts)
	m := newTestMachine(8 << 20)
	em := crash.NewEmulator(m)
	s := NewStore(m, em, opts)
	em.CrashAtTrigger(TriggerReqEnd, 150)
	if !em.Run(func() { s.Run(1) }) {
		t.Fatal("did not crash")
	}
	rec, from, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Replayed == 0 {
		t.Fatal("recovery replayed no records")
	}
	if from != 151 {
		t.Fatalf("restart request = %d, want 151 (crash fired after request 150 committed)", from)
	}
	s.Run(from)
	if err := s.Verify(want); err != nil {
		t.Fatalf("selective recovery corrupt: %v", err)
	}
}

// TestBaselineRecovery crashes the store under each conventional scheme
// and checks the scheme's restart semantics plus a verified state.
func TestBaselineRecovery(t *testing.T) {
	opts := testOpts()
	want := Oracle(opts)
	const crashAt = 40 // checkpoints land at 16, 32, 48, ...
	cases := []struct {
		scheme      string
		wantRestart int
	}{
		{engine.SchemeNative, 1},
		{engine.SchemeCkptNVM, 33},
		{engine.SchemeCkptHDD, 33},
		{engine.SchemePMEM, crashAt + 1},
	}
	for _, tc := range cases {
		t.Run(tc.scheme, func(t *testing.T) {
			m := newTestMachine(1 << 20)
			em := crash.NewEmulator(m)
			b := NewBaseline(m, opts, engine.MustLookup(tc.scheme))
			b.Em = em
			em.CrashAtTrigger(TriggerReqEnd, crashAt)
			if !em.Run(b.Run) {
				t.Fatal("did not crash")
			}
			from, err := b.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if from != tc.wantRestart {
				t.Fatalf("restart request = %d, want %d", from, tc.wantRestart)
			}
			b.RunFrom(from)
			if err := b.Verify(want); err != nil {
				t.Fatalf("recovered run corrupt: %v", err)
			}
		})
	}
}

// TestPMEMMidRequestRollback crashes inside a transaction (an op-count
// point mid-request) and checks the undo log rolls the index slot, log
// record, and both meta words back together.
func TestPMEMMidRequestRollback(t *testing.T) {
	opts := testOpts()
	want := Oracle(opts)

	pm := newTestMachine(1 << 20)
	pem := crash.NewEmulator(pm)
	pb := NewBaseline(pm, opts, engine.MustLookup(engine.SchemePMEM))
	prof := pem.Profile(pb.Run)

	m := newTestMachine(1 << 20)
	em := crash.NewEmulator(m)
	b := NewBaseline(m, opts, engine.MustLookup(engine.SchemePMEM))
	b.Em = em
	em.CrashAtOp(prof.Ops / 2)
	if !em.Run(b.Run) {
		t.Fatal("did not crash")
	}
	from, err := b.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if from < 1 || from > opts.Requests {
		t.Fatalf("restart request %d out of range", from)
	}
	b.RunFrom(from)
	if err := b.Verify(want); err != nil {
		t.Fatalf("rolled-back run corrupt: %v", err)
	}
}

// TestWorkloadLifecycle drives both adapters through the full
// engine.Workload lifecycle the campaign uses: prepare, crash, recover,
// resume, verify, metrics.
func TestWorkloadLifecycle(t *testing.T) {
	opts := testOpts()
	want := Oracle(opts)
	workloads := map[string]func() engine.Workload{
		"store": func() engine.Workload {
			return &StoreWorkload{Opts: opts, Want: want}
		},
		"baseline-ckpt": func() engine.Workload {
			return &BaselineWorkload{Opts: opts, Want: want,
				Scheme: engine.MustLookup(engine.SchemeCkptNVM)}
		},
	}
	for name, build := range workloads {
		t.Run(name, func(t *testing.T) {
			w := build()
			if w.Name() != WorkloadName {
				t.Fatalf("Name() = %q, want %q", w.Name(), WorkloadName)
			}
			m := newTestMachine(64 << 10)
			em := crash.NewEmulator(m)
			if err := w.Prepare(m, em); err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			if err := w.Prepare(m, em); err == nil {
				t.Fatal("second Prepare did not error")
			}
			em.CrashAtTrigger(TriggerReqEnd, 60)
			if !em.Run(func() { w.Run(w.Start()) }) {
				t.Fatal("did not crash")
			}
			from, err := w.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			em.Disarm()
			w.Run(from)
			if err := w.Verify(); err != nil {
				t.Fatalf("Verify after recovery: %v", err)
			}
			met := w.Metrics()
			for _, key := range []string{"ops_per_sec", "p50_req_ns", "p95_req_ns", "p99_req_ns"} {
				if met[key] <= 0 {
					t.Fatalf("metric %s = %v, want > 0 (metrics: %v)", key, met[key], met)
				}
			}
		})
	}
}

// TestRunIsDeterministic asserts two identical simulated runs agree on
// served state, per-request latencies, and simulated time — the
// property every byte-identical report in the repo rests on.
func TestRunIsDeterministic(t *testing.T) {
	opts := testOpts()
	run := func() (map[int64]int64, []int64, int64) {
		m := newTestMachine(1 << 20)
		s := NewStore(m, nil, opts)
		s.Run(1)
		return s.collect(), append([]int64(nil), s.ReqNS...), m.Clock.Now()
	}
	a, la, ta := run()
	b, lb, tb := run()
	if ta != tb {
		t.Fatalf("sim time differs: %d vs %d", ta, tb)
	}
	if err := VerifyState(a, b); err != nil {
		t.Fatalf("served state differs: %v", err)
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("latency differs at request %d: %d vs %d", i, la[i], lb[i])
		}
	}
}

// TestPercentileNearestRank pins the nearest-rank semantics shared with
// the result store's distribution queries.
func TestPercentileNearestRank(t *testing.T) {
	v := []int64{40, 10, 20, 50, 30} // sorted: 10 20 30 40 50
	cases := []struct {
		p    float64
		want int64
	}{
		{50, 30}, {95, 50}, {99, 50}, {100, 50}, {20, 10}, {1, 10},
	}
	for _, tc := range cases {
		if got := Percentile(v, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %d, want 0", got)
	}
}

func ExampleOracle() {
	opts := Options{Requests: 50, KeySpace: 16, Seed: 3}
	want := Oracle(opts)
	fmt.Println(len(want) > 0 && len(want) <= 16)
	// Output: true
}
