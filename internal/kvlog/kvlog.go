// Package kvlog implements the fifth workload family of the
// reproduction: a persistent key-value store — the workload class NVM
// crash consistency serves in production, and the first family whose
// result is a *state* measured in throughput and tail latency rather
// than a matrix measured in time-to-solution.
//
// The store pairs a hash index held in volatile memory with an
// append-only operation log in NVM, driven by a seeded request stream
// with Zipfian key selection: point reads, writes, deletes, and short
// range scans. Like the paper's studies, the family comes in two
// shapes:
//
//   - Store is the extended, algorithm-directed implementation. It
//     exploits log-replay idempotence — the KV analog of the paper's
//     selective flush: replaying the prefix log[0, hwm) of put/delete
//     records rebuilds the exact index, no matter what the crash left
//     in the index's cache lines. So each request explicitly persists
//     only the appended log record plus the one cache line holding the
//     high-water mark (record before mark, so a torn append is
//     invisible), and the index itself is never flushed; recovery
//     clears the index and replays the persistent log prefix.
//
//   - Baseline is the same store driven through an engine.Guard:
//     periodic checkpoints of index+log+mark, PMEM-style undo-log
//     transactions wrapping each request, or nothing (native, replay
//     the whole request stream from scratch).
//
// Both are exposed as engine.Workload adapters (StoreWorkload,
// BaselineWorkload), so the harness, the crash-injection campaign, and
// the public pkg/adcc Runner sweep the kvlog grid exactly like the
// paper's cells, with crash points landing mid-request-stream.
package kvlog

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"adcc/internal/crash"
	"adcc/internal/mem"
)

// WorkloadName is the registry and report name of the kvlog family.
const WorkloadName = "kvlog"

// TriggerReqEnd is the named crash point at the end of each request.
const TriggerReqEnd = "kvlog.req-end"

// Op is a request kind of the seeded stream.
type Op int

// Request kinds. Put and Del mutate the store (and append a log
// record); Get and Scan only read.
const (
	OpPut Op = iota
	OpGet
	OpDel
	OpScan
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDel:
		return "del"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is one operation of the seeded stream. Val is zero except for
// puts, whose values are strictly positive (the index encodes "absent"
// as value zero).
type Request struct {
	Op  Op
	Key int64
	Val int64
}

// Options configures a kvlog run.
type Options struct {
	// Requests is the length of the request stream. Zero means 600.
	Requests int
	// KeySpace is the number of distinct keys Zipfian selection draws
	// from. Zero means 128.
	KeySpace int
	// ZipfS is the Zipf exponent of the key popularity skew (must be
	// > 1). Zero means 1.2.
	ZipfS float64
	// ScanLen is the key width of a range scan. Zero means 8.
	ScanLen int
	// CkptEvery is the checkpoint interval in requests for checkpoint
	// schemes. Zero means 16.
	CkptEvery int
	// Seed drives request-stream construction.
	Seed int64
}

func (o *Options) setDefaults() {
	if o.Requests == 0 {
		o.Requests = 600
	}
	if o.KeySpace == 0 {
		o.KeySpace = 128
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.2
	}
	if o.ScanLen == 0 {
		o.ScanLen = 8
	}
	if o.CkptEvery == 0 {
		o.CkptEvery = 16
	}
}

// Stream generates the deterministic request stream: Zipfian key
// selection over the key space and a fixed op mix (45% put, 30% get,
// 15% delete, 10% scan). A pure function of Options, so campaigns and
// recovery paths regenerate it instead of persisting it.
func Stream(opts Options) []Request {
	opts.setDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	zipf := rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.KeySpace-1))
	reqs := make([]Request, opts.Requests)
	for i := range reqs {
		key := int64(zipf.Uint64())
		switch x := rng.Intn(100); {
		case x < 45:
			reqs[i] = Request{Op: OpPut, Key: key, Val: 1 + rng.Int63n(1<<40)}
		case x < 75:
			reqs[i] = Request{Op: OpGet, Key: key}
		case x < 90:
			reqs[i] = Request{Op: OpDel, Key: key}
		default:
			reqs[i] = Request{Op: OpScan, Key: key}
		}
	}
	return reqs
}

// Oracle applies the request stream to a plain Go map and returns the
// final key-value state — the family's verification oracle (a pure
// function of Options, so campaigns compute it once per cell and share
// it read-only).
func Oracle(opts Options) map[int64]int64 {
	want := map[int64]int64{}
	for _, r := range Stream(opts) {
		switch r.Op {
		case OpPut:
			want[r.Key] = r.Val
		case OpDel:
			delete(want, r.Key)
		}
	}
	return want
}

// VerifyState compares a recovered store's key-value contents against
// the oracle map. The simulated store applies the identical
// deterministic stream, so the comparison is exact: any difference
// means stale or lost updates leaked into the served state.
func VerifyState(got, want map[int64]int64) error {
	if len(got) != len(want) {
		return fmt.Errorf("kvlog: store holds %d keys, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			return fmt.Errorf("kvlog: key %d missing (want %d)", k, w)
		}
		if g != w {
			return fmt.Errorf("kvlog: key %d = %d, want %d", k, g, w)
		}
	}
	return nil
}

// Percentile returns the nearest-rank p-th percentile of v (p in
// (0, 100]); zero for an empty slice. Same semantics as the result
// store's distribution percentiles, so request-latency numbers line up
// with store queries.
func Percentile(v []int64, p float64) int64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]int64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Log record layout: fixed-width records of recWords int64 words —
// [code, key, value, request index]. Two records per cache line, so an
// append never straddles more than one fresh line boundary.
const (
	recWords = 4
	recPut   = 1
	recDel   = 2
)

// Meta word layout (one cache line): the log high-water mark in words
// and the index of the last completed request.
const (
	metaLogWords = 0
	metaReqDone  = 1
)

// state is the persistent layout shared by both implementations: the
// hash index (open addressing, two words per slot: key+1 and value,
// value zero meaning absent — deletes keep the key marker, so probe
// chains never need tombstones), the append-only record log, and the
// one-line meta region carrying the log high-water mark and the
// completed-request counter.
type state struct {
	m    *crash.Machine
	opts Options
	reqs []Request

	index *mem.I64
	log   *mem.I64
	meta  *mem.I64
	slots int // power-of-two slot count
}

// indexSlots returns the slot count: the smallest power of two holding
// the whole key space at load factor <= 0.5 (occupied slots never
// exceed the key space, because deletes keep their key marker).
func indexSlots(keySpace int) int {
	s := 1
	for s < 2*keySpace {
		s <<= 1
	}
	return s
}

// newState allocates the store's regions on a machine's heap in a fixed
// order (index, log, meta), so recording and fork machines of the
// replay engine build structurally identical heaps.
func newState(m *crash.Machine, opts Options) *state {
	opts.setDefaults()
	slots := indexSlots(opts.KeySpace)
	return &state{
		m:     m,
		opts:  opts,
		reqs:  Stream(opts),
		index: m.Heap.AllocI64("kv.index", 2*slots),
		log:   m.Heap.AllocI64("kv.log", recWords*opts.Requests),
		meta:  m.Heap.AllocI64("kv.meta", mem.LineSize/8),
		slots: slots,
	}
}

// probeSlot walks key's open-addressing chain through simulated loads
// and returns the word offset of key's slot: the slot holding key when
// present (present reports whether its value is live), else the first
// empty slot of the chain.
func (st *state) probeSlot(key int64) (off int, present bool) {
	mask := st.slots - 1
	h := int(uint64(key)*0x9E3779B97F4A7C15>>33) & mask
	for i := 0; ; i++ {
		off = 2 * ((h + i) & mask)
		kw := st.index.At(off)
		if kw == 0 {
			return off, false
		}
		if kw == key+1 {
			return off, st.index.At(off+1) != 0
		}
	}
}

// get performs a point lookup through simulated memory.
func (st *state) get(key int64) (int64, bool) {
	st.m.CPU.Compute(4)
	off, present := st.probeSlot(key)
	if !present {
		return 0, false
	}
	return st.index.At(off + 1), true
}

// scan performs a range scan of ScanLen consecutive keys (wrapping at
// the key space), each a point lookup.
func (st *state) scan(key int64) int64 {
	var sum int64
	for j := 0; j < st.opts.ScanLen; j++ {
		if v, ok := st.get((key + int64(j)) % int64(st.opts.KeySpace)); ok {
			sum += v
		}
	}
	return sum
}

// applyPut writes key's slot with plain (unflushed) stores.
func (st *state) applyPut(key, val int64) int {
	st.m.CPU.Compute(4)
	off, _ := st.probeSlot(key)
	st.index.Set(off, key+1)
	st.index.Set(off+1, val)
	return off
}

// applyDel clears key's value, keeping the key marker so probe chains
// stay intact. Deleting an absent key touches nothing.
func (st *state) applyDel(key int64) (int, bool) {
	st.m.CPU.Compute(4)
	off, present := st.probeSlot(key)
	if !present {
		return off, false
	}
	st.index.Set(off+1, 0)
	return off, true
}

// appendRecord writes one log record at the live high-water mark with
// plain stores and returns its word offset. The caller owns the meta
// update and any flushes.
func (st *state) appendRecord(code, key, val, req int64) int {
	off := int(st.meta.At(metaLogWords))
	rec := st.log.StoreRange(off, recWords)
	rec[0] = code
	rec[1] = key
	rec[2] = val
	rec[3] = req
	return off
}

// collect reads the live index into a Go map — the served state a
// verification compares against the oracle.
func (st *state) collect() map[int64]int64 {
	got := map[int64]int64{}
	live := st.index.Live()
	for off := 0; off < len(live); off += 2 {
		if live[off] != 0 && live[off+1] != 0 {
			got[live[off]-1] = live[off+1]
		}
	}
	return got
}

// Verify compares the live store state against want (nil means compute
// the oracle from the options). Promoted to both Store and Baseline.
func (st *state) Verify(want map[int64]int64) error {
	if want == nil {
		want = Oracle(st.opts)
	}
	return VerifyState(st.collect(), want)
}
