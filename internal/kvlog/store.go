package kvlog

import (
	"fmt"

	"adcc/internal/crash"
	"adcc/internal/engine"
)

// Store is the extended, algorithm-directed KV store. Its crash
// consistency rests on one algorithm invariant — log-replay idempotence:
//
//	index  =  fold(apply, empty, log[0, hwm))
//
// Replaying the persistent prefix of put/delete records rebuilds the
// exact index state, no matter what mix of fresh and stale cache lines
// the crash left in the index region. So each mutating request persists
// only its appended log record and then the one cache line holding the
// high-water mark — record strictly before mark, so the mark never
// names bytes that might not have reached the persistence domain — and
// the index itself is never flushed, the KV analog of the paper's
// selective flush. Recovery clears the index (whose image may hold
// evicted lines from requests past the mark) and replays the log
// prefix.
type Store struct {
	state

	Em *crash.Emulator

	// Policy selects the algorithm-directed flush variant:
	// FlushSelective (the full protocol, default), FlushIndexOnly (the
	// rejected naive design: only the high-water-mark line is flushed,
	// never the records it names, and replay trusts whatever the image
	// holds — the KV analogue of the paper's Figure 10 bias), or
	// FlushEveryIter (additionally flush the touched index slot each
	// mutation: expensive and, by the invariant, pointless).
	Policy engine.FlushPolicy

	// ReqNS records the simulated latency of each completed request
	// (1-based; entry 0 unused).
	ReqNS []int64
}

// NewStore builds the algorithm-directed store on a machine (em may be
// nil when no crash will be injected). The store starts empty; the
// zeroed regions are trivially persistent.
func NewStore(m *crash.Machine, em *crash.Emulator, opts Options) *Store {
	return &Store{
		state:  *newState(m, opts),
		Em:     em,
		Policy: engine.FlushSelective,
		ReqNS:  make([]int64, opts.Requests+1),
	}
}

// Run serves requests from..Requests (1-based, inclusive). A fresh run
// starts at from = 1; recovery resumes at the request after the
// persistent high-water mark. Re-executed reads are harmless — nothing
// folds their results back into persistent state — which is what makes
// resuming at a request granularity sound.
func (s *Store) Run(from int) {
	m := s.m
	if from < 1 {
		from = 1
	}
	for i := from; i <= s.opts.Requests; i++ {
		start := m.Clock.Now()
		r := s.reqs[i-1]
		switch r.Op {
		case OpGet:
			s.get(r.Key)
		case OpScan:
			s.scan(r.Key)
		case OpPut:
			slot := s.applyPut(r.Key, r.Val)
			s.logMutation(recPut, r.Key, r.Val, i, slot, true)
		case OpDel:
			slot, wrote := s.applyDel(r.Key)
			s.logMutation(recDel, r.Key, 0, i, slot, wrote)
		}
		s.meta.Set(metaReqDone, int64(i))
		m.Persist(s.meta.Addr(0), 16)
		s.ReqNS[i] = m.Clock.Since(start)
		if s.Em != nil {
			s.Em.Trigger(TriggerReqEnd)
		}
	}
}

// logMutation appends the record for request i and persists it per the
// policy — before the caller advances and persists the high-water mark.
func (s *Store) logMutation(code, key, val int64, i, slot int, wroteSlot bool) {
	off := s.appendRecord(code, key, val, int64(i))
	switch s.Policy {
	case engine.FlushSelective, engine.FlushEveryIter:
		s.m.Persist(s.log.Addr(off), 8*recWords)
	}
	if s.Policy == engine.FlushEveryIter && wroteSlot {
		s.m.Persist(s.index.Addr(slot), 16)
	}
	s.meta.Set(metaLogWords, int64(off+recWords))
}

// Recovery reports the outcome of a post-crash log replay.
type Recovery struct {
	// LogWords is the persistent high-water mark found in the image.
	LogWords int
	// ReqDone is the last completed request found in the image.
	ReqDone int
	// Replayed counts log records applied to the rebuilt index.
	Replayed int
	// Skipped counts invalid records the naive policy ignored.
	Skipped int
	// ReplayNS is the simulated time spent rebuilding the index.
	ReplayNS int64
}

// Recover rebuilds the index from the persistent log prefix and returns
// the request to resume from. The image's index region is untrusted —
// cache eviction may have persisted slots written by requests past the
// high-water mark — so the live index is cleared first and every record
// below the mark is replayed.
//
// Under the full protocol an invalid record below the mark is
// impossible by construction (record persisted before mark), so one is
// reported as an error — detected corruption, the honest outcome under
// injected fault models. Under FlushIndexOnly the naive design has no
// such guarantee and silently skips what it cannot parse, which is
// exactly what turns its missing flushes into served corruption.
func (s *Store) Recover() (Recovery, int, error) {
	m := s.m
	start := m.Clock.Now()
	rec := Recovery{
		LogWords: int(s.meta.Image()[metaLogWords]),
		ReqDone:  int(s.meta.Image()[metaReqDone]),
	}
	m.ChargeNVMRead(64)
	if rec.LogWords < 0 || rec.LogWords > s.log.Len() || rec.LogWords%recWords != 0 {
		return rec, 0, fmt.Errorf("kvlog: high-water mark %d words out of range", rec.LogWords)
	}
	if rec.ReqDone < 0 || rec.ReqDone > s.opts.Requests {
		return rec, 0, fmt.Errorf("kvlog: completed request %d out of range", rec.ReqDone)
	}

	// A fresh, empty index: zero the live region through the cache (the
	// cost a real rebuild pays for allocating and clearing its table).
	const chunk = 512
	for off := 0; off < s.index.Len(); off += chunk {
		z := s.index.StoreRange(off, min(chunk, s.index.Len()-off))
		for j := range z {
			z[j] = 0
		}
	}

	for off := 0; off < rec.LogWords; off += recWords {
		r := s.log.LoadRange(off, recWords)
		m.CPU.Compute(2)
		switch r[0] {
		case recPut:
			s.applyPut(r[1], r[2])
		case recDel:
			s.applyDel(r[1])
		default:
			if s.Policy == engine.FlushIndexOnly {
				rec.Skipped++
				continue
			}
			return rec, 0, fmt.Errorf("kvlog: invalid log record code %d at word %d", r[0], off)
		}
		rec.Replayed++
	}
	rec.ReplayNS = m.Clock.Since(start)
	return rec, rec.ReqDone + 1, nil
}

// Throughput returns the simulated request rate (operations per second)
// over the recorded latencies.
func Throughput(reqNS []int64) float64 {
	var total int64
	var n int
	for _, ns := range reqNS {
		if ns > 0 {
			total += ns
			n++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(n) / (float64(total) * 1e-9)
}
