package mem

import (
	"testing"
	"testing/quick"
)

// recordingAccessor captures accesses for assertions.
type recordingAccessor struct {
	loads, stores []accessRec
}

type accessRec struct {
	a    Addr
	size int
}

func (r *recordingAccessor) Load(a Addr, size int)  { r.loads = append(r.loads, accessRec{a, size}) }
func (r *recordingAccessor) Store(a Addr, size int) { r.stores = append(r.stores, accessRec{a, size}) }

func TestLineAddr(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {65, 64}, {127, 64}, {128, 128},
	}
	for _, c := range cases {
		if got := c.in.LineAddr(); got != c.want {
			t.Errorf("LineAddr(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	h := NewHeap(nil)
	a := h.AllocF64("a", 3) // 24 bytes, should consume a whole line
	b := h.AllocF64("b", 9) // 72 bytes -> 2 lines
	c := h.AllocI64("c", 1)
	for _, r := range []Region{a, b, c} {
		if r.Base()%LineSize != 0 {
			t.Errorf("region %s base %d not line aligned", r.Name(), r.Base())
		}
	}
	if b.Base() != a.Base()+LineSize {
		t.Errorf("b base = %d, want %d", b.Base(), a.Base()+LineSize)
	}
	if c.Base() != b.Base()+2*LineSize {
		t.Errorf("c base = %d, want %d", c.Base(), b.Base()+2*LineSize)
	}
}

func TestZeroAddrUnmapped(t *testing.T) {
	h := NewHeap(nil)
	h.AllocF64("a", 4)
	if r := h.find(0); r != nil {
		t.Fatal("address 0 should not be mapped")
	}
}

func TestAccessNotification(t *testing.T) {
	rec := &recordingAccessor{}
	h := NewHeap(rec)
	r := h.AllocF64("v", 16)
	r.Set(3, 1.5)
	_ = r.At(3)
	r.LoadRange(4, 8)
	r.StoreRange(0, 2)

	if len(rec.stores) != 2 {
		t.Fatalf("stores = %d, want 2", len(rec.stores))
	}
	if rec.stores[0] != (accessRec{r.Addr(3), 8}) {
		t.Errorf("store[0] = %+v", rec.stores[0])
	}
	if rec.stores[1] != (accessRec{r.Addr(0), 16}) {
		t.Errorf("store[1] = %+v", rec.stores[1])
	}
	if len(rec.loads) != 2 {
		t.Fatalf("loads = %d, want 2", len(rec.loads))
	}
	if rec.loads[1] != (accessRec{r.Addr(4), 64}) {
		t.Errorf("load[1] = %+v", rec.loads[1])
	}
}

func TestEmptyRangeNoNotification(t *testing.T) {
	rec := &recordingAccessor{}
	h := NewHeap(rec)
	r := h.AllocF64("v", 4)
	r.LoadRange(2, 0)
	r.StoreRange(2, 0)
	if len(rec.loads)+len(rec.stores) != 0 {
		t.Fatalf("zero-length ranges generated accesses: %d loads %d stores",
			len(rec.loads), len(rec.stores))
	}
}

func TestWritebackCopiesLiveToImage(t *testing.T) {
	h := NewHeap(nil)
	r := h.AllocF64("v", 16)
	r.Set(0, 1.0)
	r.Set(7, 2.0)
	r.Set(8, 3.0) // second line
	if r.Image()[0] != 0 {
		t.Fatal("image updated before writeback")
	}
	// Write back only the first line.
	h.Writeback(r.Base(), LineSize)
	img := r.Image()
	if img[0] != 1.0 || img[7] != 2.0 {
		t.Fatalf("first line image = %v %v, want 1 2", img[0], img[7])
	}
	if img[8] != 0 {
		t.Fatalf("second line image = %v, want 0 (not written back)", img[8])
	}
}

func TestWritebackSpansRegions(t *testing.T) {
	h := NewHeap(nil)
	a := h.AllocF64("a", 8) // exactly one line
	b := h.AllocF64("b", 8)
	a.Set(7, 1.0)
	b.Set(0, 2.0)
	h.Writeback(a.Base(), 2*LineSize)
	if a.Image()[7] != 1.0 || b.Image()[0] != 2.0 {
		t.Fatalf("cross-region writeback failed: %v %v", a.Image()[7], b.Image()[0])
	}
}

func TestWritebackOutsideRegionsIgnored(t *testing.T) {
	h := NewHeap(nil)
	r := h.AllocF64("v", 8)
	// Past the end of all regions: must not panic.
	h.Writeback(r.Base()+Addr(r.Bytes())+4096, LineSize)
	// Before all regions (address 0 .. LineSize is unmapped).
	h.Writeback(0, LineSize)
}

func TestRestartFromImage(t *testing.T) {
	h := NewHeap(nil)
	r := h.AllocF64("v", 8)
	i := h.AllocI64("n", 1)
	r.Set(0, 42.0)
	i.Set(0, 7)
	// Only r's line reaches NVM.
	h.Writeback(r.Base(), LineSize)
	h.RestartFromImage()
	if got := r.Live()[0]; got != 42.0 {
		t.Errorf("persisted value lost on restart: %v", got)
	}
	if got := i.Live()[0]; got != 0 {
		t.Errorf("unpersisted value survived restart: %v", got)
	}
}

func TestSyncAllImages(t *testing.T) {
	h := NewHeap(nil)
	r := h.AllocF64("v", 8)
	r.Set(3, 9.0)
	h.SyncAllImages()
	if r.Image()[3] != 9.0 {
		t.Fatalf("SyncAllImages did not copy live value")
	}
}

func TestI64Region(t *testing.T) {
	h := NewHeap(nil)
	r := h.AllocI64("n", 10)
	r.Set(5, -3)
	if got := r.At(5); got != -3 {
		t.Fatalf("At(5) = %d, want -3", got)
	}
	s := r.StoreRange(0, 3)
	s[0], s[1], s[2] = 1, 2, 3
	got := r.LoadRange(0, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("range roundtrip = %v", got)
	}
	h.Writeback(r.Base(), r.Bytes())
	if r.Image()[5] != -3 {
		t.Fatal("I64 writeback failed")
	}
}

func TestFindRegionBoundaries(t *testing.T) {
	h := NewHeap(nil)
	a := h.AllocF64("a", 8)
	b := h.AllocF64("b", 8)
	if r := h.find(a.Base()); r != Region(a) {
		t.Error("find(a.Base) != a")
	}
	if r := h.find(a.Base() + Addr(a.Bytes()) - 1); r != Region(a) {
		t.Error("find(last byte of a) != a")
	}
	if r := h.find(b.Base()); r != Region(b) {
		t.Error("find(b.Base) != b")
	}
}

// Property: writeback of any sub-range never changes image values outside
// the covered elements, and restoring after a full writeback is lossless.
func TestWritebackRangeProperty(t *testing.T) {
	f := func(vals []float64, offU, nU uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHeap(nil)
		r := h.AllocF64("v", len(vals))
		for i, v := range vals {
			r.Set(i, v)
		}
		off := int(offU) % len(vals)
		n := int(nU) % (len(vals) - off + 1)
		h.Writeback(r.Addr(off), 8*n)
		img := r.Image()
		// Writeback is byte-range exact: covered elements synced,
		// everything else untouched (still zero). Values of zero in
		// vals are indistinguishable either way, which is fine.
		for i := range img {
			covered := i >= off && i < off+n
			if covered && img[i] != vals[i] {
				return false
			}
			if !covered && img[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
