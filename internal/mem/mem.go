// Package mem provides the simulated main-memory substrate of the crash
// emulator: a heap of addressable regions, each pairing a *live* slice
// (the values the simulated CPU observes, i.e. the union of cache and
// memory contents) with a *shadow image* (the values currently persistent
// in NVM).
//
// Every element access on a region notifies an Accessor — in practice the
// cache simulator from internal/cache — with the address and size of the
// access. When the cache evicts or flushes a dirty line it asks the heap
// to write the line back, and the heap copies the covered byte range from
// the live slice into the image. When the emulated machine crashes, the
// cache is discarded and the image alone is the recovery state, exactly
// as on real NVM hardware with volatile caches.
//
// The correctness of this metadata-only design rests on a single-core
// write-back cache invariant: a resident line always holds the most
// recent value of every byte it covers, so materializing a writeback from
// the live slice is exact. See ARCHITECTURE.md, "Metadata-only cache
// exactness".
package mem

import (
	"fmt"
	"math"
	"sort"
)

// LineSize is the cache-line granularity of the simulated machine, in
// bytes. All region allocations are line aligned so a line never spans
// two regions.
const LineSize = 64

// Addr is a simulated physical address.
type Addr uint64

// LineAddr returns the address of the cache line containing a.
func (a Addr) LineAddr() Addr { return a &^ (LineSize - 1) }

// Accessor observes every load and store issued against heap regions.
// The cache simulator implements Accessor; a no-op implementation is used
// for un-instrumented (native) execution.
type Accessor interface {
	// Load records a read of size bytes at address a.
	Load(a Addr, size int)
	// Store records a write of size bytes at address a.
	Store(a Addr, size int)
}

// NullAccessor ignores all accesses. It is the accessor of a heap whose
// workload runs natively (no cache simulation, no crash consistency).
type NullAccessor struct{}

// Load implements Accessor.
func (NullAccessor) Load(Addr, int) {}

// Store implements Accessor.
func (NullAccessor) Store(Addr, int) {}

// Region is the common interface of all typed memory regions.
type Region interface {
	// Name returns the diagnostic name given at allocation.
	Name() string
	// Base returns the first simulated address of the region.
	Base() Addr
	// Bytes returns the size of the region in bytes.
	Bytes() int

	// writeback copies [off, off+n) bytes from live to image.
	writeback(off, n int)
	// restore copies the whole image into the live slice (restart).
	restore()
	// syncImage copies the whole live slice into the image.
	syncImage()
	// versions returns the region's mutation counters.
	versions() *vers
}

// vers carries a region's mutation counters. Every path that can
// mutate the live slice bumps liveVer, every path that can mutate the
// image bumps imageVer — including the raw Live/Image accessors, which
// hand out mutable slices (a returned slice may be written later, so
// the bump is conservative: false-dirty costs a copy, a missed
// mutation would corrupt copy-on-write sharing). An unchanged counter
// therefore proves unchanged contents; a changed counter proves
// nothing.
type vers struct {
	liveVer  uint64
	imageVer uint64
}

func (v *vers) versions() *vers { return v }

// Heap allocates regions at line-aligned simulated addresses and routes
// writebacks from the cache simulator to the owning region.
type Heap struct {
	next    Addr
	regions []Region // sorted by base address
	acc     Accessor
	// lastFind (with its bounds denormalized into plain values, so the
	// memo check costs two compares and no interface calls) memoizes
	// the region of the most recent lookup: writebacks stream through
	// one region at a time, so the binary search is almost always
	// skipped.
	lastFind Region
	lastBase Addr
	lastEnd  Addr
	// imageVer counts image mutations (writebacks and image syncs). Two
	// observations of an untouched heap see the same version, so a
	// version compare is an O(1) "images unchanged since then" test —
	// the fast path behind campaign snapshot deduplication. A changed
	// version does not imply changed contents (a writeback may store the
	// value already present), so equal-content detection still needs a
	// full compare.
	imageVer uint64
	// imgMarks memoizes, per region, the last RestoreImages source entry
	// so repeated restores of the same snapshot skip untouched regions.
	imgMarks []imgMark
}

// NewHeap returns an empty heap whose accesses are observed by acc.
// A nil acc is replaced by NullAccessor.
func NewHeap(acc Accessor) *Heap {
	if acc == nil {
		acc = NullAccessor{}
	}
	// Leave address 0 unmapped so a zero Addr is recognizably invalid.
	return &Heap{next: LineSize, acc: acc}
}

// SetAccessor replaces the heap's access observer. This is used when an
// emulated machine restarts after a crash with a cold cache, and by the
// crash emulator to interpose instruction counting.
func (h *Heap) SetAccessor(acc Accessor) {
	if acc == nil {
		acc = NullAccessor{}
	}
	h.acc = acc
}

// Accessor returns the heap's current access observer.
func (h *Heap) Accessor() Accessor { return h.acc }

// reserve claims size bytes (rounded up to a whole number of lines) and
// returns the base address.
func (h *Heap) reserve(size int) Addr {
	if size < 0 {
		panic("mem: negative allocation")
	}
	base := h.next
	rounded := (Addr(size) + LineSize - 1) &^ (LineSize - 1)
	if rounded == 0 {
		rounded = LineSize
	}
	h.next += rounded
	return base
}

func (h *Heap) addRegion(r Region) {
	h.regions = append(h.regions, r)
}

// Writeback copies the byte range [a, a+size) from the live data into the
// NVM image of the owning region(s). It is called by the cache simulator
// when a dirty line is evicted or flushed. Ranges that fall outside any
// region (e.g. a line padding tail) are ignored harmlessly.
func (h *Heap) Writeback(a Addr, size int) {
	h.imageVer++
	for size > 0 {
		r := h.find(a)
		if r == nil {
			return
		}
		// find has primed lastBase/lastEnd with r's bounds.
		off := int(a - h.lastBase)
		n := min(size, int(h.lastEnd-a))
		r.writeback(off, n)
		a += Addr(n)
		size -= n
	}
}

// find returns the region containing address a, or nil, leaving the
// region's bounds in lastBase/lastEnd.
func (h *Heap) find(a Addr) Region {
	if r := h.lastFind; r != nil && a >= h.lastBase && a < h.lastEnd {
		return r
	}
	i := sort.Search(len(h.regions), func(i int) bool {
		return h.regions[i].Base() > a
	})
	if i == 0 {
		return nil
	}
	r := h.regions[i-1]
	base := r.Base()
	end := base + Addr(r.Bytes())
	if a >= end {
		return nil
	}
	h.lastFind, h.lastBase, h.lastEnd = r, base, end
	return r
}

// RestartFromImage models a process restart after a crash: every region's
// live slice is overwritten with its NVM image, discarding all values
// that existed only in volatile state.
func (h *Heap) RestartFromImage() {
	for _, r := range h.regions {
		r.restore()
	}
}

// SyncAllImages forces every region's image to equal its live data. It is
// used to establish initial conditions (the paper assumes the input state
// — matrix, right-hand side, grids — is persistent before the run).
func (h *Heap) SyncAllImages() {
	h.imageVer++
	for _, r := range h.regions {
		r.syncImage()
	}
}

// ImageVersion returns the heap's image-mutation counter; see the
// imageVer field for the compare semantics.
func (h *Heap) ImageVersion() uint64 { return h.imageVer }

// Regions returns the allocated regions in address order.
func (h *Heap) Regions() []Region { return h.regions }

// ImageWord returns the persistent-image word at 8-byte-aligned address
// a as raw bits, or ok=false when a is unaligned or unmapped. It reads
// the image directly, without charging a simulated access or bumping
// version counters: fault-model overlays are computed from pre-crash
// state and must not perturb copy-on-write snapshot sharing.
func (h *Heap) ImageWord(a Addr) (uint64, bool) {
	if a%8 != 0 {
		return 0, false
	}
	r := h.find(a)
	if r == nil {
		return 0, false
	}
	i := int(a-h.lastBase) / 8
	switch r := r.(type) {
	case *F64:
		return math.Float64bits(r.image[i]), true
	case *I64:
		return uint64(r.image[i]), true
	}
	return 0, false
}

// LiveWord returns the live word at 8-byte-aligned address a as raw
// bits, or ok=false when a is unaligned or unmapped. Like ImageWord it
// observes without charging an access or bumping counters.
func (h *Heap) LiveWord(a Addr) (uint64, bool) {
	if a%8 != 0 {
		return 0, false
	}
	r := h.find(a)
	if r == nil {
		return 0, false
	}
	i := int(a-h.lastBase) / 8
	switch r := r.(type) {
	case *F64:
		return math.Float64bits(r.live[i]), true
	case *I64:
		return uint64(r.live[i]), true
	}
	return 0, false
}

// StorePersistWord overwrites both the live and image word at
// 8-byte-aligned address a with the raw bits w, reporting whether a was
// mapped. It is the post-crash primitive fault models use to rewrite
// what "actually persisted" (a torn or reordered line, a flipped bit):
// after a crash live equals image, so both copies must move together.
// The owning region's version counters are bumped exactly like a
// writeback followed by a restart, so copy-on-write snapshot sharing
// and restore memoization stay sound.
func (h *Heap) StorePersistWord(a Addr, w uint64) bool {
	if a%8 != 0 {
		return false
	}
	r := h.find(a)
	if r == nil {
		return false
	}
	i := int(a-h.lastBase) / 8
	switch r := r.(type) {
	case *F64:
		f := math.Float64frombits(w)
		r.live[i] = f
		r.image[i] = f
	case *I64:
		r.live[i] = int64(w)
		r.image[i] = int64(w)
	default:
		return false
	}
	v := r.versions()
	v.liveVer++
	v.imageVer++
	h.imageVer++
	return true
}

// F64 is a region of float64 elements.
type F64 struct {
	vers
	h     *Heap
	name  string
	base  Addr
	live  []float64
	image []float64
}

// AllocF64 allocates a float64 region of n elements with both live and
// image contents zeroed.
func (h *Heap) AllocF64(name string, n int) *F64 {
	r := &F64{
		h:     h,
		name:  name,
		base:  h.reserve(8 * n),
		live:  make([]float64, n),
		image: make([]float64, n),
	}
	h.addRegion(r)
	return r
}

// Name implements Region.
func (r *F64) Name() string { return r.name }

// Base implements Region.
func (r *F64) Base() Addr { return r.base }

// Bytes implements Region.
func (r *F64) Bytes() int { return 8 * len(r.live) }

// Len returns the number of elements.
func (r *F64) Len() int { return len(r.live) }

// Addr returns the simulated address of element i.
func (r *F64) Addr(i int) Addr { return r.base + Addr(8*i) }

// At performs a simulated load of element i and returns its live value.
func (r *F64) At(i int) float64 {
	r.h.acc.Load(r.Addr(i), 8)
	return r.live[i]
}

// Set performs a simulated store of v into element i.
func (r *F64) Set(i int, v float64) {
	r.h.acc.Store(r.Addr(i), 8)
	r.liveVer++
	r.live[i] = v
}

// LoadRange performs a simulated load of elements [i, i+n) and returns
// the live sub-slice. The caller must treat the result as read-only,
// with one sanctioned exception (the register-blocking pattern): it may
// accumulate into the slice provided it issues a covering StoreRange
// after the mutation completes. A store notification must never precede
// the mutation it covers if other region accesses can intervene —
// an eviction in that window would freeze partial values into the NVM
// image with no later writeback.
func (r *F64) LoadRange(i, n int) []float64 {
	if n > 0 {
		r.h.acc.Load(r.Addr(i), 8*n)
	}
	return r.live[i : i+n]
}

// StoreRange performs a simulated store over elements [i, i+n) and
// returns the live sub-slice for the caller to fill.
func (r *F64) StoreRange(i, n int) []float64 {
	if n > 0 {
		r.h.acc.Store(r.Addr(i), 8*n)
	}
	r.liveVer++
	return r.live[i : i+n]
}

// Image returns the persistent NVM image of the region. Recovery code
// reads this after a crash; it must not be mutated except through
// writebacks and restores.
func (r *F64) Image() []float64 {
	r.imageVer++
	r.h.imageVer++
	return r.image
}

// Live returns the live slice without charging a simulated access. It is
// intended for test assertions and result extraction after a run.
func (r *F64) Live() []float64 {
	r.liveVer++
	return r.live
}

func (r *F64) writeback(off, n int) {
	lo := off / 8
	hi := (off + n + 7) / 8
	if hi > len(r.live) {
		hi = len(r.live)
	}
	r.imageVer++
	copy(r.image[lo:hi], r.live[lo:hi])
}

func (r *F64) restore() {
	r.liveVer++
	copy(r.live, r.image)
}

func (r *F64) syncImage() {
	r.imageVer++
	copy(r.image, r.live)
}

// I64 is a region of int64 elements.
type I64 struct {
	vers
	h     *Heap
	name  string
	base  Addr
	live  []int64
	image []int64
}

// AllocI64 allocates an int64 region of n elements with both live and
// image contents zeroed.
func (h *Heap) AllocI64(name string, n int) *I64 {
	r := &I64{
		h:     h,
		name:  name,
		base:  h.reserve(8 * n),
		live:  make([]int64, n),
		image: make([]int64, n),
	}
	h.addRegion(r)
	return r
}

// Name implements Region.
func (r *I64) Name() string { return r.name }

// Base implements Region.
func (r *I64) Base() Addr { return r.base }

// Bytes implements Region.
func (r *I64) Bytes() int { return 8 * len(r.live) }

// Len returns the number of elements.
func (r *I64) Len() int { return len(r.live) }

// Addr returns the simulated address of element i.
func (r *I64) Addr(i int) Addr { return r.base + Addr(8*i) }

// At performs a simulated load of element i and returns its live value.
func (r *I64) At(i int) int64 {
	r.h.acc.Load(r.Addr(i), 8)
	return r.live[i]
}

// Set performs a simulated store of v into element i.
func (r *I64) Set(i int, v int64) {
	r.h.acc.Store(r.Addr(i), 8)
	r.liveVer++
	r.live[i] = v
}

// LoadRange performs a simulated load of elements [i, i+n) and returns
// the live sub-slice. The caller must treat the result as read-only.
func (r *I64) LoadRange(i, n int) []int64 {
	if n > 0 {
		r.h.acc.Load(r.Addr(i), 8*n)
	}
	return r.live[i : i+n]
}

// StoreRange performs a simulated store over elements [i, i+n) and
// returns the live sub-slice for the caller to fill.
func (r *I64) StoreRange(i, n int) []int64 {
	if n > 0 {
		r.h.acc.Store(r.Addr(i), 8*n)
	}
	r.liveVer++
	return r.live[i : i+n]
}

// Image returns the persistent NVM image of the region.
func (r *I64) Image() []int64 {
	r.imageVer++
	r.h.imageVer++
	return r.image
}

// Live returns the live slice without charging a simulated access.
func (r *I64) Live() []int64 {
	r.liveVer++
	return r.live
}

func (r *I64) writeback(off, n int) {
	lo := off / 8
	hi := (off + n + 7) / 8
	if hi > len(r.live) {
		hi = len(r.live)
	}
	r.imageVer++
	copy(r.image[lo:hi], r.live[lo:hi])
}

func (r *I64) restore() {
	r.liveVer++
	copy(r.live, r.image)
}

func (r *I64) syncImage() {
	r.imageVer++
	copy(r.image, r.live)
}

// String aids debugging.
func (h *Heap) String() string {
	return fmt.Sprintf("mem.Heap{regions=%d, next=%#x}", len(h.regions), h.next)
}

// HeapState is a deep-copy snapshot of every region's contents, taken
// in address order: the live and image slices of all F64 regions
// concatenated, then likewise for all I64 regions. Region layout
// (count, order, lengths, addresses) is not captured — a snapshot may
// only be restored onto a heap with the identical allocation history,
// which Restore validates.
type HeapState struct {
	F64Live  []float64
	F64Image []float64
	I64Live  []int64
	I64Image []int64

	regions int
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// Snapshot deep-copies all region contents into st and returns it. A
// nil st allocates a fresh state; a non-nil st reuses its buffers when
// they are large enough, so a pooled state snapshots without
// allocating.
func (h *Heap) Snapshot(st *HeapState) *HeapState {
	if st == nil {
		st = &HeapState{}
	}
	nf, ni := 0, 0
	for _, r := range h.regions {
		switch r := r.(type) {
		case *F64:
			nf += len(r.live)
		case *I64:
			ni += len(r.live)
		default:
			panic(fmt.Sprintf("mem: cannot snapshot region type %T", r))
		}
	}
	st.regions = len(h.regions)
	st.F64Live = growF64(st.F64Live, nf)
	st.F64Image = growF64(st.F64Image, nf)
	st.I64Live = growI64(st.I64Live, ni)
	st.I64Image = growI64(st.I64Image, ni)
	f, i := 0, 0
	for _, r := range h.regions {
		switch r := r.(type) {
		case *F64:
			copy(st.F64Live[f:], r.live)
			copy(st.F64Image[f:], r.image)
			f += len(r.live)
		case *I64:
			copy(st.I64Live[i:], r.live)
			copy(st.I64Image[i:], r.image)
			i += len(r.live)
		}
	}
	return st
}

// Restore overwrites every region's live and image contents from st.
// The heap must have the identical allocation history as the heap st
// was captured from; a region-count or length mismatch panics.
func (h *Heap) Restore(st *HeapState) {
	if st.regions != len(h.regions) {
		panic(fmt.Sprintf("mem: restore of %d-region state onto %d-region heap",
			st.regions, len(h.regions)))
	}
	f, i := 0, 0
	for _, r := range h.regions {
		switch r := r.(type) {
		case *F64:
			copy(r.live, st.F64Live[f:])
			copy(r.image, st.F64Image[f:])
			f += len(r.live)
		case *I64:
			copy(r.live, st.I64Live[i:])
			copy(r.image, st.I64Image[i:])
			i += len(r.live)
		}
	}
	if f != len(st.F64Live) || i != len(st.I64Live) {
		panic(fmt.Sprintf("mem: restore length mismatch (f64 %d != %d or i64 %d != %d)",
			f, len(st.F64Live), i, len(st.I64Live)))
	}
}

// ImagesEqual reports whether the persistent images of two snapshots of
// the same heap are bit-identical. Floats compare by bit pattern, so
// distinct NaN payloads count as different (never as spuriously equal).
func (a *HeapState) ImagesEqual(b *HeapState) bool {
	if len(a.F64Image) != len(b.F64Image) || len(a.I64Image) != len(b.I64Image) {
		return false
	}
	for i, v := range a.F64Image {
		if math.Float64bits(v) != math.Float64bits(b.F64Image[i]) {
			return false
		}
	}
	for i, v := range a.I64Image {
		if v != b.I64Image[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two snapshots are bit-identical in both live
// and image contents.
func (a *HeapState) Equal(b *HeapState) bool {
	if !a.ImagesEqual(b) || len(a.F64Live) != len(b.F64Live) || len(a.I64Live) != len(b.I64Live) {
		return false
	}
	for i, v := range a.F64Live {
		if math.Float64bits(v) != math.Float64bits(b.F64Live[i]) {
			return false
		}
	}
	for i, v := range a.I64Live {
		if v != b.I64Live[i] {
			return false
		}
	}
	return true
}

// FNV-1a parameters, used for all content hashing in this package.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= fnvPrime64
	}
	return h
}

// ImageHash returns an FNV-1a hash of the persistent images, a cheap
// prefilter for ImagesEqual-based deduplication.
func (a *HeapState) ImageHash() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range a.F64Image {
		h = fnvMix(h, math.Float64bits(v))
	}
	for _, v := range a.I64Image {
		h = fnvMix(h, uint64(v))
	}
	return h
}

// ImageState is a copy-on-write snapshot of every region's persistent
// image — the only heap state a crashed machine restarts from. Entries
// are immutable once created and are shared between successive
// snapshots of the same heap: SnapshotImages reuses the previous
// snapshot's entry for any region whose image version counter has not
// moved, so capturing a crash point that persisted little since the
// last one copies only the regions that actually changed.
type ImageState struct {
	src     *Heap
	regions []*imageRegion
	hash    uint64
}

// imageRegion is one region's image copy. Exactly one of f64/i64 is
// populated (matching the region type); ver is the region's image
// version at capture time and hash is the FNV-1a hash of the contents.
// An imageRegion is never mutated after SnapshotImages returns it.
type imageRegion struct {
	f64  []float64
	i64  []int64
	ver  uint64
	hash uint64
}

// SnapshotImages captures the persistent images of all regions. If prev
// is a snapshot of the same heap, any region whose image version is
// unchanged since prev shares prev's entry instead of copying (the
// version counters are bumped by every image-mutating path, so an equal
// version proves equal contents).
func (h *Heap) SnapshotImages(prev *ImageState) *ImageState {
	st := &ImageState{src: h, regions: make([]*imageRegion, len(h.regions))}
	share := prev != nil && prev.src == h && len(prev.regions) <= len(h.regions)
	hash := uint64(fnvOffset64)
	for i, r := range h.regions {
		v := r.versions()
		if share && i < len(prev.regions) && prev.regions[i].ver == v.imageVer {
			st.regions[i] = prev.regions[i]
		} else {
			e := &imageRegion{ver: v.imageVer}
			eh := uint64(fnvOffset64)
			switch r := r.(type) {
			case *F64:
				e.f64 = append([]float64(nil), r.image...)
				for _, x := range e.f64 {
					eh = fnvMix(eh, math.Float64bits(x))
				}
			case *I64:
				e.i64 = append([]int64(nil), r.image...)
				for _, x := range e.i64 {
					eh = fnvMix(eh, uint64(x))
				}
			default:
				panic(fmt.Sprintf("mem: cannot snapshot region type %T", r))
			}
			e.hash = eh
			st.regions[i] = e
		}
		hash = fnvMix(hash, st.regions[i].hash)
	}
	st.hash = hash
	return st
}

// imgMark records which ImageState entry a region was last restored
// from, plus the version counters observed immediately after that
// restore. A later restore from the same (immutable) entry with unmoved
// counters is a provable no-op and is skipped.
type imgMark struct {
	entry    *imageRegion
	liveVer  uint64
	imageVer uint64
}

// RestoreImages overwrites every region's live AND image contents from
// st, the post-crash restart state: it folds RestartFromImage into the
// restore, leaving live == image == the snapshot. The heap must have
// the identical allocation history as the heap st was captured from —
// which may be a different heap instance (a fork machine built by
// re-running the same construction code); a region count or length
// mismatch panics.
//
// Restores are memoized per region: restoring the same snapshot onto an
// untouched region costs two counter compares instead of two copies,
// which makes replaying many crash points against one shared prefix
// nearly free when consecutive points share image state.
func (h *Heap) RestoreImages(st *ImageState) {
	if len(st.regions) != len(h.regions) {
		panic(fmt.Sprintf("mem: restore of %d-region image state onto %d-region heap",
			len(st.regions), len(h.regions)))
	}
	if len(h.imgMarks) != len(h.regions) {
		h.imgMarks = make([]imgMark, len(h.regions))
	}
	for i, e := range st.regions {
		r := h.regions[i]
		v := r.versions()
		mk := &h.imgMarks[i]
		if mk.entry == e && mk.liveVer == v.liveVer && mk.imageVer == v.imageVer {
			continue
		}
		switch r := r.(type) {
		case *F64:
			if len(e.f64) != len(r.live) {
				panic(fmt.Sprintf("mem: image restore length mismatch on %q", r.name))
			}
			copy(r.live, e.f64)
			copy(r.image, e.f64)
		case *I64:
			if len(e.i64) != len(r.live) {
				panic(fmt.Sprintf("mem: image restore length mismatch on %q", r.name))
			}
			copy(r.live, e.i64)
			copy(r.image, e.i64)
		default:
			panic(fmt.Sprintf("mem: cannot restore region type %T", r))
		}
		v.liveVer++
		v.imageVer++
		*mk = imgMark{entry: e, liveVer: v.liveVer, imageVer: v.imageVer}
	}
	h.imageVer++
}

// Hash returns an FNV-1a hash over the per-region content hashes, a
// cheap prefilter for Equal-based deduplication.
func (a *ImageState) Hash() uint64 { return a.hash }

// Equal reports whether two image snapshots are bit-identical. Shared
// entries and same-heap same-version entries are proven equal without
// touching the data; everything else falls back to a hash compare and
// then a content compare (floats by bit pattern).
func (a *ImageState) Equal(b *ImageState) bool {
	if a == b {
		return true
	}
	if len(a.regions) != len(b.regions) {
		return false
	}
	sameSrc := a.src == b.src
	for i, ra := range a.regions {
		rb := b.regions[i]
		if ra == rb || (sameSrc && ra.ver == rb.ver) {
			continue
		}
		if ra.hash != rb.hash || len(ra.f64) != len(rb.f64) || len(ra.i64) != len(rb.i64) {
			return false
		}
		for j, v := range ra.f64 {
			if math.Float64bits(v) != math.Float64bits(rb.f64[j]) {
				return false
			}
		}
		for j, v := range ra.i64 {
			if v != rb.i64[j] {
				return false
			}
		}
	}
	return true
}
