// Package mem provides the simulated main-memory substrate of the crash
// emulator: a heap of addressable regions, each pairing a *live* slice
// (the values the simulated CPU observes, i.e. the union of cache and
// memory contents) with a *shadow image* (the values currently persistent
// in NVM).
//
// Every element access on a region notifies an Accessor — in practice the
// cache simulator from internal/cache — with the address and size of the
// access. When the cache evicts or flushes a dirty line it asks the heap
// to write the line back, and the heap copies the covered byte range from
// the live slice into the image. When the emulated machine crashes, the
// cache is discarded and the image alone is the recovery state, exactly
// as on real NVM hardware with volatile caches.
//
// The correctness of this metadata-only design rests on a single-core
// write-back cache invariant: a resident line always holds the most
// recent value of every byte it covers, so materializing a writeback from
// the live slice is exact. See ARCHITECTURE.md, "Metadata-only cache
// exactness".
package mem

import (
	"fmt"
	"sort"
)

// LineSize is the cache-line granularity of the simulated machine, in
// bytes. All region allocations are line aligned so a line never spans
// two regions.
const LineSize = 64

// Addr is a simulated physical address.
type Addr uint64

// LineAddr returns the address of the cache line containing a.
func (a Addr) LineAddr() Addr { return a &^ (LineSize - 1) }

// Accessor observes every load and store issued against heap regions.
// The cache simulator implements Accessor; a no-op implementation is used
// for un-instrumented (native) execution.
type Accessor interface {
	// Load records a read of size bytes at address a.
	Load(a Addr, size int)
	// Store records a write of size bytes at address a.
	Store(a Addr, size int)
}

// NullAccessor ignores all accesses. It is the accessor of a heap whose
// workload runs natively (no cache simulation, no crash consistency).
type NullAccessor struct{}

// Load implements Accessor.
func (NullAccessor) Load(Addr, int) {}

// Store implements Accessor.
func (NullAccessor) Store(Addr, int) {}

// Region is the common interface of all typed memory regions.
type Region interface {
	// Name returns the diagnostic name given at allocation.
	Name() string
	// Base returns the first simulated address of the region.
	Base() Addr
	// Bytes returns the size of the region in bytes.
	Bytes() int

	// writeback copies [off, off+n) bytes from live to image.
	writeback(off, n int)
	// restore copies the whole image into the live slice (restart).
	restore()
	// syncImage copies the whole live slice into the image.
	syncImage()
}

// Heap allocates regions at line-aligned simulated addresses and routes
// writebacks from the cache simulator to the owning region.
type Heap struct {
	next    Addr
	regions []Region // sorted by base address
	acc     Accessor
	// lastFind (with its bounds denormalized into plain values, so the
	// memo check costs two compares and no interface calls) memoizes
	// the region of the most recent lookup: writebacks stream through
	// one region at a time, so the binary search is almost always
	// skipped.
	lastFind Region
	lastBase Addr
	lastEnd  Addr
}

// NewHeap returns an empty heap whose accesses are observed by acc.
// A nil acc is replaced by NullAccessor.
func NewHeap(acc Accessor) *Heap {
	if acc == nil {
		acc = NullAccessor{}
	}
	// Leave address 0 unmapped so a zero Addr is recognizably invalid.
	return &Heap{next: LineSize, acc: acc}
}

// SetAccessor replaces the heap's access observer. This is used when an
// emulated machine restarts after a crash with a cold cache, and by the
// crash emulator to interpose instruction counting.
func (h *Heap) SetAccessor(acc Accessor) {
	if acc == nil {
		acc = NullAccessor{}
	}
	h.acc = acc
}

// Accessor returns the heap's current access observer.
func (h *Heap) Accessor() Accessor { return h.acc }

// reserve claims size bytes (rounded up to a whole number of lines) and
// returns the base address.
func (h *Heap) reserve(size int) Addr {
	if size < 0 {
		panic("mem: negative allocation")
	}
	base := h.next
	rounded := (Addr(size) + LineSize - 1) &^ (LineSize - 1)
	if rounded == 0 {
		rounded = LineSize
	}
	h.next += rounded
	return base
}

func (h *Heap) addRegion(r Region) {
	h.regions = append(h.regions, r)
}

// Writeback copies the byte range [a, a+size) from the live data into the
// NVM image of the owning region(s). It is called by the cache simulator
// when a dirty line is evicted or flushed. Ranges that fall outside any
// region (e.g. a line padding tail) are ignored harmlessly.
func (h *Heap) Writeback(a Addr, size int) {
	for size > 0 {
		r := h.find(a)
		if r == nil {
			return
		}
		// find has primed lastBase/lastEnd with r's bounds.
		off := int(a - h.lastBase)
		n := min(size, int(h.lastEnd-a))
		r.writeback(off, n)
		a += Addr(n)
		size -= n
	}
}

// find returns the region containing address a, or nil, leaving the
// region's bounds in lastBase/lastEnd.
func (h *Heap) find(a Addr) Region {
	if r := h.lastFind; r != nil && a >= h.lastBase && a < h.lastEnd {
		return r
	}
	i := sort.Search(len(h.regions), func(i int) bool {
		return h.regions[i].Base() > a
	})
	if i == 0 {
		return nil
	}
	r := h.regions[i-1]
	base := r.Base()
	end := base + Addr(r.Bytes())
	if a >= end {
		return nil
	}
	h.lastFind, h.lastBase, h.lastEnd = r, base, end
	return r
}

// RestartFromImage models a process restart after a crash: every region's
// live slice is overwritten with its NVM image, discarding all values
// that existed only in volatile state.
func (h *Heap) RestartFromImage() {
	for _, r := range h.regions {
		r.restore()
	}
}

// SyncAllImages forces every region's image to equal its live data. It is
// used to establish initial conditions (the paper assumes the input state
// — matrix, right-hand side, grids — is persistent before the run).
func (h *Heap) SyncAllImages() {
	for _, r := range h.regions {
		r.syncImage()
	}
}

// Regions returns the allocated regions in address order.
func (h *Heap) Regions() []Region { return h.regions }

// F64 is a region of float64 elements.
type F64 struct {
	h     *Heap
	name  string
	base  Addr
	live  []float64
	image []float64
}

// AllocF64 allocates a float64 region of n elements with both live and
// image contents zeroed.
func (h *Heap) AllocF64(name string, n int) *F64 {
	r := &F64{
		h:     h,
		name:  name,
		base:  h.reserve(8 * n),
		live:  make([]float64, n),
		image: make([]float64, n),
	}
	h.addRegion(r)
	return r
}

// Name implements Region.
func (r *F64) Name() string { return r.name }

// Base implements Region.
func (r *F64) Base() Addr { return r.base }

// Bytes implements Region.
func (r *F64) Bytes() int { return 8 * len(r.live) }

// Len returns the number of elements.
func (r *F64) Len() int { return len(r.live) }

// Addr returns the simulated address of element i.
func (r *F64) Addr(i int) Addr { return r.base + Addr(8*i) }

// At performs a simulated load of element i and returns its live value.
func (r *F64) At(i int) float64 {
	r.h.acc.Load(r.Addr(i), 8)
	return r.live[i]
}

// Set performs a simulated store of v into element i.
func (r *F64) Set(i int, v float64) {
	r.h.acc.Store(r.Addr(i), 8)
	r.live[i] = v
}

// LoadRange performs a simulated load of elements [i, i+n) and returns
// the live sub-slice. The caller must treat the result as read-only,
// with one sanctioned exception (the register-blocking pattern): it may
// accumulate into the slice provided it issues a covering StoreRange
// after the mutation completes. A store notification must never precede
// the mutation it covers if other region accesses can intervene —
// an eviction in that window would freeze partial values into the NVM
// image with no later writeback.
func (r *F64) LoadRange(i, n int) []float64 {
	if n > 0 {
		r.h.acc.Load(r.Addr(i), 8*n)
	}
	return r.live[i : i+n]
}

// StoreRange performs a simulated store over elements [i, i+n) and
// returns the live sub-slice for the caller to fill.
func (r *F64) StoreRange(i, n int) []float64 {
	if n > 0 {
		r.h.acc.Store(r.Addr(i), 8*n)
	}
	return r.live[i : i+n]
}

// Image returns the persistent NVM image of the region. Recovery code
// reads this after a crash; it must not be mutated except through
// writebacks and restores.
func (r *F64) Image() []float64 { return r.image }

// Live returns the live slice without charging a simulated access. It is
// intended for test assertions and result extraction after a run.
func (r *F64) Live() []float64 { return r.live }

func (r *F64) writeback(off, n int) {
	lo := off / 8
	hi := (off + n + 7) / 8
	if hi > len(r.live) {
		hi = len(r.live)
	}
	copy(r.image[lo:hi], r.live[lo:hi])
}

func (r *F64) restore() { copy(r.live, r.image) }

func (r *F64) syncImage() { copy(r.image, r.live) }

// I64 is a region of int64 elements.
type I64 struct {
	h     *Heap
	name  string
	base  Addr
	live  []int64
	image []int64
}

// AllocI64 allocates an int64 region of n elements with both live and
// image contents zeroed.
func (h *Heap) AllocI64(name string, n int) *I64 {
	r := &I64{
		h:     h,
		name:  name,
		base:  h.reserve(8 * n),
		live:  make([]int64, n),
		image: make([]int64, n),
	}
	h.addRegion(r)
	return r
}

// Name implements Region.
func (r *I64) Name() string { return r.name }

// Base implements Region.
func (r *I64) Base() Addr { return r.base }

// Bytes implements Region.
func (r *I64) Bytes() int { return 8 * len(r.live) }

// Len returns the number of elements.
func (r *I64) Len() int { return len(r.live) }

// Addr returns the simulated address of element i.
func (r *I64) Addr(i int) Addr { return r.base + Addr(8*i) }

// At performs a simulated load of element i and returns its live value.
func (r *I64) At(i int) int64 {
	r.h.acc.Load(r.Addr(i), 8)
	return r.live[i]
}

// Set performs a simulated store of v into element i.
func (r *I64) Set(i int, v int64) {
	r.h.acc.Store(r.Addr(i), 8)
	r.live[i] = v
}

// LoadRange performs a simulated load of elements [i, i+n) and returns
// the live sub-slice. The caller must treat the result as read-only.
func (r *I64) LoadRange(i, n int) []int64 {
	if n > 0 {
		r.h.acc.Load(r.Addr(i), 8*n)
	}
	return r.live[i : i+n]
}

// StoreRange performs a simulated store over elements [i, i+n) and
// returns the live sub-slice for the caller to fill.
func (r *I64) StoreRange(i, n int) []int64 {
	if n > 0 {
		r.h.acc.Store(r.Addr(i), 8*n)
	}
	return r.live[i : i+n]
}

// Image returns the persistent NVM image of the region.
func (r *I64) Image() []int64 { return r.image }

// Live returns the live slice without charging a simulated access.
func (r *I64) Live() []int64 { return r.live }

func (r *I64) writeback(off, n int) {
	lo := off / 8
	hi := (off + n + 7) / 8
	if hi > len(r.live) {
		hi = len(r.live)
	}
	copy(r.image[lo:hi], r.live[lo:hi])
}

func (r *I64) restore() { copy(r.live, r.image) }

func (r *I64) syncImage() { copy(r.image, r.live) }

// String aids debugging.
func (h *Heap) String() string {
	return fmt.Sprintf("mem.Heap{regions=%d, next=%#x}", len(h.regions), h.next)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
