package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a set of named int64 statistic counters. The zero value is
// ready to use.
type Counters struct {
	m map[string]int64
}

// Add increments the named counter by n.
func (c *Counters) Add(name string, n int64) {
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += n
}

// Get returns the value of the named counter (zero if never incremented).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset clears all counters.
func (c *Counters) Reset() { c.m = nil }

// String renders the counters as "name=value" pairs, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for i, name := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, c.m[name])
	}
	return b.String()
}

// AvgPositive returns the mean of the positive entries of v, or 0 when
// there are none. It is the shared positive-average helper behind the
// workloads' per-iteration metrics and the harness's per-unit
// normalizations.
func AvgPositive(v []int64) int64 {
	var sum int64
	cnt := 0
	for _, x := range v {
		if x > 0 {
			sum += x
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / int64(cnt)
}
