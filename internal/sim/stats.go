package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a set of named int64 statistic counters. The zero value is
// ready to use.
type Counters struct {
	m map[string]int64
}

// Add increments the named counter by n.
func (c *Counters) Add(name string, n int64) {
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += n
}

// Get returns the value of the named counter (zero if never incremented).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset clears all counters.
func (c *Counters) Reset() { c.m = nil }

// String renders the counters as "name=value" pairs, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for i, name := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, c.m[name])
	}
	return b.String()
}
