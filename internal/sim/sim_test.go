package sim

import (
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %d, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(0)
	c.Advance(32)
	if got := c.Now(); got != 42 {
		t.Fatalf("Now() = %d, want 42", got)
	}
}

func TestClockSince(t *testing.T) {
	var c Clock
	c.Advance(100)
	mark := c.Now()
	c.Advance(25)
	if got := c.Since(mark); got != 25 {
		t.Fatalf("Since(mark) = %d, want 25", got)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(99)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset Now() = %d, want 0", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockMonotonic(t *testing.T) {
	// Property: any sequence of non-negative advances is monotonic.
	f := func(deltas []uint16) bool {
		var c Clock
		prev := int64(0)
		for _, d := range deltas {
			c.Advance(int64(d))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPUComputeExactAccumulation(t *testing.T) {
	var c Clock
	cpu := &CPU{Clock: &c, OpNS: 0.25}
	// 7 ops at 0.25 ns = 1.75 ns; clock holds integer ns, remainder kept.
	cpu.Compute(7)
	if c.Now() != 1 {
		t.Fatalf("after 7 ops Now() = %d, want 1", c.Now())
	}
	cpu.Compute(1) // total 2.0
	if c.Now() != 2 {
		t.Fatalf("after 8 ops Now() = %d, want 2", c.Now())
	}
}

func TestCPUComputeNoDrift(t *testing.T) {
	// Property: total charged time equals floor within 1 ns of ops*OpNS
	// regardless of how the ops are batched.
	f := func(batches []uint8) bool {
		var c Clock
		cpu := &CPU{Clock: &c, OpNS: 0.3}
		var total int64
		for _, b := range batches {
			cpu.Compute(int64(b))
			total += int64(b)
		}
		want := float64(total) * 0.3
		got := float64(c.Now())
		diff := want - got
		return diff > -1.001 && diff < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPUComputeZeroAndNegative(t *testing.T) {
	var c Clock
	cpu := DefaultCPU(&c)
	cpu.Compute(0)
	cpu.Compute(-5)
	if c.Now() != 0 {
		t.Fatalf("Compute(0)/Compute(-5) advanced clock to %d", c.Now())
	}
}

func TestDefaultCPU(t *testing.T) {
	var c Clock
	cpu := DefaultCPU(&c)
	if cpu.OpNS <= 0 {
		t.Fatalf("DefaultCPU OpNS = %v, want > 0", cpu.OpNS)
	}
	cpu.Compute(1 << 20)
	if c.Now() == 0 {
		t.Fatal("DefaultCPU.Compute(1M) did not advance the clock")
	}
}

func TestCountersBasics(t *testing.T) {
	var cs Counters
	if got := cs.Get("x"); got != 0 {
		t.Fatalf("Get on empty = %d, want 0", got)
	}
	cs.Add("b", 2)
	cs.Add("a", 1)
	cs.Add("b", 3)
	if got := cs.Get("b"); got != 5 {
		t.Fatalf("Get(b) = %d, want 5", got)
	}
	names := cs.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v, want [a b]", names)
	}
	if got := cs.String(); got != "a=1 b=5" {
		t.Fatalf("String() = %q, want %q", got, "a=1 b=5")
	}
	cs.Reset()
	if got := cs.Get("b"); got != 0 {
		t.Fatalf("after Reset Get(b) = %d, want 0", got)
	}
}
