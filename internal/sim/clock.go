// Package sim provides the simulated-time substrate used by every other
// component of the reproduction: a deterministic nanosecond clock, a CPU
// compute-cost model, and named statistic counters.
//
// All performance results in the paper are relative execution times
// measured on an emulated NVM platform (Quartz). This package replaces the
// wall clock of that platform with a deterministic accumulator that the
// cache simulator, device models, and algorithm kernels advance explicitly.
package sim

import "fmt"

// Clock is a deterministic simulated-time accumulator measured in
// nanoseconds. The zero value is a clock at time zero, ready to use.
//
// Clock is not safe for concurrent use; the crash emulator runs a single
// simulated hardware thread, matching the paper's single-process setting.
type Clock struct {
	ns int64
}

// Now returns the current simulated time in nanoseconds.
func (c *Clock) Now() int64 { return c.ns }

// Advance moves simulated time forward by d nanoseconds. Negative d is a
// programming error and panics.
func (c *Clock) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %d", d))
	}
	c.ns += d
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.ns = 0 }

// SetNow forces the clock to the given simulated time. It exists for
// snapshot restore, which may rewind time; normal simulation code must
// use Advance.
func (c *Clock) SetNow(ns int64) { c.ns = ns }

// Since returns the elapsed simulated nanoseconds since the mark.
func (c *Clock) Since(mark int64) int64 { return c.ns - mark }

// CPU models the compute (non-memory) cost of the simulated processor.
// The paper's testbed is a 2.13 GHz Xeon E5606; OpNS approximates the
// amortized cost of one floating-point operation including superscalar
// issue, i.e. substantially less than one cycle per flop is possible.
type CPU struct {
	Clock *Clock
	// OpNS is the simulated cost, in nanoseconds, of one arithmetic
	// operation. Fractional costs accumulate exactly via a remainder.
	OpNS float64

	remainder float64
}

// DefaultCPU returns a CPU model approximating the paper's 2.13 GHz Xeon
// E5606 (two flops per cycle sustained on scalar SSE code).
func DefaultCPU(c *Clock) *CPU {
	return &CPU{Clock: c, OpNS: 0.25}
}

// Remainder returns the fractional-nanosecond carry accumulated by
// Compute, for snapshotting.
func (p *CPU) Remainder() float64 { return p.remainder }

// SetRemainder forces the fractional-nanosecond carry, for snapshot
// restore.
func (p *CPU) SetRemainder(r float64) { p.remainder = r }

// Compute charges the clock for ops arithmetic operations.
func (p *CPU) Compute(ops int64) {
	if ops <= 0 {
		return
	}
	t := float64(ops)*p.OpNS + p.remainder
	whole := int64(t)
	p.remainder = t - float64(whole)
	p.Clock.Advance(whole)
}
