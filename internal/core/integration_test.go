package core

import (
	"math"
	"math/rand"
	"testing"

	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/mc"
	"adcc/internal/pmem"
	"adcc/internal/sparse"
)

// These integration tests inject crashes at arbitrary memory-operation
// counts — between any two loads/stores, not only at instrumented
// iteration boundaries — and require full recovery to a correct result.
// They are the strongest end-to-end property of the reproduction: the
// algorithm-directed consistency argument must hold at every point of
// the execution, exactly as the paper claims.

func TestCGRandomCrashPointsAlwaysRecover(t *testing.T) {
	a := sparse.GenSPD(2000, 9, 3)
	opts := CGOptions{MaxIter: 10}

	// Reference run.
	mRef := cgMachine(crash.NVMOnly, 128<<10)
	ref := NewCG(mRef, nil, a, opts)
	ref.Run(1)
	zWant := ref.Z.Live()[ref.row(11):ref.row(12)]

	// Profile total ops.
	mProf := cgMachine(crash.NVMOnly, 128<<10)
	emProf := crash.NewEmulator(mProf)
	prof := NewCG(mProf, emProf, a, opts)
	emProf.Run(func() { prof.Run(1) })
	total := emProf.OpCount()

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		crashAt := 1 + rng.Int63n(total-1)
		m := cgMachine(crash.NVMOnly, 128<<10)
		em := crash.NewEmulator(m)
		cg := NewCG(m, em, a, opts)
		em.CrashAtOp(crashAt)
		if !em.Run(func() { cg.Run(1) }) {
			t.Fatalf("trial %d: no crash at op %d", trial, crashAt)
		}
		rec := cg.Recover()
		if rec.RestartIter < 1 || rec.RestartIter > opts.MaxIter+1 {
			t.Fatalf("trial %d: bad restart iter %d", trial, rec.RestartIter)
		}
		cg.Run(rec.RestartIter)
		zGot := cg.Z.Live()[cg.row(11):cg.row(12)]
		for i := 0; i < len(zWant); i += 173 {
			if math.Abs(zGot[i]-zWant[i]) > 1e-9*math.Max(1, math.Abs(zWant[i])) {
				t.Fatalf("trial %d (crash op %d, restart %d): solution differs at %d: %v vs %v",
					trial, crashAt, rec.RestartIter, i, zGot[i], zWant[i])
			}
		}
	}
}

func TestMMRandomCrashPointsAlwaysRecover(t *testing.T) {
	opts := MMOptions{N: 96, K: 24, Seed: 4}
	want := refProduct(opts)

	mProf := mmMachine(crash.NVMOnly, 64<<10)
	emProf := crash.NewEmulator(mProf)
	prof := NewMM(mProf, emProf, opts)
	emProf.Run(prof.Run)
	total := emProf.OpCount()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		crashAt := 1 + rng.Int63n(total-1)
		m := mmMachine(crash.NVMOnly, 64<<10)
		em := crash.NewEmulator(m)
		mm := NewMM(m, em, opts)
		em.CrashAtOp(crashAt)
		if !em.Run(mm.Run) {
			t.Fatalf("trial %d: no crash at op %d", trial, crashAt)
		}
		// Full recovery protocol: repair loop 1, then loop 2, then
		// verify the final product.
		rec1 := mm.RecoverLoop1()
		mm.ResumeLoop1(rec1)
		rec2 := mm.RecoverLoop2()
		mm.ResumeLoop2(rec2)
		got := mm.Result()
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-8*math.Max(1, math.Abs(want.Data[i])) {
				t.Fatalf("trial %d (crash op %d): product differs at %d: %v vs %v",
					trial, crashAt, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMCRandomCrashPointsBoundedLoss(t *testing.T) {
	cfg := mc.TinyConfig()
	cfg.Lookups = 6000
	period := 50

	runOnce := func(crashAt int64) ([mc.NumTypes]int64, bool) {
		m := mcMachine(crash.NVMOnly, 32<<10)
		em := crash.NewEmulator(m)
		s := mc.New(m.Heap, m.CPU, cfg)
		r := NewMCRunner(m, em, s, engine.MustLookup(engine.SchemeAlgoNVM))
		r.FlushPeriod = period
		if crashAt > 0 {
			em.CrashAtOp(crashAt)
			if !em.Run(func() { r.Run(0) }) {
				return s.Counts(), false
			}
			from := r.RestartIter()
			if from < 0 || from > int64(cfg.Lookups) {
				panic("restart out of range")
			}
			r.Em = nil
			r.Run(from)
		} else {
			r.Run(0)
		}
		return s.Counts(), true
	}

	base, _ := runOnce(0)
	mProf := mcMachine(crash.NVMOnly, 32<<10)
	emProf := crash.NewEmulator(mProf)
	sProf := mc.New(mProf.Heap, mProf.CPU, cfg)
	rProf := NewMCRunner(mProf, emProf, sProf, engine.MustLookup(engine.SchemeAlgoNVM))
	rProf.FlushPeriod = period
	emProf.Run(func() { rProf.Run(0) })
	total := emProf.OpCount()

	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		crashAt := 1 + rng.Int63n(total-1)
		counts, crashed := runOnce(crashAt)
		if !crashed {
			continue
		}
		// Loss and double-count are both bounded by ~one flush period
		// per type (see core/mcrun.go restart semantics).
		for k := range counts {
			d := counts[k] - base[k]
			if d < 0 {
				d = -d
			}
			if d > int64(2*period) {
				t.Fatalf("trial %d (crash op %d): type %d deviates by %d (> 2 periods)",
					trial, crashAt, k, d)
			}
		}
	}
}

func TestPMEMRandomCrashAtomicity(t *testing.T) {
	// Property: transactions are atomic under crashes at any memory
	// operation. Each transaction writes one generation value to every
	// element; after any crash + rollback, all elements must hold the
	// same generation.
	const n = 96
	const gens = 6

	type env struct {
		em   *crash.Emulator
		pool *pmem.Pool
		vals []float64
		work func()
	}
	build := func() env {
		m := cgMachine(crash.NVMOnly, 8<<10)
		em := crash.NewEmulator(m)
		p := pmem.NewPool(m, 1<<16)
		r := m.Heap.AllocF64("gen", n)
		p.RegisterF64(r)
		m.LLC.WritebackAll()
		work := func() {
			for g := 1; g <= gens; g++ {
				tx := p.Begin()
				for i := 0; i < n; i++ {
					tx.SetF64(r, i, float64(g))
				}
				tx.Commit()
			}
		}
		return env{em: em, pool: p, vals: r.Live(), work: work}
	}

	profEnv := build()
	profEnv.em.Run(profEnv.work)
	total := profEnv.em.OpCount()

	rng := rand.New(rand.NewSource(17))
	crashedTrials := 0
	for trial := 0; trial < 15; trial++ {
		crashAt := 1 + rng.Int63n(total-1)
		e := build()
		e.em.CrashAtOp(crashAt)
		if !e.em.Run(e.work) {
			continue
		}
		crashedTrials++
		e.pool.Recover()
		gen := e.vals[0]
		for i := 1; i < n; i++ {
			if e.vals[i] != gen {
				t.Fatalf("trial %d (crash op %d): torn state: vals[0]=%v vals[%d]=%v",
					trial, crashAt, gen, i, e.vals[i])
			}
		}
		if gen != math.Trunc(gen) || gen < 0 || gen > gens {
			t.Fatalf("trial %d: impossible generation %v", trial, gen)
		}
	}
	if crashedTrials == 0 {
		t.Fatal("no trial crashed; test exercised nothing")
	}
}
