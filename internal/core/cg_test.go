package core

import (
	"math"
	"testing"

	"adcc/internal/cache"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/sparse"
)

// cgMachine builds a machine with the given LLC size (bytes).
func cgMachine(kind crash.SystemKind, llc int) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: kind,
		Cache: cache.Config{
			SizeBytes:         llc,
			LineBytes:         64,
			Assoc:             8,
			HitNS:             4,
			FlushChargesClean: true,
			PrefetchStreams:   16,
		},
	})
}

func TestCGConverges(t *testing.T) {
	a := sparse.GenSPD(500, 7, 1)
	m := cgMachine(crash.NVMOnly, 1<<20)
	cg := NewCG(m, nil, a, CGOptions{MaxIter: 25})
	cg.Run(1)
	if r := cg.Residual(); r > 1e-6 {
		t.Fatalf("residual after 25 iterations = %v, want < 1e-6", r)
	}
	// Solution should approach ones.
	n := cg.N
	z := cg.Z.Live()[cg.row(26):cg.row(27)]
	for i := 0; i < n; i += 97 {
		if math.Abs(z[i]-1) > 1e-4 {
			t.Fatalf("z[%d] = %v, want ~1", i, z[i])
		}
	}
}

func TestCGMatchesBaseline(t *testing.T) {
	a := sparse.GenSPD(300, 7, 2)
	m1 := cgMachine(crash.NVMOnly, 1<<20)
	ext := NewCG(m1, nil, a, CGOptions{MaxIter: 10})
	ext.Run(1)

	m2 := cgMachine(crash.NVMOnly, 1<<20)
	base := NewBaselineCG(m2, a, CGOptions{MaxIter: 10}, nil)
	base.Run()

	zExt := ext.Z.Live()[ext.row(11):ext.row(12)]
	zBase := base.Zv.Live()
	for i := range zBase {
		if math.Abs(zExt[i]-zBase[i]) > 1e-12*math.Max(1, math.Abs(zBase[i])) {
			t.Fatalf("extended and baseline CG diverge at %d: %v vs %v", i, zExt[i], zBase[i])
		}
	}
}

func TestCGCrashRecoveryLargeProblem(t *testing.T) {
	// Working set >> LLC: the paper's Figure 3 large-class case. The
	// history rows of earlier iterations are evicted by streaming, so
	// recovery loses only ~1 iteration.
	a := sparse.GenSPD(6000, 9, 3)
	m := cgMachine(crash.NVMOnly, 256<<10)
	em := crash.NewEmulator(m)
	cg := NewCG(m, em, a, CGOptions{MaxIter: 15})
	em.CrashAtTrigger(TriggerCGIterEnd, 15)
	if !em.Run(func() { cg.Run(1) }) {
		t.Fatal("expected crash at iteration 15")
	}
	rec := cg.Recover()
	if rec.CrashIter != 15 {
		t.Fatalf("crash iter from NVM = %d, want 15", rec.CrashIter)
	}
	if rec.IterationsLost > 2 {
		t.Fatalf("iterations lost = %d, want <= 2 for a large problem", rec.IterationsLost)
	}
	if rec.RestartIter < 14 {
		t.Fatalf("restart iter = %d, want >= 14", rec.RestartIter)
	}
	// Resume and verify the final answer matches an uninterrupted run.
	cg.Run(rec.RestartIter)
	if r := cg.Residual(); math.IsNaN(r) || r > 1 {
		t.Fatalf("post-recovery residual = %v", r)
	}
	m2 := cgMachine(crash.NVMOnly, 256<<10)
	ref := NewCG(m2, nil, a, CGOptions{MaxIter: 15})
	ref.Run(1)
	zGot := cg.Z.Live()[cg.row(16):cg.row(17)]
	zWant := ref.Z.Live()[ref.row(16):ref.row(17)]
	for i := 0; i < len(zWant); i += 131 {
		if math.Abs(zGot[i]-zWant[i]) > 1e-9*math.Max(1, math.Abs(zWant[i])) {
			t.Fatalf("recovered solution differs at %d: %v vs %v", i, zGot[i], zWant[i])
		}
	}
}

func TestCGCrashRecoverySmallProblem(t *testing.T) {
	// Working set << LLC: everything stays in cache, nothing persists,
	// recovery must fall back to the beginning (the paper's classes S
	// and W losing all 15 iterations).
	a := sparse.GenSPD(200, 7, 4)
	m := cgMachine(crash.NVMOnly, 8<<20)
	em := crash.NewEmulator(m)
	cg := NewCG(m, em, a, CGOptions{MaxIter: 15})
	em.CrashAtTrigger(TriggerCGIterEnd, 15)
	if !em.Run(func() { cg.Run(1) }) {
		t.Fatal("expected crash")
	}
	rec := cg.Recover()
	if rec.RestartIter != 1 || rec.IterationsLost != 15 {
		t.Fatalf("restart=%d lost=%d, want 1/15 (all lost)", rec.RestartIter, rec.IterationsLost)
	}
	// Restarting from scratch still converges to the right answer.
	cg.Run(rec.RestartIter)
	if r := cg.Residual(); r > 1e-2 {
		t.Fatalf("post-recovery residual = %v", r)
	}
}

func TestCGRecoveryChecksCheaplyFirst(t *testing.T) {
	// Detection cost must be far below the cost of re-running the lost
	// iterations from scratch, because failed candidates are rejected
	// by vector dots before any SpMV happens.
	a := sparse.GenSPD(3000, 9, 5)
	m := cgMachine(crash.NVMOnly, 256<<10)
	em := crash.NewEmulator(m)
	cg := NewCG(m, em, a, CGOptions{MaxIter: 15})
	em.CrashAtTrigger(TriggerCGIterEnd, 15)
	em.Run(func() { cg.Run(1) })
	rec := cg.Recover()
	avg := AvgIterNS(cg.IterNS)
	if rec.DetectNS > 3*avg {
		t.Fatalf("detection took %d ns vs avg iteration %d ns", rec.DetectNS, avg)
	}
}

func TestCGRecoveryRejectsZeroRows(t *testing.T) {
	// An all-stale (zero) p row is orthogonal to everything; the p'r =
	// r'r identity must reject it.
	a := sparse.GenSPD(3000, 7, 6)
	m := cgMachine(crash.NVMOnly, 128<<10)
	em := crash.NewEmulator(m)
	cg := NewCG(m, em, a, CGOptions{MaxIter: 10})
	em.CrashAtTrigger(TriggerCGIterEnd, 10)
	em.Run(func() { cg.Run(1) })
	// Forge: zero out the P row of the would-be restart point in the
	// image while leaving r/z/q alone.
	rec0 := cg.Recover()
	j := rec0.RestartIter - 1
	if j < 1 {
		t.Skip("nothing persisted; cannot forge")
	}
	p := cg.P.Image()[cg.row(j+1) : cg.row(j+1)+cg.N]
	for i := range p {
		p[i] = 0
	}
	copy(cg.P.Live()[cg.row(j+1):cg.row(j+1)+cg.N], p)
	rec := cg.Recover()
	if rec.RestartIter >= rec0.RestartIter {
		t.Fatalf("zero p row accepted: restart %d (was %d)", rec.RestartIter, rec0.RestartIter)
	}
}

func TestCGRecoveryRejectsCorruptedResidual(t *testing.T) {
	a := sparse.GenSPD(3000, 7, 7)
	m := cgMachine(crash.NVMOnly, 128<<10)
	em := crash.NewEmulator(m)
	cg := NewCG(m, em, a, CGOptions{MaxIter: 10})
	em.CrashAtTrigger(TriggerCGIterEnd, 10)
	em.Run(func() { cg.Run(1) })
	rec0 := cg.Recover()
	j := rec0.RestartIter - 1
	if j < 1 {
		t.Skip("nothing persisted")
	}
	// Corrupt one element of the z row: Equation 2 must reject it.
	cg.Z.Image()[cg.row(j+1)+3] += 1.0
	cg.Z.Live()[cg.row(j+1)+3] = cg.Z.Image()[cg.row(j+1)+3]
	rec := cg.Recover()
	if rec.RestartIter >= rec0.RestartIter {
		t.Fatalf("corrupted z row accepted: restart %d (was %d)", rec.RestartIter, rec0.RestartIter)
	}
}

func TestCGIterCounterFlushedEveryIteration(t *testing.T) {
	a := sparse.GenSPD(400, 7, 8)
	m := cgMachine(crash.NVMOnly, 8<<20)
	em := crash.NewEmulator(m)
	cg := NewCG(m, em, a, CGOptions{MaxIter: 9})
	em.CrashAtTrigger(TriggerCGIterEnd, 9)
	em.Run(func() { cg.Run(1) })
	// Even with a huge cache (nothing evicted), the iteration number
	// is in NVM because its line is flushed each iteration.
	if got := cg.IterNum.Image()[0]; got != 9 {
		t.Fatalf("persistent iteration counter = %d, want 9", got)
	}
}

func TestBaselineCGCheckpointRestart(t *testing.T) {
	a := sparse.GenSPD(800, 7, 9)
	m := cgMachine(crash.NVMOnly, 256<<10)
	em := crash.NewEmulator(m)
	bg := NewBaselineCG(m, a, CGOptions{MaxIter: 12}, engine.MustLookup(engine.SchemeCkptNVM))
	cp := bg.Guard.Checkpointer()
	crashed := em.Run(func() {
		bg.Run()
		crash.InjectCrashNow()
	})
	if !crashed {
		t.Fatal("expected crash")
	}
	// Restore the last checkpoint and verify it is a valid CG state.
	tag := cp.Restore(bg.Pv, bg.Rv, bg.Zv)
	if tag != 12 {
		t.Fatalf("checkpoint tag = %d, want 12", tag)
	}
	// Residual of the restored z must equal the converged residual.
	if r := bg.Residual(); r > 1e-1 {
		t.Fatalf("restored state residual = %v", r)
	}
}

func TestBaselineCGPMEMRollback(t *testing.T) {
	a := sparse.GenSPD(400, 7, 10)
	m := cgMachine(crash.NVMOnly, 256<<10)
	em := crash.NewEmulator(m)
	bg := NewBaselineCG(m, a, CGOptions{MaxIter: 6}, engine.MustLookup(engine.SchemePMEM))
	// Crash mid-run: a transaction will be open.
	em.CrashAtOp(2_000_00)
	crashed := em.Run(func() { bg.Run() })
	if !crashed {
		t.Skip("op budget too large for this problem; run completed")
	}
	rolledBack, _ := bg.Guard.Pool().Recover()
	_ = rolledBack
	// After recovery, p, r, z hold a transaction-consistent state:
	// r = b - A z must hold (it holds at every iteration boundary).
	n := bg.N
	az := make([]float64, n)
	sparse.SpMV(az, bg.An, bg.Zv.Live())
	worst := 0.0
	for i := 0; i < n; i++ {
		d := bg.Rv.Live()[i] - (bg.B.Live()[i] - az[i])
		if math.Abs(d) > worst {
			worst = math.Abs(d)
		}
	}
	if worst > 1e-8 {
		t.Fatalf("post-rollback state violates r = b - Az by %v", worst)
	}
}

func TestCGOverheadOrdering(t *testing.T) {
	// The heart of Figure 4: algorithm-directed overhead is far below
	// PMEM and below per-iteration checkpointing.
	a := sparse.GenSPD(4000, 9, 11)
	iters := 8
	runNS := func(build func(m *crash.Machine) func()) int64 {
		m := cgMachine(crash.NVMOnly, 256<<10)
		work := build(m)
		start := m.Clock.Now()
		work()
		return m.Clock.Since(start)
	}
	native := runNS(func(m *crash.Machine) func() {
		bg := NewBaselineCG(m, a, CGOptions{MaxIter: iters}, nil)
		return bg.Run
	})
	algo := runNS(func(m *crash.Machine) func() {
		cg := NewCG(m, nil, a, CGOptions{MaxIter: iters})
		return func() { cg.Run(1) }
	})
	ck := runNS(func(m *crash.Machine) func() {
		bg := NewBaselineCG(m, a, CGOptions{MaxIter: iters}, engine.MustLookup(engine.SchemeCkptNVM))
		return bg.Run
	})
	pm := runNS(func(m *crash.Machine) func() {
		bg := NewBaselineCG(m, a, CGOptions{MaxIter: iters}, engine.MustLookup(engine.SchemePMEM))
		return bg.Run
	})
	if algo >= ck {
		t.Fatalf("algo (%d) should be cheaper than checkpoint (%d)", algo, ck)
	}
	if ck >= pm {
		t.Fatalf("checkpoint (%d) should be cheaper than PMEM (%d)", ck, pm)
	}
	overhead := float64(algo-native) / float64(native)
	if overhead > 0.10 {
		t.Fatalf("algo overhead = %.1f%%, want < 10%%", 100*overhead)
	}
	pmOverhead := float64(pm-native) / float64(native)
	if pmOverhead < 0.5 {
		t.Fatalf("PMEM overhead = %.1f%%, expected large (paper: 329%%)", 100*pmOverhead)
	}
}

func TestAvgIterNS(t *testing.T) {
	if got := AvgIterNS([]int64{0, 10, 20, 30}); got != 20 {
		t.Fatalf("AvgIterNS = %d, want 20", got)
	}
	if got := AvgIterNS([]int64{0, 0, 0}); got != 0 {
		t.Fatalf("AvgIterNS on empty = %d", got)
	}
}
