package core

import (
	"fmt"

	"adcc/internal/abft"
	"adcc/internal/crash"
	"adcc/internal/dense"
	"adcc/internal/engine"
	"adcc/internal/mem"
)

// Named crash points of the extended ABFT matrix multiplication.
const (
	// TriggerMMLoop1IterEnd fires at the end of each submatrix
	// multiplication (first loop of the paper's Figure 6).
	TriggerMMLoop1IterEnd = "mm.loop1-iter-end"
	// TriggerMMLoop2IterEnd fires at the end of each submatrix
	// addition block (second loop of Figure 6).
	TriggerMMLoop2IterEnd = "mm.loop2-iter-end"
)

// MMOptions configures the ABFT matrix multiplication study.
type MMOptions struct {
	// N is the data matrix dimension (the full checksum matrices are
	// (N+1) x (N+1)). N must be divisible by K.
	N int
	// K is the rank of each update (the paper's rank-k panels).
	K int
	// InvTol is the relative checksum tolerance. Zero means 1e-8.
	InvTol float64
	// Seed drives input generation.
	Seed int64
}

func (o *MMOptions) setDefaults() {
	if o.InvTol == 0 {
		o.InvTol = 1e-8
	}
	if o.N == 0 {
		o.N = 96
	}
	if o.K == 0 {
		o.K = 16
	}
	if o.N%o.K != 0 {
		panic(fmt.Sprintf("core: MM N=%d not divisible by K=%d", o.N, o.K))
	}
}

// MM is the paper's extended ABFT matrix multiplication (Figure 6). The
// single rank-k accumulation loop of classic ABFT (Figure 5) is split
// into:
//
//	loop 1 — submatrix multiplications into temporal matrices Ctemp_s,
//	         flushing each result's checksum row and column;
//	loop 2 — block-row additions of the temporal matrices into Ctemp,
//	         flushing the row checksums of each block.
//
// Checksums, once flushed, are never overwritten, so recovery can verify
// any block of the persistent image at any moment, correct single stale
// elements, and recompute only damaged blocks.
type MM struct {
	M    *crash.Machine
	Em   *crash.Emulator
	Opts MMOptions

	// A and B are the raw inputs; Ac and Br their checksum encodings
	// in simulated memory (Equations 3 and 4).
	A, B *dense.Matrix
	Ac   *dense.SimMatrix // (N+1) x N
	Br   *dense.SimMatrix // N x (N+1)

	// Ctemps are the S = N/K temporal full-checksum products.
	Ctemps []*dense.SimMatrix // each (N+1) x (N+1)
	// Ctemp is the row-checksummed accumulation target of loop 2.
	Ctemp *dense.SimMatrix // (N+1) x (N+1)

	// PanelNS and BlockNS record per-iteration simulated durations.
	PanelNS []int64
	BlockNS []int64

	scratch *mem.F64 // one-row accumulation buffer for loop 2
}

// NewMM builds the extended multiplication with positive random inputs
// (entries in (0,1)), so a computed block is never all-zero and the
// zero/uncomputed signature of recovery is unambiguous. The encoded
// inputs are made persistent, as the paper assumes.
func NewMM(m *crash.Machine, em *crash.Emulator, opts MMOptions) *MM {
	opts.setDefaults()
	n, k := opts.N, opts.K
	s := n / k
	mm := &MM{M: m, Em: em, Opts: opts}
	mm.A = dense.Random(n, n, opts.Seed)
	mm.B = dense.Random(n, n, opts.Seed+1)

	ac := abft.EncodeColumnChecksum(mm.A.Data, n, n)
	br := abft.EncodeRowChecksum(mm.B.Data, n, n)
	mm.Ac = dense.UploadSim(m.Heap, "mm.Ac", &dense.Matrix{Rows: n + 1, Cols: n, Data: ac})
	mm.Br = dense.UploadSim(m.Heap, "mm.Br", &dense.Matrix{Rows: n, Cols: n + 1, Data: br})

	mm.Ctemps = make([]*dense.SimMatrix, s)
	for i := range mm.Ctemps {
		mm.Ctemps[i] = dense.NewSim(m.Heap, fmt.Sprintf("mm.Ctemp%d", i), n+1, n+1)
	}
	mm.Ctemp = dense.NewSim(m.Heap, "mm.Ctemp", n+1, n+1)
	mm.scratch = m.Heap.AllocF64("mm.scratch", n+1)
	mm.PanelNS = make([]int64, s)
	mm.BlockNS = make([]int64, mm.NumBlocks())

	// Inputs are read-mostly: DRAM-tiered on the heterogeneous system.
	m.TierRegion(mm.Ac.R)
	m.TierRegion(mm.Br.R)
	return mm
}

// NumPanels returns S, the number of submatrix multiplications.
func (mm *MM) NumPanels() int { return mm.Opts.N / mm.Opts.K }

// NumBlocks returns the number of k-row blocks of loop 2 (the last block
// absorbs the remainder row of the checksum row).
func (mm *MM) NumBlocks() int {
	return (mm.Opts.N + 1 + mm.Opts.K - 1) / mm.Opts.K
}

// blockRows returns the row range [i0, i1) of block b.
func (mm *MM) blockRows(b int) (int, int) {
	i0 := b * mm.Opts.K
	i1 := i0 + mm.Opts.K
	if i1 > mm.Opts.N+1 {
		i1 = mm.Opts.N + 1
	}
	return i0, i1
}

// flushChecksums flushes the checksum row and column of a full-checksum
// matrix (Figure 6 line 5).
func (mm *MM) flushChecksums(c *dense.SimMatrix) {
	cols := c.Cols
	// Checksum row: contiguous.
	mm.M.Persist(c.R.Addr(c.Idx(c.Rows-1, 0)), 8*cols)
	// Checksum column: one line per row.
	for i := 0; i < c.Rows; i++ {
		mm.M.Persist(c.R.Addr(c.Idx(i, cols-1)), 8)
	}
}

// RunLoop1 executes submatrix multiplications for panels [fromS, S).
// Each panel computes Ctemp_s = Ac(:, s·k : (s+1)·k) x Br(s·k : (s+1)·k, :)
// and flushes its checksum row and column.
func (mm *MM) RunLoop1(fromS int) {
	k := mm.Opts.K
	for s := fromS; s < mm.NumPanels(); s++ {
		start := mm.M.Clock.Now()
		dense.GemmAcc(mm.M.CPU, mm.Ctemps[s], mm.Ac, mm.Br, s*k, k)
		mm.flushChecksums(mm.Ctemps[s])
		mm.PanelNS[s] = mm.M.Clock.Since(start)
		if mm.Em != nil {
			mm.Em.Trigger(TriggerMMLoop1IterEnd)
		}
	}
}

// RunLoop2 executes the submatrix additions for blocks [fromB, NumBlocks).
// Each row of a block is accumulated over all temporal matrices in a
// volatile scratch buffer and written to Ctemp once, so a row in NVM is
// either absent (zero), complete, or detectably torn — never a silent
// partial sum. The block's row checksums are then flushed (Figure 6
// line 13).
func (mm *MM) RunLoop2(fromB int) {
	n1 := mm.Opts.N + 1
	for b := fromB; b < mm.NumBlocks(); b++ {
		start := mm.M.Clock.Now()
		i0, i1 := mm.blockRows(b)
		for i := i0; i < i1; i++ {
			acc := mm.scratch.StoreRange(0, n1)
			for j := range acc {
				acc[j] = 0
			}
			for _, cs := range mm.Ctemps {
				row := cs.RowLoad(i, 0, n1)
				for j, v := range row {
					acc[j] += v
				}
			}
			mm.M.CPU.Compute(int64(len(mm.Ctemps) * n1))
			// Read the scratch before publishing the output row: no
			// cache activity may occur between a store notification
			// and the completion of the mutation it covers.
			src := mm.scratch.LoadRange(0, n1)
			out := mm.Ctemp.RowStore(i, 0, n1)
			copy(out, src)
		}
		// Flush the k rows of row checksums (the last column element
		// of each row in the block).
		for i := i0; i < i1; i++ {
			mm.M.Persist(mm.Ctemp.R.Addr(mm.Ctemp.Idx(i, n1-1)), 8)
		}
		mm.BlockNS[b] = mm.M.Clock.Since(start)
		if mm.Em != nil {
			mm.Em.Trigger(TriggerMMLoop2IterEnd)
		}
	}
}

// Run executes the full extended multiplication.
func (mm *MM) Run() {
	mm.RunLoop1(0)
	mm.RunLoop2(0)
}

// Result returns the live data part of Ctemp as an N x N matrix.
func (mm *MM) Result() *dense.Matrix {
	n := mm.Opts.N
	out := dense.New(n, n)
	for i := 0; i < n; i++ {
		copy(out.Row(i), mm.Ctemp.Live()[i*(n+1):i*(n+1)+n])
	}
	return out
}

// BlockStatus classifies one temporal matrix or row block during
// recovery.
type BlockStatus int

const (
	// BlockConsistent verified cleanly with nonzero content: complete.
	BlockConsistent BlockStatus = iota
	// BlockZero is all-zero: never computed (or fully lost).
	BlockZero
	// BlockCorrected had stale elements repaired via checksums.
	BlockCorrected
	// BlockRecompute is inconsistent beyond checksum correction.
	BlockRecompute
)

// String names the status.
func (s BlockStatus) String() string {
	switch s {
	case BlockConsistent:
		return "consistent"
	case BlockZero:
		return "zero"
	case BlockCorrected:
		return "corrected"
	case BlockRecompute:
		return "recompute"
	default:
		return fmt.Sprintf("BlockStatus(%d)", int(s))
	}
}

// MMRecovery reports post-crash detection for either loop.
type MMRecovery struct {
	// Status per panel (loop 1 recovery) or per row block (loop 2).
	Status []BlockStatus
	// DetectNS is the simulated time of the detection scan.
	DetectNS int64
}

// NeedsRecompute returns the indices that must be re-executed.
func (r MMRecovery) NeedsRecompute() []int {
	var out []int
	for i, s := range r.Status {
		if s == BlockZero || s == BlockRecompute {
			out = append(out, i)
		}
	}
	return out
}

// RecoverLoop1 examines the persistent image of every temporal matrix:
// checksum-consistent nonzero blocks are complete; all-zero blocks were
// never computed; inconsistent blocks are corrected via checksums when
// possible and otherwise marked for recomputation. Corrections are
// applied to live state and flushed.
func (mm *MM) RecoverLoop1() MMRecovery {
	start := mm.M.Clock.Now()
	n1 := mm.Opts.N + 1
	tol := mm.Opts.InvTol
	rec := MMRecovery{Status: make([]BlockStatus, mm.NumPanels())}
	for s, cs := range mm.Ctemps {
		mm.M.ChargeNVMRead(cs.R.Bytes())
		mm.M.CPU.Compute(int64(2 * n1 * n1))
		img := cs.Image()
		rep := abft.VerifyFull(img, n1, n1, tol)
		switch {
		case rep.AllZero:
			rec.Status[s] = BlockZero
		case rep.Consistent():
			rec.Status[s] = BlockConsistent
		default:
			// Attempt checksum correction on the live copy (live ==
			// image after restart).
			if _, ok := abft.CorrectSingle(cs.Live(), n1, n1, tol); ok {
				// Persist the repair.
				cs.R.StoreRange(0, n1*n1)
				mm.M.Persist(cs.R.Addr(0), cs.R.Bytes())
				rec.Status[s] = BlockCorrected
			} else {
				rec.Status[s] = BlockRecompute
			}
		}
	}
	rec.DetectNS = mm.M.Clock.Since(start)
	return rec
}

// ResumeLoop1 zeroes and recomputes the panels named by rec, completing
// loop 1 after a crash.
func (mm *MM) ResumeLoop1(rec MMRecovery) {
	k := mm.Opts.K
	n1 := mm.Opts.N + 1
	for _, s := range rec.NeedsRecompute() {
		cs := mm.Ctemps[s]
		// Zero the block (its stale content must not accumulate).
		for i := 0; i < n1; i++ {
			row := cs.RowStore(i, 0, n1)
			for j := range row {
				row[j] = 0
			}
		}
		start := mm.M.Clock.Now()
		dense.GemmAcc(mm.M.CPU, cs, mm.Ac, mm.Br, s*k, k)
		mm.flushChecksums(cs)
		mm.PanelNS[s] = mm.M.Clock.Since(start)
	}
}

// RecoverLoop2 examines the persistent image of Ctemp: a row block is
// complete if every row verifies against its row checksum with nonzero
// content. Zero rows were never written; torn rows fail verification.
func (mm *MM) RecoverLoop2() MMRecovery {
	start := mm.M.Clock.Now()
	n1 := mm.Opts.N + 1
	tol := mm.Opts.InvTol
	rec := MMRecovery{Status: make([]BlockStatus, mm.NumBlocks())}
	img := mm.Ctemp.Image()
	mm.M.ChargeNVMRead(mm.Ctemp.R.Bytes())
	mm.M.CPU.Compute(int64(n1 * n1))
	badRows := map[int]bool{}
	for _, r := range abft.VerifyRows(img, n1, n1, tol) {
		badRows[r] = true
	}
	for b := 0; b < mm.NumBlocks(); b++ {
		i0, i1 := mm.blockRows(b)
		status := BlockConsistent
		for i := i0; i < i1; i++ {
			row := img[i*n1 : (i+1)*n1]
			zero := true
			for _, v := range row {
				if v != 0 {
					zero = false
					break
				}
			}
			if zero || badRows[i] {
				status = BlockRecompute
				break
			}
		}
		rec.Status[b] = status
	}
	rec.DetectNS = mm.M.Clock.Since(start)
	return rec
}

// ResumeLoop2 re-executes the row-block additions named by rec.
// RunLoop2 overwrites each row from the volatile scratch sum, so stale
// content needs no pre-zeroing.
func (mm *MM) ResumeLoop2(rec MMRecovery) {
	for _, b := range rec.NeedsRecompute() {
		mm.runOneBlock(b)
	}
}

func (mm *MM) runOneBlock(b int) {
	saveEm := mm.Em
	mm.Em = nil
	defer func() { mm.Em = saveEm }()
	// Run just this block by bounding the loop.
	n1 := mm.Opts.N + 1
	start := mm.M.Clock.Now()
	i0, i1 := mm.blockRows(b)
	for i := i0; i < i1; i++ {
		acc := mm.scratch.StoreRange(0, n1)
		for j := range acc {
			acc[j] = 0
		}
		for _, cs := range mm.Ctemps {
			row := cs.RowLoad(i, 0, n1)
			for j, v := range row {
				acc[j] += v
			}
		}
		mm.M.CPU.Compute(int64(len(mm.Ctemps) * n1))
		out := mm.Ctemp.RowStore(i, 0, n1)
		copy(out, mm.scratch.LoadRange(0, n1))
	}
	for i := i0; i < i1; i++ {
		mm.M.Persist(mm.Ctemp.R.Addr(mm.Ctemp.Idx(i, n1-1)), 8)
	}
	mm.BlockNS[b] = mm.M.Clock.Since(start)
}

// --- Baseline ABFT MM (Figure 5) with conventional mechanisms ---

// BaselineMM is the classic single-loop ABFT rank-k multiplication of
// the paper's Figure 5: verify Cf's checksums, then accumulate one
// rank-k product per iteration, with the per-iteration protection
// (checkpoint of Cf or a PMEM transaction around the update) supplied by
// the scheme's guard.
type BaselineMM struct {
	M    *crash.Machine
	Opts MMOptions

	Scheme engine.Scheme
	Guard  engine.Guard
	// Em, when set, fires TriggerMMLoop1IterEnd at the end of every
	// panel, making the baseline multiplication injectable at the same
	// named program points as the extended one.
	Em *crash.Emulator

	Ac, Br, Cf *dense.SimMatrix
	// PanelDone persistently records the last committed panel for
	// transactional schemes (-1 = none), updated inside each panel's
	// transaction so a rollback rewinds it with the data.
	PanelDone *mem.I64
	PanelNS   []int64

	colSums []float64 // verifyCf scratch, reused across panels
}

// NewBaselineMM builds the Figure 5 multiplication under the given
// scheme's mechanism (nil means native).
func NewBaselineMM(m *crash.Machine, opts MMOptions, sc engine.Scheme) *BaselineMM {
	opts.setDefaults()
	if sc == nil {
		sc = engine.MustLookup(engine.SchemeNative)
	}
	n := opts.N
	a := dense.Random(n, n, opts.Seed)
	b := dense.Random(n, n, opts.Seed+1)
	ac := abft.EncodeColumnChecksum(a.Data, n, n)
	br := abft.EncodeRowChecksum(b.Data, n, n)
	bm := &BaselineMM{
		M: m, Opts: opts, Scheme: sc,
		Ac:        dense.UploadSim(m.Heap, "mm.Ac", &dense.Matrix{Rows: n + 1, Cols: n, Data: ac}),
		Br:        dense.UploadSim(m.Heap, "mm.Br", &dense.Matrix{Rows: n, Cols: n + 1, Data: br}),
		Cf:        dense.NewSim(m.Heap, "mm.Cf", n+1, n+1),
		PanelDone: m.Heap.AllocI64("mm.paneldone", 1),
		PanelNS:   make([]int64, n/opts.K),
		colSums:   make([]float64, n+1),
	}
	bm.PanelDone.Live()[0] = -1
	bm.PanelDone.Image()[0] = -1
	// Transactional log capacity: one panel snapshots all of Cf once.
	bm.Guard = sc.NewGuard(m, (n+1)*(n+1)+1024)
	bm.Guard.Register(bm.Cf.R, bm.PanelDone)
	m.TierRegion(bm.Ac.R)
	m.TierRegion(bm.Br.R)
	return bm
}

// Run executes the Figure 5 loop.
func (bm *BaselineMM) Run() { bm.RunFrom(0) }

// RunFrom executes panels fromS..S-1. A fresh multiplication starts at
// 0; after a crash, resume from the panel Recover returns.
func (bm *BaselineMM) RunFrom(fromS int) {
	n1 := bm.Opts.N + 1
	k := bm.Opts.K
	if fromS < 0 {
		fromS = 0
	}
	for s := fromS; s < bm.Opts.N/k; s++ {
		start := bm.M.Clock.Now()
		// Figure 5 line 2: verify the checksum relationship of Cf.
		bm.verifyCf()
		if pool := bm.Guard.Pool(); pool != nil {
			tx := pool.Begin()
			tx.SetI64(bm.PanelDone, 0, int64(s))
			tx.SnapshotF64(bm.Cf.R, 0, n1*n1)
			dense.GemmAcc(bm.M.CPU, bm.Cf, bm.Ac, bm.Br, s*k, k)
			// Commit must flush everything the panel wrote.
			_ = tx.StoreRangeF64(bm.Cf.R, 0, n1*n1)
			tx.Commit()
		} else {
			dense.GemmAcc(bm.M.CPU, bm.Cf, bm.Ac, bm.Br, s*k, k)
		}
		bm.Guard.EndIteration(int64(s), bm.Cf.R)
		bm.PanelNS[s] = bm.M.Clock.Since(start)
		if bm.Em != nil {
			bm.Em.Trigger(TriggerMMLoop1IterEnd)
		}
	}
}

// Recover restarts the baseline multiplication after a crash, per
// scheme: checkpoint schemes restore the last checkpoint of Cf and
// resume after it; transactional schemes roll back the torn transaction
// and resume after the last committed panel; native runs zero Cf and
// start over. It returns the panel RunFrom should resume at.
func (bm *BaselineMM) Recover() (fromS int, err error) {
	panels := bm.Opts.N / bm.Opts.K
	switch {
	case bm.Guard.Checkpointer() != nil:
		cp := bm.Guard.Checkpointer()
		if !cp.Valid() {
			bm.reset()
			return 0, nil
		}
		tag := cp.Restore(bm.Cf.R)
		if tag < 0 || tag >= int64(panels) {
			return 0, fmt.Errorf("mm: checkpoint tag %d out of range", tag)
		}
		return int(tag) + 1, nil
	case bm.Guard.Pool() != nil:
		bm.Guard.Pool().Recover()
		done := bm.PanelDone.Image()[0]
		if done < -1 || done >= int64(panels) {
			return 0, fmt.Errorf("mm: committed panel %d out of range", done)
		}
		return int(done) + 1, nil
	default:
		bm.reset()
		return 0, nil
	}
}

// reset zeroes the accumulation target in both live and image, charging
// the NVM writes — the restart-from-scratch path of a native run.
func (bm *BaselineMM) reset() {
	for i := range bm.Cf.R.Live() {
		bm.Cf.R.Live()[i] = 0
	}
	for i := range bm.Cf.R.Image() {
		bm.Cf.R.Image()[i] = 0
	}
	bm.M.ChargeNVMWrite(bm.Cf.R.Bytes())
}

// verifyCf streams Cf once, recomputing row and column sums (the ABFT
// error detection step of Figure 5). The column-sum scratch is reused
// across panels instead of being reallocated per iteration.
func (bm *BaselineMM) verifyCf() {
	n1 := bm.Opts.N + 1
	colSums := bm.colSums[:n1]
	for j := range colSums {
		colSums[j] = 0
	}
	for i := 0; i < n1; i++ {
		row := bm.Cf.RowLoad(i, 0, n1)
		s := 0.0
		for j, v := range row {
			s += v
			colSums[j] += v
		}
		_ = s
	}
	bm.M.CPU.Compute(int64(2 * n1 * n1))
}

// Result returns the live data part of Cf.
func (bm *BaselineMM) Result() *dense.Matrix {
	n := bm.Opts.N
	out := dense.New(n, n)
	for i := 0; i < n; i++ {
		copy(out.Row(i), bm.Cf.Live()[i*(n+1):i*(n+1)+n])
	}
	return out
}
