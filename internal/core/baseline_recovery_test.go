package core

import (
	"fmt"
	"testing"

	"adcc/internal/crash"
	"adcc/internal/engine"
)

// baselineWorkloads builds one small instance of each baseline workload
// adapter under the given scheme.
func baselineWorkloads(sc engine.Scheme) []engine.Workload {
	return []engine.Workload{
		&BaselineCGWorkload{N: 400, NnzRow: 9, Opts: CGOptions{MaxIter: 12, Seed: 5}, Scheme: sc},
		&BaselineMMWorkload{Opts: MMOptions{N: 48, K: 16, Seed: 6}, Scheme: sc},
	}
}

// TestBaselineRecovery crashes each baseline workload under every
// conventional scheme at several execution points and checks the full
// crash → recover → resume → verify lifecycle.
func TestBaselineRecovery(t *testing.T) {
	schemes := []string{
		engine.SchemeNative, engine.SchemeCkptNVM, engine.SchemeCkptHDD,
		engine.SchemeCkptHetero, engine.SchemePMEM,
	}
	for _, name := range schemes {
		sc := engine.MustLookup(name)
		for wi := range baselineWorkloads(sc) {
			wi := wi
			probe := baselineWorkloads(sc)[wi]
			t.Run(fmt.Sprintf("%s/%s", probe.Name(), name), func(t *testing.T) {
				// Profile an uninterrupted run to find the op range.
				m := crash.NewMachine(crash.MachineConfig{})
				em := crash.NewEmulator(m)
				if err := probe.Prepare(m, em); err != nil {
					t.Fatalf("Prepare: %v", err)
				}
				prof := em.Profile(func() { probe.Run(probe.Start()) })
				if err := probe.Verify(); err != nil {
					t.Fatalf("crash-free run failed verification: %v", err)
				}

				for _, frac := range []float64{0.1, 0.5, 0.9} {
					w := baselineWorkloads(sc)[wi]
					m := crash.NewMachine(crash.MachineConfig{})
					em := crash.NewEmulator(m)
					if err := w.Prepare(m, em); err != nil {
						t.Fatalf("Prepare: %v", err)
					}
					op := int64(frac * float64(prof.Ops))
					em.Arm(crash.CrashPoint{Op: op})
					if !em.Run(func() { w.Run(w.Start()) }) {
						t.Fatalf("crash at op %d did not fire", op)
					}
					from, err := w.Recover()
					if err != nil {
						t.Fatalf("Recover after op %d: %v", op, err)
					}
					em.Disarm()
					w.Run(from)
					if err := w.Verify(); err != nil {
						t.Errorf("verification failed after crash at op %d (resumed from %d): %v", op, from, err)
					}
				}
			})
		}
	}
}

// TestBaselineCheckpointResumesNearCrash checks that a checkpointed
// baseline does not restart from scratch: a crash late in the run must
// resume within one iteration of the checkpoint frequency.
func TestBaselineCheckpointResumesNearCrash(t *testing.T) {
	sc := engine.MustLookup(engine.SchemeCkptNVM)
	w := &BaselineCGWorkload{N: 400, NnzRow: 9, Opts: CGOptions{MaxIter: 12, Seed: 5}, Scheme: sc}
	m := crash.NewMachine(crash.MachineConfig{})
	em := crash.NewEmulator(m)
	if err := w.Prepare(m, em); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	em.Arm(crash.CrashPoint{Trigger: TriggerCGIterEnd, Occurrence: 9})
	if !em.Run(func() { w.Run(w.Start()) }) {
		t.Fatal("trigger crash did not fire")
	}
	from, err := w.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// The crash fired right after iteration 9's checkpoint.
	if from != 10 {
		t.Errorf("resume iteration = %d, want 10", from)
	}
	em.Disarm()
	w.Run(from)
	if err := w.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestBaselinePMEMRollsBackTornTransaction checks the transactional
// index: a crash inside iteration i's transaction must resume at i, not
// i+1, and the rolled-back state must verify.
func TestBaselinePMEMRollsBackTornTransaction(t *testing.T) {
	sc := engine.MustLookup(engine.SchemePMEM)
	w := &BaselineCGWorkload{N: 400, NnzRow: 9, Opts: CGOptions{MaxIter: 12, Seed: 5}, Scheme: sc}
	m := crash.NewMachine(crash.MachineConfig{})
	em := crash.NewEmulator(m)
	if err := w.Prepare(m, em); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	// End of iteration 6, then a little further into iteration 7.
	em.Arm(crash.CrashPoint{Trigger: TriggerCGIterEnd, Occurrence: 6})
	if !em.Run(func() { w.Run(w.Start()) }) {
		t.Fatal("crash did not fire")
	}
	opsAtIter6 := em.CrashOps()

	w = &BaselineCGWorkload{N: 400, NnzRow: 9, Opts: CGOptions{MaxIter: 12, Seed: 5}, Scheme: sc}
	m = crash.NewMachine(crash.MachineConfig{})
	em = crash.NewEmulator(m)
	if err := w.Prepare(m, em); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	em.Arm(crash.CrashPoint{Op: opsAtIter6 + 50})
	if !em.Run(func() { w.Run(w.Start()) }) {
		t.Fatal("crash did not fire")
	}
	from, err := w.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if from != 7 {
		t.Errorf("resume iteration = %d, want 7 (torn iteration redone)", from)
	}
	em.Disarm()
	w.Run(from)
	if err := w.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}
