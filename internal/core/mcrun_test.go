package core

import (
	"testing"

	"adcc/internal/cache"
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/mc"
)

// mcMachine uses a small low-associativity LLC so that eviction pressure
// on the hot counters/macro_xs lines is realistic at test scale.
func mcMachine(kind crash.SystemKind, llc int) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: kind,
		Cache: cache.Config{
			SizeBytes:         llc,
			LineBytes:         64,
			Assoc:             4,
			HitNS:             4,
			FlushChargesClean: true,
			PrefetchStreams:   8,
		},
	})
}

// runNoCrash runs the full lookup loop under a scheme with no crash.
func runNoCrash(t *testing.T, sc engine.Scheme, cfg mc.Config, llc int) [mc.NumTypes]int64 {
	t.Helper()
	m := mcMachine(crash.NVMOnly, llc)
	s := mc.New(m.Heap, m.CPU, cfg)
	r := NewMCRunner(m, nil, s, sc)
	r.Run(0)
	return s.Counts()
}

// runWithCrash crashes at 10% of the lookups (the paper's crash point)
// and restarts per the scheme's protocol.
func runWithCrash(t *testing.T, sc engine.Scheme, cfg mc.Config, llc int) [mc.NumTypes]int64 {
	t.Helper()
	m := mcMachine(crash.NVMOnly, llc)
	em := crash.NewEmulator(m)
	s := mc.New(m.Heap, m.CPU, cfg)
	r := NewMCRunner(m, em, s, sc)
	em.CrashAtTrigger(TriggerMCLookup, cfg.Lookups/10)
	if !em.Run(func() { r.Run(0) }) {
		t.Fatal("expected crash at 10% of lookups")
	}
	from := r.RestartIter()
	r.Em = nil
	r.Run(from)
	return s.Counts()
}

func absDiffSum(a, b [mc.NumTypes]int64) int64 {
	var d int64
	for k := range a {
		x := a[k] - b[k]
		if x < 0 {
			x = -x
		}
		d += x
	}
	return d
}

func TestMCNoCrashUniform(t *testing.T) {
	cfg := mc.TinyConfig()
	cfg.Lookups = 5000
	counts := runNoCrash(t, nil, cfg, 64<<10)
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total != int64(cfg.Lookups) {
		t.Fatalf("total counts = %d, want %d", total, cfg.Lookups)
	}
	for k, c := range counts {
		share := float64(c) / float64(total)
		if share < 0.12 || share > 0.30 {
			t.Fatalf("type %d share %.3f, want ~0.2", k, share)
		}
	}
}

func TestMCNaiveRestartBiased(t *testing.T) {
	// Figure 10: the basic idea (flush only the loop index) restarts
	// with stale counters and macro_xs, producing counts that are
	// "obviously different" from the no-crash run.
	cfg := mc.TinyConfig()
	cfg.Lookups = 20000
	llc := 32 << 10
	base := runNoCrash(t, engine.MustLookup(engine.SchemeAlgoNaive), cfg, llc)
	crashed := runWithCrash(t, engine.MustLookup(engine.SchemeAlgoNaive), cfg, llc)
	diff := absDiffSum(base, crashed)
	// The deficit must be a macroscopic fraction of the pre-crash
	// counts (2000 lookups happened before the crash).
	if diff < int64(cfg.Lookups)/100 {
		t.Fatalf("naive restart diff = %d of %d lookups; expected visible bias", diff, cfg.Lookups)
	}
}

func TestMCSelectiveRestartAccurate(t *testing.T) {
	// Figure 12: selective flushing every 0.01% of lookups bounds the
	// loss to roughly one flush period.
	cfg := mc.TinyConfig()
	cfg.Lookups = 20000
	llc := 32 << 10
	base := runNoCrash(t, engine.MustLookup(engine.SchemeAlgoNVM), cfg, llc)
	crashed := runWithCrash(t, engine.MustLookup(engine.SchemeAlgoNVM), cfg, llc)
	diff := absDiffSum(base, crashed)
	period := int64(DefaultFlushPeriod(cfg.Lookups))
	if diff > 4*period+8 {
		t.Fatalf("selective restart diff = %d, want <= ~%d (a few flush periods)", diff, 4*period+8)
	}
}

func TestMCSelectiveBeatsNaive(t *testing.T) {
	cfg := mc.TinyConfig()
	cfg.Lookups = 20000
	llc := 32 << 10
	naiveDiff := absDiffSum(
		runNoCrash(t, engine.MustLookup(engine.SchemeAlgoNaive), cfg, llc),
		runWithCrash(t, engine.MustLookup(engine.SchemeAlgoNaive), cfg, llc))
	selDiff := absDiffSum(
		runNoCrash(t, engine.MustLookup(engine.SchemeAlgoNVM), cfg, llc),
		runWithCrash(t, engine.MustLookup(engine.SchemeAlgoNVM), cfg, llc))
	if selDiff >= naiveDiff {
		t.Fatalf("selective (%d) should be more accurate than naive (%d)", selDiff, naiveDiff)
	}
}

func TestMCCheckpointRestart(t *testing.T) {
	cfg := mc.TinyConfig()
	cfg.Lookups = 10000
	llc := 32 << 10
	base := runNoCrash(t, engine.MustLookup(engine.SchemeCkptNVM), cfg, llc)
	crashed := runWithCrash(t, engine.MustLookup(engine.SchemeCkptNVM), cfg, llc)
	// Checkpoint restores counters and the index from the same instant,
	// and sampling is stateless: the result must match exactly.
	if base != crashed {
		t.Fatalf("checkpoint restart diverged: %v vs %v", base, crashed)
	}
}

func TestMCPMEMRestart(t *testing.T) {
	cfg := mc.TinyConfig()
	cfg.Lookups = 4000
	llc := 32 << 10
	base := runNoCrash(t, engine.MustLookup(engine.SchemePMEM), cfg, llc)
	crashed := runWithCrash(t, engine.MustLookup(engine.SchemePMEM), cfg, llc)
	// Transactional updates make every lookup atomic: exact match.
	if base != crashed {
		t.Fatalf("PMEM restart diverged: %v vs %v", base, crashed)
	}
}

func TestMCOverheadOrdering(t *testing.T) {
	// Figure 13's shape: selective flushing ~free; every-iteration
	// flushing clearly slower; PMEM slowest.
	cfg := mc.TinyConfig()
	cfg.Lookups = 8000
	llc := 64 << 10
	runNS := func(name string) int64 {
		m := mcMachine(crash.NVMOnly, llc)
		s := mc.New(m.Heap, m.CPU, cfg)
		r := NewMCRunner(m, nil, s, engine.MustLookup(name))
		// At test scale 0.01% of lookups rounds to every iteration;
		// use an explicit rare period in the paper's spirit.
		r.FlushPeriod = 200
		start := m.Clock.Now()
		r.Run(0)
		return m.Clock.Since(start)
	}
	native := runNS(engine.SchemeNative)
	selective := runNS(engine.SchemeAlgoNVM)
	everyIter := runNS(engine.SchemeAlgoEvery)
	pm := runNS(engine.SchemePMEM)

	selOverhead := float64(selective-native) / float64(native)
	if selOverhead > 0.03 {
		t.Fatalf("selective overhead = %.2f%%, want < 3%%", 100*selOverhead)
	}
	if everyIter <= selective {
		t.Fatalf("every-iteration flushing (%d) should cost more than selective (%d)", everyIter, selective)
	}
	if pm <= everyIter {
		t.Fatalf("PMEM (%d) should cost more than every-iteration flushing (%d)", pm, everyIter)
	}
}

func TestMCRestartIterAfterCrash(t *testing.T) {
	cfg := mc.TinyConfig()
	cfg.Lookups = 5000
	m := mcMachine(crash.NVMOnly, 32<<10)
	em := crash.NewEmulator(m)
	s := mc.New(m.Heap, m.CPU, cfg)
	r := NewMCRunner(m, em, s, engine.MustLookup(engine.SchemeAlgoNaive))
	em.CrashAtTrigger(TriggerMCLookup, 500)
	em.Run(func() { r.Run(0) })
	from := r.RestartIter()
	// Naive mode flushes i every iteration: restart exactly at the
	// crashed lookup.
	if from != 499 {
		t.Fatalf("restart iter = %d, want 499", from)
	}
}

func TestDefaultFlushPeriod(t *testing.T) {
	if p := DefaultFlushPeriod(1_500_000); p != 150 {
		t.Fatalf("period = %d, want 150 (0.01%%)", p)
	}
	if p := DefaultFlushPeriod(10); p != 1 {
		t.Fatalf("tiny period = %d, want 1", p)
	}
}
