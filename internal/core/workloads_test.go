package core

import (
	"testing"

	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/mc"
)

// workloadMachine builds the small-LLC machine the conformance tests run
// on: big enough to be realistic, small enough that crash recovery has
// persistent state to find.
func workloadMachine() *crash.Machine {
	return cgMachine(crash.NVMOnly, 128<<10)
}

// crashTriggers names the iteration-end trigger and crash occurrence
// used to interrupt each workload mid-run.
var crashTriggers = map[string]struct {
	trigger    string
	occurrence int
}{
	"cg": {TriggerCGIterEnd, 8},
	"mm": {TriggerMMLoop1IterEnd, 3},
	"mc": {TriggerMCLookup, 0}, // occurrence filled from config below
}

// TestWorkloadConformanceNoCrash drives every paper workload through the
// engine.Workload lifecycle without a crash: prepare, run, verify,
// metrics.
func TestWorkloadConformanceNoCrash(t *testing.T) {
	for _, w := range Workloads() {
		t.Run(w.Name(), func(t *testing.T) {
			m := workloadMachine()
			if err := w.Prepare(m, nil); err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			if err := w.Prepare(m, nil); err == nil {
				t.Fatal("second Prepare should fail")
			}
			w.Run(w.Start())
			if err := w.Verify(); err != nil {
				t.Fatalf("Verify after clean run: %v", err)
			}
			if len(w.Metrics()) == 0 {
				t.Fatal("no metrics reported")
			}
		})
	}
}

// TestWorkloadConformanceCrashRecover injects a crash mid-run at each
// workload's iteration-end trigger, then drives the generic
// recover-resume-verify path.
func TestWorkloadConformanceCrashRecover(t *testing.T) {
	for _, w := range Workloads() {
		t.Run(w.Name(), func(t *testing.T) {
			ct, ok := crashTriggers[w.Name()]
			if !ok {
				t.Fatalf("no crash trigger configured for workload %q", w.Name())
			}
			m := workloadMachine()
			em := crash.NewEmulator(m)
			if err := w.Prepare(m, em); err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			occ := ct.occurrence
			if w.Name() == "mc" {
				occ = mc.TinyConfig().Lookups / 10
			}
			em.CrashAtTrigger(ct.trigger, occ)
			if !em.Run(func() { w.Run(w.Start()) }) {
				t.Fatal("workload completed without crashing")
			}
			from, err := w.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			w.Run(from)
			if err := w.Verify(); err != nil {
				t.Fatalf("Verify after crash recovery: %v", err)
			}
		})
	}
}

// TestMCWorkloadSchemeOverride checks that the MC workload honors an
// explicit scheme from the registry.
func TestMCWorkloadSchemeOverride(t *testing.T) {
	w := &MCWorkload{
		Cfg:    mc.TinyConfig(),
		Scheme: engine.MustLookup(engine.SchemeAlgoEvery),
	}
	m := workloadMachine()
	if err := w.Prepare(m, nil); err != nil {
		t.Fatal(err)
	}
	if w.r.Scheme.FlushPolicy() != engine.FlushEveryIter {
		t.Fatalf("runner scheme policy = %v", w.r.Scheme.FlushPolicy())
	}
	w.Run(0)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}
