// Package core implements the paper's contribution: algorithm-directed
// crash consistence in NVM for three HPC algorithms — the conjugate
// gradient iterative solver (§III-B), ABFT dense matrix multiplication
// (§III-C), and Monte-Carlo cross-section lookup (§III-D) — together
// with the baseline mechanisms (checkpoint variants and PMEM-style
// transactions) the paper compares against.
package core

import (
	"fmt"
	"math"

	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/mem"
	"adcc/internal/sparse"
)

// TriggerCGIterEnd is the named crash point at the end of a CG iteration
// (right after the p update, Line 10 of the paper's Figure 2).
const TriggerCGIterEnd = "cg.iter-end"

// CGOptions configures the extended CG solver.
type CGOptions struct {
	// MaxIter is the number of main-loop iterations (the paper crashes
	// at iteration 15).
	MaxIter int
	// InvTol is the relative tolerance for the recovery invariants.
	// Zero means 1e-8.
	InvTol float64
	// Seed drives right-hand-side construction.
	Seed int64
	// CheckResidual enables the per-iteration "Check r = b - A*z" of
	// the paper's Figure 1/2 (line 11/12) — the online-ABFT soft-error
	// detection step. It costs one extra SpMV per iteration and is off
	// by default, as the runtime comparisons exclude it on all sides.
	CheckResidual bool
}

func (o *CGOptions) setDefaults() {
	if o.InvTol == 0 {
		o.InvTol = 1e-8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 15
	}
}

// CG is the paper's extended conjugate-gradient solver (Figure 2): the
// four work vectors carry an iteration dimension (history rows) so that
// hardware cache eviction opportunistically persists old iterations, and
// only the single cache line holding the iteration number is flushed
// each iteration. Recovery reasons about the persistent image using two
// algorithm invariants:
//
//	p(j+1)' * q(j)        = 0                    (conjugacy, Eq. 1)
//	r(j+1)                = b - A*z(j+1)         (residual, Eq. 2)
//
// plus the standard CG identity p(j+1)'*r(j+1) = r(j+1)'*r(j+1), which
// closes the one blind spot of the first two (an all-stale p row is
// orthogonal to everything and invisible to Eq. 2, which does not
// involve p).
type CG struct {
	M    *crash.Machine
	Em   *crash.Emulator
	A    *sparse.SimCSR
	An   *sparse.CSR // native copy for recovery-side SpMV on images
	B    *mem.F64
	Opts CGOptions

	N int
	// History arrays: rows 0..MaxIter+1, each of N elements. Row i
	// holds the iteration-i value; iteration i writes row i+1.
	P, Q, R, Z *mem.F64
	// IterNum is the flushed iteration counter (one line).
	IterNum *mem.I64

	// IterNS records the simulated duration of each completed
	// iteration (1-based index; entry 0 unused).
	IterNS []int64

	// ResidualAlarms counts iterations whose Figure 2 line 12 check
	// failed (only with Opts.CheckResidual).
	ResidualAlarms int

	rho     float64
	checkAz *mem.F64 // scratch for the residual check
}

// NewCG builds the extended solver for the system A x = b where
// b = A * ones, so the exact solution is known. The initial state (A, b,
// and the row-1 vectors) is made persistent, as the paper assumes for
// the input of the computation.
func NewCG(m *crash.Machine, em *crash.Emulator, a *sparse.CSR, opts CGOptions) *CG {
	opts.setDefaults()
	n := a.N
	rows := opts.MaxIter + 2
	cg := &CG{
		M: m, Em: em, An: a, Opts: opts, N: n,
		A:       sparse.NewSimCSR(m.Heap, a, "cg.A"),
		B:       m.Heap.AllocF64("cg.b", n),
		P:       m.Heap.AllocF64("cg.p", rows*n),
		Q:       m.Heap.AllocF64("cg.q", rows*n),
		R:       m.Heap.AllocF64("cg.r", rows*n),
		Z:       m.Heap.AllocF64("cg.z", rows*n),
		IterNum: m.Heap.AllocI64("cg.iter", 1),
		IterNS:  make([]int64, opts.MaxIter+1),
	}
	// b = A * ones.
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	sparse.SpMV(b, a, ones)
	copy(cg.B.Live(), b)
	copy(cg.B.Image(), b)

	// Initial iteration-1 rows: x0 = 0, r1 = b - A x0 = b, p1 = r1,
	// z1 = x0. Persisted as part of the initial consistent state.
	copy(cg.P.Live()[n:2*n], b)
	copy(cg.P.Image()[n:2*n], b)
	copy(cg.R.Live()[n:2*n], b)
	copy(cg.R.Image()[n:2*n], b)
	// Z row 1 and Q rows stay zero (already consistent).

	// The large read-only matrix is DRAM-tiered on the heterogeneous
	// system (paper's data placement); the history arrays stay
	// NVM-direct because they are the persistence-critical objects.
	m.TierRegion(cg.A.Val)
	m.TierRegion(cg.A.Col)
	m.TierRegion(cg.A.RowPtr)
	return cg
}

// row returns the element offset of row i.
func (cg *CG) row(i int) int { return i * cg.N }

// Run executes iterations from..MaxIter (1-based, inclusive). A fresh
// solve starts at from = 1; recovery resumes at the restart iteration.
// Each iteration performs the paper's Figure 2 body: flush the iteration
// counter's cache line, then the standard CG updates writing into the
// next history row, then fire the end-of-iteration crash trigger.
func (cg *CG) Run(from int) {
	m, cpu := cg.M, cg.M.CPU
	n := cg.N
	if from < 1 {
		from = 1
	}
	// rho = r_from' * r_from.
	cg.rho = sparse.SimDot(cpu, cg.R, cg.row(from), cg.R, cg.row(from), n)
	for i := from; i <= cg.Opts.MaxIter; i++ {
		start := m.Clock.Now()
		// Figure 2 line 3: flush the cache line containing i.
		cg.IterNum.Set(0, int64(i))
		m.Persist(cg.IterNum.Addr(0), 8)

		// q_i = A p_i.
		cg.A.SpMV(cpu, cg.Q, cg.row(i), cg.P, cg.row(i))
		// alpha = rho / (p_i' q_i).
		pq := sparse.SimDot(cpu, cg.P, cg.row(i), cg.Q, cg.row(i), n)
		alpha := cg.rho / pq
		// z_{i+1} = z_i + alpha p_i.
		sparse.SimAxpby(cpu, cg.Z, cg.row(i+1), cg.Z, cg.row(i), alpha, cg.P, cg.row(i), n)
		// r_{i+1} = r_i - alpha q_i.
		sparse.SimAxpby(cpu, cg.R, cg.row(i+1), cg.R, cg.row(i), -alpha, cg.Q, cg.row(i), n)
		// beta = rho_{i+1} / rho_i.
		rho1 := sparse.SimDot(cpu, cg.R, cg.row(i+1), cg.R, cg.row(i+1), n)
		beta := rho1 / cg.rho
		cg.rho = rho1
		// p_{i+1} = r_{i+1} + beta p_i.
		sparse.SimAxpby(cpu, cg.P, cg.row(i+1), cg.R, cg.row(i+1), beta, cg.P, cg.row(i), n)

		if cg.Opts.CheckResidual {
			cg.checkIteration(i)
		}
		cg.IterNS[i] = m.Clock.Since(start)
		if cg.Em != nil {
			cg.Em.Trigger(TriggerCGIterEnd)
		}
	}
}

// checkIteration performs the paper's Figure 2 line 12: verify
// r_{i+1} = b - A*z_{i+1} through simulated memory. The online-ABFT
// check detects soft errors in the freshly written rows; a failure bumps
// ResidualAlarms (a production solver would trigger rollback).
func (cg *CG) checkIteration(i int) {
	m, cpu := cg.M, cg.M.CPU
	n := cg.N
	if cg.checkAz == nil {
		cg.checkAz = m.Heap.AllocF64("cg.checkAz", n)
	}
	cg.A.SpMV(cpu, cg.checkAz, 0, cg.Z, cg.row(i+1))
	var resid, bn float64
	const chunk = 512
	for lo := 0; lo < n; lo += chunk {
		c := lo + chunk
		if c > n {
			c = n
		}
		r := cg.R.LoadRange(cg.row(i+1)+lo, c-lo)
		b := cg.B.LoadRange(lo, c-lo)
		az := cg.checkAz.LoadRange(lo, c-lo)
		for k := range r {
			d := r[k] - (b[k] - az[k])
			resid += d * d
			bn += b[k] * b[k]
		}
	}
	cpu.Compute(int64(5 * n))
	if math.Sqrt(resid) > cg.Opts.InvTol*math.Sqrt(bn) {
		cg.ResidualAlarms++
	}
}

// Residual returns the true relative residual ||b - A z|| / ||b|| of the
// solution accumulated in history row MaxIter+1, computed natively.
func (cg *CG) Residual() float64 {
	n := cg.N
	z := cg.Z.Live()[cg.row(cg.Opts.MaxIter+1):cg.row(cg.Opts.MaxIter+2)]
	az := make([]float64, n)
	sparse.SpMV(az, cg.An, z)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		d := cg.B.Live()[i] - az[i]
		num += d * d
		den += cg.B.Live()[i] * cg.B.Live()[i]
	}
	return math.Sqrt(num / den)
}

// CGRecovery reports the outcome of post-crash detection.
type CGRecovery struct {
	// CrashIter is the iteration number found in the flushed counter.
	CrashIter int
	// RestartIter is the iteration to resume from (RestartIter-1 = j,
	// the newest iteration whose rows verified). 1 means restart from
	// the beginning.
	RestartIter int
	// IterationsLost is CrashIter - j: the work to redo.
	IterationsLost int
	// Checked counts candidate iterations examined during detection.
	Checked int
	// DetectNS is the simulated time spent detecting where to restart.
	DetectNS int64
}

// Recover implements the paper's detection walk: starting from the
// crashed iteration (read from the flushed counter in NVM), examine
// candidate iterations j downwards until the invariants hold on the
// persistent image, then prepare live state to resume from j+1.
//
// Cost accounting: the cheap vector invariants are checked first; the
// expensive residual invariant (one SpMV over A) runs only for
// candidates that pass them, which is why "detecting where to restart"
// is a small fraction of an iteration in the paper's Figure 3.
func (cg *CG) Recover() CGRecovery {
	m := cg.M
	n := cg.N
	start := m.Clock.Now()
	rec := CGRecovery{CrashIter: int(cg.IterNum.Image()[0])}
	tol := cg.Opts.InvTol

	img := func(r *mem.F64, row int) []float64 {
		return r.Image()[cg.row(row) : cg.row(row)+n]
	}
	bImg := cg.B.Image()

	// One scratch vector reused across candidate iterations; SpMVImage
	// overwrites every element, so no clearing is needed between
	// candidates.
	az := make([]float64, n)

	j := rec.CrashIter
	for ; j >= 1; j-- {
		rec.Checked++
		p := img(cg.P, j+1)
		q := img(cg.Q, j)
		r := img(cg.R, j+1)
		z := img(cg.Z, j+1)
		// Vector invariants: read four rows from NVM.
		m.ChargeNVMRead(4 * 8 * n)
		var pq, pn, qn, pr, rr float64
		for i := 0; i < n; i++ {
			pq += p[i] * q[i]
			pn += p[i] * p[i]
			qn += q[i] * q[i]
			pr += p[i] * r[i]
			rr += r[i] * r[i]
		}
		m.CPU.Compute(int64(10 * n))
		if rr == 0 {
			continue // stale zero rows: not a valid state
		}
		if math.Abs(pq) > tol*math.Sqrt(pn*qn) {
			continue // Eq. 1 violated
		}
		if math.Abs(pr-rr) > tol*rr {
			continue // p'r = r'r identity violated
		}
		// Residual invariant (Eq. 2): r = b - A z, one SpMV on the
		// image.
		cg.A.SpMVImage(az, z)
		m.ChargeNVMRead(cg.A.Bytes() + 8*n)
		m.CPU.Compute(int64(2 * cg.An.NNZ()))
		ok := true
		var resid, bn float64
		for i := 0; i < n; i++ {
			d := r[i] - (bImg[i] - az[i])
			resid += d * d
			bn += bImg[i] * bImg[i]
		}
		if math.Sqrt(resid) > tol*math.Sqrt(bn) {
			ok = false
		}
		if ok {
			break
		}
	}
	rec.RestartIter = j + 1
	rec.IterationsLost = rec.CrashIter - j
	rec.DetectNS = m.Clock.Since(start)

	// Prepare live state: the machine already restarted live = image;
	// nothing to copy because the history rows up to j+1 are the
	// consistent state itself. If nothing verified (j = 0), the
	// initial row 1 is the persistent input state.
	return rec
}

// --- Baseline CG variants (paper's seven-case comparison) ---

// BaselineCG is the unmodified CG of the paper's Figure 1: single work
// vectors overwritten in place, paired with a conventional mechanism
// supplied as an engine.Scheme.
type BaselineCG struct {
	M    *crash.Machine
	A    *sparse.SimCSR
	An   *sparse.CSR
	B    *mem.F64
	Opts CGOptions

	N              int
	Pv, Qv, Rv, Zv *mem.F64
	// IterDone persistently records the last committed iteration for
	// transactional schemes (updated inside each iteration's
	// transaction, so a rollback rewinds it with the data).
	IterDone *mem.I64

	Scheme engine.Scheme
	Guard  engine.Guard
	IterNS []int64
	// Em, when set, fires TriggerCGIterEnd at the end of every
	// iteration, making the baseline solver injectable at the same
	// named program points as the extended one.
	Em *crash.Emulator

	rho float64
}

// NewBaselineCG builds the Figure 1 solver under the given scheme's
// mechanism (nil means native). Checkpoint schemes save p, r, z at the
// end of every iteration; PMEM schemes wrap each iteration's updates of
// p, r, z in an undo-log transaction (Intel PMEM library usage in the
// paper).
func NewBaselineCG(m *crash.Machine, a *sparse.CSR, opts CGOptions, sc engine.Scheme) *BaselineCG {
	opts.setDefaults()
	if sc == nil {
		sc = engine.MustLookup(engine.SchemeNative)
	}
	n := a.N
	bg := &BaselineCG{
		M: m, An: a, Opts: opts, N: n, Scheme: sc,
		A:        sparse.NewSimCSR(m.Heap, a, "cg.A"),
		B:        m.Heap.AllocF64("cg.b", n),
		Pv:       m.Heap.AllocF64("cg.p", n),
		Qv:       m.Heap.AllocF64("cg.q", n),
		Rv:       m.Heap.AllocF64("cg.r", n),
		Zv:       m.Heap.AllocF64("cg.z", n),
		IterDone: m.Heap.AllocI64("cg.iterdone", 1),
		IterNS:   make([]int64, opts.MaxIter+1),
	}
	// Log capacity for transactional schemes: one iteration writes 3
	// vectors; snapshots are line-deduplicated, so 3n elements (plus
	// slack) suffice.
	bg.Guard = sc.NewGuard(m, 4*n+1024)
	bg.Guard.Register(bg.Pv, bg.Rv, bg.Zv, bg.IterDone)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	sparse.SpMV(b, a, ones)
	copy(bg.B.Live(), b)
	copy(bg.B.Image(), b)
	copy(bg.Pv.Live(), b)
	copy(bg.Pv.Image(), b)
	copy(bg.Rv.Live(), b)
	copy(bg.Rv.Image(), b)
	m.TierRegion(bg.A.Val)
	m.TierRegion(bg.A.Col)
	m.TierRegion(bg.A.RowPtr)
	return bg
}

// Run executes the baseline loop for MaxIter iterations.
func (bg *BaselineCG) Run() { bg.RunFrom(1) }

// RunFrom executes iterations from..MaxIter (1-based, inclusive). A
// fresh solve starts at 1; after a crash, resume from the iteration
// Recover returns. rho is recomputed from the current r, so resuming
// from any consistent state is self-contained.
func (bg *BaselineCG) RunFrom(from int) {
	m, cpu := bg.M, bg.M.CPU
	n := bg.N
	if from < 1 {
		from = 1
	}
	bg.rho = sparse.SimDot(cpu, bg.Rv, 0, bg.Rv, 0, n)
	for i := from; i <= bg.Opts.MaxIter; i++ {
		start := m.Clock.Now()
		if bg.Guard.Pool() != nil {
			bg.iterPMEM(i)
		} else {
			bg.iterPlain()
		}
		// End-of-iteration protection of p, r, z — for checkpoint
		// schemes this is the frequency that matches the
		// algorithm-directed approach's one-iteration recomputation
		// bound (paper §III-B performance comparison).
		bg.Guard.EndIteration(int64(i), bg.Pv, bg.Rv, bg.Zv)
		bg.IterNS[i] = m.Clock.Since(start)
		if bg.Em != nil {
			bg.Em.Trigger(TriggerCGIterEnd)
		}
	}
}

// Recover restarts the baseline solver after a crash, per scheme:
// checkpoint schemes restore the last checkpoint and resume after it;
// transactional schemes roll back the torn transaction and resume after
// the last committed iteration; native runs (no mechanism) reinitialize
// and start over. It returns the iteration RunFrom should resume at.
func (bg *BaselineCG) Recover() (from int, err error) {
	switch {
	case bg.Guard.Checkpointer() != nil:
		cp := bg.Guard.Checkpointer()
		if !cp.Valid() {
			bg.reset()
			return 1, nil
		}
		tag := cp.Restore(bg.Pv, bg.Rv, bg.Zv)
		if tag < 0 || tag > int64(bg.Opts.MaxIter) {
			return 0, fmt.Errorf("cg: checkpoint tag %d out of range", tag)
		}
		return int(tag) + 1, nil
	case bg.Guard.Pool() != nil:
		bg.Guard.Pool().Recover()
		done := bg.IterDone.Image()[0]
		if done < 0 || done > int64(bg.Opts.MaxIter) {
			return 0, fmt.Errorf("cg: committed iteration %d out of range", done)
		}
		return int(done) + 1, nil
	default:
		bg.reset()
		return 1, nil
	}
}

// reset reinitializes the work vectors to the solver's starting state
// (p = r = b, z = 0) in both live and image, charging the NVM writes —
// the "restart the application from the beginning" path of a native
// run.
func (bg *BaselineCG) reset() {
	b := bg.B.Image()
	copy(bg.Pv.Live(), b)
	copy(bg.Pv.Image(), b)
	copy(bg.Rv.Live(), b)
	copy(bg.Rv.Image(), b)
	for _, r := range []*mem.F64{bg.Zv, bg.Qv} {
		for i := range r.Live() {
			r.Live()[i] = 0
		}
		for i := range r.Image() {
			r.Image()[i] = 0
		}
	}
	bg.M.ChargeNVMRead(bg.B.Bytes())
	bg.M.ChargeNVMWrite(bg.Pv.Bytes() + bg.Rv.Bytes() + bg.Zv.Bytes() + bg.Qv.Bytes())
}

func (bg *BaselineCG) iterPlain() {
	cpu := bg.M.CPU
	n := bg.N
	bg.A.SpMV(cpu, bg.Qv, 0, bg.Pv, 0)
	pq := sparse.SimDot(cpu, bg.Pv, 0, bg.Qv, 0, n)
	alpha := bg.rho / pq
	sparse.SimAxpby(cpu, bg.Zv, 0, bg.Zv, 0, alpha, bg.Pv, 0, n)
	sparse.SimAxpby(cpu, bg.Rv, 0, bg.Rv, 0, -alpha, bg.Qv, 0, n)
	rho1 := sparse.SimDot(cpu, bg.Rv, 0, bg.Rv, 0, n)
	beta := rho1 / bg.rho
	bg.rho = rho1
	// p = r + beta p.
	sparse.SimAxpby(cpu, bg.Pv, 0, bg.Rv, 0, beta, bg.Pv, 0, n)
}

// iterPMEM performs iteration i with the updates of p, r, z wrapped in
// an undo-log transaction, as the paper configures the PMEM library
// ("each iteration of the main loop of CG is a transaction"). The
// persistent iteration index commits with the data, so a crash rolls
// both back together.
func (bg *BaselineCG) iterPMEM(i int) {
	cpu := bg.M.CPU
	n := bg.N
	tx := bg.Guard.Pool().Begin()
	tx.SetI64(bg.IterDone, 0, int64(i))
	bg.A.SpMV(cpu, bg.Qv, 0, bg.Pv, 0)
	pq := sparse.SimDot(cpu, bg.Pv, 0, bg.Qv, 0, n)
	alpha := bg.rho / pq

	// z += alpha p (transactional).
	zdst := tx.StoreRangeF64(bg.Zv, 0, n)
	p := bg.Pv.LoadRange(0, n)
	for k := 0; k < n; k++ {
		zdst[k] += alpha * p[k]
	}
	cpu.Compute(int64(2 * n))
	// r -= alpha q (transactional).
	rdst := tx.StoreRangeF64(bg.Rv, 0, n)
	q := bg.Qv.LoadRange(0, n)
	for k := 0; k < n; k++ {
		rdst[k] -= alpha * q[k]
	}
	cpu.Compute(int64(2 * n))
	rho1 := sparse.SimDot(cpu, bg.Rv, 0, bg.Rv, 0, n)
	beta := rho1 / bg.rho
	bg.rho = rho1
	// p = r + beta p (transactional).
	pdst := tx.StoreRangeF64(bg.Pv, 0, n)
	r := bg.Rv.LoadRange(0, n)
	for k := 0; k < n; k++ {
		pdst[k] = r[k] + beta*pdst[k]
	}
	cpu.Compute(int64(2 * n))
	tx.Commit()
}

// Residual returns the true relative residual of the baseline solution.
func (bg *BaselineCG) Residual() float64 {
	n := bg.N
	az := make([]float64, n)
	sparse.SpMV(az, bg.An, bg.Zv.Live())
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		d := bg.B.Live()[i] - az[i]
		num += d * d
		den += bg.B.Live()[i] * bg.B.Live()[i]
	}
	return math.Sqrt(num / den)
}

// AvgIterNS returns the mean simulated iteration time of a completed
// run (entry 0 of the 1-based iteration record is unused).
func AvgIterNS(iterNS []int64) int64 {
	return AvgPositiveNS(iterNS[1:])
}

func (bg *BaselineCG) String() string {
	return fmt.Sprintf("BaselineCG{n=%d scheme=%s}", bg.N, bg.Scheme.Name())
}
