package core

import (
	"fmt"
	"math"

	"adcc/internal/crash"
	"adcc/internal/dense"
	"adcc/internal/engine"
	"adcc/internal/mc"
	"adcc/internal/sim"
	"adcc/internal/sparse"
)

// This file adapts the three algorithm-directed workloads to the
// engine.Workload interface, so generic infrastructure (conformance
// tests, batch executors, future workloads) can drive them uniformly:
// prepare, run, crash, recover, verify, report metrics.

// CGWorkload wraps the extended conjugate-gradient solver (§III-B).
type CGWorkload struct {
	// A is the system matrix; if nil, Prepare generates an SPD matrix
	// of dimension N with NnzRow nonzeros per row from Seed.
	A      *sparse.CSR
	N      int
	NnzRow int
	Opts   CGOptions

	cg  *CG
	rec CGRecovery
}

// Name implements engine.Workload.
func (w *CGWorkload) Name() string { return "cg" }

// Prepare implements engine.Workload.
func (w *CGWorkload) Prepare(m *crash.Machine, em *crash.Emulator) error {
	if w.cg != nil {
		return fmt.Errorf("cg: Prepare called twice")
	}
	if w.A == nil {
		n := w.N
		if n == 0 {
			n = 2000
		}
		nnz := w.NnzRow
		if nnz == 0 {
			nnz = 9
		}
		w.A = sparse.GenSPD(n, nnz, w.Opts.Seed)
	}
	w.cg = NewCG(m, em, w.A, w.Opts)
	return nil
}

// Start implements engine.Workload: CG iterations are 1-based.
func (w *CGWorkload) Start() int64 { return 1 }

// Run implements engine.Workload.
func (w *CGWorkload) Run(from int64) { w.cg.Run(int(from)) }

// Recover implements engine.Workload.
func (w *CGWorkload) Recover() (int64, error) {
	w.rec = w.cg.Recover()
	if w.rec.RestartIter < 1 || w.rec.RestartIter > w.cg.Opts.MaxIter+1 {
		return 0, fmt.Errorf("cg: restart iteration %d out of range", w.rec.RestartIter)
	}
	return int64(w.rec.RestartIter), nil
}

// Verify implements engine.Workload: the accumulated solution must solve
// the system to the tolerance the iteration count supports. The residual
// of a healthy run decreases monotonically from 1 (z=0); a corrupted
// recovery leaves it large.
func (w *CGWorkload) Verify() error {
	r := w.cg.Residual()
	if math.IsNaN(r) || r >= 1 {
		return fmt.Errorf("cg: relative residual %v after %d iterations", r, w.cg.Opts.MaxIter)
	}
	return nil
}

// Metrics implements engine.Workload.
func (w *CGWorkload) Metrics() map[string]float64 {
	return map[string]float64{
		"residual":        w.cg.Residual(),
		"avg_iter_ns":     float64(AvgIterNS(w.cg.IterNS)),
		"iterations_lost": float64(w.rec.IterationsLost),
		"detect_ns":       float64(w.rec.DetectNS),
	}
}

// MMWorkload wraps the extended ABFT matrix multiplication (§III-C).
type MMWorkload struct {
	Opts MMOptions
	// Want, when non-nil, is the precomputed native product used as the
	// verification oracle (it is a pure function of Opts, so injection
	// campaigns compute it once per cell and share it read-only).
	Want *dense.Matrix

	mm   *MM
	rec1 *MMRecovery // pending loop-1 repair plan from Recover
	rec  MMRecovery  // last recovery, for metrics
}

// MMWant computes the native product oracle for the given options.
func MMWant(opts MMOptions) *dense.Matrix {
	opts.setDefaults()
	a := dense.Random(opts.N, opts.N, opts.Seed)
	b := dense.Random(opts.N, opts.N, opts.Seed+1)
	want := dense.New(opts.N, opts.N)
	dense.Mul(want, a, b)
	return want
}

// mmVerify compares got to the oracle (precomputed want, or computed on
// the fly from opts when want is nil).
func mmVerify(got *dense.Matrix, want *dense.Matrix, opts MMOptions) error {
	if want == nil {
		want = MMWant(opts)
	}
	for i := range want.Data {
		d := math.Abs(got.Data[i] - want.Data[i])
		if d > 1e-8*math.Max(1, math.Abs(want.Data[i])) {
			return fmt.Errorf("mm: product differs at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	return nil
}

// Name implements engine.Workload.
func (w *MMWorkload) Name() string { return "mm" }

// Prepare implements engine.Workload.
func (w *MMWorkload) Prepare(m *crash.Machine, em *crash.Emulator) error {
	if w.mm != nil {
		return fmt.Errorf("mm: Prepare called twice")
	}
	w.mm = NewMM(m, em, w.Opts)
	return nil
}

// Start implements engine.Workload.
func (w *MMWorkload) Start() int64 { return 0 }

// Run implements engine.Workload. A fresh run executes both loops; after
// Recover it completes the repair plan — recomputing damaged or missing
// panels, then repairing and completing loop 2.
func (w *MMWorkload) Run(int64) {
	if w.rec1 == nil {
		w.mm.Run()
		return
	}
	w.mm.ResumeLoop1(*w.rec1)
	w.rec1 = nil
	rec2 := w.mm.RecoverLoop2()
	w.mm.ResumeLoop2(rec2)
}

// Recover implements engine.Workload: it scans loop 1's persistent image
// (correcting single stale elements via checksums) and stages the repair
// plan the next Run completes.
func (w *MMWorkload) Recover() (int64, error) {
	rec := w.mm.RecoverLoop1()
	w.rec1 = &rec
	w.rec = rec
	return 0, nil
}

// Verify implements engine.Workload: the live result must equal the
// native product.
func (w *MMWorkload) Verify() error {
	return mmVerify(w.mm.Result(), w.Want, w.mm.Opts)
}

// Metrics implements engine.Workload.
func (w *MMWorkload) Metrics() map[string]float64 {
	recompute := 0
	for _, s := range w.rec.Status {
		if s == BlockZero || s == BlockRecompute {
			recompute++
		}
	}
	return map[string]float64{
		"panels":       float64(w.mm.NumPanels()),
		"avg_panel_ns": float64(AvgPositiveNS(w.mm.PanelNS)),
		"recompute":    float64(recompute),
		"detect_ns":    float64(w.rec.DetectNS),
	}
}

// AvgPositiveNS returns the mean of the positive entries of v, or 0
// when there are none — sim.AvgPositive under the name the workload
// metrics and AvgIterNS have always used.
func AvgPositiveNS(v []int64) int64 { return sim.AvgPositive(v) }

// MCWorkload wraps the Monte-Carlo cross-section lookup loop (§III-D)
// under a restartable scheme (algorithm-directed selective flushing by
// default).
type MCWorkload struct {
	Cfg mc.Config
	// Scheme selects the consistency scheme; nil means the paper's
	// selective-flush algorithm-directed scheme.
	Scheme engine.Scheme
	// FlushPeriod overrides the default 0.01%-of-lookups period when
	// positive.
	FlushPeriod int

	sim *mc.Sim
	r   *MCRunner
}

// Name implements engine.Workload.
func (w *MCWorkload) Name() string { return "mc" }

// Prepare implements engine.Workload.
func (w *MCWorkload) Prepare(m *crash.Machine, em *crash.Emulator) error {
	if w.r != nil {
		return fmt.Errorf("mc: Prepare called twice")
	}
	if w.Cfg.Lookups == 0 {
		w.Cfg = mc.TinyConfig()
	}
	if w.Scheme == nil {
		w.Scheme = engine.MustLookup(engine.SchemeAlgoNVM)
	}
	w.sim = mc.New(m.Heap, m.CPU, w.Cfg)
	w.r = NewMCRunner(m, em, w.sim, w.Scheme)
	if w.FlushPeriod > 0 {
		w.r.FlushPeriod = w.FlushPeriod
	}
	return nil
}

// Start implements engine.Workload.
func (w *MCWorkload) Start() int64 { return 0 }

// Run implements engine.Workload.
func (w *MCWorkload) Run(from int64) {
	// Crash triggers fire only on the first (crashing) pass; a resumed
	// run must complete.
	if from > 0 {
		w.r.Em = nil
	}
	w.r.Run(from)
}

// Recover implements engine.Workload.
func (w *MCWorkload) Recover() (int64, error) {
	from := w.r.RestartIter()
	if from < 0 || from > int64(w.Cfg.Lookups) {
		return 0, fmt.Errorf("mc: restart lookup %d out of range", from)
	}
	return from, nil
}

// Verify implements engine.Workload: every lookup must be accounted for.
// A restarted run may redo up to one flush period of lookups, so the
// recorded total is bounded below by the lookup count and above by the
// count plus one period.
func (w *MCWorkload) Verify() error {
	var total int64
	for k, c := range w.sim.Counts() {
		if c < 0 {
			return fmt.Errorf("mc: negative count for type %d", k)
		}
		total += c
	}
	lookups := int64(w.Cfg.Lookups)
	// Each interaction type can lose or redo up to ~one flush period of
	// lookups around the restart point (see the restart semantics in
	// mcrun.go and the bound asserted by the integration tests).
	slack := int64(mc.NumTypes) * (2*int64(w.r.FlushPeriod) + 1)
	if total < lookups-slack || total > lookups+slack {
		return fmt.Errorf("mc: recorded %d lookups, want %d±%d", total, lookups, slack)
	}
	return nil
}

// Metrics implements engine.Workload.
func (w *MCWorkload) Metrics() map[string]float64 {
	out := map[string]float64{}
	pct := mc.Percentages(w.sim.Counts(), w.Cfg.Lookups)
	for k, p := range pct {
		out[fmt.Sprintf("type%d_pct", k+1)] = p
	}
	return out
}

// BaselineCGWorkload wraps the Figure 1 baseline solver under a
// conventional scheme (native, checkpoint, or PMEM transactions) as an
// engine.Workload, so injection campaigns can crash and recover the
// baseline mechanisms through the same lifecycle as the
// algorithm-directed solver.
type BaselineCGWorkload struct {
	// A is the system matrix; if nil, Prepare generates an SPD matrix
	// of dimension N with NnzRow nonzeros per row from Opts.Seed.
	A      *sparse.CSR
	N      int
	NnzRow int
	Opts   CGOptions
	// Scheme selects the conventional mechanism; nil means native.
	Scheme engine.Scheme

	bg *BaselineCG
}

// Name implements engine.Workload.
func (w *BaselineCGWorkload) Name() string { return "cg" }

// Prepare implements engine.Workload.
func (w *BaselineCGWorkload) Prepare(m *crash.Machine, em *crash.Emulator) error {
	if w.bg != nil {
		return fmt.Errorf("cg: Prepare called twice")
	}
	if w.A == nil {
		n := w.N
		if n == 0 {
			n = 2000
		}
		nnz := w.NnzRow
		if nnz == 0 {
			nnz = 9
		}
		w.A = sparse.GenSPD(n, nnz, w.Opts.Seed)
	}
	w.bg = NewBaselineCG(m, w.A, w.Opts, w.Scheme)
	w.bg.Em = em
	return nil
}

// Start implements engine.Workload: CG iterations are 1-based.
func (w *BaselineCGWorkload) Start() int64 { return 1 }

// Run implements engine.Workload.
func (w *BaselineCGWorkload) Run(from int64) { w.bg.RunFrom(int(from)) }

// Recover implements engine.Workload.
func (w *BaselineCGWorkload) Recover() (int64, error) {
	from, err := w.bg.Recover()
	return int64(from), err
}

// Verify implements engine.Workload: same residual bound as the
// extended solver.
func (w *BaselineCGWorkload) Verify() error {
	r := w.bg.Residual()
	if math.IsNaN(r) || r >= 1 {
		return fmt.Errorf("cg: relative residual %v after %d iterations", r, w.bg.Opts.MaxIter)
	}
	return nil
}

// Metrics implements engine.Workload.
func (w *BaselineCGWorkload) Metrics() map[string]float64 {
	return map[string]float64{
		"residual":    w.bg.Residual(),
		"avg_iter_ns": float64(AvgIterNS(w.bg.IterNS)),
	}
}

// BaselineMMWorkload wraps the Figure 5 baseline ABFT multiplication
// under a conventional scheme as an engine.Workload.
type BaselineMMWorkload struct {
	Opts MMOptions
	// Want, when non-nil, is the precomputed native product oracle (see
	// MMWorkload.Want).
	Want *dense.Matrix
	// Scheme selects the conventional mechanism; nil means native.
	Scheme engine.Scheme

	bm *BaselineMM
}

// Name implements engine.Workload.
func (w *BaselineMMWorkload) Name() string { return "mm" }

// Prepare implements engine.Workload.
func (w *BaselineMMWorkload) Prepare(m *crash.Machine, em *crash.Emulator) error {
	if w.bm != nil {
		return fmt.Errorf("mm: Prepare called twice")
	}
	w.bm = NewBaselineMM(m, w.Opts, w.Scheme)
	w.bm.Em = em
	return nil
}

// Start implements engine.Workload: panels are 0-based.
func (w *BaselineMMWorkload) Start() int64 { return 0 }

// Run implements engine.Workload.
func (w *BaselineMMWorkload) Run(from int64) { w.bm.RunFrom(int(from)) }

// Recover implements engine.Workload.
func (w *BaselineMMWorkload) Recover() (int64, error) {
	from, err := w.bm.Recover()
	return int64(from), err
}

// Verify implements engine.Workload: the live result must equal the
// native product.
func (w *BaselineMMWorkload) Verify() error {
	return mmVerify(w.bm.Result(), w.Want, w.bm.Opts)
}

// Metrics implements engine.Workload.
func (w *BaselineMMWorkload) Metrics() map[string]float64 {
	return map[string]float64{
		"panels":       float64(len(w.bm.PanelNS)),
		"avg_panel_ns": float64(AvgPositiveNS(w.bm.PanelNS)),
	}
}

// Workloads returns one instance of each paper workload with CI-scale
// defaults, for generic drivers and conformance tests.
func Workloads() []engine.Workload {
	return []engine.Workload{
		&CGWorkload{N: 2000, NnzRow: 9, Opts: CGOptions{MaxIter: 10, Seed: 3}},
		&MMWorkload{Opts: MMOptions{N: 96, K: 24, Seed: 4}},
		&MCWorkload{Cfg: mc.TinyConfig()},
	}
}

// Interface conformance.
var (
	_ engine.Workload = (*CGWorkload)(nil)
	_ engine.Workload = (*MMWorkload)(nil)
	_ engine.Workload = (*MCWorkload)(nil)
	_ engine.Workload = (*BaselineCGWorkload)(nil)
	_ engine.Workload = (*BaselineMMWorkload)(nil)
)
