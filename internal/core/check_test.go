package core

import (
	"testing"

	"adcc/internal/crash"
	"adcc/internal/sparse"
)

func TestCGResidualCheckCleanRun(t *testing.T) {
	a := sparse.GenSPD(600, 7, 12)
	m := cgMachine(crash.NVMOnly, 1<<20)
	cg := NewCG(m, nil, a, CGOptions{MaxIter: 10, CheckResidual: true, InvTol: 1e-8})
	cg.Run(1)
	if cg.ResidualAlarms != 0 {
		t.Fatalf("clean run raised %d residual alarms", cg.ResidualAlarms)
	}
}

func TestCGResidualCheckDetectsSoftError(t *testing.T) {
	a := sparse.GenSPD(600, 7, 13)
	m := cgMachine(crash.NVMOnly, 1<<20)
	cg := NewCG(m, nil, a, CGOptions{MaxIter: 6, CheckResidual: true, InvTol: 1e-8})
	// Run a few iterations, inject a soft error into the live residual
	// row, then continue: the next check must fire.
	cg.Run(1)
	before := cg.ResidualAlarms
	// Corrupt r of the final iteration's row and re-check via a fresh
	// iteration starting there.
	cg.R.Live()[cg.row(7)+5] += 10.0
	cg.checkIteration(6)
	if cg.ResidualAlarms != before+1 {
		t.Fatalf("soft error in r not detected (alarms %d -> %d)", before, cg.ResidualAlarms)
	}
}

func TestCGResidualCheckCost(t *testing.T) {
	// The check roughly doubles per-iteration cost (one extra SpMV), as
	// the paper's Figure 1 implies.
	a := sparse.GenSPD(4000, 9, 14)
	run := func(check bool) int64 {
		m := cgMachine(crash.NVMOnly, 256<<10)
		cg := NewCG(m, nil, a, CGOptions{MaxIter: 6, CheckResidual: check})
		start := m.Clock.Now()
		cg.Run(1)
		return m.Clock.Since(start)
	}
	plain := run(false)
	checked := run(true)
	if checked < plain+plain/4 {
		t.Fatalf("residual check too cheap: %d vs %d", checked, plain)
	}
	if checked > 3*plain {
		t.Fatalf("residual check too expensive: %d vs %d", checked, plain)
	}
}

func TestCGResidualCheckWithCrashRecovery(t *testing.T) {
	// The check must coexist with crash recovery: alarms stay zero
	// through crash, recovery, and resume.
	a := sparse.GenSPD(3000, 9, 15)
	m := cgMachine(crash.NVMOnly, 128<<10)
	em := crash.NewEmulator(m)
	cg := NewCG(m, em, a, CGOptions{MaxIter: 10, CheckResidual: true})
	em.CrashAtTrigger(TriggerCGIterEnd, 10)
	if !em.Run(func() { cg.Run(1) }) {
		t.Fatal("expected crash")
	}
	rec := cg.Recover()
	cg.Run(rec.RestartIter)
	if cg.ResidualAlarms != 0 {
		t.Fatalf("recovery path raised %d false alarms", cg.ResidualAlarms)
	}
	if r := cg.Residual(); r > 1e-2 {
		t.Fatalf("residual %v after checked recovery", r)
	}
}
