package core

import (
	"math"
	"testing"

	"adcc/internal/abft"
	"adcc/internal/cache"
	"adcc/internal/crash"
	"adcc/internal/dense"
	"adcc/internal/engine"
)

func mmMachine(kind crash.SystemKind, llc int) *crash.Machine {
	return crash.NewMachine(crash.MachineConfig{
		System: kind,
		Cache: cache.Config{
			SizeBytes:         llc,
			LineBytes:         64,
			Assoc:             8,
			HitNS:             4,
			FlushChargesClean: true,
			PrefetchStreams:   16,
		},
	})
}

func refProduct(opts MMOptions) *dense.Matrix {
	opts.setDefaults()
	a := dense.Random(opts.N, opts.N, opts.Seed)
	b := dense.Random(opts.N, opts.N, opts.Seed+1)
	c := dense.New(opts.N, opts.N)
	dense.Mul(c, a, b)
	return c
}

func assertMatches(t *testing.T, got, want *dense.Matrix, context string) {
	t.Helper()
	for i := range want.Data {
		d := math.Abs(got.Data[i] - want.Data[i])
		if d > 1e-8*math.Max(1, math.Abs(want.Data[i])) {
			t.Fatalf("%s: result differs at %d: %v vs %v", context, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMMExtendedCorrectness(t *testing.T) {
	opts := MMOptions{N: 64, K: 16, Seed: 1}
	m := mmMachine(crash.NVMOnly, 1<<20)
	mm := NewMM(m, nil, opts)
	mm.Run()
	assertMatches(t, mm.Result(), refProduct(opts), "extended MM")
	// The final Ctemp must satisfy its full-checksum relations.
	n1 := opts.N + 1
	rep := abft.VerifyFull(mm.Ctemp.Live(), n1, n1, 1e-8)
	if !rep.Consistent() {
		t.Fatalf("final Ctemp checksum-inconsistent: %+v", rep)
	}
}

func TestMMBaselineCorrectness(t *testing.T) {
	opts := MMOptions{N: 48, K: 12, Seed: 2}
	m := mmMachine(crash.NVMOnly, 1<<20)
	bm := NewBaselineMM(m, opts, nil)
	bm.Run()
	assertMatches(t, bm.Result(), refProduct(opts), "baseline MM")
}

func TestMMBaselinePMEMCorrectness(t *testing.T) {
	opts := MMOptions{N: 32, K: 8, Seed: 3}
	m := mmMachine(crash.NVMOnly, 1<<20)
	bm := NewBaselineMM(m, opts, engine.MustLookup(engine.SchemePMEM))
	bm.Run()
	assertMatches(t, bm.Result(), refProduct(opts), "PMEM MM")
}

func TestMMCrashLoop1Recovery(t *testing.T) {
	// Crash at the end of the 4th submatrix multiplication (the
	// paper's first crash test). With blocks larger than the LLC,
	// earlier panels are evicted/persistent; recovery should lose at
	// most about one panel.
	opts := MMOptions{N: 160, K: 32, Seed: 4} // 5 panels, blocks ~200KB
	m := mmMachine(crash.NVMOnly, 64<<10)
	em := crash.NewEmulator(m)
	mm := NewMM(m, em, opts)
	em.CrashAtTrigger(TriggerMMLoop1IterEnd, 4)
	if !em.Run(mm.Run) {
		t.Fatal("expected crash in loop 1")
	}
	rec := mm.RecoverLoop1()
	if len(rec.Status) != 5 {
		t.Fatalf("status len = %d", len(rec.Status))
	}
	// Panel 4 was never run: must be zero. Panels well before the
	// crash must be consistent.
	if rec.Status[4] != BlockZero {
		t.Fatalf("panel 4 = %v, want zero", rec.Status[4])
	}
	if rec.Status[0] != BlockConsistent || rec.Status[1] != BlockConsistent {
		t.Fatalf("early panels not consistent: %v %v", rec.Status[0], rec.Status[1])
	}
	lostDone := 0
	for s := 0; s < 4; s++ {
		if rec.Status[s] == BlockZero || rec.Status[s] == BlockRecompute {
			lostDone++
		}
	}
	if lostDone > 2 {
		t.Fatalf("lost %d completed panels, want <= 2", lostDone)
	}
	// Resume: recompute damaged panels, then run loop 2 to completion.
	mm.ResumeLoop1(rec)
	mm.Em = nil
	mm.RunLoop2(0)
	assertMatches(t, mm.Result(), refProduct(opts), "post-loop1-crash")
}

func TestMMCrashLoop2Recovery(t *testing.T) {
	// Crash at the end of the 4th block addition (the paper's second
	// crash test).
	opts := MMOptions{N: 160, K: 32, Seed: 5}
	m := mmMachine(crash.NVMOnly, 64<<10)
	em := crash.NewEmulator(m)
	mm := NewMM(m, em, opts)
	em.CrashAtTrigger(TriggerMMLoop2IterEnd, 4)
	if !em.Run(mm.Run) {
		t.Fatal("expected crash in loop 2")
	}
	// Loop 1 must be fully recoverable (it completed and its blocks
	// streamed out of the small cache), possibly with checksum repair.
	rec1 := mm.RecoverLoop1()
	mm.ResumeLoop1(rec1)
	rec2 := mm.RecoverLoop2()
	// Blocks after the 4th can only be zero; blocks well before the
	// crash must be consistent.
	if rec2.Status[0] != BlockConsistent {
		t.Fatalf("block 0 = %v, want consistent", rec2.Status[0])
	}
	if last := rec2.Status[len(rec2.Status)-1]; last != BlockRecompute {
		t.Fatalf("final block = %v, want recompute (never executed)", last)
	}
	lost := 0
	for b := 0; b < 4; b++ {
		if rec2.Status[b] == BlockRecompute {
			lost++
		}
	}
	if lost > 2 {
		t.Fatalf("lost %d completed blocks, want <= 2", lost)
	}
	mm.ResumeLoop2(rec2)
	assertMatches(t, mm.Result(), refProduct(opts), "post-loop2-crash")
}

func TestMMRecoveryDetectsCorruption(t *testing.T) {
	opts := MMOptions{N: 64, K: 16, Seed: 6}
	m := mmMachine(crash.NVMOnly, 1<<20)
	mm := NewMM(m, nil, opts)
	mm.RunLoop1(0)
	m.LLC.WritebackAll() // make everything persistent
	// Corrupt a single element of panel 1's image (and live copy, as
	// after a restart).
	n1 := opts.N + 1
	idx := 7*n1 + 9
	mm.Ctemps[1].Image()[idx] += 2.5
	mm.Ctemps[1].Live()[idx] = mm.Ctemps[1].Image()[idx]
	rec := mm.RecoverLoop1()
	if rec.Status[1] != BlockCorrected {
		t.Fatalf("single stale element: status = %v, want corrected", rec.Status[1])
	}
	// The corrected block must now hold the true product value.
	want := refProduct(opts)
	got := mm.Ctemps[1].Live()[idx]
	// Reference for panel 1 only.
	a := dense.Random(opts.N, opts.N, opts.Seed)
	b := dense.Random(opts.N, opts.N, opts.Seed+1)
	exp := 0.0
	for l := 16; l < 32; l++ {
		exp += a.At(7, l) * b.At(l, 9)
	}
	if math.Abs(got-exp) > 1e-8 {
		t.Fatalf("corrected value %v, want %v", got, exp)
	}
	_ = want
}

func TestMMRecoveryMassCorruptionRecomputes(t *testing.T) {
	opts := MMOptions{N: 64, K: 16, Seed: 7}
	m := mmMachine(crash.NVMOnly, 1<<20)
	mm := NewMM(m, nil, opts)
	mm.RunLoop1(0)
	m.LLC.WritebackAll()
	// Wipe half of panel 2: uncorrectable.
	n1 := opts.N + 1
	for i := 0; i < n1*n1/2; i++ {
		mm.Ctemps[2].Image()[i] = 0
		mm.Ctemps[2].Live()[i] = 0
	}
	rec := mm.RecoverLoop1()
	if rec.Status[2] != BlockRecompute {
		t.Fatalf("mass corruption: status = %v, want recompute", rec.Status[2])
	}
	mm.ResumeLoop1(rec)
	mm.RunLoop2(0)
	assertMatches(t, mm.Result(), refProduct(opts), "post-mass-corruption")
}

func TestMMCheckpointBaseline(t *testing.T) {
	opts := MMOptions{N: 64, K: 16, Seed: 8}
	m := mmMachine(crash.NVMOnly, 256<<10)
	em := crash.NewEmulator(m)
	bm := NewBaselineMM(m, opts, engine.MustLookup(engine.SchemeCkptNVM))
	cp := bm.Guard.Checkpointer()
	crashed := em.Run(func() {
		bm.Run()
		crash.InjectCrashNow()
	})
	if !crashed {
		t.Fatal("expected crash")
	}
	cp.Restore(bm.Cf.R)
	assertMatches(t, bm.Result(), refProduct(opts), "checkpoint-restored MM")
}

func TestMMOverheadOrdering(t *testing.T) {
	// Figure 8's shape: algo overhead small; checkpoint larger; PMEM
	// largest.
	// The paper's regime: every matrix far exceeds the LLC, so both
	// the baseline and the extended version stream.
	opts := MMOptions{N: 160, K: 32, Seed: 9}
	runNS := func(build func(m *crash.Machine) func()) int64 {
		m := mmMachine(crash.NVMOnly, 32<<10)
		work := build(m)
		start := m.Clock.Now()
		work()
		return m.Clock.Since(start)
	}
	native := runNS(func(m *crash.Machine) func() {
		bm := NewBaselineMM(m, opts, nil)
		return bm.Run
	})
	algo := runNS(func(m *crash.Machine) func() {
		mm := NewMM(m, nil, opts)
		return mm.Run
	})
	ck := runNS(func(m *crash.Machine) func() {
		bm := NewBaselineMM(m, opts, engine.MustLookup(engine.SchemeCkptNVM))
		return bm.Run
	})
	pm := runNS(func(m *crash.Machine) func() {
		bm := NewBaselineMM(m, opts, engine.MustLookup(engine.SchemePMEM))
		return bm.Run
	})
	if algo >= ck {
		t.Fatalf("algo (%d) should be cheaper than checkpoint (%d)", algo, ck)
	}
	if ck >= pm {
		t.Fatalf("checkpoint (%d) should be cheaper than PMEM (%d)", ck, pm)
	}
	overhead := float64(algo-native) / float64(native)
	if overhead > 0.25 {
		t.Fatalf("algo overhead = %.1f%% at this scale, want < 25%%", 100*overhead)
	}
}

func TestMMRankDivisibilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible N/K did not panic")
		}
	}()
	m := mmMachine(crash.NVMOnly, 1<<20)
	NewMM(m, nil, MMOptions{N: 100, K: 33})
}

func TestBlockStatusString(t *testing.T) {
	for _, s := range []BlockStatus{BlockConsistent, BlockZero, BlockCorrected, BlockRecompute} {
		if s.String() == "" {
			t.Fatal("empty status name")
		}
	}
}
