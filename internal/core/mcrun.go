package core

import (
	"adcc/internal/crash"
	"adcc/internal/engine"
	"adcc/internal/mc"
	"adcc/internal/mem"
)

// TriggerMCLookup fires after every completed lookup.
const TriggerMCLookup = "mc.lookup"

// DefaultFlushPeriod returns the paper's flush/checkpoint period:
// 0.01% of the total number of lookups (at least 1).
func DefaultFlushPeriod(lookups int) int {
	p := lookups / 10_000
	if p < 1 {
		p = 1
	}
	return p
}

// MCRunner drives one Monte-Carlo run under a chosen scheme (paper
// §III-D and the seven-case comparison of Figure 13). The scheme's kind
// selects the restart mechanism — native, checkpoint, PMEM transactions
// — and, for the algorithm-directed schemes, its FlushPolicy selects
// which critical state is flushed per iteration:
//
//   - engine.FlushIndexOnly is the paper's "basic idea" (Figure 9
//     discussion): flush only the loop-index line and restart from the
//     remaining data in NVM — the biased results of Figure 10;
//   - engine.FlushSelective flushes macro_xs, the five counters, and the
//     loop index every FlushPeriod lookups (Figure 11);
//   - engine.FlushEveryIter flushes that state on every iteration — the
//     rejected design the paper measures at ~16% overhead.
type MCRunner struct {
	M  *crash.Machine
	Em *crash.Emulator
	S  *mc.Sim

	Scheme      engine.Scheme
	Guard       engine.Guard
	FlushPeriod int
}

// NewMCRunner builds a runner under the given scheme (nil means native).
// The grids are DRAM-tiered on heterogeneous machines (read-only data),
// while the critical state (macro_xs, counters, iteration index) stays
// NVM-direct.
func NewMCRunner(m *crash.Machine, em *crash.Emulator, s *mc.Sim, sc engine.Scheme) *MCRunner {
	if sc == nil {
		sc = engine.MustLookup(engine.SchemeNative)
	}
	r := &MCRunner{
		M: m, Em: em, S: s, Scheme: sc,
		FlushPeriod: DefaultFlushPeriod(s.Cfg.Lookups),
	}
	r.Guard = sc.NewGuard(m, 64*1024)
	r.Guard.Register(s.MacroXS, s.Counters, s.Iter)
	if r.Guard.Pool() != nil {
		// Transactional mode tracks completion in the index: iter = i
		// means lookup i committed. -1 = nothing committed yet.
		s.Iter.Live()[0] = -1
		s.Iter.Image()[0] = -1
	}
	m.TierRegion(s.EnergyGrid)
	m.TierRegion(s.XSIndices)
	m.TierRegion(s.NuclideGrids)
	return r
}

// flushCritical flushes the cache lines of macro_xs, the five counters,
// and the loop index (Figure 11 line 9).
func (r *MCRunner) flushCritical() {
	s := r.S
	r.M.Persist(s.MacroXS.Addr(mc.MacroOff), 8*mc.NumTypes)
	for k := 0; k < mc.NumTypes; k++ {
		r.M.Persist(s.CounterAddr(k), 8)
	}
	r.M.Persist(s.Iter.Addr(0), 8)
}

// Run executes lookups [from, Lookups) under the runner's scheme.
// After a crash, call RestartIter to learn where to resume and invoke
// Run again from there.
func (r *MCRunner) Run(from int64) {
	s := r.S
	total := int64(s.Cfg.Lookups)
	period := int64(r.FlushPeriod)
	pool := r.Guard.Pool()
	checkpoints := r.Guard.Checkpointer() != nil
	policy := r.Scheme.FlushPolicy()
	for i := from; i < total; i++ {
		if pool != nil {
			// Each lookup is a transaction: snapshot the critical
			// state, run the lookup, flush what it wrote at commit.
			tx := pool.Begin()
			tx.SetI64(s.Iter, 0, i)
			tx.SnapshotF64(s.MacroXS, mc.MacroOff, mc.NumTypes)
			for k := 0; k < mc.NumTypes; k++ {
				tx.SnapshotI64(s.Counters, k*(mem.LineSize/8), 1)
			}
			t := s.Lookup(i)
			tx.MarkWrittenF64(s.MacroXS, mc.MacroOff, mc.NumTypes)
			tx.MarkWrittenI64(s.Counters, t*(mem.LineSize/8), 1)
			tx.Commit()
			if r.Em != nil {
				r.Em.Trigger(TriggerMCLookup)
			}
			continue
		}

		s.Iter.Set(0, i)
		switch policy {
		case engine.FlushIndexOnly:
			// Basic idea: flush only the line containing i.
			r.M.Persist(s.Iter.Addr(0), 8)
		case engine.FlushSelective:
			if i%period == 0 {
				r.flushCritical()
			}
		case engine.FlushEveryIter:
			r.flushCritical()
		}
		if checkpoints && i%period == 0 {
			r.Guard.EndIteration(i, s.MacroXS, s.Counters, s.Iter)
		}
		s.Lookup(i)

		if r.Em != nil {
			r.Em.Trigger(TriggerMCLookup)
		}
	}
}

// RestartIter determines where to resume after a crash, per scheme: the
// flushed loop index for the algorithm-directed schemes, the last
// checkpoint tag for checkpointing, the rolled-back persistent index for
// PMEM.
func (r *MCRunner) RestartIter() int64 {
	switch {
	case r.Guard.Checkpointer() != nil:
		cp := r.Guard.Checkpointer()
		if !cp.Valid() {
			return 0
		}
		return cp.Restore(r.S.MacroXS, r.S.Counters, r.S.Iter)
	case r.Guard.Pool() != nil:
		// Roll back the torn transaction; the persistent index then
		// names the last committed lookup.
		r.Guard.Pool().Recover()
		return r.S.Iter.Image()[0] + 1
	default:
		return r.S.Iter.Image()[0]
	}
}
