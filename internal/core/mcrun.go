package core

import (
	"adcc/internal/ckpt"
	"adcc/internal/crash"
	"adcc/internal/mc"
	"adcc/internal/mem"
	"adcc/internal/pmem"
)

// TriggerMCLookup fires after every completed lookup.
const TriggerMCLookup = "mc.lookup"

// MCMechanism selects how the Monte-Carlo run establishes restartable
// state (paper §III-D and the seven-case comparison of Figure 13).
type MCMechanism int

const (
	// MCNative runs with no mechanism at all (not restartable).
	MCNative MCMechanism = iota
	// MCAlgoNaive is the paper's "basic idea" (Figure 9 discussion):
	// flush only the loop index line every iteration and restart from
	// the remaining data in NVM. Produces the biased results of
	// Figure 10.
	MCAlgoNaive
	// MCAlgoSelective is the paper's extension (Figure 11): flush
	// macro_xs, the five counters, and the loop index every
	// FlushPeriod lookups (0.01% of the total by default).
	MCAlgoSelective
	// MCAlgoEveryIter flushes the critical state on every iteration —
	// the rejected design the paper measures at ~16% overhead.
	MCAlgoEveryIter
	// MCCkpt checkpoints macro_xs, counters, and the loop index every
	// FlushPeriod lookups.
	MCCkpt
	// MCPMEM makes the per-lookup updates of the critical state
	// transactional via the undo-log library.
	MCPMEM
)

// String names the mechanism.
func (m MCMechanism) String() string {
	switch m {
	case MCNative:
		return "native"
	case MCAlgoNaive:
		return "algo-naive"
	case MCAlgoSelective:
		return "algo-selective"
	case MCAlgoEveryIter:
		return "algo-every-iter"
	case MCCkpt:
		return "checkpoint"
	case MCPMEM:
		return "pmem"
	default:
		return "unknown"
	}
}

// DefaultFlushPeriod returns the paper's flush/checkpoint period:
// 0.01% of the total number of lookups (at least 1).
func DefaultFlushPeriod(lookups int) int {
	p := lookups / 10_000
	if p < 1 {
		p = 1
	}
	return p
}

// MCRunner drives one Monte-Carlo run under a chosen mechanism.
type MCRunner struct {
	M  *crash.Machine
	Em *crash.Emulator
	S  *mc.Sim

	Mech        MCMechanism
	FlushPeriod int
	Ckpt        *ckpt.Checkpointer
	Pool        *pmem.Pool
}

// NewMCRunner builds a runner. cp is required for MCCkpt. The grids are
// DRAM-tiered on heterogeneous machines (read-only data), while the
// critical state (macro_xs, counters, iteration index) stays NVM-direct.
func NewMCRunner(m *crash.Machine, em *crash.Emulator, s *mc.Sim, mech MCMechanism, cp *ckpt.Checkpointer) *MCRunner {
	r := &MCRunner{
		M: m, Em: em, S: s, Mech: mech,
		FlushPeriod: DefaultFlushPeriod(s.Cfg.Lookups),
		Ckpt:        cp,
	}
	if mech == MCCkpt && cp == nil {
		panic("core: MCCkpt requires a checkpointer")
	}
	if mech == MCPMEM {
		r.Pool = pmem.NewPool(m, 64*1024)
		r.Pool.RegisterF64(s.MacroXS)
		r.Pool.RegisterI64(s.Counters)
		r.Pool.RegisterI64(s.Iter)
		// Transactional mode tracks completion in the index: iter = i
		// means lookup i committed. -1 = nothing committed yet.
		s.Iter.Live()[0] = -1
		s.Iter.Image()[0] = -1
	}
	m.TierRegion(s.EnergyGrid)
	m.TierRegion(s.XSIndices)
	m.TierRegion(s.NuclideGrids)
	return r
}

// flushCritical flushes the cache lines of macro_xs, the five counters,
// and the loop index (Figure 11 line 9).
func (r *MCRunner) flushCritical() {
	s := r.S
	r.M.Persist(s.MacroXS.Addr(mc.MacroOff), 8*mc.NumTypes)
	for k := 0; k < mc.NumTypes; k++ {
		r.M.Persist(s.CounterAddr(k), 8)
	}
	r.M.Persist(s.Iter.Addr(0), 8)
}

// Run executes lookups [from, Lookups) under the runner's mechanism.
// After a crash, call RestartIter to learn where to resume and invoke
// Run again from there.
func (r *MCRunner) Run(from int64) {
	s := r.S
	total := int64(s.Cfg.Lookups)
	period := int64(r.FlushPeriod)
	for i := from; i < total; i++ {
		if r.Mech == MCPMEM {
			// Each lookup is a transaction: snapshot the critical
			// state, run the lookup, flush what it wrote at commit.
			tx := r.Pool.Begin()
			tx.SetI64(s.Iter, 0, i)
			tx.SnapshotF64(s.MacroXS, mc.MacroOff, mc.NumTypes)
			for k := 0; k < mc.NumTypes; k++ {
				tx.SnapshotI64(s.Counters, k*(mem.LineSize/8), 1)
			}
			t := s.Lookup(i)
			tx.MarkWrittenF64(s.MacroXS, mc.MacroOff, mc.NumTypes)
			tx.MarkWrittenI64(s.Counters, t*(mem.LineSize/8), 1)
			tx.Commit()
			if r.Em != nil {
				r.Em.Trigger(TriggerMCLookup)
			}
			continue
		}

		s.Iter.Set(0, i)
		switch r.Mech {
		case MCAlgoNaive:
			// Basic idea: flush only the line containing i.
			r.M.Persist(s.Iter.Addr(0), 8)
		case MCAlgoSelective:
			if i%period == 0 {
				r.flushCritical()
			}
		case MCAlgoEveryIter:
			r.flushCritical()
		case MCCkpt:
			if i%period == 0 {
				r.Ckpt.Checkpoint(i, s.MacroXS, s.Counters, s.Iter)
			}
		}
		s.Lookup(i)

		if r.Em != nil {
			r.Em.Trigger(TriggerMCLookup)
		}
	}
}

// RestartIter determines where to resume after a crash, per mechanism:
// the flushed loop index for the algorithm-directed schemes, the last
// checkpoint tag for checkpointing, the rolled-back persistent index for
// PMEM.
func (r *MCRunner) RestartIter() int64 {
	switch r.Mech {
	case MCCkpt:
		if !r.Ckpt.Valid() {
			return 0
		}
		return r.Ckpt.Restore(r.S.MacroXS, r.S.Counters, r.S.Iter)
	case MCPMEM:
		// Roll back the torn transaction; the persistent index then
		// names the last committed lookup.
		r.Pool.Recover()
		return r.S.Iter.Image()[0] + 1
	default:
		return r.S.Iter.Image()[0]
	}
}
