package sparse

import (
	"adcc/internal/mem"
	"adcc/internal/sim"
)

// SimCSR is a CSR matrix stored in simulated memory regions, so every
// SpMV access is observed by the cache simulator.
type SimCSR struct {
	N      int
	RowPtr *mem.I64
	Col    *mem.I64
	Val    *mem.F64
}

// NewSimCSR uploads a native CSR matrix into heap regions and marks the
// contents persistent (the paper assumes the input system is already
// consistent in NVM before the run).
func NewSimCSR(h *mem.Heap, a *CSR, name string) *SimCSR {
	s := &SimCSR{
		N:      a.N,
		RowPtr: h.AllocI64(name+".rowptr", len(a.RowPtr)),
		Col:    h.AllocI64(name+".col", len(a.Col)),
		Val:    h.AllocF64(name+".val", len(a.Val)),
	}
	copy(s.RowPtr.Live(), a.RowPtr)
	copy(s.Col.Live(), a.Col)
	copy(s.Val.Live(), a.Val)
	// Initial state is persistent without charging the clock.
	copy(s.RowPtr.Image(), a.RowPtr)
	copy(s.Col.Image(), a.Col)
	copy(s.Val.Image(), a.Val)
	return s
}

// Bytes returns the total simulated footprint of the matrix.
func (a *SimCSR) Bytes() int {
	return a.RowPtr.Bytes() + a.Col.Bytes() + a.Val.Bytes()
}

// SpMV computes dst[dstOff : dstOff+N] = A * x[xOff : xOff+N] through
// the simulated memory system, charging 2 flops per nonzero to the CPU.
// The simulated access stream (row-pointer pair, column range, value
// range, one x load per nonzero, one dst store) is part of the model
// and must not change; the host-side loop hoists the region handles
// and slices cols/vals to a common length for bounds-check elimination.
func (a *SimCSR) SpMV(cpu *sim.CPU, dst *mem.F64, dstOff int, x *mem.F64, xOff int) {
	rowPtr, col, val := a.RowPtr, a.Col, a.Val
	for i := 0; i < a.N; i++ {
		rp := rowPtr.LoadRange(i, 2)
		start, end := int(rp[0]), int(rp[1])
		nnz := end - start
		cols := col.LoadRange(start, nnz)
		vals := val.LoadRange(start, nnz)
		if len(vals) > len(cols) {
			vals = vals[:len(cols)]
		}
		sum := 0.0
		for k, c := range cols {
			sum += vals[k] * x.At(xOff+int(c))
		}
		dst.Set(dstOff+i, sum)
		cpu.Compute(int64(2 * nnz))
	}
}

// SpMVImage computes y = A*x natively over the persistent image of the
// matrix (used by post-crash recovery, which must not touch live state).
func (a *SimCSR) SpMVImage(y []float64, x []float64) {
	rp := a.RowPtr.Image()
	cols := a.Col.Image()
	vals := a.Val.Image()
	y = y[:a.N]
	for i := range y {
		sum := 0.0
		end := rp[i+1]
		for k := rp[i]; k < end; k++ {
			sum += vals[k] * x[cols[k]]
		}
		y[i] = sum
	}
}

// vector kernel chunk size: one page of elements at a time keeps range
// accounting cheap without hiding cache-line behaviour.
const chunk = 512

// SimDot returns the inner product of two region ranges, charging the
// memory system for the streamed loads and the CPU for 2n flops.
func SimDot(cpu *sim.CPU, a *mem.F64, aOff int, b *mem.F64, bOff int, n int) float64 {
	s := 0.0
	for i := 0; i < n; i += chunk {
		c := min(chunk, n-i)
		av := a.LoadRange(aOff+i, c)
		bv := b.LoadRange(bOff+i, c)
		for k := 0; k < c; k++ {
			s += av[k] * bv[k]
		}
	}
	cpu.Compute(int64(2 * n))
	return s
}

// SimAxpby computes dst = x + alpha*y over region ranges:
// dst[dstOff+i] = x[xOff+i] + alpha*y[yOff+i]. dst may alias x or y.
func SimAxpby(cpu *sim.CPU, dst *mem.F64, dstOff int, x *mem.F64, xOff int, alpha float64, y *mem.F64, yOff int, n int) {
	for i := 0; i < n; i += chunk {
		c := min(chunk, n-i)
		xv := x.LoadRange(xOff+i, c)
		yv := y.LoadRange(yOff+i, c)
		dv := dst.StoreRange(dstOff+i, c)
		for k := 0; k < c; k++ {
			dv[k] = xv[k] + alpha*yv[k]
		}
	}
	cpu.Compute(int64(2 * n))
}

// SimCopy copies n elements between region ranges.
func SimCopy(cpu *sim.CPU, dst *mem.F64, dstOff int, src *mem.F64, srcOff int, n int) {
	for i := 0; i < n; i += chunk {
		c := min(chunk, n-i)
		sv := src.LoadRange(srcOff+i, c)
		dv := dst.StoreRange(dstOff+i, c)
		copy(dv, sv)
	}
	cpu.Compute(int64(n))
}
