package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adcc/internal/mem"
	"adcc/internal/sim"
)

func TestGenSPDStructure(t *testing.T) {
	a := GenSPD(200, 7, 1)
	if a.N != 200 || len(a.RowPtr) != 201 {
		t.Fatalf("bad dims: N=%d rowptr=%d", a.N, len(a.RowPtr))
	}
	if int(a.RowPtr[200]) != len(a.Col) || len(a.Col) != len(a.Val) {
		t.Fatal("rowptr/col/val inconsistent")
	}
	// Columns sorted and in range, exactly one diagonal per row.
	for i := 0; i < a.N; i++ {
		diag := 0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if k > a.RowPtr[i] && a.Col[k] <= a.Col[k-1] {
				t.Fatalf("row %d columns not strictly sorted", i)
			}
			if a.Col[k] < 0 || a.Col[k] >= int64(a.N) {
				t.Fatalf("row %d column %d out of range", i, a.Col[k])
			}
			if a.Col[k] == int64(i) {
				diag++
			}
		}
		if diag != 1 {
			t.Fatalf("row %d has %d diagonal entries", i, diag)
		}
	}
}

func denseAt(a *CSR, i, j int) float64 {
	for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
		if a.Col[k] == int64(j) {
			return a.Val[k]
		}
	}
	return 0
}

func TestGenSPDSymmetricAndDominant(t *testing.T) {
	a := GenSPD(120, 9, 7)
	for i := 0; i < a.N; i++ {
		off := 0.0
		var diag float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := int(a.Col[k])
			if j == i {
				diag = a.Val[k]
				continue
			}
			off += math.Abs(a.Val[k])
			if got := denseAt(a, j, i); math.Abs(got-a.Val[k]) > 1e-15 {
				t.Fatalf("asymmetry at (%d,%d): %v vs %v", i, j, a.Val[k], got)
			}
		}
		if diag <= off {
			t.Fatalf("row %d not strictly dominant: diag=%v off=%v", i, diag, off)
		}
	}
}

func TestGenSPDDeterministic(t *testing.T) {
	a := GenSPD(100, 7, 42)
	b := GenSPD(100, 7, 42)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed, different nnz")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] || a.Col[k] != b.Col[k] {
			t.Fatal("same seed, different matrix")
		}
	}
	c := GenSPD(100, 7, 43)
	same := a.NNZ() == c.NNZ()
	if same {
		for k := range a.Val {
			if a.Val[k] != c.Val[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestClasses(t *testing.T) {
	cs := Classes()
	if len(cs) != 5 || cs[0].Name != "S" || cs[4].Name != "C" {
		t.Fatalf("classes = %+v", cs)
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].N <= cs[i-1].N {
			t.Fatal("classes not increasing in size")
		}
	}
	if _, err := ClassByName("B"); err != nil {
		t.Fatal(err)
	}
	if _, err := ClassByName("Z"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestSpMVAgainstDense(t *testing.T) {
	a := GenSPD(50, 5, 3)
	x := make([]float64, 50)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 50)
	SpMV(y, a, x)
	for i := 0; i < 50; i++ {
		want := 0.0
		for j := 0; j < 50; j++ {
			want += denseAt(a, i, j) * x[j]
		}
		if math.Abs(y[i]-want) > 1e-10*math.Max(1, math.Abs(want)) {
			t.Fatalf("SpMV row %d = %v, want %v", i, y[i], want)
		}
	}
}

func TestDotAxpy(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	Axpy(2, a, b)
	if b[0] != 6 || b[1] != 9 || b[2] != 12 {
		t.Fatalf("Axpy result = %v", b)
	}
}

// --- simulated kernels ---

func simSetup(n int) (*mem.Heap, *sim.CPU) {
	clock := &sim.Clock{}
	return mem.NewHeap(nil), sim.DefaultCPU(clock)
}

func TestSimCSRMatchesNative(t *testing.T) {
	a := GenSPD(300, 7, 11)
	h, cpu := simSetup(300)
	sa := NewSimCSR(h, a, "A")

	x := h.AllocF64("x", 300)
	y := h.AllocF64("y", 300)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		x.Set(i, rng.NormFloat64())
	}
	sa.SpMV(cpu, y, 0, x, 0)

	want := make([]float64, 300)
	SpMV(want, a, x.Live())
	for i := range want {
		if math.Abs(y.Live()[i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("sim SpMV row %d = %v, want %v", i, y.Live()[i], want[i])
		}
	}
}

func TestSpMVImageUsesImageOnly(t *testing.T) {
	a := GenSPD(64, 5, 5)
	h, _ := simSetup(64)
	sa := NewSimCSR(h, a, "A")
	// Corrupt live values: image-based SpMV must be unaffected.
	for i := range sa.Val.Live() {
		sa.Val.Live()[i] = -999
	}
	x := make([]float64, 64)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 64)
	sa.SpMVImage(y, x)
	want := make([]float64, 64)
	SpMV(want, a, x)
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("image SpMV differs at %d", i)
		}
	}
}

func TestSimDotAxpbyCopy(t *testing.T) {
	h, cpu := simSetup(0)
	a := h.AllocF64("a", 1000)
	b := h.AllocF64("b", 1000)
	c := h.AllocF64("c", 1000)
	for i := 0; i < 1000; i++ {
		a.Set(i, float64(i))
		b.Set(i, 2)
	}
	if got := SimDot(cpu, a, 0, b, 0, 1000); got != 999*1000.0 {
		t.Fatalf("SimDot = %v, want %v", got, 999*1000.0)
	}
	// c = a + 3*b
	SimAxpby(cpu, c, 0, a, 0, 3, b, 0, 1000)
	if c.Live()[10] != 16 {
		t.Fatalf("SimAxpby c[10] = %v, want 16", c.Live()[10])
	}
	SimCopy(cpu, b, 0, c, 0, 1000)
	if b.Live()[10] != 16 {
		t.Fatalf("SimCopy b[10] = %v", b.Live()[10])
	}
	if cpu.Clock.Now() == 0 {
		t.Fatal("kernels did not charge compute time")
	}
}

func TestSimAxpbyAliasing(t *testing.T) {
	h, cpu := simSetup(0)
	x := h.AllocF64("x", 100)
	y := h.AllocF64("y", 100)
	for i := 0; i < 100; i++ {
		x.Set(i, 1)
		y.Set(i, 10)
	}
	// x = x + 0.5*y, dst aliases x.
	SimAxpby(cpu, x, 0, x, 0, 0.5, y, 0, 100)
	for i := 0; i < 100; i++ {
		if x.Live()[i] != 6 {
			t.Fatalf("aliased axpby x[%d] = %v, want 6", i, x.Live()[i])
		}
	}
}

func TestSimKernelsOffsets(t *testing.T) {
	// History-array style usage: rows of a (iters x n) region.
	h, cpu := simSetup(0)
	n := 64
	big := h.AllocF64("hist", 4*n)
	for i := 0; i < n; i++ {
		big.Set(n+i, 3) // row 1
		big.Set(2*n+i, 4)
	}
	if got := SimDot(cpu, big, n, big, 2*n, n); got != float64(12*n) {
		t.Fatalf("offset SimDot = %v, want %v", got, 12*n)
	}
	SimAxpby(cpu, big, 3*n, big, n, 1, big, 2*n, n)
	if big.Live()[3*n+5] != 7 {
		t.Fatalf("offset axpby = %v, want 7", big.Live()[3*n+5])
	}
}

// Property: SpMV(e_j) extracts column j (spot check via random vectors:
// SpMV is linear).
func TestSpMVLinearity(t *testing.T) {
	a := GenSPD(80, 5, 9)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 80)
		y := make([]float64, 80)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		sum := make([]float64, 80)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		ax := make([]float64, 80)
		ay := make([]float64, 80)
		asum := make([]float64, 80)
		SpMV(ax, a, x)
		SpMV(ay, a, y)
		SpMV(asum, a, sum)
		for i := range asum {
			if math.Abs(asum[i]-ax[i]-ay[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
