// Package sparse provides the sparse linear-algebra substrate for the
// CG study (paper §III-B): CSR matrices, an NPB-CG-style generator of
// symmetric positive-definite systems in classes S through C, and the
// SpMV/dot/axpy kernels in both native form (plain slices) and
// simulated form (routed through the crash emulator's memory regions).
package sparse

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format.
type CSR struct {
	N      int
	RowPtr []int64 // length N+1
	Col    []int64 // length nnz
	Val    []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// Class describes one NPB-CG-style problem class. The sizes follow the
// NAS progression (each class roughly an order of magnitude bigger);
// NnzRow approximates the NPB nonzero densities.
type Class struct {
	Name   string
	N      int
	NnzRow int
}

// Classes returns the five problem classes used in the paper's Figure 3,
// in increasing size order.
func Classes() []Class {
	return []Class{
		{Name: "S", N: 1400, NnzRow: 7},
		{Name: "W", N: 7000, NnzRow: 8},
		{Name: "A", N: 14000, NnzRow: 11},
		{Name: "B", N: 75000, NnzRow: 13},
		{Name: "C", N: 150000, NnzRow: 15},
	}
}

// ClassByName returns the named class.
func ClassByName(name string) (Class, error) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("sparse: unknown class %q", name)
}

// GenSPD generates a random sparse symmetric positive-definite matrix of
// order n with approximately nnzRow nonzeros per row, in the spirit of
// the NPB CG problem generator: a random symmetric sparsity pattern with
// values in (0,1) and a diagonal shifted to strict diagonal dominance,
// which guarantees positive definiteness.
func GenSPD(n, nnzRow int, seed int64) *CSR {
	if n <= 0 || nnzRow < 1 {
		panic(fmt.Sprintf("sparse: invalid GenSPD(%d, %d)", n, nnzRow))
	}
	rng := rand.New(rand.NewSource(seed))
	// Off-diagonal entries per row in the upper triangle; the mirror
	// fills the lower triangle.
	offPerRow := (nnzRow - 1) / 2
	if offPerRow < 1 {
		offPerRow = 1
	}
	type entry struct {
		col int
		val float64
	}
	rows := make([][]entry, n)
	add := func(i, j int, v float64) {
		rows[i] = append(rows[i], entry{j, v})
	}
	for i := 0; i < n; i++ {
		for k := 0; k < offPerRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64()
			add(i, j, v)
			add(j, i, v)
		}
	}
	// Deduplicate columns (sum duplicates), compute row sums, and set
	// the diagonal to rowSum + 1 for strict dominance.
	rp := make([]int64, n+1)
	var cols []int64
	var vals []float64
	for i := 0; i < n; i++ {
		r := rows[i]
		sort.Slice(r, func(a, b int) bool { return r[a].col < r[b].col })
		dedup := r[:0]
		for _, e := range r {
			if len(dedup) > 0 && dedup[len(dedup)-1].col == e.col {
				dedup[len(dedup)-1].val += e.val
			} else {
				dedup = append(dedup, e)
			}
		}
		rowSum := 0.0
		for _, e := range dedup {
			rowSum += e.val
		}
		diag := rowSum + 1.0
		// Merge the diagonal into sorted position.
		placed := false
		for _, e := range dedup {
			if !placed && e.col > i {
				cols = append(cols, int64(i))
				vals = append(vals, diag)
				placed = true
			}
			cols = append(cols, int64(e.col))
			vals = append(vals, e.val)
		}
		if !placed {
			cols = append(cols, int64(i))
			vals = append(vals, diag)
		}
		rp[i+1] = int64(len(cols))
	}
	return &CSR{N: n, RowPtr: rp, Col: cols, Val: vals}
}

// SpMV computes y = A*x natively. The CSR arrays are hoisted into
// locals and y is re-sliced to the row count so the compiler can prove
// the inner-loop indexing in bounds.
func SpMV(y []float64, a *CSR, x []float64) {
	rowPtr, cols, vals := a.RowPtr, a.Col, a.Val
	y = y[:a.N]
	for i := range y {
		sum := 0.0
		end := rowPtr[i+1]
		for k := rowPtr[i]; k < end; k++ {
			sum += vals[k] * x[cols[k]]
		}
		y[i] = sum
	}
}

// Dot returns the native inner product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x natively.
func Axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}
