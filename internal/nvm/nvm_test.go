package nvm

import (
	"testing"

	"adcc/internal/mem"
)

func TestDeviceModelCosts(t *testing.T) {
	m := DeviceModel{ReadLatencyNS: 100, WriteLatencyNS: 200, ReadBW: 2, WriteBW: 4}
	if got := m.ReadCost(64); got != 100+32 {
		t.Fatalf("ReadCost(64) = %d, want 132", got)
	}
	if got := m.WriteCost(64); got != 200+16 {
		t.Fatalf("WriteCost(64) = %d, want 216", got)
	}
}

func TestPaperModelRatios(t *testing.T) {
	d, n := DRAM(), PCMLikeNVM()
	if n.ReadLatencyNS != 4*d.ReadLatencyNS {
		t.Errorf("NVM latency = %d, want 4x DRAM (%d)", n.ReadLatencyNS, 4*d.ReadLatencyNS)
	}
	if d.ReadBW != 8*n.ReadBW {
		t.Errorf("NVM bandwidth = %v, want 1/8 of DRAM (%v)", n.ReadBW, d.ReadBW/8)
	}
	if dl := DRAMLikeNVM(); dl.ReadCost(4096) != d.ReadCost(4096) {
		t.Error("DRAM-like NVM must cost the same as DRAM")
	}
}

func TestHDDMuchSlowerThanDRAM(t *testing.T) {
	if HDD().WriteCost(1<<20) < 20*DRAM().WriteCost(1<<20) {
		t.Error("HDD should be orders of magnitude slower than DRAM for 1 MB")
	}
}

func TestUniformSystem(t *testing.T) {
	u := NewUniform(DRAM())
	if u.ReadCost(0, 64) != u.ReadCost(1<<30, 64) {
		t.Error("uniform system cost must be address independent")
	}
	if u.Name() != "DRAM" {
		t.Errorf("Name = %q", u.Name())
	}
	if u.PersistModel().Name != "DRAM" {
		t.Error("PersistModel mismatch")
	}
	u.Reset() // must not panic
}

func TestHeteroUntieredGoesToNVM(t *testing.T) {
	h := NewHetero(1 << 20)
	nvmCost := PCMLikeNVM().ReadCost(64)
	if got := h.ReadCost(12345, 64); got != nvmCost {
		t.Fatalf("untiered read cost = %d, want NVM cost %d", got, nvmCost)
	}
}

func TestHeteroTieredHitAndMiss(t *testing.T) {
	h := NewHetero(1 << 20)
	h.SetTiered(0, 1<<20)
	dram := DRAM()
	nvm := PCMLikeNVM()

	missCost := h.ReadCost(4096, 64)
	wantMiss := dram.ReadCost(64) + nvm.ReadCost(PageSize)
	if missCost != wantMiss {
		t.Fatalf("tier miss = %d, want %d", missCost, wantMiss)
	}
	hitCost := h.ReadCost(4096+64, 64) // same page now resident
	if hitCost != dram.ReadCost(64) {
		t.Fatalf("tier hit = %d, want DRAM cost %d", hitCost, dram.ReadCost(64))
	}
	if missCost <= hitCost {
		t.Fatal("miss must cost more than hit")
	}
}

func TestHeteroResetColdsTier(t *testing.T) {
	h := NewHetero(1 << 20)
	h.SetTiered(0, 1<<20)
	h.ReadCost(0, 64)
	hot := h.ReadCost(0, 64)
	h.Reset()
	cold := h.ReadCost(0, 64)
	if cold <= hot {
		t.Fatal("Reset did not cold the DRAM page cache")
	}
}

func TestHeteroTierEviction(t *testing.T) {
	// Tiny tier: capacity 8 pages (one set at assoc 8).
	h := NewHetero(8 * PageSize)
	h.SetTiered(0, 1<<30)
	// Touch 9 distinct pages in the same set: first page gets evicted.
	for p := 0; p < 9; p++ {
		h.ReadCost(mem.Addr(p*PageSize), 64)
	}
	cost := h.ReadCost(0, 64)
	if cost == DRAM().ReadCost(64) {
		t.Fatal("page 0 should have been evicted and cost a refill")
	}
}

func TestHeteroWriteCosts(t *testing.T) {
	h := NewHetero(1 << 20)
	h.SetTiered(0, 4096)
	nvmW := PCMLikeNVM().WriteCost(64)
	if got := h.WriteCost(1<<20, 64); got != nvmW {
		t.Fatalf("untiered write = %d, want %d", got, nvmW)
	}
	h.ReadCost(0, 64) // warm the page
	if got := h.WriteCost(0, 64); got != DRAM().WriteCost(64) {
		t.Fatalf("tiered warm write = %d, want DRAM cost", got)
	}
}

func TestTierRegionHelper(t *testing.T) {
	h := NewHetero(1 << 20)
	heap := mem.NewHeap(nil)
	r := heap.AllocF64("big", 1024)
	h.TierRegion(r)
	if !h.isTiered(r.Base()) || !h.isTiered(r.Base()+mem.Addr(r.Bytes())-1) {
		t.Fatal("TierRegion did not cover the region")
	}
	if h.isTiered(r.Base() + mem.Addr(r.Bytes())) {
		t.Fatal("tiering covers past the region end")
	}
}
