// Package nvm provides the performance models of the memory and storage
// devices in the paper's evaluation platform (§III-A), replacing the
// Quartz DRAM-based NVM emulator with a deterministic cost model:
//
//   - DRAM: the baseline device.
//   - PCM-like NVM: 4x the latency and 1/8 the bandwidth of DRAM,
//     the configuration the paper uses with Quartz.
//   - DRAM-like NVM: identical to DRAM (the paper's optimistic
//     "NVM-only system" configuration).
//   - HDD: a local hard drive for the traditional-checkpoint baseline.
//
// Two memory systems implement cache.CostModel for the LLC simulator:
//
//   - Uniform: every address is served by one device model (the
//     NVM-only system).
//   - Hetero: the heterogeneous NVM/DRAM system. Addresses registered
//     as "tiered" are served through a 32 MB DRAM page cache in front
//     of NVM (metadata-only LRU over 4 KB pages); all other addresses
//     go to NVM directly. This mirrors the paper's data placement
//     policy (critical, persistence-relevant objects placed in NVM;
//     large read-mostly data accelerated by the DRAM cache).
package nvm

import (
	"fmt"

	"adcc/internal/mem"
)

// DeviceModel prices accesses to one device as latency + size/bandwidth.
type DeviceModel struct {
	Name string
	// ReadLatencyNS and WriteLatencyNS are per-access latencies.
	ReadLatencyNS  int64
	WriteLatencyNS int64
	// ReadBW and WriteBW are bandwidths in bytes per nanosecond
	// (1 byte/ns = 1 GB/s approximately; exactly 10^9 B/s).
	ReadBW  float64
	WriteBW float64
}

// ReadCost returns the simulated cost of reading size bytes.
func (m DeviceModel) ReadCost(size int) int64 {
	return m.ReadLatencyNS + int64(float64(size)/m.ReadBW)
}

// WriteCost returns the simulated cost of writing size bytes.
func (m DeviceModel) WriteCost(size int) int64 {
	return m.WriteLatencyNS + int64(float64(size)/m.WriteBW)
}

// ReadCostSeq prices a read that the hardware prefetcher has already
// covered: bandwidth only, latency hidden. Streaming accesses on real
// machines run at bandwidth-bound throughput, which is what lets the
// paper's history-array extension stay under 3% overhead.
func (m DeviceModel) ReadCostSeq(size int) int64 {
	return int64(float64(size) / m.ReadBW)
}

// WriteCostSeq prices a write-combined streaming store: bandwidth only.
func (m DeviceModel) WriteCostSeq(size int) int64 {
	return int64(float64(size) / m.WriteBW)
}

// DRAM returns the baseline DRAM model: 80 ns access latency and
// 12.8 GB/s per-channel bandwidth, in line with the paper's 2.13 GHz
// Xeon E5606 platform.
func DRAM() DeviceModel {
	return DeviceModel{Name: "DRAM", ReadLatencyNS: 80, WriteLatencyNS: 80, ReadBW: 12.8, WriteBW: 12.8}
}

// PCMLikeNVM returns the pessimistic NVM model the paper emulates with
// Quartz: 4x DRAM latency and 1/8 DRAM bandwidth (§II, §III-A).
func PCMLikeNVM() DeviceModel {
	d := DRAM()
	return DeviceModel{
		Name:           "NVM(PCM-like)",
		ReadLatencyNS:  4 * d.ReadLatencyNS,
		WriteLatencyNS: 4 * d.WriteLatencyNS,
		ReadBW:         d.ReadBW / 8,
		WriteBW:        d.WriteBW / 8,
	}
}

// DRAMLikeNVM returns the optimistic NVM model: performance identical to
// DRAM (the paper's "NVM-only system" assumption).
func DRAMLikeNVM() DeviceModel {
	d := DRAM()
	d.Name = "NVM(DRAM-like)"
	return d
}

// HDD returns a local hard drive model as a checkpoint target: 2 ms
// effective positioning latency and 330 MB/s effective streaming
// bandwidth. Checkpoints write sequentially through the OS page cache
// with write-behind, so the effective rate is well above raw platter
// speed; the figure is calibrated against the paper's measured 60.4%
// checkpoint overhead on a local hard drive.
func HDD() DeviceModel {
	return DeviceModel{
		Name:           "HDD",
		ReadLatencyNS:  2_000_000,
		WriteLatencyNS: 2_000_000,
		ReadBW:         0.33,
		WriteBW:        0.33,
	}
}

// System is a memory system below the LLC. It extends cache.CostModel
// (structurally) with identification and lifecycle hooks.
type System interface {
	ReadCost(a mem.Addr, size int) int64
	WriteCost(a mem.Addr, size int) int64
	// ReadCostSeq and WriteCostSeq price accesses that the cache
	// simulator identified as part of a sequential stream (prefetched
	// / write-combined): bandwidth only.
	ReadCostSeq(a mem.Addr, size int) int64
	WriteCostSeq(a mem.Addr, size int) int64
	// Name identifies the system in reports.
	Name() string
	// Reset discards any volatile internal state (e.g. the DRAM page
	// cache) — called when the emulated machine crashes or restarts.
	Reset()
	// PersistModel returns the device model of the persistence domain,
	// used to price checkpoint copies and log writes landing in NVM.
	PersistModel() DeviceModel
	// Snapshot deep-copies the system's volatile internal state (e.g.
	// the DRAM page cache) into st and returns it; nil st allocates, a
	// non-nil st reuses its buffers. Restore applies a snapshot taken
	// from a system of the same shape.
	Snapshot(st *SystemState) *SystemState
	Restore(st *SystemState)
}

// SystemState is a deep-copy snapshot of a memory system's volatile
// internal state. It is opaque; capture it with System.Snapshot and
// apply it with System.Restore. For Uniform systems it is empty.
type SystemState struct {
	pages []pageWay
	tick  uint64
}

// Equal reports whether two snapshots capture identical state.
func (a *SystemState) Equal(b *SystemState) bool {
	if a.tick != b.tick || len(a.pages) != len(b.pages) {
		return false
	}
	for i := range a.pages {
		if a.pages[i] != b.pages[i] {
			return false
		}
	}
	return true
}

// Uniform serves every address from a single device.
type Uniform struct {
	Model DeviceModel
}

// NewUniform returns a memory system with a single device model.
func NewUniform(m DeviceModel) *Uniform { return &Uniform{Model: m} }

// ReadCost implements System.
func (u *Uniform) ReadCost(_ mem.Addr, size int) int64 { return u.Model.ReadCost(size) }

// WriteCost implements System.
func (u *Uniform) WriteCost(_ mem.Addr, size int) int64 { return u.Model.WriteCost(size) }

// ReadCostSeq implements System.
func (u *Uniform) ReadCostSeq(_ mem.Addr, size int) int64 { return u.Model.ReadCostSeq(size) }

// WriteCostSeq implements System.
func (u *Uniform) WriteCostSeq(_ mem.Addr, size int) int64 { return u.Model.WriteCostSeq(size) }

// ConstantLineCosts implements cache.ConstantCostModel: a uniform
// system's costs never depend on the address, so the cache simulator
// can precompute them once per line size instead of re-deriving them on
// every fill and writeback.
func (u *Uniform) ConstantLineCosts(size int) (read, readSeq, write, writeSeq int64, ok bool) {
	return u.Model.ReadCost(size), u.Model.ReadCostSeq(size),
		u.Model.WriteCost(size), u.Model.WriteCostSeq(size), true
}

// Name implements System.
func (u *Uniform) Name() string { return u.Model.Name }

// Reset implements System.
func (u *Uniform) Reset() {}

// PersistModel implements System.
func (u *Uniform) PersistModel() DeviceModel { return u.Model }

// Snapshot implements System: a uniform system has no volatile state.
func (u *Uniform) Snapshot(st *SystemState) *SystemState {
	if st == nil {
		st = &SystemState{}
	}
	st.pages = st.pages[:0]
	st.tick = 0
	return st
}

// Restore implements System.
func (u *Uniform) Restore(*SystemState) {}

// PageSize is the granularity of the heterogeneous system's DRAM cache.
const PageSize = 4096

// Hetero is the heterogeneous NVM/DRAM main memory: a DRAM page cache in
// front of PCM-like NVM for registered (tiered) address ranges, direct
// NVM for everything else. The page cache is metadata-only and affects
// cost, not crash consistency: persistence-critical objects are placed
// directly in NVM, following the paper's data-placement policy.
type Hetero struct {
	dram DeviceModel
	nvm  DeviceModel

	tiered []addrRange
	pages  *pageTier
}

type addrRange struct {
	base mem.Addr
	size int
}

// NewHetero builds the heterogeneous system with a DRAM cache of
// dramCacheBytes (the paper uses 32 MB).
func NewHetero(dramCacheBytes int) *Hetero {
	return &Hetero{
		dram:  DRAM(),
		nvm:   PCMLikeNVM(),
		pages: newPageTier(dramCacheBytes),
	}
}

// DefaultDRAMCacheBytes is the paper's DRAM cache size (32 MB), which in
// turn follows the algorithm-based NVM data placement work it cites.
const DefaultDRAMCacheBytes = 32 << 20

// SetTiered registers [base, base+size) as served through the DRAM page
// cache. Regions not registered are NVM-direct.
func (h *Hetero) SetTiered(base mem.Addr, size int) {
	h.tiered = append(h.tiered, addrRange{base, size})
}

// TierRegion registers an entire heap region as DRAM-tiered.
func (h *Hetero) TierRegion(r interface {
	Base() mem.Addr
	Bytes() int
}) {
	h.SetTiered(r.Base(), r.Bytes())
}

func (h *Hetero) isTiered(a mem.Addr) bool {
	for _, r := range h.tiered {
		if a >= r.base && a < r.base+mem.Addr(r.size) {
			return true
		}
	}
	return false
}

// ReadCost implements System.
func (h *Hetero) ReadCost(a mem.Addr, size int) int64 {
	if !h.isTiered(a) {
		return h.nvm.ReadCost(size)
	}
	cost := h.dram.ReadCost(size)
	if !h.pages.touch(a) {
		cost += h.nvm.ReadCost(PageSize) // page fill from NVM
	}
	return cost
}

// WriteCost implements System.
func (h *Hetero) WriteCost(a mem.Addr, size int) int64 {
	if !h.isTiered(a) {
		return h.nvm.WriteCost(size)
	}
	cost := h.dram.WriteCost(size)
	if !h.pages.touch(a) {
		cost += h.nvm.ReadCost(PageSize)
	}
	return cost
}

// ReadCostSeq implements System.
func (h *Hetero) ReadCostSeq(a mem.Addr, size int) int64 {
	if !h.isTiered(a) {
		return h.nvm.ReadCostSeq(size)
	}
	cost := h.dram.ReadCostSeq(size)
	if !h.pages.touch(a) {
		cost += h.nvm.ReadCostSeq(PageSize) // prefetched page fill
	}
	return cost
}

// WriteCostSeq implements System.
func (h *Hetero) WriteCostSeq(a mem.Addr, size int) int64 {
	if !h.isTiered(a) {
		return h.nvm.WriteCostSeq(size)
	}
	cost := h.dram.WriteCostSeq(size)
	if !h.pages.touch(a) {
		cost += h.nvm.ReadCostSeq(PageSize)
	}
	return cost
}

// Name implements System.
func (h *Hetero) Name() string { return "Hetero NVM/DRAM" }

// Reset implements System.
func (h *Hetero) Reset() { h.pages.reset() }

// PersistModel implements System.
func (h *Hetero) PersistModel() DeviceModel { return h.nvm }

// Snapshot implements System: deep-copies the DRAM page cache state.
func (h *Hetero) Snapshot(st *SystemState) *SystemState {
	if st == nil {
		st = &SystemState{}
	}
	if cap(st.pages) < len(h.pages.ways) {
		st.pages = make([]pageWay, len(h.pages.ways))
	} else {
		st.pages = st.pages[:len(h.pages.ways)]
	}
	copy(st.pages, h.pages.ways)
	st.tick = h.pages.tick
	return st
}

// Restore implements System. The page cache must have the capacity st
// was captured from; a mismatch panics.
func (h *Hetero) Restore(st *SystemState) {
	if len(st.pages) != len(h.pages.ways) {
		panic(fmt.Sprintf("nvm: restore of %d-page state onto %d-page cache",
			len(st.pages), len(h.pages.ways)))
	}
	copy(h.pages.ways, st.pages)
	h.pages.tick = st.tick
}

// DRAMModel exposes the DRAM device model (used by checkpoint cost
// accounting for DRAM-cache flushes).
func (h *Hetero) DRAMModel() DeviceModel { return h.dram }

// NVMModel exposes the NVM device model.
func (h *Hetero) NVMModel() DeviceModel { return h.nvm }

// pageTier is a metadata-only 8-way LRU page cache.
type pageTier struct {
	nsets uint64
	assoc int
	ways  []pageWay
	tick  uint64
}

type pageWay struct {
	tag   uint64
	valid bool
	use   uint64
}

func newPageTier(capacity int) *pageTier {
	const assoc = 8
	npages := capacity / PageSize
	if npages < assoc {
		npages = assoc
	}
	nsets := npages / assoc
	return &pageTier{
		nsets: uint64(nsets),
		assoc: assoc,
		ways:  make([]pageWay, nsets*assoc),
	}
}

// touch returns true on a page hit; on a miss it fills the page
// (evicting LRU) and returns false.
func (t *pageTier) touch(a mem.Addr) bool {
	t.tick++
	pn := uint64(a) / PageSize
	s := pn % t.nsets
	set := t.ways[s*uint64(t.assoc) : (s+1)*uint64(t.assoc)]
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == pn {
			w.use = t.tick
			return true
		}
	}
	victim := &set[0]
	for i := range set {
		w := &set[i]
		if !w.valid {
			victim = w
			break
		}
		if w.use < victim.use {
			victim = w
		}
	}
	victim.tag = pn
	victim.valid = true
	victim.use = t.tick
	return false
}

func (t *pageTier) reset() {
	for i := range t.ways {
		t.ways[i] = pageWay{}
	}
	// A power cycle also restarts the LRU clock: a machine restarted
	// after a crash is indistinguishable from a fresh one.
	t.tick = 0
}

var (
	_ System = (*Uniform)(nil)
	_ System = (*Hetero)(nil)
)

func init() {
	// Sanity: the models must preserve the paper's stated ratios.
	d, n := DRAM(), PCMLikeNVM()
	if n.ReadLatencyNS != 4*d.ReadLatencyNS || d.ReadBW != 8*n.ReadBW {
		panic(fmt.Sprintf("nvm: model ratios violated: %+v vs %+v", d, n))
	}
}
