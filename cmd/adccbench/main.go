// Command adccbench regenerates the tables and figures of the paper's
// evaluation (Yang et al., "Algorithm-Directed Crash Consistence in
// Non-Volatile Memory for HPC", CLUSTER 2017) on the simulated NVM
// platform, plus ablation studies and the statistical crash-injection
// campaign (run -list for the full set). It is built entirely on the
// public pkg/adcc API — everything it does is available to embedders.
//
// Usage:
//
//	adccbench -experiment all              # every experiment, paper-shape sizes
//	adccbench -experiment fig3,fig4        # specific experiments
//	adccbench -experiment fig8 -scale 0.2  # scaled-down quick run
//	adccbench -experiment all -parallel 4  # fan independent cases out over 4 workers
//	adccbench -experiment fig4 -events     # stream per-case progress events
//	adccbench -list                        # list experiments
//	adccbench -bench -json out.json        # machine-readable benchmark suite
//
//	# statistical crash-injection campaign; -json adds the full report,
//	# -fault sweeps richer crash-time fault/persistency models:
//	adccbench -experiment campaign -scale 0.1 -parallel 4 -json campaign.json
//	adccbench -experiment campaign -scale 0.1 -fault failstop,torn,eadr,reorder,bitflip
//
// The -bench mode runs the kernel micro-benchmarks (wall-clock ns/op and
// allocs/op plus deterministic simulated metrics), the timed harness
// experiments, and a fixed fault sub-grid (a reduced campaign swept
// under the torn/eadr/reorder/bitflip crash models), and emits the JSON
// suite wrapped in the adcc-report/v1 envelope for cmd/benchdiff.
// Unless -scale is given explicitly, -bench runs the experiments at the
// default bench scale (0.05), matching the root bench_test defaults.
//
// Every experiment case is seeded and runs on its own simulated machine,
// and the harness collects results in case order, so -parallel N output
// (tables, reports, and the -events stream) is byte-identical to a
// serial run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adcc/pkg/adcc"
)

// defaultBenchScale is the harness scale -bench uses when -scale is not
// given explicitly: the same reduced scale as the root bench_test
// defaults, so CI-sized runs and local runs agree.
const defaultBenchScale = 0.05

// benchExperiments are the timed harness experiments whose per-case
// simulated timings feed the bench suite. The campaign contributes one
// result per injection cell, so benchdiff gates recovery-rate
// regressions alongside the timing metrics; the stencil experiment
// contributes the extension family's per-scheme runtimes and recovery
// cost.
var benchExperiments = []string{"fig3", "fig4", "fig8", "fig13", "stencil", "kvlog", "campaign"}

func main() {
	var (
		expFlag   = flag.String("experiment", "all", "comma-separated experiment names, or 'all'")
		scale     = flag.Float64("scale", 1.0, "problem-size scale factor (1.0 = paper-shape defaults)")
		parallel  = flag.Int("parallel", 1, "max concurrent cases per experiment (<=1 = serial; output is identical at any setting)")
		verbose   = flag.Bool("v", false, "print progress while running")
		events    = flag.Bool("events", false, "stream per-case progress events to stderr (deterministic order)")
		listOnly  = flag.Bool("list", false, "list available experiments and exit")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		benchMode = flag.Bool("bench", false, "run the benchmark suite (kernels + timed experiments) and emit machine-readable results")
		replay    = flag.Bool("replay", false, "run campaigns on the snapshot/fork replay engine (identical report, far less wall time)")
		faultFlag = flag.String("fault", "", "comma-separated crash-time fault models the campaign experiment sweeps (failstop, torn, eadr, reorder, bitflip); empty = fail-stop only")
		jsonPath  = flag.String("json", "", "with -bench: write the enveloped JSON suite to this file instead of stdout; with -experiment campaign: write the enveloped campaign report here")
		storePath = flag.String("store", "", "write the campaign experiment's raw per-injection rows to a columnar result store at this path (query with adccquery)")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range adcc.Experiments() {
			fmt.Printf("  %-10s %s\n", e.Name, e.Title)
		}
		return
	}

	// -bench without an explicit -scale runs at the reduced bench
	// scale; resolve the effective scale before building the options.
	effScale := *scale
	if *benchMode {
		scaleSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				scaleSet = true
			}
		})
		if !scaleSet {
			effScale = defaultBenchScale
		}
	}

	opts := []adcc.Option{
		adcc.WithScale(effScale),
		adcc.WithParallelism(*parallel),
		adcc.WithCampaignReplay(*replay),
	}
	if *faultFlag != "" {
		var models []string
		for _, m := range strings.Split(*faultFlag, ",") {
			if m = strings.TrimSpace(m); m != "" {
				models = append(models, m)
			}
		}
		opts = append(opts, adcc.WithFaultModels(models...))
	}
	if *verbose {
		opts = append(opts, adcc.WithVerbose(os.Stderr))
	}
	if *events {
		opts = append(opts, adcc.WithEventSink(adcc.SinkFunc(func(e adcc.Event) {
			fmt.Fprintln(os.Stderr, e)
		})))
	}

	if *benchMode {
		os.Exit(runBench(opts, *jsonPath, *storePath, effScale, *verbose))
	}

	var selected []string
	if *expFlag == "all" {
		for _, e := range adcc.Experiments() {
			selected = append(selected, e.Name)
		}
	} else {
		known := map[string]bool{}
		for _, e := range adcc.Experiments() {
			known[e.Name] = true
		}
		for _, name := range strings.Split(*expFlag, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "adccbench: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	if *jsonPath != "" {
		opts = append(opts, adcc.WithCampaignJSON(*jsonPath))
	}
	if *storePath != "" {
		opts = append(opts, adcc.WithCampaignStore(*storePath))
	}
	runner := adcc.New(nil, opts...)
	ctx := context.Background()
	failed := false
	for _, name := range selected {
		start := time.Now()
		tab, err := runner.RunExperiment(ctx, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adccbench: %s failed: %v\n", name, err)
			failed = true
			continue
		}
		if *asCSV {
			fmt.Printf("## %s\n", name)
			tab.FprintCSV(os.Stdout)
		} else {
			tab.Fprint(os.Stdout)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", name, time.Since(start))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runBench executes the kernel micro-benchmarks and the timed harness
// experiments, assembles a bench suite, and writes its adcc-report/v1
// envelope to jsonPath (stdout when empty). With storePath, the main
// campaign experiment also writes its raw rows to a result store (the
// fault sub-grid keeps its own spec and is excluded). Returns the
// process exit code.
func runBench(opts []adcc.Option, jsonPath, storePath string, scale float64, verbose bool) int {
	if verbose {
		fmt.Fprintf(os.Stderr, "bench: kernels + %s at scale %g\n",
			strings.Join(benchExperiments, ","), scale)
	}
	results := adcc.RunKernels()

	col := adcc.NewCollector()
	mainOpts := append(append([]adcc.Option{}, opts...), adcc.WithCollector(col))
	if storePath != "" {
		mainOpts = append(mainOpts, adcc.WithCampaignStore(storePath))
	}
	runner := adcc.New(nil, mainOpts...)
	ctx := context.Background()
	for _, name := range benchExperiments {
		start := time.Now()
		if _, err := runner.RunExperiment(ctx, name); err != nil {
			fmt.Fprintf(os.Stderr, "adccbench: bench experiment %s failed: %v\n", name, err)
			return 1
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "[bench %s completed in %v]\n", name, time.Since(start))
		}
	}

	// The fault sub-grid: a fixed reduced campaign swept once per
	// non-fail-stop fault model, so benchdiff gates the survival rates
	// under torn writebacks, eADR drain, reordered writebacks, and bit
	// flips alongside the fail-stop rows. It runs in its own collector
	// because its "campaign/total" roll-up would collide with the main
	// campaign experiment's; the per-cell rows are distinct (their names
	// carry the "+<fault>" key suffix) and merge into the suite.
	faultCol := adcc.NewCollector()
	faultRunner := adcc.New(nil, append(append([]adcc.Option{}, opts...),
		adcc.WithCollector(faultCol),
		adcc.WithWorkloads("mc", "stencil"),
		adcc.WithSchemes(adcc.SchemeNative, adcc.SchemePMEM, adcc.SchemeAlgoNVM, adcc.SchemeAlgoEvery),
		adcc.WithFaultModels("torn", "eadr", "reorder", "bitflip"))...)
	start := time.Now()
	if _, err := faultRunner.RunCampaign(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "adccbench: bench fault sub-grid failed: %v\n", err)
		return 1
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "[bench fault sub-grid completed in %v]\n", time.Since(start))
	}
	faultResults := faultCol.Results()
	merged := make([]adcc.Result, 0, len(faultResults))
	for _, r := range faultResults {
		if r.Name != "campaign/total" {
			merged = append(merged, r)
		}
	}

	suite := adcc.NewSuite(scale, append(append(results, col.Results()...), merged...))
	rep := adcc.NewBenchReport(suite)
	if jsonPath == "" {
		b, err := rep.EncodeJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "adccbench: encode: %v\n", err)
			return 1
		}
		os.Stdout.Write(b)
		return 0
	}
	if err := rep.WriteFile(jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "adccbench: %v\n", err)
		return 1
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(suite.Results), jsonPath)
	}
	return 0
}
