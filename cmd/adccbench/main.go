// Command adccbench regenerates the tables and figures of the paper's
// evaluation (Yang et al., "Algorithm-Directed Crash Consistence in
// Non-Volatile Memory for HPC", CLUSTER 2017) on the simulated NVM
// platform, plus the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	adccbench -experiment all              # every experiment, paper-shape sizes
//	adccbench -experiment fig3,fig4        # specific experiments
//	adccbench -experiment fig8 -scale 0.2  # scaled-down quick run
//	adccbench -experiment all -parallel 4  # fan independent cases out over 4 workers
//	adccbench -list                        # list experiments
//
// Every experiment case is seeded and runs on its own simulated machine,
// and the harness collects results in case order, so -parallel N output
// is byte-identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adcc/internal/harness"
)

func main() {
	var (
		expFlag  = flag.String("experiment", "all", "comma-separated experiment names, or 'all'")
		scale    = flag.Float64("scale", 1.0, "problem-size scale factor (1.0 = paper-shape defaults)")
		parallel = flag.Int("parallel", 1, "max concurrent cases per experiment (<=1 = serial; output is identical at any setting)")
		verbose  = flag.Bool("v", false, "print progress while running")
		listOnly = flag.Bool("list", false, "list available experiments and exit")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range harness.All() {
			fmt.Printf("  %-10s %s\n", e.Name, e.Title)
		}
		return
	}

	var selected []harness.Experiment
	if *expFlag == "all" {
		selected = harness.All()
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			name = strings.TrimSpace(name)
			e, ok := harness.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "adccbench: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := harness.Options{Scale: *scale, Verbose: *verbose, Out: os.Stderr, Parallel: *parallel}
	failed := false
	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adccbench: %s failed: %v\n", e.Name, err)
			failed = true
			continue
		}
		if *asCSV {
			fmt.Printf("## %s\n", e.Name)
			tab.FprintCSV(os.Stdout)
		} else {
			tab.Fprint(os.Stdout)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", e.Name, time.Since(start))
		}
	}
	if failed {
		os.Exit(1)
	}
}
