// Command adccbench regenerates the tables and figures of the paper's
// evaluation (Yang et al., "Algorithm-Directed Crash Consistence in
// Non-Volatile Memory for HPC", CLUSTER 2017) on the simulated NVM
// platform, plus ablation studies and the statistical crash-injection
// campaign (run -list for the full set).
//
// Usage:
//
//	adccbench -experiment all              # every experiment, paper-shape sizes
//	adccbench -experiment fig3,fig4        # specific experiments
//	adccbench -experiment fig8 -scale 0.2  # scaled-down quick run
//	adccbench -experiment all -parallel 4  # fan independent cases out over 4 workers
//	adccbench -list                        # list experiments
//	adccbench -bench -json out.json        # machine-readable benchmark suite
//
//	# statistical crash-injection campaign; -json adds the full report:
//	adccbench -experiment campaign -scale 0.1 -parallel 4 -json campaign.json
//
// The -bench mode runs the kernel micro-benchmarks (wall-clock ns/op and
// allocs/op plus deterministic simulated metrics) and the timed harness
// experiments, and emits a schema-stable JSON suite for cmd/benchdiff.
// Unless -scale is given explicitly, -bench runs the experiments at the
// default bench scale (0.05), matching the root bench_test defaults.
//
// Every experiment case is seeded and runs on its own simulated machine,
// and the harness collects results in case order, so -parallel N output
// is byte-identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adcc/internal/bench"
	"adcc/internal/harness"
)

// defaultBenchScale is the harness scale -bench uses when -scale is not
// given explicitly: the same reduced scale as the root bench_test
// defaults, so CI-sized runs and local runs agree.
const defaultBenchScale = 0.05

// benchExperiments are the timed harness experiments whose per-case
// simulated timings feed the bench suite. The campaign contributes one
// result per injection cell, so benchdiff gates recovery-rate
// regressions alongside the timing metrics.
var benchExperiments = []string{"fig3", "fig4", "fig8", "fig13", "campaign"}

func main() {
	var (
		expFlag   = flag.String("experiment", "all", "comma-separated experiment names, or 'all'")
		scale     = flag.Float64("scale", 1.0, "problem-size scale factor (1.0 = paper-shape defaults)")
		parallel  = flag.Int("parallel", 1, "max concurrent cases per experiment (<=1 = serial; output is identical at any setting)")
		verbose   = flag.Bool("v", false, "print progress while running")
		listOnly  = flag.Bool("list", false, "list available experiments and exit")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		benchMode = flag.Bool("bench", false, "run the benchmark suite (kernels + timed experiments) and emit machine-readable results")
		jsonPath  = flag.String("json", "", "with -bench: write the JSON suite to this file instead of stdout; with -experiment campaign: write the campaign report here")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range harness.All() {
			fmt.Printf("  %-10s %s\n", e.Name, e.Title)
		}
		return
	}

	if *benchMode {
		s := *scale
		scaleSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				scaleSet = true
			}
		})
		if !scaleSet {
			s = defaultBenchScale
		}
		os.Exit(runBench(*jsonPath, s, *parallel, *verbose))
	}

	var selected []harness.Experiment
	if *expFlag == "all" {
		selected = harness.All()
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			name = strings.TrimSpace(name)
			e, ok := harness.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "adccbench: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := harness.Options{
		Scale: *scale, Verbose: *verbose, Out: os.Stderr, Parallel: *parallel,
		CampaignJSON: *jsonPath,
	}
	failed := false
	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adccbench: %s failed: %v\n", e.Name, err)
			failed = true
			continue
		}
		if *asCSV {
			fmt.Printf("## %s\n", e.Name)
			tab.FprintCSV(os.Stdout)
		} else {
			tab.Fprint(os.Stdout)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", e.Name, time.Since(start))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runBench executes the kernel micro-benchmarks and the timed harness
// experiments, assembles a bench.Suite, and writes its canonical JSON
// encoding to jsonPath (stdout when empty). Returns the process exit
// code.
func runBench(jsonPath string, scale float64, parallel int, verbose bool) int {
	if verbose {
		fmt.Fprintf(os.Stderr, "bench: kernels + %s at scale %g\n",
			strings.Join(benchExperiments, ","), scale)
	}
	results := bench.RunKernels()

	col := bench.NewCollector()
	opts := harness.Options{
		Scale: scale, Parallel: parallel,
		Verbose: verbose, Out: os.Stderr,
		Collector: col,
	}
	for _, name := range benchExperiments {
		e, ok := harness.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "adccbench: unknown bench experiment %q\n", name)
			return 1
		}
		start := time.Now()
		if _, err := e.Run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "adccbench: bench experiment %s failed: %v\n", name, err)
			return 1
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "[bench %s completed in %v]\n", name, time.Since(start))
		}
	}

	suite := bench.NewSuite(scale, append(results, col.Results()...))
	if jsonPath == "" {
		b, err := suite.EncodeJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "adccbench: encode: %v\n", err)
			return 1
		}
		os.Stdout.Write(b)
		return 0
	}
	if err := suite.WriteFile(jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "adccbench: %v\n", err)
		return 1
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(suite.Results), jsonPath)
	}
	return 0
}
