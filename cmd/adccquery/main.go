// Command adccquery runs queries against a columnar injection-outcome
// store ("*.adccs") written by crashsim -store, adccbench -store, or
// adccd. It is built entirely on the public pkg/adcc API.
//
// A store holds one raw row per injection; adccquery filters those
// rows by cell coordinates and outcome, then renders one of several
// views:
//
//	adccquery -store out.adccs                         # survival table (default view)
//	adccquery -store out.adccs -cells                  # cell index
//	adccquery -store out.adccs -rows                   # NDJSON row stream
//	adccquery -store out.adccs -agg                    # outcome counts + distributions
//	adccquery -store out.adccs -dist rework-ops        # one metric's percentiles
//	adccquery -store out.adccs -export report.json     # rebuild the adcc-report/v1 envelope
//
// Filters compose with every view:
//
//	adccquery -store out.adccs -workload mm -scheme pmem -agg
//	adccquery -store out.adccs -fault torn -outcome corrupt -rows
//	adccquery -store out.adccs -fault failstop -survival
//
// The -export view writes the campaign report rebuilt from the store;
// for a store written alongside -json, the two files are
// byte-identical — the envelope is an export of the store.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"adcc/pkg/adcc"
)

func main() {
	var (
		storePath = flag.String("store", "", "result store file to query (required)")

		workload = flag.String("workload", "", "filter: workload name (cg, mm, mc, stencil, kvlog; empty = all)")
		scheme   = flag.String("scheme", "", "filter: scheme name (empty = all)")
		system   = flag.String("system", "", "filter: system kind (nvm, hetero; empty = all)")
		fault    = flag.String("fault", "", "filter: fault model (failstop, torn, eadr, reorder, bitflip; empty = all)")
		outcome  = flag.String("outcome", "", "filter: outcome name (clean, recomputed, corrupt, unrecoverable, no-crash; empty = all)")

		survival = flag.Bool("survival", false, "render the per-scheme survival table over the filtered rows (the default view)")
		cells    = flag.Bool("cells", false, "list the store's cells with row counts")
		rows     = flag.Bool("rows", false, "stream the filtered rows as newline-delimited JSON")
		agg      = flag.Bool("agg", false, "print outcome counts and rework/recovery-cost/flush distributions as JSON")
		dist     = flag.String("dist", "", "print one metric's count/sum/max/p50/p95/p99 as JSON (see -list-metrics)")
		export   = flag.String("export", "", "write the adcc-report/v1 envelope rebuilt from the whole store to this path")

		listMetrics = flag.Bool("list-metrics", false, "list the -dist metric names and exit")
	)
	flag.Parse()

	if *listMetrics {
		for _, m := range adcc.StoreMetricNames() {
			fmt.Println(m)
		}
		return
	}
	if *storePath == "" {
		fmt.Fprintln(os.Stderr, "adccquery: -store is required")
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*survival, *cells, *rows, *agg, *dist != "", *export != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "adccquery: pick one view (-survival, -cells, -rows, -agg, -dist, -export)")
		os.Exit(2)
	}

	s, err := adcc.OpenResultStore(*storePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adccquery: %v\n", err)
		os.Exit(1)
	}
	defer s.Close()

	f := adcc.StoreFilter{
		Workload:   *workload,
		Scheme:     *scheme,
		System:     *system,
		FaultModel: *fault,
		Outcome:    *outcome,
	}

	switch {
	case *cells:
		err = printCells(s)
	case *rows:
		err = printRows(s, f)
	case *agg:
		err = printAggregate(s, f)
	case *dist != "":
		err = printDist(s, f, *dist)
	case *export != "":
		err = exportEnvelope(s, f, *export)
	default:
		err = printSurvival(s, f)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adccquery: %v\n", err)
		os.Exit(1)
	}
}

// printCells lists the cell index: coordinates, per-cell constants,
// and row counts, plus the footer meta.
func printCells(s *adcc.ResultStoreFile) error {
	fmt.Printf("%-10s %-12s %-8s %-10s %10s %12s %10s\n",
		"workload", "scheme", "system", "fault", "rows", "profile-ops", "grain-ops")
	for _, c := range s.Cells() {
		faultName := c.FaultModel
		if faultName == "" {
			faultName = "failstop"
		}
		fmt.Printf("%-10s %-12s %-8s %-10s %10d %12d %10d\n",
			c.Workload, c.Scheme, c.System, faultName, c.Injections, c.ProfileOps, c.GrainOps)
	}
	fmt.Printf("# scale %g, seed %d, %d rows\n", s.Scale(), s.Seed(), s.TotalRows())
	return nil
}

// printRows streams the filtered rows as NDJSON, one object per
// injection, outcomes as names.
func printRows(s *adcc.ResultStoreFile, f adcc.StoreFilter) error {
	enc := json.NewEncoder(os.Stdout)
	return s.Scan(f, func(r adcc.StoreRow) error { return enc.Encode(r) })
}

// printAggregate renders the standard roll-up of the filtered rows.
func printAggregate(s *adcc.ResultStoreFile, f adcc.StoreFilter) error {
	a, err := s.Aggregate(f)
	if err != nil {
		return err
	}
	return writeJSON(a)
}

// printDist renders one metric's distribution over the filtered rows.
func printDist(s *adcc.ResultStoreFile, f adcc.StoreFilter, name string) error {
	m, err := adcc.ParseStoreMetric(name)
	if err != nil {
		return err
	}
	d, err := s.Distribution(f, m)
	if err != nil {
		return err
	}
	return writeJSON(struct {
		Metric string         `json:"metric"`
		Dist   adcc.StoreDist `json:"dist"`
	}{m.String(), d})
}

// printSurvival rebuilds the filtered cells' aggregates through the
// same Add/Finalize path the campaign engines use and renders the
// shared survival table — the campaign's headline view, produced here
// as a store query.
func printSurvival(s *adcc.ResultStoreFile, f adcc.StoreFilter) error {
	rep, err := filteredReport(s, f)
	if err != nil {
		return err
	}
	adcc.CampaignTable(rep).Fprint(os.Stdout)
	return nil
}

// exportEnvelope writes the campaign report rebuilt from the filtered
// store rows, wrapped in the adcc-report/v1 envelope. With no filters
// it reproduces the live run's -json output byte-identically.
func exportEnvelope(s *adcc.ResultStoreFile, f adcc.StoreFilter, path string) error {
	var rep *adcc.CampaignReport
	var err error
	if f == (adcc.StoreFilter{}) {
		rep, err = s.CampaignReport()
	} else {
		rep, err = filteredReport(s, f)
	}
	if err != nil {
		return err
	}
	if err := adcc.NewCampaignReport(rep).WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "adccquery: wrote %d cells (%d injections) to %s\n",
		len(rep.Cells), rep.Injections, path)
	return nil
}

// filteredReport assembles a campaign report over the filter's cells
// and rows.
func filteredReport(s *adcc.ResultStoreFile, f adcc.StoreFilter) (*adcc.CampaignReport, error) {
	cells, err := s.CellReports(f)
	if err != nil {
		return nil, err
	}
	rep := &adcc.CampaignReport{
		Schema: adcc.CampaignSchemaVersion,
		Scale:  s.Scale(),
		Seed:   s.Seed(),
		Cells:  cells,
	}
	for _, c := range cells {
		rep.Injections += c.Injections
	}
	return rep, nil
}

// writeJSON prints v with two-space indentation and a trailing
// newline, matching the repo's canonical JSON shape.
func writeJSON(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(b, '\n'))
	return err
}
