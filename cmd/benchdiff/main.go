// Command benchdiff compares two benchmark result files produced by
// `adccbench -bench -json` and exits non-zero when the candidate
// regresses against the baseline. It reads the adcc-report/v1
// envelope, bare legacy adcc-bench/v1 suites (so pre-envelope
// baselines keep working), and columnar result stores written with
// -store — a store's cell aggregates are rebuilt through the query
// layer and compared like a campaign report's.
//
// Usage:
//
//	benchdiff [flags] BASELINE.json CANDIDATE.json
//
//	-wall-threshold F   allowed fractional growth of wall-clock metrics
//	                    (ns/op, allocs/op, B/op) before flagging; host
//	                    wall numbers vary across machines, so keep this
//	                    generous (default 0.25). An explicit 0 demands
//	                    exact equality.
//	-sim-threshold F    allowed fractional growth of deterministic
//	                    simulated metrics (sim_ns, sim_flushes,
//	                    recovery_sim_ns); these are host-independent, so
//	                    the default is tight (default 0.02). An explicit
//	                    0 demands exact equality.
//	-wall-advisory      report wall-clock regressions but never fail on
//	                    them; only simulated-metric drift and missing
//	                    benchmarks affect the exit code. Use when the
//	                    baseline was recorded on different hardware
//	                    (CI enforcing on main).
//	-report-only        print the comparison but always exit 0 (used on
//	                    pull requests, where the report is advisory)
//	-all                print every metric comparison, not only the
//	                    regressions and improvements
//
// A benchmark present in the baseline but missing from the candidate is
// a regression (a perf guarantee disappeared); benchmarks only in the
// candidate are reported as added.
//
// Exit codes: 0 no regression (or -report-only), 1 regression found,
// 2 usage or file errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"adcc/pkg/adcc"
)

// readSuite loads a bench suite from an enveloped or legacy report
// file, or — when the path is a columnar result store — from the cell
// aggregates rebuilt by the store's query layer. Either way duplicate
// benchmark names are rejected: in a plain name index the last row
// would silently win and the comparison would prove nothing about the
// shadowed result.
func readSuite(path string) (adcc.Suite, error) {
	var suite adcc.Suite
	if adcc.IsResultStore(path) {
		s, err := adcc.OpenResultStore(path)
		if err != nil {
			return adcc.Suite{}, err
		}
		defer s.Close()
		rep, err := s.CampaignReport()
		if err != nil {
			return adcc.Suite{}, err
		}
		suite = adcc.NewSuite(s.Scale(), rep.BenchResults())
	} else {
		rep, err := adcc.ReadReport(path)
		if err != nil {
			return adcc.Suite{}, err
		}
		if suite, err = rep.BenchSuite(); err != nil {
			return adcc.Suite{}, err
		}
	}
	if err := suite.Validate(); err != nil {
		return adcc.Suite{}, fmt.Errorf("%s: %w", path, err)
	}
	return suite, nil
}

func main() {
	var (
		wallThr      = flag.Float64("wall-threshold", 0.25, "allowed fractional growth of wall-clock metrics (0 = exact)")
		simThr       = flag.Float64("sim-threshold", 0.02, "allowed fractional growth of simulated metrics (0 = exact)")
		wallAdvisory = flag.Bool("wall-advisory", false, "report wall-clock regressions without failing on them")
		reportOnly   = flag.Bool("report-only", false, "report without failing on regressions")
		verbose      = flag.Bool("all", false, "print every comparison, not only regressions/improvements")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] BASELINE.json CANDIDATE.json")
		flag.PrintDefaults()
		os.Exit(2)
	}

	base, err := readSuite(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cand, err := readSuite(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	if base.Scale != cand.Scale {
		fmt.Fprintf(os.Stderr,
			"benchdiff: warning: comparing suites recorded at different scales (%g vs %g); harness sim metrics are not comparable across scales\n",
			base.Scale, cand.Scale)
	}

	rep := adcc.DiffSuites(base, cand, adcc.DiffOptions{
		WallThreshold: *wallThr,
		SimThreshold:  *simThr,
	})
	fmt.Printf("benchdiff: %s (baseline) vs %s (candidate)\n", flag.Arg(0), flag.Arg(1))
	rep.Format(os.Stdout, *verbose)

	if rep.HasBlockingRegression(*wallAdvisory) {
		if *reportOnly {
			fmt.Println("benchdiff: regressions found (report-only mode, not failing)")
			return
		}
		os.Exit(1)
	}
	if *wallAdvisory && rep.HasRegression() {
		fmt.Println("benchdiff: wall-clock regressions reported above are advisory (-wall-advisory)")
	}
}
