// Command doclint lints the repo's markdown documentation. Two checks,
// both wired into the doc-lint CI job:
//
//   - every fenced ```go block under docs/ must be gofmt-clean
//     (go/format.Source accepts whole files and statement fragments
//     alike, so prose examples are held to the same bar as code);
//   - every intra-repo markdown link — [text](relative/path), with an
//     optional #fragment — must resolve to an existing file or
//     directory. External (http, https, mailto) and pure-fragment
//     links are skipped.
//
// Usage:
//
//	doclint [-root dir]
//
// Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// skipDirs are directory names never walked for markdown: VCS state
// and the reference-only related/ file set, which is not part of the
// documentation surface.
var skipDirs = map[string]bool{".git": true, "related": true, "node_modules": true}

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()

	var files []string
	err := filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}

	var problems []string
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", f, err))
			continue
		}
		text := string(b)
		if underDocs(*root, f) {
			problems = append(problems, checkGoBlocks(f, text)...)
		}
		problems = append(problems, checkLinks(*root, f, text)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s) in %d markdown file(s)\n", len(problems), len(files))
		os.Exit(1)
	}
	fmt.Printf("doclint: %d markdown file(s) clean\n", len(files))
}

func underDocs(root, path string) bool {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return false
	}
	return rel == "docs" || strings.HasPrefix(rel, "docs"+string(filepath.Separator))
}

// checkGoBlocks verifies every fenced go code block is gofmt-clean.
func checkGoBlocks(file, text string) []string {
	var problems []string
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		end := start
		for end < len(lines) && strings.TrimSpace(lines[end]) != "```" {
			end++
		}
		block := strings.Join(lines[start:end], "\n")
		i = end
		src := strings.TrimRight(block, "\n") + "\n"
		formatted, err := format.Source([]byte(src))
		if err != nil {
			problems = append(problems,
				fmt.Sprintf("%s:%d: go block does not parse: %v", file, start+1, err))
			continue
		}
		if string(formatted) != src {
			problems = append(problems,
				fmt.Sprintf("%s:%d: go block is not gofmt-clean", file, start+1))
		}
	}
	return problems
}

// mdLink matches inline markdown links; images ("![alt](src)") share
// the same tail and are checked the same way.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies every relative link target exists on disk.
func checkLinks(root, file, text string) []string {
	var problems []string
	inFence := false
	for n, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if rel, err := filepath.Rel(root, resolved); err != nil ||
				rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
				problems = append(problems,
					fmt.Sprintf("%s:%d: link %q escapes the repository", file, n+1, m[1]))
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s:%d: broken link %q (%s does not exist)", file, n+1, m[1], resolved))
			}
		}
	}
	return problems
}
