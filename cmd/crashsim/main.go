// Command crashsim is the standalone crash emulator of paper §III-A: it
// runs one of the study workloads (cg, mm, mc, or the stencil and kvlog
// extension families) on the simulated NVM platform,
// injects a crash at a chosen execution point (a named program point
// occurrence or an absolute memory-operation count), and reports the
// consistency state of every memory region at the crash — which lines
// were still dirty in the volatile cache (lost) and what recovery
// concludes from the persistent image. It is built entirely on the
// public pkg/adcc API.
//
// Usage:
//
//	crashsim -workload cg -n 6000 -occurrence 15
//	crashsim -workload mm -n 400 -loop 2 -occurrence 4
//	crashsim -workload mc -lookups 50000 -crash-op 2000000
//	crashsim -workload stencil -n 160 -occurrence 10
//	crashsim -workload kvlog -occurrence 400
//
// With -campaign, crashsim instead sweeps the selected workload through
// the statistical fault-injection campaign across every supported
// scheme and both platforms, printing the per-scheme survival table
// (and the full enveloped JSON report with -json):
//
//	crashsim -workload mc -campaign -campaign-scale 0.1 -parallel 4
//	crashsim -workload mc -campaign -store out.adccs   # raw rows, query with adccquery
//
// The -fault flag selects crash-time fault/persistency models beyond
// clean fail-stop (torn line writebacks, eADR cache drain, reordered
// writebacks, silent bit flips): one model for a single-point run, a
// comma-separated sweep list with -campaign:
//
//	crashsim -workload cg -occurrence 15 -fault torn
//	crashsim -workload mc -campaign -fault failstop,torn,eadr,reorder,bitflip
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"adcc/pkg/adcc"
)

func main() {
	var (
		workload   = flag.String("workload", "cg", "workload: cg, mm, mc, stencil, or kvlog")
		n          = flag.Int("n", 6000, "problem size (CG order / MM dimension / stencil grid, default 160 for stencil)")
		k          = flag.Int("k", 0, "MM rank (default n/10)")
		loop       = flag.Int("loop", 1, "MM loop to crash in (1 or 2)")
		lookups    = flag.Int("lookups", 50_000, "MC lookup count")
		occurrence = flag.Int("occurrence", 15, "crash at this occurrence of the workload's iteration-end point")
		crashOp    = flag.Int64("crash-op", 0, "crash after this many memory operations (overrides -occurrence)")
		faultFlag  = flag.String("fault", "", "crash-time fault models (failstop, torn, eadr, reorder, bitflip): one model in single-point mode, a comma-separated sweep list with -campaign")
		llcKB      = flag.Int("llc", 2048, "LLC size in KB")
		hetero     = flag.Bool("hetero", false, "use the heterogeneous NVM/DRAM system")

		campaignMode  = flag.Bool("campaign", false, "sweep the workload through the fault-injection campaign instead of one crash point")
		campaignScale = flag.Float64("campaign-scale", 0.1, "with -campaign: problem-size and sweep-density scale")
		parallel      = flag.Int("parallel", 1, "with -campaign: max concurrent injections (report identical at any setting)")
		jsonPath      = flag.String("json", "", "with -campaign: write the machine-readable campaign report to this file")
		storePath     = flag.String("store", "", "with -campaign: write every injection's raw outcome row to a columnar result store at this path (query with adccquery)")
		replay        = flag.Bool("replay", false, "with -campaign: use the snapshot/fork replay engine (same report, far less wall time)")
	)
	flag.Parse()

	if *campaignMode {
		// The campaign builds its own machines and sweeps its own crash
		// points; single-point flags would be silently ignored, so
		// reject them instead.
		singlePoint := map[string]bool{
			"n": true, "k": true, "loop": true, "lookups": true,
			"occurrence": true, "crash-op": true, "llc": true, "hetero": true,
		}
		conflict := ""
		flag.Visit(func(f *flag.Flag) {
			if singlePoint[f.Name] {
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(os.Stderr, "crashsim: -%s applies to single-point mode and is ignored by -campaign (the campaign sweeps both platforms with its own sizes); drop it\n", conflict)
			os.Exit(2)
		}
		os.Exit(runCampaign(*workload, *campaignScale, *parallel, *jsonPath, *storePath, *replay, faultNames(*faultFlag)))
	}

	// Single-point mode crashes exactly once, so it takes one fault
	// model, not a sweep list.
	var fault adcc.FaultModel
	if names := faultNames(*faultFlag); len(names) > 1 {
		fmt.Fprintf(os.Stderr, "crashsim: -fault takes one model in single-point mode (a comma-separated list needs -campaign)\n")
		os.Exit(2)
	} else if len(names) == 1 {
		var err error
		if fault, err = adcc.ParseFaultModel(names[0]); err != nil {
			fmt.Fprintf(os.Stderr, "crashsim: %v\n", err)
			os.Exit(2)
		}
	}

	kind := adcc.NVMOnly
	if *hetero {
		kind = adcc.Hetero
	}
	reg := adcc.NewRegistry()
	m := adcc.NewMachine(adcc.MachineConfig{
		System: kind,
		Cache: adcc.CacheConfig{
			SizeBytes:         *llcKB << 10,
			LineBytes:         64,
			Assoc:             16,
			HitNS:             4,
			FlushChargesClean: true,
			PrefetchStreams:   16,
			// eADR keeps the LLC in the persistence domain, so flushes
			// cost a hit and the crash drains dirty lines.
			FlushFree: fault.Kind == adcc.EADR,
		},
	})
	em := adcc.NewEmulator(m)
	if err := em.SetFault(fault); err != nil {
		fmt.Fprintf(os.Stderr, "crashsim: %v\n", err)
		os.Exit(2)
	}
	em.OnCrash = func(m *adcc.Machine) {
		fmt.Printf("--- crash fired (op %d, trigger %q) ---\n", em.OpCount(), em.CrashTrigger())
		reportCacheState(m)
	}

	var run func()
	var recover func()
	switch *workload {
	case "cg":
		a := adcc.GenSPD(*n, 9, 1)
		cg := adcc.NewCG(m, em, a, adcc.CGOptions{MaxIter: *occurrence})
		em.CrashAtTrigger(adcc.TriggerCGIterEnd, *occurrence)
		run = func() { cg.Run(1) }
		recover = func() {
			rec := cg.Recover()
			fmt.Printf("recovery: crash iter %d, restart iter %d, iterations lost %d (checked %d candidates)\n",
				rec.CrashIter, rec.RestartIter, rec.IterationsLost, rec.Checked)
		}
	case "mm":
		kk := *k
		if kk == 0 {
			kk = *n / 10
		}
		mm := adcc.NewMM(m, em, adcc.MMOptions{N: (*n / kk) * kk, K: kk, Seed: 1})
		trig := adcc.TriggerMMLoop1IterEnd
		if *loop == 2 {
			trig = adcc.TriggerMMLoop2IterEnd
		}
		em.CrashAtTrigger(trig, *occurrence)
		run = mm.Run
		recover = func() {
			rec := mm.RecoverLoop1()
			fmt.Printf("recovery (loop 1 temporal matrices):\n")
			for s, st := range rec.Status {
				fmt.Printf("  Ctemp[%d]: %s\n", s, st)
			}
			if *loop == 2 {
				rec2 := mm.RecoverLoop2()
				fmt.Printf("recovery (loop 2 row blocks):\n")
				for b, st := range rec2.Status {
					fmt.Printf("  block[%d]: %s\n", b, st)
				}
			}
		}
	case "mc":
		s := adcc.NewMCSim(m, adcc.MCConfig{
			Nuclides: 34, PointsPerNuclide: 500, Lookups: *lookups, Seed: 42,
		})
		r := adcc.NewMCRunner(m, em, s, reg.MustScheme(adcc.SchemeAlgoNVM))
		em.CrashAtTrigger(adcc.TriggerMCLookup, *occurrence)
		run = func() { r.Run(0) }
		recover = func() {
			fmt.Printf("recovery: restart at lookup %d; persistent counters %v\n",
				r.RestartIter(), s.CountsImage())
		}
	case "stencil":
		// The grid history is quadratic in n; the CG-sized default would
		// allocate hundreds of megabytes, so stencil gets its own.
		dim := 160
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "n" {
				dim = *n
			}
		})
		h := adcc.NewHeat(m, em, adcc.HeatOptions{N: dim, MaxIter: *occurrence + 2, Seed: 21})
		em.CrashAtTrigger(adcc.TriggerStencilIterEnd, *occurrence)
		run = func() { h.Run(1) }
		recover = func() {
			rec := h.Recover()
			fmt.Printf("recovery: crash sweep %d, restart sweep %d, sweeps lost %d (checked %d plane pairs)\n",
				rec.CrashIter, rec.RestartIter, rec.IterationsLost, rec.Checked)
		}
	case "kvlog":
		// -occurrence counts served requests; size the stream past it.
		s := adcc.NewKVLogStore(m, em, adcc.KVLogOptions{
			Requests: *occurrence + 100, KeySpace: 256, Seed: 33,
		})
		em.CrashAtTrigger(adcc.TriggerKVLogReqEnd, *occurrence)
		run = func() { s.Run(1) }
		recover = func() {
			rec, from, err := s.Recover()
			if err != nil {
				fmt.Printf("recovery: detected corruption: %v\n", err)
				return
			}
			fmt.Printf("recovery: high-water mark %d log words, %d records replayed into a cleared index, resume at request %d\n",
				rec.LogWords, rec.Replayed, from)
		}
	default:
		fmt.Fprintf(os.Stderr, "crashsim: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	if *crashOp > 0 {
		em.CrashAtTrigger("", 0) // disarm trigger
		em.CrashAtOp(*crashOp)
	}
	if !em.Run(run) {
		fmt.Println("workload completed without reaching the crash point")
		return
	}
	if err := em.FaultErr(); err != nil {
		fmt.Printf("fault model fell back to fail-stop: %v\n", err)
	}
	fmt.Printf("--- post-crash (restarted from NVM image) ---\n")
	recover()
	fmt.Printf("simulated time at exit: %.3f ms\n", float64(m.Clock.Now())/1e6)
}

// faultNames splits a -fault flag value into model names.
func faultNames(flagValue string) []string {
	if flagValue == "" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(flagValue, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// runCampaign sweeps one workload through the injection campaign and
// prints its survival table, reusing the shared renderer so crashsim
// and adccbench present identical tables. Returns the process exit
// code; any silent corruption or unrecoverable injection under the
// paper's selective-flush algorithm-directed schemes is a failure —
// under clean fail-stop only, because the richer fault models (torn
// writebacks, reordering, bit flips) exist precisely to push schemes
// past their guarantees.
func runCampaign(workload string, scale float64, parallel int, jsonPath, storePath string, replay bool, faults []string) int {
	opts := []adcc.Option{
		adcc.WithScale(scale),
		adcc.WithParallelism(parallel),
		adcc.WithWorkloads(workload),
		adcc.WithCampaignReplay(replay),
		adcc.WithVerbose(os.Stderr),
	}
	if len(faults) > 0 {
		opts = append(opts, adcc.WithFaultModels(faults...))
	}
	if jsonPath != "" {
		opts = append(opts, adcc.WithCampaignJSON(jsonPath))
	}
	if storePath != "" {
		opts = append(opts, adcc.WithCampaignStore(storePath))
	}
	runner := adcc.New(nil, opts...)
	rep, err := runner.RunCampaign(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashsim: %v\n", err)
		return 1
	}
	adcc.CampaignTable(rep).Fprint(os.Stdout)
	for _, c := range rep.Cells {
		if c.FaultModel == "" && c.Failures() > 0 &&
			(c.Scheme == adcc.SchemeAlgoNVM || c.Scheme == adcc.SchemeAlgoHetero) {
			fmt.Fprintf(os.Stderr, "crashsim: %s/%s@%s: %d of %d injections failed\n",
				c.Workload, c.Scheme, c.System, c.Failures(), c.Injections)
			return 1
		}
	}
	return 0
}

// reportCacheState prints, per region, how many of its lines are
// resident and dirty at the crash instant — the data that is about to be
// lost (the paper tool's "values of data in caches and main memory").
func reportCacheState(m *adcc.Machine) {
	fmt.Printf("%-24s %12s %10s %10s %10s\n", "region", "bytes", "lines", "resident", "dirty")
	for _, r := range m.Heap.Regions() {
		lines := (r.Bytes() + adcc.LineBytes - 1) / adcc.LineBytes
		resident, dirty := 0, 0
		for l := 0; l < lines; l++ {
			res, d := m.LLC.Contains(r.Base() + adcc.Addr(l*adcc.LineBytes))
			if res {
				resident++
			}
			if d {
				dirty++
			}
		}
		if resident == 0 && dirty == 0 && lines > 64 {
			continue // keep the report focused on interesting regions
		}
		fmt.Printf("%-24s %12d %10d %10d %10d\n", r.Name(), r.Bytes(), lines, resident, dirty)
	}
}
