// Command adccd serves crash-consistency campaigns over HTTP: submit a
// campaign spec with POST /v1/campaigns, follow its deterministic event
// stream over SSE, and fetch the finished adcc-report/v1 envelope —
// byte-identical to running the same spec through crashsim or
// pkg/adcc directly. With -state, finished reports are cached by
// content address and interrupted campaigns resume from per-shard
// checkpoints after a restart. See docs/HTTP_API.md for the wire
// reference and docs/OPERATIONS.md for running the daemon.
//
// Usage:
//
//	adccd [-listen addr] [-state dir] [-parallel n] [-jobs n]
//	      [-cache-entries n] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adcc/pkg/adcc/adccd"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "address to serve the HTTP API on")
		state        = flag.String("state", "", "state directory for checkpoints and the result cache (empty = ephemeral)")
		parallel     = flag.Int("parallel", 0, "shards of one campaign to run concurrently (0 = GOMAXPROCS)")
		jobs         = flag.Int("jobs", 1, "campaigns to run concurrently")
		cacheEntries = flag.Int("cache-entries", 0, "result-cache entries to keep (0 = unbounded)")
		verbose      = flag.Bool("v", false, "log per-job activity")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "adccd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	logf := log.Printf
	if !*verbose {
		logf = func(string, ...any) {}
	}
	srv, err := adccd.New(adccd.Config{
		StateDir:     *state,
		Parallel:     *parallel,
		Jobs:         *jobs,
		CacheEntries: *cacheEntries,
		Logf:         logf,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("adccd: listening on %s (state %q)", *listen, *state)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("adccd: %v: shutting down", s)
	}

	// Stop accepting requests, then stop campaigns at the next shard
	// boundary; completed shards stay on disk for the next start.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("adccd: http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("adccd: close: %v", err)
	}
}
