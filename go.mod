module adcc

go 1.24
